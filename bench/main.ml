(* Benchmark harness.

   With no arguments: reproduce every table and figure of the paper's
   evaluation (see DESIGN.md's per-experiment index), then run the
   Bechamel microbenchmark suite over the library's hot operations.

   With arguments: run only the named experiments, e.g.
     dune exec bench/main.exe fig6 fig8
   Recognized extra flags: --scale F (resize workloads), --seed N,
   --jobs N (shard runs over N worker domains), --cache-dir DIR
   (persistent on-disk run cache), --no-cache (ignore --cache-dir),
   --micro (microbenchmarks only).  --micro also writes the execution
   engine comparison (interpreter oracle vs closure-threaded code) to
   BENCH_engine.json. *)

let parse_args () =
  let ids = ref [] and scale = ref 1.0 and seed = ref 42 and micro = ref false in
  let jobs = ref 1 and cache_dir = ref None and no_cache = ref false in
  let rec go = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        scale := float_of_string v;
        go rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        go rest
    | "--jobs" :: v :: rest ->
        jobs := int_of_string v;
        go rest
    | "--cache-dir" :: v :: rest ->
        cache_dir := Some v;
        go rest
    | "--no-cache" :: rest ->
        no_cache := true;
        go rest
    | "--micro" :: rest ->
        micro := true;
        go rest
    | id :: rest ->
        if not (List.mem id Exp_figures.ids) then begin
          Printf.eprintf "unknown experiment %s (known: %s)\n" id
            (String.concat " " Exp_figures.ids);
          exit 1
        end;
        ids := id :: !ids;
        go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  let cache_dir = if !no_cache then None else !cache_dir in
  (List.rev !ids, !scale, !seed, !jobs, cache_dir, !micro)

let print_cache_report caches =
  let tot f = List.fold_left (fun acc c -> acc + f (Exp_cache.stats c)) 0 caches in
  let memory = tot (fun s -> s.Exp_cache.memory_hits)
  and disk = tot (fun s -> s.Exp_cache.disk_hits)
  and executed = tot (fun s -> s.Exp_cache.executed)
  and errors = tot (fun s -> s.Exp_cache.store_errors) in
  Printf.printf
    "[exp-cache] exp.cache_hit=%d exp.cache_miss=%d memory_hits=%d \
     disk_hits=%d executed=%d store_errors=%d\n%!"
    (memory + disk) executed memory disk executed errors;
  List.iter
    (fun c ->
      List.iter
        (fun d -> Format.eprintf "bench: cache: %a@." Dcg.pp_parse_error d)
        (Exp_cache.diagnostics c))
    caches

let run_figures ids scale seed jobs cache_dir =
  let t0 = Unix.gettimeofday () in
  Printf.printf
    "PEP reproduction: %d benchmarks, scale %.2f, seed %d, jobs %d\n%!"
    (List.length Suite.names) scale seed jobs;
  let caches =
    List.map
      (fun env -> Exp_cache.create ?cache_dir env)
      (Exp_pool.suite_envs ~scale ~jobs ~seed ())
  in
  Exp_pool.prefetch ~jobs caches ids;
  List.iter (fun id -> Exp_figures.print (Exp_figures.by_id id caches)) ids;
  if cache_dir <> None then print_cache_report caches;
  Printf.printf "\n[figures done in %.1fs]\n%!" (Unix.gettimeofday () -. t0)

(* ------------------------- microbenchmarks ------------------------- *)

open Bechamel
open Toolkit

let micro_tests () =
  (* a mid-sized method with loops and branches as the common subject *)
  let program = Workload.program ~size:4 (Suite.find "jython") in
  let exec = Program.find program "exec" in
  let cfg = To_cfg.cfg exec in
  let dag = Dag.build Dag.Loop_header cfg in
  let numbering = Numbering.ball_larus dag in
  let plan = Instrument.of_numbering numbering in
  let n_paths = Numbering.n_paths numbering in
  let freq (e : Dag.edge) = (e.Dag.idx * 37) land 255 in
  let profile_pair =
    let actual = Edge_profile.create_table ~n_methods:1 in
    let estimated = Edge_profile.create_table ~n_methods:1 in
    for br = 0 to 63 do
      Edge_profile.add actual.(0) br ~taken:true ((br * 13) land 1023);
      Edge_profile.add actual.(0) br ~taken:false ((br * 7) land 511);
      Edge_profile.add estimated.(0) br ~taken:true ((br * 11) land 1023);
      Edge_profile.add estimated.(0) br ~taken:false ((br * 5) land 511)
    done;
    (actual, estimated)
  in
  let tiny_program =
    Compile.program ~name:"tiny" ~main:"main"
      [
        Ast.mdef "main" ~params:[]
          Ast.
            [
              set "s" (i 0);
              for_ "k" (i 0) (i 100)
                [
                  if_ (eq (band (v "k") (i 3)) (i 0))
                    [ set "s" (add (v "s") (v "k")) ]
                    [ set "s" (add (v "s") (i 1)) ];
                ];
              ret (v "s");
            ];
      ]
  in
  let sampler = Sampling.create (Sampling.pep ~samples:64 ~stride:17) in
  [
    (* fig6/fig7 machinery: instrumentation plan construction per compile *)
    Test.make ~name:"pass/dag-build"
      (Staged.stage (fun () -> ignore (Dag.build Dag.Loop_header cfg)));
    Test.make ~name:"pass/ball-larus-numbering"
      (Staged.stage (fun () -> ignore (Numbering.ball_larus dag)));
    Test.make ~name:"pass/smart-numbering"
      (Staged.stage (fun () -> ignore (Numbering.smart ~freq dag)));
    Test.make ~name:"pass/instrument-plan"
      (Staged.stage (fun () -> ignore (Instrument.of_numbering numbering)));
    (* fig8/fig9 machinery: what a sample costs the runtime *)
    Test.make ~name:"sample/reconstruct-path"
      (Staged.stage (fun () ->
           ignore (Reconstruct.cfg_edges numbering (n_paths / 2))));
    Test.make ~name:"sample/sampler-step"
      (Staged.stage (fun () ->
           if not (Sampling.active sampler) then Sampling.activate sampler;
           ignore (Sampling.step sampler)));
    Test.make ~name:"sample/static-ops"
      (Staged.stage (fun () -> ignore (Instrument.static_ops plan)));
    (* the substrate itself *)
    Test.make ~name:"vm/interp-100-iter-loop"
      (Staged.stage (fun () ->
           let st = Machine.create ~seed:1 tiny_program in
           ignore (Interp.run Interp.no_hooks st)));
    Test.make ~name:"vm/prng-next"
      (let prng = Prng.create ~seed:9 in
       Staged.stage (fun () -> ignore (Prng.next prng)));
    (* fig10/fig11 machinery: layout computation per opt-compile *)
    Test.make ~name:"opt/layout-compute"
      (let prof = (fst profile_pair).(0) in
       Staged.stage (fun () -> ignore (Layout.compute cfg prof)));
    (* accuracy metrics over a 64-branch profile *)
    Test.make ~name:"metric/relative-overlap"
      (let actual, estimated = profile_pair in
       Staged.stage (fun () ->
           ignore (Accuracy.relative_overlap ~actual ~estimated)));
    Test.make ~name:"metric/absolute-overlap"
      (let actual, estimated = profile_pair in
       Staged.stage (fun () ->
           ignore (Accuracy.absolute_overlap ~actual ~estimated)));
  ]

(* Oracle-vs-threaded engine comparison (DESIGN.md "Execution engine").
   Machines are created once, outside the staged closures, so the
   measured cost is steady-state execution: the interpreter's dispatch
   loop vs compiled closure chains with warm inline caches. *)
let engine_tests () =
  let call_heavy =
    Compile.program ~name:"call_heavy" ~main:"main"
      Ast.
        [
          mdef "fib" ~params:[ "n" ]
            [
              if_ (lt (v "n") (i 2))
                [ ret (v "n") ]
                [
                  ret
                    (add
                       (call "fib" [ sub (v "n") (i 1) ])
                       (call "fib" [ sub (v "n") (i 2) ]));
                ];
            ];
          mdef "leaf" ~params:[ "a"; "b" ]
            [ ret (add (mul (v "a") (i 3)) (band (v "b") (i 1023))) ];
          mdef "main" ~params:[]
            [
              set "s" (call "fib" [ i 14 ]);
              for_ "k" (i 0) (i 300)
                [ set "s" (add (v "s") (call "leaf" [ v "k"; v "s" ])) ];
              ret (v "s");
            ];
        ]
  in
  let branch_heavy =
    Compile.program ~name:"branch_heavy" ~main:"main"
      Ast.
        [
          mdef "main" ~params:[]
            [
              set "s" (i 0);
              for_ "k" (i 0) (i 500)
                [
                  if_ (eq (band (v "k") (i 1)) (i 0))
                    [ set "s" (add (v "s") (v "k")) ]
                    [
                      if_ (lt (v "s") (i 100_000))
                        [ set "s" (mul (v "s") (i 2)) ]
                        [ set "s" (sub (v "s") (v "k")) ];
                    ];
                  switch
                    (band (v "k") (i 3))
                    [
                      (0, [ set "s" (add (v "s") (i 1)) ]);
                      (1, [ set "s" (bxor (v "s") (i 21)) ]);
                      (2, [ set "s" (add (v "s") (i 3)) ]);
                    ]
                    [ set "s" (sub (v "s") (i 1)) ];
                ];
              ret (v "s");
            ];
        ]
  in
  let pair tag program =
    let st_o = Machine.create ~seed:7 program in
    let st_t = Machine.create ~seed:7 program in
    let eng = Codegen.create st_t in
    ignore (Codegen.run eng) (* translate up front; caches warm *);
    [
      Test.make
        ~name:(Printf.sprintf "engine/oracle-%s" tag)
        (Staged.stage (fun () -> ignore (Interp.run Interp.no_hooks st_o)));
      Test.make
        ~name:(Printf.sprintf "engine/threaded-%s" tag)
        (Staged.stage (fun () -> ignore (Codegen.run eng)));
    ]
  in
  pair "call-heavy" call_heavy @ pair "branch-heavy" branch_heavy

let write_engine_json ~seed ~wall rows =
  let ns suffix =
    match
      List.find_opt (fun (n, _, _) -> String.ends_with ~suffix n) rows
    with
    | Some (_, e, _) -> e
    | None -> nan
  in
  let speedup tag =
    ns ("engine/oracle-" ^ tag) /. ns ("engine/threaded-" ^ tag)
  in
  let oc = open_out "BENCH_engine.json" in
  Printf.fprintf oc "{\n  \"seed\": %d,\n  \"suite_wall_clock_s\": %.3f,\n"
    seed wall;
  Printf.fprintf oc "  \"speedup\": { \"call_heavy\": %.2f, \"branch_heavy\": %.2f },\n"
    (speedup "call-heavy") (speedup "branch-heavy");
  Printf.fprintf oc "  \"results\": [\n";
  let rows = List.sort compare rows in
  List.iteri
    (fun j (name, estimate, r2) ->
      Printf.fprintf oc
        "    { \"name\": \"%s\", \"ns_per_run\": %.1f, \"r_square\": %.4f }%s\n"
        name estimate r2
        (if j = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf
    "\n[engine: threaded is %.2fx (call-heavy) / %.2fx (branch-heavy) vs \
     oracle; BENCH_engine.json written]\n%!"
    (speedup "call-heavy") (speedup "branch-heavy")

let run_micro ~seed () =
  let t0 = Unix.gettimeofday () in
  Printf.printf "\n=== microbenchmarks (Bechamel, ns/run) ===\n%!";
  let tests =
    Test.make_grouped ~name:"pep" (micro_tests () @ engine_tests ())
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e
          | Some [] | None -> nan
        in
        let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
        (name, estimate, r2) :: acc)
      results []
  in
  List.iter
    (fun (name, estimate, r2) ->
      Printf.printf "%-32s %12.1f ns/run   r²=%.4f\n" name estimate r2)
    (List.sort compare rows);
  write_engine_json ~seed ~wall:(Unix.gettimeofday () -. t0) rows

let () =
  let ids, scale, seed, jobs, cache_dir, micro_only = parse_args () in
  if micro_only then run_micro ~seed ()
  else if ids <> [] then run_figures ids scale seed jobs cache_dir
  else begin
    run_figures Exp_figures.ids scale seed jobs cache_dir;
    run_micro ~seed ()
  end
