(* Benchmark harness.

   With no arguments: reproduce every table and figure of the paper's
   evaluation (see DESIGN.md's per-experiment index), then run the
   Bechamel microbenchmark suite over the library's hot operations.

   With arguments: run only the named experiments, e.g.
     dune exec bench/main.exe fig6 fig8
   Recognized extra flags: --scale F (resize workloads), --seed N,
   --micro (microbenchmarks only). *)

let parse_args () =
  let ids = ref [] and scale = ref 1.0 and seed = ref 42 and micro = ref false in
  let rec go = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        scale := float_of_string v;
        go rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        go rest
    | "--micro" :: rest ->
        micro := true;
        go rest
    | id :: rest ->
        if not (List.mem id Exp_figures.ids) then begin
          Printf.eprintf "unknown experiment %s (known: %s)\n" id
            (String.concat " " Exp_figures.ids);
          exit 1
        end;
        ids := id :: !ids;
        go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  (List.rev !ids, !scale, !seed, !micro)

let run_figures ids scale seed =
  let t0 = Unix.gettimeofday () in
  Printf.printf
    "PEP reproduction: %d benchmarks, scale %.2f, seed %d\n%!"
    (List.length Suite.names) scale seed;
  let caches =
    List.map Exp_cache.create (Exp_harness.suite_envs ~scale ~seed ())
  in
  List.iter (fun id -> Exp_figures.print (Exp_figures.by_id id caches)) ids;
  Printf.printf "\n[figures done in %.1fs]\n%!" (Unix.gettimeofday () -. t0)

(* ------------------------- microbenchmarks ------------------------- *)

open Bechamel
open Toolkit

let micro_tests () =
  (* a mid-sized method with loops and branches as the common subject *)
  let program = Workload.program ~size:4 (Suite.find "jython") in
  let exec = Program.find program "exec" in
  let cfg = To_cfg.cfg exec in
  let dag = Dag.build Dag.Loop_header cfg in
  let numbering = Numbering.ball_larus dag in
  let plan = Instrument.of_numbering numbering in
  let n_paths = Numbering.n_paths numbering in
  let freq (e : Dag.edge) = (e.Dag.idx * 37) land 255 in
  let profile_pair =
    let actual = Edge_profile.create_table ~n_methods:1 in
    let estimated = Edge_profile.create_table ~n_methods:1 in
    for br = 0 to 63 do
      Edge_profile.add actual.(0) br ~taken:true ((br * 13) land 1023);
      Edge_profile.add actual.(0) br ~taken:false ((br * 7) land 511);
      Edge_profile.add estimated.(0) br ~taken:true ((br * 11) land 1023);
      Edge_profile.add estimated.(0) br ~taken:false ((br * 5) land 511)
    done;
    (actual, estimated)
  in
  let tiny_program =
    Compile.program ~name:"tiny" ~main:"main"
      [
        Ast.mdef "main" ~params:[]
          Ast.
            [
              set "s" (i 0);
              for_ "k" (i 0) (i 100)
                [
                  if_ (eq (band (v "k") (i 3)) (i 0))
                    [ set "s" (add (v "s") (v "k")) ]
                    [ set "s" (add (v "s") (i 1)) ];
                ];
              ret (v "s");
            ];
      ]
  in
  let sampler = Sampling.create (Sampling.pep ~samples:64 ~stride:17) in
  [
    (* fig6/fig7 machinery: instrumentation plan construction per compile *)
    Test.make ~name:"pass/dag-build"
      (Staged.stage (fun () -> ignore (Dag.build Dag.Loop_header cfg)));
    Test.make ~name:"pass/ball-larus-numbering"
      (Staged.stage (fun () -> ignore (Numbering.ball_larus dag)));
    Test.make ~name:"pass/smart-numbering"
      (Staged.stage (fun () -> ignore (Numbering.smart ~freq dag)));
    Test.make ~name:"pass/instrument-plan"
      (Staged.stage (fun () -> ignore (Instrument.of_numbering numbering)));
    (* fig8/fig9 machinery: what a sample costs the runtime *)
    Test.make ~name:"sample/reconstruct-path"
      (Staged.stage (fun () ->
           ignore (Reconstruct.cfg_edges numbering (n_paths / 2))));
    Test.make ~name:"sample/sampler-step"
      (Staged.stage (fun () ->
           if not (Sampling.active sampler) then Sampling.activate sampler;
           ignore (Sampling.step sampler)));
    Test.make ~name:"sample/static-ops"
      (Staged.stage (fun () -> ignore (Instrument.static_ops plan)));
    (* the substrate itself *)
    Test.make ~name:"vm/interp-100-iter-loop"
      (Staged.stage (fun () ->
           let st = Machine.create ~seed:1 tiny_program in
           ignore (Interp.run Interp.no_hooks st)));
    Test.make ~name:"vm/prng-next"
      (let prng = Prng.create ~seed:9 in
       Staged.stage (fun () -> ignore (Prng.next prng)));
    (* fig10/fig11 machinery: layout computation per opt-compile *)
    Test.make ~name:"opt/layout-compute"
      (let prof = (fst profile_pair).(0) in
       Staged.stage (fun () -> ignore (Layout.compute cfg prof)));
    (* accuracy metrics over a 64-branch profile *)
    Test.make ~name:"metric/relative-overlap"
      (let actual, estimated = profile_pair in
       Staged.stage (fun () ->
           ignore (Accuracy.relative_overlap ~actual ~estimated)));
    Test.make ~name:"metric/absolute-overlap"
      (let actual, estimated = profile_pair in
       Staged.stage (fun () ->
           ignore (Accuracy.absolute_overlap ~actual ~estimated)));
  ]

let run_micro () =
  Printf.printf "\n=== microbenchmarks (Bechamel, ns/run) ===\n%!";
  let tests = Test.make_grouped ~name:"pep" (micro_tests ()) in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e
          | Some [] | None -> nan
        in
        let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
        (name, estimate, r2) :: acc)
      results []
  in
  List.iter
    (fun (name, estimate, r2) ->
      Printf.printf "%-32s %12.1f ns/run   r²=%.4f\n" name estimate r2)
    (List.sort compare rows)

let () =
  let ids, scale, seed, micro_only = parse_args () in
  if micro_only then run_micro ()
  else if ids <> [] then run_figures ids scale seed
  else begin
    run_figures Exp_figures.ids scale seed;
    run_micro ()
  end
