(* Benchmark harness.

   With no arguments: reproduce every table and figure of the paper's
   evaluation (see DESIGN.md's per-experiment index), then run the
   Bechamel microbenchmark suite over the library's hot operations.

   With arguments: run only the named experiments, e.g.
     dune exec bench/main.exe fig6 fig8
   Recognized extra flags: --scale F (resize workloads), --seed N,
   --jobs N (shard runs over N worker domains), --cache-dir DIR
   (persistent on-disk run cache), --no-cache (ignore --cache-dir),
   --micro (microbenchmarks only), --json-out FILE (where the engine
   comparison JSON goes; default BENCH_engine.json).  The micro pass
   also writes the execution engine comparison (interpreter oracle vs
   flat threaded code, fused and unfused) to that file. *)

let parse_args () =
  let ids = ref [] and scale = ref 1.0 and seed = ref 42 and micro = ref false in
  let jobs = ref 1 and cache_dir = ref None and no_cache = ref false in
  let json_out = ref "BENCH_engine.json" in
  let rec go = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        scale := float_of_string v;
        go rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        go rest
    | "--jobs" :: v :: rest ->
        jobs := int_of_string v;
        go rest
    | "--cache-dir" :: v :: rest ->
        cache_dir := Some v;
        go rest
    | "--no-cache" :: rest ->
        no_cache := true;
        go rest
    | "--micro" :: rest ->
        micro := true;
        go rest
    | "--json-out" :: v :: rest ->
        json_out := v;
        go rest
    | id :: rest ->
        if not (List.mem id Exp_figures.ids) then begin
          Printf.eprintf "unknown experiment %s (known: %s)\n" id
            (String.concat " " Exp_figures.ids);
          exit 1
        end;
        ids := id :: !ids;
        go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  let cache_dir = if !no_cache then None else !cache_dir in
  (List.rev !ids, !scale, !seed, !jobs, cache_dir, !micro, !json_out)

let print_cache_report caches =
  let tot f = List.fold_left (fun acc c -> acc + f (Exp_cache.stats c)) 0 caches in
  let memory = tot (fun s -> s.Exp_cache.memory_hits)
  and disk = tot (fun s -> s.Exp_cache.disk_hits)
  and executed = tot (fun s -> s.Exp_cache.executed)
  and errors = tot (fun s -> s.Exp_cache.store_errors) in
  Printf.printf
    "[exp-cache] exp.cache_hit=%d exp.cache_miss=%d memory_hits=%d \
     disk_hits=%d executed=%d store_errors=%d\n%!"
    (memory + disk) executed memory disk executed errors;
  List.iter
    (fun c ->
      List.iter
        (fun d -> Format.eprintf "bench: cache: %a@." Dcg.pp_parse_error d)
        (Exp_cache.diagnostics c))
    caches

let run_figures ids scale seed jobs cache_dir =
  let t0 = Unix.gettimeofday () in
  Printf.printf
    "PEP reproduction: %d benchmarks, scale %.2f, seed %d, jobs %d\n%!"
    (List.length Suite.names) scale seed jobs;
  let caches =
    List.map
      (fun env -> Exp_cache.create ?cache_dir env)
      (Exp_pool.suite_envs ~scale ~jobs ~seed ())
  in
  Exp_pool.prefetch ~jobs caches ids;
  List.iter (fun id -> Exp_figures.print (Exp_figures.by_id id caches)) ids;
  if cache_dir <> None then print_cache_report caches;
  Printf.printf "\n[figures done in %.1fs]\n%!" (Unix.gettimeofday () -. t0)

(* ------------------------- microbenchmarks ------------------------- *)

open Bechamel
open Toolkit

(* Each micro is measured in its own Bechamel run, preceded by a major
   GC + compaction so one test's garbage never lands in another's
   measurement window.  Sub-100ns operations are additionally batched:
   the staged closure runs the operation [batch] times and the OLS
   estimate is divided back down, which pushes the per-run cost far
   above the clock/loop overhead that otherwise dominates the residue
   (prng-next used to report r² 0.03; batched it is ~1.0). *)
type micro = { mtest : Test.t; batch : int }

let one ?(batch = 1) ~name fn =
  if batch = 1 then { mtest = Test.make ~name (Staged.stage fn); batch }
  else
    {
      mtest =
        Test.make ~name
          (Staged.stage (fun () ->
               for _ = 1 to batch do
                 fn ()
               done));
      batch;
    }

let micro_tests () =
  (* a mid-sized method with loops and branches as the common subject *)
  let program = Workload.program ~size:4 (Suite.find "jython") in
  let exec = Program.find program "exec" in
  let cfg = To_cfg.cfg exec in
  let dag = Dag.build Dag.Loop_header cfg in
  let numbering = Numbering.ball_larus dag in
  let plan = Instrument.of_numbering numbering in
  let n_paths = Numbering.n_paths numbering in
  let freq (e : Dag.edge) = (e.Dag.idx * 37) land 255 in
  let profile_pair =
    let actual = Edge_profile.create_table ~n_methods:1 in
    let estimated = Edge_profile.create_table ~n_methods:1 in
    for br = 0 to 63 do
      Edge_profile.add actual.(0) br ~taken:true ((br * 13) land 1023);
      Edge_profile.add actual.(0) br ~taken:false ((br * 7) land 511);
      Edge_profile.add estimated.(0) br ~taken:true ((br * 11) land 1023);
      Edge_profile.add estimated.(0) br ~taken:false ((br * 5) land 511)
    done;
    (actual, estimated)
  in
  let tiny_program =
    Compile.program ~name:"tiny" ~main:"main"
      [
        Ast.mdef "main" ~params:[]
          Ast.
            [
              set "s" (i 0);
              for_ "k" (i 0) (i 100)
                [
                  if_ (eq (band (v "k") (i 3)) (i 0))
                    [ set "s" (add (v "s") (v "k")) ]
                    [ set "s" (add (v "s") (i 1)) ];
                ];
              ret (v "s");
            ];
      ]
  in
  let sampler = Sampling.create (Sampling.pep ~samples:64 ~stride:17) in
  [
    (* fig6/fig7 machinery: instrumentation plan construction per compile *)
    one ~batch:4 ~name:"pass/dag-build" (fun () -> ignore (Dag.build Dag.Loop_header cfg));
    one ~batch:64 ~name:"pass/ball-larus-numbering" (fun () ->
        ignore (Numbering.ball_larus dag));
    one ~batch:16 ~name:"pass/smart-numbering" (fun () ->
        ignore (Numbering.smart ~freq dag));
    one ~batch:32 ~name:"pass/instrument-plan" (fun () ->
        ignore (Instrument.of_numbering numbering));
    (* fig8/fig9 machinery: what a sample costs the runtime *)
    one ~batch:128 ~name:"sample/reconstruct-path" (fun () ->
        ignore (Reconstruct.cfg_edges numbering (n_paths / 2)));
    one ~batch:4096 ~name:"sample/sampler-step" (fun () ->
        if not (Sampling.active sampler) then Sampling.activate sampler;
        ignore (Sampling.step sampler));
    one ~batch:64 ~name:"sample/static-ops" (fun () ->
        ignore (Instrument.static_ops plan));
    (* the substrate itself *)
    one ~batch:4 ~name:"vm/interp-100-iter-loop" (fun () ->
        let st = Machine.create ~seed:1 tiny_program in
        ignore (Interp.run Interp.no_hooks st));
    (let prng = Prng.create ~seed:9 in
     one ~batch:4096 ~name:"vm/prng-next" (fun () -> ignore (Prng.next prng)));
    (* fig10/fig11 machinery: layout computation per opt-compile *)
    (let prof = (fst profile_pair).(0) in
     one ~batch:2 ~name:"opt/layout-compute" (fun () -> ignore (Layout.compute cfg prof)));
    (* the workload generator: spec codec and program synthesis *)
    (let s = Wgen.print Wgen.default in
     one ~batch:256 ~name:"gen/spec-parse" (fun () ->
         ignore (Result.get_ok (Wgen.parse s))));
    one ~batch:4 ~name:"gen/build-program" (fun () ->
        ignore (Workload.program ~size:5 (Wgen.workload Wgen.default)));
    (* accuracy metrics over a 64-branch profile *)
    (let actual, estimated = profile_pair in
     one ~batch:8 ~name:"metric/relative-overlap" (fun () ->
         ignore (Accuracy.relative_overlap ~actual ~estimated)));
    (let actual, estimated = profile_pair in
     one ~batch:4 ~name:"metric/absolute-overlap" (fun () ->
         ignore (Accuracy.absolute_overlap ~actual ~estimated)));
  ]

(* Oracle-vs-threaded engine comparison (DESIGN.md "Execution engine").
   Machines are created once, outside the staged closures, so the
   measured cost is steady-state execution: the interpreter's dispatch
   loop vs flat threaded code with warm inline caches, with and without
   profile-guided superinstruction fusion. *)

(* Hot-block masks for the fusion planner, derived the same way the
   driver derives them — from the VM's own PEP edge profile, collected
   by a short PEP(64,17)-profiled run of the same program. *)
let pep_hot_masks program =
  let st = Machine.create ~seed:7 program in
  let d =
    Driver.create
      {
        Driver.default_options with
        opt_profile = Driver.From_pep;
        pep =
          Some
            {
              Driver.sampling = Sampling.pep ~samples:64 ~stride:17;
              zero = `Hottest;
              numbering = `Smart;
            };
      }
      st
  in
  ignore (Driver.run d);
  ignore (Driver.run d);
  let n_methods = Program.n_methods program in
  let edges =
    match Driver.pep d with
    | Some p -> p.Pep.edges
    | None -> Edge_profile.create_table ~n_methods
  in
  Array.init n_methods (fun midx ->
      let cfg = To_cfg.cfg (Program.method_of_index program midx) in
      let freqs = Freq_estimate.block_freqs cfg edges.(midx) in
      let top = Array.fold_left Float.max 0.0 freqs in
      Array.map (fun f -> f > 0.0 && f >= 0.02 *. top) freqs)

(* The two gated engine micros.  call-heavy: ~1300 calls per run (a
   call every ~25 bytecode instructions) through recursive fib plus a
   polymorphic-helper loop whose leaves carry realistic branchy bodies;
   branch-heavy: a tight loop of data-dependent if/else and switch
   dispatch with no calls at all. *)
let call_heavy_program () =
  Compile.program ~name:"call_heavy" ~main:"main"
    Ast.
      [
        mdef "fib" ~params:[ "n" ]
          [
            if_ (lt (v "n") (i 2))
              [ ret (v "n") ]
              [
                ret
                  (add
                     (call "fib" [ sub (v "n") (i 1) ])
                     (call "fib" [ sub (v "n") (i 2) ]));
              ];
          ];
        mdef "clamp" ~params:[ "x"; "lo"; "hi" ]
          [
            if_ (lt (v "x") (v "lo")) [ ret (v "lo") ] [];
            if_ (gt (v "x") (v "hi")) [ ret (v "hi") ] [];
            ret (v "x");
          ];
        mdef "mix" ~params:[ "a"; "b" ]
          [
            set "x" (add (mul (v "a") (i 3)) (band (v "b") (i 1023)));
            switch
              (band (v "x") (i 15))
              [
                (0, [ set "x" (add (v "x") (v "b")) ]);
                (1, [ set "x" (bxor (v "x") (v "a")) ]);
                (2, [ set "x" (sub (v "x") (i 5)) ]);
                (3, [ set "x" (add (v "x") (i 9)) ]);
                (4, [ set "x" (bxor (v "x") (i 255)) ]);
                (5, [ set "x" (add (v "x") (v "a")) ]);
                (6, [ set "x" (sub (v "x") (v "a")) ]);
                (7, [ set "x" (bxor (v "x") (i 85)) ]);
                (8, [ set "x" (add (v "x") (i 17)) ]);
                (9, [ set "x" (bxor (v "x") (i 51)) ]);
                (10, [ set "x" (sub (v "x") (i 2)) ]);
                (11, [ set "x" (add (v "x") (i 33)) ]);
              ]
              [ set "x" (sub (v "x") (v "b")) ];
            switch
              (band (v "b") (i 3))
              [
                (0, [ set "x" (add (v "x") (i 1)) ]);
                (1, [ set "x" (bxor (v "x") (i 21)) ]);
                (2, [ set "x" (add (v "x") (i 3)) ]);
              ]
              [ set "x" (sub (v "x") (i 1)) ];
            if_ (eq (band (v "x") (i 1)) (i 0))
              [ set "x" (add (v "x") (v "b")) ]
              [ set "x" (bxor (v "x") (v "a")) ];
            ret (band (v "x") (i 0xFFFFF));
          ];
        mdef "main" ~params:[]
          [
            set "s" (call "fib" [ i 9 ]);
            for_ "k" (i 0) (i 300)
              [
                set "s" (call "mix" [ v "k"; v "s" ]);
                set "t" (call "mix" [ v "s"; v "k" ]);
                set "s" (add (v "s") (call "clamp" [ v "t"; i 0; i 65535 ]));
                set "s" (call "mix" [ v "s"; v "t" ]);
              ];
            ret (v "s");
          ];
      ]

let branch_heavy_program () =
  Compile.program ~name:"branch_heavy" ~main:"main"
    Ast.
      [
        mdef "main" ~params:[]
          [
            set "s" (i 0);
            for_ "k" (i 0) (i 500)
              [
                if_ (eq (band (v "k") (i 1)) (i 0))
                  [ set "s" (add (v "s") (v "k")) ]
                  [
                    if_ (lt (v "s") (i 100_000))
                      [ set "s" (mul (v "s") (i 2)) ]
                      [ set "s" (sub (v "s") (v "k")) ];
                  ];
                switch
                  (band (v "k") (i 3))
                  [
                    (0, [ set "s" (add (v "s") (i 1)) ]);
                    (1, [ set "s" (bxor (v "s") (i 21)) ]);
                    (2, [ set "s" (add (v "s") (i 3)) ]);
                  ]
                  [ set "s" (sub (v "s") (i 1)) ];
              ];
            ret (v "s");
          ];
      ]

(* Per-micro machines and engines, shared by the Bechamel rows and the
   speedup measurement.  [batches] are the Bechamel batching factors
   (oracle, fused, nofuse), sized so each staged call runs long enough
   for a clean OLS fit. *)
type engine_setup = {
  etag : string;
  oracle_st : Machine.t;
  e_fused : Codegen.t;
  e_nofuse : Codegen.t;
  batches : int * int * int;
}

let nofuse_tiers = { Codegen.default_tiers with Codegen.fuse = false }

let engine_setups () =
  List.map
    (fun (etag, program, batches) ->
      let masks = pep_hot_masks program in
      let engine_with tiers =
        let st = Machine.create ~seed:7 program in
        let eng = Codegen.create ~tiers st in
        Array.iteri (fun midx hot -> Codegen.set_hot_blocks eng midx hot) masks;
        ignore (Codegen.run eng) (* translate up front; caches warm *);
        eng
      in
      {
        etag;
        oracle_st = Machine.create ~seed:7 program;
        e_fused = engine_with Codegen.default_tiers;
        e_nofuse = engine_with nofuse_tiers;
        batches;
      })
    [
      ("call-heavy", call_heavy_program (), (1, 4, 2));
      ("branch-heavy", branch_heavy_program (), (4, 8, 4));
    ]

let engine_tests setups =
  List.concat_map
    (fun s ->
      let bo, bf, bn = s.batches in
      [
        one ~batch:bo
          ~name:(Printf.sprintf "engine/oracle-%s" s.etag)
          (fun () -> ignore (Interp.run Interp.no_hooks s.oracle_st));
        one ~batch:bf
          ~name:
            (Printf.sprintf "engine/%s-%s"
               (Codegen.tier_name Codegen.default_tiers)
               s.etag)
          (fun () -> ignore (Codegen.run s.e_fused));
        (* fusion ablation: same flat engine, superinstructions off *)
        one ~batch:bn
          ~name:
            (Printf.sprintf "engine/%s-%s" (Codegen.tier_name nofuse_tiers)
               s.etag)
          (fun () -> ignore (Codegen.run s.e_nofuse));
      ])
    setups

(* The official speedup numbers.  Per-variant Bechamel runs happen in
   disjoint time windows, so host interference between windows lands
   directly in any ratio of their estimates.  Instead the variants are
   timed round-robin in small chunks inside the same window and the
   reported speedup is the ratio of per-variant minima: on a
   steal-noisy virtualized host the minimum chunk is each variant's
   uninterrupted cost, which is the quantity the ratio is about.  The
   median of per-round ratios is reported alongside as a
   drift-conservative second opinion. *)
let time_group iters fns =
  let k = Array.length fns in
  Array.iter (fun f -> ignore (f ()); ignore (f ())) fns;
  let rounds = 96 in
  let per = max 1 (iters / rounds) in
  let dts = Array.make_matrix rounds k infinity in
  for r = 0 to rounds - 1 do
    for j = 0 to k - 1 do
      let f = fns.(j) in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to per do
        ignore (f ())
      done;
      dts.(r).(j) <- (Unix.gettimeofday () -. t0) /. float_of_int per
    done
  done;
  dts

let min_ratio dts num den =
  let best j =
    Array.fold_left (fun acc (row : float array) -> Float.min acc row.(j))
      infinity dts
  in
  best num /. best den

let median_ratio dts num den =
  let rs = Array.map (fun (row : float array) -> row.(num) /. row.(den)) dts in
  Array.sort compare rs;
  rs.(Array.length rs / 2)

(* (tag, fused speedup, nofuse speedup, fused median-of-ratios).
   Three independent passes per workload, minima pooled across all
   rounds: a steal burst long enough to taint one whole pass still
   leaves the others' minima intact. *)
let engine_speedups setups =
  List.map
    (fun s ->
      let fns =
        [|
          (fun () -> Interp.run Interp.no_hooks s.oracle_st);
          (fun () -> Codegen.run s.e_fused);
          (fun () -> Codegen.run s.e_nofuse);
        |]
      in
      let dts =
        Array.concat
          (List.init 3 (fun _ ->
               Gc.compact ();
               time_group 4800 fns))
      in
      (s.etag, min_ratio dts 0 1, min_ratio dts 0 2, median_ratio dts 0 1))
    setups

let write_engine_json ~seed ~wall ~json_out ~speedups rows =
  let tier = Codegen.tier_name Codegen.default_tiers in
  let pick f tag =
    match List.find_opt (fun (t, _, _, _) -> t = tag) speedups with
    | Some s -> f s
    | None -> nan
  in
  let speedup = pick (fun (_, f, _, _) -> f) in
  let speedup_nofuse = pick (fun (_, _, n, _) -> n) in
  let speedup_median = pick (fun (_, _, _, m) -> m) in
  let oc = open_out json_out in
  Printf.fprintf oc "{\n  \"seed\": %d,\n  \"suite_wall_clock_s\": %.3f,\n"
    seed wall;
  Printf.fprintf oc "  \"engine_tier\": \"%s\",\n" tier;
  Printf.fprintf oc
    "  \"speedup\": { \"call_heavy\": %.2f, \"branch_heavy\": %.2f },\n"
    (speedup "call-heavy") (speedup "branch-heavy");
  Printf.fprintf oc
    "  \"speedup_nofuse\": { \"call_heavy\": %.2f, \"branch_heavy\": %.2f },\n"
    (speedup_nofuse "call-heavy")
    (speedup_nofuse "branch-heavy");
  Printf.fprintf oc
    "  \"speedup_median\": { \"call_heavy\": %.2f, \"branch_heavy\": %.2f },\n"
    (speedup_median "call-heavy")
    (speedup_median "branch-heavy");
  Printf.fprintf oc "  \"results\": [\n";
  let rows = List.sort compare rows in
  List.iteri
    (fun j (name, estimate, r2) ->
      Printf.fprintf oc
        "    { \"name\": \"%s\", \"ns_per_run\": %.1f, \"r_square\": %.4f }%s\n"
        name estimate r2
        (if j = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf
    "\n[engine: %s is %.2fx (call-heavy) / %.2fx (branch-heavy) vs oracle; \
     %s written]\n%!"
    tier (speedup "call-heavy") (speedup "branch-heavy") json_out

let run_micro ~seed ~json_out () =
  let t0 = Unix.gettimeofday () in
  Printf.printf "\n=== microbenchmarks (Bechamel, ns/run) ===\n%!";
  let cfg = Benchmark.cfg ~limit:3000 ~quota:(Time.second 1.0) ~kde:None () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let setups = engine_setups () in
  (* One Bechamel run per test, each from a compacted heap, so the
     allocation profile of one measurement never pollutes the next.  A
     run whose OLS fit comes back poor was interrupted by the host
     (steal time lands in the residuals, not the slope), so it is
     retried a few times and the best-fitting attempt kept. *)
  let measure m =
    Gc.compact ();
    let grouped = Test.make_grouped ~name:"pep" [ m.mtest ] in
    let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e /. float_of_int m.batch
          | Some [] | None -> nan
        in
        let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
        (name, estimate, r2) :: acc)
      results []
  in
  let rec best_of m tries best =
    let rows = measure m in
    let r2_of rows =
      List.fold_left (fun acc (_, _, r2) -> Float.min acc r2) infinity rows
    in
    let best =
      match best with
      | Some prev when r2_of prev >= r2_of rows -> Some prev
      | _ -> Some rows
    in
    if r2_of (Option.get best) >= 0.9 || tries >= 5 then Option.get best
    else best_of m (tries + 1) best
  in
  let rows =
    List.concat_map
      (fun m -> best_of m 1 None)
      (micro_tests () @ engine_tests setups)
  in
  List.iter
    (fun (name, estimate, r2) ->
      Printf.printf "%-40s %12.1f ns/run   r²=%.4f\n" name estimate r2)
    (List.sort compare rows);
  let speedups = engine_speedups setups in
  write_engine_json ~seed
    ~wall:(Unix.gettimeofday () -. t0)
    ~json_out ~speedups rows

let () =
  let ids, scale, seed, jobs, cache_dir, micro_only, json_out = parse_args () in
  if micro_only then run_micro ~seed ~json_out ()
  else if ids <> [] then run_figures ids scale seed jobs cache_dir
  else begin
    run_figures Exp_figures.ids scale seed jobs cache_dir;
    run_micro ~seed ~json_out ()
  end
