program collatz {
  globals 2;
  heap 16;

  method steps(n) {
    count = 0;
    while (n != 1) {
      if ((n & 1) == 0) {
        n = n / 2;
      } else {
        n = 3 * n + 1;
      }
      count = count + 1;
    }
    return count;
  }

  method main() {
    total = 0;
    longest = 0;
    for (n = 2; n < 6000) {
      s = steps(n);
      total = total + s;
      if (s > longest) { longest = s; }
    }
    g[0] = longest;
    return total;
  }
}
