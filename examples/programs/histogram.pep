program histogram {
  globals 1;
  heap 32;

  method bucket(v) {
    if (v < 8) {
      if (v < 4) { b = 0; } else { b = 1; }
    } else {
      if (v < 16) { b = 2; } else { b = 3; }
    }
    return b;
  }

  method main() {
    x = 1;
    for (i = 0; i < 20000) {
      x = (x * 1103515245 + 12345) & 1048575;
      b = bucket(x & 31);
      h[b] = h[b] + 1;
    }
    peak = 0;
    for (b = 0; b < 4) {
      if (h[b] > peak) { peak = h[b]; }
    }
    g[0] = peak;
    return peak;
  }
}
