(* Profiling without path-end sample points (paper §3.2's sketch): in a
   system with no thread-switching yieldpoints, a timer sample can land
   anywhere mid-path.  The yieldpoint handler still receives the path
   register, and the same greedy algorithm that reconstructs full paths
   recovers the *partially taken* path from the partial sum.

   This example samples the register at every yieldpoint (including
   method entries, where the path has just begun) and builds an edge
   profile purely from partial paths, then checks it against ground
   truth.

   Run with: dune exec examples/partial_paths.exe *)

let () =
  let program = Workload.program ~size:250 (Suite.find "jess") in
  let seed = 31 in

  (* ground truth *)
  let st0 = Machine.create ~seed program in
  let perfect = Profiler.perfect_edge st0 in
  ignore (Interp.run (Interp.compose (Tick.hooks ()) perfect.Profiler.ehooks) st0);

  (* partial-path sampler: plans provide the always-on register updates;
     on_register hands us the live value at every yieldpoint *)
  let st = Machine.create ~seed program in
  let plans =
    Profile_hooks.make_plans ~mode:Dag.Loop_header
      ~number:(fun _ dag -> Numbering.ball_larus dag)
      st
  in
  let edges = Edge_profile.create_table ~n_methods:(Program.n_methods program) in
  let samples = ref 0 and unusable = ref 0 in
  (* burst sampling, PEP-style, but at arbitrary yieldpoints *)
  let sampler = Sampling.create (Sampling.pep ~samples:64 ~stride:17) in
  let on_register (st : Machine.t) (frame : Interp.frame) blk ~r =
    if st.yield_flag then begin
      Sampling.activate sampler;
      Machine.rearm_timer st
    end;
    if Sampling.active sampler && Sampling.step sampler = `Take then begin
      incr samples;
      match plans.(frame.fmeth) with
      | None -> incr unusable
      | Some (plan : Instrument.t) -> (
          let numbering = plan.Instrument.numbering in
          let stop_node = Dag.in_node (Numbering.dag numbering) blk in
          match Reconstruct.partial_cfg_edges numbering ~stop_node r with
          | partial ->
              List.iter
                (fun (e : Cfg.edge) ->
                  match e.attr with
                  | Cfg.Taken br ->
                      Edge_profile.incr edges.(frame.fmeth) br ~taken:true
                  | Cfg.Not_taken br ->
                      Edge_profile.incr edges.(frame.fmeth) br ~taken:false
                  | Cfg.Seq -> ())
                partial
          | exception Invalid_argument _ -> incr unusable)
    end
  in
  let hooks =
    Profile_hooks.path_hooks ~on_register ~plans ~count_cost:`None
      ~on_path_end:(fun _ _ ~path_id:_ -> ())
      ()
  in
  ignore (Interp.run hooks st);

  Printf.printf
    "partial-path sampling: %d samples at arbitrary yieldpoints (%d \
     unusable)\n"
    !samples !unusable;
  Printf.printf
    "edge profile accuracy from partial paths alone: %.1f%% relative \
     overlap\n"
    (100.
    *. Accuracy.relative_overlap ~actual:perfect.Profiler.etable
         ~estimated:edges);
  Printf.printf
    "\nNo count[r]++ ever executed and no sample point was a path end —\n\
     the register plus greedy partial reconstruction carried all the \
     information.\n"
