(* Hot-path identification on a realistic workload: collect a PEP profile
   and a perfect instrumentation-based profile of the jython-analogue
   interpreter benchmark, then compare the hot-path sets the way the
   paper's accuracy metric does (Wall weight matching, §6.3).

   Run with: dune exec examples/hot_paths.exe *)

let () =
  let workload = Suite.find "jython" in
  let program = Workload.program ~size:300 workload in
  let seed = 7 in

  (* perfect profile: full Ball-Larus instrumentation, counts every path *)
  let st_perfect = Machine.create ~seed program in
  let perfect = Profiler.perfect_path st_perfect in
  ignore
    (Interp.run
       (Interp.compose (Tick.hooks ()) perfect.Profiler.hooks)
       st_perfect);

  (* PEP profile: same numbering, sampled *)
  let st_pep = Machine.create ~seed program in
  let pep =
    Pep.create ~sampling:(Sampling.pep ~samples:64 ~stride:17) st_pep
  in
  ignore (Interp.run (Interp.compose (Tick.hooks ()) pep.Pep.hooks) st_pep);

  let exec_idx = Program.index program "exec" in
  let top_of table =
    List.filteri
      (fun rank _ -> rank < 10)
      (List.sort
         (fun (a : Path_profile.entry) b -> compare b.count a.count)
         (Path_profile.entries table.(exec_idx)))
  in
  Printf.printf "top paths of jython's dispatch loop (method `exec`):\n\n";
  Printf.printf "%-28s %-28s\n" "perfect (count)" "PEP(64,17) (samples)";
  let rows =
    List.map2
      (fun (a : Path_profile.entry) (b : Path_profile.entry) ->
        ( Printf.sprintf "path %-6d %10d" a.path_id a.count,
          Printf.sprintf "path %-6d %10d" b.path_id b.count ))
      (top_of perfect.Profiler.table)
      (top_of pep.Pep.paths)
  in
  List.iter (fun (a, b) -> Printf.printf "%-28s %-28s\n" a b) rows;

  let n_branches =
    Profiler.n_branches_resolver perfect.Profiler.plans perfect.Profiler.table
  in
  let accuracy =
    Accuracy.wall_path_accuracy ~n_branches ~actual:perfect.Profiler.table
      ~estimated:pep.Pep.paths ()
  in
  Printf.printf
    "\nWall weight-matching accuracy: %.1f%%  (%d samples vs %d true path \
     executions)\n"
    (100. *. accuracy) (Pep.n_samples pep)
    (Path_profile.table_total perfect.Profiler.table);

  (* overhead comparison: the reason PEP exists *)
  let base = Machine.create ~seed program in
  ignore (Interp.run (Tick.hooks ()) base);
  let pct st =
    100.
    *. (float_of_int st.Machine.cycles /. float_of_int base.Machine.cycles
       -. 1.)
  in
  Printf.printf "overhead: perfect instrumentation %+.1f%%, PEP %+.1f%%\n"
    (pct st_perfect) (pct st_pep)
