(* The full adaptive VM with PEP driving optimization (paper §6.5):
   run the phased pseudojbb analogue three ways —

   - base: the adaptive system optimizes with its one-time baseline
     profile only;
   - flipped: the optimizer is fed a deliberately wrong profile
     (every bias inverted), showing the layout model is really
     profile-sensitive;
   - PEP: PEP(64,17) collects a continuous edge profile and later
     recompilations consume it.

   Run with: dune exec examples/adaptive_optimization.exe *)

let run name opts program =
  let st = Machine.create ~seed:99 program in
  let driver = Driver.create opts st in
  let iter1, _ = Driver.run driver in
  let iter2, checksum = Driver.run driver in
  Printf.printf
    "%-10s iter1 %8.2f Mcycles   iter2 %8.2f Mcycles   compile %6.2f \
     Mcycles   recompilations %d\n"
    name
    (float_of_int iter1 /. 1e6)
    (float_of_int iter2 /. 1e6)
    (float_of_int (Driver.compile_cycles driver) /. 1e6)
    (Driver.recompilations driver);
  (driver, iter2, checksum)

let () =
  let program = Workload.program ~size:500 (Suite.find "pseudojbb") in
  let _, base_iter2, base_sum = run "base" Driver.default_options program in

  (* flipped: collect the base run's profile, flip it, feed it back *)
  let st = Machine.create ~seed:99 program in
  let pe = Profiler.perfect_edge st in
  ignore (Interp.run (Interp.compose (Tick.hooks ()) pe.Profiler.ehooks) st);
  let flipped = Edge_profile.flip_table pe.Profiler.etable in
  let _, flip_iter2, flip_sum =
    run "flipped"
      { Driver.default_options with opt_profile = Driver.Fixed flipped }
      program
  in

  let pep_opts =
    {
      Driver.mode = Driver.Adaptive { thresholds = Driver.default_thresholds };
      opt_profile = Driver.From_pep;
      pep =
        Some
          {
            Driver.sampling = Sampling.pep ~samples:64 ~stride:17;
            zero = `Hottest;
            numbering = `Smart;
          };
      inline = false;
      unroll = false;
      verify = true;
      deep_verify = false;
      engine = `Threaded;
      tiers = Codegen.default_tiers;
      telemetry = None;
      faults = None;
    }
  in
  let pep_driver, pep_iter2, pep_sum = run "PEP(64,17)" pep_opts program in

  assert (base_sum = flip_sum && base_sum = pep_sum);
  let pep = Option.get (Driver.pep pep_driver) in
  let planned, total = Pep.n_instrumented pep in
  Printf.printf
    "\nPEP instrumented %d/%d methods, took %d samples, saw %d distinct \
     paths\n"
    planned total (Pep.n_samples pep)
    (Array.fold_left
       (fun acc p -> acc + Path_profile.n_distinct p)
       0 pep.Pep.paths);
  let pct x = 100. *. ((float_of_int x /. float_of_int base_iter2) -. 1.) in
  Printf.printf
    "steady-state vs base: flipped profile %+.2f%%, PEP-driven %+.2f%%\n"
    (pct flip_iter2) (pct pep_iter2)
