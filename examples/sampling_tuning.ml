(* Sweep the PEP(SAMPLES, STRIDE) space on one benchmark and print the
   overhead/accuracy frontier — the trade-off behind the paper's choice
   of PEP(64,17), including the full-Arnold-Grove ablation (§4.4).

   Run with: dune exec examples/sampling_tuning.exe *)

let () =
  let env = Exp_harness.make_env ~seed:5 ~size:500 (Suite.find "jess") in
  let cache = Exp_cache.create env in
  let base = (Exp_cache.base cache).Exp_harness.meas.iter2 in
  let perfect = Option.get (Exp_cache.perfect_path cache).Exp_harness.ppaths in
  let n_branches =
    Profiler.n_branches_resolver perfect.Profiler.plans perfect.Profiler.table
  in
  let eval name sampling =
    let run =
      Exp_cache.run cache
        {
          (Exp_cache.config cache) with
          Exp_harness.profiling =
            Exp_harness.Pep_profiled
              { sampling; zero = `Hottest; numbering = `Smart };
        }
    in
    let pep = Option.get run.Exp_harness.pep in
    let acc =
      Accuracy.wall_path_accuracy ~n_branches ~actual:perfect.Profiler.table
        ~estimated:pep.Pep.paths ()
    in
    Printf.printf "%-14s overhead %+6.2f%%   path accuracy %5.1f%%   samples %7d\n"
      name
      (Exp_report.overhead ~base run.Exp_harness.meas.iter2)
      (100. *. acc) (Pep.n_samples pep)
  in
  Printf.printf "benchmark: jess (size %d, base %.1f Mcycles)\n\n" env.size
    (float_of_int base /. 1e6);
  eval "instr-only" Sampling.never;
  List.iter
    (fun (s, t) -> eval (Sampling.name (Sampling.pep ~samples:s ~stride:t))
        (Sampling.pep ~samples:s ~stride:t))
    [ (1, 1); (16, 17); (64, 1); (64, 17); (256, 17); (1024, 17) ];
  (* the ablation: stride between every sample *)
  List.iter
    (fun (s, t) ->
      eval
        (Sampling.name (Sampling.arnold_grove ~samples:s ~stride:t))
        (Sampling.arnold_grove ~samples:s ~stride:t))
    [ (64, 17) ];
  print_newline ();
  Printf.printf
    "PEP(64,17) is the paper's pick: striding before the first sample \
     de-biases\nthe timer cheaply; striding between samples (AG) pays \
     ~STRIDE times the\nopportunity cost for little accuracy gain.\n"
