(* Profile a program written in the textual surface language: parse it,
   verify it, and run it under PEP — the workflow a downstream user of
   the library would follow for their own programs.

   Run with: dune exec examples/custom_program.exe *)

let source =
  {|
program collatz {
  globals 4;
  heap 16;

  method steps(n) {
    count = 0;
    while (n != 1) {
      if ((n & 1) == 0) {
        n = n / 2;
      } else {
        n = 3 * n + 1;
      }
      count = count + 1;
    }
    return count;
  }

  method main() {
    total = 0;
    longest = 0;
    for (n = 2; n < 60000) {
      s = steps(n);
      total = total + s;
      if (s > longest) { longest = s; }
    }
    g[0] = longest;
    return total;
  }
}
|}

let () =
  let ast = Parse.program source in
  let program = Compile.pdef ast in
  Verify.program program;
  Printf.printf "parsed %s: %d methods, %d bytecode instructions\n"
    program.Program.name (Program.n_methods program)
    (Array.fold_left
       (fun acc m -> acc + Method.size m)
       0 program.Program.methods);

  let machine = Machine.create ~seed:1 program in
  let pep = Pep.create ~sampling:(Sampling.pep ~samples:64 ~stride:17) machine in
  let total = Interp.run (Interp.compose (Tick.hooks ()) pep.Pep.hooks) machine in
  Printf.printf "total Collatz steps: %d, longest chain: %d\n" total
    machine.Machine.globals.(0);

  (* the while-loop header paths: how often does each branch direction
     pair occur per iteration? *)
  let steps_idx = Program.index program "steps" in
  Printf.printf "\nsampled iteration paths of `steps` (%d samples total):\n"
    (Pep.n_samples pep);
  List.iter
    (fun (e : Path_profile.entry) ->
      Printf.printf "  path %d: %d samples, %d branch(es)\n" e.path_id e.count
        e.n_branches)
    (List.sort
       (fun (a : Path_profile.entry) b -> compare b.count a.count)
       (Path_profile.entries pep.Pep.paths.(steps_idx)));
  match Edge_profile.bias pep.Pep.edges.(steps_idx) 1 with
  | Some bias ->
      Printf.printf "\neven/odd branch bias observed by PEP: %.1f%% even\n"
        (100. *. bias)
  | None -> ()
