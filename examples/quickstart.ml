(* Quickstart: write a small program, run it under PEP, and print the
   path and edge profiles it collects.

   Run with: dune exec examples/quickstart.exe *)

open Ast

(* A method with an interesting path space: a loop whose body takes one
   of several acyclic paths per iteration. *)
let program =
  Compile.program ~name:"quickstart" ~main:"main"
    [
      mdef "classify" ~params:[ "x" ]
        [
          set "score" (i 0);
          if_ (lt (v "x") (i 40)) [ set "score" (i 1) ] [];
          if_ (eq (band (v "x") (i 7)) (i 0)) [ set "score" (add (v "score") (i 2)) ] [];
          ret (v "score");
        ];
      mdef "main" ~params:[]
        [
          set "sum" (i 0);
          for_ "k" (i 0) (i 200_000)
            [ set "sum" (add (v "sum") (call "classify" [ rnd 100 ])) ];
          ret (v "sum");
        ];
    ]

let () =
  (* 1. load the program into a machine *)
  let machine = Machine.create ~seed:2026 program in

  (* 2. attach PEP with the paper's recommended configuration *)
  let pep =
    Pep.create ~sampling:(Sampling.pep ~samples:64 ~stride:17) machine
  in

  (* 3. run: the tick driver owns the virtual timer, PEP samples at
     path-end yieldpoints *)
  let hooks = Interp.compose (Tick.hooks ()) pep.Pep.hooks in
  let result = Interp.run hooks machine in
  Printf.printf "program result: %d (%.1f Mcycles, %d samples)\n\n" result
    (float_of_int machine.Machine.cycles /. 1e6)
    (Pep.n_samples pep);

  (* 4. inspect the continuous path profile *)
  Program.iter_methods
    (fun m (meth : Method.t) ->
      let prof = pep.Pep.paths.(m) in
      if not (Path_profile.is_empty prof) then begin
        Printf.printf "hot paths of %s:\n" meth.Method.name;
        let entries =
          List.sort
            (fun (a : Path_profile.entry) b -> compare b.count a.count)
            (Path_profile.entries prof)
        in
        List.iteri
          (fun rank (e : Path_profile.entry) ->
            if rank < 5 then
              Printf.printf "  path %-3d sampled %6d times  (%d branches)\n"
                e.path_id e.count e.n_branches)
          entries
      end)
    program;

  (* 5. and the edge profile PEP derives from the same samples *)
  print_newline ();
  Program.iter_methods
    (fun m (meth : Method.t) ->
      let prof = pep.Pep.edges.(m) in
      if not (Edge_profile.is_empty prof) then begin
        Printf.printf "branch biases of %s:\n" meth.Method.name;
        List.iter
          (fun br ->
            match Edge_profile.bias prof br with
            | Some bias ->
                Printf.printf "  branch %d: %.0f%% taken (%d executions seen)\n"
                  br (100. *. bias) (Edge_profile.freq prof br)
            | None -> ())
          (Edge_profile.branch_ids prof)
      end)
    program
