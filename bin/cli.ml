(* The shared argument spec table.

   Every pepsim subcommand draws its common flags from here — one
   definition per flag, one docstring, one default — so `pepsim fleet`,
   `chaos`, `experiments`, `trace` and `top` can't drift apart on what
   `--seed`, `--jobs`, `--cache-dir` or `--out` mean.  Flags whose doc
   or default legitimately varies per command ([out], [scale]) are
   parameterized constructors rather than copies. *)

open Cmdliner

(* --- value conversions --------------------------------------------- *)

let sampling_conv =
  let parse s =
    let fail () = Error (`Msg (Printf.sprintf "bad sampling spec %S" s)) in
    match String.lowercase_ascii s with
    | "none" | "instr-only" -> Ok Sampling.never
    | "timer" -> Ok Sampling.timer_based
    | spec -> (
        (* pep:SAMPLES:STRIDE or ag:SAMPLES:STRIDE *)
        match String.split_on_char ':' spec with
        | [ "pep"; a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some samples, Some stride when samples > 0 && stride > 0 ->
                Ok (Sampling.pep ~samples ~stride)
            | _ -> fail ())
        | [ "ag"; a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some samples, Some stride when samples > 0 && stride > 0 ->
                Ok (Sampling.arnold_grove ~samples ~stride)
            | _ -> fail ())
        | _ -> fail ())
  in
  let print ppf c = Fmt.string ppf (Sampling.name c) in
  Arg.conv (parse, print)

(* --- the table ----------------------------------------------------- *)

let sampling_arg =
  let doc =
    "Sampling configuration: $(b,pep:SAMPLES:STRIDE), $(b,ag:SAMPLES:STRIDE), \
     $(b,timer), or $(b,instr-only)."
  in
  Arg.(
    value
    & opt sampling_conv (Sampling.pep ~samples:64 ~stride:17)
    & info [ "sampling" ] ~docv:"SPEC" ~doc)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Workload PRNG seed.")

let verify_arg =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:
          "Run the $(b,Pep_check) static passes and profile lint over the \
           results and exit nonzero on any error.")

let faults_arg =
  let doc =
    "Deterministic fault plan: comma-separated clauses like \
     $(b,seed=7,path-cap=64,compile-fail=0.2,sample-overrun=0.1,corrupt=0.5) \
     (also $(b,noop), $(b,edge-cap=N), $(b,compile-retries=N), \
     $(b,compile-backoff=N)); fleet-level sites: $(b,crash=P), \
     $(b,crash-restarts=N), $(b,torn-write=P), $(b,straggler=P), \
     $(b,straggler-timeout=N), $(b,seg-corrupt=P), $(b,seg-retries=N); \
     $(b,@FILE) reads clauses from a file.  The empty spec injects \
     nothing and is bit-identical to omitting the flag."
  in
  Arg.(value & opt string "" & info [ "faults" ] ~docv:"SPEC" ~doc)

let parse_faults spec =
  match Fault_plan.parse spec with
  | Ok plan -> plan
  | Error msg ->
      Printf.eprintf "--faults: %s\n" msg;
      exit 2

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Shard experiment runs across N parallel worker domains.  \
           Results are bit-identical to $(b,--jobs) $(i,1).")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persist completed runs to $(i,DIR) and recall them on later \
           invocations without re-executing.  Stale or damaged entries \
           are reported and recomputed.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Ignore $(b,--cache-dir): neither read nor write persisted runs.")

let size_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "size" ] ~docv:"N" ~doc:"Workload size (default per benchmark).")

let iters_arg =
  Arg.(
    value & opt int 2
    & info [ "iters" ] ~docv:"N" ~doc:"Application iterations to run.")

let advice_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "advice" ] ~docv:"FILE"
        ~doc:
          "Replay this advice file (see $(b,pepsim profiles --out)) \
           instead of running the adaptive system.")

let kind_arg =
  Arg.(
    value
    & opt (enum [ ("paths", `Paths); ("edges", `Edges); ("dcg", `Dcg) ]) `Paths
    & info [ "kind" ] ~docv:"KIND"
        ~doc:
          "Profile to render: $(b,paths) (sampled path profile), $(b,edges) \
           (sampled edge profile) or $(b,dcg) (tick-sampled call graph).")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit JSON instead of folded-stack text.")

let limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "limit" ] ~docv:"N" ~doc:"Show only the N hottest stacks.")

(* per-command doc, one spelling of the flag *)
let out_arg ~docv ~doc =
  Arg.(value & opt (some string) None & info [ "out" ] ~docv ~doc)

let scale_arg ~default =
  Arg.(
    value & opt float default
    & info [ "scale" ] ~docv:"F" ~doc:"Scale workload sizes by F.")

let workload_name_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"NAME"
        ~doc:
          "Benchmark name (see $(b,pepsim list)), a phased workload, or a \
           $(b,gen:) spec string (see $(b,pepsim gen)).")

(* --- shared helpers ------------------------------------------------ *)

let find_workload name =
  match Suite.resolve name with
  | Ok w -> w
  | Error msg ->
      Printf.eprintf "%s; try `pepsim list` or `pepsim gen describe`\n" msg;
      exit 2

(* Repeatable, comma-separable option values, blanks dropped. *)
let split_commas xs =
  List.filter (fun s -> s <> "") (List.concat_map (String.split_on_char ',') xs)

(* Comma-separable *workload* lists: a [gen:] spec itself contains
   commas, so axis fragments (key=value, not themselves a spec) are
   re-attached to the preceding gen: fragment instead of being taken
   for workload names. *)
let split_workloads xs =
  List.rev
    (List.fold_left
       (fun acc part ->
         match acc with
         | prev :: rest
           when Wgen.is_spec prev && (not (Wgen.is_spec part))
                && String.contains part '=' ->
             (prev ^ "," ^ part) :: rest
         | _ -> part :: acc)
       [] (split_commas xs))
