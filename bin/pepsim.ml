(* pepsim — command-line front end for the PEP reproduction.

   Subcommands:
     run          parse a textual program and profile it with PEP
     workload     run one suite benchmark under a profiling configuration
     experiments  regenerate the paper's tables and figures
     trace        emit a Chrome trace of an adaptive PEP run
     top          render PEP's continuous profile as folded stacks
     check        run the static verifier and profile lint
     chaos        fault-injection sweep with degradation invariants
     fleet        continuous profiling over a simulated fleet
                  (run/query/diff/watch/chaos)
     list         enumerate workloads and experiment ids

   Exit codes: 0 success; 1 a check, experiment or chaos invariant
   failed; 2 usage or input parse error. *)

open Cmdliner

(* Shared flags come from {!Cli}, the one spec table every subcommand
   draws from. *)

(* One aggregated accounting line (the exp.cache_hit / exp.cache_miss
   counters CI asserts on), plus any store diagnostics. *)
let print_cache_report caches =
  let tot f =
    List.fold_left (fun acc c -> acc + f (Exp_cache.stats c)) 0 caches
  in
  Printf.printf
    "[exp-cache] exp.cache_hit=%d exp.cache_miss=%d memory_hits=%d \
     disk_hits=%d executed=%d store_errors=%d\n"
    (tot (fun s -> s.Exp_cache.memory_hits + s.Exp_cache.disk_hits))
    (tot (fun s -> s.Exp_cache.executed))
    (tot (fun s -> s.Exp_cache.memory_hits))
    (tot (fun s -> s.Exp_cache.disk_hits))
    (tot (fun s -> s.Exp_cache.executed))
    (tot (fun s -> s.Exp_cache.store_errors));
  List.iter
    (fun c ->
      List.iter
        (fun e -> Fmt.epr "cache: %a@." Dcg.pp_parse_error e)
        (Exp_cache.diagnostics c))
    caches

let print_diags diags =
  List.iter (fun d -> Fmt.pr "%a@." Pep_check.pp_diagnostic d) diags

(* Static passes 1-3 over every method in both truncation modes (plus,
   when [deep], the pass-5 dataflow lints and unsafe-op justification),
   then — unless [static_only] — one profiled run (PEP sampling plus an
   exact edge profiler) whose collected profiles feed pass 4. *)
let check_program ?(static_only = false) ?(deep = false) ~sampling ~seed program
    =
  let diags =
    ref
      (if deep then Pep_check.check_program_deep program
       else Pep_check.check_program_static program)
  in
  let add ds = diags := !diags @ ds in
  if not static_only then begin
    let st = Machine.create ~seed program in
    let pep = Pep.create ~sampling st in
    let truth = Profiler.perfect_edge st in
    let hooks = Interp.compose (Tick.hooks ()) pep.Pep.hooks in
    let hooks = Interp.compose hooks truth.Profiler.ehooks in
    ignore (Interp.run hooks st);
    add (Exp_harness.lint_pep st pep);
    Array.iteri
      (fun midx ep ->
        if not (Edge_profile.is_empty ep) then
          add
            (Pep_check.with_pass "profile@edge"
               (Pep_check.lint_edge_profile ~exact:true
                  (Machine.cmeth st midx).Machine.cfg ep)))
      truth.Profiler.etable
  end;
  !diags

let print_profiles program (pep : Pep.t) =
  Program.iter_methods
    (fun m (meth : Method.t) ->
      let paths = pep.Pep.paths.(m) in
      if not (Path_profile.is_empty paths) then begin
        Printf.printf "\n%s: %d distinct paths, %d samples\n" meth.Method.name
          (Path_profile.n_distinct paths)
          (Path_profile.total paths);
        let entries =
          List.sort
            (fun (a : Path_profile.entry) b -> compare b.count a.count)
            (Path_profile.entries paths)
        in
        List.iteri
          (fun rank (e : Path_profile.entry) ->
            if rank < 8 then
              Printf.printf "  path %-5d %8d samples  %d branches\n" e.path_id
                e.count e.n_branches)
          entries;
        List.iter
          (fun br ->
            match Edge_profile.bias pep.Pep.edges.(m) br with
            | Some bias -> Printf.printf "  branch %-3d %5.1f%% taken\n" br (100. *. bias)
            | None -> ())
          (Edge_profile.branch_ids pep.Pep.edges.(m))
      end)
    program

(* --- run ----------------------------------------------------------- *)

let run_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Program in the pepsim textual format.")
  in
  let action file sampling seed verify =
    let src =
      match In_channel.with_open_text file In_channel.input_all with
      | src -> src
      | exception Sys_error msg ->
          Printf.eprintf "%s\n" msg;
          exit 2
    in
    match Parse.program src with
    | exception Parse.Error msg ->
        Printf.eprintf "%s: %s\n" file msg;
        exit 2
    | ast -> (
        match Compile.pdef ast with
        | exception Compile.Error msg ->
            Printf.eprintf "%s: %s\n" file msg;
            exit 2
        | program ->
            Verify.program program;
            let st = Machine.create ~seed program in
            let pep = Pep.create ~sampling st in
            let result =
              Interp.run (Interp.compose (Tick.hooks ()) pep.Pep.hooks) st
            in
            Printf.printf "result: %d  (%.2f Mcycles, %d samples)\n" result
              (float_of_int st.Machine.cycles /. 1e6)
              (Pep.n_samples pep);
            print_profiles program pep;
            if verify then begin
              let diags =
                Pep_check.check_program_static program
                @ Exp_harness.lint_pep st pep
              in
              Fmt.pr "%a@." Pep_check.pp_report diags;
              if Pep_check.has_errors diags then exit 1
            end)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Profile a textual program with PEP")
    Term.(const action $ file_arg $ Cli.sampling_arg $ Cli.seed_arg $ Cli.verify_arg)

(* --- workload ------------------------------------------------------ *)

let workload_cmd =
  let deep_flag =
    Arg.(
      value & flag
      & info [ "deep" ]
          ~doc:
            "Run the dataflow lints and unsafe-access justification on every \
             compiled body and print the combined diagnostics (implies the \
             reporting part of $(b,--verify)).")
  in
  let action name size sampling seed verify deep cache_dir no_cache faults_spec
      =
    let faults = Cli.parse_faults faults_spec in
    match Cli.find_workload name with
    | w ->
        let cache_dir = if no_cache then None else cache_dir in
        let size = Option.value ~default:w.Workload.default_size size in
        let env = Exp_harness.make_env ~size ~seed w in
        let cache =
          Exp_cache.create
            ~config:{ Exp_harness.default with Exp_harness.faults; deep }
            ?cache_dir env
        in
        let base = Exp_cache.base cache in
        let run =
          Exp_cache.run cache
            {
              (Exp_cache.config cache) with
              Exp_harness.profiling =
                Exp_harness.Pep_profiled
                  { sampling; zero = `Hottest; numbering = `Smart };
            }
        in
        Printf.printf
          "%s (size %d): base %.2f Mcycles, %s %.2f Mcycles (%+.2f%%)\n" name
          size
          (float_of_int base.Exp_harness.meas.iter2 /. 1e6)
          (Sampling.name sampling)
          (float_of_int run.Exp_harness.meas.iter2 /. 1e6)
          (Exp_report.overhead ~base:base.Exp_harness.meas.iter2
             run.Exp_harness.meas.iter2);
        Option.iter (print_profiles env.Exp_harness.program) run.Exp_harness.pep;
        if cache_dir <> None then print_cache_report [ cache ];
        if verify || deep then begin
          let diags =
            Pep_check.check_program_static env.Exp_harness.program
            @ base.Exp_harness.checks @ run.Exp_harness.checks
          in
          Fmt.pr "%a@." Pep_check.pp_report diags;
          if Pep_check.has_errors diags then exit 1
        end
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Run a suite benchmark under PEP")
    Term.(
      const action $ Cli.workload_name_arg $ Cli.size_arg $ Cli.sampling_arg $ Cli.seed_arg $ Cli.verify_arg
      $ deep_flag $ Cli.cache_dir_arg $ Cli.no_cache_arg $ Cli.faults_arg)

(* --- experiments --------------------------------------------------- *)

let experiments_cmd =
  let only_arg =
    Arg.(
      value & opt_all string []
      & info [ "only" ] ~docv:"ID"
          ~doc:
            "Run only this experiment (repeatable, comma-separable); \
             default: all.")
  in
  let scale_arg = Cli.scale_arg ~default:1.0 in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Attach a telemetry sink to every run and write a Chrome \
             trace of the whole experiment sweep to $(i,FILE).")
  in
  let action only scale seed verify trace_out jobs cache_dir no_cache
      faults_spec =
    let faults = Cli.parse_faults faults_spec in
    let cache_dir = if no_cache then None else cache_dir in
    let only =
      List.filter
        (fun id -> id <> "")
        (List.concat_map (String.split_on_char ',') only)
    in
    let ids = if only = [] then Exp_figures.ids else only in
    List.iter
      (fun id ->
        if not (List.mem id Exp_figures.ids) then begin
          Printf.eprintf "unknown experiment %s; try `pepsim list`\n" id;
          exit 2
        end)
      ids;
    Printf.printf "preparing %d benchmarks (scale %.2f, jobs %d)...\n%!"
      (List.length Suite.names) scale jobs;
    let telemetry =
      Option.map (fun _ -> Telemetry.create ~tracing:true ()) trace_out
    in
    let config = { Exp_harness.default with Exp_harness.telemetry; faults } in
    let caches =
      List.map
        (fun env -> Exp_cache.create ~config ?cache_dir env)
        (Exp_pool.suite_envs ~scale ~jobs ~config ~seed ())
    in
    Exp_pool.prefetch ~jobs ?telemetry caches ids;
    List.iter
      (fun id -> Exp_figures.print (Exp_figures.by_id id caches))
      ids;
    if cache_dir <> None then print_cache_report caches;
    (match (trace_out, telemetry) with
    | Some path, Some tel ->
        let trace = Option.get (Telemetry.trace tel) in
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (Trace.to_json trace));
        Printf.printf "wrote %s (%d events)\n" path (Trace.length trace)
    | _ -> ());
    if verify then begin
      (* every cached run carries its driver + profile-lint diagnostics *)
      let n_runs = ref 0 in
      let diags =
        List.concat_map
          (fun cache ->
            let name =
              (Exp_cache.env cache).Exp_harness.workload.Workload.name
            in
            List.concat_map
              (fun (key, (r : Exp_harness.run)) ->
                incr n_runs;
                List.map
                  (fun (d : Pep_check.diagnostic) ->
                    { d with pass = Fmt.str "%s/%s:%s" name key d.pass })
                  r.Exp_harness.checks)
              (Exp_cache.all_runs cache))
          caches
      in
      Fmt.pr "verification: %d runs checked@." !n_runs;
      Fmt.pr "%a@." Pep_check.pp_report diags;
      if Pep_check.has_errors diags then exit 1
    end
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate the paper's tables and figures")
    Term.(
      const action $ only_arg $ scale_arg $ Cli.seed_arg $ Cli.verify_arg $ trace_arg
      $ Cli.jobs_arg $ Cli.cache_dir_arg $ Cli.no_cache_arg $ Cli.faults_arg)

(* --- disasm -------------------------------------------------------- *)

let load_program_arg source =
  (* SOURCE is a workload name (suite, phased or gen: spec) or a path
     to a textual program *)
  match Suite.resolve source with
  | Ok w -> Workload.program ~size:2 w
  | Error _ ->
      if Sys.file_exists source && not (Sys.is_directory source) then begin
        match
          let src = In_channel.with_open_text source In_channel.input_all in
          Compile.pdef (Parse.program src)
        with
        | p -> p
        | exception Parse.Error msg | exception Compile.Error msg ->
            Printf.eprintf "%s: %s\n" source msg;
            exit 2
        | exception Sys_error msg ->
            Printf.eprintf "%s\n" msg;
            exit 2
      end
      else begin
        Printf.eprintf "%s: neither a workload nor a file\n" source;
        exit 2
      end

let disasm_cmd =
  let source_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SOURCE" ~doc:"Workload name or program file.")
  in
  let method_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "method" ] ~docv:"NAME" ~doc:"Only this method.")
  in
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("header", Dag.Loop_header); ("back-edge", Dag.Back_edge) ])
          Dag.Loop_header
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"Truncation mode: $(b,header) (PEP) or $(b,back-edge) (BLPP).")
  in
  let action source method_filter mode =
    let program = load_program_arg source in
    Verify.program program;
    Program.iter_methods
      (fun _ (m : Method.t) ->
        if method_filter = None || method_filter = Some m.Method.name then begin
          Fmt.pr "%a@." Method.pp m;
          let cfg = To_cfg.cfg m in
          Fmt.pr "%a@." Cfg.pp cfg;
          let loops = Loops.compute cfg in
          Fmt.pr "loop headers: %a@."
            Fmt.(list ~sep:comma int)
            (Loops.headers loops);
          if not m.Method.uninterruptible then begin
            match Numbering.ball_larus (Dag.build mode cfg) with
            | numbering ->
                Fmt.pr "%a@." Dag.pp (Numbering.dag numbering);
                Fmt.pr "%a@." Numbering.pp numbering;
                let plan = Instrument.of_numbering numbering in
                Fmt.pr "static instrumentation ops: %d@.@."
                  (Instrument.static_ops plan)
            | exception Numbering.Too_many_paths { n_paths; _ } ->
                Fmt.pr "paths: %d (over the profiling limit)@.@." n_paths
            | exception Dag.Unsupported msg ->
                Fmt.pr "loop-header truncation unsupported: %s@.@." msg
          end
          else Fmt.pr "uninterruptible: not instrumented@.@."
        end)
      program
  in
  Cmd.v
    (Cmd.info "disasm"
       ~doc:"Show bytecode, CFG, truncated DAG, numbering and plan")
    Term.(const action $ source_arg $ method_arg $ mode_arg)

(* --- profiles ------------------------------------------------------ *)

let profiles_cmd =
  let out_arg =
    Cli.out_arg ~docv:"PREFIX"
      ~doc:
        "Write $(i,PREFIX).paths, $(i,PREFIX).edges and $(i,PREFIX).advice \
         instead of printing a summary."
  in
  let action name out size sampling seed =
    match Cli.find_workload name with
    | w ->
        let env = Exp_harness.make_env ?size ~seed w in
        let run =
          Exp_harness.replay env
            {
              Exp_harness.default with
              Exp_harness.profiling =
                Exp_harness.Pep_profiled
                  { sampling; zero = `Hottest; numbering = `Smart };
            }
        in
        let pep = Option.get run.Exp_harness.pep in
        let write path lines =
          Out_channel.with_open_text path (fun oc ->
              List.iter
                (fun l ->
                  Out_channel.output_string oc l;
                  Out_channel.output_char oc '\n')
                lines);
          Printf.printf "wrote %s\n" path
        in
        (match out with
        | Some prefix ->
            write (prefix ^ ".paths") (Path_profile.to_lines pep.Pep.paths);
            write (prefix ^ ".edges") (Edge_profile.to_lines pep.Pep.edges);
            write (prefix ^ ".advice") (Advice.to_lines env.advice)
        | None ->
            Printf.printf
              "%s: %d path samples over %d distinct paths; %d branch \
               executions observed\n"
              name
              (Path_profile.table_total pep.Pep.paths)
              (Array.fold_left
                 (fun acc p -> acc + Path_profile.n_distinct p)
                 0 pep.Pep.paths)
              (Edge_profile.table_total pep.Pep.edges))
  in
  Cmd.v
    (Cmd.info "profiles"
       ~doc:"Collect PEP profiles for a benchmark; optionally save them")
    Term.(
      const action $ Cli.workload_name_arg $ out_arg $ Cli.size_arg
      $ Cli.sampling_arg $ Cli.seed_arg)

(* --- trace / top --------------------------------------------------- *)

(* Parse an advice file, reporting malformed lines with their position
   the same way unreadable paths are reported. *)
let load_advice ~n_methods file =
  let src =
    match In_channel.with_open_text file In_channel.input_all with
    | src -> src
    | exception Sys_error msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
  in
  match Advice.of_lines ~file ~n_methods (String.split_on_char '\n' src) with
  | Ok advice -> advice
  | Error e ->
      Fmt.epr "%a@." Dcg.pp_parse_error e;
      exit 2

(* An adaptive run with PEP collecting the continuous profile and
   driving the optimizer (paper §6.5) — the configuration whose trace
   shows every event class: baseline compiles, promotions, PEP samples,
   recompiles and set_speed phase shifts.  With [advice_file], a
   deterministic replay of that advice instead. *)
let telemetry_run ~tracing ~size ~seed ~sampling ~iters ~advice_file
    ?(faults = Fault_plan.empty) w =
  let tel = Telemetry.create ~tracing () in
  let size = Option.value ~default:w.Workload.default_size size in
  let program = Workload.program ~size w in
  let mode =
    match advice_file with
    | None -> Driver.Adaptive { thresholds = Driver.default_thresholds }
    | Some file ->
        Driver.Replay (load_advice ~n_methods:(Program.n_methods program) file)
  in
  let st = Machine.create ~seed program in
  Telemetry.begin_run tel
    ~name:(Printf.sprintf "%s size=%d seed=%d" w.Workload.name size seed);
  let d =
    Driver.create
      {
        Driver.default_options with
        mode;
        opt_profile = Driver.From_pep;
        pep = Some { Driver.sampling; zero = `Hottest; numbering = `Smart };
        telemetry = Some tel;
        faults =
          (if Fault_plan.is_empty faults then None
           else Some (Fault_injector.create ~telemetry:tel faults));
      }
      st
  in
  for _ = 1 to iters do
    ignore (Driver.run d)
  done;
  (tel, d)

let trace_cmd =
  let out_arg =
    Cli.out_arg ~docv:"FILE"
      ~doc:"Write the trace JSON to $(i,FILE) instead of stdout."
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ] ~doc:"Also print the metrics registry.")
  in
  let action name out metrics size sampling seed iters advice_file faults_spec =
    let w = Cli.find_workload name in
    let faults = Cli.parse_faults faults_spec in
    let tel, _d =
      telemetry_run ~tracing:true ~size ~seed ~sampling ~iters ~advice_file
        ~faults w
    in
    let trace = Option.get (Telemetry.trace tel) in
    let json = Trace.to_json trace in
    (match out with
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc json);
        Printf.printf "wrote %s (%d events%s)\n" path (Trace.length trace)
          (match Trace.dropped trace with
          | 0 -> ""
          | n -> Printf.sprintf ", %d dropped" n)
    | None -> print_string json);
    if metrics then Fmt.pr "%a@." Metrics.pp (Telemetry.metrics tel)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a benchmark adaptively under PEP and emit a Chrome \
          trace-event JSON of its virtual timeline (open in \
          about:tracing or ui.perfetto.dev)")
    Term.(
      const action $ Cli.workload_name_arg $ out_arg $ metrics_arg $ Cli.size_arg
      $ Cli.sampling_arg $ Cli.seed_arg $ Cli.iters_arg $ Cli.advice_arg $ Cli.faults_arg)

let top_cmd =
  let action name kind json limit size sampling seed iters advice_file =
    let w = Cli.find_workload name in
    let _tel, d =
      telemetry_run ~tracing:false ~size ~seed ~sampling ~iters ~advice_file w
    in
    match Profile_export.of_driver d kind with
    | None ->
        Printf.eprintf "%s: no PEP profile was collected\n"
          (Profile_export.kind_name kind);
        exit 1
    | Some folded ->
        if json then print_string (Folded.to_json folded)
        else begin
          let lines = Folded.to_lines folded in
          let lines =
            match limit with
            | Some n -> List.filteri (fun i _ -> i < n) lines
            | None -> lines
          in
          List.iter print_endline lines
        end
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Render PEP's continuous profile as folded stacks (the \
          flamegraph.pl / speedscope input format), methods hung under \
          their hottest sampled call chain")
    Term.(
      const action $ Cli.workload_name_arg $ Cli.kind_arg $ Cli.json_arg
      $ Cli.limit_arg $ Cli.size_arg
      $ Cli.sampling_arg $ Cli.seed_arg $ Cli.iters_arg $ Cli.advice_arg)

(* --- check --------------------------------------------------------- *)

(* Deep mode's transform-validation sweep: replay the workload under
   every transform configuration and both engines with the driver's
   translation validation plus dataflow lints on, and collect what the
   driver recorded.  Labels name the configuration so a rejection says
   exactly which transform under which engine broke. *)
let deep_transform_configs =
  [
    ("base", false, false);
    ("inline", true, false);
    ("unroll", false, true);
    ("inline+unroll", true, true);
  ]

let deep_sweep ~size ~seed (w : Workload.t) =
  let env = Exp_harness.make_env ~size ~seed w in
  List.concat_map
    (fun engine ->
      List.map
        (fun (key, inline, unroll) ->
          let config =
            { Exp_harness.default with inline; unroll; deep = true; engine }
          in
          let r = Exp_harness.replay env config in
          let label =
            Fmt.str "%s/%s"
              (match engine with `Threaded -> "threaded" | `Oracle -> "oracle")
              key
          in
          (label, Driver.checks r.Exp_harness.driver))
        deep_transform_configs)
    [ `Threaded; `Oracle ]

let check_cmd =
  let sources_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"SOURCE"
          ~doc:
            "Workload name, textual program file, or a directory whose \
             $(b,.pep) files are all checked (repeatable).")
  in
  let suite_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "suite" ] ~docv:"NAME"
          ~doc:"Check workload $(i,NAME), or $(b,all) for the whole suite.")
  in
  let static_arg =
    Arg.(
      value & flag
      & info [ "static-only" ]
          ~doc:"Skip the profiled run; run only the static passes.")
  in
  let deep_arg =
    Arg.(
      value & flag
      & info [ "deep" ]
          ~doc:
            "Also run the dataflow lints (liveness, intervals, effects), \
             justify the threaded engine's unchecked array operations, and \
             — for workload targets — replay every transform configuration \
             under both engines with translation validation on.")
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Check every $(b,.pep) program under $(b,examples/programs/) \
             in addition to the named targets.")
  in
  let bench_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench-out" ] ~docv:"FILE"
          ~doc:
            "Write per-target analysis wall-clock times as JSON to \
             $(i,FILE) (e.g. BENCH_check.json).")
  in
  let scale_arg =
    Arg.(
      value & opt float 1.0
      & info [ "scale" ] ~docv:"F"
          ~doc:"Scale workload sizes by F for the profiled run.")
  in
  let action sources suite static_only deep all bench_out scale sampling seed =
    let scaled (w : Workload.t) =
      max 1 (int_of_float (float_of_int w.default_size *. scale))
    in
    let suite_targets =
      match suite with
      | None -> []
      | Some "all" -> Suite.all
      | Some name -> [ Cli.find_workload name ]
    in
    let expand_dir dir =
      match Sys.readdir dir with
      | entries ->
          let pep =
            List.filter
              (fun f -> Filename.check_suffix f ".pep")
              (Array.to_list entries)
          in
          if pep = [] then begin
            Printf.eprintf "%s: no .pep programs\n" dir;
            exit 2
          end;
          List.map (Filename.concat dir) (List.sort compare pep)
      | exception Sys_error msg ->
          Printf.eprintf "%s\n" msg;
          exit 2
    in
    let sources =
      (if all then expand_dir (Filename.concat "examples" "programs") else [])
      @ List.concat_map
          (fun src ->
            if
              (not (List.mem src (Suite.names)))
              && Sys.file_exists src && Sys.is_directory src
            then expand_dir src
            else [ src ])
          sources
    in
    let targets =
      List.map
        (fun src ->
          match Suite.resolve src with
          | Ok w -> (w.Workload.name, Workload.program ~size:(scaled w) w, Some w)
          | Error _ -> (src, load_program_arg src, None))
        sources
      @ List.map
          (fun (w : Workload.t) ->
            (w.Workload.name, Workload.program ~size:(scaled w) w, Some w))
          suite_targets
    in
    if targets = [] then begin
      Printf.eprintf "nothing to check: give a SOURCE, --suite or --all\n";
      exit 2
    end;
    let failed = ref false in
    let t_start = Unix.gettimeofday () in
    let bench_rows = ref [] in
    List.iter
      (fun (label, program, workload) ->
        let t0 = Unix.gettimeofday () in
        let diags = check_program ~static_only ~deep ~sampling ~seed program in
        print_diags diags;
        let static_s = Unix.gettimeofday () -. t0 in
        let t1 = Unix.gettimeofday () in
        let sweep =
          match workload with
          | Some w when deep && not static_only ->
              deep_sweep ~size:(scaled w) ~seed w
          | Some _ | None -> []
        in
        let sweep_errs = ref 0 in
        List.iter
          (fun (cfg, ds) ->
            let errs = Pep_check.errors ds in
            sweep_errs := !sweep_errs + List.length errs;
            List.iter
              (fun d -> Fmt.pr "[%s] %a@." cfg Pep_check.pp_diagnostic d)
              errs)
          sweep;
        let sweep_s = Unix.gettimeofday () -. t1 in
        let n_err = List.length (Pep_check.errors diags) + !sweep_errs in
        let n_warn =
          List.length
            (List.filter
               (fun (d : Pep_check.diagnostic) -> d.severity = Pep_check.Warning)
               diags)
        in
        (* deep runs audit one worst-case fusion table per method; the
           count lets CI assert the pass actually covered the target *)
        let n_fusion =
          List.length
            (List.filter
               (fun (d : Pep_check.diagnostic) ->
                 d.pass = "fusion" && d.severity = Pep_check.Info)
               diags)
        in
        bench_rows :=
          (label, Program.n_methods program, static_s, sweep_s,
           List.length sweep, n_err, n_warn, n_fusion)
          :: !bench_rows;
        if n_err > 0 then begin
          failed := true;
          Printf.printf "%s: FAILED (%d error(s), %d warning(s))\n" label n_err
            n_warn
        end
        else
          Printf.printf "%s: ok (%d methods%s%s)\n" label
            (Program.n_methods program)
            (if sweep <> [] then
               Printf.sprintf ", %d config(s) validated" (List.length sweep)
             else "")
            (if n_warn > 0 then Printf.sprintf ", %d warning(s)" n_warn else ""))
      targets;
    (match bench_out with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        Printf.fprintf oc
          "{\n  \"seed\": %d,\n  \"deep\": %b,\n  \"wall_clock_s\": %.3f,\n\
          \  \"targets\": [\n"
          seed deep
          (Unix.gettimeofday () -. t_start);
        let rows = List.rev !bench_rows in
        List.iteri
          (fun j (label, methods, static_s, sweep_s, configs, errs, warns, fus) ->
            Printf.fprintf oc
              "    { \"name\": \"%s\", \"methods\": %d, \"static_s\": %.3f, \
               \"sweep_s\": %.3f, \"sweep_configs\": %d, \"errors\": %d, \
               \"warnings\": %d, \"fusion_tables\": %d }%s\n"
              label methods static_s sweep_s configs errs warns fus
              (if j = List.length rows - 1 then "" else ","))
          rows;
        Printf.fprintf oc "  ]\n}\n";
        close_out oc;
        Printf.printf "[check: %s written]\n" file);
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Verify programs: bytecode, CFG/DAG invariants and path numbering \
          in both truncation modes, plus a profile lint over a profiled run; \
          $(b,--deep) adds dataflow lints and translation validation of the \
          optimizer's transforms")
    Term.(
      const action $ sources_arg $ suite_arg $ static_arg $ deep_arg $ all_arg
      $ bench_arg $ scale_arg $ Cli.sampling_arg $ Cli.seed_arg)

(* --- list ---------------------------------------------------------- *)

(* --- chaos --------------------------------------------------------- *)

let chaos_cmd =
  let seeds_arg =
    Arg.(
      value & opt string "42"
      & info [ "seed" ] ~docv:"N[,N...]"
          ~doc:"Input seed(s) to sweep (comma-separable).")
  in
  let scale_arg = Cli.scale_arg ~default:0.5 in
  let only_arg =
    Arg.(
      value & opt_all string []
      & info [ "only" ] ~docv:"WORKLOAD"
          ~doc:
            "Sweep only this workload (repeatable, comma-separable); \
             default: the whole suite.")
  in
  let case_arg =
    Arg.(
      value & opt_all string []
      & info [ "case" ] ~docv:"LABEL"
          ~doc:
            "Run only this curated plan (repeatable, comma-separable); \
             default: all of them.")
  in
  let max_loss_arg =
    Arg.(
      value & opt float 1.0
      & info [ "max-loss" ] ~docv:"F"
          ~doc:
            "Accuracy-loss bound for the custom $(b,--faults) plan \
             (1 - absolute overlap vs the healthy run).")
  in
  let action seeds scale jobs only case_labels faults_spec max_loss =
    let split_commas xs = Cli.split_commas xs in
    let seeds =
      List.map
        (fun s ->
          match int_of_string_opt (String.trim s) with
          | Some n -> n
          | None ->
              Printf.eprintf "--seed: %s is not an integer\n" s;
              exit 2)
        (split_commas [ seeds ])
    in
    let cases =
      match split_commas case_labels with
      | [] -> Exp_chaos.curated
      | labels ->
          List.map
            (fun l ->
              match
                List.find_opt
                  (fun (c : Exp_chaos.case) -> c.Exp_chaos.label = l)
                  Exp_chaos.curated
              with
              | Some c -> c
              | None ->
                  Printf.eprintf "unknown chaos case %s; have: %s\n" l
                    (String.concat " "
                       (List.map
                          (fun (c : Exp_chaos.case) -> c.Exp_chaos.label)
                          Exp_chaos.curated));
                  exit 2)
            labels
    in
    let cases =
      match Cli.parse_faults faults_spec with
      | p when Fault_plan.is_empty p -> cases
      | plan -> cases @ [ { Exp_chaos.label = "custom"; plan; max_loss } ]
    in
    let only = Cli.split_workloads only in
    (* non-suite targets (phased workloads, gen: specs) get their own
       envs; suite names filter the pooled suite sweep as before *)
    let extra =
      List.filter_map
        (fun n ->
          if List.mem n Suite.names then None else Some (Cli.find_workload n))
        only
    in
    let total = ref 0 and failures = ref 0 in
    List.iter
      (fun seed ->
        let envs = Exp_pool.suite_envs ~scale ~jobs ~seed () in
        let envs =
          if only = [] then envs
          else
            List.filter
              (fun (e : Exp_harness.env) ->
                List.mem e.Exp_harness.workload.Workload.name only)
              envs
            @ List.map
                (fun (w : Workload.t) ->
                  let size =
                    max 1
                      (int_of_float (float_of_int w.Workload.default_size *. scale))
                  in
                  Exp_harness.make_env ~size ~seed w)
                extra
        in
        Printf.printf "chaos: seed %d, %d workloads x %d plans x 2 engines\n%!"
          seed (List.length envs) (List.length cases);
        List.iter
          (fun (r : Exp_chaos.report) ->
            Fmt.pr "%a@." Exp_chaos.pp_report r;
            incr total;
            if r.Exp_chaos.violations <> [] then incr failures)
          (Exp_chaos.sweep ~jobs ~cases envs))
      seeds;
    Printf.printf "chaos: %d/%d runs clean\n" (!total - !failures) !total;
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Sweep deterministic fault plans over the suite and check the \
          graceful-degradation invariants")
    Term.(
      const action $ seeds_arg $ scale_arg $ Cli.jobs_arg $ only_arg $ case_arg
      $ Cli.faults_arg $ max_loss_arg)

(* --- fleet --------------------------------------------------------- *)

(* `pepsim fleet` — the in-process continuous-profiling service:
   `run` simulates a fleet of VM instances and lands windowed profile
   segments, `query` answers hotspots / folded stacks over them, and
   `diff` triages a baseline/current pair with the drift rules. *)

let fleet_dir_arg =
  Arg.(
    value & opt string "_fleet"
    & info [ "dir" ] ~docv:"DIR" ~doc:"Segment store directory.")

let fleet_cohort_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cohort" ] ~docv:"NAME"
        ~doc:"Restrict to this cohort (default: all cohorts).")

let fleet_from_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "from" ] ~docv:"W" ~doc:"First window index to include.")

let fleet_to_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "to" ] ~docv:"W" ~doc:"Last window index to include.")

(* "NAME=steady" or "NAME=shift@W=P", the grammar Fleet.Drift.key
   prints — so a cohort list can be round-tripped from any report *)
let parse_cohort spec =
  match String.index_opt spec '=' with
  | None -> Error (Fmt.str "bad cohort %S: expected NAME=DRIFT" spec)
  | Some i -> (
      let name = String.sub spec 0 i in
      let drift = String.sub spec (i + 1) (String.length spec - i - 1) in
      match drift with
      | "" | "steady" -> Ok (name, Fleet.Drift.No_drift)
      | _ -> (
          match Scanf.sscanf_opt drift "shift@%d=%d" (fun w p -> (w, p)) with
          | Some (at_window, phase) when at_window >= 0 && phase > 0 ->
              Ok (name, Fleet.Drift.Phase_shift { at_window; phase })
          | Some _ | None ->
              Error
                (Fmt.str
                   "bad cohort %S: drift must be `steady' or `shift@W=P'"
                   spec)))

let load_segments ~dir =
  let segments, diags = Fleet_store.load_all ~dir in
  List.iter (fun e -> Fmt.epr "fleet: %a@." Dcg.pp_parse_error e) diags;
  if segments = [] then begin
    Printf.eprintf "%s: no segments (run `pepsim fleet run` first)\n" dir;
    exit 2
  end;
  segments

let fleet_workload_arg =
  Arg.(
    value & opt string "drift"
    & info [ "workload" ] ~docv:"NAME"
        ~doc:
          "Workload the instances run: $(b,drift) (the phased \
           drift-detection workload), any suite benchmark, or a \
           $(b,gen:) spec string.")

let fleet_run_cmd =
  let cohorts_arg =
    Arg.(
      value & opt_all string []
      & info [ "cohort" ] ~docv:"NAME=DRIFT"
          ~doc:
            "Add a cohort (repeatable, comma-separable): $(i,NAME=steady) \
             or $(i,NAME=shift@W=P) (shift to phase P at window W).  \
             Default: the steady/shift pair.")
  in
  let instances_arg =
    Arg.(
      value & opt int 8
      & info [ "instances" ] ~docv:"N" ~doc:"Simulated VM instances per cohort.")
  in
  let windows_arg =
    Arg.(
      value & opt int 4
      & info [ "windows" ] ~docv:"N"
          ~doc:"Collection windows (one application iteration each).")
  in
  let samples_arg =
    Arg.(
      value & opt int 64
      & info [ "samples" ] ~docv:"N" ~doc:"PEP sampling burst length.")
  in
  let stride_arg =
    Arg.(
      value & opt int 17
      & info [ "stride" ] ~docv:"N" ~doc:"PEP sampling stride.")
  in
  let tick_shrink_arg =
    Arg.(
      value & opt int 8
      & info [ "tick-shrink" ] ~docv:"N"
          ~doc:
            "Compress the simulated timer period by N so short windows \
             still sample every hot method.")
  in
  let drift_at_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "drift-at" ] ~docv:"W"
          ~doc:
            "Window at which the drifting cohort shifts phase \
             (default: halfway).")
  in
  let keep_raw_arg =
    Arg.(
      value & flag
      & info [ "keep-raw" ]
          ~doc:"Skip compaction: keep one segment per (instance, window).")
  in
  let retain_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "retain" ] ~docv:"N"
          ~doc:"Keep only each cohort's newest N windows after compaction.")
  in
  let action dir workload size seed samples stride jobs instances windows
      tick_shrink drift_at keep_raw retain cohort_specs faults_spec =
    let require_pos name v =
      if v < 1 then begin
        Printf.eprintf "--%s: expected an integer >= 1, got %d\n" name v;
        exit 2
      end
    in
    require_pos "instances" instances;
    require_pos "windows" windows;
    require_pos "tick-shrink" tick_shrink;
    Option.iter (require_pos "retain") retain;
    let faults = Cli.parse_faults faults_spec in
    if Fault_plan.perturbs_execution faults then begin
      Printf.eprintf
        "--faults: fleet runs only accept fleet-level sites (crash, \
         torn-write, straggler, seg-corrupt); %s perturbs execution\n"
        (Fault_plan.key faults);
      exit 2
    end;
    let w = Cli.find_workload workload in
    let at_window = Option.value ~default:(windows / 2) drift_at in
    let cohorts =
      match Cli.split_commas cohort_specs with
      | [] ->
          [
            ("steady", Fleet.Drift.No_drift);
            ("shift", Fleet.Drift.Phase_shift { at_window; phase = 1 });
          ]
      | specs ->
          List.map
            (fun s ->
              match parse_cohort s with
              | Ok c -> c
              | Error msg ->
                  Printf.eprintf "--cohort: %s\n" msg;
                  exit 2)
            specs
    in
    let spec =
      Fleet_collector.default_spec ?size ~seed ~samples ~stride ~instances
        ~windows ~tick_shrink ~keep_raw ?retain_windows:retain ~cohorts
        ~faults w
    in
    match Fleet_collector.run ~jobs ~dir spec with
    | Error e ->
        Fmt.epr "fleet: %a@." Dcg.pp_parse_error e;
        exit 1
    | Ok r ->
        List.iter
          (fun e -> Fmt.epr "fleet: %a@." Dcg.pp_parse_error e)
          r.Fleet_collector.diags;
        Printf.printf
          "[fleet] cohorts=%d instances=%d windows=%d simulated=%d \
           skipped=%d snapshots=%d samples=%d merged=%d store_bytes=%d\n"
          r.Fleet_collector.cohorts r.Fleet_collector.instances
          r.Fleet_collector.windows r.Fleet_collector.simulated
          r.Fleet_collector.skipped r.Fleet_collector.snapshots
          r.Fleet_collector.samples_taken r.Fleet_collector.merged
          r.Fleet_collector.store_bytes;
        (match r.Fleet_collector.counts with
        | Some c when not (Fault_plan.is_empty faults) ->
            Printf.printf
              "[fleet-faults] plan=%s healed_open=%d crash=%d torn=%d \
               straggler=%d seg_corrupt=%d restarts=%d lost_instances=%d \
               writes_recovered=%d catchups=%d quarantined=%d\n"
              (Fault_plan.key faults) r.Fleet_collector.healed_open
              c.Fault_injector.instance_crash c.Fault_injector.torn_write
              c.Fault_injector.straggler c.Fault_injector.seg_corrupt
              c.Fault_injector.restarts c.Fault_injector.lost_instances
              c.Fault_injector.writes_recovered c.Fault_injector.catchups
              c.Fault_injector.seg_quarantined
        | Some _ | None -> ());
        List.iter
          (fun (cohort, window, reason) ->
            Printf.printf "[fleet-degraded] cohort=%s window=%d reason=%s\n"
              cohort window reason)
          r.Fleet_collector.degraded;
        if r.Fleet_collector.diags <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Simulate a fleet of VM instances and ingest their windowed \
          profile snapshots into the segment store")
    Term.(
      const action $ fleet_dir_arg $ fleet_workload_arg $ Cli.size_arg $ Cli.seed_arg
      $ samples_arg $ stride_arg $ Cli.jobs_arg $ instances_arg $ windows_arg
      $ tick_shrink_arg $ drift_at_arg $ keep_raw_arg $ retain_arg
      $ cohorts_arg $ Cli.faults_arg)

let fleet_query_cmd =
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Hotspots to list (default 10).")
  in
  let decay_arg =
    Arg.(
      value & opt float 0.75
      & info [ "decay" ] ~docv:"F"
          ~doc:
            "Per-window score decay: a count W windows before the newest \
             weighs $(i,F)^W.")
  in
  let folded_arg =
    Arg.(
      value & flag
      & info [ "folded" ]
          ~doc:
            "Emit folded stacks ($(b,pepsim top)'s format) instead of the \
             hotspot table.")
  in
  let action dir cohort lo hi kind top decay folded json limit =
    let segments = load_segments ~dir in
    let selected =
      Fleet_query.select segments { Fleet_query.cohort; lo; hi }
    in
    if selected = [] then begin
      Printf.eprintf "no segments match the filter\n";
      exit 2
    end;
    let v = Fleet_query.view selected in
    if folded || json then begin
      let f = Fleet_query.folded kind v in
      if json then print_string (Folded.to_json f)
      else begin
        let lines = Folded.to_lines f in
        let lines =
          match limit with
          | Some n -> List.filteri (fun i _ -> i < n) lines
          | None -> lines
        in
        List.iter print_endline lines
      end
    end
    else begin
      Printf.printf "[fleet-query] cohort=%s windows=%s segments=%d samples=%d\n"
        (Option.value ~default:"all" cohort)
        (match v.Fleet_query.span with
        | Some w -> Fleet.Window.key w
        | None -> "none")
        v.Fleet_query.segments v.Fleet_query.samples;
      List.iteri
        (fun i (label, score) ->
          Printf.printf "%3d. %12.1f  %s\n" (i + 1) score label)
        (Fleet_query.top ~decay ~n:top kind selected)
    end
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Answer top-N hotspots or folded stacks over the stored segments")
    Term.(
      const action $ fleet_dir_arg $ fleet_cohort_arg $ fleet_from_arg
      $ fleet_to_arg $ Cli.kind_arg $ top_arg $ decay_arg $ folded_arg
      $ Cli.json_arg $ Cli.limit_arg)

let fleet_diff_cmd =
  let cohort_arg =
    Arg.(
      value & opt string "shift"
      & info [ "cohort" ] ~docv:"NAME" ~doc:"Cohort under triage.")
  in
  let baseline_cohort_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline-cohort" ] ~docv:"NAME"
          ~doc:
            "Diff against this cohort over the same windows instead of \
             the cohort's own early windows.")
  in
  let split_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "split" ] ~docv:"W"
          ~doc:
            "First window of the current side for a temporal diff \
             (default: halfway).")
  in
  let new_share_arg =
    Arg.(
      value & opt float Fleet_query.default_thresholds.Fleet_query.new_share
      & info [ "new-share" ] ~docv:"F"
          ~doc:"Path share making an unseen path a new-hot-path finding.")
  in
  let edge_shift_arg =
    Arg.(
      value & opt float Fleet_query.default_thresholds.Fleet_query.edge_shift
      & info [ "edge-shift" ] ~docv:"F"
          ~doc:"Taken-bias delta flagging an edge-flow shift.")
  in
  let action dir cohort baseline_cohort split new_share edge_shift =
    let segments = load_segments ~dir in
    let max_hi =
      List.fold_left
        (fun acc (s : Fleet_store.segment) ->
          max acc s.Fleet_store.window.Fleet.Window.hi)
        0 segments
    in
    let select c lo hi =
      Fleet_query.select segments { Fleet_query.cohort = Some c; lo; hi }
    in
    let (base_desc, base_segs), (cur_desc, cur_segs) =
      match baseline_cohort with
      | Some b ->
          ( (Fmt.str "cohort=%s" b, select b None None),
            (Fmt.str "cohort=%s" cohort, select cohort None None) )
      | None ->
          (* temporal: early windows are the baseline *)
          let split = Option.value ~default:((max_hi + 1) / 2) split in
          ( ( Fmt.str "cohort=%s win=0-%d" cohort (split - 1),
              select cohort None (Some (split - 1)) ),
            ( Fmt.str "cohort=%s win=%d-%d" cohort split max_hi,
              select cohort (Some split) None ) )
    in
    if base_segs = [] || cur_segs = [] then begin
      Printf.eprintf "diff needs segments on both sides (%s: %d, %s: %d)\n"
        base_desc (List.length base_segs) cur_desc (List.length cur_segs);
      exit 2
    end;
    let thresholds =
      { Fleet_query.default_thresholds with Fleet_query.new_share; edge_shift }
    in
    let findings =
      Fleet_query.diff ~thresholds
        ~baseline:(Fleet_query.view base_segs)
        ~current:(Fleet_query.view cur_segs) ()
    in
    Printf.printf "[fleet-diff] baseline=%s current=%s findings=%d\n" base_desc
      cur_desc (List.length findings);
    List.iter
      (fun f -> print_endline ("  " ^ Fleet_query.render_finding f))
      findings;
    if findings <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Triage profile drift between two time windows or cohorts; \
          exits 1 when the rules flag a regression")
    Term.(
      const action $ fleet_dir_arg $ cohort_arg $ baseline_cohort_arg
      $ split_arg $ new_share_arg $ edge_shift_arg)

let fleet_watch_cmd =
  let rules_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "rules" ] ~docv:"FILE"
          ~doc:
            "Alert rules file: one rule per line, $(i,NAME \
             [cohort=C] [family=F1,F2] [persist=N] [min-share=X] \
             [min-shift=X]); $(b,#) comments.  Default: one catch-all \
             rule over every cohort and finding family.")
  in
  let rule_arg =
    Arg.(
      value & opt_all string []
      & info [ "rule" ] ~docv:"RULE"
          ~doc:"Add one inline rule (repeatable; same grammar as --rules).")
  in
  let persist_arg =
    Arg.(
      value & opt int 1
      & info [ "persist" ] ~docv:"N"
          ~doc:
            "Consecutive windows a finding must hold before the default \
             rule fires (ignored when rules are given explicitly).")
  in
  let baseline_arg =
    Arg.(
      value & opt int 1
      & info [ "baseline-windows" ] ~docv:"N"
          ~doc:"Per-cohort baseline aggregate width, in windows.")
  in
  let new_share_arg =
    Arg.(
      value & opt float Fleet_query.default_thresholds.Fleet_query.new_share
      & info [ "new-share" ] ~docv:"F"
          ~doc:"Path share making an unseen path a new-hot-path finding.")
  in
  let edge_shift_arg =
    Arg.(
      value & opt float Fleet_query.default_thresholds.Fleet_query.edge_shift
      & info [ "edge-shift" ] ~docv:"F"
          ~doc:"Taken-bias delta flagging an edge-flow shift.")
  in
  let action dir rules_file inline_rules persist baseline_windows new_share
      edge_shift =
    if persist < 1 then begin
      Printf.eprintf "--persist: expected an integer >= 1, got %d\n" persist;
      exit 2
    end;
    if baseline_windows < 1 then begin
      Printf.eprintf "--baseline-windows: expected an integer >= 1, got %d\n"
        baseline_windows;
      exit 2
    end;
    let from_file =
      match rules_file with
      | None -> []
      | Some f -> (
          match Fleet_watch.load_rules f with
          | Ok rs -> rs
          | Error m ->
              Printf.eprintf "--rules: %s\n" m;
              exit 2)
    in
    let inline =
      List.map
        (fun line ->
          match Fleet_watch.parse_rule line with
          | Ok r -> r
          | Error m ->
              Printf.eprintf "--rule: %s\n" m;
              exit 2)
        inline_rules
    in
    let rules =
      match from_file @ inline with
      | [] -> Fleet_watch.default_rules ~persist ()
      | rs -> rs
    in
    let segments = load_segments ~dir in
    let degraded = Fleet_store.load_degraded ~dir in
    let thresholds =
      { Fleet_query.default_thresholds with Fleet_query.new_share; edge_shift }
    in
    let report =
      Fleet_watch.run ~thresholds ~baseline_windows ~rules ~degraded segments
    in
    Fmt.pr "%a@." Fleet_watch.pp_report report;
    if report.Fleet_watch.alerts <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Evaluate standing alert rules over every stored window (with \
          hysteresis, dedup and degraded-data annotation); exits 1 when \
          any rule fires")
    Term.(
      const action $ fleet_dir_arg $ rules_file_arg $ rule_arg $ persist_arg
      $ baseline_arg $ new_share_arg $ edge_shift_arg)

let fleet_chaos_cmd =
  let dir_arg =
    Arg.(
      value & opt string "_fleet_chaos"
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Root directory for the per-case segment stores.")
  in
  let instances_arg =
    Arg.(
      value & opt int 2
      & info [ "instances" ] ~docv:"N" ~doc:"Simulated VM instances per cohort.")
  in
  let windows_arg =
    Arg.(
      value & opt int 3
      & info [ "windows" ] ~docv:"N" ~doc:"Collection windows per instance.")
  in
  let case_arg =
    Arg.(
      value & opt_all string []
      & info [ "case" ] ~docv:"LABEL"
          ~doc:
            "Run only this curated fleet plan (repeatable, \
             comma-separable); default: all of them.")
  in
  let action dir workload size seed jobs instances windows case_labels =
    let require_pos name v =
      if v < 1 then begin
        Printf.eprintf "--%s: expected an integer >= 1, got %d\n" name v;
        exit 2
      end
    in
    require_pos "instances" instances;
    require_pos "windows" windows;
    let cases =
      match Cli.split_commas case_labels with
      | [] -> Exp_chaos.fleet_curated
      | labels ->
          List.map
            (fun l ->
              match
                List.find_opt
                  (fun (c : Exp_chaos.fleet_case) -> c.Exp_chaos.flabel = l)
                  Exp_chaos.fleet_curated
              with
              | Some c -> c
              | None ->
                  Printf.eprintf "unknown fleet chaos case %s; have: %s\n" l
                    (String.concat " "
                       (List.map
                          (fun (c : Exp_chaos.fleet_case) -> c.Exp_chaos.flabel)
                          Exp_chaos.fleet_curated));
                  exit 2)
            labels
    in
    let w = Cli.find_workload workload in
    let spec =
      Fleet_collector.default_spec ?size ~seed ~instances ~windows w
    in
    Printf.printf "fleet-chaos: seed %d, %d instances x %d windows, %d plans\n%!"
      seed instances windows (List.length cases);
    let reports = Fleet_chaos.sweep ~jobs ~cases ~dir spec in
    List.iter (fun r -> Fmt.pr "%a@." Fleet_chaos.pp_report r) reports;
    let failures =
      List.length (List.filter (fun r -> r.Fleet_chaos.violations <> []) reports)
    in
    Printf.printf "fleet-chaos: %d/%d cases clean\n"
      (List.length reports - failures)
      (List.length reports);
    if failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Sweep the curated fleet fault plans (crash, torn write, \
          straggler, segment corruption) and check byte-level recovery \
          convergence against a healthy run")
    Term.(
      const action $ dir_arg $ fleet_workload_arg $ Cli.size_arg
      $ Cli.seed_arg $ Cli.jobs_arg $ instances_arg $ windows_arg $ case_arg)

let fleet_cmd =
  Cmd.group
    (Cmd.info "fleet"
       ~doc:
         "Continuous-profiling service over a simulated fleet: ingest, \
          query, diff, watch, chaos")
    [
      fleet_run_cmd;
      fleet_query_cmd;
      fleet_diff_cmd;
      fleet_watch_cmd;
      fleet_chaos_cmd;
    ]

(* --- gen ----------------------------------------------------------- *)

(* `pepsim gen` — the seeded adversarial workload generator: describe
   or emit a spec's program, run it under PEP, sweep a generated
   corpus, and measure accuracy over time under its drift schedule. *)

let gen_spec_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"SPEC"
        ~doc:
          "Workload spec string, e.g. \
           $(b,gen:seed=7,phases=3,mega=6,diamonds=12).  Omitted axes \
           take their defaults; $(b,gen:) alone is the default spec.")

let parse_gen_spec s =
  match Wgen.parse s with
  | Ok spec -> spec
  | Error e ->
      Printf.eprintf "%s\n" (Wgen.error_to_string e);
      exit 2

let gen_windows_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "windows" ] ~docv:"N"
        ~doc:
          "Collection windows for the drift schedule (default: two per \
           phase, at least 6).")

let gen_windows spec = function
  | Some w -> w
  | None -> max 6 (2 * spec.Wgen.phases)

let gen_describe_cmd =
  let action s windows =
    let spec = parse_gen_spec s in
    let windows = gen_windows spec windows in
    let w = Wgen.workload spec in
    let program = Workload.program ~size:2 w in
    Printf.printf "spec:     %s\n" (Wgen.print spec);
    Printf.printf "axes:     %s\n" w.Workload.description;
    Printf.printf "methods:  %d (%s)\n"
      (Program.n_methods program)
      (String.concat " "
         (List.of_seq
            (Seq.map
               (fun i -> (Program.method_of_index program i).Method.name)
               (Seq.init (Program.n_methods program) Fun.id))));
    Printf.printf "schedule: %s  (shifts at %s)\n"
      (String.concat " "
         (List.map string_of_int (Wgen.schedule spec ~windows)))
      (match Wgen.shifts spec ~windows with
      | [] -> "none"
      | s -> String.concat " " (List.map string_of_int s))
  in
  Cmd.v
    (Cmd.info "describe"
       ~doc:"Validate a spec and show its axes, methods and drift schedule")
    Term.(const action $ gen_spec_arg $ gen_windows_arg)

let gen_emit_cmd =
  let action s out =
    let spec = parse_gen_spec s in
    let program = Workload.program (Wgen.workload spec) in
    Verify.program program;
    let pp ppf () =
      Fmt.pf ppf "; %s@." (Wgen.print spec);
      Program.iter_methods (fun _ m -> Fmt.pf ppf "%a@." Method.pp m) program
    in
    match out with
    | None -> Fmt.pr "%a" pp ()
    | Some file ->
        Out_channel.with_open_text file (fun oc ->
            Fmt.pf (Format.formatter_of_out_channel oc) "%a@?" pp ())
  in
  Cmd.v
    (Cmd.info "emit"
       ~doc:"Compile a spec and emit its program's bytecode listing")
    Term.(
      const action $ gen_spec_arg
      $ Cli.out_arg ~docv:"FILE" ~doc:"Write the listing to FILE (default: stdout).")

let gen_run_cmd =
  let action s size sampling seed verify =
    let spec = parse_gen_spec s in
    let w = Wgen.workload spec in
    let size = Option.value ~default:w.Workload.default_size size in
    let env = Exp_harness.make_env ~size ~seed w in
    let base = Exp_harness.replay env Exp_harness.default in
    let run =
      Exp_harness.replay env
        {
          Exp_harness.default with
          Exp_harness.profiling =
            Exp_harness.Pep_profiled
              { sampling; zero = `Hottest; numbering = `Smart };
        }
    in
    Printf.printf
      "%s (size %d): base %.2f Mcycles, %s %.2f Mcycles (%+.2f%%)\n"
      w.Workload.name size
      (float_of_int base.Exp_harness.meas.iter2 /. 1e6)
      (Sampling.name sampling)
      (float_of_int run.Exp_harness.meas.iter2 /. 1e6)
      (Exp_report.overhead ~base:base.Exp_harness.meas.iter2
         run.Exp_harness.meas.iter2);
    Option.iter (print_profiles env.Exp_harness.program) run.Exp_harness.pep;
    if verify then begin
      let diags =
        Pep_check.check_program_static env.Exp_harness.program
        @ base.Exp_harness.checks @ run.Exp_harness.checks
      in
      Fmt.pr "%a@." Pep_check.pp_report diags;
      if Pep_check.has_errors diags then exit 1
    end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a generated workload under PEP")
    Term.(
      const action $ gen_spec_arg $ Cli.size_arg $ Cli.sampling_arg
      $ Cli.seed_arg $ Cli.verify_arg)

let gen_accuracy_cmd =
  let threshold_arg =
    Arg.(
      value & opt float Exp_drift.default_threshold
      & info [ "threshold" ] ~docv:"F"
          ~doc:"Stale-accuracy level a post-shift window must recover to.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Exit 1 unless accuracy recovers after every phase shift.")
  in
  let action s windows size seed threshold strict out =
    let spec = parse_gen_spec s in
    let windows = gen_windows spec windows in
    let series = Exp_drift.run_spec ~windows ~threshold ?size ~seed spec in
    Exp_figures.print (Exp_drift.figure series);
    (match out with
    | None -> ()
    | Some file ->
        Out_channel.with_open_text file (fun oc ->
            Out_channel.output_string oc (Exp_drift.to_json series);
            Out_channel.output_char oc '\n'));
    if strict && not series.Exp_drift.recovered then begin
      Printf.eprintf
        "accuracy did not recover to %.2f after every phase shift\n" threshold;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "accuracy"
       ~doc:
         "Windowed accuracy-over-time of PEP vs ground truth under the \
          spec's drift schedule")
    Term.(
      const action $ gen_spec_arg $ gen_windows_arg $ Cli.size_arg
      $ Cli.seed_arg $ threshold_arg $ strict_arg
      $ Cli.out_arg ~docv:"FILE" ~doc:"Also write the series as JSON to FILE.")

let gen_corpus_cmd =
  let n_arg =
    Arg.(
      value & opt int 20
      & info [ "count"; "n" ] ~docv:"N" ~doc:"Corpus size (specs generated).")
  in
  let action seed n jobs size =
    let specs = Wgen.corpus ~n ~seed () in
    let envs =
      List.map
        (fun spec ->
          let w = Wgen.workload spec in
          Exp_harness.make_env
            ~size:(Option.value ~default:w.Workload.default_size size)
            ~seed w)
        specs
    in
    let config =
      {
        Exp_harness.default with
        Exp_harness.profiling = Exp_harness.pep_default;
      }
    in
    let runs =
      Exp_pool.map ~jobs
        (fun _sink env -> Exp_harness.replay env config)
        envs
    in
    let failed = ref false in
    List.iter2
      (fun (env : Exp_harness.env) (r : Exp_harness.run) ->
        let errors = List.length (Pep_check.errors r.Exp_harness.checks) in
        if errors > 0 then failed := true;
        Printf.printf "%s checksum=%d cycles=%d samples=%d errors=%d\n"
          env.Exp_harness.workload.Workload.name r.Exp_harness.meas.checksum
          r.Exp_harness.meas.iter2
          (match r.Exp_harness.pep with Some p -> Pep.n_samples p | None -> 0)
          errors)
      envs runs;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "corpus"
       ~doc:
         "Replay a deterministic generated corpus under PEP and print one \
          digest line per spec (byte-identical across $(b,--jobs))")
    Term.(
      const action $ Cli.seed_arg $ n_arg $ Cli.jobs_arg $ Cli.size_arg)

let gen_cmd =
  Cmd.group
    (Cmd.info "gen"
       ~doc:
         "Seeded adversarial workload generator: describe/emit/run specs, \
          corpus sweeps, accuracy-over-time under drift")
    [ gen_describe_cmd; gen_emit_cmd; gen_run_cmd; gen_accuracy_cmd; gen_corpus_cmd ]

let list_cmd =
  let action () =
    Printf.printf "workloads:\n";
    List.iter
      (fun (w : Workload.t) ->
        Printf.printf "  %-10s (default size %5d)  %s\n" w.name w.default_size
          w.description)
      Suite.all;
    Printf.printf "\nphased workloads:\n  %s\n"
      (String.concat " "
         (List.map (fun (w : Workload.t) -> w.Workload.name) Phased.all));
    Printf.printf
      "\ngenerated workloads:\n\
      \  gen:seed=..,bias=..,..  (any workload argument; see `pepsim gen`)\n";
    Printf.printf "\nexperiments:\n  %s\n" (String.concat " " Exp_figures.ids)
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List workloads and experiment ids")
    Term.(const action $ const ())

let () =
  let info =
    Cmd.info "pepsim" ~version:"1.0.0"
      ~doc:"Continuous path and edge profiling (PEP) simulator"
  in
  (* cmdliner reports CLI usage errors as 124; pepsim documents 2 for
     usage/parse errors and 1 for check/experiment failures *)
  let code =
    Cmd.eval
      (Cmd.group info
         [
           run_cmd;
           workload_cmd;
           experiments_cmd;
           trace_cmd;
           top_cmd;
           check_cmd;
           disasm_cmd;
           profiles_cmd;
           chaos_cmd;
           fleet_cmd;
          gen_cmd;
           list_cmd;
         ])
  in
  exit (if code = Cmd.Exit.cli_error then 2 else code)
