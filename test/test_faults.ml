(* Fault injection and graceful degradation: plan parsing, deterministic
   decision streams, the per-fault degradation policies end to end, the
   Too_many_paths edge-profiling fallback, and run-store crash
   consistency. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let has_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let check_meas msg (a : Exp_harness.measurement) (b : Exp_harness.measurement)
    =
  check ci (msg ^ ": iter1") a.iter1 b.iter1;
  check ci (msg ^ ": iter2") a.iter2 b.iter2;
  check ci (msg ^ ": compile") a.compile b.compile;
  check ci (msg ^ ": checksum") a.checksum b.checksum

(* ------------------------- plan parsing ------------------------- *)

let test_parse_empty () =
  (match Fault_plan.parse "" with
  | Ok p ->
      check cb "empty spec is the empty plan" true (Fault_plan.is_empty p)
  | Error m -> Alcotest.failf "empty spec rejected: %s" m);
  check cb "empty plan builds no injector" true
    (Option.is_none (Exp_harness.injector_of Exp_harness.default))

let test_parse_clauses () =
  let p =
    Fault_plan.parse_exn
      "seed=7,path-cap=4,edge-cap=8,compile-fail=0.25,compile-retries=5,\
       compile-backoff=1000,sample-overrun=0.5,corrupt=0.125"
  in
  check ci "seed" 7 p.Fault_plan.seed;
  check (Alcotest.option ci) "path-cap" (Some 4) p.Fault_plan.path_capacity;
  check (Alcotest.option ci) "edge-cap" (Some 8) p.Fault_plan.edge_capacity;
  check (Alcotest.float 0.) "compile-fail" 0.25 p.Fault_plan.compile_fail;
  check ci "compile-retries" 5 p.Fault_plan.compile_retries;
  check ci "compile-backoff" 1000 p.Fault_plan.compile_backoff;
  check (Alcotest.float 0.) "sample-overrun" 0.5 p.Fault_plan.sample_overrun;
  check (Alcotest.float 0.) "corrupt" 0.125 p.Fault_plan.corrupt

let test_perturbs () =
  let perturbs s =
    Fault_plan.perturbs_execution (Fault_plan.parse_exn s)
  in
  check cb "noop is inert" false (perturbs "noop");
  check cb "corrupt only perturbs inputs" false (perturbs "corrupt=1");
  check cb "path-cap perturbs" true (perturbs "path-cap=4");
  check cb "edge-cap perturbs" true (perturbs "edge-cap=4");
  check cb "compile-fail perturbs" true (perturbs "compile-fail=0.1");
  check cb "sample-overrun perturbs" true (perturbs "sample-overrun=0.1")

let test_parse_errors () =
  List.iter
    (fun spec ->
      match Fault_plan.parse spec with
      | Ok _ -> Alcotest.failf "accepted bad spec %S" spec
      | Error _ -> ())
    [
      "path-cap=x";
      "compile-fail=1.5";
      "compile-fail=-0.1";
      "bogus=1";
      "seed";
      "@/nonexistent/fault/plan/file";
    ]

let test_key_roundtrip () =
  List.iter
    (fun spec ->
      let p = Fault_plan.parse_exn spec in
      let p' = Fault_plan.parse_exn (Fault_plan.key p) in
      check Alcotest.string
        (Fmt.str "key of %S roundtrips" spec)
        (Fault_plan.key p) (Fault_plan.key p'))
    [
      "";
      "noop";
      "seed=7,path-cap=2,edge-cap=2";
      "seed=3,compile-fail=0.3,compile-retries=4,compile-backoff=20000";
      "seed=13,path-cap=8,compile-fail=0.2,sample-overrun=0.2,corrupt=0.5";
    ]

let test_at_file () =
  let file = Filename.temp_file "pepsim-faults" ".plan" in
  Out_channel.with_open_text file (fun oc ->
      output_string oc
        "# chaos plan\nseed=7\npath-cap=4, edge-cap=8\n# done\n");
  let p = Fault_plan.parse_exn ("@" ^ file) in
  Sys.remove file;
  check ci "seed from file" 7 p.Fault_plan.seed;
  check (Alcotest.option ci) "cap from file" (Some 4)
    p.Fault_plan.path_capacity

(* ---------------------- decision streams ------------------------ *)

let stream_of inj n =
  List.init n (fun i ->
      Fault_injector.fire_compile_fail inj ~ts:i ~meth:"m")

let test_stream_deterministic () =
  let plan = Fault_plan.parse_exn "seed=11,compile-fail=0.5" in
  let a = stream_of (Fault_injector.create plan) 200 in
  let b = stream_of (Fault_injector.create plan) 200 in
  check (Alcotest.list cb) "same plan, same decisions" a b;
  check cb "a fair coin fires sometimes" true (List.mem true a);
  check cb "and spares sometimes" true (List.mem false a);
  let c =
    stream_of
      (Fault_injector.create (Fault_plan.parse_exn "seed=12,compile-fail=0.5"))
      200
  in
  check cb "different seed, different stream" true (a <> c)

let test_noop_never_fires () =
  let inj = Fault_injector.create (Fault_plan.parse_exn "noop") in
  check (Alcotest.list cb) "noop stream is silent"
    (List.init 50 (fun _ -> false))
    (stream_of inj 50)

let test_corrupt_streams_independent () =
  let plan = Fault_plan.parse_exn "seed=3,corrupt=0.5" in
  let draw what =
    let inj = Fault_injector.create plan in
    List.init 64 (fun _ -> Fault_injector.fire_corrupt inj ~what)
  in
  check (Alcotest.list cb) "per-kind stream is stable" (draw "advice")
    (draw "advice");
  check cb "advice and dcg draw from distinct streams" true
    (draw "advice" <> draw "dcg")

let test_accounted () =
  let inj = Fault_injector.create (Fault_plan.parse_exn "noop") in
  let zero = Fault_injector.counts inj in
  (match Fault_injector.accounted zero with
  | Ok () -> ()
  | Error m -> Alcotest.failf "zero counts unaccounted: %s" m);
  check cb "an unanswered fault is flagged" true
    (Result.is_error
       (Fault_injector.accounted
          { zero with Fault_injector.compile_fail = 1 }))

(* ------------------ degradation, end to end --------------------- *)

let env =
  lazy (Exp_harness.make_env ~seed:21 ~size:40 (Suite.find "compress"))

let config spec =
  {
    Exp_harness.default with
    Exp_harness.profiling = Exp_harness.pep_default;
    faults = Fault_plan.parse_exn spec;
  }

let replay spec = Exp_harness.replay (Lazy.force env) (config spec)
let healthy = lazy (replay "")

let counts_of (r : Exp_harness.run) =
  match r.Exp_harness.faults with
  | Some inj -> Fault_injector.counts inj
  | None -> Alcotest.fail "faulted run carries no injector"

let assert_accounted c =
  match Fault_injector.accounted c with
  | Ok () -> ()
  | Error m -> Alcotest.failf "unaccounted degradation: %s" m

let test_empty_plan_no_injector () =
  check cb "empty plan, no injector" true
    (Option.is_none (Lazy.force healthy).Exp_harness.faults)

let test_noop_bit_identical () =
  let r = replay "noop" in
  check_meas "noop vs healthy" (Lazy.force healthy).Exp_harness.meas
    r.Exp_harness.meas;
  let c = counts_of r in
  check ci "noop injects nothing" 0
    (c.Fault_injector.compile_fail + c.Fault_injector.sample_overrun
   + c.Fault_injector.store_corrupt + c.Fault_injector.path_overflow
   + c.Fault_injector.edge_overflow + c.Fault_injector.quarantined)

let test_compile_dead () =
  let retries = 2 in
  let r = replay (Fmt.str "seed=1,compile-fail=1,compile-retries=%d" retries) in
  let c = counts_of r in
  assert_accounted c;
  check cb "some method gave up" true (c.Fault_injector.gaveups > 0);
  (* with p=1 every retry fails too: each doomed method burns exactly
     the initial attempt plus [retries] backoffs before giving up *)
  check ci "fail = gaveups * (retries+1)"
    (c.Fault_injector.gaveups * (retries + 1))
    c.Fault_injector.compile_fail;
  check ci "backoffs = gaveups * retries"
    (c.Fault_injector.gaveups * retries)
    c.Fault_injector.backoffs;
  check ci "checksum untouched"
    (Lazy.force healthy).Exp_harness.meas.Exp_harness.checksum
    r.Exp_harness.meas.Exp_harness.checksum

let test_sample_overrun_all () =
  let r = replay "seed=2,sample-overrun=1" in
  let c = counts_of r in
  assert_accounted c;
  check cb "samples were dropped" true (c.Fault_injector.samples_dropped > 0);
  (match r.Exp_harness.pep with
  | Some p ->
      check ci "every sample dropped, path tables empty" 0
        (Path_profile.table_total p.Pep.paths)
  | None -> Alcotest.fail "pep run lost its profiler");
  check ci "checksum untouched"
    (Lazy.force healthy).Exp_harness.meas.Exp_harness.checksum
    r.Exp_harness.meas.Exp_harness.checksum

let test_table_caps () =
  let r = replay "seed=4,path-cap=1,edge-cap=1" in
  let c = counts_of r in
  assert_accounted c;
  match r.Exp_harness.pep with
  | None -> Alcotest.fail "pep run lost its profiler"
  | Some p ->
      check cb "tight caps overflow" true (c.Fault_injector.path_overflow > 0);
      check ci "path accounting matches the table"
        (Path_profile.table_overflow p.Pep.paths)
        c.Fault_injector.path_overflow;
      check ci "edge accounting matches the table"
        (Edge_profile.table_overflow p.Pep.edges)
        c.Fault_injector.edge_overflow;
      check cb "lint still clean" false
        (Pep_check.has_errors r.Exp_harness.checks)

let test_quarantine_neutral () =
  let r = replay "seed=6,corrupt=1" in
  let c = counts_of r in
  assert_accounted c;
  (* both warmup inputs observed corrupt, quarantined, recomputed *)
  check ci "advice and dcg quarantined" 2 c.Fault_injector.quarantined;
  (* the recomputed inputs are identical, so nothing else may move *)
  check_meas "corrupt-only plan is measurement-neutral"
    (Lazy.force healthy).Exp_harness.meas r.Exp_harness.meas

let test_chaos_sweep () =
  let reports = Exp_chaos.sweep ~jobs:2 [ Lazy.force env ] in
  check ci "workload x plans x engines"
    (2 * List.length Exp_chaos.curated)
    (List.length reports);
  List.iter
    (fun (r : Exp_chaos.report) ->
      if r.Exp_chaos.violations <> [] then
        Alcotest.failf "chaos violation: %a" Exp_chaos.pp_report r)
    reports

(* -------- Too_many_paths -> edge-profiling fallback ------------- *)

(* A hot loop body of 31 sequential diamonds: 2^31 acyclic paths,
   over the 2^30 numbering limit, so PEP must refuse to plan the
   method (Warning, not Error) and profiling falls back to the
   one-time edge profile — while the run itself stays healthy. *)
let blowup =
  let open Ast in
  let build size =
    let diamonds =
      List.init 31 (fun k ->
          if_
            (eq (band (shr (v "j") (i (k mod 8))) (i 1)) (i 0))
            [ set "acc" (add (v "acc") (i 1)) ]
            [ set "acc" (add (v "acc") (i 2)) ])
    in
    let blow =
      mdef "blow" ~params:[ "x" ]
        [
          set "acc" (i 0);
          for_ "j" (v "x") (add (v "x") (i 64)) diamonds;
          ret (v "acc");
        ]
    in
    let main =
      mdef "main" ~params:[]
        [
          set "sum" (i 0);
          for_ "it" (i 0) (i size)
            [ set "sum" (add (v "sum") (call "blow" [ v "it" ])) ];
          ret (v "sum");
        ]
    in
    pdef "blowup" [ main; blow ]
  in
  {
    Workload.name = "blowup";
    description = "path-count blowup; must fall back to edge profiling";
    default_size = 300;
    build;
  }

let test_too_many_paths_fallback () =
  let env = Exp_harness.make_env ~seed:5 blowup in
  let run engine =
    Exp_harness.replay env
      { (config "") with Exp_harness.engine }
  in
  let ro = run `Oracle and rt = run `Threaded in
  let planned (r : Exp_harness.run) =
    List.exists
      (fun (d : Pep_check.diagnostic) ->
        d.Pep_check.pass = "plan"
        && d.Pep_check.severity = Pep_check.Warning
        && has_substring ~sub:"exceed the limit" d.Pep_check.message)
      r.Exp_harness.checks
  in
  check cb "oracle records the unprofilable plan" true (planned ro);
  check cb "threaded records the unprofilable plan" true (planned rt);
  check cb "no lint errors under fallback" false
    (Pep_check.has_errors rt.Exp_harness.checks);
  check cb "the one-time edge profile still has the method" true
    (Edge_profile.table_total (Driver.baseline_profile rt.Exp_harness.driver)
    > 0);
  check_meas "engines agree under fallback" ro.Exp_harness.meas
    rt.Exp_harness.meas

(* --------------- run-store crash consistency -------------------- *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    let f = Filename.temp_file "pepsim-faults" "" in
    Sys.remove f;
    incr n;
    f ^ ".d" ^ string_of_int !n

let payload =
  {
    Exp_store.iter1 = 1;
    iter2 = 2;
    compile = 3;
    checksum = 4;
    n_samples = 0;
    pep_paths = [];
    pep_edges = [];
    ppaths = [];
    pedges = [];
  }

let test_tmp_sweep () =
  let dir = fresh_dir () in
  let file = Exp_store.filename ~dir "legit" in
  (match Exp_store.save ~file ~key:"legit" payload with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save failed: %a" Dcg.pp_parse_error e);
  (* a crash between temp-write and rename strands a run-*.tmp *)
  let stray = Filename.concat dir "run-stranded.tmp" in
  Out_channel.with_open_text stray (fun oc -> output_string oc "half a run");
  (match Exp_store.prepare_dir dir with
  | Ok () -> ()
  | Error e -> Alcotest.failf "prepare_dir failed: %a" Dcg.pp_parse_error e);
  check cb "stray tmp swept" false (Sys.file_exists stray);
  match Exp_store.load ~file ~key:"legit" with
  | Ok (Some p) -> check ci "committed entry survives the sweep" 4 p.checksum
  | Ok None -> Alcotest.fail "committed entry vanished"
  | Error e -> Alcotest.failf "committed entry unreadable: %a" Dcg.pp_parse_error e

let test_ensure_dir_not_a_dir () =
  let file = Filename.temp_file "pepsim-faults" ".file" in
  let dir = Filename.concat file "cache" in
  (match Exp_store.ensure_dir dir with
  | Ok () -> Alcotest.fail "created a directory under a regular file"
  | Error _ -> ());
  match Exp_store.prepare_dir dir with
  | Ok () -> Alcotest.fail "prepared a directory under a regular file"
  | Error _ -> Sys.remove file

let test_unusable_cache_dir () =
  (* a cache dir that cannot exist: runs must still execute, with the
     failure on record as a structured diagnostic, not an exception *)
  let file = Filename.temp_file "pepsim-faults" ".file" in
  let cache_dir = Filename.concat file "cache" in
  let cache = Exp_cache.create ~cache_dir (Lazy.force env) in
  check cb "failure reported at open" true
    (List.length (Exp_cache.diagnostics cache) > 0);
  let r = Exp_cache.base cache in
  check ci "runs still execute"
    (Lazy.force healthy).Exp_harness.meas.Exp_harness.checksum
    r.Exp_harness.meas.Exp_harness.checksum;
  check ci "executed, not loaded" 1 (Exp_cache.stats cache).Exp_cache.executed;
  Sys.remove file

let test_store_corrupt_quarantine () =
  let dir = fresh_dir () in
  let config = config "seed=9,corrupt=1" in
  (* corrupt-only plans do not perturb execution, so they persist *)
  let cache1 = Exp_cache.create ~config ~cache_dir:dir (Lazy.force env) in
  let r1 = Exp_cache.run cache1 config in
  check cb "first run persisted" true
    (match Exp_cache.store_file cache1 config with
    | Some f -> Sys.file_exists f
    | None -> false);
  (* a fresh cache finds the entry on disk; the plan corrupts the load *)
  let cache2 = Exp_cache.create ~config ~cache_dir:dir (Lazy.force env) in
  let r2 = Exp_cache.run cache2 config in
  check ci "quarantined, recomputed" 1 (Exp_cache.stats cache2).Exp_cache.executed;
  check ci "no disk hit" 0 (Exp_cache.stats cache2).Exp_cache.disk_hits;
  check cb "quarantine diagnosed" true
    (List.exists
       (fun (d : Dcg.parse_error) ->
         has_substring ~sub:"quarantined" d.Dcg.reason)
       (Exp_cache.diagnostics cache2));
  (match (Exp_cache.run cache2 config).Exp_harness.faults with
  | Some inj ->
      check cb "store corruption accounted" true
        ((Fault_injector.counts inj).Fault_injector.store_corrupt > 0)
  | None -> Alcotest.fail "faulted run carries no injector");
  check_meas "identical either way" r1.Exp_harness.meas r2.Exp_harness.meas

let test_perturbing_plans_not_persisted () =
  let dir = fresh_dir () in
  let config = config "seed=4,path-cap=8" in
  let cache = Exp_cache.create ~config ~cache_dir:dir (Lazy.force env) in
  check cb "no store slot for a perturbing plan" true
    (Option.is_none (Exp_cache.store_file cache config));
  let _ = Exp_cache.run cache config in
  check cb "nothing written" true
    (Sys.readdir dir = [||] || not (Sys.file_exists dir))

let suite =
  [
    Alcotest.test_case "parse: empty" `Quick test_parse_empty;
    Alcotest.test_case "parse: clauses" `Quick test_parse_clauses;
    Alcotest.test_case "parse: perturbs_execution" `Quick test_perturbs;
    Alcotest.test_case "parse: errors" `Quick test_parse_errors;
    Alcotest.test_case "parse: key roundtrip" `Quick test_key_roundtrip;
    Alcotest.test_case "parse: @file" `Quick test_at_file;
    Alcotest.test_case "stream: deterministic" `Quick test_stream_deterministic;
    Alcotest.test_case "stream: noop never fires" `Quick test_noop_never_fires;
    Alcotest.test_case "stream: corrupt kinds independent" `Quick
      test_corrupt_streams_independent;
    Alcotest.test_case "accounting identities" `Quick test_accounted;
    Alcotest.test_case "empty plan: no injector" `Quick
      test_empty_plan_no_injector;
    Alcotest.test_case "noop plan: bit-identical" `Quick
      test_noop_bit_identical;
    Alcotest.test_case "compile-fail=1: backoff then give up" `Quick
      test_compile_dead;
    Alcotest.test_case "sample-overrun=1: all samples dropped" `Quick
      test_sample_overrun_all;
    Alcotest.test_case "table caps: overflow accounted" `Quick test_table_caps;
    Alcotest.test_case "corrupt inputs: quarantine is neutral" `Quick
      test_quarantine_neutral;
    Alcotest.test_case "chaos sweep: invariants hold" `Slow test_chaos_sweep;
    Alcotest.test_case "too many paths: edge fallback differential" `Quick
      test_too_many_paths_fallback;
    Alcotest.test_case "store: stray tmp swept, entries kept" `Quick
      test_tmp_sweep;
    Alcotest.test_case "store: ensure_dir surfaces failures" `Quick
      test_ensure_dir_not_a_dir;
    Alcotest.test_case "store: unusable cache dir degrades" `Quick
      test_unusable_cache_dir;
    Alcotest.test_case "store: corrupt entry quarantined" `Quick
      test_store_corrupt_quarantine;
    Alcotest.test_case "store: perturbing plans never persist" `Quick
      test_perturbing_plans_not_persisted;
  ]
