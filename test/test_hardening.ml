(* Hardening: irreducible control flow end-to-end, layout/frequency
   properties, parser fuzzing, serialization round trips. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* An irreducible CFG: two loop entries, neither dominating the other.
   0 -> {1, 2}; 1 -> {2, 4}; 2 -> {1, 3}; 3 exits; 4 exits via 3. *)
let irreducible_method () =
  {
    Method.name = "irr";
    nparams = 0;
    nlocals = 2;
    blocks =
      [|
        (* B0: r = rand(2); if r then B1 else B2 *)
        {
          Method.body = [| Instr.Rand 2 |];
          term = Method.Br { branch = 0; on_true = 1; on_false = 2 };
        };
        (* B1: l0++; if l0 < 5 then B2 else B4 *)
        {
          Method.body =
            [| Instr.Inc (0, 1); Instr.Load 0; Instr.Const 5; Instr.Cmp Instr.Lt |];
          term = Method.Br { branch = 1; on_true = 2; on_false = 4 };
        };
        (* B2: l1++; if l1 < 7 then B1 else B3 *)
        {
          Method.body =
            [| Instr.Inc (1, 1); Instr.Load 1; Instr.Const 7; Instr.Cmp Instr.Lt |];
          term = Method.Br { branch = 2; on_true = 1; on_false = 3 };
        };
        (* B3: exit *)
        { Method.body = [| Instr.Load 0 |]; term = Method.Ret };
        (* B4 -> B3 *)
        { Method.body = [||]; term = Method.Jmp 3 };
      |];
    entry = 0;
    exit_ = 3;
    uninterruptible = false;
  }

let irreducible_program () =
  Program.create ~name:"t" ~n_globals:1 ~heap_size:8 ~main:"irr"
    [ irreducible_method () ]

let test_irreducible_detected () =
  let cfg = To_cfg.cfg (irreducible_method ()) in
  let loops = Loops.compute cfg in
  check cb "irreducible" false (Loops.is_reducible loops);
  check cb "has irreducible edges" true (Loops.irreducible_edges loops <> [])

let test_irreducible_runs_and_numbers () =
  let program = irreducible_program () in
  Verify.program program;
  List.iter
    (fun mode ->
      let cfg = To_cfg.cfg (irreducible_method ()) in
      let numbering = Numbering.ball_larus (Dag.build mode cfg) in
      check cb "has paths" true (Numbering.n_paths numbering > 0);
      (* every id reconstructs *)
      for id = 0 to Numbering.n_paths numbering - 1 do
        ignore (Reconstruct.cfg_edges numbering id)
      done)
    [ Dag.Back_edge; Dag.Loop_header ]

let test_irreducible_profiled () =
  (* the perfect profiler must run without error; paths crossing the
     silent cuts are simply lost, never miscounted *)
  let program = irreducible_program () in
  let st = Machine.create ~seed:9 program in
  let p = Profiler.perfect_path st in
  let r = Interp.run (Interp.compose (Tick.hooks ()) p.Profiler.hooks) st in
  check cb "ran" true (r >= 0);
  (* recorded ids are all in range *)
  Array.iteri
    (fun m prof ->
      match p.Profiler.plans.(m) with
      | None -> check ci "no stray counts" 0 (Path_profile.total prof)
      | Some plan ->
          let n = Numbering.n_paths plan.Instrument.numbering in
          Path_profile.iter
            (fun e -> check cb "id in range" true (e.path_id >= 0 && e.path_id < n))
            prof)
    p.Profiler.table

let test_layout_positions_permutation =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:40 ~name:"layout positions form a permutation"
       QCheck2.Gen.(int_range 1 1_000_000)
       (fun seed ->
         let p = Compile.pdef (Synthetic.program ~seed ~n_methods:2 ()) in
         Program.iter_methods
           (fun _ m ->
             let cfg = To_cfg.cfg m in
             let profile = Edge_profile.create () in
             (* arbitrary biases *)
             List.iter
               (fun br ->
                 Edge_profile.add profile br ~taken:true ((br * 7) mod 13);
                 Edge_profile.add profile br ~taken:false ((br * 3) mod 11))
               (Cfg.branch_ids cfg);
             let pos = Layout.positions (Layout.compute cfg profile) in
             let n = Array.length pos in
             let seen = Array.make n false in
             Array.iter
               (fun p ->
                 if p < 0 || p >= n || seen.(p) then
                   Alcotest.fail "not a permutation";
                 seen.(p) <- true)
               pos;
             (* entry first *)
             if pos.(Cfg.entry cfg) <> 0 then Alcotest.fail "entry not first")
           p;
         true))

let test_freq_estimate_sane =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:40 ~name:"block frequencies finite and positive"
       QCheck2.Gen.(int_range 1 1_000_000)
       (fun seed ->
         let p = Compile.pdef (Synthetic.program ~seed ~n_methods:2 ()) in
         Program.iter_methods
           (fun _ m ->
             let cfg = To_cfg.cfg m in
             let freqs = Freq_estimate.block_freqs cfg (Edge_profile.create ()) in
             Array.iter
               (fun f ->
                 if not (Float.is_finite f) || f < 0. then
                   Alcotest.fail "bad frequency")
               freqs;
             if freqs.(Cfg.entry cfg) < 1.0 -. 1e-9 then
               Alcotest.fail "entry frequency lost")
           p;
         true))

(* Parser fuzz: random mutations of a valid program either parse or raise
   Parse.Error — never crash or loop. *)
let test_parse_fuzz () =
  let base = Pretty.to_string (Synthetic.program ~seed:77 ()) in
  let prng = Prng.create ~seed:123 in
  for _ = 1 to 300 do
    let b = Bytes.of_string base in
    let n_mutations = 1 + Prng.below prng 4 in
    for _ = 1 to n_mutations do
      let pos = Prng.below prng (Bytes.length b) in
      let c = Char.chr (32 + Prng.below prng 95) in
      Bytes.set b pos c
    done;
    match Parse.program (Bytes.to_string b) with
    | (_ : Ast.pdef) -> ()
    | exception Parse.Error _ -> ()
  done

let test_parse_truncation_fuzz () =
  let base = Pretty.to_string (Synthetic.program ~seed:78 ()) in
  for len = 0 to min 400 (String.length base) do
    match Parse.program (String.sub base 0 len) with
    | (_ : Ast.pdef) -> ()
    | exception Parse.Error _ -> ()
  done

let test_path_profile_serialization () =
  let t = Path_profile.create_table ~n_methods:3 in
  Path_profile.add t.(0) 5 100;
  Path_profile.add t.(2) 0 1;
  Path_profile.add t.(2) 7 33;
  let t' = Path_profile.of_lines ~n_methods:3 (Path_profile.to_lines t) in
  check ci "total" (Path_profile.table_total t) (Path_profile.table_total t');
  check ci "entry count" 33
    (Option.get (Path_profile.find t'.(2) 7)).Path_profile.count;
  match Path_profile.of_lines ~n_methods:3 [ "junk line" ] with
  | (_ : Path_profile.table) -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ()

let test_advice_bad_lines () =
  List.iter
    (fun (line_no, lines) ->
      match Advice.of_lines ~file:"a.advice" ~n_methods:2 lines with
      | Ok _ -> Alcotest.failf "expected a parse error"
      | Error e ->
          check ci "error line" line_no e.Dcg.line;
          check Alcotest.(option string) "error file" (Some "a.advice")
            e.Dcg.file;
          check cb "error has reason" true (String.length e.Dcg.reason > 0))
    [
      (1, [ "level x y" ]);
      (1, [ "edge 0" ]);
      (1, [ "dcg a b c" ]);
      (1, [ "wat" ]);
      (3, [ "level 0 2"; ""; "level 9 1" ]);
    ]

let suite =
  [
    Alcotest.test_case "irreducible detected" `Quick test_irreducible_detected;
    Alcotest.test_case "irreducible numbers" `Quick test_irreducible_runs_and_numbers;
    Alcotest.test_case "irreducible profiled" `Quick test_irreducible_profiled;
    test_layout_positions_permutation;
    test_freq_estimate_sane;
    Alcotest.test_case "parse fuzz" `Quick test_parse_fuzz;
    Alcotest.test_case "parse truncation fuzz" `Quick test_parse_truncation_fuzz;
    Alcotest.test_case "path profile serialization" `Quick test_path_profile_serialization;
    Alcotest.test_case "advice bad lines" `Quick test_advice_bad_lines;
  ]
