(* PEP end-to-end: instrumentation-only neutrality, sampling correctness,
   the memoized path-to-edges expansion, and the derived edge profile. *)

let check = Alcotest.check
let ci = Alcotest.int

let program_of ?(size = 3) name = Workload.program ~size (Suite.find name)

let run_pep ?(seed = 5) ?tick_offset ~sampling program =
  let st = Machine.create ?tick_offset ~seed program in
  let pep = Pep.create ~sampling st in
  let hooks = Interp.compose (Tick.hooks ()) pep.Pep.hooks in
  let result = Interp.run hooks st in
  (result, st, pep)

let test_instr_only_neutral () =
  (* with sampling `never`, PEP maintains r but records nothing and must
     not change the application's result *)
  let program = program_of "jess" in
  let base_st = Machine.create ~seed:5 program in
  let base = Interp.run (Tick.hooks ()) base_st in
  let result, st, pep = run_pep ~sampling:Sampling.never program in
  check ci "checksum unchanged" base result;
  check ci "no samples" 0 (Pep.n_samples pep);
  check ci "no paths" 0 (Path_profile.table_total pep.Pep.paths);
  check Alcotest.bool "instrumentation costs cycles" true
    (st.Machine.cycles > base_st.Machine.cycles)

let test_sampling_collects () =
  let program = program_of "compress" in
  let _, _, pep =
    run_pep ~tick_offset:1000 ~sampling:(Sampling.pep ~samples:64 ~stride:17)
      program
  in
  check Alcotest.bool "samples taken" true (Pep.n_samples pep > 0);
  check ci "paths recorded = samples (minus dropped)"
    (Pep.n_samples pep)
    (Path_profile.table_total pep.Pep.paths)

let test_edges_match_paths () =
  (* PEP's edge profile must equal the edge profile implied by its own
     path profile *)
  let program = program_of "jython" in
  let _, _, pep =
    run_pep ~tick_offset:500 ~sampling:(Sampling.pep ~samples:256 ~stride:5)
      program
  in
  let derived =
    Profiler.edges_of_paths ~n_methods:(Program.n_methods program)
      pep.Pep.plans pep.Pep.paths
  in
  check ci "same totals"
    (Edge_profile.table_total derived)
    (Edge_profile.table_total pep.Pep.edges);
  Array.iteri
    (fun m d ->
      List.iter
        (fun br ->
          match (Edge_profile.counter d br, Edge_profile.counter pep.Pep.edges.(m) br) with
          | Some a, Some b ->
              check ci "taken" a.Edge_profile.taken b.Edge_profile.taken;
              check ci "not-taken" a.not_taken b.not_taken
          | None, None -> ()
          | _ -> Alcotest.fail "branch sets differ")
        (Edge_profile.branch_ids d))
    derived

let test_memoization () =
  let program = program_of "compress" in
  let _, _, pep =
    run_pep ~tick_offset:100 ~sampling:(Sampling.pep ~samples:512 ~stride:1)
      program
  in
  Array.iter
    (fun prof ->
      Path_profile.iter
        (fun (e : Path_profile.entry) ->
          check Alcotest.bool "sampled entry memoized" true (e.edges <> None);
          check Alcotest.bool "n_branches filled" true (e.n_branches >= 0))
        prof)
    pep.Pep.paths

let test_pep_subset_of_perfect () =
  (* every path PEP samples must exist in the perfect profile, with a
     count no larger *)
  let program = program_of "db" in
  let st = Machine.create ~seed:5 program in
  let perfect = Profiler.perfect_path st in
  ignore (Interp.run (Interp.compose (Tick.hooks ()) perfect.Profiler.hooks) st);
  let _, _, pep =
    run_pep ~tick_offset:100 ~sampling:(Sampling.pep ~samples:64 ~stride:17)
      program
  in
  Array.iteri
    (fun m prof ->
      Path_profile.iter
        (fun (e : Path_profile.entry) ->
          match Path_profile.find perfect.Profiler.table.(m) e.path_id with
          | Some pe ->
              check Alcotest.bool "sampled count <= true count" true
                (e.count <= pe.Path_profile.count)
          | None -> Alcotest.failf "PEP sampled a path never executed (%d)" e.path_id)
        prof)
    pep.Pep.paths

let test_dense_sampling_accuracy () =
  (* saturated sampling must converge on the perfect hot-path set *)
  let program = program_of "pseudojbb" in
  let st = Machine.create ~seed:5 program in
  let perfect = Profiler.perfect_path st in
  ignore (Interp.run (Interp.compose (Tick.hooks ()) perfect.Profiler.hooks) st);
  let _, _, pep =
    run_pep ~tick_offset:1 ~sampling:(Sampling.pep ~samples:max_int ~stride:1)
      program
  in
  let n_branches =
    Profiler.n_branches_resolver perfect.Profiler.plans perfect.Profiler.table
  in
  let acc =
    Accuracy.wall_path_accuracy ~n_branches ~actual:perfect.Profiler.table
      ~estimated:pep.Pep.paths ()
  in
  check Alcotest.bool "saturated sampling is near-perfect" true (acc > 0.99)

let test_uninterruptible_not_profiled () =
  (* pmd's hash helper is uninterruptible: no plan, no samples from it *)
  let program = program_of "pmd" in
  let st = Machine.create ~seed:5 program in
  let pep = Pep.create ~sampling:(Sampling.pep ~samples:64 ~stride:1) st in
  let hash_idx = Program.index program "hash" in
  check Alcotest.bool "no plan for uninterruptible" true
    (pep.Pep.plans.(hash_idx) = None);
  ignore (Interp.run (Interp.compose (Tick.hooks ()) pep.Pep.hooks) st);
  check ci "no paths recorded for it" 0
    (Path_profile.total pep.Pep.paths.(hash_idx))

let suite =
  [
    Alcotest.test_case "instr-only is neutral" `Quick test_instr_only_neutral;
    Alcotest.test_case "sampling collects" `Quick test_sampling_collects;
    Alcotest.test_case "edge profile matches paths" `Quick test_edges_match_paths;
    Alcotest.test_case "memoized expansion" `Quick test_memoization;
    Alcotest.test_case "PEP subset of perfect" `Quick test_pep_subset_of_perfect;
    Alcotest.test_case "dense sampling accuracy" `Slow test_dense_sampling_accuracy;
    Alcotest.test_case "uninterruptible skipped" `Quick
      test_uninterruptible_not_profiled;
  ]
