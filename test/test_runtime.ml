(* Runtime-layer details: the tick driver, machine state transitions,
   cost-model accounting, and report statistics. *)

open Ast

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let cf = Alcotest.float 1e-9

let looped_program n =
  Compile.program ~name:"t" ~main:"main"
    [
      mdef "main" ~params:[]
        [
          set "s" (i 0);
          for_ "k" (i 0) (i n) [ set "s" (add (v "s") (i 1)) ];
          ret (v "s");
        ];
    ]

let test_tick_driver_rearms () =
  let program = looped_program 20_000 in
  let st = Machine.create ~tick_offset:1000 ~seed:1 program in
  let ticks = ref 0 in
  let hooks = Tick.hooks ~on_tick:(fun _ _ -> incr ticks) () in
  ignore (Interp.run hooks st);
  let expected = st.Machine.cycles / st.Machine.cost.Cost_model.tick_period in
  check cb "several ticks fired" true (!ticks >= 1);
  (* rearming is period-spaced: tick count within one of cycles/period *)
  check cb "tick count consistent with period" true (abs (!ticks - expected) <= 1);
  check cb "flag cleared after handling" true (not st.Machine.yield_flag)

let test_tick_pending_token () =
  let program = looped_program 20_000 in
  let st = Machine.create ~tick_offset:1000 ~seed:1 program in
  ignore (Interp.run (Tick.hooks ()) st);
  (* nothing consumed the token: it must still be raised *)
  check cb "token raised" true st.Machine.tick_pending

let test_sampling_hooks_count_methods () =
  let program = looped_program 50_000 in
  let st = Machine.create ~tick_offset:1000 ~seed:1 program in
  let hooks, samples = Tick.sampling_hooks st in
  ignore (Interp.run hooks st);
  check cb "main sampled" true (samples.(Program.index program "main") > 0)

let test_set_speed_scales_cycles () =
  let program = looped_program 10_000 in
  let run percent =
    let st = Machine.create ~seed:1 program in
    Machine.set_speed st 0 ~percent;
    ignore (Interp.run Interp.no_hooks st);
    st.Machine.cycles
  in
  let fast = run 100 and slow = run 500 in
  check cb "5x speed percent ~ 5x cycles" true
    (slow > 4 * fast && slow < 6 * fast)

let test_edge_extra_charged () =
  let program = looped_program 1000 in
  let run extra =
    let st = Machine.create ~seed:1 program in
    let cm = Machine.cmeth st 0 in
    Cfg.iter_blocks
      (fun b ->
        cm.Machine.edge_extra.(b).(0) <- extra;
        cm.Machine.edge_extra.(b).(1) <- extra)
      cm.Machine.cfg;
    ignore (Interp.run Interp.no_hooks st);
    st.Machine.cycles
  in
  let base = run 0 and penalized = run 10 in
  check cb "penalties add cycles" true (penalized > base);
  Machine.clear_edge_extra (Machine.create ~seed:1 program) 0

let test_clear_edge_extra () =
  let program = looped_program 10 in
  let st = Machine.create ~seed:1 program in
  let cm = Machine.cmeth st 0 in
  cm.Machine.edge_extra.(0).(0) <- 99;
  Machine.clear_edge_extra st 0;
  check ci "cleared" 0 cm.Machine.edge_extra.(0).(0)

let test_cost_model_instr_costs () =
  let c = Cost_model.default in
  check ci "arith" c.Cost_model.arith (Cost_model.instr_cost c (Instr.Const 1));
  check ci "memory" c.Cost_model.memory (Cost_model.instr_cost c Instr.AGet);
  check ci "call" c.Cost_model.call (Cost_model.instr_cost c (Instr.Call ("f", 1)));
  check ci "rand" c.Cost_model.rand (Cost_model.instr_cost c (Instr.Rand 5));
  check cb "count dearer than edge count" true
    (c.Cost_model.count_update > c.Cost_model.edge_count);
  check cb "r update cheapest" true (c.Cost_model.r_update < c.Cost_model.edge_count)

let test_prng_distribution () =
  let prng = Prng.create ~seed:99 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Prng.below prng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun b n ->
      if n < 700 || n > 1300 then
        Alcotest.failf "bucket %d badly skewed: %d/10000" b n)
    buckets;
  (* copy forks the stream *)
  let a = Prng.create ~seed:5 in
  let b = Prng.copy a in
  check ci "copies agree" (Prng.next a) (Prng.next b)

let test_report_stats () =
  check cf "mean" 2.0 (Exp_report.mean [ 1.; 2.; 3. ]);
  check cf "mean empty" 0.0 (Exp_report.mean []);
  check cf "median odd" 2.0 (Exp_report.median [ 3.; 1.; 2. ]);
  check cf "median even" 2.5 (Exp_report.median [ 4.; 1.; 2.; 3. ]);
  check cf "geomean" 2.0 (Exp_report.geomean [ 1.; 4. ]);
  check cf "overhead" 50.0 (Exp_report.overhead ~base:100 150);
  check cf "overhead negative" (-25.0) (Exp_report.overhead ~base:100 75)

let test_uninterruptible_no_yieldpoints () =
  let program =
    Compile.program ~name:"t" ~main:"main"
      [
        mdef ~uninterruptible:true "main" ~params:[]
          [
            set "s" (i 0);
            for_ "k" (i 0) (i 100) [ set "s" (add (v "s") (i 1)) ];
            ret (v "s");
          ];
      ]
  in
  let st = Machine.create ~tick_offset:1 ~seed:1 program in
  let polled = ref 0 in
  let hooks =
    { Interp.no_hooks with on_yieldpoint = Some (fun _ _ _ -> incr polled) }
  in
  ignore (Interp.run hooks st);
  check ci "no yieldpoints executed" 0 !polled

let test_machine_index () =
  let program = looped_program 1 in
  let st = Machine.create ~seed:1 program in
  check ci "main index" 0 (Machine.index st "main");
  match Machine.index st "nope" with
  | (_ : int) -> Alcotest.fail "expected Not_found"
  | exception Not_found -> ()

let suite =
  [
    Alcotest.test_case "tick driver rearms" `Quick test_tick_driver_rearms;
    Alcotest.test_case "tick pending token" `Quick test_tick_pending_token;
    Alcotest.test_case "method sampling" `Quick test_sampling_hooks_count_methods;
    Alcotest.test_case "set_speed scales" `Quick test_set_speed_scales_cycles;
    Alcotest.test_case "edge extras charged" `Quick test_edge_extra_charged;
    Alcotest.test_case "clear edge extras" `Quick test_clear_edge_extra;
    Alcotest.test_case "instr costs" `Quick test_cost_model_instr_costs;
    Alcotest.test_case "prng distribution" `Quick test_prng_distribution;
    Alcotest.test_case "report statistics" `Quick test_report_stats;
    Alcotest.test_case "uninterruptible: no yieldpoints" `Quick
      test_uninterruptible_no_yieldpoints;
    Alcotest.test_case "machine index" `Quick test_machine_index;
  ]
