(* Instrumentation plans and end-to-end correctness of instrumented
   profiling: the profile recorded through path numbers must match a
   reference tracker that follows raw block/edge events. *)

let check = Alcotest.check
let ci = Alcotest.int

(* --- plan unit tests on the figure-3 loop ------------------------- *)

let loop_cfg () =
  Cfg.create ~name:"fig3" ~entry:0 ~exit_:5
    [|
      Cfg.Jump 1;
      Cfg.Branch { branch = 0; taken = 2; not_taken = 5 };
      Cfg.Branch { branch = 1; taken = 3; not_taken = 4 };
      Cfg.Jump 1;
      Cfg.Jump 1;
      Cfg.Return;
    |]

let test_plan_header_mode () =
  let plan =
    Instrument.of_numbering
      (Numbering.ball_larus (Dag.build Dag.Loop_header (loop_cfg ())))
  in
  (* the header block carries a path-end event with a reset *)
  (match plan.Instrument.path_end.(1) with
  | Some { badd = _; breset } ->
      check Alcotest.bool "header resets r" true (breset >= 0)
  | None -> Alcotest.fail "header must be a path end");
  (* the exit block is a path end without a reset *)
  (match plan.Instrument.path_end.(5) with
  | Some { badd; breset } ->
      check ci "exit badd" 0 badd;
      check ci "exit no reset" (-1) breset
  | None -> Alcotest.fail "exit must be a path end");
  (* no count points on edges in header mode *)
  Array.iteri
    (fun src steps ->
      Array.iter
        (function
          | Some (s : Instrument.edge_step) ->
              if s.count then Alcotest.failf "unexpected count on edge from %d" src
          | None -> ())
        steps)
    plan.Instrument.edge_steps

let test_plan_back_edge_mode () =
  let plan =
    Instrument.of_numbering
      (Numbering.ball_larus (Dag.build Dag.Back_edge (loop_cfg ())))
  in
  (* back edges 3->1 and 4->1 carry count+reset *)
  List.iter
    (fun src ->
      match plan.Instrument.edge_steps.(src).(0) with
      | Some { count; reset; _ } ->
          check Alcotest.bool "count on back edge" true count;
          check Alcotest.bool "reset on back edge" true (reset >= 0)
      | None -> Alcotest.failf "expected step on back edge from %d" src)
    [ 3; 4 ];
  (* only the exit has a block-level path end *)
  Array.iteri
    (fun b ev ->
      match ev with
      | Some (_ : Instrument.block_event) ->
          check ci "only exit" 5 b
      | None -> ())
    plan.Instrument.path_end;
  check Alcotest.bool "static ops positive" true (Instrument.static_ops plan > 3)

(* --- reference tracker --------------------------------------------- *)

type ref_state = {
  mutable stack : (Interp.frame * Cfg.edge list ref) list;
  table : (int * Cfg.edge list, int ref) Hashtbl.t;
}

let edge_of st (frame : Interp.frame) ~src ~idx ~dst =
  let cm = Machine.cmeth st frame.Interp.fmeth in
  let attr =
    match Cfg.terminator cm.Machine.cfg src with
    | Cfg.Branch { branch; _ } -> if idx = 0 then Cfg.Taken branch else Cfg.Not_taken branch
    | Cfg.Jump _ -> Cfg.Seq
    | Cfg.Return -> assert false
  in
  { Cfg.src; dst; attr }

(* Reference profiler: records paths as raw CFG edge lists, splitting at
   the mode's path ends, with no knowledge of path numbering. *)
let reference_hooks mode st (plans : Profile_hooks.plans) =
  let rs = { stack = []; table = Hashtbl.create 64 } in
  let record meth edges_rev =
    let key = (meth, List.rev edges_rev) in
    match Hashtbl.find_opt rs.table key with
    | Some r -> incr r
    | None -> Hashtbl.replace rs.table key (ref 1)
  in
  let is_header (frame : Interp.frame) b =
    let cm = Machine.cmeth st frame.Interp.fmeth in
    Loops.is_header cm.Machine.loops b
  in
  let is_back_edge (frame : Interp.frame) ~src ~dst =
    let cm = Machine.cmeth st frame.Interp.fmeth in
    List.exists
      (fun (e : Cfg.edge) -> e.src = src && e.dst = dst)
      (Loops.back_edges cm.Machine.loops)
  in
  let on_entry _st (frame : Interp.frame) =
    rs.stack <- (frame, ref []) :: rs.stack
  in
  let on_exit _st (frame : Interp.frame) =
    match rs.stack with
    | (f, _) :: rest when f == frame -> rs.stack <- rest
    | _ -> Alcotest.fail "reference stack mismatch"
  in
  let on_edge st (frame : Interp.frame) ~src ~idx ~dst =
    if plans.(frame.Interp.fmeth) <> None then begin
      match rs.stack with
      | (f, edges) :: _ when f == frame -> (
          let meth = frame.Interp.fmeth in
          let exit_b = Cfg.exit_ (Machine.cmeth st meth).Machine.cfg in
          match mode with
          | Dag.Loop_header ->
              let e = edge_of st frame ~src ~idx ~dst in
              edges := e :: !edges;
              if dst = exit_b || is_header frame dst then begin
                record meth !edges;
                edges := []
              end
          | Dag.Back_edge ->
              if is_back_edge frame ~src ~dst then begin
                (* the cut edge belongs to neither path *)
                record meth !edges;
                edges := []
              end
              else begin
                let e = edge_of st frame ~src ~idx ~dst in
                edges := e :: !edges;
                if dst = exit_b then begin
                  record meth !edges;
                  edges := []
                end
              end)
      | _ -> Alcotest.fail "reference stack mismatch"
    end
  in
  ( {
      Interp.on_entry = Some on_entry;
      on_exit = Some on_exit;
      on_edge = Some on_edge;
      on_yieldpoint = None;
    },
    rs.table )

let profiled_table (p : Profiler.path_profiler) =
  let out = Hashtbl.create 64 in
  Array.iteri
    (fun meth prof ->
      Path_profile.iter
        (fun (e : Path_profile.entry) ->
          match p.Profiler.plans.(meth) with
          | Some plan ->
              (* distinct path ids can reconstruct to the same real-edge
                 list (dummy-only differences); aggregate like the
                 reference does *)
              let edges =
                Reconstruct.cfg_edges plan.Instrument.numbering e.path_id
              in
              let prev =
                Option.value ~default:0 (Hashtbl.find_opt out (meth, edges))
              in
              Hashtbl.replace out (meth, edges) (prev + e.count)
          | None -> Alcotest.fail "profiled method without plan")
        prof)
    p.Profiler.table;
  out

let all_reducible st =
  Array.for_all
    (fun (cm : Machine.cmeth) -> Loops.is_reducible cm.Machine.loops)
    st.Machine.methods

let compare_profiles name reference profiled =
  Hashtbl.iter
    (fun key count ->
      match Hashtbl.find_opt profiled key with
      | Some c when c = !count -> ()
      | Some c ->
          Alcotest.failf "%s: count mismatch (%d reference vs %d profiled)" name
            !count c
      | None -> Alcotest.failf "%s: path missing from profiler" name)
    reference;
  check ci (name ^ ": same distinct paths") (Hashtbl.length reference)
    (Hashtbl.length profiled)

let run_comparison name mode program seed =
  let st = Machine.create ~seed program in
  if all_reducible st then begin
    let profiler =
      match mode with
      | Dag.Loop_header -> Profiler.perfect_path st
      | Dag.Back_edge -> Profiler.classic_blpp st
    in
    (* skip if some interruptible method was unprofilable (path blowup) *)
    let all_planned =
      Array.for_all2
        (fun plan (cm : Machine.cmeth) ->
          plan <> None || cm.Machine.meth.Method.uninterruptible)
        profiler.Profiler.plans st.Machine.methods
    in
    if all_planned then begin
      let ref_hooks, reference = reference_hooks mode st profiler.Profiler.plans in
      let hooks = Interp.compose profiler.Profiler.hooks ref_hooks in
      ignore (Interp.run hooks st);
      compare_profiles name reference (profiled_table profiler)
    end
  end

let test_profile_matches_reference_workloads () =
  List.iter
    (fun wname ->
      let w = Suite.find wname in
      let program = Workload.program ~size:2 w in
      run_comparison (wname ^ "/header") Dag.Loop_header program 11;
      run_comparison (wname ^ "/back") Dag.Back_edge program 11)
    [ "compress"; "db"; "javac"; "jython"; "pseudojbb"; "mtrt" ]

let test_profile_matches_reference_synthetic =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:25 ~name:"instrumented profile = reference"
       QCheck2.Gen.(int_range 1 1_000_000)
       (fun seed ->
         let p = Compile.pdef (Synthetic.program ~seed ~n_methods:3 ()) in
         run_comparison "synthetic/header" Dag.Loop_header p seed;
         run_comparison "synthetic/back" Dag.Back_edge p seed;
         true))

let test_edges_of_paths_consistent () =
  (* the edge profile derived from a full path profile must equal the
     directly instrumented edge profile, restricted to planned methods *)
  let program = Workload.program ~size:2 (Suite.find "compress") in
  let st1 = Machine.create ~seed:3 program in
  let pp = Profiler.perfect_path st1 in
  ignore (Interp.run pp.Profiler.hooks st1);
  let derived =
    Profiler.edges_of_paths ~n_methods:(Program.n_methods program)
      pp.Profiler.plans pp.Profiler.table
  in
  let st2 = Machine.create ~seed:3 program in
  let pe = Profiler.perfect_edge st2 in
  ignore (Interp.run pe.Profiler.ehooks st2);
  (* compare per planned method *)
  Array.iteri
    (fun m plan ->
      match plan with
      | None -> ()
      | Some _ ->
          List.iter
            (fun br ->
              let c1 = Edge_profile.counter derived.(m) br in
              let c2 = Edge_profile.counter pe.Profiler.etable.(m) br in
              match (c1, c2) with
              | Some a, Some b ->
                  check ci "taken" b.Edge_profile.taken a.Edge_profile.taken;
                  check ci "not-taken" b.not_taken a.not_taken
              | None, None -> ()
              | _ -> Alcotest.fail "branch coverage mismatch")
            (Edge_profile.branch_ids pe.Profiler.etable.(m)))
    pp.Profiler.plans

let suite =
  [
    Alcotest.test_case "plan: header mode" `Quick test_plan_header_mode;
    Alcotest.test_case "plan: back-edge mode" `Quick test_plan_back_edge_mode;
    Alcotest.test_case "profile = reference (workloads)" `Slow
      test_profile_matches_reference_workloads;
    test_profile_matches_reference_synthetic;
    Alcotest.test_case "edges-of-paths = direct edges" `Quick
      test_edges_of_paths_consistent;
  ]
