(* Inlining, the dynamic call graph, method replacement, and profiling
   over inlined code. *)

open Ast

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let small_program () =
  Compile.program ~name:"t" ~main:"main"
    [
      mdef "add3" ~params:[ "x" ] [ ret (add (v "x") (i 3)) ];
      mdef "twice" ~params:[ "x" ]
        [
          if_ (gt (v "x") (i 100))
            [ ret (v "x") ]
            [ ret (mul (call "add3" [ v "x" ]) (i 2)) ];
        ];
      mdef "main" ~params:[]
        [
          set "s" (i 0);
          for_ "k" (i 0) (i 50)
            [
              set "s" (add (v "s") (call "add3" [ v "k" ]));
              set "s" (add (v "s") (call "add3" [ neg (v "k") ]));
              set "s" (add (v "s") (call "twice" [ v "k" ]));
            ];
          ret (v "s");
        ];
    ]

let run_program program =
  let st = Machine.create ~seed:3 program in
  Interp.run Interp.no_hooks st

(* Run with every method's body replaced by its fully-inlined expansion. *)
let run_inlined program ~should_inline =
  let st = Machine.create ~seed:3 program in
  let total_sites = ref 0 in
  Program.iter_methods
    (fun midx m ->
      let r = Inline.expand program m ~should_inline in
      if r.Inline.inlined <> [] then begin
        total_sites :=
          !total_sites + List.fold_left (fun a (_, n) -> a + n) 0 r.inlined;
        Machine.recompile st midx ~no_yieldpoint:r.no_yieldpoint r.meth
      end)
    program;
  (Interp.run Interp.no_hooks st, !total_sites)

let test_inline_preserves_semantics () =
  let program = small_program () in
  let expected = run_program program in
  let got, sites = run_inlined program ~should_inline:(fun _ -> true) in
  check ci "same result" expected got;
  (* main has 3 call sites; twice has 1 *)
  check ci "sites expanded" 4 sites

let test_inline_shares_branch_ids () =
  let program = small_program () in
  let main = Program.find program "main" in
  let r = Inline.expand program main ~should_inline:(fun _ -> true) in
  (* main has 1 original branch (the for header); `twice` contributes one
     branch.  add3 contributes none, and its two copies must not add ids. *)
  check ci "branch count after inlining" 2 (Method.n_branches r.Inline.meth);
  check cb "body grew" true (Method.size r.Inline.meth > Method.size main);
  check cb "locals grew" true (r.Inline.meth.Method.nlocals > main.Method.nlocals)

let test_inline_verifies () =
  let program = small_program () in
  Program.iter_methods
    (fun _ m ->
      let r = Inline.expand program m ~should_inline:(fun _ -> true) in
      ignore (Verify.block_depths program r.Inline.meth);
      ignore (To_cfg.cfg r.Inline.meth))
    program

let test_inline_skips_recursion () =
  let fact =
    mdef "fact" ~params:[ "n" ]
      [
        if_ (le (v "n") (i 1)) [ ret (i 1) ] [];
        ret (mul (v "n") (call "fact" [ sub (v "n") (i 1) ]));
      ]
  in
  let main = mdef "main" ~params:[] [ ret (call "fact" [ i 10 ]) ] in
  let program = Compile.program ~name:"t" ~main:"main" [ main; fact ] in
  let fact_m = Program.find program "fact" in
  let r = Inline.expand program fact_m ~should_inline:(fun _ -> true) in
  check cb "self-call not inlined" true (r.Inline.inlined = []);
  (* inlining fact into main is fine (one level) *)
  let got, _ = run_inlined program ~should_inline:(fun _ -> true) in
  check ci "factorial preserved" 3628800 got

let test_inline_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:30 ~name:"inlining preserves semantics"
       QCheck2.Gen.(int_range 1 1_000_000)
       (fun seed ->
         let program = Compile.pdef (Synthetic.program ~seed ~n_methods:4 ()) in
         let expected =
           let st = Machine.create ~seed program in
           Interp.run Interp.no_hooks st
         in
         let st = Machine.create ~seed program in
         Program.iter_methods
           (fun midx m ->
             let r =
               Inline.expand program m
                 ~should_inline:(Inline.small_enough ~limit:80)
             in
             if r.Inline.inlined <> [] then begin
               ignore (Verify.block_depths program r.Inline.meth);
               Machine.recompile st midx ~no_yieldpoint:r.no_yieldpoint
                 r.Inline.meth
             end)
           program;
         Interp.run Interp.no_hooks st = expected))

let test_uninterruptible_inline_suppresses_yieldpoints () =
  let hash =
    mdef ~uninterruptible:true "hash" ~params:[ "x" ]
      [
        set "a" (v "x");
        for_ "k" (i 0) (i 4) [ set "a" (bxor (v "a") (shl (v "a") (i 5))) ];
        ret (v "a");
      ]
  in
  let main =
    mdef "main" ~params:[]
      [
        set "s" (i 0);
        for_ "k" (i 0) (i 100) [ set "s" (add (v "s") (call "hash" [ v "k" ])) ];
        ret (v "s");
      ]
  in
  let program = Compile.program ~name:"t" ~main:"main" [ main; hash ] in
  let expected = run_program program in
  let st = Machine.create ~seed:3 program in
  let main_idx = Program.index program "main" in
  let r =
    Inline.expand program (Program.find program "main")
      ~should_inline:(fun _ -> true)
  in
  check cb "some blocks lost their yieldpoint eligibility" true
    (Array.exists Fun.id r.Inline.no_yieldpoint);
  Machine.recompile st main_idx ~no_yieldpoint:r.no_yieldpoint r.Inline.meth;
  let cm = Machine.cmeth st main_idx in
  (* main now has two loops, but only its own header keeps a yieldpoint *)
  let headers = Loops.headers cm.Machine.loops in
  check ci "two loops after inlining" 2 (List.length headers);
  let with_yp = List.filter (fun h -> cm.Machine.yieldpoint.(h)) headers in
  check ci "one sampleable header" 1 (List.length with_yp);
  (* the plan cuts the unsampleable header's back edge silently *)
  let plan =
    Option.get
      (Profile_hooks.plan_for ~mode:Dag.Loop_header
         ~number:(fun _ dag -> Numbering.ball_larus dag)
         st main_idx)
  in
  let silent_cuts =
    List.length
      (List.filter
         (function Dag.Cut_edge _ -> true | Dag.Split_header _ -> false)
         (Dag.truncations
            (Numbering.dag plan.Instrument.numbering)))
  in
  check ci "one silent cut" 1 silent_cuts;
  check ci "semantics preserved" expected (Interp.run Interp.no_hooks st)

let test_two_layers_coexist () =
  (* PEP and a perfect profiler in the same run: private registers keep
     them independent, and their dense-sampling profiles agree *)
  let program = Workload.program ~size:3 (Suite.find "jess") in
  let st = Machine.create ~tick_offset:1 ~seed:5 program in
  let perfect = Profiler.perfect_path st in
  let pep = Pep.create ~sampling:(Sampling.pep ~samples:max_int ~stride:1) st in
  let hooks =
    Interp.compose (Tick.hooks ())
      (Interp.compose perfect.Profiler.hooks pep.Pep.hooks)
  in
  ignore (Interp.run hooks st);
  (* every PEP-sampled path must exist in the perfect table *)
  Array.iteri
    (fun m prof ->
      Path_profile.iter
        (fun (e : Path_profile.entry) ->
          match Path_profile.find perfect.Profiler.table.(m) e.path_id with
          | Some pe ->
              check cb "count bounded" true (e.count <= pe.Path_profile.count)
          | None -> Alcotest.fail "phantom path under double instrumentation")
        prof)
    pep.Pep.paths

let test_dcg () =
  let d = Dcg.create () in
  Dcg.record d ~caller:0 ~callee:1;
  Dcg.record d ~caller:0 ~callee:1;
  Dcg.record d ~caller:2 ~callee:1;
  Dcg.record d ~caller:(-1) ~callee:0;
  check ci "weight" 2 (Dcg.weight d ~caller:0 ~callee:1);
  check ci "callee weight" 3 (Dcg.callee_weight d ~callee:1);
  check ci "total" 4 (Dcg.total d);
  (match Dcg.edges d with
  | (0, 1, 2) :: _ -> ()
  | _ -> Alcotest.fail "heaviest edge first");
  let d' =
    match Dcg.of_lines (Dcg.to_lines d) with
    | Ok d' -> d'
    | Error e -> Alcotest.failf "roundtrip: %a" Dcg.pp_parse_error e
  in
  check ci "roundtrip total" (Dcg.total d) (Dcg.total d');
  check ci "roundtrip weight" 2 (Dcg.weight d' ~caller:0 ~callee:1);
  match Dcg.of_lines ~file:"t.dcg" [ "0 1 2"; "0 x 1" ] with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e ->
      check Alcotest.string "error rendering" "t.dcg:2: expected three \
        integers with a positive weight (in \"0 x 1\")"
        (Fmt.str "%a" Dcg.pp_parse_error e)

let test_driver_samples_dcg () =
  let program = small_program () in
  let st = Machine.create ~tick_offset:100 ~seed:3 program in
  let d = Driver.create Driver.default_options st in
  ignore (Driver.run d);
  check cb "dcg sampled" true (Dcg.total (Driver.dcg d) > 0)

let test_recompile_swaps_body () =
  let program =
    Compile.program ~name:"t" ~main:"main"
      [
        mdef "f" ~params:[ "x" ] [ ret (i 1) ];
        mdef "main" ~params:[] [ ret (call "f" [ i 0 ]) ];
      ]
  in
  let st = Machine.create ~seed:1 program in
  check ci "original" 1 (Interp.run Interp.no_hooks st);
  let replacement =
    Compile.method_ (mdef "f" ~params:[ "x" ] [ ret (i 42) ])
  in
  Machine.recompile st (Program.index program "f") replacement;
  check ci "replaced" 42 (Interp.run Interp.no_hooks st)

let test_inline_driver_end_to_end () =
  (* the same workload, replayed with and without inlining, must agree on
     the checksum and the inlined run must not be slower *)
  let env = Exp_harness.make_env ~seed:9 ~size:40 (Suite.find "jack") in
  let plain = Exp_harness.replay env Exp_harness.default in
  let inlined =
    Exp_harness.replay env { Exp_harness.default with Exp_harness.inline = true }
  in
  check ci "checksums agree" plain.Exp_harness.meas.checksum
    inlined.Exp_harness.meas.checksum;
  check cb "inlining does not slow down" true
    (inlined.Exp_harness.meas.iter2 <= plain.Exp_harness.meas.iter2);
  check cb "sites inlined" true
    (Driver.inlined_sites inlined.Exp_harness.driver > 0)

let suite =
  [
    Alcotest.test_case "preserves semantics" `Quick test_inline_preserves_semantics;
    Alcotest.test_case "shares branch ids" `Quick test_inline_shares_branch_ids;
    Alcotest.test_case "verifies" `Quick test_inline_verifies;
    Alcotest.test_case "skips recursion" `Quick test_inline_skips_recursion;
    test_inline_qcheck;
    Alcotest.test_case "uninterruptible loses yieldpoints" `Quick
      test_uninterruptible_inline_suppresses_yieldpoints;
    Alcotest.test_case "two profiling layers coexist" `Quick test_two_layers_coexist;
    Alcotest.test_case "dcg" `Quick test_dcg;
    Alcotest.test_case "driver samples dcg" `Quick test_driver_samples_dcg;
    Alcotest.test_case "recompile swaps body" `Quick test_recompile_swaps_body;
    Alcotest.test_case "inline driver end-to-end" `Quick test_inline_driver_end_to_end;
  ]
