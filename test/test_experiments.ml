(* The experiment harness at a small scale: every figure runs, values are
   in range, and the core invariant — profiling never changes application
   behaviour — holds across all configurations. *)

let check = Alcotest.check
let cb = Alcotest.bool

let caches =
  lazy
    (List.map
       (fun name ->
         Exp_cache.create
           (Exp_harness.make_env ~seed:21 ~size:40 (Suite.find name)))
       [ "compress"; "javac" ])

let test_all_figures_run () =
  let caches = Lazy.force caches in
  List.iter
    (fun id ->
      let fig = Exp_figures.by_id id caches in
      check Alcotest.string "id matches" id fig.Exp_figures.id;
      check Alcotest.int "row per benchmark" 2 (List.length fig.rows);
      List.iter
        (fun (_, values) ->
          List.iter
            (fun v ->
              if Float.is_nan v || Float.is_integer (v /. 0.) then
                Alcotest.failf "%s: non-finite value" id)
            values)
        fig.rows)
    Exp_figures.ids

let test_accuracy_in_range () =
  let caches = Lazy.force caches in
  List.iter
    (fun id ->
      let fig = Exp_figures.by_id id caches in
      List.iter
        (fun (bench, values) ->
          List.iter
            (fun v ->
              if v < -0.001 || v > 100.001 then
                Alcotest.failf "%s/%s: accuracy %f out of range" id bench v)
            values)
        fig.Exp_figures.rows)
    [ "fig8"; "fig9"; "tab-absolute"; "tab-onetime" ]

let test_accuracy_monotone_in_samples () =
  (* more samples may not hurt much: (1024,17) at least as accurate as
     (1,1) minus small noise *)
  let caches = Lazy.force caches in
  let fig = Exp_figures.by_id "fig8" caches in
  List.iter
    (fun (bench, values) ->
      match values with
      | [ v11; _; _; v1024 ] ->
          if v1024 +. 5.0 < v11 then
            Alcotest.failf "%s: accuracy fell with more samples (%f -> %f)"
              bench v11 v1024
      | _ -> Alcotest.fail "unexpected row shape")
    fig.Exp_figures.rows

let test_checksums_consistent () =
  let caches = Lazy.force caches in
  List.iter
    (fun c ->
      let runs =
        [
          Exp_cache.base c;
          Exp_cache.instr_only c;
          Exp_cache.pep c ~samples:64 ~stride:17;
          Exp_cache.perfect_path c;
          Exp_cache.run c
            {
              (Exp_cache.config c) with
              Exp_harness.profiling = Exp_harness.Perfect_edge;
            };
          Exp_cache.run c
            {
              (Exp_cache.config c) with
              Exp_harness.profiling = Exp_harness.Classic_blpp;
            };
        ]
      in
      Exp_harness.check_consistent runs)
    caches

let test_overheads_ordered () =
  (* pure instrumentation path profiling must cost more than PEP *)
  let caches = Lazy.force caches in
  List.iter
    (fun c ->
      let base = (Exp_cache.base c).Exp_harness.meas.iter2 in
      let pep = (Exp_cache.pep c ~samples:64 ~stride:17).Exp_harness.meas.iter2 in
      let perfect = (Exp_cache.perfect_path c).Exp_harness.meas.iter2 in
      check cb "base <= pep" true (base <= pep);
      check cb "pep < perfect" true (pep < perfect))
    caches

let test_ids_complete () =
  List.iter
    (fun id ->
      match Exp_figures.by_id id with
      | (_ : Exp_cache.t list -> Exp_figures.figure) -> ()
      | exception Not_found -> Alcotest.failf "missing experiment %s" id)
    [
      "fig6"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11"; "tab-absolute";
      "tab-perfect"; "tab-blpp"; "tab-smart"; "tab-ag"; "tab-header";
      "tab-onetime"; "tab-edgetruth"; "tab-inline";
    ]

let suite =
  [
    Alcotest.test_case "all figures run" `Slow test_all_figures_run;
    Alcotest.test_case "accuracy in range" `Slow test_accuracy_in_range;
    Alcotest.test_case "accuracy monotone-ish" `Slow test_accuracy_monotone_in_samples;
    Alcotest.test_case "checksums consistent" `Slow test_checksums_consistent;
    Alcotest.test_case "overheads ordered" `Slow test_overheads_ordered;
    Alcotest.test_case "experiment ids complete" `Quick test_ids_complete;
  ]
