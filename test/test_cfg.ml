(* Tests for the CFG substrate: graph construction and validation,
   traversal orders, dominators, loops, and DAG truncation. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* A diamond:  0 -> 1 -> {2,3} -> 4(exit), where 1 branches. *)
let diamond () =
  Cfg.create ~name:"diamond" ~entry:0 ~exit_:4
    [|
      Cfg.Jump 1;
      Cfg.Branch { branch = 0; taken = 2; not_taken = 3 };
      Cfg.Jump 4;
      Cfg.Jump 4;
      Cfg.Return;
    |]

(* A while loop: 0 -> 1(header) -> {2(body),3(exit-side)}; 2 -> 1. *)
let simple_loop () =
  Cfg.create ~name:"loop" ~entry:0 ~exit_:3
    [|
      Cfg.Jump 1;
      Cfg.Branch { branch = 0; taken = 2; not_taken = 3 };
      Cfg.Jump 1;
      Cfg.Return;
    |]

(* Nested loops: 0 -> 1(outer hdr) -> {2,5}; 2 -> 3(inner hdr) -> {4,1'};
   inner body 4 -> 3; inner exit edge 3->1 is the outer back edge?  Use:
   3 branches to 4 (inner body) or 1 (back to outer header). *)
let nested_loops () =
  Cfg.create ~name:"nested" ~entry:0 ~exit_:5
    [|
      Cfg.Jump 1;
      Cfg.Branch { branch = 0; taken = 2; not_taken = 5 };
      Cfg.Jump 3;
      Cfg.Branch { branch = 1; taken = 4; not_taken = 1 };
      Cfg.Jump 3;
      Cfg.Return;
    |]

let test_create_valid () =
  let g = diamond () in
  check ci "blocks" 5 (Cfg.n_blocks g);
  check ci "edges" 5 (Cfg.n_edges g);
  check ci "entry" 0 (Cfg.entry g);
  check ci "exit" 4 (Cfg.exit_ g)

let expect_malformed name f =
  match f () with
  | (_ : Cfg.t) -> Alcotest.failf "%s: expected Malformed" name
  | exception Cfg.Malformed _ -> ()

let test_create_invalid () =
  expect_malformed "unreachable block" (fun () ->
      Cfg.create ~name:"x" ~entry:0 ~exit_:1
        [| Cfg.Jump 1; Cfg.Return; Cfg.Jump 1 |]);
  expect_malformed "return not in exit" (fun () ->
      Cfg.create ~name:"x" ~entry:0 ~exit_:1 [| Cfg.Return; Cfg.Return |]);
  expect_malformed "exit does not return" (fun () ->
      Cfg.create ~name:"x" ~entry:0 ~exit_:1 [| Cfg.Jump 1; Cfg.Jump 0 |]);
  expect_malformed "branch arms equal" (fun () ->
      Cfg.create ~name:"x" ~entry:0 ~exit_:1
        [| Cfg.Branch { branch = 0; taken = 1; not_taken = 1 }; Cfg.Return |]);
  expect_malformed "cannot reach exit" (fun () ->
      Cfg.create ~name:"x" ~entry:0 ~exit_:2
        [|
          Cfg.Branch { branch = 0; taken = 1; not_taken = 2 };
          Cfg.Jump 1;
          Cfg.Return;
        |]);
  expect_malformed "target out of range" (fun () ->
      Cfg.create ~name:"x" ~entry:0 ~exit_:1 [| Cfg.Jump 7; Cfg.Return |])

let test_succ_pred () =
  let g = diamond () in
  let succs = List.map (fun (e : Cfg.edge) -> e.dst) (Cfg.successors g 1) in
  check Alcotest.(list int) "succ order taken first" [ 2; 3 ] succs;
  let preds = List.map (fun (e : Cfg.edge) -> e.src) (Cfg.predecessors g 4) in
  check Alcotest.(list int) "preds sorted" [ 2; 3 ] preds;
  check Alcotest.(list int) "branch ids" [ 0 ] (Cfg.branch_ids g)

let test_orders () =
  let g = diamond () in
  let rpo = Order.reverse_postorder g in
  check ci "rpo length" 5 (Array.length rpo);
  check ci "rpo starts at entry" 0 rpo.(0);
  (* every edge (u,v) with v not an ancestor: rpo index increases on
     acyclic graphs *)
  let idx = Array.make 5 0 in
  Array.iteri (fun i b -> idx.(b) <- i) rpo;
  Cfg.iter_edges (fun e -> check cb "topo edge" true (idx.(e.src) < idx.(e.dst))) g;
  check ci "no retreating in dag" 0 (List.length (Order.retreating_edges g))

let test_retreating () =
  let g = simple_loop () in
  match Order.retreating_edges g with
  | [ e ] ->
      check ci "retreat src" 2 e.src;
      check ci "retreat dst" 1 e.dst
  | l -> Alcotest.failf "expected 1 retreating edge, got %d" (List.length l)

let test_dominators () =
  let g = nested_loops () in
  let dom = Dominator.compute g in
  check ci "idom entry" 0 (Dominator.idom dom 0);
  check ci "idom 1" 0 (Dominator.idom dom 1);
  check ci "idom 3" 2 (Dominator.idom dom 3);
  check cb "1 dom 4" true (Dominator.dominates dom 1 4);
  check cb "4 not dom 1" false (Dominator.dominates dom 4 1);
  check cb "reflexive" true (Dominator.dominates dom 3 3);
  check Alcotest.(list int) "chain" [ 0; 1; 2; 3 ] (Dominator.dominator_chain dom 3)

let test_loops () =
  let g = nested_loops () in
  let loops = Loops.compute g in
  check cb "reducible" true (Loops.is_reducible loops);
  check Alcotest.(list int) "headers" [ 1; 3 ] (Loops.headers loops);
  check ci "depth outside" 0 (Loops.nesting_depth loops 0);
  check ci "depth outer" 1 (Loops.nesting_depth loops 1);
  check ci "depth inner" 2 (Loops.nesting_depth loops 4);
  let back = Loops.back_edges loops in
  check ci "two back edges" 2 (List.length back)

let test_loop_multi_backedge_depth () =
  (* one loop, two continue edges: depth must still be 1 *)
  let g =
    Cfg.create ~name:"two-back" ~entry:0 ~exit_:4
      [|
        Cfg.Jump 1;
        Cfg.Branch { branch = 0; taken = 2; not_taken = 4 };
        Cfg.Branch { branch = 1; taken = 1; not_taken = 3 };
        Cfg.Jump 1;
        Cfg.Return;
      |]
  in
  let loops = Loops.compute g in
  check ci "depth" 1 (Loops.nesting_depth loops 2);
  check Alcotest.(list int) "one header" [ 1 ] (Loops.headers loops)

let dag_is_acyclic dag =
  (* topo succeeds iff acyclic; also check edge direction w.r.t. topo *)
  let topo = Dag.topo dag in
  let pos = Array.make (Dag.n_nodes dag) (-1) in
  Array.iteri (fun i n -> pos.(n) <- i) topo;
  Dag.iter_edges
    (fun e -> Alcotest.(check bool) "dag edge forward" true (pos.(e.esrc) < pos.(e.edst)))
    dag

let test_dag_back_edge_mode () =
  let g = simple_loop () in
  let dag = Dag.build Dag.Back_edge g in
  dag_is_acyclic dag;
  check ci "same node count" (Cfg.n_blocks g) (Dag.n_nodes dag);
  (match Dag.truncations dag with
  | [ Dag.Cut_edge e ] ->
      check ci "cut src" 2 e.src;
      check ci "cut dst" 1 e.dst
  | _ -> Alcotest.fail "expected one cut edge");
  (* dummies exist *)
  let fe = Dag.from_entry_edge dag 1 in
  check ci "from-entry src" (Dag.entry_node dag) fe.esrc;
  let te = Dag.to_exit_edge dag 2 in
  check ci "to-exit dst" (Dag.exit_node dag) te.edst

let test_dag_header_mode () =
  let g = simple_loop () in
  let dag = Dag.build Dag.Loop_header g in
  dag_is_acyclic dag;
  check ci "one extra node (split header)" (Cfg.n_blocks g + 1) (Dag.n_nodes dag);
  (match Dag.truncations dag with
  | [ Dag.Split_header h ] -> check ci "header" 1 h
  | _ -> Alcotest.fail "expected one split header");
  check cb "in/out nodes differ" true (Dag.in_node dag 1 <> Dag.out_node dag 1);
  (* the back edge is a real DAG edge into the header's in-node *)
  let into_header = Dag.in_edges dag (Dag.in_node dag 1) in
  let has_back =
    List.exists
      (fun (e : Dag.edge) ->
        match e.origin with
        | Dag.Real ce -> ce.src = 2 && ce.dst = 1
        | _ -> false)
      into_header
  in
  check cb "back edge real" true has_back

let test_dag_nested_header_mode () =
  let g = nested_loops () in
  let dag = Dag.build Dag.Loop_header g in
  dag_is_acyclic dag;
  check ci "two split headers" (Cfg.n_blocks g + 2) (Dag.n_nodes dag);
  check ci "truncations" 2 (List.length (Dag.truncations dag))

let test_dag_dummy_pairs () =
  let g = nested_loops () in
  let dag = Dag.build Dag.Loop_header g in
  List.iter
    (fun trunc ->
      let to_exit, from_entry = Dag.dummy_edges dag trunc in
      check ci "to-exit targets exit" (Dag.exit_node dag) to_exit.Dag.edst;
      check ci "from-entry leaves entry" (Dag.entry_node dag) from_entry.Dag.esrc)
    (Dag.truncations dag)

let suite =
  [
    Alcotest.test_case "create valid" `Quick test_create_valid;
    Alcotest.test_case "create invalid" `Quick test_create_invalid;
    Alcotest.test_case "successors/predecessors" `Quick test_succ_pred;
    Alcotest.test_case "orders" `Quick test_orders;
    Alcotest.test_case "retreating edges" `Quick test_retreating;
    Alcotest.test_case "dominators" `Quick test_dominators;
    Alcotest.test_case "loops" `Quick test_loops;
    Alcotest.test_case "multi-back-edge depth" `Quick test_loop_multi_backedge_depth;
    Alcotest.test_case "dag back-edge mode" `Quick test_dag_back_edge_mode;
    Alcotest.test_case "dag header mode" `Quick test_dag_header_mode;
    Alcotest.test_case "dag nested headers" `Quick test_dag_nested_header_mode;
    Alcotest.test_case "dag dummy pairs" `Quick test_dag_dummy_pairs;
  ]
