let () =
  Alcotest.run "pep"
    [
      ("cfg", Test_cfg.suite);
      ("bytecode", Test_bytecode.suite);
      ("interp", Test_interp.suite);
      ("profile", Test_profile.suite);
      ("runtime", Test_runtime.suite);
      ("numbering", Test_numbering.suite);
      ("dag-invariants", Test_dag_invariants.suite);
      ("blpp", Test_blpp.suite);
      ("sampling", Test_sampling.suite);
      ("pep", Test_pep.suite);
      ("vm", Test_vm.suite);
      ("engine", Test_engine.suite);
      ("inline", Test_inline.suite);
      ("estimators", Test_estimators.suite);
      ("unroll", Test_unroll.suite);
      ("hardening", Test_hardening.suite);
      ("workloads", Test_workloads.suite);
      ("experiments", Test_experiments.suite);
      ("check", Test_check.suite);
      ("telemetry", Test_telemetry.suite);
      ("pool", Test_pool.suite);
      ("fleet", Test_fleet.suite);
      ("wgen", Test_wgen.suite);
      ("faults", Test_faults.suite);
      ("dataflow", Test_dataflow.suite);
      ("transval", Test_transval.suite);
    ]
