(* The workload generator: spec codec, determinism, verifier
   cleanliness, differential sweeps, fleet triage and the
   accuracy-over-time regression. *)

let spec = Alcotest.testable (Fmt.of_to_string Wgen.print) ( = )

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected gen rejection: %s" (Wgen.error_to_string e)

(* QCheck generator over the valid axis space *)
let gen_spec =
  QCheck.Gen.(
    map
      (fun ((seed, methods, bias, mega), (depth, loops, diamonds, phases), (tenants, burst, size)) ->
        {
          Wgen.seed;
          methods;
          bias;
          mega;
          depth;
          loops;
          diamonds;
          phases;
          tenants;
          burst;
          size;
        })
      (triple
         (quad (int_bound 100_000) (int_range 1 8) (int_range 50 99)
            (int_range 0 8))
         (quad (int_range 0 16) (int_range 0 4) (int_range 0 30)
            (int_range 1 4))
         (triple (int_range 1 8) (int_range 1 32) (int_range 1 200))))

let arb_spec = QCheck.make ~print:Wgen.print gen_spec

let qcheck ?(count = 100) name law =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name arb_spec law)

(* --- spec codec ---------------------------------------------------- *)

let prop_roundtrip s =
  match Wgen.parse (Wgen.print s) with
  | Ok s' -> s = s'
  | Error e -> QCheck.Test.fail_reportf "rejected: %s" (Wgen.error_to_string e)

let test_parse_defaults () =
  let s = ok_or_fail (Wgen.parse "gen:seed=9,phases=3") in
  Alcotest.(check int) "seed" 9 s.Wgen.seed;
  Alcotest.(check int) "phases" 3 s.Wgen.phases;
  Alcotest.(check int) "methods defaulted" Wgen.default.Wgen.methods s.Wgen.methods;
  Alcotest.(check spec) "bare prefix = default" Wgen.default
    (ok_or_fail (Wgen.parse "gen:"))

let test_parse_rejects () =
  let reject str axis =
    match Wgen.parse str with
    | Ok _ -> Alcotest.failf "%s should be rejected" str
    | Error e -> Alcotest.(check string) (str ^ " axis") axis e.Wgen.axis
  in
  reject "compress" "spec";
  reject "gen:bias=200" "bias";
  reject "gen:bias=85,bias=85" "bias";
  reject "gen:warp=3" "warp";
  reject "gen:seed=banana" "seed";
  reject "gen:methods" "spec";
  reject "gen:diamonds=31" "diamonds";
  reject "gen:phases=0" "phases"

let test_validate_matches_workload () =
  let bad = { Wgen.default with Wgen.bias = 12 } in
  (match Wgen.validate bad with
  | Error e -> Alcotest.(check string) "axis" "bias" e.Wgen.axis
  | Ok () -> Alcotest.fail "bias=12 should be rejected");
  match Wgen.workload bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "workload of an invalid spec should raise"

(* --- determinism --------------------------------------------------- *)

let prop_deterministic s =
  let build () = Marshal.to_string ((Wgen.workload s).Workload.build 17) [] in
  let sched () = Wgen.schedule s ~windows:6 in
  build () = build () && sched () = sched ()

let prop_schedule s =
  let windows = 6 in
  let sched = Wgen.schedule s ~windows in
  List.length sched = windows
  && List.for_all (fun p -> p >= 0 && p < s.Wgen.phases) sched
  && List.hd sched = 0
  && (* monotone: phases only advance *)
  fst
    (List.fold_left
       (fun (ok, prev) p -> (ok && p >= prev, p))
       (true, 0) sched)
  && List.for_all
       (fun w ->
         w > 0 && w < windows
         && List.nth sched w <> List.nth sched (w - 1))
       (Wgen.shifts s ~windows)

(* --- every generated program satisfies the static analyzer ---------- *)

let prop_check_clean s =
  (* small size: the static passes don't execute the program *)
  let w = Wgen.workload { s with Wgen.size = 5 } in
  let program = Workload.program w in
  let diags = Pep_check.check_program_static program in
  if Pep_check.has_errors diags then
    QCheck.Test.fail_reportf "static errors on %s:@ %a" (Wgen.print s)
      (Fmt.list Pep_check.pp_diagnostic)
      (List.filter
         (fun d -> d.Pep_check.severity = Pep_check.Error)
         diags)
  else true

let test_corpus_valid () =
  let specs = Wgen.corpus ~n:30 ~seed:5 () in
  Alcotest.(check int) "corpus size" 30 (List.length specs);
  List.iter (fun s -> ok_or_fail (Wgen.validate s)) specs;
  (* corpus is deterministic *)
  Alcotest.(check (list spec)) "deterministic" specs (Wgen.corpus ~n:30 ~seed:5 ())

(* --- resolver ------------------------------------------------------ *)

let test_resolve () =
  let name w = w.Workload.name in
  Alcotest.(check string) "suite" "compress"
    (name (Result.get_ok (Suite.resolve "compress")));
  Alcotest.(check string) "phased" "drift"
    (name (Result.get_ok (Suite.resolve "drift")));
  let s = Wgen.print Wgen.default in
  Alcotest.(check string) "gen" s (name (Result.get_ok (Suite.resolve s)));
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  (match Suite.resolve "gen:bias=200" with
  | Error e ->
      Alcotest.(check bool) "mentions bias" true (contains e "bias")
  | Ok _ -> Alcotest.fail "invalid spec resolved");
  match Suite.resolve "nonesuch" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown name resolved"

(* --- differential: pooled and engine-v2 sweeps ---------------------- *)

let corpus_specs = lazy (Wgen.corpus ~n:20 ~seed:3 ())

let corpus_envs =
  lazy
    (List.map
       (fun s -> Exp_harness.make_env ~size:10 ~seed:13 (Wgen.workload s))
       (Lazy.force corpus_specs))

(* every observable of a PEP replay, one line per spec *)
let pool_repr ~jobs envs =
  let config =
    { Exp_harness.default with Exp_harness.profiling = Exp_harness.pep_default }
  in
  Exp_pool.map ~jobs
    (fun _sink (env : Exp_harness.env) ->
      let r = Exp_harness.replay env config in
      let m, lines = Test_engine.observables r in
      Fmt.str "%s|%a|%s" env.Exp_harness.workload.Workload.name
        Test_engine.meas_pp m
        (String.concat ";" lines))
    envs

let test_corpus_pool_differential () =
  let envs = Lazy.force corpus_envs in
  Alcotest.(check (list string))
    "20 specs bit-identical serial vs jobs=4" (pool_repr ~jobs:1 envs)
    (pool_repr ~jobs:4 envs)

let test_corpus_engine_differential () =
  List.iter
    (fun s ->
      Test_engine.diff_of ~seed:13 (Wgen.workload { s with Wgen.size = 8 }) ())
    (Lazy.force corpus_specs)

(* --- fleet triage on a generated drifting cohort -------------------- *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    let f = Filename.temp_file "pepsim-wgen" "" in
    Sys.remove f;
    incr n;
    f ^ ".d" ^ string_of_int !n

let test_fleet_triage_gen () =
  let w =
    match Wgen.resolve "gen:seed=7,phases=3,diamonds=10" with
    | Ok w -> w
    | Error e -> Alcotest.failf "resolve: %s" (Wgen.error_to_string e)
  in
  let spec =
    Fleet_collector.default_spec ~size:30 ~seed:11 ~instances:2 ~windows:6
      ~cohorts:
        [
          ("steady", Fleet.Drift.No_drift);
          ("shift", Fleet.Drift.Phase_shift { at_window = 3; phase = 1 });
        ]
      w
  in
  let dir = fresh_dir () in
  (match Fleet_collector.run ~jobs:2 ~dir spec with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "fleet run: %a" Dcg.pp_parse_error e);
  let segs, diags = Fleet_store.load_all ~dir in
  List.iter (fun e -> Alcotest.failf "load_all: %a" Dcg.pp_parse_error e) diags;
  let diff cohort =
    Fleet_query.diff
      ~baseline:
        (Fleet_query.view
           (Fleet_query.select segs
              { Fleet_query.cohort = Some cohort; lo = None; hi = Some 2 }))
      ~current:
        (Fleet_query.view
           (Fleet_query.select segs
              { Fleet_query.cohort = Some cohort; lo = Some 3; hi = None }))
      ()
  in
  let rendered = List.map Fleet_query.render_finding (diff "shift") in
  let has prefix =
    Alcotest.(check bool)
      (Fmt.str "finding %s under drift" prefix)
      true
      (List.exists
         (fun r ->
           String.length r >= String.length prefix
           && String.sub r 0 (String.length prefix) = prefix)
         rendered)
  in
  (* the generated phase shift must trip every rule family *)
  has "new-hot-path";
  has "edge-shift";
  has "caller-change leaf";
  Alcotest.(check int) "no-drift twin clean" 0 (List.length (diff "steady"))

(* --- accuracy over time: PEP re-converges after each shift ---------- *)

let drift_series =
  let run str =
    lazy (Exp_drift.run_spec ~size:25 ~seed:42 (ok_or_fail (Wgen.parse str)))
  in
  List.map
    (fun str -> (str, run str))
    [
      "gen:seed=7,phases=3";
      "gen:seed=3,phases=2";
      "gen:seed=5,phases=2,diamonds=16,mega=6";
    ]

let test_accuracy_over_time () =
  List.iter
    (fun (str, series) ->
      let series = Lazy.force series in
      Alcotest.(check bool)
        (str ^ " has shifts") true
        (series.Exp_drift.shifts <> []);
      let pts = Array.of_list series.Exp_drift.points in
      List.iter
        (fun w ->
          let p = pts.(w) in
          Alcotest.(check bool)
            (Fmt.str "%s: stale accuracy dips at shift w%d" str w)
            true
            (p.Exp_drift.stale_path_acc < p.Exp_drift.path_acc))
        series.Exp_drift.shifts;
      Alcotest.(check bool) (str ^ " re-converged") true series.Exp_drift.recovered)
    drift_series

let test_accuracy_export () =
  let str, series = List.hd drift_series in
  let series = Lazy.force series in
  let fig = Exp_drift.figure series in
  Alcotest.(check int) "rows = windows" series.Exp_drift.windows
    (List.length fig.Exp_figures.rows);
  List.iter
    (fun (_, vs) ->
      Alcotest.(check int) "row width = header width"
        (List.length fig.Exp_figures.header)
        (List.length vs))
    fig.Exp_figures.rows;
  let json = Exp_drift.to_json series in
  let contains needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    Alcotest.(check bool) (Fmt.str "json has %s" needle) true (go 0)
  in
  contains "\"recovered\":true";
  contains "\"points\":[{\"window\":0";
  contains (Fmt.str "\"windows\":%d" series.Exp_drift.windows);
  (* the whole series is a pure function of (spec, seed, size) *)
  let again = Exp_drift.run_spec ~size:25 ~seed:42 (ok_or_fail (Wgen.parse str)) in
  Alcotest.(check string) "series deterministic" json (Exp_drift.to_json again)

let suite =
  [
    Alcotest.test_case "parse defaults" `Quick test_parse_defaults;
    Alcotest.test_case "parse rejects" `Quick test_parse_rejects;
    Alcotest.test_case "validate = workload gate" `Quick
      test_validate_matches_workload;
    Alcotest.test_case "corpus valid + deterministic" `Quick test_corpus_valid;
    Alcotest.test_case "resolve namespace" `Quick test_resolve;
    qcheck "parse(print s) = s" prop_roundtrip;
    qcheck ~count:30 "same spec => byte-identical program+schedule"
      prop_deterministic;
    qcheck "schedule is monotone, in range, shifts real" prop_schedule;
    qcheck ~count:25 "generated programs pass Pep_check" prop_check_clean;
    Alcotest.test_case "corpus: serial = pooled (20 specs)" `Slow
      test_corpus_pool_differential;
    Alcotest.test_case "corpus: oracle = v2 engine (20 specs)" `Slow
      test_corpus_engine_differential;
    Alcotest.test_case "fleet triage: drift flags, twin clean" `Slow
      test_fleet_triage_gen;
    Alcotest.test_case "accuracy over time: re-converges after shifts" `Slow
      test_accuracy_over_time;
    Alcotest.test_case "accuracy figure/JSON shape + determinism" `Slow
      test_accuracy_export;
  ]
