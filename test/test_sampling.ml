(* Sampling strategy state machines (paper §4.4, Figure 5). *)

let check = Alcotest.check
let ci = Alcotest.int

(* Drive a sampler over [n] opportunities, activating on the given
   opportunity indices; returns the take/skip pattern as a string like
   ".TT.S" ('T' take, 'S' skip-stride, '.' inactive). *)
let pattern config ~activations n =
  let s = Sampling.create config in
  let buf = Buffer.create n in
  for k = 0 to n - 1 do
    if List.mem k activations then Sampling.activate s;
    if Sampling.active s then
      match Sampling.step s with
      | `Take -> Buffer.add_char buf 'T'
      | `Skip -> Buffer.add_char buf 'S'
    else Buffer.add_char buf '.'
  done;
  Buffer.contents buf

let test_timer_based () =
  check Alcotest.string "one sample per tick" "T....T...."
    (pattern Sampling.timer_based ~activations:[ 0; 5 ] 10)

let test_never () =
  check Alcotest.string "never samples" "...."
    (pattern Sampling.never ~activations:[ 0; 2 ] 4)

let test_simplified_ag () =
  (* PEP(4,3): tick 1 strides 0 then takes 4; tick 2 strides 1 then takes
     4; tick 3 strides 2. *)
  let c = Sampling.pep ~samples:4 ~stride:3 in
  check Alcotest.string "rotating initial stride" "TTTT..STTTT.SSTTTT"
    (pattern c ~activations:[ 0; 6; 12 ] 18)

let test_full_ag () =
  (* AG(3,3): stride between every sample: skip 0 then T S S T S S T *)
  let c = Sampling.arnold_grove ~samples:3 ~stride:3 in
  check Alcotest.string "stride between samples" "TSSTSST..."
    (pattern c ~activations:[ 0 ] 10);
  (* second burst starts with rotated skip of 1 *)
  let c = Sampling.arnold_grove ~samples:2 ~stride:2 in
  check Alcotest.string "rotation persists" "TST..STST."
    (pattern c ~activations:[ 0; 5 ] 10)

let test_pending_mid_burst () =
  (* a tick during a burst queues exactly one follow-up burst *)
  let c = Sampling.pep ~samples:3 ~stride:1 in
  check Alcotest.string "burst chains once" "TTTTTT...."
    (pattern c ~activations:[ 0; 1 ] 10)

let test_stats () =
  let s = Sampling.create (Sampling.pep ~samples:2 ~stride:2) in
  Sampling.activate s;
  ignore (Sampling.step s);
  ignore (Sampling.step s);
  Sampling.activate s;
  ignore (Sampling.step s);
  ignore (Sampling.step s);
  ignore (Sampling.step s);
  let taken, skipped, bursts = Sampling.stats s in
  check ci "taken" 4 taken;
  check ci "skipped" 1 skipped;
  check ci "bursts" 2 bursts

let test_names () =
  check Alcotest.string "pep name" "PEP(64,17)"
    (Sampling.name (Sampling.pep ~samples:64 ~stride:17));
  check Alcotest.string "ag name" "AG(4,2)"
    (Sampling.name (Sampling.arnold_grove ~samples:4 ~stride:2));
  check Alcotest.string "never name" "instr-only" (Sampling.name Sampling.never);
  check Alcotest.string "timer name" "PEP(1,1)" (Sampling.name Sampling.timer_based)

let suite =
  [
    Alcotest.test_case "timer-based" `Quick test_timer_based;
    Alcotest.test_case "never" `Quick test_never;
    Alcotest.test_case "simplified Arnold-Grove" `Quick test_simplified_ag;
    Alcotest.test_case "full Arnold-Grove" `Quick test_full_ag;
    Alcotest.test_case "pending mid-burst" `Quick test_pending_mid_burst;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "names" `Quick test_names;
  ]
