(* Structural invariants of truncated DAGs and instrumentation plans,
   checked over the workload suite and random programs.  These are the
   properties the truncation correctness argument relies on:
   every node lies on some entry-to-exit path, dummy edges are shared
   (one per distinct endpoint), and plan actions appear exactly where the
   mode dictates. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let check_dag_invariants name dag =
  let n = Dag.n_nodes dag in
  (* reachable from entry *)
  let fwd = Array.make n false in
  let rec down v =
    if not fwd.(v) then begin
      fwd.(v) <- true;
      List.iter (fun (e : Dag.edge) -> down e.edst) (Dag.out_edges dag v)
    end
  in
  down (Dag.entry_node dag);
  (* reaches exit *)
  let bwd = Array.make n false in
  let rec up v =
    if not bwd.(v) then begin
      bwd.(v) <- true;
      List.iter (fun (e : Dag.edge) -> up e.esrc) (Dag.in_edges dag v)
    end
  in
  up (Dag.exit_node dag);
  for v = 0 to n - 1 do
    if not (fwd.(v) && bwd.(v)) then
      Alcotest.failf "%s: node %d off every entry-exit path" name v
  done;
  (* dummy sharing: at most one From_entry per target node, one To_exit
     per source node *)
  let from_entry = Hashtbl.create 8 and to_exit = Hashtbl.create 8 in
  Dag.iter_edges
    (fun (e : Dag.edge) ->
      match e.origin with
      | Dag.From_entry _ ->
          if Hashtbl.mem from_entry e.edst then
            Alcotest.failf "%s: duplicate From_entry to node %d" name e.edst;
          Hashtbl.replace from_entry e.edst ()
      | Dag.To_exit _ ->
          if Hashtbl.mem to_exit e.esrc then
            Alcotest.failf "%s: duplicate To_exit from node %d" name e.esrc;
          Hashtbl.replace to_exit e.esrc ()
      | Dag.Real _ -> ())
    dag;
  (* out-edges' value intervals partition [0, num_paths_from v) under any
     numbering *)
  let numbering = Numbering.ball_larus dag in
  Array.iter
    (fun v ->
      if v <> Dag.exit_node dag then begin
        let intervals =
          List.map
            (fun (e : Dag.edge) ->
              ( Numbering.value numbering e,
                Numbering.value numbering e
                + Numbering.num_paths_from numbering e.edst ))
            (Dag.out_edges dag v)
        in
        let sorted = List.sort compare intervals in
        let total = Numbering.num_paths_from numbering v in
        let rec covers at = function
          | [] -> at = total
          | (lo, hi) :: rest -> lo = at && covers hi rest
        in
        if not (covers 0 sorted) then
          Alcotest.failf "%s: node %d intervals do not partition" name v
      end)
    (Dag.topo dag)

let check_plan_invariants name mode cfg =
  let dag = Dag.build mode cfg in
  let plan = Instrument.of_numbering (Numbering.ball_larus dag) in
  (* path-end points: exit always; split headers only in header mode *)
  (match plan.Instrument.path_end.(Cfg.exit_ cfg) with
  | Some _ -> ()
  | None -> Alcotest.failf "%s: exit is not a path end" name);
  Array.iteri
    (fun b ev ->
      match (ev, mode) with
      | Some _, Dag.Back_edge ->
          if b <> Cfg.exit_ cfg then
            Alcotest.failf "%s: block event off exit in back-edge mode" name
      | _ -> ())
    plan.Instrument.path_end;
  (* counts on edges only in back-edge mode *)
  Array.iteri
    (fun src steps ->
      Array.iteri
        (fun idx step ->
          match step with
          | Some (s : Instrument.edge_step) ->
              if s.count && mode = Dag.Loop_header then
                Alcotest.failf "%s: count on edge %d in header mode" name src;
              (* ops_on_edge agrees with the step contents *)
              let expected =
                (if s.add <> 0 then 1 else 0)
                + (if s.count then 1 else 0)
                + if s.reset >= 0 then 1 else 0
              in
              check ci "ops_on_edge" expected
                (Instrument.ops_on_edge plan ~src ~idx)
          | None -> ())
        steps)
    plan.Instrument.edge_steps

let each_workload_method f =
  List.iter
    (fun (w : Workload.t) ->
      let p = Workload.program ~size:2 w in
      Program.iter_methods
        (fun _ m ->
          let cfg = To_cfg.cfg m in
          f (w.Workload.name ^ "/" ^ m.Method.name) cfg)
        p)
    Suite.all

let test_dag_invariants_workloads () =
  each_workload_method (fun name cfg ->
      check_dag_invariants name (Dag.build Dag.Back_edge cfg);
      check_dag_invariants name (Dag.build Dag.Loop_header cfg))

let test_plan_invariants_workloads () =
  each_workload_method (fun name cfg ->
      check_plan_invariants name Dag.Back_edge cfg;
      check_plan_invariants name Dag.Loop_header cfg)

let test_dag_invariants_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:40 ~name:"dag invariants on random methods"
       QCheck2.Gen.(int_range 1 1_000_000)
       (fun seed ->
         let p = Compile.pdef (Synthetic.program ~seed ~n_methods:2 ()) in
         Program.iter_methods
           (fun _ m ->
             let cfg = To_cfg.cfg m in
             check_dag_invariants "rand" (Dag.build Dag.Back_edge cfg);
             check_dag_invariants "rand" (Dag.build Dag.Loop_header cfg))
           p;
         true))

let test_smart_static_ops_ordering () =
  (* zero-on-hottest must never need more dynamic adds on the hot arms
     than zero-on-coldest does; verify via executed r-op counts *)
  let program = Workload.program ~size:3 (Suite.find "jess") in
  let executed zero =
    let st = Machine.create ~seed:21 program in
    let pe = Profiler.perfect_edge st in
    ignore (Interp.run pe.Profiler.ehooks st);
    let table = pe.Profiler.etable in
    let st2 = Machine.create ~seed:21 program in
    let before = st2.Machine.cycles in
    ignore before;
    let pep =
      Pep.create
        ~number:(fun m dag -> Pep.smart_number ~zero table m dag)
        ~sampling:Sampling.never st2
    in
    ignore (Interp.run (Interp.compose (Tick.hooks ()) pep.Pep.hooks) st2);
    st2.Machine.cycles
  in
  check cb "hottest-zero cheaper than coldest-zero" true
    (executed `Hottest < executed `Coldest)

let suite =
  [
    Alcotest.test_case "dag invariants (workloads)" `Slow test_dag_invariants_workloads;
    Alcotest.test_case "plan invariants (workloads)" `Slow test_plan_invariants_workloads;
    test_dag_invariants_qcheck;
    Alcotest.test_case "smart numbering ordering" `Quick test_smart_static_ops_ordering;
  ]
