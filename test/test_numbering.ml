(* Ball-Larus numbering, smart numbering, and path reconstruction.

   The central properties: over the truncated DAG of any method, the sum
   of edge values along each entry-to-exit path is a bijection onto
   [0, n_paths), for both numbering variants; and greedy reconstruction
   inverts it. *)

let check = Alcotest.check
let ci = Alcotest.int

(* Enumerate every entry-to-exit DAG path (edge lists).  Callers bound
   n_paths first. *)
let all_dag_paths dag =
  let exit_node = Dag.exit_node dag in
  let rec go node acc_rev =
    if node = exit_node then [ List.rev acc_rev ]
    else
      List.concat_map
        (fun (e : Dag.edge) -> go e.edst (e :: acc_rev))
        (Dag.out_edges dag node)
  in
  go (Dag.entry_node dag) []

let check_bijection name numbering =
  let dag = Numbering.dag numbering in
  let n = Numbering.n_paths numbering in
  let paths = all_dag_paths dag in
  check ci (name ^ ": path count") n (List.length paths);
  let seen = Hashtbl.create (2 * n) in
  List.iter
    (fun path ->
      let id = Reconstruct.id_of_dag_path numbering path in
      if id < 0 || id >= n then
        Alcotest.failf "%s: path id %d outside [0,%d)" name id n;
      if Hashtbl.mem seen id then Alcotest.failf "%s: duplicate id %d" name id;
      Hashtbl.replace seen id ();
      (* reconstruction inverts the numbering *)
      let rebuilt = Reconstruct.dag_path numbering id in
      if
        List.map (fun (e : Dag.edge) -> e.idx) rebuilt
        <> List.map (fun (e : Dag.edge) -> e.idx) path
      then Alcotest.failf "%s: reconstruction mismatch for id %d" name id)
    paths

let numberings_of_cfg ~seed cfg =
  let prng = Prng.create ~seed in
  let random_freq (_ : Dag.edge) = Prng.below prng 1000 in
  List.concat_map
    (fun mode ->
      let dag = Dag.build mode cfg in
      [
        ("ball-larus", Numbering.ball_larus dag);
        ("smart-hot", Numbering.smart ~freq:random_freq dag);
        ("smart-cold", Numbering.smart ~zero:`Coldest ~freq:random_freq dag);
      ])
    [ Dag.Back_edge; Dag.Loop_header ]

let test_paper_example () =
  (* An if-then-else followed by an if-then-else: 4 paths, like the
     paper's Figure 1 DAG shape. *)
  let cfg =
    Cfg.create ~name:"fig1" ~entry:0 ~exit_:6
      [|
        Cfg.Jump 1;
        Cfg.Branch { branch = 0; taken = 2; not_taken = 3 };
        Cfg.Jump 4;
        Cfg.Jump 4;
        Cfg.Branch { branch = 1; taken = 5; not_taken = 6 };
        Cfg.Jump 6;
        Cfg.Return;
      |]
  in
  let dag = Dag.build Dag.Back_edge cfg in
  let numbering = Numbering.ball_larus dag in
  check ci "4 acyclic paths" 4 (Numbering.n_paths numbering);
  check_bijection "fig1" numbering

let test_loop_example () =
  (* The paper's Figure 3 shape: a loop whose body has a branch. *)
  let cfg =
    Cfg.create ~name:"fig3" ~entry:0 ~exit_:5
      [|
        Cfg.Jump 1;
        Cfg.Branch { branch = 0; taken = 2; not_taken = 5 };
        Cfg.Branch { branch = 1; taken = 3; not_taken = 4 };
        Cfg.Jump 1;
        Cfg.Jump 1;
        Cfg.Return;
      |]
  in
  (* loop-header mode: entry->header (ends), header->body{2 ways}->header
     (2 paths), header->exit: 4 paths total *)
  let dag = Dag.build Dag.Loop_header cfg in
  let numbering = Numbering.ball_larus dag in
  check ci "4 paths at header split" 4 (Numbering.n_paths numbering);
  check_bijection "fig3-header" numbering;
  (* back-edge mode *)
  let dag_b = Dag.build Dag.Back_edge cfg in
  let numbering_b = Numbering.ball_larus dag_b in
  check_bijection "fig3-back" numbering_b

let test_smart_zero_on_hottest () =
  (* hottest outgoing edge of each branch gets value 0 *)
  let cfg =
    Cfg.create ~name:"hot" ~entry:0 ~exit_:3
      [|
        Cfg.Jump 1;
        Cfg.Branch { branch = 0; taken = 2; not_taken = 3 };
        Cfg.Jump 3;
        Cfg.Return;
      |]
  in
  let dag = Dag.build Dag.Back_edge cfg in
  let freq (e : Dag.edge) =
    match e.origin with
    | Dag.Real { attr = Cfg.Taken _; _ } -> 10
    | Dag.Real { attr = Cfg.Not_taken _; _ } -> 990
    | _ -> 0
  in
  let numbering = Numbering.smart ~freq dag in
  Dag.iter_edges
    (fun e ->
      match e.origin with
      | Dag.Real { attr = Cfg.Not_taken _; src = 1; _ } ->
          check ci "hot arm gets zero" 0 (Numbering.value numbering e)
      | _ -> ())
    dag;
  check_bijection "smart-hot-arm" numbering

let test_too_many_paths () =
  (* 40 consecutive diamonds: 2^40 paths, over the default limit *)
  let n_diamonds = 40 in
  let blocks = ref [] in
  (* block layout per diamond d (base = 3*d): base branches to base+1 /
     base+2, both jump to base+3 *)
  for d = 0 to n_diamonds - 1 do
    let base = 3 * d in
    blocks :=
      Cfg.Jump (base + 3)
      :: Cfg.Jump (base + 3)
      :: Cfg.Branch { branch = d; taken = base + 1; not_taken = base + 2 }
      :: !blocks
  done;
  let terms = Array.of_list (List.rev (Cfg.Return :: !blocks)) in
  let cfg =
    Cfg.create ~name:"wide" ~entry:0 ~exit_:(Array.length terms - 1) terms
  in
  let dag = Dag.build Dag.Back_edge cfg in
  (match Numbering.ball_larus dag with
  | (_ : Numbering.t) -> Alcotest.fail "expected Too_many_paths"
  | exception Numbering.Too_many_paths { n_paths; _ } ->
      check Alcotest.bool "reported count over limit" true (n_paths > 1 lsl 30));
  (* a generous limit admits it *)
  let n = Numbering.ball_larus ~limit:(1 lsl 45) dag in
  check Alcotest.bool "2^40 paths" true (Numbering.n_paths n = 1 lsl 40)

let test_bijection_on_workload_methods () =
  List.iter
    (fun (w : Workload.t) ->
      let p = Workload.program ~size:2 w in
      Program.iter_methods
        (fun _ m ->
          let cfg = To_cfg.cfg m in
          List.iter
            (fun (name, numbering) ->
              if Numbering.n_paths numbering <= 2000 then
                check_bijection (w.Workload.name ^ "/" ^ m.Method.name ^ "/" ^ name) numbering)
            (numberings_of_cfg ~seed:17 cfg))
        p)
    Suite.all

let test_bijection_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"numbering bijection on random methods"
       QCheck2.Gen.(int_range 1 1_000_000)
       (fun seed ->
         let p = Compile.pdef (Synthetic.program ~seed ~n_methods:2 ()) in
         Program.iter_methods
           (fun _ m ->
             let cfg = To_cfg.cfg m in
             List.iter
               (fun (name, numbering) ->
                 if Numbering.n_paths numbering <= 500 then
                   check_bijection name numbering)
               (numberings_of_cfg ~seed cfg))
           p;
         true))

let test_n_branches () =
  let cfg =
    Cfg.create ~name:"nb" ~entry:0 ~exit_:3
      [|
        Cfg.Jump 1;
        Cfg.Branch { branch = 0; taken = 2; not_taken = 3 };
        Cfg.Jump 3;
        Cfg.Return;
      |]
  in
  let numbering = Numbering.ball_larus (Dag.build Dag.Back_edge cfg) in
  (* both paths cross exactly one branch edge *)
  check ci "path 0" 1 (Reconstruct.n_branches numbering 0);
  check ci "path 1" 1 (Reconstruct.n_branches numbering 1)

let suite =
  [
    Alcotest.test_case "paper example (fig 1 shape)" `Quick test_paper_example;
    Alcotest.test_case "loop example (fig 3 shape)" `Quick test_loop_example;
    Alcotest.test_case "smart: hottest arm zero" `Quick test_smart_zero_on_hottest;
    Alcotest.test_case "too many paths" `Quick test_too_many_paths;
    Alcotest.test_case "bijection on workloads" `Slow test_bijection_on_workload_methods;
    test_bijection_qcheck;
    Alcotest.test_case "n_branches" `Quick test_n_branches;
  ]
