(* The VM layer: frequency estimation, layout, advice, and the
   adaptive/replay driver. *)

open Ast

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let loop_cfg () =
  Cfg.create ~name:"loop" ~entry:0 ~exit_:3
    [|
      Cfg.Jump 1;
      Cfg.Branch { branch = 0; taken = 2; not_taken = 3 };
      Cfg.Jump 1;
      Cfg.Return;
    |]

let test_freq_estimate () =
  let cfg = loop_cfg () in
  let prof = Edge_profile.create () in
  (* taken (stay in loop) 90% of the time *)
  Edge_profile.add prof 0 ~taken:true 90;
  Edge_profile.add prof 0 ~taken:false 10;
  let freqs = Freq_estimate.block_freqs cfg prof in
  check cb "loop body hotter than entry" true (freqs.(2) > freqs.(0));
  check cb "header hot" true (freqs.(1) > 2.0);
  Array.iter (fun f -> check cb "finite" true (Float.is_finite f && f >= 0.)) freqs

let test_layout_hot_fallthrough () =
  let cfg = loop_cfg () in
  let prof = Edge_profile.create () in
  Edge_profile.add prof 0 ~taken:true 90;
  Edge_profile.add prof 0 ~taken:false 10;
  let l = Layout.compute cfg prof in
  let pos = Layout.positions l in
  (* the hot arm (block 2) should directly follow the header *)
  check ci "hot arm adjacent" (pos.(1) + 1) pos.(2)

let test_layout_penalties_affect_cycles () =
  let w = Suite.find "compress" in
  let program = Workload.program ~size:3 w in
  let run table =
    let env_st = Machine.create ~seed:9 program in
    (* compile everything to opt level 0 guided by [table] *)
    Program.iter_methods
      (fun m _ ->
        let cm = Machine.cmeth env_st m in
        Layout.apply env_st m (Layout.compute cm.Machine.cfg table.(m)))
      program;
    let r = Interp.run Interp.no_hooks env_st in
    (r, env_st.Machine.cycles)
  in
  (* collect a real profile first *)
  let st = Machine.create ~seed:9 program in
  let pe = Profiler.perfect_edge st in
  ignore (Interp.run pe.Profiler.ehooks st);
  let good = pe.Profiler.etable in
  let r1, good_cycles = run good in
  let r2, bad_cycles = run (Edge_profile.flip_table good) in
  check ci "same result" r1 r2;
  check cb "flipped profile is slower" true (bad_cycles > good_cycles)

let test_advice_roundtrip () =
  let levels = [| -1; 2; 0 |] in
  let profile = Edge_profile.create_table ~n_methods:3 in
  Edge_profile.add profile.(1) 4 ~taken:true 7;
  Edge_profile.add profile.(2) 0 ~taken:false 2;
  let dcg = Dcg.create () in
  Dcg.record dcg ~caller:0 ~callee:1;
  Dcg.record dcg ~caller:0 ~callee:1;
  Dcg.record dcg ~caller:(-1) ~callee:0;
  let a = { Advice.levels; profile; dcg } in
  let a' =
    match Advice.of_lines ~n_methods:3 (Advice.to_lines a) with
    | Ok a' -> a'
    | Error e -> Alcotest.failf "roundtrip: %a" Dcg.pp_parse_error e
  in
  check Alcotest.(array int) "levels" a.Advice.levels a'.Advice.levels;
  check ci "profile total"
    (Edge_profile.table_total a.Advice.profile)
    (Edge_profile.table_total a'.Advice.profile);
  check ci "n_opt" 2 (Advice.n_opt a);
  check ci "dcg preserved" 2 (Dcg.weight a'.Advice.dcg ~caller:0 ~callee:1)

let test_adaptive_promotes () =
  let w = Suite.find "compress" in
  let program = Workload.program ~size:60 w in
  let st = Machine.create ~seed:4 program in
  let d = Driver.create Driver.default_options st in
  ignore (Driver.run d);
  let advice = Driver.advice d in
  let step_idx = Program.index program "step" in
  check cb "hot method promoted" true (advice.Advice.levels.(step_idx) >= 0);
  check cb "baseline profile collected" true
    (Edge_profile.table_total (Driver.baseline_profile d) > 0);
  check cb "some method samples" true
    (Array.exists (fun s -> s > 0) (Driver.method_samples d))

let test_replay_deterministic () =
  let w = Suite.find "jess" in
  let program = Workload.program ~size:10 w in
  let env_run () =
    let st = Machine.create ~seed:11 program in
    let warm = Driver.create Driver.default_options st in
    ignore (Driver.run warm);
    ignore (Driver.run warm);
    let advice = Driver.advice warm in
    let st2 = Machine.create ~seed:11 program in
    let d =
      Driver.create
        { Driver.default_options with mode = Driver.Replay advice }
        st2
    in
    let c1, r1 = Driver.run d in
    let c2, r2 = Driver.run d in
    (c1, r1, c2, r2)
  in
  let a = env_run () and b = env_run () in
  check cb "replay runs are bit-identical" true (a = b)

let test_replay_compiles_at_first_invocation () =
  let w = Suite.find "db" in
  let program = Workload.program ~size:10 w in
  let st = Machine.create ~seed:11 program in
  let warm = Driver.create Driver.default_options st in
  ignore (Driver.run warm);
  ignore (Driver.run warm);
  let advice = Driver.advice warm in
  let st2 = Machine.create ~seed:11 program in
  let d =
    Driver.create { Driver.default_options with mode = Driver.Replay advice } st2
  in
  let iter1, _ = Driver.run d in
  let compile1 = Driver.compile_cycles d in
  let iter2, _ = Driver.run d in
  let compile2 = Driver.compile_cycles d in
  check cb "all compilation in iteration 1" true (compile1 > 0 && compile2 = compile1);
  check cb "iteration 1 dearer than iteration 2" true (iter1 > iter2)

let test_driver_with_pep () =
  let w = Suite.find "pseudojbb" in
  let program = Workload.program ~size:15 w in
  let st = Machine.create ~seed:8 program in
  let opts =
    {
      Driver.mode = Adaptive { thresholds = Driver.default_thresholds };
      opt_profile = Driver.From_pep;
      pep =
        Some
          {
            Driver.sampling = Sampling.pep ~samples:64 ~stride:17;
            zero = `Hottest;
            numbering = `Smart;
          };
      inline = false;
      unroll = false;
      verify = true;
      deep_verify = false;
      engine = `Threaded;
      tiers = Codegen.default_tiers;
      telemetry = None;
      faults = None;
    }
  in
  let d = Driver.create opts st in
  ignore (Driver.run d);
  ignore (Driver.run d);
  let pep = Option.get (Driver.pep d) in
  let planned, _total = Pep.n_instrumented pep in
  check cb "pep installed on opt methods" true (planned > 0);
  check cb "pep sampled" true (Pep.n_samples pep > 0)

let test_uninterruptible_never_promoted () =
  let hash =
    mdef ~uninterruptible:true "hash" ~params:[ "x" ]
      [
        set "a" (v "x");
        for_ "k" (i 0) (i 8) [ set "a" (bxor (v "a") (shl (v "a") (i 3))) ];
        ret (v "a");
      ]
  in
  let main =
    mdef "main" ~params:[]
      [
        set "s" (i 0);
        for_ "k" (i 0) (i 5000)
          [ set "s" (add (v "s") (call "hash" [ v "k" ])) ];
        ret (v "s");
      ]
  in
  let program = Compile.program ~name:"t" ~main:"main" [ main; hash ] in
  let st = Machine.create ~seed:2 program in
  let d = Driver.create Driver.default_options st in
  ignore (Driver.run d);
  let advice = Driver.advice d in
  check ci "uninterruptible stays baseline" (-1)
    advice.Advice.levels.(Program.index program "hash")

let suite =
  [
    Alcotest.test_case "freq estimate" `Quick test_freq_estimate;
    Alcotest.test_case "layout: hot fallthrough" `Quick test_layout_hot_fallthrough;
    Alcotest.test_case "layout: flipped slower" `Quick test_layout_penalties_affect_cycles;
    Alcotest.test_case "advice roundtrip" `Quick test_advice_roundtrip;
    Alcotest.test_case "adaptive promotes" `Quick test_adaptive_promotes;
    Alcotest.test_case "replay deterministic" `Quick test_replay_deterministic;
    Alcotest.test_case "replay compiles once" `Quick test_replay_compiles_at_first_invocation;
    Alcotest.test_case "driver with PEP" `Quick test_driver_with_pep;
    Alcotest.test_case "uninterruptible never promoted" `Quick
      test_uninterruptible_never_promoted;
  ]
