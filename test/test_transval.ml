(* Translation validation: valid witnesses are accepted, and every
   seeded miscompile — a mutation of a transform's output that the
   witness no longer justifies — is rejected by the named pass with a
   located counterexample.  The final test is the other half of the
   contract: across the whole workload suite, every transform
   configuration under both engines validates with zero errors (no
   false positives). *)

open Ast

let check = Alcotest.check
let cb = Alcotest.bool

let clone_meth (m : Method.t) =
  {
    m with
    Method.blocks =
      Array.map
        (fun (b : Method.block) ->
          { b with Method.body = Array.copy b.Method.body })
        m.Method.blocks;
  }

let no_errors what diags =
  match Pep_check.errors diags with
  | [] -> ()
  | d :: _ -> Alcotest.failf "%s: unexpected %a" what Pep_check.pp_diagnostic d

let rejected_by pass what diags =
  if
    not
      (List.exists
         (fun (d : Pep_check.diagnostic) ->
           d.Pep_check.severity = Pep_check.Error && d.Pep_check.pass = pass)
         diags)
  then
    Alcotest.failf "%s: expected an %s error; got:@.%a" what pass
      Pep_check.pp_report diags

(* --- inline -------------------------------------------------------- *)

(* A two-argument callee with a loop (so its copies carry an [Inc] and a
   [Br]) inlined into main. *)
let inline_setup () =
  let program =
    Compile.program ~name:"t" ~main:"main"
      [
        mdef "acc" ~params:[ "x"; "y" ]
          [
            set "s" (v "y");
            for_ "k" (i 0) (v "x") [ set "s" (add (v "s") (v "k")) ];
            ret (v "s");
          ];
        mdef "main" ~params:[] [ ret (call "acc" [ i 7; i 2 ]) ];
      ]
  in
  let caller = Program.find program "main" in
  let r = Inline.expand program caller ~should_inline:(fun _ -> true) in
  check cb "setup inlined something" true (r.Inline.inlined <> []);
  (program, caller, r)

let validate_inline (program, caller, (r : Inline.result)) meth =
  Pep_check.validate_inline program ~source:caller ~witness:r.Inline.witness
    meth

let the_site (r : Inline.result) =
  match r.Inline.witness.Transval.sites with
  | [ (key, site) ] -> (key, site)
  | sites -> Alcotest.failf "expected one inline site, got %d" (List.length sites)

let test_inline_witness_accepted () =
  let ((_, _, r) as s) = inline_setup () in
  no_errors "pristine inline output" (validate_inline s r.Inline.meth)

(* mutant 1: dropped increment inside a callee copy *)
let test_inline_dropped_inc () =
  let ((_, _, r) as s) = inline_setup () in
  let _, site = the_site r in
  let m = clone_meth r.Inline.meth in
  let mutated = ref false in
  Array.iter
    (fun id ->
      let blk = m.Method.blocks.(id) in
      if not !mutated then
        match
          Array.to_list blk.Method.body
          |> List.filter (function Instr.Inc _ -> false | _ -> true)
        with
        | body when List.length body < Array.length blk.Method.body ->
            m.Method.blocks.(id) <-
              { blk with Method.body = Array.of_list body };
            mutated := true
        | _ -> ())
    site.Transval.copy_ids;
  check cb "found an Inc to drop" true !mutated;
  rejected_by "transval" "dropped increment" (validate_inline s m)

(* mutant 2: swapped branch arms inside a callee copy *)
let test_inline_swapped_arms () =
  let ((_, _, r) as s) = inline_setup () in
  let _, site = the_site r in
  let m = clone_meth r.Inline.meth in
  let mutated = ref false in
  Array.iter
    (fun id ->
      let blk = m.Method.blocks.(id) in
      if not !mutated then
        match blk.Method.term with
        | Method.Br { branch; on_true; on_false } ->
            m.Method.blocks.(id) <-
              {
                blk with
                Method.term =
                  Method.Br { branch; on_true = on_false; on_false = on_true };
              };
            mutated := true
        | Method.Ret | Method.Jmp _ -> ())
    site.Transval.copy_ids;
  check cb "found a Br to swap" true !mutated;
  rejected_by "transval" "swapped branch arms" (validate_inline s m)

(* the piece that performs the inlined call: ends with the argument
   stores and zero-inits, then jumps into the entry copy *)
let call_piece (r : Inline.result) =
  let (b, _), _ = the_site r in
  r.Inline.witness.Transval.first_piece.(b)

(* mutant 3: argument stores in the wrong order *)
let test_inline_swapped_arg_stores () =
  let ((_, _, r) as s) = inline_setup () in
  let m = clone_meth r.Inline.meth in
  let piece = call_piece r in
  let body = m.Method.blocks.(piece).Method.body in
  (* the two argument stores are the first consecutive Store pair *)
  let swapped = ref false in
  for j = 0 to Array.length body - 2 do
    if not !swapped then
      match (body.(j), body.(j + 1)) with
      | Instr.Store a, Instr.Store b when a <> b ->
          body.(j) <- Instr.Store b;
          body.(j + 1) <- Instr.Store a;
          swapped := true
      | _ -> ()
  done;
  check cb "found the arg stores" true !swapped;
  rejected_by "transval" "swapped argument stores" (validate_inline s m)

(* mutant 4: missing zero-initialisation of a callee local *)
let test_inline_missing_zero_init () =
  let ((_, _, r) as s) = inline_setup () in
  let m = clone_meth r.Inline.meth in
  let piece = call_piece r in
  let blk = m.Method.blocks.(piece) in
  let dropped = ref false in
  let body =
    Array.to_list blk.Method.body
    |> List.filter (fun ins ->
           if (not !dropped) && ins = Instr.Const 0 then begin
             dropped := true;
             false
           end
           else true)
  in
  check cb "found a zero-init" true !dropped;
  m.Method.blocks.(piece) <- { blk with Method.body = Array.of_list body };
  rejected_by "transval" "missing zero-init" (validate_inline s m)

(* mutant 5: a copy reuses one of the caller's own branch ids — path and
   edge counters would alias between caller code and the inlined body *)
let test_inline_stale_branch_id () =
  let program =
    Compile.program ~name:"t" ~main:"main"
      [
        mdef "acc" ~params:[ "x"; "y" ]
          [
            set "s" (v "y");
            for_ "k" (i 0) (v "x") [ set "s" (add (v "s") (v "k")) ];
            ret (v "s");
          ];
        mdef "main" ~params:[]
          [
            set "t" (i 1);
            if_
              (gt (v "t") (i 0))
              [ set "r" (call "acc" [ i 7; i 2 ]) ]
              [ set "r" (i 0) ];
            ret (v "r");
          ];
      ]
  in
  let caller = Program.find program "main" in
  let caller_branch = List.hd (Method.branch_ids caller) in
  let r = Inline.expand program caller ~should_inline:(fun _ -> true) in
  check cb "inlined something" true (r.Inline.inlined <> []);
  let _, site = the_site r in
  let m = clone_meth r.Inline.meth in
  let mutated = ref false in
  Array.iter
    (fun id ->
      let blk = m.Method.blocks.(id) in
      if not !mutated then
        match blk.Method.term with
        | Method.Br b when b.branch <> caller_branch ->
            m.Method.blocks.(id) <-
              {
                blk with
                Method.term = Method.Br { b with branch = caller_branch };
              };
            mutated := true
        | Method.Br _ | Method.Ret | Method.Jmp _ -> ())
    site.Transval.copy_ids;
  check cb "found a copy branch" true !mutated;
  rejected_by "transval" "aliased branch id"
    (Pep_check.validate_inline program ~source:caller
       ~witness:r.Inline.witness m)

(* mutant 6: the callee's Ret copy jumps somewhere other than the
   continuation — the return value would flow to the wrong point *)
let test_inline_wrong_ret_target () =
  let ((program, _, r) as s) = inline_setup () in
  let _, site = the_site r in
  let callee = Program.find program "acc" in
  let ret_copy = site.Transval.copy_ids.(callee.Method.exit_) in
  let m = clone_meth r.Inline.meth in
  let blk = m.Method.blocks.(ret_copy) in
  m.Method.blocks.(ret_copy) <-
    { blk with Method.term = Method.Jmp site.Transval.copy_ids.(callee.Method.entry) };
  rejected_by "transval" "wrong return target" (validate_inline s m)

(* --- unroll -------------------------------------------------------- *)

let unroll_setup () =
  let program =
    Compile.program ~name:"t" ~main:"main"
      [
        mdef "main" ~params:[]
          [
            set "s" (i 0);
            for_ "k" (i 0) (i 40)
              [ if_ (gt (v "k") (i 9)) [ set "s" (add (v "s") (v "k")) ] [] ];
            ret (v "s");
          ];
      ]
  in
  let m = Program.find program "main" in
  let r = Unroll.expand m in
  check cb "setup unrolled a loop" true (r.Unroll.unrolled > 0);
  (m, r)

let validate_unroll (source, (r : Unroll.result)) meth =
  Pep_check.validate_unroll ~source ~witness:r.Unroll.witness meth

let n_source (m : Method.t) = Array.length m.Method.blocks

let test_unroll_witness_accepted () =
  let m, r = unroll_setup () in
  no_errors "pristine unroll output" (validate_unroll (m, r) r.Unroll.meth)

(* mutant 7: swapped branch arms in a duplicated block *)
let test_unroll_swapped_arms () =
  let src, r = unroll_setup () in
  let m = clone_meth r.Unroll.meth in
  let mutated = ref false in
  for id = n_source src to Array.length m.Method.blocks - 1 do
    let blk = m.Method.blocks.(id) in
    if not !mutated then
      match blk.Method.term with
      | Method.Br { branch; on_true; on_false } when on_true <> on_false ->
          m.Method.blocks.(id) <-
            {
              blk with
              Method.term =
                Method.Br { branch; on_true = on_false; on_false = on_true };
            };
          mutated := true
      | Method.Br _ | Method.Ret | Method.Jmp _ -> ()
  done;
  check cb "found a copied Br" true !mutated;
  rejected_by "transval" "unroll swapped arms" (validate_unroll (src, r) m)

(* mutant 8: an instruction dropped from a duplicated body *)
let test_unroll_dropped_instr () =
  let src, r = unroll_setup () in
  let m = clone_meth r.Unroll.meth in
  let mutated = ref false in
  for id = n_source src to Array.length m.Method.blocks - 1 do
    let blk = m.Method.blocks.(id) in
    if (not !mutated) && Array.length blk.Method.body > 0 then begin
      m.Method.blocks.(id) <-
        {
          blk with
          Method.body =
            Array.sub blk.Method.body 0 (Array.length blk.Method.body - 1);
        };
      mutated := true
    end
  done;
  check cb "found a copied body" true !mutated;
  rejected_by "transval" "unroll dropped instruction" (validate_unroll (src, r) m)

(* mutant 9: wrong epilogue — the original tail jumps past the copied
   header into the middle of the copied body, skipping the trip test *)
let test_unroll_wrong_epilogue () =
  let src, r = unroll_setup () in
  let n = n_source src in
  let sigma = r.Unroll.witness.Transval.src_of in
  let m = clone_meth r.Unroll.meth in
  (* the copied header is whatever the retargeted original back edge now
     points at; redirect it to a different copy *)
  let mutated = ref false in
  Array.iteri
    (fun id (blk : Method.block) ->
      if id < n && not !mutated then
        let redirect t =
          if t >= n && not !mutated then begin
            match
              Array.to_list
                (Array.init (Array.length sigma - n) (fun j -> j + n))
              |> List.find_opt (fun c -> sigma.(c) <> sigma.(t))
            with
            | Some other ->
                mutated := true;
                other
            | None -> t
          end
          else t
        in
        let term =
          match blk.Method.term with
          | Method.Ret -> Method.Ret
          | Method.Jmp d -> Method.Jmp (redirect d)
          | Method.Br { branch; on_true; on_false } ->
              let on_true = redirect on_true in
              let on_false = redirect on_false in
              Method.Br { branch; on_true; on_false }
        in
        m.Method.blocks.(id) <- { blk with Method.term = term })
    r.Unroll.meth.Method.blocks;
  check cb "found the unroll epilogue edge" true !mutated;
  rejected_by "transval" "unroll wrong epilogue" (validate_unroll (src, r) m)

(* --- layout -------------------------------------------------------- *)

let layout_setup () =
  let w = Suite.find "compress" in
  let program = Workload.program ~size:40 w in
  let st = Machine.create ~seed:5 program in
  (* pick a method with a branch so prediction matters *)
  let midx =
    let found = ref (-1) in
    Program.iter_methods
      (fun i m -> if !found < 0 && Method.n_branches m > 0 then found := i)
      program;
    !found
  in
  let cm = Machine.cmeth st midx in
  let lay = Layout.natural cm.Machine.cfg in
  Layout.apply st midx lay;
  (st, midx, cm, lay)

let validate_layout (st : Machine.t) (cm : Machine.cmeth) ~pos ~predict =
  let cost = st.Machine.cost in
  Pep_check.validate_layout cm.Machine.cfg ~pos ~predict_taken:predict
    ~edge_extra:(fun b idx -> cm.Machine.edge_extra.(b).(idx))
    ~taken_penalty:cost.Cost_model.taken_branch_penalty
    ~mispredict_penalty:cost.Cost_model.mispredict_penalty

let test_layout_witness_accepted () =
  let st, _, cm, lay = layout_setup () in
  no_errors "pristine layout"
    (validate_layout st cm ~pos:(Layout.positions lay)
       ~predict:(Layout.predicted lay))

(* mutant 10: stale layout map — computed against a smaller CFG *)
let test_layout_stale_map () =
  let st, _, cm, lay = layout_setup () in
  let pos = Layout.positions lay in
  let stale = Array.sub pos 0 (Array.length pos - 1) in
  rejected_by "transval" "stale layout map"
    (validate_layout st cm ~pos:stale ~predict:(Layout.predicted lay))

(* mutant 11: position map that is not a permutation *)
let test_layout_not_permutation () =
  let st, _, cm, lay = layout_setup () in
  let pos = Layout.positions lay in
  pos.(0) <- pos.(1);
  rejected_by "transval" "non-permutation layout"
    (validate_layout st cm ~pos ~predict:(Layout.predicted lay))

(* mutant 12: tampered edge penalty — the installed cost disagrees with
   the formula for the claimed layout *)
let test_layout_tampered_extra () =
  let st, _, cm, lay = layout_setup () in
  let b =
    let found = ref (-1) in
    Cfg.iter_blocks
      (fun b ->
        if !found < 0 && Cfg.successors cm.Machine.cfg b <> [] then found := b)
      cm.Machine.cfg;
    !found
  in
  cm.Machine.edge_extra.(b).(0) <- cm.Machine.edge_extra.(b).(0) + 1;
  rejected_by "transval" "tampered edge penalty"
    (validate_layout st cm ~pos:(Layout.positions lay)
       ~predict:(Layout.predicted lay))

(* --- driver integration -------------------------------------------- *)

(* Through the driver, a full adaptive run over a transformed workload
   validates cleanly: witnesses flow from the transforms into the
   stage-labelled transval passes and none reports an error. *)
let test_driver_transval_labels () =
  let w = Suite.find "jack" in
  let env = Exp_harness.make_env ~size:120 ~seed:11 w in
  let config =
    { Exp_harness.default with inline = true; unroll = true; deep = true }
  in
  let r = Exp_harness.replay env config in
  let checks = Driver.checks r.Exp_harness.driver in
  no_errors "transformed jack replay" checks;
  check cb "no transval pass errored" true
    (List.for_all
       (fun (d : Pep_check.diagnostic) ->
         d.Pep_check.severity <> Pep_check.Error)
       checks)

(* --- zero false positives across the suite ------------------------- *)

let engine_name = function `Threaded -> "threaded" | `Oracle -> "oracle"

let test_suite_no_false_positives () =
  List.iter
    (fun (w : Workload.t) ->
      let size = max 1 (w.Workload.default_size / 5) in
      let env = Exp_harness.make_env ~size ~seed:11 w in
      List.iter
        (fun engine ->
          List.iter
            (fun (key, inline, unroll) ->
              let config =
                { Exp_harness.default with inline; unroll; deep = true; engine }
              in
              let r = Exp_harness.replay env config in
              match Pep_check.errors (Driver.checks r.Exp_harness.driver) with
              | [] -> ()
              | d :: _ ->
                  Alcotest.failf "%s %s/%s: %a" w.Workload.name
                    (engine_name engine) key Pep_check.pp_diagnostic d)
            [
              ("base", false, false);
              ("inline", true, false);
              ("unroll", false, true);
              ("inline+unroll", true, true);
            ])
        [ `Threaded; `Oracle ])
    Suite.all

let suite =
  [
    Alcotest.test_case "inline witness accepted" `Quick
      test_inline_witness_accepted;
    Alcotest.test_case "inline: dropped increment" `Quick test_inline_dropped_inc;
    Alcotest.test_case "inline: swapped branch arms" `Quick
      test_inline_swapped_arms;
    Alcotest.test_case "inline: swapped arg stores" `Quick
      test_inline_swapped_arg_stores;
    Alcotest.test_case "inline: missing zero-init" `Quick
      test_inline_missing_zero_init;
    Alcotest.test_case "inline: stale branch id" `Quick
      test_inline_stale_branch_id;
    Alcotest.test_case "inline: wrong return target" `Quick
      test_inline_wrong_ret_target;
    Alcotest.test_case "unroll witness accepted" `Quick
      test_unroll_witness_accepted;
    Alcotest.test_case "unroll: swapped branch arms" `Quick
      test_unroll_swapped_arms;
    Alcotest.test_case "unroll: dropped instruction" `Quick
      test_unroll_dropped_instr;
    Alcotest.test_case "unroll: wrong epilogue" `Quick
      test_unroll_wrong_epilogue;
    Alcotest.test_case "layout witness accepted" `Quick
      test_layout_witness_accepted;
    Alcotest.test_case "layout: stale map" `Quick test_layout_stale_map;
    Alcotest.test_case "layout: not a permutation" `Quick
      test_layout_not_permutation;
    Alcotest.test_case "layout: tampered penalty" `Quick
      test_layout_tampered_extra;
    Alcotest.test_case "driver transval labels" `Quick
      test_driver_transval_labels;
    Alcotest.test_case "suite: no false positives" `Slow
      test_suite_no_false_positives;
  ]
