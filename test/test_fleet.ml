(* The fleet service, locked down the same way the experiment pool is:

   - determinism: a collector run at jobs=1 and jobs=4 produces
     byte-identical segment files, and identical query output (top,
     folded, diff) — and a warm rerun simulates nothing and leaves the
     store untouched;
   - the segment codec: save/load round-trips arbitrary segments
     (QCheck), a flipped byte is rejected by the digest before any row
     is believed, a forged future version and junk files come back as
     structured diagnostics;
   - compaction and retention: merge sums rows and spans windows,
     compact leaves exactly one merged segment per (cohort, window),
     retain drops the oldest windows;
   - triage golden: on the seeded drifting cohort the diff flags a new
     hot path in worker_b, the dispatch edge-flow shift and leaf's
     caller change; the steady control reports nothing. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let csl = Alcotest.(list string)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    let f = Filename.temp_file "pepsim-fleet" "" in
    Sys.remove f;
    incr n;
    f ^ ".d" ^ string_of_int !n

let read_all file = In_channel.with_open_bin file In_channel.input_all
let write_all file s = Out_channel.with_open_bin file (fun oc -> Out_channel.output_string oc s)

(* One small collector spec shared by the whole suite; every run of it
   must be bit-identical, so tests can compare stores freely. *)
let spec =
  Fleet_collector.default_spec ~size:150 ~seed:21 ~instances:2 ~windows:4
    Phased.drift

let store_fingerprint dir =
  List.sort compare
    (List.filter_map
       (fun f ->
         if Filename.check_suffix f ".seg" then
           Some (f, Digest.to_hex (Digest.string (read_all (Filename.concat dir f))))
         else None)
       (Array.to_list (Sys.readdir dir)))

let run_ok ?jobs dir =
  match Fleet_collector.run ?jobs ~dir spec with
  | Ok r -> r
  | Error e -> Alcotest.failf "fleet run: %a" Dcg.pp_parse_error e

let segments_of dir =
  let segs, diags = Fleet_store.load_all ~dir in
  List.iter (fun e -> Alcotest.failf "load_all: %a" Dcg.pp_parse_error e) diags;
  segs

(* ------------------- determinism & warm skip ---------------------- *)

let query_repr dir =
  let segs = segments_of dir in
  let shift = Fleet_query.select segs { Fleet_query.any with cohort = Some "shift" } in
  let top k = List.map (fun (l, s) -> Fmt.str "%s=%h" l s) (Fleet_query.top ~n:10 k segs) in
  let folded = Folded.to_lines (Fleet_query.folded `Paths (Fleet_query.view shift)) in
  let diff =
    Fleet_query.diff
      ~baseline:(Fleet_query.view (Fleet_query.select segs
        { Fleet_query.cohort = Some "shift"; lo = None; hi = Some 1 }))
      ~current:(Fleet_query.view (Fleet_query.select segs
        { Fleet_query.cohort = Some "shift"; lo = Some 2; hi = None }))
      ()
  in
  top `Paths @ top `Edges @ top `Dcg @ folded
  @ List.map Fleet_query.render_finding diff

let test_jobs_deterministic () =
  let d1 = fresh_dir () and d4 = fresh_dir () in
  let r1 = run_ok ~jobs:1 d1 and r4 = run_ok ~jobs:4 d4 in
  check ci "simulated" r1.Fleet_collector.simulated r4.Fleet_collector.simulated;
  check ci "snapshots" r1.Fleet_collector.snapshots r4.Fleet_collector.snapshots;
  check ci "samples" r1.Fleet_collector.samples_taken r4.Fleet_collector.samples_taken;
  Alcotest.(check (list (pair string string)))
    "segment files byte-identical" (store_fingerprint d1) (store_fingerprint d4);
  check csl "query output identical" (query_repr d1) (query_repr d4)

let test_warm_rerun () =
  let dir = fresh_dir () in
  let cold = run_ok dir in
  check cb "cold simulated" true (cold.Fleet_collector.simulated > 0);
  let before = store_fingerprint dir in
  let warm = run_ok ~jobs:3 dir in
  check ci "warm simulated" 0 warm.Fleet_collector.simulated;
  check ci "warm skipped"
    (cold.Fleet_collector.cohorts * spec.Fleet_collector.instances)
    warm.Fleet_collector.skipped;
  check ci "warm snapshots" 0 warm.Fleet_collector.snapshots;
  Alcotest.(check (list (pair string string)))
    "store untouched" before (store_fingerprint dir)

(* --------------------------- triage golden ------------------------ *)

let diff_of dir ~cohort =
  let segs = segments_of dir in
  Fleet_query.diff
    ~baseline:(Fleet_query.view (Fleet_query.select segs
      { Fleet_query.cohort = Some cohort; lo = None; hi = Some 1 }))
    ~current:(Fleet_query.view (Fleet_query.select segs
      { Fleet_query.cohort = Some cohort; lo = Some 2; hi = None }))
    ()

let shared_dir = lazy (let d = fresh_dir () in ignore (run_ok ~jobs:2 d); d)

let test_triage_drift () =
  let findings = diff_of (Lazy.force shared_dir) ~cohort:"shift" in
  let rendered = List.map Fleet_query.render_finding findings in
  let has prefix =
    check cb (Fmt.str "finding %s" prefix) true
      (List.exists
         (fun r -> String.length r >= String.length prefix
                   && String.sub r 0 (String.length prefix) = prefix)
         rendered)
  in
  (* the phase shift moves dispatch toward worker_b: its new paths get
     hot, dispatch's branch bias flips, and leaf's dominant caller
     moves — all three rule families must fire *)
  has "new-hot-path worker_b/path#";
  has "edge-shift dispatch/br#0";
  has "caller-change leaf: worker_a -> worker_b";
  (* and they are all the drift explains: nothing else regresses *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun r ->
      check cb (Fmt.str "finding %s names worker_b, dispatch or leaf" r) true
        (List.exists (contains r) [ "worker_b"; "dispatch"; "leaf" ]))
    rendered

let test_triage_steady_clean () =
  check ci "steady findings" 0
    (List.length (diff_of (Lazy.force shared_dir) ~cohort:"steady"))

(* ------------------------ segment codec --------------------------- *)

let seg ~cohort_name ~window ~origin rows =
  {
    Fleet_store.cohort =
      {
        Fleet.Cohort.name = cohort_name;
        workload = "drift";
        size = 10;
        seed = 7;
        config_key = "cfg";
        drift = Fleet.Drift.No_drift;
      };
    window = Fleet.Window.raw ~index:window ~start_cycle:(window * 100)
        ~end_cycle:((window + 1) * 100);
    origin;
    instances = 1;
    samples = List.length rows;
    methods = [| "alpha"; "beta" |];
    paths = rows;
    edges = List.map (fun (a, b, c) -> (a, b, c, c + 1)) rows;
    dcg = (if rows = [] then [] else [ (-1, 0, 5); (0, 1, 3) ]);
  }

let test_segment_roundtrip () =
  let dir = fresh_dir () in
  (match Fleet_store.open_ dir with
  | Ok r -> check ci "clean open heals nothing" 0 r.Fleet_store.healed
  | Error e -> Alcotest.failf "open: %a" Dcg.pp_parse_error e);
  let s = seg ~cohort_name:"a" ~window:2 ~origin:3 [ (0, 1, 42); (1, 9, 7) ] in
  (match Fleet_store.save ~dir s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save: %a" Dcg.pp_parse_error e);
  match segments_of dir with
  | [ s' ] -> check cb "roundtrip equal" true (s = s')
  | l -> Alcotest.failf "expected 1 segment, got %d" (List.length l)

let test_segment_tamper_rejected () =
  let dir = fresh_dir () in
  ignore (Fleet_store.open_ dir);
  let s = seg ~cohort_name:"a" ~window:0 ~origin:0 [ (0, 3, 9) ] in
  ignore (Fleet_store.save ~dir s);
  let file = Fleet_store.filename ~dir s in
  let bytes = read_all file in
  let i = String.length bytes / 2 in
  let flipped = Bytes.of_string bytes in
  Bytes.set flipped i (Char.chr (Char.code bytes.[i] lxor 1));
  write_all file (Bytes.to_string flipped);
  let segs, diags = Fleet_store.load_all ~dir in
  check ci "no segment believed" 0 (List.length segs);
  check ci "one diagnostic" 1 (List.length diags)

let test_segment_junk_rejected () =
  let dir = fresh_dir () in
  ignore (Fleet_store.open_ dir);
  write_all (Filename.concat dir "junk.seg") "not a segment at all";
  let segs, diags = Fleet_store.load_all ~dir in
  check ci "no segment" 0 (List.length segs);
  check ci "diagnostic" 1 (List.length diags)

let gen_segment =
  let open QCheck in
  (* segment fields must be newline-free (the store refuses them) *)
  let str =
    map
      (String.map (fun c -> if c = '\n' then '_' else c))
      (string_gen_of_size (Gen.int_range 0 12) Gen.printable)
  in
  let rows3 = small_list (triple small_nat small_nat small_nat) in
  let rows4 =
    small_list (quad small_nat small_nat small_nat small_nat)
  in
  quad str (small_list str) rows3 rows4

let prop_segment_codec =
  QCheck.Test.make ~count:100 ~name:"segment codec: save/load = id, tamper rejected"
    gen_segment (fun (name, methods, rows3, rows4) ->
      let dir = fresh_dir () in
      ignore (Fleet_store.open_ dir);
      let s =
        {
          Fleet_store.cohort =
            {
              Fleet.Cohort.name = "c|" ^ name;
              workload = name;
              size = 3;
              seed = 1;
              config_key = "k=" ^ name;
              drift = Fleet.Drift.Phase_shift { at_window = 1; phase = 2 };
            };
          window = Fleet.Window.raw ~index:1 ~start_cycle:0 ~end_cycle:9;
          origin = 0;
          instances = 1;
          samples = List.length rows3;
          methods = Array.of_list methods;
          paths = rows3;
          edges = rows4;
          dcg = List.map (fun (a, b, c) -> (a - 1, b, c)) rows3;
        }
      in
      match Fleet_store.save ~dir s with
      | Error e -> QCheck.Test.fail_reportf "save: %a" Dcg.pp_parse_error e
      | Ok () -> (
          let file = Fleet_store.filename ~dir s in
          let bytes = read_all file in
          match Fleet_store.decode ~file bytes with
          | Error e ->
              QCheck.Test.fail_reportf "decode: %a" Dcg.pp_parse_error e
          | Ok s' ->
              if s <> s' then QCheck.Test.fail_report "roundtrip mismatch";
              let i = String.length bytes / 2 in
              let t = Bytes.of_string bytes in
              Bytes.set t i (Char.chr (Char.code bytes.[i] lxor (1 lsl (i mod 8))));
              if Bytes.to_string t = bytes then true
              else
                match Fleet_store.decode ~file (Bytes.to_string t) with
                | Ok _ -> QCheck.Test.fail_report "tampered bytes accepted"
                | Error _ -> true))

(* --------------------- merge / compact / retain ------------------- *)

let test_merge_sums () =
  let a = seg ~cohort_name:"m" ~window:0 ~origin:0 [ (0, 1, 10) ] in
  let b = seg ~cohort_name:"m" ~window:1 ~origin:1 [ (0, 1, 5); (1, 2, 2) ] in
  let m = Fleet_store.merge [ a; b ] in
  check ci "origin" (-1) m.Fleet_store.origin;
  check ci "instances summed" 2 m.Fleet_store.instances;
  check ci "window lo" 0 m.Fleet_store.window.Fleet.Window.lo;
  check ci "window hi" 1 m.Fleet_store.window.Fleet.Window.hi;
  check cb "paths summed" true
    (List.mem (0, 1, 15) m.Fleet_store.paths
     && List.mem (1, 2, 2) m.Fleet_store.paths);
  check cb "mixed cohorts rejected" true
    (try
       ignore (Fleet_store.merge [ a; seg ~cohort_name:"x" ~window:0 ~origin:0 [] ]);
       false
     with Invalid_argument _ -> true)

let test_compact_and_retain () =
  let dir = fresh_dir () in
  ignore (Fleet_store.open_ dir);
  List.iter
    (fun s -> match Fleet_store.save ~dir s with
      | Ok () -> ()
      | Error e -> Alcotest.failf "save: %a" Dcg.pp_parse_error e)
    [
      seg ~cohort_name:"c" ~window:0 ~origin:0 [ (0, 1, 1) ];
      seg ~cohort_name:"c" ~window:0 ~origin:1 [ (0, 1, 2) ];
      seg ~cohort_name:"c" ~window:1 ~origin:0 [ (0, 1, 4) ];
      seg ~cohort_name:"c" ~window:1 ~origin:1 [ (0, 1, 8) ];
    ];
  let written, deleted, errs = Fleet_store.compact ~dir in
  check ci "no errors" 0 (List.length errs);
  check ci "merged written" 2 written;
  check ci "raws deleted" 4 deleted;
  let segs = segments_of dir in
  check ci "two merged remain" 2 (List.length segs);
  List.iter
    (fun (s : Fleet_store.segment) ->
      check ci "merged origin" (-1) s.Fleet_store.origin;
      check ci "merged instances" 2 s.Fleet_store.instances)
    segs;
  (* retention: keep only the newest window *)
  check ci "retain deletes" 1 (Fleet_store.retain ~dir ~max_windows:1);
  match segments_of dir with
  | [ s ] -> check ci "newest kept" 1 s.Fleet_store.window.Fleet.Window.lo
  | l -> Alcotest.failf "expected 1 segment, got %d" (List.length l)

let test_select_prefers_merged () =
  let raw = seg ~cohort_name:"c" ~window:0 ~origin:0 [ (0, 1, 1) ] in
  let merged = { (Fleet_store.merge [ raw ]) with Fleet_store.instances = 2 } in
  let picked = Fleet_query.select [ raw; merged ] Fleet_query.any in
  check ci "raw shadowed" 1 (List.length picked);
  check ci "merged picked" (-1) (List.hd picked).Fleet_store.origin

(* --------------------- fault tolerance & healing ------------------ *)

(* The tentpole invariant, byte-level: any converging fault plan's
   store must fingerprint identically to the healthy shared run, and
   every injection must be accounted. *)

let healthy_fp = lazy (store_fingerprint (Lazy.force shared_dir))

let run_faulted ?jobs ~faults dir =
  let spec = { spec with Fleet_collector.faults = Fault_plan.parse_exn faults } in
  match Fleet_collector.run ?jobs ~dir spec with
  | Ok r -> r
  | Error e -> Alcotest.failf "faulted fleet run: %a" Dcg.pp_parse_error e

let counts_of (r : Fleet_collector.report) =
  match r.Fleet_collector.counts with
  | Some c -> c
  | None -> Alcotest.fail "active plan reported no fault accounting"

let check_accounted c =
  match Fault_injector.accounted c with
  | Ok () -> ()
  | Error m -> Alcotest.failf "unaccounted degradation: %s" m

let check_identical what dir =
  Alcotest.(check (list (pair string string)))
    what (Lazy.force healthy_fp) (store_fingerprint dir)

let test_noop_plan_identity () =
  let dir = fresh_dir () in
  let r = run_faulted ~faults:"noop" dir in
  let c = counts_of r in
  check ci "no crashes" 0 c.Fault_injector.instance_crash;
  check ci "no torn writes" 0 c.Fault_injector.torn_write;
  check ci "no stragglers" 0 c.Fault_injector.straggler;
  check ci "no corruption" 0 c.Fault_injector.seg_corrupt;
  check ci "nothing degraded" 0 (List.length r.Fleet_collector.degraded);
  check_identical "noop store byte-identical" dir

let test_crash_restart_converges () =
  let dir = fresh_dir () in
  let r = run_faulted ~faults:"seed=11,crash=0.3,crash-restarts=10" dir in
  let c = counts_of r in
  check_accounted c;
  check cb "crashes fired" true (c.Fault_injector.instance_crash > 0);
  check ci "every crash restarted" c.Fault_injector.instance_crash
    c.Fault_injector.restarts;
  check ci "no instance lost" 0 c.Fault_injector.lost_instances;
  check_identical "crashed store byte-identical" dir

let test_torn_write_heals () =
  let dir = fresh_dir () in
  let r = run_faulted ~faults:"seed=23,torn-write=0.6,seg-retries=4" dir in
  let c = counts_of r in
  check_accounted c;
  check cb "torn writes fired" true (c.Fault_injector.torn_write > 0);
  check ci "every torn write recovered" c.Fault_injector.torn_write
    c.Fault_injector.writes_recovered;
  check cb "rebuilds recorded" true
    (List.exists (fun (_, _, reason) -> reason = "rebuilt")
       r.Fleet_collector.degraded);
  check_identical "torn store byte-identical" dir

let test_seg_corrupt_quarantines () =
  let dir = fresh_dir () in
  let r = run_faulted ~faults:"seed=47,seg-corrupt=0.5,seg-retries=4" dir in
  let c = counts_of r in
  check_accounted c;
  check cb "corruption fired" true (c.Fault_injector.seg_corrupt > 0);
  check ci "every flip quarantined" c.Fault_injector.seg_corrupt
    c.Fault_injector.seg_quarantined;
  check cb "quarantine evidence kept" true
    (List.exists
       (fun f -> Filename.check_suffix f ".quarantined")
       (Array.to_list (Sys.readdir dir)));
  check_identical "quarantined store byte-identical" dir

let test_straggler_catches_up () =
  let dir = fresh_dir () in
  let r =
    run_faulted ~faults:"seed=31,straggler=0.7,straggler-timeout=3" dir
  in
  let c = counts_of r in
  check_accounted c;
  check cb "stragglers fired" true (c.Fault_injector.straggler > 0);
  check ci "every straggler caught up" c.Fault_injector.straggler
    c.Fault_injector.catchups;
  check ci "nothing degraded" 0 (List.length r.Fleet_collector.degraded);
  check_identical "straggling store byte-identical" dir

let test_doomed_loses_then_heals () =
  let dir = fresh_dir () in
  let r = run_faulted ~faults:"seed=3,crash=1,crash-restarts=0" dir in
  let c = counts_of r in
  check_accounted c;
  check ci "every instance lost"
    (r.Fleet_collector.cohorts * spec.Fleet_collector.instances)
    c.Fault_injector.lost_instances;
  check ci "no segments survive" 0 (List.length (segments_of dir));
  let lost =
    List.filter (fun (_, _, reason) -> reason = "lost")
      r.Fleet_collector.degraded
  in
  check ci "every window accounted lost"
    (r.Fleet_collector.cohorts * spec.Fleet_collector.windows)
    (List.length lost);
  (* one clean rerun re-collects the lost windows to the healthy bytes,
     and the loss history stays in the sidecar *)
  ignore (run_ok dir);
  check_identical "healed store byte-identical" dir;
  check cb "loss history preserved" true
    (List.exists (fun (_, _, reason) -> reason = "lost")
       (Fleet_store.load_degraded ~dir))

let test_jobs_identity_under_faults () =
  let faults =
    "seed=13,crash=0.2,crash-restarts=10,torn-write=0.3,straggler=0.3,\
     seg-corrupt=0.2"
  in
  let d1 = fresh_dir () and d4 = fresh_dir () in
  let r1 = run_faulted ~jobs:1 ~faults d1 in
  let r4 = run_faulted ~jobs:4 ~faults d4 in
  check cb "faults fired" true
    ((counts_of r1).Fault_injector.instance_crash
     + (counts_of r1).Fault_injector.torn_write
     + (counts_of r1).Fault_injector.straggler
     + (counts_of r1).Fault_injector.seg_corrupt
     > 0);
  check cb "identical accounting" true (counts_of r1 = counts_of r4);
  Alcotest.(check (list (pair string string)))
    "identical stores under injection" (store_fingerprint d1)
    (store_fingerprint d4)

(* Crash consistency, property-style: copy the healthy store, damage
   one segment at an arbitrary byte offset (torn prefix or flipped
   byte, with or without a forged journal intent for it), reopen and
   re-run — the store must converge back to the healthy bytes. *)
let prop_crash_consistency =
  QCheck.Test.make ~count:15
    ~name:"crash consistency: damaged store heals byte-for-byte"
    QCheck.(quad small_nat small_nat bool bool)
    (fun (vi, off, flip, forge) ->
      let healthy = Lazy.force shared_dir in
      let fp = Lazy.force healthy_fp in
      let dir = fresh_dir () in
      ignore (Fleet_store.open_ dir);
      List.iter
        (fun (f, _) ->
          write_all (Filename.concat dir f)
            (read_all (Filename.concat healthy f)))
        fp;
      let victim, _ = List.nth fp (vi mod List.length fp) in
      let path = Filename.concat dir victim in
      let bytes = read_all path in
      let len = String.length bytes in
      (if flip then begin
         let i = off mod len in
         let b = Bytes.of_string bytes in
         Bytes.set b i (Char.chr (Char.code bytes.[i] lxor 0x55));
         write_all path (Bytes.to_string b)
       end
       else write_all path (String.sub bytes 0 (1 + (off mod (len - 1)))));
      if forge then
        (* a crash between rename and commit: intent without commit *)
        Out_channel.with_open_gen
          [ Open_append; Open_creat; Open_binary ]
          0o644
          (Filename.concat dir "fleet.journal")
          (fun oc ->
            Out_channel.output_string oc
              ("W " ^ victim ^ " "
              ^ Digest.to_hex (Digest.string bytes)
              ^ "\n"));
      ignore (run_ok dir);
      if store_fingerprint dir <> fp then
        QCheck.Test.fail_report "damaged store did not converge"
      else true)

let test_fleet_chaos_mini () =
  let dir = fresh_dir () in
  let cases =
    [
      Exp_chaos.fleet_case "noop" "noop" true;
      Exp_chaos.fleet_case "doomed" "seed=3,crash=1,crash-restarts=0" false;
    ]
  in
  let reports = Fleet_chaos.sweep ~jobs:2 ~cases ~dir spec in
  check ci "two reports" 2 (List.length reports);
  List.iter
    (fun (r : Fleet_chaos.report) ->
      check csl (r.Fleet_chaos.flabel ^ " clean") [] r.Fleet_chaos.violations)
    reports

(* ------------------------------ watch ----------------------------- *)

let wseg ~window rows = seg ~cohort_name:"w" ~window ~origin:0 rows
let base_rows = [ (0, 1, 100) ]
let hot_rows = [ (0, 1, 100); (1, 7, 50) ]

let watch_rule ?(persist = 2) () =
  {
    Fleet_watch.name = "hot";
    cohort = Some "w";
    families = [ Fleet_watch.New_hot_path ];
    persist;
    min_share = None;
    min_shift = None;
  }

let run_watch ?persist ?(degraded = []) windows =
  Fleet_watch.run
    ~rules:[ watch_rule ?persist () ]
    ~degraded
    (List.mapi (fun i rows -> wseg ~window:i rows) windows)

let test_watch_fires_once_then_dedups () =
  let r = run_watch [ base_rows; hot_rows; hot_rows; hot_rows ] in
  (match r.Fleet_watch.alerts with
  | [ a ] ->
      check ci "fires at the second hot window" 2 a.Fleet_watch.window;
      check ci "after a 2-window streak" 2 a.Fleet_watch.streak;
      check cb "not degraded" false a.Fleet_watch.degraded;
      check cb "renders as an ALERT line" true
        (String.length (Fleet_watch.render_alert a) > 0
        && String.sub (Fleet_watch.render_alert a) 0 15 = "ALERT rule=hot ")
  | l -> Alcotest.failf "expected 1 alert, got %d" (List.length l));
  check ci "third hot window deduped" 1 r.Fleet_watch.deduped;
  check ci "no flaps" 0 r.Fleet_watch.flapped

let test_watch_flap_suppressed () =
  let r = run_watch [ base_rows; hot_rows; base_rows; hot_rows ] in
  check ci "no alert from a broken streak" 0
    (List.length r.Fleet_watch.alerts);
  check ci "the break is counted as a flap" 1 r.Fleet_watch.flapped

let test_watch_persist_one_is_immediate () =
  let r = run_watch ~persist:1 [ base_rows; hot_rows ] in
  check ci "fires on first sight" 1 (List.length r.Fleet_watch.alerts)

let test_watch_degraded_annotation () =
  let degraded = [ ("w", 2, "rebuilt") ] in
  let r = run_watch ~degraded [ base_rows; hot_rows; hot_rows ] in
  (match r.Fleet_watch.alerts with
  | [ a ] -> check cb "degraded-data flagged" true a.Fleet_watch.degraded
  | l -> Alcotest.failf "expected 1 alert, got %d" (List.length l));
  (* a degraded baseline window taints every alert of the cohort *)
  let r2 =
    run_watch ~degraded:[ ("w", 0, "lost") ] [ base_rows; hot_rows; hot_rows ]
  in
  match r2.Fleet_watch.alerts with
  | [ a ] -> check cb "degraded baseline flagged" true a.Fleet_watch.degraded
  | l -> Alcotest.failf "expected 1 alert, got %d" (List.length l)

let test_watch_rule_grammar () =
  let line = "hot cohort=shift family=new-hot-path,edge-shift persist=3 min-share=0.05" in
  (match Fleet_watch.parse_rule line with
  | Error m -> Alcotest.failf "parse_rule: %s" m
  | Ok r ->
      check Alcotest.string "round-trips" line (Fleet_watch.rule_to_line r);
      check cb "families parsed" true
        (r.Fleet_watch.families
        = [ Fleet_watch.New_hot_path; Fleet_watch.Edge_shift ]));
  List.iter
    (fun bad ->
      check cb (Fmt.str "rejects %S" bad) true
        (Result.is_error (Fleet_watch.parse_rule bad)))
    [ ""; "cohort=c"; "x persist=0"; "x family=bogus"; "x frob"; "x min-share=2" ];
  match Fleet_watch.parse_rules "# standing rules\nhot cohort=w persist=2\n\ndrift\n" with
  | Ok [ _; _ ] -> ()
  | Ok l -> Alcotest.failf "expected 2 rules, got %d" (List.length l)
  | Error m -> Alcotest.failf "parse_rules: %s" m

(* ----------------------------- suite ------------------------------ *)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    Alcotest.test_case "jobs 1 = jobs 4 (segments + queries)" `Slow
      test_jobs_deterministic;
    Alcotest.test_case "warm rerun simulates nothing" `Slow test_warm_rerun;
    Alcotest.test_case "triage flags the drifting cohort" `Slow
      test_triage_drift;
    Alcotest.test_case "triage is silent on the steady cohort" `Slow
      test_triage_steady_clean;
    Alcotest.test_case "segment save/load roundtrip" `Quick
      test_segment_roundtrip;
    Alcotest.test_case "flipped byte rejected by digest" `Quick
      test_segment_tamper_rejected;
    Alcotest.test_case "junk segment file is a diagnostic" `Quick
      test_segment_junk_rejected;
    qcheck prop_segment_codec;
    Alcotest.test_case "merge sums rows and spans windows" `Quick
      test_merge_sums;
    Alcotest.test_case "compact then retain" `Quick test_compact_and_retain;
    Alcotest.test_case "query prefers merged segments" `Quick
      test_select_prefers_merged;
    Alcotest.test_case "noop fault plan is byte-identical" `Slow
      test_noop_plan_identity;
    Alcotest.test_case "crash + restart converges" `Slow
      test_crash_restart_converges;
    Alcotest.test_case "torn writes heal" `Slow test_torn_write_heals;
    Alcotest.test_case "corrupt segments quarantine + rebuild" `Slow
      test_seg_corrupt_quarantines;
    Alcotest.test_case "stragglers catch up" `Slow test_straggler_catches_up;
    Alcotest.test_case "doomed plan loses, clean rerun heals" `Slow
      test_doomed_loses_then_heals;
    Alcotest.test_case "jobs 1 = jobs 4 under injection" `Slow
      test_jobs_identity_under_faults;
    qcheck prop_crash_consistency;
    Alcotest.test_case "fleet chaos mini sweep" `Slow test_fleet_chaos_mini;
    Alcotest.test_case "watch fires once then dedups" `Quick
      test_watch_fires_once_then_dedups;
    Alcotest.test_case "watch suppresses flaps" `Quick
      test_watch_flap_suppressed;
    Alcotest.test_case "watch persist=1 fires immediately" `Quick
      test_watch_persist_one_is_immediate;
    Alcotest.test_case "watch annotates degraded data" `Quick
      test_watch_degraded_annotation;
    Alcotest.test_case "watch rule grammar round-trips" `Quick
      test_watch_rule_grammar;
  ]
