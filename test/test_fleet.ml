(* The fleet service, locked down the same way the experiment pool is:

   - determinism: a collector run at jobs=1 and jobs=4 produces
     byte-identical segment files, and identical query output (top,
     folded, diff) — and a warm rerun simulates nothing and leaves the
     store untouched;
   - the segment codec: save/load round-trips arbitrary segments
     (QCheck), a flipped byte is rejected by the digest before any row
     is believed, a forged future version and junk files come back as
     structured diagnostics;
   - compaction and retention: merge sums rows and spans windows,
     compact leaves exactly one merged segment per (cohort, window),
     retain drops the oldest windows;
   - triage golden: on the seeded drifting cohort the diff flags a new
     hot path in worker_b, the dispatch edge-flow shift and leaf's
     caller change; the steady control reports nothing. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let csl = Alcotest.(list string)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    let f = Filename.temp_file "pepsim-fleet" "" in
    Sys.remove f;
    incr n;
    f ^ ".d" ^ string_of_int !n

let read_all file = In_channel.with_open_bin file In_channel.input_all
let write_all file s = Out_channel.with_open_bin file (fun oc -> Out_channel.output_string oc s)

(* One small collector spec shared by the whole suite; every run of it
   must be bit-identical, so tests can compare stores freely. *)
let spec =
  Fleet_collector.default_spec ~size:150 ~seed:21 ~instances:2 ~windows:4
    Phased.drift

let store_fingerprint dir =
  List.sort compare
    (List.filter_map
       (fun f ->
         if Filename.check_suffix f ".seg" then
           Some (f, Digest.to_hex (Digest.string (read_all (Filename.concat dir f))))
         else None)
       (Array.to_list (Sys.readdir dir)))

let run_ok ?jobs dir =
  match Fleet_collector.run ?jobs ~dir spec with
  | Ok r -> r
  | Error e -> Alcotest.failf "fleet run: %a" Dcg.pp_parse_error e

let segments_of dir =
  let segs, diags = Fleet_store.load_all ~dir in
  List.iter (fun e -> Alcotest.failf "load_all: %a" Dcg.pp_parse_error e) diags;
  segs

(* ------------------- determinism & warm skip ---------------------- *)

let query_repr dir =
  let segs = segments_of dir in
  let shift = Fleet_query.select segs { Fleet_query.any with cohort = Some "shift" } in
  let top k = List.map (fun (l, s) -> Fmt.str "%s=%h" l s) (Fleet_query.top ~n:10 k segs) in
  let folded = Folded.to_lines (Fleet_query.folded `Paths (Fleet_query.view shift)) in
  let diff =
    Fleet_query.diff
      ~baseline:(Fleet_query.view (Fleet_query.select segs
        { Fleet_query.cohort = Some "shift"; lo = None; hi = Some 1 }))
      ~current:(Fleet_query.view (Fleet_query.select segs
        { Fleet_query.cohort = Some "shift"; lo = Some 2; hi = None }))
      ()
  in
  top `Paths @ top `Edges @ top `Dcg @ folded
  @ List.map Fleet_query.render_finding diff

let test_jobs_deterministic () =
  let d1 = fresh_dir () and d4 = fresh_dir () in
  let r1 = run_ok ~jobs:1 d1 and r4 = run_ok ~jobs:4 d4 in
  check ci "simulated" r1.Fleet_collector.simulated r4.Fleet_collector.simulated;
  check ci "snapshots" r1.Fleet_collector.snapshots r4.Fleet_collector.snapshots;
  check ci "samples" r1.Fleet_collector.samples_taken r4.Fleet_collector.samples_taken;
  Alcotest.(check (list (pair string string)))
    "segment files byte-identical" (store_fingerprint d1) (store_fingerprint d4);
  check csl "query output identical" (query_repr d1) (query_repr d4)

let test_warm_rerun () =
  let dir = fresh_dir () in
  let cold = run_ok dir in
  check cb "cold simulated" true (cold.Fleet_collector.simulated > 0);
  let before = store_fingerprint dir in
  let warm = run_ok ~jobs:3 dir in
  check ci "warm simulated" 0 warm.Fleet_collector.simulated;
  check ci "warm skipped"
    (cold.Fleet_collector.cohorts * spec.Fleet_collector.instances)
    warm.Fleet_collector.skipped;
  check ci "warm snapshots" 0 warm.Fleet_collector.snapshots;
  Alcotest.(check (list (pair string string)))
    "store untouched" before (store_fingerprint dir)

(* --------------------------- triage golden ------------------------ *)

let diff_of dir ~cohort =
  let segs = segments_of dir in
  Fleet_query.diff
    ~baseline:(Fleet_query.view (Fleet_query.select segs
      { Fleet_query.cohort = Some cohort; lo = None; hi = Some 1 }))
    ~current:(Fleet_query.view (Fleet_query.select segs
      { Fleet_query.cohort = Some cohort; lo = Some 2; hi = None }))
    ()

let shared_dir = lazy (let d = fresh_dir () in ignore (run_ok ~jobs:2 d); d)

let test_triage_drift () =
  let findings = diff_of (Lazy.force shared_dir) ~cohort:"shift" in
  let rendered = List.map Fleet_query.render_finding findings in
  let has prefix =
    check cb (Fmt.str "finding %s" prefix) true
      (List.exists
         (fun r -> String.length r >= String.length prefix
                   && String.sub r 0 (String.length prefix) = prefix)
         rendered)
  in
  (* the phase shift moves dispatch toward worker_b: its new paths get
     hot, dispatch's branch bias flips, and leaf's dominant caller
     moves — all three rule families must fire *)
  has "new-hot-path worker_b/path#";
  has "edge-shift dispatch/br#0";
  has "caller-change leaf: worker_a -> worker_b";
  (* and they are all the drift explains: nothing else regresses *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun r ->
      check cb (Fmt.str "finding %s names worker_b, dispatch or leaf" r) true
        (List.exists (contains r) [ "worker_b"; "dispatch"; "leaf" ]))
    rendered

let test_triage_steady_clean () =
  check ci "steady findings" 0
    (List.length (diff_of (Lazy.force shared_dir) ~cohort:"steady"))

(* ------------------------ segment codec --------------------------- *)

let seg ~cohort_name ~window ~origin rows =
  {
    Fleet_store.cohort =
      {
        Fleet.Cohort.name = cohort_name;
        workload = "drift";
        size = 10;
        seed = 7;
        config_key = "cfg";
        drift = Fleet.Drift.No_drift;
      };
    window = Fleet.Window.raw ~index:window ~start_cycle:(window * 100)
        ~end_cycle:((window + 1) * 100);
    origin;
    instances = 1;
    samples = List.length rows;
    methods = [| "alpha"; "beta" |];
    paths = rows;
    edges = List.map (fun (a, b, c) -> (a, b, c, c + 1)) rows;
    dcg = (if rows = [] then [] else [ (-1, 0, 5); (0, 1, 3) ]);
  }

let test_segment_roundtrip () =
  let dir = fresh_dir () in
  Alcotest.(check (result unit reject)) "open" (Ok ()) (Fleet_store.open_ dir);
  let s = seg ~cohort_name:"a" ~window:2 ~origin:3 [ (0, 1, 42); (1, 9, 7) ] in
  (match Fleet_store.save ~dir s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save: %a" Dcg.pp_parse_error e);
  match segments_of dir with
  | [ s' ] -> check cb "roundtrip equal" true (s = s')
  | l -> Alcotest.failf "expected 1 segment, got %d" (List.length l)

let test_segment_tamper_rejected () =
  let dir = fresh_dir () in
  ignore (Fleet_store.open_ dir);
  let s = seg ~cohort_name:"a" ~window:0 ~origin:0 [ (0, 3, 9) ] in
  ignore (Fleet_store.save ~dir s);
  let file = Fleet_store.filename ~dir s in
  let bytes = read_all file in
  let i = String.length bytes / 2 in
  let flipped = Bytes.of_string bytes in
  Bytes.set flipped i (Char.chr (Char.code bytes.[i] lxor 1));
  write_all file (Bytes.to_string flipped);
  let segs, diags = Fleet_store.load_all ~dir in
  check ci "no segment believed" 0 (List.length segs);
  check ci "one diagnostic" 1 (List.length diags)

let test_segment_junk_rejected () =
  let dir = fresh_dir () in
  ignore (Fleet_store.open_ dir);
  write_all (Filename.concat dir "junk.seg") "not a segment at all";
  let segs, diags = Fleet_store.load_all ~dir in
  check ci "no segment" 0 (List.length segs);
  check ci "diagnostic" 1 (List.length diags)

let gen_segment =
  let open QCheck in
  (* segment fields must be newline-free (the store refuses them) *)
  let str =
    map
      (String.map (fun c -> if c = '\n' then '_' else c))
      (string_gen_of_size (Gen.int_range 0 12) Gen.printable)
  in
  let rows3 = small_list (triple small_nat small_nat small_nat) in
  let rows4 =
    small_list (quad small_nat small_nat small_nat small_nat)
  in
  quad str (small_list str) rows3 rows4

let prop_segment_codec =
  QCheck.Test.make ~count:100 ~name:"segment codec: save/load = id, tamper rejected"
    gen_segment (fun (name, methods, rows3, rows4) ->
      let dir = fresh_dir () in
      ignore (Fleet_store.open_ dir);
      let s =
        {
          Fleet_store.cohort =
            {
              Fleet.Cohort.name = "c|" ^ name;
              workload = name;
              size = 3;
              seed = 1;
              config_key = "k=" ^ name;
              drift = Fleet.Drift.Phase_shift { at_window = 1; phase = 2 };
            };
          window = Fleet.Window.raw ~index:1 ~start_cycle:0 ~end_cycle:9;
          origin = 0;
          instances = 1;
          samples = List.length rows3;
          methods = Array.of_list methods;
          paths = rows3;
          edges = rows4;
          dcg = List.map (fun (a, b, c) -> (a - 1, b, c)) rows3;
        }
      in
      match Fleet_store.save ~dir s with
      | Error e -> QCheck.Test.fail_reportf "save: %a" Dcg.pp_parse_error e
      | Ok () -> (
          let file = Fleet_store.filename ~dir s in
          let bytes = read_all file in
          match Fleet_store.decode ~file bytes with
          | Error e ->
              QCheck.Test.fail_reportf "decode: %a" Dcg.pp_parse_error e
          | Ok s' ->
              if s <> s' then QCheck.Test.fail_report "roundtrip mismatch";
              let i = String.length bytes / 2 in
              let t = Bytes.of_string bytes in
              Bytes.set t i (Char.chr (Char.code bytes.[i] lxor (1 lsl (i mod 8))));
              if Bytes.to_string t = bytes then true
              else
                match Fleet_store.decode ~file (Bytes.to_string t) with
                | Ok _ -> QCheck.Test.fail_report "tampered bytes accepted"
                | Error _ -> true))

(* --------------------- merge / compact / retain ------------------- *)

let test_merge_sums () =
  let a = seg ~cohort_name:"m" ~window:0 ~origin:0 [ (0, 1, 10) ] in
  let b = seg ~cohort_name:"m" ~window:1 ~origin:1 [ (0, 1, 5); (1, 2, 2) ] in
  let m = Fleet_store.merge [ a; b ] in
  check ci "origin" (-1) m.Fleet_store.origin;
  check ci "instances summed" 2 m.Fleet_store.instances;
  check ci "window lo" 0 m.Fleet_store.window.Fleet.Window.lo;
  check ci "window hi" 1 m.Fleet_store.window.Fleet.Window.hi;
  check cb "paths summed" true
    (List.mem (0, 1, 15) m.Fleet_store.paths
     && List.mem (1, 2, 2) m.Fleet_store.paths);
  check cb "mixed cohorts rejected" true
    (try
       ignore (Fleet_store.merge [ a; seg ~cohort_name:"x" ~window:0 ~origin:0 [] ]);
       false
     with Invalid_argument _ -> true)

let test_compact_and_retain () =
  let dir = fresh_dir () in
  ignore (Fleet_store.open_ dir);
  List.iter
    (fun s -> match Fleet_store.save ~dir s with
      | Ok () -> ()
      | Error e -> Alcotest.failf "save: %a" Dcg.pp_parse_error e)
    [
      seg ~cohort_name:"c" ~window:0 ~origin:0 [ (0, 1, 1) ];
      seg ~cohort_name:"c" ~window:0 ~origin:1 [ (0, 1, 2) ];
      seg ~cohort_name:"c" ~window:1 ~origin:0 [ (0, 1, 4) ];
      seg ~cohort_name:"c" ~window:1 ~origin:1 [ (0, 1, 8) ];
    ];
  let written, deleted, errs = Fleet_store.compact ~dir in
  check ci "no errors" 0 (List.length errs);
  check ci "merged written" 2 written;
  check ci "raws deleted" 4 deleted;
  let segs = segments_of dir in
  check ci "two merged remain" 2 (List.length segs);
  List.iter
    (fun (s : Fleet_store.segment) ->
      check ci "merged origin" (-1) s.Fleet_store.origin;
      check ci "merged instances" 2 s.Fleet_store.instances)
    segs;
  (* retention: keep only the newest window *)
  check ci "retain deletes" 1 (Fleet_store.retain ~dir ~max_windows:1);
  match segments_of dir with
  | [ s ] -> check ci "newest kept" 1 s.Fleet_store.window.Fleet.Window.lo
  | l -> Alcotest.failf "expected 1 segment, got %d" (List.length l)

let test_select_prefers_merged () =
  let raw = seg ~cohort_name:"c" ~window:0 ~origin:0 [ (0, 1, 1) ] in
  let merged = { (Fleet_store.merge [ raw ]) with Fleet_store.instances = 2 } in
  let picked = Fleet_query.select [ raw; merged ] Fleet_query.any in
  check ci "raw shadowed" 1 (List.length picked);
  check ci "merged picked" (-1) (List.hd picked).Fleet_store.origin

(* ----------------------------- suite ------------------------------ *)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    Alcotest.test_case "jobs 1 = jobs 4 (segments + queries)" `Slow
      test_jobs_deterministic;
    Alcotest.test_case "warm rerun simulates nothing" `Slow test_warm_rerun;
    Alcotest.test_case "triage flags the drifting cohort" `Slow
      test_triage_drift;
    Alcotest.test_case "triage is silent on the steady cohort" `Slow
      test_triage_steady_clean;
    Alcotest.test_case "segment save/load roundtrip" `Quick
      test_segment_roundtrip;
    Alcotest.test_case "flipped byte rejected by digest" `Quick
      test_segment_tamper_rejected;
    Alcotest.test_case "junk segment file is a diagnostic" `Quick
      test_segment_junk_rejected;
    qcheck prop_segment_codec;
    Alcotest.test_case "merge sums rows and spans windows" `Quick
      test_merge_sums;
    Alcotest.test_case "compact then retain" `Quick test_compact_and_retain;
    Alcotest.test_case "query prefers merged segments" `Quick
      test_select_prefers_merged;
  ]
