(* Partial-path reconstruction, edge-based path estimation, and the
   hardware path-table comparator. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* --- partial reconstruction ---------------------------------------- *)

let test_partial_roundtrip () =
  (* every prefix of every path must be recoverable from its partial sum *)
  let cfg =
    Cfg.create ~name:"m" ~entry:0 ~exit_:5
      [|
        Cfg.Jump 1;
        Cfg.Branch { branch = 0; taken = 2; not_taken = 5 };
        Cfg.Branch { branch = 1; taken = 3; not_taken = 4 };
        Cfg.Jump 1;
        Cfg.Jump 1;
        Cfg.Return;
      |]
  in
  let numbering = Numbering.ball_larus (Dag.build Dag.Loop_header cfg) in
  for path_id = 0 to Numbering.n_paths numbering - 1 do
    let full = Reconstruct.dag_path numbering path_id in
    (* walk prefixes *)
    let rec prefixes acc_sum acc_rev = function
      | [] -> ()
      | (e : Dag.edge) :: rest ->
          let acc_sum = acc_sum + Numbering.value numbering e in
          let acc_rev = e :: acc_rev in
          let recovered =
            Reconstruct.partial_dag_path numbering ~stop_node:e.edst acc_sum
          in
          if
            List.map (fun (x : Dag.edge) -> x.idx) recovered
            <> List.rev_map (fun (x : Dag.edge) -> x.idx) acc_rev
          then Alcotest.failf "prefix mismatch on path %d" path_id;
          prefixes acc_sum acc_rev rest
    in
    prefixes 0 [] full
  done

let test_partial_rejects_garbage () =
  let cfg =
    Cfg.create ~name:"m" ~entry:0 ~exit_:3
      [|
        Cfg.Jump 1;
        Cfg.Branch { branch = 0; taken = 2; not_taken = 3 };
        Cfg.Jump 3;
        Cfg.Return;
      |]
  in
  let numbering = Numbering.ball_larus (Dag.build Dag.Back_edge cfg) in
  (* node 2 is reached only with remaining sum 0 *)
  match Reconstruct.partial_dag_path numbering ~stop_node:2 99 with
  | (_ : Dag.edge list) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_partial_on_workload =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:20 ~name:"partial reconstruction on synthetic"
       QCheck2.Gen.(int_range 1 1_000_000)
       (fun seed ->
         let p = Compile.pdef (Synthetic.program ~seed ~n_methods:2 ()) in
         Program.iter_methods
           (fun _ m ->
             let cfg = To_cfg.cfg m in
             let numbering = Numbering.ball_larus (Dag.build Dag.Loop_header cfg) in
             let n = Numbering.n_paths numbering in
             if n <= 200 then
               for path_id = 0 to n - 1 do
                 let full = Reconstruct.dag_path numbering path_id in
                 (* check the longest proper prefix *)
                 match List.rev full with
                 | [] -> ()
                 | last :: rev_prefix ->
                     let prefix = List.rev rev_prefix in
                     let sum = Reconstruct.id_of_dag_path numbering prefix in
                     let got =
                       Reconstruct.partial_dag_path numbering
                         ~stop_node:last.Dag.esrc sum
                     in
                     if
                       List.map (fun (x : Dag.edge) -> x.idx) got
                       <> List.map (fun (x : Dag.edge) -> x.idx) prefix
                     then Alcotest.fail "prefix mismatch"
               done)
           p;
         true))

(* --- path estimation from edge profiles ----------------------------- *)

let biased_loop_numbering () =
  (* loop whose body branch is 90/10: path through the hot arm must be
     ranked first *)
  let cfg =
    Cfg.create ~name:"m" ~entry:0 ~exit_:5
      [|
        Cfg.Jump 1;
        Cfg.Branch { branch = 0; taken = 2; not_taken = 5 };
        Cfg.Branch { branch = 1; taken = 3; not_taken = 4 };
        Cfg.Jump 1;
        Cfg.Jump 1;
        Cfg.Return;
      |]
  in
  let profile = Edge_profile.create () in
  Edge_profile.add profile 0 ~taken:true 100;
  Edge_profile.add profile 0 ~taken:false 1;
  Edge_profile.add profile 1 ~taken:true 90;
  Edge_profile.add profile 1 ~taken:false 10;
  (Numbering.ball_larus (Dag.build Dag.Loop_header cfg), profile)

let test_estimate_ranks_hot_arm () =
  let numbering, profile = biased_loop_numbering () in
  match Path_estimate.top_paths ~k:8 numbering profile with
  | (top_id, top_w) :: rest ->
      check cb "weights decreasing" true
        (List.for_all (fun (_, w) -> w <= top_w) rest);
      (* the top path must traverse the 90% arm (branch 1 taken) *)
      let edges = Reconstruct.cfg_edges numbering top_id in
      let takes_hot =
        List.exists
          (fun (e : Cfg.edge) -> e.attr = Cfg.Taken 1)
          edges
      in
      check cb "hot arm ranked first" true takes_hot
  | [] -> Alcotest.fail "no paths returned"

let test_estimate_bounded () =
  let numbering, profile = biased_loop_numbering () in
  let paths = Path_estimate.top_paths ~k:3 numbering profile in
  check cb "k respected" true (List.length paths <= 3);
  List.iter
    (fun (id, w) ->
      check cb "id in range" true (id >= 0 && id < Numbering.n_paths numbering);
      check cb "weight positive" true (w > 0.))
    paths

let test_estimate_finds_true_hot_paths () =
  (* on a benchmark with independent branches, estimation from a perfect
     edge profile should find most of the true hot flow *)
  let program = Workload.program ~size:6 (Suite.find "jess") in
  let st = Machine.create ~seed:4 program in
  let perfect = Profiler.perfect_path st in
  ignore (Interp.run (Interp.compose (Tick.hooks ()) perfect.Profiler.hooks) st);
  let edges =
    Profiler.edges_of_paths ~n_methods:(Program.n_methods program)
      perfect.Profiler.plans perfect.Profiler.table
  in
  let estimated =
    Path_estimate.table ~k:256 ~plans:perfect.Profiler.plans edges
  in
  let n_branches =
    Profiler.n_branches_resolver perfect.Profiler.plans perfect.Profiler.table
  in
  let acc =
    Accuracy.wall_path_accuracy ~n_branches ~actual:perfect.Profiler.table
      ~estimated ()
  in
  check cb "estimation finds hot flow" true (acc > 0.7)

(* --- hardware path table -------------------------------------------- *)

let test_hw_profiler_counts () =
  let program = Workload.program ~size:4 (Suite.find "compress") in
  (* ground truth *)
  let st0 = Machine.create ~seed:6 program in
  let perfect = Profiler.perfect_path st0 in
  ignore (Interp.run (Interp.compose (Tick.hooks ()) perfect.Profiler.hooks) st0);
  (* hardware table big enough to hold everything exactly *)
  let st = Machine.create ~seed:6 program in
  let hw =
    Hw_profiler.create ~table_size:65536
      ~number:(fun _ dag -> Numbering.ball_larus dag)
      st
  in
  ignore (Interp.run (Interp.compose (Tick.hooks ()) (Hw_profiler.hooks hw)) st);
  let seen, evictions = Hw_profiler.stats hw in
  check ci "sees every path end" (Path_profile.table_total perfect.Profiler.table) seen;
  check cb "few collisions at this size" true (evictions < seen / 100);
  (* with no aliasing pressure, hot-path counts match ground truth *)
  let snap = Hw_profiler.to_path_profile hw in
  Array.iteri
    (fun m prof ->
      Path_profile.iter
        (fun (e : Path_profile.entry) ->
          match Path_profile.find prof e.path_id with
          | Some got ->
              check cb "count close" true
                (abs (got.Path_profile.count - e.count) <= e.count / 10 + 2)
          | None -> Alcotest.fail "hot path evicted from a huge table")
        perfect.Profiler.table.(m))
    snap

let test_hw_small_table_degrades () =
  let program = Workload.program ~size:20 (Suite.find "jython") in
  let accuracy table_size =
    let st0 = Machine.create ~seed:6 program in
    let perfect = Profiler.perfect_path st0 in
    ignore (Interp.run (Interp.compose (Tick.hooks ()) perfect.Profiler.hooks) st0);
    let st = Machine.create ~seed:6 program in
    let hw =
      Hw_profiler.create ~table_size
        ~number:(fun _ dag -> Numbering.ball_larus dag)
        st
    in
    ignore (Interp.run (Interp.compose (Tick.hooks ()) (Hw_profiler.hooks hw)) st);
    let n_branches =
      Profiler.n_branches_resolver perfect.Profiler.plans perfect.Profiler.table
    in
    Accuracy.wall_path_accuracy ~n_branches ~actual:perfect.Profiler.table
      ~estimated:(Hw_profiler.to_path_profile hw) ()
  in
  let small = accuracy 64 and big = accuracy 16384 in
  check cb "bigger table at least as accurate" true (big +. 0.02 >= small);
  check cb "big table accurate" true (big > 0.9)

let suite =
  [
    Alcotest.test_case "partial roundtrip" `Quick test_partial_roundtrip;
    Alcotest.test_case "partial rejects garbage" `Quick test_partial_rejects_garbage;
    test_partial_on_workload;
    Alcotest.test_case "estimate ranks hot arm" `Quick test_estimate_ranks_hot_arm;
    Alcotest.test_case "estimate bounded" `Quick test_estimate_bounded;
    Alcotest.test_case "estimate finds hot paths" `Quick test_estimate_finds_true_hot_paths;
    Alcotest.test_case "hw table counts" `Quick test_hw_profiler_counts;
    Alcotest.test_case "hw small table degrades" `Quick test_hw_small_table_degrades;
  ]
