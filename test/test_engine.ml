(* Differential testing of the closure-threaded engine (Codegen) against
   the interpreter oracle (Interp), plus the engine-specific contracts:
   inline-cache invalidation on recompile/set_speed, hook specialization,
   and steady-state allocation behaviour. *)

open Ast

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let csl = Alcotest.(list string)

(* ------------------------- differential suite ------------------------- *)

let pep_profiling =
  Exp_harness.Pep_profiled
    {
      sampling = Sampling.pep ~samples:64 ~stride:17;
      zero = `Hottest;
      numbering = `Smart;
    }

let with_engine engine config = { config with Exp_harness.engine }
let cfg profiling = { Exp_harness.default with Exp_harness.profiling }

let configs =
  [
    ("Base", cfg Exp_harness.Base);
    ("Pep_profiled", cfg pep_profiling);
    ("Perfect_path", cfg Exp_harness.Perfect_path);
    ("Classic_blpp", cfg Exp_harness.Classic_blpp);
  ]

let meas_pp ppf (m : Exp_harness.measurement) =
  Fmt.pf ppf "{iter1=%d; iter2=%d; compile=%d; checksum=%d}" m.iter1 m.iter2
    m.compile m.checksum

let meas : Exp_harness.measurement Alcotest.testable =
  Alcotest.testable meas_pp ( = )

(* Every observable of a run: the measurement and every collected
   profile, serialized.  Two engines must agree on all of it. *)
let observables (r : Exp_harness.run) =
  let profile_lines =
    (match r.pep with
    | Some p ->
        Path_profile.to_lines p.Pep.paths @ Edge_profile.to_lines p.Pep.edges
    | None -> [])
    @ (match r.ppaths with
      | Some p -> Path_profile.to_lines p.Profiler.table
      | None -> [])
    @ Edge_profile.to_lines (Driver.baseline_profile r.driver)
  in
  (r.meas, profile_lines)

(* Oracle-vs-threaded differential over an arbitrary workload (the
   wgen suite reuses this for generated specs). *)
let diff_of ?(seed = 11) (w : Workload.t) () =
  let name = w.Workload.name in
  let size = max 4 (min 30 w.Workload.default_size) in
  let env = Exp_harness.make_env ~size ~seed w in
  List.iter
    (fun (cname, config) ->
      let oracle = Exp_harness.replay env (with_engine `Oracle config) in
      let threaded = Exp_harness.replay env (with_engine `Threaded config) in
      let om, op = observables oracle and tm, tp = observables threaded in
      check meas (name ^ "/" ^ cname ^ " measurement") om tm;
      check csl (name ^ "/" ^ cname ^ " profiles") op tp)
    configs

let diff_workload name = diff_of (Suite.find name)

(* The adaptive system promotes methods mid-execution (set_speed and
   recompilation from a timer-tick hook while frames of the method are
   live); both engines must agree there too, including on the advice the
   warmup produces. *)
let test_adaptive_differential () =
  List.iter
    (fun name ->
      let w = Suite.find name in
      let size = max 4 (min 25 w.Workload.default_size) in
      let oenv =
        Exp_harness.make_env
          ~config:(with_engine `Oracle Exp_harness.default)
          ~size ~seed:5 w
      in
      let tenv =
        Exp_harness.make_env
          ~config:(with_engine `Threaded Exp_harness.default)
          ~size ~seed:5 w
      in
      check
        Alcotest.(array int)
        (name ^ " advice levels") oenv.advice.Advice.levels
        tenv.advice.Advice.levels;
      check csl (name ^ " advice profile")
        (Edge_profile.to_lines oenv.advice.Advice.profile)
        (Edge_profile.to_lines tenv.advice.Advice.profile);
      List.iter
        (fun (label, profiling) ->
          check ci
            (Fmt.str "%s adaptive total (%s)" name label)
            (Exp_harness.adaptive_total
               ~config:(with_engine `Oracle (cfg profiling))
               ~trial:3 oenv)
            (Exp_harness.adaptive_total
               ~config:(with_engine `Threaded (cfg profiling))
               ~trial:3 tenv))
        [ ("plain", Exp_harness.Base); ("pep", pep_profiling) ])
    [ "compress"; "jython" ]

(* Body transformations (inlining, unrolling) recompile methods into
   fresh compiled forms; the engine must pick up the new bodies. *)
let test_transform_differential () =
  List.iter
    (fun name ->
      let w = Suite.find name in
      let size = max 4 (min 25 w.Workload.default_size) in
      let env = Exp_harness.make_env ~size ~seed:7 w in
      let transformed engine =
        {
          (cfg pep_profiling) with
          Exp_harness.inline = true;
          unroll = true;
          engine;
        }
      in
      let oracle = Exp_harness.replay env (transformed `Oracle) in
      let threaded = Exp_harness.replay env (transformed `Threaded) in
      let om, op = observables oracle and tm, tp = observables threaded in
      check meas (name ^ " transformed measurement") om tm;
      check csl (name ^ " transformed profiles") op tp)
    [ "db"; "pmd" ]

(* --------------------- engine-specific contracts --------------------- *)

let tiny_defs body_ret =
  [
    mdef "main" ~params:[]
      [
        set "s" (i 0);
        for_ "k" (i 0) (i 40)
          [
            if_ (eq (band (v "k") (i 3)) (i 0))
              [ set "s" (add (v "s") (call "f" [ v "k"; v "s" ])) ]
              [ set "s" (add (v "s") (i 1)) ];
          ];
        ret (v "s");
      ];
    mdef "f" ~params:[ "a"; "b" ] body_ret;
  ]

let tiny_program ?(body_ret = [ ret (add (v "a") (v "b")) ]) () =
  Compile.program ~name:"t" ~main:"main" (tiny_defs body_ret)

let test_engine_matches_oracle () =
  let p = tiny_program () in
  let st_o = Machine.create ~seed:3 p and st_t = Machine.create ~seed:3 p in
  let r_o = Interp.run Interp.no_hooks st_o in
  let r_t = Codegen.run (Codegen.create st_t) in
  check ci "result" r_o r_t;
  check ci "cycles" st_o.Machine.cycles st_t.Machine.cycles

let test_set_speed_invalidates () =
  let p = tiny_program () in
  let st_o = Machine.create ~seed:3 p and st_t = Machine.create ~seed:3 p in
  let eng = Codegen.create st_t in
  ignore (Interp.run Interp.no_hooks st_o);
  ignore (Codegen.run eng);
  let run1 = st_t.Machine.cycles in
  let fidx = Machine.index st_t "f" in
  Machine.set_speed st_o fidx ~percent:700;
  Machine.set_speed st_t fidx ~percent:700;
  let r_o = Interp.run Interp.no_hooks st_o in
  let r_t = Codegen.run eng in
  check ci "result after set_speed" r_o r_t;
  check ci "cycles after set_speed" st_o.Machine.cycles st_t.Machine.cycles;
  check cb "speed change visible in cycles" true
    (st_t.Machine.cycles - run1 <> run1)

let test_recompile_invalidates () =
  let p = tiny_program () in
  let replacement =
    Program.find
      (tiny_program ~body_ret:[ ret (mul (sub (v "a") (v "b")) (i 3)) ] ())
      "f"
  in
  let st_o = Machine.create ~seed:3 p and st_t = Machine.create ~seed:3 p in
  let eng = Codegen.create st_t in
  let before_o = Interp.run Interp.no_hooks st_o in
  let before_t = Codegen.run eng in
  check ci "result before recompile" before_o before_t;
  let fidx = Machine.index st_t "f" in
  Machine.recompile st_o fidx replacement;
  Machine.recompile st_t fidx replacement;
  let r_o = Interp.run Interp.no_hooks st_o in
  let r_t = Codegen.run eng in
  check cb "recompile changed behaviour" true (r_t <> before_t);
  check ci "result after recompile" r_o r_t;
  check ci "cycles after recompile" st_o.Machine.cycles st_t.Machine.cycles

(* Hook specialization: the hooked variant must deliver the same events,
   in the same order, as the oracle. *)
let test_hook_parity () =
  let p = tiny_program () in
  let trace_hooks trace =
    {
      Interp.on_entry =
        Some
          (fun _ (f : Interp.frame) ->
            trace := (`E, f.Interp.fmeth, 0, 0) :: !trace);
      on_exit =
        Some
          (fun _ (f : Interp.frame) ->
            trace := (`X, f.Interp.fmeth, 0, 0) :: !trace);
      on_edge =
        Some
          (fun _ (f : Interp.frame) ~src ~idx ~dst:_ ->
            trace := (`D, f.Interp.fmeth, src, idx) :: !trace);
      on_yieldpoint =
        Some
          (fun _ (f : Interp.frame) blk ->
            trace := (`Y, f.Interp.fmeth, blk, 0) :: !trace);
    }
  in
  let st_o = Machine.create ~tick_offset:50 ~seed:3 p
  and st_t = Machine.create ~tick_offset:50 ~seed:3 p in
  let tr_o = ref [] and tr_t = ref [] in
  let r_o = Interp.run (trace_hooks tr_o) st_o in
  let r_t = Codegen.run (Codegen.create ~hooks:(trace_hooks tr_t) st_t) in
  check ci "result" r_o r_t;
  check ci "cycles" st_o.Machine.cycles st_t.Machine.cycles;
  check cb "hook event sequences identical" true (!tr_o = !tr_t);
  check cb "events seen" true (List.length !tr_o > 50)

(* Switching hooks on an existing engine re-specializes: bare runs must
   not fire hooks, hooked runs must. *)
let test_hook_switch () =
  let p = tiny_program () in
  let st = Machine.create ~seed:3 p in
  let eng = Codegen.create st in
  let r1 = Codegen.run eng in
  let edges = ref 0 in
  Codegen.set_hooks eng
    {
      Interp.no_hooks with
      on_edge = Some (fun _ _ ~src:_ ~idx:_ ~dst:_ -> incr edges);
    };
  let r2 = Codegen.run eng in
  check ci "same result under hooks" r1 r2;
  check cb "hooks fired" true (!edges > 0);
  let fired = !edges in
  Codegen.set_hooks eng Interp.no_hooks;
  let r3 = Codegen.run eng in
  check ci "same result bare again" r1 r3;
  check ci "bare run fires no hooks" fired !edges

(* ------------------------- PIC tier ladder ------------------------- *)

(* A call site climbs mono -> poly -> megamorphic as the callee is
   recompiled under it: every [set_speed] bumps the callee's generation
   stamp, so the next dispatch through the site misses its cache.  Eight
   distinct generations flow through one site, the site's tier is
   observed at each rung, and a long stable megamorphic run earns the
   demotion back to monomorphic.  The oracle must agree bit-for-bit at
   every step. *)
let pic_program () =
  Compile.program ~name:"pic" ~main:"main"
    [
      mdef "main" ~params:[]
        [
          set "s" (i 0);
          for_ "k" (i 0) (i 40) [ set "s" (add (v "s") (call "f" [ v "k" ])) ];
          ret (v "s");
        ];
      mdef "f" ~params:[ "a" ] [ ret (add (mul (v "a") (i 3)) (i 1)) ];
    ]

let test_pic_tier_ladder () =
  let p = pic_program () in
  let st_o = Machine.create ~seed:3 p and st_t = Machine.create ~seed:3 p in
  let tel = Telemetry.create () in
  let eng = Codegen.create ~telemetry:tel st_t in
  let fidx = Machine.index st_t "f" in
  let agree label =
    let r_o = Interp.run Interp.no_hooks st_o in
    let r_t = Codegen.run eng in
    check ci (label ^ " result") r_o r_t;
    check ci (label ^ " cycles") st_o.Machine.cycles st_t.Machine.cycles
  in
  let bump pct =
    Machine.set_speed st_o fidx ~percent:pct;
    Machine.set_speed st_t fidx ~percent:pct
  in
  let tiers () = Codegen.ic_tiers eng "main" in
  agree "gen 1";
  check csl "fresh site is monomorphic" [ "mono" ] (tiers ());
  (* three more generations: the 4th mono miss promotes to poly *)
  for g = 2 to 4 do
    bump (100 + (10 * g));
    agree (Fmt.str "gen %d" g)
  done;
  check csl "4 mono misses promote to poly" [ "poly" ] (tiers ());
  (* four generations beyond the 4-way cache: promote to megamorphic *)
  for g = 5 to 8 do
    bump (100 + (10 * g));
    agree (Fmt.str "gen %d" g)
  done;
  check csl "4 poly misses promote to mega" [ "mega" ] (tiers ());
  (* no further recompiles: stable same-generation hits accumulate
     across runs until the demotion threshold *)
  agree "stable 1";
  agree "stable 2";
  check csl "stable megamorphic run demotes to mono" [ "mono" ] (tiers ());
  let m = Telemetry.metrics tel in
  let cval name = Metrics.value (Metrics.counter m name) in
  check cb "promote_poly counted" true (cval "engine.pic.promote_poly" >= 1);
  check cb "promote_mega counted" true (cval "engine.pic.promote_mega" >= 1);
  check cb "demote counted" true (cval "engine.pic.demote" >= 1)

(* ---------------------- superinstruction fusion ---------------------- *)

(* A program whose bytecode exercises the block-transfer patterns of the
   fusion catalog: the switch header ends [Load; Jmp] (ljmp), its
   compare chain is [Const; Cmp; Br] (kcmpbr), if-arm stores end
   [Store; Jmp] to the join (stjmp), and the for-latch is [Inc; Jmp]
   (incjmp).  Fused all-hot, the engine must stay bit-identical to the
   oracle, and the compiled tables must validate. *)
let fusion_program () =
  Compile.program ~name:"fuse" ~main:"main"
    [
      mdef "main" ~params:[]
        [
          set "s" (i 1);
          set "x" (i 3);
          for_ "k" (i 0) (i 60)
            [
              switch (v "x")
                [
                  (0, [ set "s" (add (v "s") (v "k")) ]);
                  (1, [ set "s" (bxor (v "s") (i 21)) ]);
                  (2, [ set "s" (add (v "s") (i 3)) ]);
                  (3, [ set "s" (sub (v "s") (i 1)) ]);
                ]
                [ set "s" (add (v "s") (i 7)) ];
              if_ (eq (band (v "k") (i 3)) (i 0))
                [ set "x" (add (v "x") (i 1)) ]
                [ set "x" (sub (v "x") (v "k")) ];
              set "x" (band (v "x") (i 7));
            ];
          set "s" (add (v "s") (v "x"));
          ret (v "s");
        ];
    ]

let all_hot_engine ?tiers st =
  let eng = Codegen.create ?tiers st in
  for midx = 0 to Program.n_methods st.Machine.program - 1 do
    let m = Program.method_of_index st.Machine.program midx in
    Codegen.set_hot_blocks eng midx
      (Array.make (Array.length m.Method.blocks) true)
  done;
  eng

let test_fusion_patterns_differential () =
  let p = fusion_program () in
  let st_o = Machine.create ~seed:3 p
  and st_f = Machine.create ~seed:3 p
  and st_n = Machine.create ~seed:3 p in
  let fused = all_hot_engine st_f in
  let nofuse =
    all_hot_engine
      ~tiers:{ Codegen.default_tiers with Codegen.fuse = false }
      st_n
  in
  let r_o = Interp.run Interp.no_hooks st_o in
  let r_f = Codegen.run fused in
  let r_n = Codegen.run nofuse in
  check ci "fused result" r_o r_f;
  check ci "nofuse result" r_o r_n;
  check ci "fused cycles" st_o.Machine.cycles st_f.Machine.cycles;
  check ci "nofuse cycles" st_o.Machine.cycles st_n.Machine.cycles;
  (* the compiled tables really contain the block-transfer patterns *)
  let names =
    List.concat_map
      (fun midx ->
        List.map
          (fun (e : Fusion.entry) -> Fusion.pattern_name e.Fusion.fpattern)
          (Codegen.fused_entries fused midx))
      (List.init (Program.n_methods p) Fun.id)
  in
  List.iter
    (fun pat ->
      check cb (pat ^ " compiled") true (List.mem pat names))
    [ "kcmpbr-eq"; "ljmp"; "stjmp"; "incjmp" ];
  check cb "nothing fused with the tier off" true
    (List.for_all
       (fun midx -> Codegen.fused_entries nofuse midx = [])
       (List.init (Program.n_methods p) Fun.id));
  (* every planned table passes the independent validator *)
  Program.iter_methods
    (fun midx m ->
      let witness = Codegen.fusion_witness fused midx in
      match Pep_check.errors (Pep_check.validate_fusion ~witness m) with
      | [] -> ()
      | d :: _ ->
          Alcotest.failf "%s: fusion table rejected: %a" m.Method.name
            Pep_check.pp_diagnostic d)
    p

(* ------------------------- allocation tests ------------------------- *)

let calls_program ~argc =
  let params = List.init argc (fun j -> Fmt.str "p%d" j) in
  let args k = List.init argc (fun j -> add k (i j)) in
  Compile.program ~name:"alloc" ~main:"main"
    [
      mdef "main" ~params:[]
        [
          set "s" (i 0);
          for_ "k" (i 0) (i 1000) [ set "s" (call "leaf" (args (v "k"))) ];
          ret (v "s");
        ];
      mdef "leaf" ~params
        [ ret (List.fold_left (fun acc q -> add acc (v q)) (i 0) params) ];
    ]

(* The oracle allocates a locals array per invocation (inherent to the
   reference semantics) but must not also copy the arguments: growing a
   callee from 2 to 10 parameters adds 8 words of locals per call, and
   with an [Array.sub] per call it would add ~16.  Bound the growth
   strictly under the with-copy slope. *)
let oracle_words_per_call argc =
  let st = Machine.create ~seed:1 (calls_program ~argc) in
  ignore (Interp.run Interp.no_hooks st);
  let st = Machine.create ~seed:1 (calls_program ~argc) in
  let w0 = Gc.minor_words () in
  ignore (Interp.run Interp.no_hooks st);
  (Gc.minor_words () -. w0) /. 1000.

let test_oracle_no_arg_copy () =
  let slope = oracle_words_per_call 10 -. oracle_words_per_call 2 in
  check cb
    (Fmt.str "oracle per-call allocation slope %.1f words < 12" slope)
    true
    (slope < 12.0)

let test_threaded_steady_state_alloc_free () =
  let st = Machine.create ~seed:1 (calls_program ~argc:6) in
  let eng = Codegen.create st in
  ignore (Codegen.run eng) (* warm-up: translation + pool growth *);
  let w0 = Gc.minor_words () in
  ignore (Codegen.run eng);
  let words = Gc.minor_words () -. w0 in
  check cb
    (Fmt.str "threaded steady-state allocation %.0f words < 256" words)
    true (words < 256.0)

let suite =
  List.map
    (fun name ->
      Alcotest.test_case ("differential: " ^ name) `Quick (diff_workload name))
    Suite.names
  @ [
      Alcotest.test_case "differential: adaptive promotion" `Quick
        test_adaptive_differential;
      Alcotest.test_case "differential: inline+unroll" `Quick
        test_transform_differential;
      Alcotest.test_case "engine matches oracle (tiny)" `Quick
        test_engine_matches_oracle;
      Alcotest.test_case "set_speed invalidates inline caches" `Quick
        test_set_speed_invalidates;
      Alcotest.test_case "recompile invalidates inline caches" `Quick
        test_recompile_invalidates;
      Alcotest.test_case "hook event parity" `Quick test_hook_parity;
      Alcotest.test_case "hook respecialization" `Quick test_hook_switch;
      Alcotest.test_case "PIC tier ladder (mono/poly/mega/demote)" `Quick
        test_pic_tier_ladder;
      Alcotest.test_case "fusion patterns differential" `Quick
        test_fusion_patterns_differential;
      Alcotest.test_case "oracle: no per-call argument copy" `Quick
        test_oracle_no_arg_copy;
      Alcotest.test_case "threaded: steady state allocation-free" `Quick
        test_threaded_steady_state_alloc_free;
    ]
