(* Tests for the bytecode substrate: compilation from the AST, the
   verifier, CFG construction, and the parser/printer round trip. *)

open Ast

let check = Alcotest.check
let ci = Alcotest.int

let compile_one ?(params = []) body = Compile.method_ (mdef "m" ~params body)

let test_compile_shapes () =
  let m = compile_one [ ret (i 42) ] in
  check ci "entry is 0" 0 m.Method.entry;
  check ci "exit is 1" 1 m.Method.exit_;
  (match m.Method.blocks.(m.Method.entry).term with
  | Method.Jmp _ -> ()
  | _ -> Alcotest.fail "entry must jump");
  (match m.Method.blocks.(m.Method.exit_).term with
  | Method.Ret -> ()
  | _ -> Alcotest.fail "exit must return");
  (* entry is never a branch target *)
  Array.iter
    (fun (b : Method.block) ->
      match b.term with
      | Method.Jmp d -> check Alcotest.bool "no jump to entry" true (d <> 0)
      | Method.Br { on_true; on_false; _ } ->
          check Alcotest.bool "no branch to entry" true
            (on_true <> 0 && on_false <> 0)
      | Method.Ret -> ())
    m.Method.blocks

let test_compile_if () =
  let m =
    compile_one [ if_ (lt (v "x") (i 1)) [ set "y" (i 1) ] [ set "y" (i 2) ]; ret (v "y") ]
  in
  let branches = Method.n_branches m in
  check ci "one branch" 1 branches

let test_compile_loops () =
  let m =
    compile_one
      [
        for_ "k" (i 0) (i 10) [ set "s" (add (v "s") (v "k")) ];
        while_ (gt (v "s") (i 3)) [ set "s" (sub (v "s") (i 2)) ];
        dowhile [ set "s" (add (v "s") (i 1)) ] (lt (v "s") (i 5));
        ret (v "s");
      ]
  in
  let cfg = To_cfg.cfg m in
  let loops = Loops.compute cfg in
  check ci "three loops" 3 (List.length (Loops.headers loops));
  check Alcotest.bool "reducible" true (Loops.is_reducible loops)

let test_break_continue () =
  let m =
    compile_one
      [
        set "s" (i 0);
        for_ "k" (i 0) (i 100)
          [
            if_ (eq (v "k") (i 7)) [ break_ ] [];
            if_ (eq (band (v "k") (i 1)) (i 1)) [ continue_ ] [];
            set "s" (add (v "s") (v "k"));
          ];
        ret (v "s");
      ]
  in
  (* 0+2+4+6 = 12 *)
  let p = Program.create ~name:"t" ~n_globals:1 ~heap_size:8 ~main:"m" [ m ] in
  let st = Machine.create ~seed:1 p in
  check ci "break/continue semantics" 12 (Interp.run Interp.no_hooks st)

let test_dead_code_dropped () =
  let m = compile_one [ ret (i 1); set "x" (i 2); ret (v "x") ] in
  let p = Program.create ~name:"t" ~n_globals:1 ~heap_size:8 ~main:"m" [ m ] in
  Verify.program p;
  let st = Machine.create ~seed:1 p in
  check ci "first return wins" 1 (Interp.run Interp.no_hooks st)

let test_do_while_always_break () =
  (* the do-while condition block becomes unreachable and must be pruned *)
  let m = compile_one [ dowhile [ set "x" (i 3); break_ ] (lt (v "x") (i 10)); ret (v "x") ] in
  let p = Program.create ~name:"t" ~n_globals:1 ~heap_size:8 ~main:"m" [ m ] in
  Verify.program p;
  let st = Machine.create ~seed:1 p in
  check ci "value" 3 (Interp.run Interp.no_hooks st)

let test_compile_errors () =
  let expect_error name body =
    match Compile.method_ (mdef "m" ~params:[] body) with
    | (_ : Method.t) -> Alcotest.failf "%s: expected Compile.Error" name
    | exception Compile.Error _ -> ()
  in
  expect_error "break outside loop" [ break_; ret (i 0) ];
  expect_error "continue outside loop" [ continue_; ret (i 0) ];
  expect_error "bad rand" [ ret (rnd 0) ]

let test_switch_lowering () =
  let m =
    compile_one ~params:[ "a" ]
      [
        switch (v "a")
          [ (0, [ ret (i 10) ]); (1, [ ret (i 20) ]); (5, [ ret (i 50) ]) ]
          [ ret (i 99) ];
      ]
  in
  let callee = m in
  let main =
    Compile.method_
      (mdef "main" ~params:[]
         [
           ret
             (add
                (add (call "m" [ i 0 ]) (call "m" [ i 1 ]))
                (add (call "m" [ i 5 ]) (call "m" [ i 3 ])));
         ])
  in
  let p =
    Program.create ~name:"t" ~n_globals:1 ~heap_size:8 ~main:"main"
      [ main; callee ]
  in
  let st = Machine.create ~seed:1 p in
  check ci "switch dispatch" (10 + 20 + 50 + 99) (Interp.run Interp.no_hooks st)

let test_verify_catches () =
  let expect_verify_error name (blocks : Method.block array) ~nlocals =
    let m =
      {
        Method.name = "bad";
        nparams = 0;
        nlocals;
        blocks;
        entry = 0;
        exit_ = Array.length blocks - 1;
        uninterruptible = false;
      }
    in
    match
      Verify.program
        (Program.create ~name:"t" ~n_globals:1 ~heap_size:8 ~main:"bad" [ m ])
    with
    | () -> Alcotest.failf "%s: expected Verify.Error" name
    | exception Verify.Error _ -> ()
  in
  expect_verify_error "stack underflow" ~nlocals:1
    [|
      { Method.body = [| Instr.Pop; Instr.Const 0 |]; term = Method.Jmp 1 };
      { Method.body = [||]; term = Method.Ret };
    |];
  expect_verify_error "local out of range" ~nlocals:1
    [|
      { Method.body = [| Instr.Load 5 |]; term = Method.Jmp 1 };
      { Method.body = [||]; term = Method.Ret };
    |];
  expect_verify_error "branch without condition" ~nlocals:1
    [|
      { Method.body = [||]; term = Method.Br { branch = 0; on_true = 1; on_false = 2 } };
      { Method.body = [| Instr.Const 1 |]; term = Method.Jmp 2 };
      { Method.body = [||]; term = Method.Ret };
    |]

let test_verify_depth_mismatch () =
  (* join point entered with depths 1 and 2 must be rejected *)
  let m =
    {
      Method.name = "bad";
      nparams = 0;
      nlocals = 1;
      blocks =
        [|
          {
            Method.body = [| Instr.Const 1; Instr.Const 1 |];
            term = Method.Br { branch = 0; on_true = 1; on_false = 2 };
          };
          { Method.body = [| Instr.Const 7; Instr.Const 8 |]; term = Method.Jmp 3 };
          { Method.body = [| Instr.Const 9 |]; term = Method.Jmp 3 };
          { Method.body = [||]; term = Method.Ret };
        |];
      entry = 0;
      exit_ = 3;
      uninterruptible = false;
    }
  in
  match
    Verify.program
      (Program.create ~name:"t" ~n_globals:1 ~heap_size:8 ~main:"bad" [ m ])
  with
  | () -> Alcotest.fail "expected depth mismatch"
  | exception Verify.Error _ -> ()

let test_link_errors () =
  let expect_link name f =
    match f () with
    | (_ : Program.t) -> Alcotest.failf "%s: expected Link_error" name
    | exception Program.Link_error _ -> ()
  in
  let m body = Compile.method_ (mdef "main" ~params:[] body) in
  expect_link "undefined callee" (fun () ->
      Program.create ~name:"t" ~n_globals:1 ~heap_size:8 ~main:"main"
        [ m [ ret (call "nope" [ i 1 ]) ] ]);
  expect_link "bad arity" (fun () ->
      let f = Compile.method_ (mdef "f" ~params:[ "a"; "b" ] [ ret (v "a") ]) in
      Program.create ~name:"t" ~n_globals:1 ~heap_size:8 ~main:"main"
        [ m [ ret (call "f" [ i 1 ]) ]; f ]);
  expect_link "no main" (fun () ->
      Program.create ~name:"t" ~n_globals:1 ~heap_size:8 ~main:"main" []);
  expect_link "main with params" (fun () ->
      let f = Compile.method_ (mdef "main" ~params:[ "a" ] [ ret (v "a") ]) in
      Program.create ~name:"t" ~n_globals:1 ~heap_size:8 ~main:"main" [ f ])

let test_roundtrip_workloads () =
  List.iter
    (fun (w : Workload.t) ->
      let p = w.build 3 in
      let text = Pretty.to_string p in
      let p' = Parse.program text in
      if p <> p' then
        Alcotest.failf "%s: parse/print round trip failed" w.Workload.name)
    Suite.all

let test_roundtrip_synthetic () =
  for seed = 1 to 25 do
    let p = Synthetic.program ~seed () in
    let text = Pretty.to_string p in
    let p' = Parse.program text in
    if p <> p' then Alcotest.failf "seed %d: round trip failed" seed
  done

let test_parse_errors () =
  let expect_parse name src =
    match Parse.program src with
    | (_ : Ast.pdef) -> Alcotest.failf "%s: expected Parse.Error" name
    | exception Parse.Error _ -> ()
  in
  expect_parse "empty" "";
  expect_parse "garbage" "program p { method main() { x = ; } }";
  expect_parse "unterminated comment" "program p { /* ... ";
  expect_parse "missing brace" "program p { method main() { return 1; }";
  expect_parse "bad for var" "program p { method main() { for (a = 0; b < 3) { } return 0; } }"

let test_parse_expr_precedence () =
  let e = Parse.expr "1 + 2 * 3" in
  check Alcotest.bool "mul binds tighter" true
    (e = add (i 1) (mul (i 2) (i 3)));
  let e = Parse.expr "1 < 2 & 3" in
  check Alcotest.bool "cmp above band" true (e = band (lt (i 1) (i 2)) (i 3));
  let e = Parse.expr "-x + !y" in
  check Alcotest.bool "unary" true (e = add (neg (v "x")) (not_ (v "y")))

let suite =
  [
    Alcotest.test_case "compile shapes" `Quick test_compile_shapes;
    Alcotest.test_case "compile if" `Quick test_compile_if;
    Alcotest.test_case "compile loops" `Quick test_compile_loops;
    Alcotest.test_case "break/continue" `Quick test_break_continue;
    Alcotest.test_case "dead code dropped" `Quick test_dead_code_dropped;
    Alcotest.test_case "do-while always break" `Quick test_do_while_always_break;
    Alcotest.test_case "compile errors" `Quick test_compile_errors;
    Alcotest.test_case "switch lowering" `Quick test_switch_lowering;
    Alcotest.test_case "verify catches" `Quick test_verify_catches;
    Alcotest.test_case "verify depth mismatch" `Quick test_verify_depth_mismatch;
    Alcotest.test_case "link errors" `Quick test_link_errors;
    Alcotest.test_case "round trip: workloads" `Quick test_roundtrip_workloads;
    Alcotest.test_case "round trip: synthetic" `Quick test_roundtrip_synthetic;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse precedence" `Quick test_parse_expr_precedence;
  ]
