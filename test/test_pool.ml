(* The experiment pool and the persistent run cache, locked down by a
   differential layer:

   - determinism: every figure built through the pool (jobs=1, jobs=4,
     cold on-disk cache, warm on-disk cache) is bit-identical — float
     bits, not tolerances — to the serial on-demand build, and so is
     every cached run's measurement;
   - robustness: truncated, bit-flipped, wrong-version (text and
     binary) and stale-keyed store entries are recomputed with a
     structured diagnostic, never trusted and never crashed on; a
     digest-valid tamper is caught by the re-lint; legacy text entries
     load transparently and migrate to the binary codec in place;
   - the memoization contract: a config runs exactly once per cache,
     disk hits included;
   - config_key injectivity over randomized configurations, and the
     store's save/load round-trip (QCheck). *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let cs = Alcotest.string
let csl = Alcotest.(list string)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    (* unique, not yet existing: Exp_store creates it on first save *)
    let f = Filename.temp_file "pepsim-cache" "" in
    Sys.remove f;
    incr n;
    f ^ ".d" ^ string_of_int !n

let check_meas msg (a : Exp_harness.measurement) (b : Exp_harness.measurement) =
  check ci (msg ^ ": iter1") a.iter1 b.iter1;
  check ci (msg ^ ": iter2") a.iter2 b.iter2;
  check ci (msg ^ ": compile") a.compile b.compile;
  check ci (msg ^ ": checksum") a.checksum b.checksum

(* ------------------- differential determinism ------------------- *)

let envs =
  lazy
    (List.map
       (fun name -> Exp_harness.make_env ~seed:21 ~size:30 (Suite.find name))
       [ "compress"; "javac" ])

let fresh_caches ?cache_dir () =
  List.map (fun env -> Exp_cache.create ?cache_dir env) (Lazy.force envs)

(* floats replaced by their bit patterns: comparison means bit-identity *)
let figure_repr (f : Exp_figures.figure) =
  ( (f.Exp_figures.id, f.title, f.unit_, f.header, f.paper),
    List.map (fun (n, vs) -> (n, List.map Int64.bits_of_float vs)) f.rows,
    List.map (fun (n, v) -> (n, Int64.bits_of_float v)) f.summary )

let sweep ?cache_dir ~prefetch ~jobs () =
  let caches = fresh_caches ?cache_dir () in
  if prefetch then Exp_pool.prefetch ~jobs caches Exp_figures.ids;
  let figs =
    List.map (fun id -> figure_repr (Exp_figures.by_id id caches)) Exp_figures.ids
  in
  (caches, figs)

let check_same_runs msg base caches =
  List.iter2
    (fun c c' ->
      let runs = Exp_cache.all_runs c and runs' = Exp_cache.all_runs c' in
      check csl (msg ^ ": run keys") (List.map fst runs) (List.map fst runs');
      List.iter2
        (fun (k, (r : Exp_harness.run)) (_, (r' : Exp_harness.run)) ->
          check_meas (Printf.sprintf "%s: %s" msg k) r.meas r'.meas)
        runs runs')
    base caches

let check_figs msg base figs =
  List.iter2
    (fun f f' ->
      let ((id, _, _, _, _), _, _) = f in
      check cb (Printf.sprintf "%s: figure %s bit-identical" msg id) true
        (f = f'))
    base figs

let test_pool_differential () =
  (* the serial seed behaviour: figures on demand, no pool, no disk *)
  let base_caches, base_figs = sweep ~prefetch:false ~jobs:1 () in
  let dir = fresh_dir () in
  (* sequenced lets: the cold sweep must populate [dir] before the warm one *)
  let v1 = sweep ~prefetch:true ~jobs:1 () in
  let v4 = sweep ~prefetch:true ~jobs:4 () in
  let vcold = sweep ~cache_dir:dir ~prefetch:true ~jobs:4 () in
  let vwarm = sweep ~cache_dir:dir ~prefetch:true ~jobs:4 () in
  let variants =
    [
      ("prefetch jobs=1", v1);
      ("prefetch jobs=4", v4);
      ("cold disk cache jobs=4", vcold);
      ("warm disk cache jobs=4", vwarm);
    ]
  in
  List.iter
    (fun (msg, (caches, figs)) ->
      check_figs msg base_figs figs;
      check_same_runs msg base_caches caches;
      List.iter
        (fun c ->
          List.iter
            (fun d ->
              Alcotest.failf "%s: unexpected store diagnostic: %s" msg
                d.Dcg.reason)
            (Exp_cache.diagnostics c))
        caches)
    variants;
  (* cold sweep executed everything, warm recalled everything: zero
     simulator executions on a warm cache *)
  let cold = fst (List.assoc "cold disk cache jobs=4" variants) in
  let warm = fst (List.assoc "warm disk cache jobs=4" variants) in
  List.iter
    (fun c ->
      let s = Exp_cache.stats c in
      check cb "cold: executed some" true (s.Exp_cache.executed > 0);
      check ci "cold: no disk hits" 0 s.Exp_cache.disk_hits;
      check ci "cold: no store errors" 0 s.Exp_cache.store_errors)
    cold;
  List.iter
    (fun c ->
      let s = Exp_cache.stats c in
      check ci "warm: zero executions" 0 s.Exp_cache.executed;
      check cb "warm: disk hits" true (s.Exp_cache.disk_hits > 0);
      check ci "warm: no store errors" 0 s.Exp_cache.store_errors)
    warm

let test_suite_envs_deterministic () =
  let envs jobs = Exp_pool.suite_envs ~scale:0.05 ~jobs ~seed:7 () in
  let repr (e : Exp_harness.env) =
    (e.workload.Workload.name, e.size, e.seed, Advice.to_lines e.advice)
  in
  check cb "suite_envs independent of jobs" true
    (List.map repr (envs 1) = List.map repr (envs 3))

(* ------------------- store robustness ------------------- *)

let rob_env =
  lazy (Exp_harness.make_env ~seed:33 ~size:20 (Suite.find "compress"))

let rob_config =
  {
    Exp_harness.default with
    Exp_harness.profiling =
      Exp_harness.Pep_profiled
        {
          sampling = Sampling.pep ~samples:64 ~stride:17;
          zero = `Hottest;
          numbering = `Smart;
        };
  }

(* run once against a fresh store, returning the run, its entry file
   and its composite identity key *)
let populate dir =
  let cache = Exp_cache.create ~cache_dir:dir (Lazy.force rob_env) in
  let run = Exp_cache.run cache rob_config in
  let file, key = Option.get (Exp_cache.store_slot cache rob_config) in
  check cb "entry persisted" true (Sys.file_exists file);
  (run, file, key)

let read_all file = In_channel.with_open_bin file In_channel.input_all

let write_all file contents =
  Out_channel.with_open_bin file (fun oc ->
      Out_channel.output_string oc contents)

let write_lines file lines =
  write_all file (String.concat "\n" lines ^ "\n")

let diag_mentions substring caches_diags =
  List.exists
    (fun d ->
      let reason = d.Dcg.reason in
      let n = String.length substring and l = String.length reason in
      let rec go i =
        i + n <= l && (String.sub reason i n = substring || go (i + 1))
      in
      go 0)
    caches_diags

(* corrupt the entry, rerun on a fresh cache: the run must be recomputed
   (identical measurement), with a diagnostic mentioning [expect] *)
let recompute_after ~expect corrupt =
  let dir = fresh_dir () in
  let orig, file, key = populate dir in
  corrupt file key;
  let cache = Exp_cache.create ~cache_dir:dir (Lazy.force rob_env) in
  let r = Exp_cache.run cache rob_config in
  check_meas ("recomputed after " ^ expect) orig.Exp_harness.meas
    r.Exp_harness.meas;
  let s = Exp_cache.stats cache in
  check ci "recomputed, not loaded" 1 s.Exp_cache.executed;
  check ci "no disk hit" 0 s.Exp_cache.disk_hits;
  check ci "one store error" 1 s.Exp_cache.store_errors;
  check cb
    (Printf.sprintf "diagnostic mentions %S" expect)
    true
    (diag_mentions expect (Exp_cache.diagnostics cache));
  (* the recompute overwrote the bad entry: a third cache warm-loads *)
  let again = Exp_cache.create ~cache_dir:dir (Lazy.force rob_env) in
  let r' = Exp_cache.run again rob_config in
  check_meas "rewritten entry loads" orig.Exp_harness.meas r'.Exp_harness.meas;
  check ci "rewritten entry is a disk hit" 1
    (Exp_cache.stats again).Exp_cache.disk_hits

let test_store_truncated () =
  recompute_after ~expect:"truncated" (fun file _key ->
      (* cut the binary entry off before its digest trailer can fit *)
      write_all file (String.sub (read_all file) 0 20))

let test_store_bit_flip () =
  recompute_after ~expect:"digest mismatch" (fun file _key ->
      let b = Bytes.of_string (read_all file) in
      let j = Bytes.length b / 2 in
      Bytes.set b j (Char.chr (Char.code (Bytes.get b j) lxor 1));
      write_all file (Bytes.to_string b))

(* a forged digest does not save a wrong version: the version check runs
   even on digest-consistent files — here a legacy text entry claiming a
   version the text codec never wrote *)
let test_store_wrong_version () =
  recompute_after ~expect:"unsupported cache version" (fun file key ->
      let body = [ "pepsim-run-cache v99"; "key store-v2|" ^ key ] in
      write_lines file (body @ [ "digest " ^ Exp_store.digest_lines body ]))

(* same for the binary frame: a future codec version is a structured
   diagnostic, not a silent miss or a misparse *)
let test_store_future_binary_version () =
  recompute_after ~expect:"unsupported cache version" (fun file _key ->
      write_all file ("PEPRUN" ^ String.make 1 (Char.chr 99) ^ "future bytes"))

(* same workload name, size and seed — so the same store file — but a
   different program: the composite key catches the stale entry *)
let test_store_stale_program () =
  let dir = fresh_dir () in
  let _orig, file, _key = populate dir in
  let w = Suite.find "compress" in
  let w' = { w with Workload.build = (Suite.find "db").Workload.build } in
  let env' = Exp_harness.make_env ~seed:33 ~size:20 w' in
  let cache' = Exp_cache.create ~cache_dir:dir env' in
  check cs "same store file"
    file
    (Option.get (Exp_cache.store_file cache' rob_config));
  let r' = Exp_cache.run cache' rob_config in
  let s = Exp_cache.stats cache' in
  check ci "stale entry recomputed" 1 s.Exp_cache.executed;
  check ci "stale entry not loaded" 0 s.Exp_cache.disk_hits;
  check cb "stale diagnostic" true
    (diag_mentions "stale cache entry" (Exp_cache.diagnostics cache'));
  (* the overwrite serves the new program's runs from then on *)
  let again = Exp_cache.create ~cache_dir:dir env' in
  let r'' = Exp_cache.run again rob_config in
  check_meas "overwritten entry loads" r'.Exp_harness.meas r''.Exp_harness.meas;
  check ci "overwritten entry is a disk hit" 1
    (Exp_cache.stats again).Exp_cache.disk_hits

(* a tamper that keeps the digest valid (counts inflated, trailer
   recomputed) passes the store's checks — and must then be caught by
   the re-lint, because disk-loaded profiles are never trusted *)
let test_store_lint_catches_valid_digest_tamper () =
  let dir = fresh_dir () in
  let orig, file, key = populate dir in
  check cb "original run lints clean" false
    (Pep_check.has_errors orig.Exp_harness.checks);
  (* decode the entry, inflate the first recorded path count far past
     the sample bound, and re-save — digest and key both valid *)
  let p =
    match Exp_store.load ~file ~key with
    | Ok (Some p) -> p
    | Ok None -> Alcotest.fail "entry vanished"
    | Error e -> Alcotest.failf "entry unreadable: %s" e.Dcg.reason
  in
  let inflated = ref false in
  let pep_paths =
    List.map
      (fun l ->
        if !inflated then l
        else begin
          inflated := true;
          match String.split_on_char ' ' l with
          | [ mi; pid; _count ] -> Printf.sprintf "%s %s %d" mi pid 1_000_000
          | _ -> Alcotest.failf "unexpected pep.paths line %S" l
        end)
      p.Exp_store.pep_paths
  in
  check cb "inflated a count" true !inflated;
  (match Exp_store.save ~file ~key { p with Exp_store.pep_paths } with
  | Ok () -> ()
  | Error e -> Alcotest.failf "tampered save failed: %s" e.Dcg.reason);
  let cache = Exp_cache.create ~cache_dir:dir (Lazy.force rob_env) in
  let r = Exp_cache.run cache rob_config in
  (* the store accepted it (digest and key are fine)... *)
  check ci "tampered entry loads" 1 (Exp_cache.stats cache).Exp_cache.disk_hits;
  check ci "no execution" 0 (Exp_cache.stats cache).Exp_cache.executed;
  (* ...and the re-lint flags the impossible profile *)
  check cb "re-lint catches inflated counts" true
    (Pep_check.has_errors r.Exp_harness.checks)

(* a legacy text (v1) entry is read transparently, served as a disk
   hit, and re-encoded in place with the current binary codec *)
let test_store_migrates_legacy_text () =
  let dir = fresh_dir () in
  let orig, file, key = populate dir in
  let p =
    match Exp_store.load ~file ~key with
    | Ok (Some p) -> p
    | Ok None -> Alcotest.fail "entry vanished"
    | Error e -> Alcotest.failf "entry unreadable: %s" e.Dcg.reason
  in
  write_all file (Exp_codec.v1_text.Exp_codec.encode ~key p);
  check cb "forged entry is text" true
    (String.starts_with ~prefix:"pepsim-run-cache" (read_all file));
  let cache = Exp_cache.create ~cache_dir:dir (Lazy.force rob_env) in
  let r = Exp_cache.run cache rob_config in
  check_meas "legacy entry serves the run" orig.Exp_harness.meas
    r.Exp_harness.meas;
  let s = Exp_cache.stats cache in
  check ci "legacy entry is a disk hit" 1 s.Exp_cache.disk_hits;
  check ci "no execution" 0 s.Exp_cache.executed;
  check ci "no store errors" 0 s.Exp_cache.store_errors;
  check ci "one migration" 1 s.Exp_cache.migrated;
  check cb "entry re-encoded as binary" true
    (String.starts_with ~prefix:"PEPRUN" (read_all file))

(* ------------------- memoization contract ------------------- *)

let test_all_runs_records_once () =
  let dir = fresh_dir () in
  let env = Lazy.force rob_env in
  let a = Exp_cache.create ~cache_dir:dir env in
  let r1 = Exp_cache.run a rob_config in
  let r2 = Exp_cache.run a rob_config in
  check cb "second run is the memoized first" true (r1 == r2);
  check ci "one entry after two runs" 1 (List.length (Exp_cache.all_runs a));
  let s = Exp_cache.stats a in
  check ci "one execution" 1 s.Exp_cache.executed;
  check ci "one memory hit" 1 s.Exp_cache.memory_hits;
  (* a fresh cache over the same store: the disk hit also records the
     run exactly once, with the same measurement *)
  let b = Exp_cache.create ~cache_dir:dir env in
  let rb = Exp_cache.run b rob_config in
  check ci "one entry after disk hit" 1 (List.length (Exp_cache.all_runs b));
  let s = Exp_cache.stats b in
  check ci "disk hit" 1 s.Exp_cache.disk_hits;
  check ci "no execution" 0 s.Exp_cache.executed;
  check_meas "disk-loaded measurement" r1.Exp_harness.meas rb.Exp_harness.meas;
  (* disk-loaded checks are re-derived, not parroted from the file *)
  check cb "rebuilt run lints clean" false
    (Pep_check.has_errors rb.Exp_harness.checks)

(* ------------------- QCheck properties ------------------- *)

let gen_sampling =
  QCheck.Gen.(
    oneof
      [
        return Sampling.never;
        map2
          (fun s t -> Sampling.pep ~samples:s ~stride:t)
          (int_range 1 128) (int_range 1 32);
        map2
          (fun s t -> Sampling.arnold_grove ~samples:s ~stride:t)
          (int_range 1 128) (int_range 1 32);
      ])

let gen_profiling =
  QCheck.Gen.(
    oneof
      [
        oneofl
          [
            Exp_harness.Base;
            Exp_harness.Perfect_path;
            Exp_harness.Perfect_edge;
            Exp_harness.Classic_blpp;
            Exp_harness.Instr_back_edge;
          ];
        map3
          (fun sampling zero numbering ->
            Exp_harness.Pep_profiled { sampling; zero; numbering })
          gen_sampling
          (oneofl [ `Hottest; `Coldest ])
          (oneofl [ `Smart; `Ball_larus ]);
      ])

let gen_table =
  QCheck.Gen.(
    map
      (fun entries ->
        let tbl = Edge_profile.create_table ~n_methods:2 in
        List.iter
          (fun (mi, br, c) ->
            Edge_profile.add tbl.(mi) br ~taken:true c;
            Edge_profile.add tbl.(mi) br ~taken:false (c / 2))
          entries;
        tbl)
      (list_size (int_range 0 12)
         (triple (int_range 0 1) (int_range 0 15) (int_range 1 100))))

let gen_opt_profile =
  QCheck.Gen.(
    oneof
      [
        return Driver.From_baseline;
        return Driver.From_pep;
        map (fun t -> Driver.Fixed t) gen_table;
      ])

let gen_faults =
  QCheck.Gen.(
    oneof
      [
        return Fault_plan.empty;
        return { Fault_plan.empty with Fault_plan.noop = true };
        map2
          (fun seed cap ->
            { Fault_plan.empty with Fault_plan.seed; path_capacity = Some cap })
          (int_range 1 5) (int_range 1 64);
        map
          (fun p -> { Fault_plan.empty with Fault_plan.compile_fail = p })
          (oneofl [ 0.25; 0.5; 1.0 ]);
      ])

let gen_config =
  QCheck.Gen.(
    map
      (fun (profiling, opt_profile, (inline, unroll, engine), faults) ->
        {
          Exp_harness.profiling;
          opt_profile;
          inline;
          unroll;
          deep = false;
          engine;
          tiers = Codegen.default_tiers;
          telemetry = None;
          faults;
        })
      (quad gen_profiling gen_opt_profile
         (triple bool bool (oneofl [ `Oracle; `Threaded ]))
         gen_faults))

(* structural equivalence, comparing fixed tables by canonical content *)
let same_opt a b =
  match (a, b) with
  | Driver.From_baseline, Driver.From_baseline
  | Driver.From_pep, Driver.From_pep ->
      true
  | Driver.Fixed ta, Driver.Fixed tb ->
      Edge_profile.to_lines ta = Edge_profile.to_lines tb
  | _ -> false

(* plans compare by canonical key: two plans the key cannot tell apart
   (e.g. [empty] vs [empty] with another seed) must not be required to
   produce distinct config keys *)
let same_config (a : Exp_harness.config) (b : Exp_harness.config) =
  a.profiling = b.profiling
  && same_opt a.opt_profile b.opt_profile
  && a.inline = b.inline && a.unroll = b.unroll && a.engine = b.engine
  && a.tiers = b.tiers
  && Fault_plan.key a.faults = Fault_plan.key b.faults

(* a structurally-equal but physically-distinct copy (fixed tables
   rebuilt through the parse_line round trip) *)
let copy_config (c : Exp_harness.config) =
  match c.opt_profile with
  | Driver.From_baseline | Driver.From_pep -> c
  | Driver.Fixed t ->
      let t' = Edge_profile.create_table ~n_methods:(Array.length t) in
      List.iter
        (fun l ->
          match Edge_profile.parse_line t' l with
          | Ok () -> ()
          | Error e -> Alcotest.failf "edge line %S rejected: %s" l e)
        (Edge_profile.to_lines t);
      { c with Exp_harness.opt_profile = Driver.Fixed t' }

let gen_config_pair =
  QCheck.Gen.(
    pair gen_config gen_config >>= fun (a, b) ->
    oneofl [ (a, copy_config a); (a, b) ])

(* [config_key] is exactly the equivalence the cache memoizes by — and,
   [telemetry] being stripped before persisting, also exactly the
   identity the on-disk store keys runs by *)
let prop_config_key_injective =
  QCheck.Test.make ~count:300 ~name:"config_key injective"
    (QCheck.make gen_config_pair) (fun (a, b) ->
      (Exp_harness.config_key a = Exp_harness.config_key b) = same_config a b)

let gen_flat_string =
  QCheck.Gen.(
    string_size (int_range 0 30) ~gen:(map Char.chr (int_range 32 126)))

let gen_payload =
  QCheck.Gen.(
    map
      (fun (((i1, i2, c), (ck, n)), (pp, pe, tp, te)) ->
        {
          Exp_store.iter1 = i1;
          iter2 = i2;
          compile = c;
          checksum = ck;
          n_samples = n;
          pep_paths = pp;
          pep_edges = pe;
          ppaths = tp;
          pedges = te;
        })
      (pair
         (pair
            (triple
               (int_range (-1000000) 1000000)
               (int_range (-1000000) 1000000)
               (int_range (-1000000) 1000000))
            (pair (int_range (-1000000) 1000000) (int_range 0 100000)))
         (quad
            (list_size (int_range 0 8) gen_flat_string)
            (list_size (int_range 0 8) gen_flat_string)
            (list_size (int_range 0 8) gen_flat_string)
            (list_size (int_range 0 8) gen_flat_string))))

(* the binary codec in memory: encode∘decode is the identity on
   arbitrary payloads, and any single flipped bit — body, digest
   trailer, magic or version byte — is rejected, never misparsed *)
let prop_codec_binary =
  QCheck.Test.make ~count:200 ~name:"binary codec round trip and tamper"
    (QCheck.make
       QCheck.Gen.(triple gen_payload gen_flat_string (int_range 0 100000)))
    (fun (p, key, i) ->
      let key = "k|" ^ key in
      let c = Exp_codec.v2_binary in
      let enc = c.Exp_codec.encode ~key p in
      (match c.Exp_codec.decode ~file:"mem" ~key enc with
      | Ok p' when p' = p -> ()
      | Ok _ -> QCheck.Test.fail_report "payload changed through binary codec"
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e.Dcg.reason);
      let b = Bytes.of_string enc in
      let j = i mod Bytes.length b in
      Bytes.set b j (Char.chr (Char.code (Bytes.get b j) lxor (1 lsl (i mod 8))));
      (match c.Exp_codec.decode ~file:"mem" ~key (Bytes.to_string b) with
      | Error _ -> ()
      | Ok _ -> QCheck.Test.fail_report "tampered byte not rejected");
      true)

let rt_dir = lazy (fresh_dir ())

let prop_store_round_trip =
  QCheck.Test.make ~count:100 ~name:"store save/load round trip"
    (QCheck.make QCheck.Gen.(pair gen_payload gen_flat_string))
    (fun (p, key) ->
      let key = "k|" ^ key in
      let file = Filename.concat (Lazy.force rt_dir) "rt.run" in
      (match Exp_store.save ~file ~key p with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "save failed: %s" e.Dcg.reason);
      (match Exp_store.load ~file ~key with
      | Ok (Some p') when p' = p -> ()
      | Ok (Some _) -> QCheck.Test.fail_report "payload changed in round trip"
      | Ok None -> QCheck.Test.fail_report "entry vanished"
      | Error e -> QCheck.Test.fail_reportf "load failed: %s" e.Dcg.reason);
      (* a different key is a stale entry, not a payload *)
      (match Exp_store.load ~file ~key:(key ^ "'") with
      | Error _ -> ()
      | Ok _ -> QCheck.Test.fail_report "key mismatch not detected");
      true)

let suite =
  [
    Alcotest.test_case "pool and disk cache are bit-identical to serial" `Slow
      test_pool_differential;
    Alcotest.test_case "suite_envs deterministic across jobs" `Slow
      test_suite_envs_deterministic;
    Alcotest.test_case "truncated entry recomputed" `Slow test_store_truncated;
    Alcotest.test_case "bit-flipped entry recomputed" `Slow test_store_bit_flip;
    Alcotest.test_case "wrong-version entry recomputed" `Slow
      test_store_wrong_version;
    Alcotest.test_case "future binary version recomputed" `Slow
      test_store_future_binary_version;
    Alcotest.test_case "stale program digest recomputed" `Slow
      test_store_stale_program;
    Alcotest.test_case "digest-valid tamper caught by re-lint" `Slow
      test_store_lint_catches_valid_digest_tamper;
    Alcotest.test_case "legacy text entry migrates to binary" `Slow
      test_store_migrates_legacy_text;
    Alcotest.test_case "all_runs records each run once" `Slow
      test_all_runs_records_once;
    QCheck_alcotest.to_alcotest prop_config_key_injective;
    QCheck_alcotest.to_alcotest prop_codec_binary;
    QCheck_alcotest.to_alcotest prop_store_round_trip;
  ]
