(* The Pep_check static-analysis passes: every workload and random
   synthetic program must come through clean, each seeded mutation must
   be rejected by the pass that owns the broken invariant with a located
   diagnostic, the numbering audit must witness the path-id bijection
   exhaustively, and Instr.stack_effect — which the bytecode verifier
   consumes — must agree with what the interpreter actually does on
   every opcode. *)

let check = Alcotest.check
let ci = Alcotest.int

let no_errors what diags =
  match Pep_check.errors diags with
  | [] -> ()
  | d :: _ -> Alcotest.failf "%s: unexpected %a" what Pep_check.pp_diagnostic d

let has_error_at what pred diags =
  if
    not
      (List.exists
         (fun (d : Pep_check.diagnostic) ->
           d.severity = Pep_check.Error && pred d)
         diags)
  then Alcotest.failf "%s: expected a located error; got:@.%a" what
      Pep_check.pp_report diags

let first_method_with pred =
  let found = ref None in
  List.iter
    (fun (w : Workload.t) ->
      if !found = None then begin
        let p = Workload.program ~size:2 w in
        Program.iter_methods
          (fun _ m -> if !found = None && pred m then found := Some (p, m))
          p
      end)
    Suite.all;
  match !found with
  | Some x -> x
  | None -> Alcotest.fail "no suite method matches the predicate"

let copy_blocks (m : Method.t) = Array.map Fun.id m.Method.blocks

(* --- acceptance ---------------------------------------------------- *)

let test_suite_accepted () =
  List.iter
    (fun (w : Workload.t) ->
      no_errors w.Workload.name
        (Pep_check.check_program_static (Workload.program ~size:2 w)))
    Suite.all

let test_synthetic_accepted () =
  for seed = 300 to 320 do
    let p = Compile.pdef (Synthetic.program ~seed ()) in
    no_errors
      ("synthetic seed " ^ string_of_int seed)
      (Pep_check.check_program_static p)
  done

(* --- pass 1 rejections --------------------------------------------- *)

let test_reject_corrupt_jump () =
  let p, m =
    first_method_with (fun m ->
        Array.exists
          (fun (b : Method.block) ->
            match b.Method.term with Method.Jmp _ -> true | _ -> false)
          m.Method.blocks)
  in
  let blocks = copy_blocks m in
  let bid = ref (-1) in
  Array.iteri
    (fun i (b : Method.block) ->
      match b.Method.term with
      | Method.Jmp _ when !bid < 0 -> bid := i
      | _ -> ())
    blocks;
  let bid = !bid in
  blocks.(bid) <- { (blocks.(bid)) with Method.term = Method.Jmp 9999 };
  has_error_at "corrupt jump target"
    (fun d ->
      match d.loc with
      | Pep_check.Block_loc (_, b) -> b = bid
      | _ -> false)
    (Pep_check.verify_method p { m with Method.blocks })

let test_reject_stack_underflow () =
  let p, m = first_method_with (fun _ -> true) in
  let blocks = copy_blocks m in
  let eb = blocks.(m.Method.entry) in
  blocks.(m.Method.entry) <-
    { eb with Method.body = Array.append [| Instr.Pop |] eb.Method.body };
  has_error_at "extra pop at entry"
    (fun d ->
      match d.loc with
      | Pep_check.Instr_loc (_, b, 0) -> b = m.Method.entry
      | _ -> false)
    (Pep_check.verify_method p { m with Method.blocks })

let test_reject_unbalanced_push () =
  let p, m = first_method_with (fun _ -> true) in
  let blocks = copy_blocks m in
  let eb = blocks.(m.Method.entry) in
  blocks.(m.Method.entry) <-
    { eb with Method.body = Array.append [| Instr.Const 1 |] eb.Method.body };
  has_error_at "extra push at entry"
    (fun (d : Pep_check.diagnostic) -> d.pass = "bytecode")
    (Pep_check.verify_method p { m with Method.blocks })

let test_reject_bad_call_arity () =
  (* a method that calls another: retarget the first call with a wrong
     argc *)
  let p, m =
    first_method_with (fun m ->
        Array.exists
          (fun (b : Method.block) ->
            Array.exists
              (function Instr.Call _ -> true | _ -> false)
              b.Method.body)
          m.Method.blocks)
  in
  let blocks = copy_blocks m in
  let loc = ref None in
  Array.iteri
    (fun bi (b : Method.block) ->
      Array.iteri
        (fun ii ins ->
          match ins with
          | Instr.Call (callee, argc) when !loc = None ->
              let body = Array.map Fun.id b.Method.body in
              body.(ii) <- Instr.Call (callee, argc + 1);
              blocks.(bi) <- { b with Method.body = body };
              loc := Some (bi, ii)
          | _ -> ())
        b.Method.body)
    blocks;
  let bi, ii = Option.get !loc in
  has_error_at "wrong call arity"
    (fun d ->
      match d.loc with
      | Pep_check.Instr_loc (_, b, i) -> b = bi && i = ii
      | _ -> false)
    (Pep_check.verify_method p { m with Method.blocks })

(* --- pass 3: numbering --------------------------------------------- *)

let each_profilable_dag f =
  List.iter
    (fun (w : Workload.t) ->
      let p = Workload.program ~size:2 w in
      Program.iter_methods
        (fun _ (m : Method.t) ->
          let cfg = To_cfg.cfg m in
          List.iter
            (fun mode ->
              match Dag.build mode cfg with
              | dag -> f (w.Workload.name ^ "/" ^ m.Method.name) dag
              | exception Dag.Unsupported _ -> ())
            [ Dag.Back_edge; Dag.Loop_header ])
        p)
    Suite.all

let test_bijection_exhaustive () =
  (* every path id of every suite method, both truncation modes,
     reconstructs and sums back to itself *)
  let audited = ref 0 in
  each_profilable_dag (fun what dag ->
      match Numbering.ball_larus dag with
      | n ->
          incr audited;
          no_errors what
            (Pep_check.audit_numbering ~enumerate_limit:100_000 n)
      | exception Numbering.Too_many_paths _ -> ());
  check ci "every suite method audited in both modes" 0
    (if !audited >= 2 * List.length Suite.all then 0 else !audited)

let test_smart_numbering_audited () =
  each_profilable_dag (fun what dag ->
      let freq (e : Dag.edge) = 1 + (e.Dag.idx * 7919 mod 101) in
      List.iter
        (fun zero ->
          match Numbering.smart ~zero ~freq dag with
          | n ->
              no_errors what (Pep_check.audit_numbering n);
              no_errors what (Pep_check.audit_zero_arms ~zero ~freq n)
          | exception Numbering.Too_many_paths _ -> ())
        [ `Hottest; `Coldest ])

let test_reject_zeroed_value () =
  let _, m =
    first_method_with (fun m ->
        (not m.Method.uninterruptible) && Method.n_branches m > 0)
  in
  let dag = Dag.build Dag.Back_edge (To_cfg.cfg m) in
  let n = Numbering.ball_larus dag in
  let victim = ref None in
  Dag.iter_edges
    (fun e -> if !victim = None && Numbering.value n e > 0 then victim := Some e)
    dag;
  let victim = Option.get !victim in
  let value e =
    if e.Dag.idx = victim.Dag.idx then 0 else Numbering.value n e
  in
  has_error_at "zeroed edge value"
    (fun d ->
      match d.loc with
      | Pep_check.Node_loc (_, v) -> v = victim.Dag.esrc
      | _ -> false)
    (Pep_check.audit_values dag ~value)

(* --- pass 4: profile lint ------------------------------------------ *)

(* Two sequential if-diamonds: the join couples the two branch counters,
   so corrupting either one breaks Kirchhoff flow detectably. *)
let diamond_program () =
  let blk body term = { Method.body = Array.of_list body; term } in
  let m =
    {
      Method.name = "main";
      nparams = 0;
      nlocals = 1;
      blocks =
        [|
          blk [ Instr.Rand 2 ]
            (Method.Br { branch = 0; on_true = 1; on_false = 2 });
          blk [ Instr.Const 1; Instr.Store 0 ] (Method.Jmp 3);
          blk [ Instr.Const 2; Instr.Store 0 ] (Method.Jmp 3);
          blk [ Instr.Rand 2 ]
            (Method.Br { branch = 1; on_true = 4; on_false = 5 });
          blk [] (Method.Jmp 6);
          blk [] (Method.Jmp 6);
          blk [ Instr.Load 0 ] Method.Ret;
        |];
      entry = 0;
      exit_ = 6;
      uninterruptible = false;
    }
  in
  Program.create ~name:"diamond" ~n_globals:0 ~heap_size:1 ~main:"main" [ m ]

let test_reject_corrupt_flow () =
  let p = diamond_program () in
  no_errors "diamond static" (Pep_check.check_program_static p);
  let st = Machine.create ~seed:11 p in
  let truth = Profiler.perfect_edge st in
  ignore (Interp.run truth.Profiler.ehooks st);
  let cfg = (Machine.cmeth st 0).Machine.cfg in
  let profile = truth.Profiler.etable.(0) in
  no_errors "pristine flow" (Pep_check.lint_edge_profile ~exact:true cfg profile);
  let c = Option.get (Edge_profile.counter profile 0) in
  c.Edge_profile.taken <- c.Edge_profile.taken + 1;
  has_error_at "bumped counter breaks flow"
    (fun (d : Pep_check.diagnostic) -> d.pass = "profile")
    (Pep_check.lint_edge_profile ~exact:true cfg profile);
  c.Edge_profile.taken <- c.Edge_profile.taken - 1;
  c.Edge_profile.not_taken <- -1;
  has_error_at "negative counter"
    (fun d ->
      match d.loc with Pep_check.Branch_loc (_, 0) -> true | _ -> false)
    (Pep_check.lint_edge_profile ~exact:false cfg profile)

let test_reject_foreign_branch () =
  let p = diamond_program () in
  let st = Machine.create ~seed:11 p in
  let cfg = (Machine.cmeth st 0).Machine.cfg in
  let profile = Edge_profile.create () in
  Edge_profile.incr profile 42 ~taken:true;
  has_error_at "unknown branch id"
    (fun d ->
      match d.loc with Pep_check.Branch_loc (_, 42) -> true | _ -> false)
    (Pep_check.lint_edge_profile ~exact:false cfg profile)

let test_reject_bad_path_profile () =
  let p = diamond_program () in
  let dag = Dag.build Dag.Loop_header (To_cfg.cfg (Program.find p "main")) in
  let n = Numbering.ball_larus dag in
  check ci "diamond has 4 paths" 4 (Numbering.n_paths n);
  let profile = Path_profile.create () in
  Path_profile.incr profile 2;
  no_errors "valid path id" (Pep_check.lint_path_profile n profile);
  Path_profile.incr profile 7;
  has_error_at "path id out of range"
    (fun d ->
      match d.loc with Pep_check.Path_loc (_, 7) -> true | _ -> false)
    (Pep_check.lint_path_profile n profile);
  (* totals above the sample budget are flagged *)
  let profile = Path_profile.create () in
  Path_profile.add profile 1 10;
  has_error_at "more path executions than samples"
    (fun (d : Pep_check.diagnostic) -> d.pass = "profile")
    (Pep_check.lint_path_profile ~expected_total:3 n profile)

(* --- stack_effect vs the interpreter ------------------------------- *)

let all_opcodes =
  [
    Instr.Const 7;
    Instr.Load 0;
    Instr.Store 0;
    Instr.Inc (0, 3);
    Instr.Neg;
    Instr.Not;
    Instr.Dup;
    Instr.Pop;
    Instr.GLoad 0;
    Instr.GStore 0;
    Instr.AGet;
    Instr.ASet;
    Instr.Call ("callee", 2);
    Instr.Rand 5;
  ]
  @ List.map
      (fun op -> Instr.Binop op)
      [
        Instr.Add; Instr.Sub; Instr.Mul; Instr.Div; Instr.Rem; Instr.And;
        Instr.Or; Instr.Xor; Instr.Shl; Instr.Shr;
      ]
  @ List.map
      (fun c -> Instr.Cmp c)
      [ Instr.Eq; Instr.Ne; Instr.Lt; Instr.Le; Instr.Gt; Instr.Ge ]

let test_stack_effect_matches_interp () =
  (* Sentinel harness: push 999, push the declared number of operands,
     run the opcode, pop the declared number of results, return.  The
     method only returns 999 if the opcode's true net effect equals its
     declared stack_effect — fewer pushes underflow, more leave a
     non-sentinel on top. *)
  let callee =
    {
      Method.name = "callee";
      nparams = 2;
      nlocals = 2;
      blocks = [| { Method.body = [| Instr.Const 7 |]; term = Method.Ret } |];
      entry = 0;
      exit_ = 0;
      uninterruptible = false;
    }
  in
  List.iter
    (fun ins ->
      let pops, pushes = Instr.stack_effect ins in
      let body =
        Array.of_list
          ((Instr.Const 999 :: List.init pops (fun _ -> Instr.Const 3))
          @ (ins :: List.init pushes (fun _ -> Instr.Pop)))
      in
      let main =
        {
          Method.name = "main";
          nparams = 0;
          nlocals = 1;
          blocks = [| { Method.body = body; term = Method.Ret } |];
          entry = 0;
          exit_ = 0;
          uninterruptible = false;
        }
      in
      let p =
        Program.create ~name:"effect" ~n_globals:1 ~heap_size:4 ~main:"main"
          [ main; callee ]
      in
      no_errors
        (Fmt.str "verifier accepts %a harness" Instr.pp ins)
        (Pep_check.verify_program p);
      let st = Machine.create ~seed:1 p in
      let result = Interp.run Interp.no_hooks st in
      check ci (Fmt.str "sentinel after %a" Instr.pp ins) 999 result)
    all_opcodes

(* --- integration: driver + harness checks stay clean ---------------- *)

let test_replay_checks_clean () =
  let env = Exp_harness.make_env ~size:2 ~seed:5 (Suite.find "jess") in
  let run =
    Exp_harness.replay env
      {
        Exp_harness.default with
        Exp_harness.profiling =
          Exp_harness.Pep_profiled
            {
              sampling = Sampling.pep ~samples:64 ~stride:17;
              zero = `Hottest;
              numbering = `Smart;
            };
        inline = true;
        unroll = true;
      }
  in
  no_errors "replay checks (driver verify + profile lint)"
    run.Exp_harness.checks;
  no_errors "driver checks" (Driver.checks run.Exp_harness.driver)

(* --- pass 7 rejections: fusion tables ------------------------------- *)

(* The fusion validator re-derives every invariant the engine's compiler
   relies on; each seeded corruption of a genuine planned table must be
   rejected with a located ["fusion"] error mentioning the broken
   invariant. *)

let fusion_method () =
  let p =
    Compile.program ~name:"fw" ~main:"main"
      Ast.
        [
          mdef "main" ~params:[]
            [
              set "s" (i 0);
              for_ "k" (i 0) (i 9)
                [
                  if_ (eq (band (v "k") (i 3)) (i 0))
                    [ set "s" (add (v "s") (v "k")) ]
                    [ set "s" (sub (v "s") (i 1)) ];
                ];
              ret (v "s");
            ];
        ]
  in
  let m = Program.find p "main" in
  let hot = Array.make (Array.length m.Method.blocks) true in
  (m, Fusion.plan ~gen:0 ~hot m)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let fusion_error what ~expect mutate =
  let m, w = fusion_method () in
  has_error_at what
    (fun d -> d.pass = "fusion" && contains d.message expect)
    (Pep_check.validate_fusion ~witness:(mutate w) m)

let first_entry w = List.hd w.Fusion.fentries

let test_fusion_plan_accepted () =
  let m, w = fusion_method () in
  if w.Fusion.fentries = [] then Alcotest.fail "planner found nothing to fuse";
  no_errors "planned table" (Pep_check.validate_fusion ~witness:w m)

let test_reject_fusion_cold_block () =
  fusion_error "entry in cold block" ~expect:"not marked hot" (fun w ->
      let fhot = Array.copy w.Fusion.fhot in
      fhot.((first_entry w).Fusion.fblock) <- false;
      { w with Fusion.fhot })

let test_reject_fusion_wrong_pattern () =
  fusion_error "claimed pattern differs from bytecode" ~expect:"mismatch"
    (fun w ->
      let e = first_entry w in
      let other =
        if e.Fusion.fpattern = Fusion.KStore then Fusion.LStore
        else Fusion.KStore
      in
      {
        w with
        Fusion.fentries =
          { e with Fusion.fpattern = other } :: List.tl w.Fusion.fentries;
      })

let test_reject_fusion_overlap () =
  fusion_error "duplicated entry" ~expect:"out of order or overlapping"
    (fun w -> { w with Fusion.fentries = first_entry w :: w.Fusion.fentries })

let test_reject_fusion_out_of_range () =
  fusion_error "entry outside the body" ~expect:"outside body" (fun w ->
      let e = first_entry w in
      {
        w with
        Fusion.fentries =
          { e with Fusion.fstart = e.Fusion.fstart + 1000 }
          :: List.tl w.Fusion.fentries;
      })

let test_reject_fusion_stale_mask () =
  fusion_error "mask from an older body" ~expect:"stale mask" (fun w ->
      { w with Fusion.fhot = Array.make (Array.length w.Fusion.fhot + 1) true })

let test_reject_fusion_dropped_entry () =
  fusion_error "table is not the deterministic plan" ~expect:"deterministic"
    (fun w -> { w with Fusion.fentries = List.tl w.Fusion.fentries })

(* An entry whose shape is genuine but whose block contains a call must
   be rejected via the independent effect summary, not trusted because
   the pattern matches. *)
let test_reject_fusion_call_block () =
  let p =
    Compile.program ~name:"fwc" ~main:"main"
      Ast.
        [
          mdef "main" ~params:[]
            [ set "s" (add (call "g" [ i 1 ]) (i 1)); ret (v "s") ];
          mdef "g" ~params:[ "a" ] [ ret (v "a") ];
        ]
  in
  let m = Program.find p "main" in
  let b, blk =
    let found = ref None in
    Array.iteri
      (fun i (blk : Method.block) ->
        if
          !found = None
          && Array.exists
               (function Instr.Call _ -> true | _ -> false)
               blk.Method.body
        then found := Some (i, blk))
      m.Method.blocks;
    Option.get !found
  in
  let start, (pat, len, term) =
    let rec scan i =
      if i >= Array.length blk.Method.body then
        Alcotest.fail "no catalog pattern in the call block"
      else
        match Fusion.match_at blk i with Some r -> (i, r) | None -> scan (i + 1)
    in
    scan 0
  in
  let witness =
    {
      Fusion.fgen = 0;
      fhot = Array.make (Array.length m.Method.blocks) true;
      fentries =
        [
          {
            Fusion.fblock = b;
            fstart = start;
            flen = len;
            fterm = term;
            fpattern = pat;
          };
        ];
    }
  in
  has_error_at "call block forbids fusion"
    (fun d -> d.pass = "fusion" && contains d.message "forbids fusion")
    (Pep_check.validate_fusion ~witness m)

let suite =
  [
    Alcotest.test_case "suite accepted" `Quick test_suite_accepted;
    Alcotest.test_case "synthetic accepted" `Quick test_synthetic_accepted;
    Alcotest.test_case "reject corrupt jump" `Quick test_reject_corrupt_jump;
    Alcotest.test_case "reject stack underflow" `Quick
      test_reject_stack_underflow;
    Alcotest.test_case "reject unbalanced push" `Quick
      test_reject_unbalanced_push;
    Alcotest.test_case "reject bad call arity" `Quick
      test_reject_bad_call_arity;
    Alcotest.test_case "bijection exhaustive" `Quick test_bijection_exhaustive;
    Alcotest.test_case "smart numbering audited" `Quick
      test_smart_numbering_audited;
    Alcotest.test_case "reject zeroed value" `Quick test_reject_zeroed_value;
    Alcotest.test_case "reject corrupt flow" `Quick test_reject_corrupt_flow;
    Alcotest.test_case "reject foreign branch" `Quick
      test_reject_foreign_branch;
    Alcotest.test_case "reject bad path profile" `Quick
      test_reject_bad_path_profile;
    Alcotest.test_case "stack_effect matches interp" `Quick
      test_stack_effect_matches_interp;
    Alcotest.test_case "replay checks clean" `Quick test_replay_checks_clean;
    Alcotest.test_case "fusion: planned table accepted" `Quick
      test_fusion_plan_accepted;
    Alcotest.test_case "fusion: reject cold block" `Quick
      test_reject_fusion_cold_block;
    Alcotest.test_case "fusion: reject wrong pattern" `Quick
      test_reject_fusion_wrong_pattern;
    Alcotest.test_case "fusion: reject overlap" `Quick
      test_reject_fusion_overlap;
    Alcotest.test_case "fusion: reject out-of-range entry" `Quick
      test_reject_fusion_out_of_range;
    Alcotest.test_case "fusion: reject stale hot mask" `Quick
      test_reject_fusion_stale_mask;
    Alcotest.test_case "fusion: reject dropped entry" `Quick
      test_reject_fusion_dropped_entry;
    Alcotest.test_case "fusion: reject call block" `Quick
      test_reject_fusion_call_block;
  ]
