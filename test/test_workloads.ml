(* Benchmark suite sanity: every workload compiles, verifies, runs
   deterministically, and has the structural character it claims. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let test_names_unique () =
  let names = Suite.names in
  check ci "14 benchmarks" 14 (List.length names);
  check ci "unique" 14 (List.length (List.sort_uniq compare names))

let test_all_compile_and_run () =
  List.iter
    (fun (w : Workload.t) ->
      let p = Workload.program ~size:2 w in
      Verify.program p;
      let run () =
        let st = Machine.create ~seed:33 p in
        (Interp.run Interp.no_hooks st, st.Machine.cycles)
      in
      let a = run () and b = run () in
      if a <> b then Alcotest.failf "%s: nondeterministic" w.Workload.name)
    Suite.all

let test_sizes_scale () =
  List.iter
    (fun (w : Workload.t) ->
      let cycles size =
        let st = Machine.create ~seed:1 (Workload.program ~size w) in
        ignore (Interp.run Interp.no_hooks st);
        st.Machine.cycles
      in
      if not (cycles 8 > cycles 2) then
        Alcotest.failf "%s: size does not scale work" w.Workload.name)
    Suite.all

let test_seed_changes_behaviour () =
  (* workloads draw from the PRNG, so different seeds must give
     different checksums for at least most benchmarks *)
  let differing =
    List.length
      (List.filter
         (fun (w : Workload.t) ->
           let r seed =
             let st = Machine.create ~seed (Workload.program ~size:2 w) in
             Interp.run Interp.no_hooks st
           in
           r 1 <> r 2)
         Suite.all)
  in
  check cb "most workloads are seed-sensitive" true (differing >= 10)

let test_pmd_has_uninterruptible () =
  let p = Workload.program ~size:2 (Suite.find "pmd") in
  let m = Program.find p "hash" in
  check cb "pmd hash uninterruptible" true m.Method.uninterruptible

let test_structure () =
  (* every workload has at least one loop and one conditional branch in
     its hot code, or profiling it would be vacuous *)
  List.iter
    (fun (w : Workload.t) ->
      let p = Workload.program ~size:2 w in
      let has_loop = ref false and branches = ref 0 in
      Program.iter_methods
        (fun _ m ->
          let cfg = To_cfg.cfg m in
          let loops = Loops.compute cfg in
          if Loops.headers loops <> [] then has_loop := true;
          branches := !branches + Method.n_branches m)
        p;
      if not !has_loop then Alcotest.failf "%s: no loops" w.Workload.name;
      if !branches < 3 then Alcotest.failf "%s: too few branches" w.Workload.name)
    Suite.all

let test_synthetic_many_seeds () =
  for seed = 100 to 160 do
    let p = Compile.pdef (Synthetic.program ~seed ()) in
    Verify.program p;
    let st = Machine.create ~seed p in
    ignore (Interp.run Interp.no_hooks st)
  done

let test_synthetic_deterministic () =
  let p1 = Synthetic.program ~seed:7 () in
  let p2 = Synthetic.program ~seed:7 () in
  check cb "same seed, same program" true (p1 = p2);
  let p3 = Synthetic.program ~seed:8 () in
  check cb "different seed, different program" true (p1 <> p3)

let suite =
  [
    Alcotest.test_case "names unique" `Quick test_names_unique;
    Alcotest.test_case "all compile and run" `Quick test_all_compile_and_run;
    Alcotest.test_case "sizes scale" `Quick test_sizes_scale;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_behaviour;
    Alcotest.test_case "pmd uninterruptible helper" `Quick test_pmd_has_uninterruptible;
    Alcotest.test_case "structural character" `Quick test_structure;
    Alcotest.test_case "synthetic: many seeds" `Quick test_synthetic_many_seeds;
    Alcotest.test_case "synthetic: deterministic" `Quick test_synthetic_deterministic;
  ]
