(* Edge/path profile containers and the accuracy metrics. *)

let check = Alcotest.check
let ci = Alcotest.int
let cf = Alcotest.float 1e-9

let test_edge_profile_basics () =
  let p = Edge_profile.create () in
  check Alcotest.bool "empty" true (Edge_profile.is_empty p);
  Edge_profile.incr p 0 ~taken:true;
  Edge_profile.incr p 0 ~taken:true;
  Edge_profile.incr p 0 ~taken:false;
  Edge_profile.add p 3 ~taken:false 5;
  check ci "freq br0" 3 (Edge_profile.freq p 0);
  check ci "freq br3" 5 (Edge_profile.freq p 3);
  check ci "total" 8 (Edge_profile.total p);
  check (Alcotest.option cf) "bias br0" (Some (2. /. 3.)) (Edge_profile.bias p 0);
  check (Alcotest.option cf) "bias br3" (Some 0.) (Edge_profile.bias p 3);
  check (Alcotest.option cf) "bias unseen" None (Edge_profile.bias p 9);
  check Alcotest.(list int) "ids" [ 0; 3 ] (Edge_profile.branch_ids p)

let test_edge_profile_flip () =
  let p = Edge_profile.create () in
  Edge_profile.add p 1 ~taken:true 9;
  Edge_profile.add p 1 ~taken:false 1;
  let f = Edge_profile.flip p in
  check (Alcotest.option cf) "flipped bias" (Some 0.1) (Edge_profile.bias f 1);
  (* original untouched *)
  check (Alcotest.option cf) "original bias" (Some 0.9) (Edge_profile.bias p 1)

let test_edge_profile_serialize () =
  let tbl = Edge_profile.create_table ~n_methods:3 in
  Edge_profile.add tbl.(0) 0 ~taken:true 4;
  Edge_profile.add tbl.(2) 7 ~taken:false 2;
  Edge_profile.add tbl.(2) 1 ~taken:true 1;
  let lines = Edge_profile.to_lines tbl in
  let tbl' = Edge_profile.of_lines ~n_methods:3 lines in
  check Alcotest.(list string) "roundtrip" lines (Edge_profile.to_lines tbl');
  check ci "total preserved" (Edge_profile.table_total tbl)
    (Edge_profile.table_total tbl')

let test_path_profile () =
  let p = Path_profile.create () in
  Path_profile.incr p 5;
  Path_profile.incr p 5;
  Path_profile.add p 2 10;
  check ci "total" 12 (Path_profile.total p);
  check ci "distinct" 2 (Path_profile.n_distinct p);
  (match Path_profile.find p 5 with
  | Some e -> check ci "count" 2 e.Path_profile.count
  | None -> Alcotest.fail "missing entry");
  check Alcotest.bool "unknown" true (Path_profile.find p 99 = None)

(* Hand-computed Wall matching.  Two methods; method 0 has paths
   a (freq 100, 2 branches) and b (freq 1, 0 branches — zero flow);
   method 1 has path c (freq 50, 4 branches).  Flows: a=200, b=0, c=200;
   total=400.  Threshold 0.125% => hot = {a, c}; b never qualifies. *)
let nb ~meth ~path_id =
  match (meth, path_id) with
  | 0, 0 -> 2
  | 0, 1 -> 0
  | 1, 0 -> 4
  | _ -> 0

let make_actual () =
  let t = Path_profile.create_table ~n_methods:2 in
  Path_profile.add t.(0) 0 100;
  Path_profile.add t.(0) 1 1;
  Path_profile.add t.(1) 0 50;
  t

let test_wall_perfect_estimate () =
  let actual = make_actual () in
  let acc =
    Accuracy.wall_path_accuracy ~n_branches:nb ~actual ~estimated:actual ()
  in
  check cf "self accuracy" 1.0 acc

let test_wall_half_match () =
  let actual = make_actual () in
  (* estimate's top-2 are c and b (b has zero flow), missing a:
     matched actual flow = 200 of 400 *)
  let est = Path_profile.create_table ~n_methods:2 in
  Path_profile.add est.(0) 1 100;
  Path_profile.add est.(1) 0 60;
  let acc = Accuracy.wall_path_accuracy ~n_branches:nb ~actual ~estimated:est () in
  check cf "half flow matched" 0.5 acc

let test_wall_empty_estimate () =
  let actual = make_actual () in
  let est = Path_profile.create_table ~n_methods:2 in
  let acc = Accuracy.wall_path_accuracy ~n_branches:nb ~actual ~estimated:est () in
  check cf "nothing matched" 0.0 acc

let test_wall_no_hot_paths () =
  let empty = Path_profile.create_table ~n_methods:1 in
  let acc =
    Accuracy.wall_path_accuracy ~n_branches:nb ~actual:empty ~estimated:empty ()
  in
  check cf "vacuous" 1.0 acc

let test_relative_overlap () =
  let a = Edge_profile.create_table ~n_methods:1 in
  Edge_profile.add a.(0) 0 ~taken:true 90;
  Edge_profile.add a.(0) 0 ~taken:false 10;
  Edge_profile.add a.(0) 1 ~taken:true 10;
  (* estimate: br0 bias 0.8 (|0.9-0.8| = 0.1); br1 unseen -> 0.5 default,
     accuracy 0.5.  Weights: br0 100, br1 10. *)
  let e = Edge_profile.create_table ~n_methods:1 in
  Edge_profile.add e.(0) 0 ~taken:true 8;
  Edge_profile.add e.(0) 0 ~taken:false 2;
  let acc = Accuracy.relative_overlap ~actual:a ~estimated:e in
  check cf "weighted bias agreement" ((100. *. 0.9) +. (10. *. 0.5)) (acc *. 110.);
  check cf "self" 1.0 (Accuracy.relative_overlap ~actual:a ~estimated:a)

let test_absolute_overlap () =
  let a = Edge_profile.create_table ~n_methods:1 in
  Edge_profile.add a.(0) 0 ~taken:true 50;
  Edge_profile.add a.(0) 0 ~taken:false 50;
  (* estimate puts everything on the taken arm: min(0.5,1.0) = 0.5 *)
  let e = Edge_profile.create_table ~n_methods:1 in
  Edge_profile.add e.(0) 0 ~taken:true 77;
  check cf "half overlap" 0.5 (Accuracy.absolute_overlap ~actual:a ~estimated:e);
  check cf "self" 1.0 (Accuracy.absolute_overlap ~actual:a ~estimated:a);
  let empty = Edge_profile.create_table ~n_methods:1 in
  check cf "empty actual" 1.0 (Accuracy.absolute_overlap ~actual:empty ~estimated:e)

let test_metrics_bounded_qcheck =
  (* accuracy metrics stay within [0,1] for arbitrary profiles *)
  let gen =
    QCheck2.Gen.(
      list_size (int_bound 20)
        (triple (int_bound 5) bool (int_range 1 1000)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"overlap metrics bounded" gen
       (fun entries ->
         let a = Edge_profile.create_table ~n_methods:1 in
         let e = Edge_profile.create_table ~n_methods:1 in
         List.iteri
           (fun k (br, taken, n) ->
             Edge_profile.add (if k mod 2 = 0 then a.(0) else e.(0)) br ~taken n)
           entries;
         let r = Accuracy.relative_overlap ~actual:a ~estimated:e in
         let ab = Accuracy.absolute_overlap ~actual:a ~estimated:e in
         r >= 0. && r <= 1. +. 1e-9 && ab >= 0. && ab <= 1. +. 1e-9))

let suite =
  [
    Alcotest.test_case "edge profile basics" `Quick test_edge_profile_basics;
    Alcotest.test_case "edge profile flip" `Quick test_edge_profile_flip;
    Alcotest.test_case "edge profile serialize" `Quick test_edge_profile_serialize;
    Alcotest.test_case "path profile" `Quick test_path_profile;
    Alcotest.test_case "wall: perfect" `Quick test_wall_perfect_estimate;
    Alcotest.test_case "wall: half match" `Quick test_wall_half_match;
    Alcotest.test_case "wall: empty estimate" `Quick test_wall_empty_estimate;
    Alcotest.test_case "wall: no hot paths" `Quick test_wall_no_hot_paths;
    Alcotest.test_case "relative overlap" `Quick test_relative_overlap;
    Alcotest.test_case "absolute overlap" `Quick test_absolute_overlap;
    test_metrics_bounded_qcheck;
  ]
