(* The telemetry subsystem's contracts:

   - metrics/trace primitives behave (registration, bucketing, folding,
     JSON escaping);
   - a traced run is deterministic: same seed, same trace bytes;
   - metrics agree between the oracle and threaded engines (modulo the
     engine.* counters that only the threaded engine registers);
   - attaching a sink changes no measurement, and the disabled default
     stays allocation-free at the recording sites. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let cs = Alcotest.string
let csl = Alcotest.(list string)

(* ------------------------- primitives ------------------------- *)

let test_metrics_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m "a.count" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  check ci "counter" 5 (Metrics.value c);
  let c' = Metrics.counter m "a.count" in
  Metrics.incr c';
  check ci "same counter by name" 6 (Metrics.value c);
  let g = Metrics.gauge m "a.gauge" in
  Metrics.set g 42;
  check ci "gauge" 42 (Metrics.read g);
  let h = Metrics.histogram ~bounds:[| 1; 10 |] m "a.hist" in
  List.iter (Metrics.observe h) [ 0; 1; 5; 100 ];
  check ci "hist n" 4 (Metrics.observations h);
  (match Metrics.counter m "a.gauge" with
  | (_ : Metrics.counter) -> Alcotest.fail "kind clash undetected"
  | exception Invalid_argument _ -> ());
  (* registration order is preserved in the rendering *)
  match Metrics.to_lines m with
  | a :: _ -> check cb "first registered first" true (String.length a > 0)
  | [] -> Alcotest.fail "no lines"

let test_trace_json_shape () =
  let tr = Trace.create () in
  let _tid = Trace.begin_thread tr ~name:"run \"one\"" in
  Trace.span tr ~ts:10 ~dur:5 ~cat:"compile" ~name:"baseline m" ();
  Trace.instant tr ~ts:12 ~cat:"sample" ~name:"take"
    ~args:[ ("method", "f\n") ]
    ();
  check ci "length counts thread row + spans + instants" 3 (Trace.length tr);
  let json = Trace.to_json tr in
  check cb "has traceEvents" true
    (String.length json > 0
    && String.sub json 0 15 = "{\"traceEvents\":");
  let contains needle =
    let n = String.length needle and l = String.length json in
    let rec go i = i + n <= l && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  check cb "span phase" true (contains "\"ph\":\"X\"");
  check cb "instant phase" true (contains "\"ph\":\"i\"");
  check cb "thread name metadata" true (contains "thread_name");
  check cb "escaped quote" true (contains "run \\\"one\\\"");
  check cb "escaped newline" true (contains "f\\n")

let test_trace_limit () =
  let tr = Trace.create ~limit:3 () in
  for i = 1 to 5 do
    Trace.instant tr ~ts:i ~cat:"sample" ~name:"x" ()
  done;
  check ci "kept" 3 (Trace.length tr);
  check ci "dropped" 2 (Trace.dropped tr)

let test_folded () =
  let f = Folded.create () in
  Folded.add f ~stack:[ "main"; "a b"; "leaf;1" ] 3;
  Folded.add f ~stack:[ "main"; "a b"; "leaf;1" ] 2;
  Folded.add f ~stack:[ "main" ] 1;
  Folded.add f ~stack:[ "main" ] 0 (* ignored *);
  check ci "total" 6 (Folded.total f);
  check csl "lines hottest first"
    [ "main;a_b;leaf_1 5"; "main 1" ]
    (Folded.to_lines f)

(* ------------------------- end-to-end ------------------------- *)

let pep_profiled =
  Exp_harness.Pep_profiled
    {
      sampling = Sampling.pep ~samples:64 ~stride:17;
      zero = `Hottest;
      numbering = `Smart;
    }

let traced_config () =
  let tel = Telemetry.create ~tracing:true () in
  ( tel,
    {
      Exp_harness.default with
      Exp_harness.profiling = pep_profiled;
      telemetry = Some tel;
    } )

let run_traced ~seed () =
  let env = Exp_harness.make_env ~size:30 ~seed (Suite.find "compress") in
  let tel, config = traced_config () in
  let run = Exp_harness.replay env config in
  (tel, run)

let test_trace_deterministic () =
  let tel1, run1 = run_traced ~seed:11 () in
  let tel2, run2 = run_traced ~seed:11 () in
  check ci "checksums" run1.Exp_harness.meas.checksum
    run2.Exp_harness.meas.checksum;
  let json t = Trace.to_json (Option.get (Telemetry.trace t)) in
  check cb "trace non-trivial" true
    (Trace.length (Option.get (Telemetry.trace tel1)) > 10);
  check cs "byte-identical trace JSON" (json tel1) (json tel2);
  check csl "byte-identical metrics"
    (Metrics.to_lines (Telemetry.metrics tel1))
    (Metrics.to_lines (Telemetry.metrics tel2))

let test_metrics_cover_subsystems () =
  let tel, _run = run_traced ~seed:11 () in
  let lines = Metrics.to_lines (Telemetry.metrics tel) in
  let has prefix =
    List.exists (fun l -> String.starts_with ~prefix l) lines
  in
  List.iter
    (fun p -> check cb ("metric " ^ p) true (has p))
    [
      "vm.yieldpoint.polls";
      "vm.ticks";
      "vm.compile.baseline";
      "vm.compile.units";
      "pep.samples.taken";
      "pep.path.promotions";
      "engine.translations";
      "engine.ic.hits";
    ]

(* The engines must agree on everything the simulation defines; only the
   engine.* counters are engine-specific (the oracle has no inline
   caches or translations to count). *)
let test_metrics_parity_across_engines () =
  let run engine =
    let env = Exp_harness.make_env ~size:30 ~seed:13 (Suite.find "jess") in
    let tel = Telemetry.create () in
    let config =
      {
        Exp_harness.default with
        Exp_harness.profiling = pep_profiled;
        engine;
        telemetry = Some tel;
      }
    in
    let run = Exp_harness.replay env config in
    (tel, run)
  in
  let tel_o, run_o = run `Oracle in
  let tel_t, run_t = run `Threaded in
  check ci "iter2 parity" run_o.Exp_harness.meas.iter2
    run_t.Exp_harness.meas.iter2;
  let sim_lines t =
    List.filter
      (fun l -> not (String.starts_with ~prefix:"engine." l))
      (Metrics.to_lines (Telemetry.metrics t))
  in
  check csl "simulation metrics identical across engines" (sim_lines tel_o)
    (sim_lines tel_t)

(* Attaching a sink must not change any measurement: recording is
   host-side only. *)
let test_enabled_changes_nothing () =
  let env = Exp_harness.make_env ~size:30 ~seed:17 (Suite.find "db") in
  let plain =
    Exp_harness.replay env
      { Exp_harness.default with Exp_harness.profiling = pep_profiled }
  in
  let _tel, traced = run_traced ~seed:17 () in
  ignore traced;
  let tel, config = traced_config () in
  let with_tel = Exp_harness.replay env config in
  check cb "sink saw events" true
    (Trace.length (Option.get (Telemetry.trace tel)) > 0);
  let m (r : Exp_harness.run) = r.Exp_harness.meas in
  check ci "iter1" (m plain).iter1 (m with_tel).iter1;
  check ci "iter2" (m plain).iter2 (m with_tel).iter2;
  check ci "compile" (m plain).compile (m with_tel).compile;
  check ci "checksum" (m plain).checksum (m with_tel).checksum;
  check csl "pep paths identical"
    (Path_profile.to_lines (Option.get plain.Exp_harness.pep).Pep.paths)
    (Path_profile.to_lines (Option.get with_tel.Exp_harness.pep).Pep.paths)

(* With telemetry disabled (the default), steady-state threaded
   execution must stay allocation-free — the recording sites compile to
   a single immutable option test. *)
let test_disabled_allocation_free () =
  let program =
    Ast.(
      Compile.program ~name:"tel_alloc" ~main:"main"
        [
          mdef "main" ~params:[]
            [
              set "s" (i 0);
              for_ "k" (i 0) (i 1000)
                [ set "s" (add (v "s") (call "leaf" [ v "k"; v "s" ])) ];
              ret (v "s");
            ];
          mdef "leaf" ~params:[ "a"; "b" ]
            [ ret (add (mul (v "a") (i 3)) (band (v "b") (i 1023))) ];
        ])
  in
  let st = Machine.create ~seed:1 program in
  let eng = Codegen.create st in
  ignore (Codegen.run eng) (* warm-up *);
  let w0 = Gc.minor_words () in
  ignore (Codegen.run eng);
  let words = Gc.minor_words () -. w0 in
  check cb
    (Fmt.str "steady-state allocation %.0f words < 256" words)
    true (words < 256.0)

let test_profile_export () =
  let env = Exp_harness.make_env ~size:30 ~seed:19 (Suite.find "jython") in
  let run =
    Exp_harness.replay env
      { Exp_harness.default with Exp_harness.profiling = pep_profiled }
  in
  let d = run.Exp_harness.driver in
  (match Profile_export.of_driver d `Paths with
  | None -> Alcotest.fail "paths export missing"
  | Some f ->
      check cb "paths non-empty" true (Folded.total f > 0);
      List.iter
        (fun line ->
          match String.rindex_opt line ' ' with
          | None -> Alcotest.failf "unparseable folded line %S" line
          | Some i ->
              let v = String.sub line (i + 1) (String.length line - i - 1) in
              check cb "value is numeric" true (int_of_string_opt v <> None))
        (Folded.to_lines f));
  (match Profile_export.of_driver d `Edges with
  | None -> Alcotest.fail "edges export missing"
  | Some f -> check cb "edges non-empty" true (Folded.total f > 0));
  match Profile_export.of_driver d `Dcg with
  | None -> Alcotest.fail "dcg export missing"
  | Some f -> check cb "dcg non-empty" true (Folded.total f > 0)

(* A traced parallel sweep must record the same work as the serial one:
   per-worker sinks are merged into the main sink after the join, so the
   span and instant populations match jobs=1 exactly; the only parallel
   artifact is one extra trace thread row per worker. *)
let test_traced_parallel_sweep () =
  let count needle hay =
    let n = String.length needle and l = String.length hay in
    let rec go i acc =
      if i + n > l then acc
      else go (i + 1) (if String.sub hay i n = needle then acc + 1 else acc)
    in
    go 0 0
  in
  let sweep jobs =
    let tel = Telemetry.create ~tracing:true () in
    let config =
      {
        Exp_harness.default with
        Exp_harness.profiling = pep_profiled;
        telemetry = Some tel;
      }
    in
    let caches =
      List.map
        (fun name ->
          Exp_cache.create ~config
            (Exp_harness.make_env ~size:25 ~seed:29 (Suite.find name)))
        [ "compress"; "db" ]
    in
    let tasks =
      List.concat_map
        (fun cache ->
          List.map
            (fun profiling ->
              { Exp_pool.cache; config = { config with profiling } })
            [ Exp_harness.Base; pep_profiled; Exp_harness.Perfect_path ])
        caches
    in
    Exp_pool.run_tasks ~jobs ~telemetry:tel tasks;
    (tel, caches)
  in
  let tel1, caches1 = sweep 1 in
  let tel4, caches4 = sweep 4 in
  (* same runs, same measurements *)
  List.iter2
    (fun c1 c4 ->
      List.iter2
        (fun (k1, (r1 : Exp_harness.run)) (k4, (r4 : Exp_harness.run)) ->
          check cs "run key" k1 k4;
          check ci (k1 ^ " iter2") r1.meas.iter2 r4.meas.iter2;
          check ci (k1 ^ " checksum") r1.meas.checksum r4.meas.checksum)
        (Exp_cache.all_runs c1) (Exp_cache.all_runs c4))
    caches1 caches4;
  let json t = Trace.to_json (Option.get (Telemetry.trace t)) in
  let j1 = json tel1 and j4 = json tel4 in
  check cb "chrome trace shape" true
    (String.sub j4 0 15 = "{\"traceEvents\":");
  check ci "same span count" (count "\"ph\":\"X\"" j1) (count "\"ph\":\"X\"" j4);
  check ci "same instant count"
    (count "\"ph\":\"i\"" j1)
    (count "\"ph\":\"i\"" j4);
  check ci "no worker rows when serial" 0 (count "worker " j1);
  check ci "one trace thread per worker" 4 (count "\"worker " j4);
  (* merged counters equal the serial totals; the one gauge
     (vm.compile.cycles) merges as a max over workers, so it is only
     order-independent, not comparable to the serial last-write *)
  let m t =
    List.sort compare
      (List.filter
         (fun l -> not (String.starts_with ~prefix:"vm.compile.cycles" l))
         (Metrics.to_lines (Telemetry.metrics t)))
  in
  check csl "merged metrics equal serial" (m tel1) (m tel4)

let suite =
  [
    Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
    Alcotest.test_case "trace JSON shape" `Quick test_trace_json_shape;
    Alcotest.test_case "trace event limit" `Quick test_trace_limit;
    Alcotest.test_case "folded stacks" `Quick test_folded;
    Alcotest.test_case "trace deterministic" `Quick test_trace_deterministic;
    Alcotest.test_case "metrics cover subsystems" `Quick
      test_metrics_cover_subsystems;
    Alcotest.test_case "metrics parity across engines" `Quick
      test_metrics_parity_across_engines;
    Alcotest.test_case "enabled sink changes nothing" `Quick
      test_enabled_changes_nothing;
    Alcotest.test_case "disabled telemetry allocation-free" `Quick
      test_disabled_allocation_free;
    Alcotest.test_case "profile export folded stacks" `Quick
      test_profile_export;
    Alcotest.test_case "traced parallel sweep merges cleanly" `Slow
      test_traced_parallel_sweep;
  ]
