(* The dataflow framework and its clients: solver fixpoints, hand-checked
   liveness and interval results, and — the soundness contract — QCheck
   differentials that rewrite programs along what the analyses claim
   (folding provably-constant loads, deleting provably-dead stores) and
   demand bit-identical interpreter results. *)

open Ast

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let compile mdefs = Compile.program ~name:"t" ~main:"main" mdefs

let run_program ?(seed = 3) program =
  Interp.run Interp.no_hooks (Machine.create ~seed program)

(* Re-run with some methods' bodies rewritten in the machine (the
   program itself is immutable) — the recompile path every transform
   test uses. *)
let run_rewritten ?(seed = 3) program rewrite =
  let st = Machine.create ~seed program in
  Program.iter_methods
    (fun midx m ->
      match rewrite m with Some m' -> Machine.recompile st midx m' | None -> ())
    program;
  Interp.run Interp.no_hooks st

let clone_meth (m : Method.t) =
  {
    m with
    Method.blocks =
      Array.map
        (fun (b : Method.block) ->
          { b with Method.body = Array.copy b.Method.body })
        m.Method.blocks;
  }

(* --- solver -------------------------------------------------------- *)

(* Forward reachability: bottom = unreached, init = reached.  Every
   CFG block is reachable by construction, so the solution is [true]
   everywhere, and solving twice gives identical transfer counts
   (the worklist is deterministic). *)
module Reach = struct
  type t = bool

  let bottom = false
  let equal = Bool.equal
  let join = ( || )
  let pp = Fmt.bool
end

module Reach_solver = Dataflow.Solver (Reach)

let loopy_method () =
  let p =
    compile
      [
        mdef "main" ~params:[]
          [
            set "s" (i 0);
            for_ "k" (i 0) (i 10)
              [ if_ (gt (v "k") (i 5)) [ set "s" (add (v "s") (v "k")) ] [] ];
            ret (v "s");
          ];
      ]
  in
  Program.find p "main"

let test_solver_forward_reach () =
  let cfg = To_cfg.cfg (loopy_method ()) in
  let solve () =
    Reach_solver.solve ~direction:Dataflow.Forward ~init:true
      ~transfer:(fun _ s -> s)
      cfg
  in
  let s1 = solve () and s2 = solve () in
  Array.iteri
    (fun b r -> check cb (Fmt.str "block %d reached" b) true r)
    s1.Reach_solver.inb;
  check ci "deterministic transfer count" s1.transfers s2.transfers;
  check cb "did some work" true (s1.transfers >= Cfg.n_blocks cfg)

let test_solver_backward_direction () =
  (* backward with init at the exit: still reaches every block, since
     every block co-reaches the exit in a well-formed CFG *)
  let cfg = To_cfg.cfg (loopy_method ()) in
  let s =
    Reach_solver.solve ~direction:Dataflow.Backward ~init:true
      ~transfer:(fun _ s -> s)
      cfg
  in
  Array.iteri
    (fun b r -> check cb (Fmt.str "block %d co-reaches exit" b) true r)
    s.Reach_solver.inb

(* --- liveness ------------------------------------------------------ *)

let test_dead_store_found () =
  let p =
    compile
      [ mdef "main" ~params:[] [ set "a" (i 1); set "a" (i 2); ret (v "a") ] ]
  in
  let m = Program.find p "main" in
  match Liveness.dead_stores m with
  | [ d ] ->
      check ci "dead store local" 0 d.Liveness.local;
      check cb "kind is store" true (d.Liveness.kind = `Store)
  | ds -> Alcotest.failf "expected exactly one dead store, got %d" (List.length ds)

let test_live_loop_clean () =
  (* every store in a straightforward accumulation loop is read later *)
  check ci "no dead stores" 0 (List.length (Liveness.dead_stores (loopy_method ())))

let test_liveness_loop_carried () =
  (* the accumulator is live around the back edge: at the loop-header
     entry it must be in the live set *)
  let m = loopy_method () in
  let cfg = To_cfg.cfg m in
  let loops = Loops.compute cfg in
  let live = Liveness.analyze m in
  List.iter
    (fun h ->
      check cb
        (Fmt.str "accumulator live at loop header %d" h)
        true
        (Liveness.S.mem 0 live.Liveness.live_in.(h)))
    (Loops.headers loops)

(* --- intervals ----------------------------------------------------- *)

let test_const_branch_detected () =
  let p =
    compile
      [
        mdef "main" ~params:[]
          [
            set "x" (i 5);
            if_ (gt (v "x") (i 3)) [ ret (i 1) ] [ ret (i 0) ];
          ];
      ]
  in
  let m = Program.find p "main" in
  let a = Intervals.analyze m in
  let found =
    List.exists
      (function
        | Intervals.Const_branch { always_taken = true; _ } -> true | _ -> false)
      (Intervals.findings ~heap_size:p.Program.heap_size m a)
  in
  check cb "always-taken branch found" true found

let test_widening_terminates () =
  (* a million iterations: without widening at the header the interval
     of [i] would grow one step per solver round *)
  let p =
    compile
      [
        mdef "main" ~params:[]
          [
            set "n" (i 0);
            while_ (lt (v "n") (i 1000000)) [ set "n" (add (v "n") (i 1)) ];
            ret (v "n");
          ];
      ]
  in
  let m = Program.find p "main" in
  let a = Intervals.analyze m in
  (* soundness: the actual return value lies in the result interval *)
  (match Intervals.result_interval m a with
  | Some itv -> check cb "1000000 in result interval" true (Intervals.mem 1000000 itv)
  | None -> Alcotest.fail "exit unreachable");
  check cb "tracked some stack depth" true (a.Intervals.max_depth >= 1)

let test_check_fold_validates () =
  let p =
    compile [ mdef "main" ~params:[] [ set "x" (i 5); ret (add (v "x") (i 1)) ] ]
  in
  let m = Program.find p "main" in
  let a = Intervals.analyze m in
  match Intervals.folds m a with
  | [] -> Alcotest.fail "expected a provably-constant load"
  | (b, idx, k) :: _ ->
      check ci "folded constant" 5 k;
      (match Intervals.check_fold m a ~block:b ~index:idx ~const:k with
      | Ok () -> ()
      | Error e -> Alcotest.failf "valid fold rejected: %s" e);
      (* a miscompiled fold — wrong constant — must be rejected *)
      (match Intervals.check_fold m a ~block:b ~index:idx ~const:(k + 1) with
      | Ok () -> Alcotest.fail "wrong constant accepted"
      | Error _ -> ())

(* --- pass-5 lints over the whole suite: zero false positives ------- *)

let test_justify_suite_clean () =
  List.iter
    (fun (w : Workload.t) ->
      let p = Workload.program ~size:2 w in
      Program.iter_methods
        (fun _ m ->
          match Pep_check.errors (Pep_check.justify_unsafe p m) with
          | [] -> ()
          | d :: _ ->
              Alcotest.failf "%s/%s: %a" w.Workload.name m.Method.name
                Pep_check.pp_diagnostic d)
        p)
    Suite.all

let test_deep_suite_clean () =
  List.iter
    (fun (w : Workload.t) ->
      match Pep_check.errors (Pep_check.check_program_deep (Workload.program ~size:2 w)) with
      | [] -> ()
      | d :: _ ->
          Alcotest.failf "%s: %a" w.Workload.name Pep_check.pp_diagnostic d)
    Suite.all

(* --- effects ------------------------------------------------------- *)

let test_effects_transitive () =
  let p =
    compile
      [
        mdef "w" ~params:[ "x" ] [ gset 0 (v "x"); ret (i 0) ];
        mdef "mid" ~params:[ "x" ] [ ret (call "w" [ v "x" ]) ];
        mdef "pure" ~params:[ "x" ] [ ret (mul (v "x") (v "x")) ];
        mdef "main" ~params:[]
          [ expr (call "mid" [ i 1 ]); ret (call "pure" [ i 2 ]) ];
      ]
  in
  let s = Effects.summarize p in
  let e name = Effects.method_effect s (Program.index p name) in
  check cb "w writes globals" true (e "w").Effects.writes_global;
  check cb "mid inherits the write" true (e "mid").Effects.writes_global;
  check cb "pure is pure" true (Effects.equal (e "pure") Effects.pure);
  check cb "pure is unobservable" false (Effects.observable (e "pure"));
  check cb "main inherits transitively" true (e "main").Effects.writes_global;
  (* block-level fusability: blocks containing calls are excluded *)
  let midx = Program.index p "main" in
  let m = Program.find p "main" in
  check cb "main has non-fusable blocks" true
    (List.length (Effects.fusable_blocks s midx) < Array.length m.Method.blocks)

(* --- QCheck differentials vs the interpreter ----------------------- *)

let seed_gen = QCheck.make QCheck.Gen.(int_range 500 579)

(* Folding every provably-constant load must not change the program's
   result (interval soundness: the interval really contains every value
   the load can push). *)
let prop_fold_differential =
  QCheck.Test.make ~count:80 ~name:"interval folds preserve results" seed_gen
    (fun seed ->
      let p = Compile.pdef (Synthetic.program ~seed ()) in
      let expected = run_program p in
      let rewrite (m : Method.t) =
        match Intervals.folds m (Intervals.analyze m) with
        | [] -> None
        | folds ->
            let m' = clone_meth m in
            List.iter
              (fun (b, idx, k) ->
                m'.Method.blocks.(b).Method.body.(idx) <- Instr.Const k)
              folds;
            Some m'
      in
      run_rewritten p rewrite = expected)

(* Deleting every provably-dead store must not change the result
   (liveness soundness: no execution reads the stored value).  A dead
   [Store] becomes [Pop] to preserve the stack discipline; a dead [Inc]
   (no stack effect) is deleted outright. *)
let prop_dead_store_differential =
  QCheck.Test.make ~count:80 ~name:"dead-store deletion preserves results"
    seed_gen (fun seed ->
      let p = Compile.pdef (Synthetic.program ~seed ()) in
      let expected = run_program p in
      let rewrite (m : Method.t) =
        match Liveness.dead_stores m with
        | [] -> None
        | ds ->
            let m' = clone_meth m in
            (* per block, highest index first, so deletions keep the
               remaining indices valid *)
            List.iter
              (fun (d : Liveness.dead_store) ->
                let blk = m'.Method.blocks.(d.Liveness.block) in
                match d.Liveness.kind with
                | `Store -> blk.Method.body.(d.Liveness.index) <- Instr.Pop
                | `Inc ->
                    let body = Array.to_list blk.Method.body in
                    let body =
                      List.filteri (fun j _ -> j <> d.Liveness.index) body
                    in
                    m'.Method.blocks.(d.Liveness.block) <-
                      { blk with Method.body = Array.of_list body })
              (List.sort
                 (fun (a : Liveness.dead_store) b ->
                   compare (b.block, b.index) (a.block, a.index))
                 ds);
            Some m'
      in
      run_rewritten p rewrite = expected)

(* Effect-summary soundness: a program whose transitive entry effect
   claims no global/heap writes must leave globals/heap untouched. *)
let prop_effects_sound =
  QCheck.Test.make ~count:80 ~name:"effect summaries sound vs execution"
    seed_gen (fun seed ->
      let p = Compile.pdef (Synthetic.program ~seed ()) in
      let s = Effects.summarize p in
      let main = Effects.method_effect s (Program.index p p.Program.main) in
      let st = Machine.create ~seed:3 p in
      ignore (Interp.run Interp.no_hooks st);
      let untouched a = Array.for_all (fun x -> x = 0) a in
      (main.Effects.writes_global || untouched st.Machine.globals)
      && (main.Effects.writes_heap || untouched st.Machine.heap))

(* Interval soundness at method exit, observed via the return value of
   the whole program (main's result interval must contain it). *)
let prop_result_interval_sound =
  QCheck.Test.make ~count:80 ~name:"result interval contains the result"
    seed_gen (fun seed ->
      let p = Compile.pdef (Synthetic.program ~seed ()) in
      let result = run_program p in
      let m = Program.find p p.Program.main in
      match Intervals.result_interval m (Intervals.analyze m) with
      | Some itv -> Intervals.mem result itv
      | None -> false)

let suite =
  [
    Alcotest.test_case "solver forward reach" `Quick test_solver_forward_reach;
    Alcotest.test_case "solver backward direction" `Quick
      test_solver_backward_direction;
    Alcotest.test_case "dead store found" `Quick test_dead_store_found;
    Alcotest.test_case "live loop clean" `Quick test_live_loop_clean;
    Alcotest.test_case "loop-carried liveness" `Quick test_liveness_loop_carried;
    Alcotest.test_case "const branch detected" `Quick test_const_branch_detected;
    Alcotest.test_case "widening terminates" `Quick test_widening_terminates;
    Alcotest.test_case "check_fold validates" `Quick test_check_fold_validates;
    Alcotest.test_case "justify suite clean" `Quick test_justify_suite_clean;
    Alcotest.test_case "deep suite clean" `Quick test_deep_suite_clean;
    Alcotest.test_case "effects transitive" `Quick test_effects_transitive;
    QCheck_alcotest.to_alcotest prop_fold_differential;
    QCheck_alcotest.to_alcotest prop_dead_store_differential;
    QCheck_alcotest.to_alcotest prop_effects_sound;
    QCheck_alcotest.to_alcotest prop_result_interval_sound;
  ]
