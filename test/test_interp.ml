(* Interpreter semantics and cost accounting. *)

open Ast

let check = Alcotest.check
let ci = Alcotest.int

let run_main ?(seed = 1) ?(n_globals = 8) ?(heap_size = 16) defs =
  let p = Compile.program ~name:"t" ~n_globals ~heap_size ~main:"main" defs in
  Verify.program p;
  let st = Machine.create ~seed p in
  (Interp.run Interp.no_hooks st, st)

let test_arith () =
  let r, _ =
    run_main
      [
        mdef "main" ~params:[]
          [
            set "a" (add (mul (i 6) (i 7)) (sub (i 10) (i 3)));
            set "a" (bxor (v "a") (i 5));
            set "a" (shl (v "a") (i 2));
            set "a" (shr (v "a") (i 1));
            set "a" (rem (v "a") (i 100));
            ret (v "a");
          ];
      ]
  in
  (* ((42+7) xor 5) = 52; 52<<2 = 208; >>1 = 104; mod 100 = 4 *)
  check ci "arith" 4 r

let test_div_by_zero () =
  let r, _ =
    run_main
      [ mdef "main" ~params:[] [ ret (add (div (i 7) (i 0)) (rem (i 7) (i 0))) ] ]
  in
  check ci "div/rem by zero yield 0" 0 r

let test_factorial () =
  let fact =
    mdef "fact" ~params:[ "n" ]
      [
        if_ (le (v "n") (i 1)) [ ret (i 1) ] [];
        ret (mul (v "n") (call "fact" [ sub (v "n") (i 1) ]));
      ]
  in
  let main = mdef "main" ~params:[] [ ret (call "fact" [ i 10 ]) ] in
  let r, _ = run_main [ main; fact ] in
  check ci "10!" 3628800 r

let test_fib_loop () =
  let main =
    mdef "main" ~params:[]
      [
        set "a" (i 0);
        set "b" (i 1);
        for_ "k" (i 0) (i 20)
          [ set "t" (add (v "a") (v "b")); set "a" (v "b"); set "b" (v "t") ];
        ret (v "a");
      ]
  in
  let r, _ = run_main [ main ] in
  check ci "fib 20" 6765 r

let test_heap_wraparound () =
  let main =
    mdef "main" ~params:[]
      [
        hset (i 20) (i 7);
        (* heap_size 16: index 20 wraps to 4; negative index -12 wraps to 4 *)
        ret (h (neg (i 12)));
      ]
  in
  let r, _ = run_main ~heap_size:16 [ main ] in
  check ci "wrap" 7 r

let test_globals_shared_across_calls () =
  let inc = mdef "bump" ~params:[ "x" ] [ gset 0 (add (g 0) (v "x")); ret (g 0) ] in
  let main =
    mdef "main" ~params:[]
      [ expr (call "bump" [ i 5 ]); expr (call "bump" [ i 6 ]); ret (g 0) ]
  in
  let r, _ = run_main [ main; inc ] in
  check ci "globals" 11 r

let test_call_arg_order () =
  let f = mdef "f" ~params:[ "a"; "b" ] [ ret (sub (v "a") (v "b")) ] in
  let main = mdef "main" ~params:[] [ ret (call "f" [ i 10; i 3 ]) ] in
  let r, _ = run_main [ main; f ] in
  check ci "args in order" 7 r

let test_rand_deterministic () =
  let main =
    mdef "main" ~params:[]
      [
        set "s" (i 0);
        for_ "k" (i 0) (i 100) [ set "s" (add (v "s") (rnd 1000)) ];
        ret (v "s");
      ]
  in
  let r1, _ = run_main ~seed:7 [ main ] in
  let r2, _ = run_main ~seed:7 [ main ] in
  let r3, _ = run_main ~seed:8 [ main ] in
  check ci "same seed same stream" r1 r2;
  check Alcotest.bool "different seed different stream" true (r1 <> r3)

let test_cycles_accumulate () =
  let body n =
    [
      set "s" (i 0);
      for_ "k" (i 0) (i n) [ set "s" (add (v "s") (v "k")) ];
      ret (v "s");
    ]
  in
  let _, st1 = run_main [ mdef "main" ~params:[] (body 10) ] in
  let _, st2 = run_main [ mdef "main" ~params:[] (body 1000) ] in
  check Alcotest.bool "more work, more cycles" true
    (st2.Machine.cycles > st1.Machine.cycles * 10)

let test_stack_overflow () =
  let f = mdef "f" ~params:[ "x" ] [ ret (call "f" [ add (v "x") (i 1) ]) ] in
  let main = mdef "main" ~params:[] [ ret (call "f" [ i 0 ]) ] in
  let p = Compile.program ~name:"t" ~main:"main" [ main; f ] in
  let st = Machine.create ~seed:1 p in
  match Interp.run Interp.no_hooks st with
  | (_ : int) -> Alcotest.fail "expected Runtime_error"
  | exception Interp.Runtime_error _ -> ()

let test_timer_flag_sets () =
  (* with a tiny first tick, the flag must be raised at some yieldpoint *)
  let main =
    mdef "main" ~params:[]
      [
        set "s" (i 0);
        for_ "k" (i 0) (i 50) [ set "s" (add (v "s") (i 1)) ];
        ret (v "s");
      ]
  in
  let p = Compile.program ~name:"t" ~main:"main" [ main ] in
  let st = Machine.create ~tick_offset:10 ~seed:1 p in
  let seen = ref false in
  let hooks =
    {
      Interp.no_hooks with
      on_yieldpoint =
        Some (fun (st : Machine.t) _ _ -> if st.yield_flag then seen := true);
    }
  in
  ignore (Interp.run hooks st);
  check Alcotest.bool "flag observed" true !seen

let test_edge_hook_sees_all_branches () =
  let main =
    mdef "main" ~params:[]
      [
        set "s" (i 0);
        for_ "k" (i 0) (i 10)
          [ if_ (eq (band (v "k") (i 1)) (i 0)) [ set "s" (add (v "s") (i 1)) ] [] ];
        ret (v "s");
      ]
  in
  let p = Compile.program ~name:"t" ~main:"main" [ main ] in
  let st = Machine.create ~seed:1 p in
  let taken = ref 0 and not_taken = ref 0 in
  let cm = Machine.cmeth st 0 in
  let hooks =
    {
      Interp.no_hooks with
      on_edge =
        Some
          (fun _ _ ~src ~idx ~dst:_ ->
            match Cfg.terminator cm.Machine.cfg src with
            | Cfg.Branch _ -> if idx = 0 then incr taken else incr not_taken
            | Cfg.Return | Cfg.Jump _ -> ());
    }
  in
  let r = Interp.run hooks st in
  check ci "result" 5 r;
  (* for-loop header: 10 taken + 1 exit; inner if: 5/5 *)
  check ci "taken" 15 !taken;
  check ci "not taken" 6 !not_taken

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "division by zero" `Quick test_div_by_zero;
    Alcotest.test_case "recursion: factorial" `Quick test_factorial;
    Alcotest.test_case "loop: fibonacci" `Quick test_fib_loop;
    Alcotest.test_case "heap wraparound" `Quick test_heap_wraparound;
    Alcotest.test_case "globals shared" `Quick test_globals_shared_across_calls;
    Alcotest.test_case "call argument order" `Quick test_call_arg_order;
    Alcotest.test_case "rand determinism" `Quick test_rand_deterministic;
    Alcotest.test_case "cycles accumulate" `Quick test_cycles_accumulate;
    Alcotest.test_case "stack overflow" `Quick test_stack_overflow;
    Alcotest.test_case "timer flag" `Quick test_timer_flag_sets;
    Alcotest.test_case "edge hook coverage" `Quick test_edge_hook_sees_all_branches;
  ]
