(* Loop unrolling: semantics preservation, branch-id sharing, and the
   interaction with suppressed yieldpoints. *)

open Ast

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let run_with_unroll program =
  let st = Machine.create ~seed:7 program in
  Program.iter_methods
    (fun midx m ->
      let r = Unroll.expand m in
      if r.Unroll.unrolled > 0 then begin
        ignore (Verify.block_depths program r.Unroll.meth);
        Machine.recompile st midx ~no_yieldpoint:r.Unroll.no_yieldpoint
          r.Unroll.meth
      end)
    program;
  Interp.run Interp.no_hooks st

let run_plain program =
  let st = Machine.create ~seed:7 program in
  Interp.run Interp.no_hooks st

let test_unroll_preserves_semantics () =
  let program =
    Compile.program ~name:"t" ~main:"main"
      [
        mdef "main" ~params:[]
          [
            set "s" (i 0);
            for_ "k" (i 0) (i 101)
              [
                if_ (eq (band (v "k") (i 3)) (i 0))
                  [ set "s" (add (v "s") (v "k")) ]
                  [ set "s" (add (v "s") (i 1)) ];
              ];
            ret (v "s");
          ];
      ]
  in
  check ci "same result" (run_plain program) (run_with_unroll program)

let test_unroll_duplicates_blocks_not_branches () =
  let m =
    Compile.method_
      (mdef "m" ~params:[]
         [
           set "s" (i 0);
           for_ "k" (i 0) (i 10)
             [ if_ (gt (v "k") (i 5)) [ set "s" (add (v "s") (i 1)) ] [] ];
           ret (v "s");
         ])
  in
  let r = Unroll.expand m in
  check ci "one loop unrolled" 1 r.Unroll.unrolled;
  check cb "blocks grew" true
    (Array.length r.Unroll.meth.Method.blocks > Array.length m.Method.blocks);
  (* the duplicated branches reuse the original bytecode branch ids *)
  check Alcotest.(list int) "branch ids unchanged"
    (Method.branch_ids m)
    (Method.branch_ids r.Unroll.meth)

let test_unroll_skips_multi_backedge () =
  (* a loop with continue has two back edges and must be left alone *)
  let m =
    Compile.method_
      (mdef "m" ~params:[]
         [
           set "s" (i 0);
           set "k" (i 0);
           while_
             (lt (v "k") (i 10))
             [
               set "k" (add (v "k") (i 1));
               if_ (eq (band (v "k") (i 1)) (i 0)) [ continue_ ] [];
               set "s" (add (v "s") (v "k"));
             ];
           ret (v "s");
         ])
  in
  let r = Unroll.expand m in
  check ci "not unrolled" 0 r.Unroll.unrolled

let test_unroll_respects_no_yieldpoint () =
  let m =
    Compile.method_
      (mdef "m" ~params:[]
         [
           set "s" (i 0);
           for_ "k" (i 0) (i 10) [ set "s" (add (v "s") (v "k")) ];
           ret (v "s");
         ])
  in
  (* flag every block: the loop must be skipped *)
  let all = Array.make (Array.length m.Method.blocks) true in
  let r = Unroll.expand ~no_yieldpoint:all m in
  check ci "suppressed loop not unrolled" 0 r.Unroll.unrolled

let test_unroll_halves_header_yieldpoints () =
  let program =
    Compile.program ~name:"t" ~main:"main"
      [
        mdef "main" ~params:[]
          [
            set "s" (i 0);
            for_ "k" (i 0) (i 100) [ set "s" (add (v "s") (i 1)) ];
            ret (v "s");
          ];
      ]
  in
  let count_yps program recompiled =
    let st = Machine.create ~seed:1 program in
    if recompiled then begin
      let m = Program.find program "main" in
      let r = Unroll.expand m in
      Machine.recompile st 0 ~no_yieldpoint:r.Unroll.no_yieldpoint r.Unroll.meth
    end;
    let n = ref 0 in
    let hooks =
      {
        Interp.no_hooks with
        on_yieldpoint = Some (fun _ _ _ -> incr n);
      }
    in
    ignore (Interp.run hooks st);
    !n
  in
  let before = count_yps program false in
  let after = count_yps program true in
  (* the loop header executes half as often per completed pair *)
  check cb "fewer yieldpoint executions" true (after < before);
  check cb "roughly halved" true (after > before / 3)

let test_unroll_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:30 ~name:"unrolling preserves semantics"
       QCheck2.Gen.(int_range 1 1_000_000)
       (fun seed ->
         let program = Compile.pdef (Synthetic.program ~seed ~n_methods:3 ()) in
         run_plain program = run_with_unroll program))

let test_unroll_workloads () =
  List.iter
    (fun name ->
      let program = Workload.program ~size:2 (Suite.find name) in
      check ci name (run_plain program) (run_with_unroll program))
    [ "compress"; "db"; "fop"; "mpegaudio"; "pseudojbb"; "antlr" ]

let test_unroll_driver_end_to_end () =
  let env = Exp_harness.make_env ~seed:13 ~size:40 (Suite.find "fop") in
  let plain = Exp_harness.replay env Exp_harness.default in
  let unrolled =
    Exp_harness.replay env { Exp_harness.default with Exp_harness.unroll = true }
  in
  check ci "checksums agree" plain.Exp_harness.meas.checksum
    unrolled.Exp_harness.meas.checksum;
  check cb "loops unrolled" true
    (Driver.unrolled_loops unrolled.Exp_harness.driver > 0)

let suite =
  [
    Alcotest.test_case "preserves semantics" `Quick test_unroll_preserves_semantics;
    Alcotest.test_case "shares branch ids" `Quick test_unroll_duplicates_blocks_not_branches;
    Alcotest.test_case "skips multi-back-edge loops" `Quick test_unroll_skips_multi_backedge;
    Alcotest.test_case "respects no-yieldpoint" `Quick test_unroll_respects_no_yieldpoint;
    Alcotest.test_case "halves header yieldpoints" `Quick test_unroll_halves_header_yieldpoints;
    test_unroll_qcheck;
    Alcotest.test_case "workloads preserved" `Quick test_unroll_workloads;
    Alcotest.test_case "driver end-to-end" `Quick test_unroll_driver_end_to_end;
  ]
