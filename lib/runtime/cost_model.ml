type t = {
  block_dispatch : int;
  arith : int;
  memory : int;
  call : int;
  rand : int;
  yieldpoint_poll : int;
  r_update : int;
  count_update : int;
  count_array : int;
  edge_count : int;
  tick_handler : int;
  sample_handler : int;
  stride_step : int;
  reconstruct_per_edge : int;
  taken_branch_penalty : int;
  mispredict_penalty : int;
  tick_period : int;
  baseline_slowdown : int;
  opt_speedup_percent : int array;
  compile_cost_baseline : int;
  compile_cost_opt : int array;
  pep_pass_cost : int;
}

let default =
  {
    block_dispatch = 10;
    arith = 10;
    memory = 30;
    call = 100;
    rand = 20;
    yieldpoint_poll = 3;
    r_update = 2;
    count_update = 280;
    count_array = 90;
    edge_count = 12;
    tick_handler = 100;
    sample_handler = 25;
    stride_step = 18;
    reconstruct_per_edge = 20;
    taken_branch_penalty = 8;
    mispredict_penalty = 25;
    tick_period = 1_000_000;
    baseline_slowdown = 5;
    opt_speedup_percent = [| 100; 92; 85 |];
    compile_cost_baseline = 50;
    compile_cost_opt = [| 500; 1500; 4000 |];
    pep_pass_cost = 3000;
  }

let instr_cost t (ins : Instr.t) =
  match ins with
  | Const _ | Load _ | Store _ | Inc _ | Binop _ | Cmp _ | Neg | Not | Dup
  | Pop ->
      t.arith
  | GLoad _ | GStore _ | AGet | ASet -> t.memory
  | Call _ -> t.call
  | Rand _ -> t.rand
