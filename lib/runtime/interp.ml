type frame = { fmeth : int; fparent : int; mutable r : int }

type hooks = {
  on_entry : (Machine.t -> frame -> unit) option;
  on_exit : (Machine.t -> frame -> unit) option;
  on_edge : (Machine.t -> frame -> src:int -> idx:int -> dst:int -> unit) option;
  on_yieldpoint : (Machine.t -> frame -> Cfg.block_id -> unit) option;
}

let no_hooks = { on_entry = None; on_exit = None; on_edge = None; on_yieldpoint = None }

let compose_opt a b =
  match (a, b) with
  | None, f | f, None -> f
  | Some f, Some g ->
      Some
        (fun st frame ->
          f st frame;
          g st frame)

let compose_opt_edge a b =
  match (a, b) with
  | None, f | f, None -> f
  | Some f, Some g ->
      Some
        (fun st frame ~src ~idx ~dst ->
          f st frame ~src ~idx ~dst;
          g st frame ~src ~idx ~dst)

let compose_opt_yp a b =
  match (a, b) with
  | None, f | f, None -> f
  | Some f, Some g ->
      Some
        (fun st frame blk ->
          f st frame blk;
          g st frame blk)

let compose a b =
  {
    on_entry = compose_opt a.on_entry b.on_entry;
    on_exit = compose_opt a.on_exit b.on_exit;
    on_edge = compose_opt_edge a.on_edge b.on_edge;
    on_yieldpoint = compose_opt_yp a.on_yieldpoint b.on_yieldpoint;
  }

exception Runtime_error of string

let max_depth = 100_000

let heap_index heap i =
  let n = Array.length heap in
  let m = i mod n in
  if m < 0 then m + n else m

(* [src.(pos .. pos+argc-1)] are the arguments: callers pass a slice of
   their operand stack directly, so a call allocates no argument array. *)
let rec exec_method hooks (st : Machine.t) ~parent midx (src : int array) pos
    argc =
  if st.depth >= max_depth then raise (Runtime_error "call stack overflow");
  st.depth <- st.depth + 1;
  let frame = { fmeth = midx; fparent = parent; r = 0 } in
  (* on_entry runs before the compiled form is fetched: a lazy compiler
     hook may install or replace the method body and this invocation will
     execute the fresh code, as in a JIT compiling at first invocation *)
  (match hooks.on_entry with Some f -> f st frame | None -> ());
  let cm = st.methods.(midx) in
  let m = cm.meth in
  let locals = Array.make (max 1 m.nlocals) 0 in
  Array.blit src pos locals 0 argc;
  let stack = Array.make (cm.max_stack + 1) 0 in
  let sp = ref 0 in
  let enter_block b =
    st.cycles <- st.cycles + cm.block_cost.(b);
    if cm.yieldpoint.(b) then begin
      st.cycles <- st.cycles + st.cost.Cost_model.yieldpoint_poll;
      if st.cycles >= st.next_tick then st.yield_flag <- true;
      match hooks.on_yieldpoint with Some f -> f st frame b | None -> ()
    end
  in
  let take_edge ~src ~idx ~dst =
    st.cycles <- st.cycles + cm.edge_extra.(src).(idx);
    match hooks.on_edge with
    | Some f -> f st frame ~src ~idx ~dst
    | None -> ()
  in
  let exec_instr (ins : Instr.t) =
    match ins with
    | Const k ->
        stack.(!sp) <- k;
        incr sp
    | Load l ->
        stack.(!sp) <- locals.(l);
        incr sp
    | Store l ->
        decr sp;
        locals.(l) <- stack.(!sp)
    | Inc (l, k) -> locals.(l) <- locals.(l) + k
    | Binop op ->
        decr sp;
        let b = stack.(!sp) in
        stack.(!sp - 1) <- Instr.eval_binop op stack.(!sp - 1) b
    | Cmp c ->
        decr sp;
        let b = stack.(!sp) in
        stack.(!sp - 1) <- (if Instr.eval_cmp c stack.(!sp - 1) b then 1 else 0)
    | Neg -> stack.(!sp - 1) <- -stack.(!sp - 1)
    | Not -> stack.(!sp - 1) <- (if stack.(!sp - 1) = 0 then 1 else 0)
    | Dup ->
        stack.(!sp) <- stack.(!sp - 1);
        incr sp
    | Pop -> decr sp
    | GLoad g ->
        stack.(!sp) <- st.globals.(g);
        incr sp
    | GStore g ->
        decr sp;
        st.globals.(g) <- stack.(!sp)
    | AGet -> stack.(!sp - 1) <- st.heap.(heap_index st.heap stack.(!sp - 1))
    | ASet ->
        sp := !sp - 2;
        st.heap.(heap_index st.heap stack.(!sp)) <- stack.(!sp + 1)
    | Call _ ->
        (* calls are handled in the block loop below, where the callee
           index comes from the compiled form's [call_target] memo *)
        assert false
    | Rand n ->
        stack.(!sp) <- Prng.below st.prng n;
        incr sp
  in
  let cur = ref m.entry in
  enter_block !cur;
  let result = ref 0 in
  let running = ref true in
  while !running do
    let blk = m.blocks.(!cur) in
    let body = blk.body in
    let targets = cm.call_target.(!cur) in
    for i = 0 to Array.length body - 1 do
      match body.(i) with
      | Instr.Call (_, argc) ->
          let cidx = targets.(i) in
          sp := !sp - argc;
          let v = exec_method hooks st ~parent:midx cidx stack !sp argc in
          stack.(!sp) <- v;
          incr sp
      | ins -> exec_instr ins
    done;
    match blk.term with
    | Method.Ret ->
        decr sp;
        result := stack.(!sp);
        running := false
    | Method.Jmp d ->
        take_edge ~src:!cur ~idx:0 ~dst:d;
        cur := d;
        enter_block d
    | Method.Br { on_true; on_false; _ } ->
        decr sp;
        let cond = stack.(!sp) <> 0 in
        let dst = if cond then on_true else on_false in
        take_edge ~src:!cur ~idx:(if cond then 0 else 1) ~dst;
        cur := dst;
        enter_block dst
  done;
  (match hooks.on_exit with Some f -> f st frame | None -> ());
  st.depth <- st.depth - 1;
  !result

let call hooks st name args =
  exec_method hooks st ~parent:(-1)
    (Program.index st.program name)
    args 0 (Array.length args)

let run hooks st = call hooks st st.program.Program.main [||]
