(** Deterministic pseudo-random number generator (xorshift64-star).

    Workload programs draw branch-deciding values through the [Rand]
    instruction; because the stream depends only on the seed and the
    number of draws, every profiling configuration of the same program
    executes the identical dynamic instruction sequence. *)

type t

val create : seed:int -> t

(** Next raw 62-bit non-negative value. *)
val next : t -> int

(** Uniform draw in [0, bound); [bound] must be positive. *)
val below : t -> int -> int

val copy : t -> t
