(** Standard timer-tick driver.

    Jikes RVM's interrupt handler sets a flag that every yieldpoint polls;
    the yieldpoint handler then runs system work (method sampling, GC
    checks) and rearms the timer (paper §4.1).  This module is that
    handler: at the first yieldpoint that observes the flag, it charges
    the handler cost, raises the machine's one-shot [tick_pending] token
    for downstream samplers (PEP consumes it to start a sampling burst),
    invokes [on_tick] (the adaptive system's method sampler), and rearms
    the timer.

    The driver belongs in {e every} configuration, including the base
    one: its costs are part of the unprofiled system, so profiling
    overheads are measured net of it. *)

val hooks : ?on_tick:(Machine.t -> Interp.frame -> unit) -> unit -> Interp.hooks

(** Method-sample counters filled by {!sampling_hooks}. *)
type method_samples = int array

(** Tick driver whose [on_tick] counts one sample for the executing
    method, as Jikes RVM's adaptive system does. *)
val sampling_hooks : Machine.t -> Interp.hooks * method_samples
