(** Closure-threaded execution engine.

    The production counterpart of the {!Interp} oracle: each compiled
    form ({!Machine.cmeth}) is translated once into closure-threaded
    code — every basic block a fused chain of closures over a pooled
    per-invocation frame, block transfers a single virtual-cycle add
    plus a direct tail call, and every call site a monomorphic inline
    cache validated against the callee compiled form's generation stamp
    ({!Machine.cmeth.gen}), so steady-state calls never consult the
    method table and allocate nothing.

    Two specializations are generated per method and selected at
    dispatch: a {e bare} variant (no hook tests at all, used while the
    engine's hooks are {!Interp.no_hooks}) and a {e hooked} variant
    specialized against the engine's current hook record.

    Semantics are bit-identical to the oracle: same virtual cycle
    counts, same yieldpoint firings, same hook event order, same
    results.  Translated code is cached per method and re-validated on
    every dispatch, so {!Machine.recompile} and {!Machine.set_speed}
    (which bump the generation stamp) transparently invalidate stale
    code; layout penalties and block costs are read through the captured
    compiled form, so in-place mutation by {!Machine.set_speed},
    [Layout.apply] and {!Machine.clear_edge_extra} affects even frames
    currently executing, exactly as in the oracle. *)

type t

(** [create ?telemetry ?hooks machine] builds an engine over [machine].
    Nothing is translated until first dispatch; methods are translated
    lazily and at most once per (generation stamp, hook generation).

    With [telemetry], the engine registers and maintains the
    [engine.ic.hits] / [engine.ic.misses] / [engine.translations]
    counters (host-side only: no simulated cycles, no allocation on the
    hot path).  Without it no counters exist and execution is identical
    to a pre-telemetry engine. *)
val create : ?telemetry:Telemetry.t -> ?hooks:Interp.hooks -> Machine.t -> t

(** Replace the engine's hooks.  Bumps the hook generation: cached
    hooked variants and call-site caches revalidate on next dispatch.
    Must not be called while the engine is executing. *)
val set_hooks : t -> Interp.hooks -> unit

val hooks : t -> Interp.hooks

(** [call engine name args] invokes method [name], like {!Interp.call}.
    @raise Interp.Runtime_error on call-stack overflow. *)
val call : t -> string -> int array -> int

(** Run the program's main method. *)
val run : t -> int
