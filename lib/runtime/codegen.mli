(** Flat-code execution engine (engine v2).

    The production counterpart of the {!Interp} oracle.  Each compiled
    form ({!Machine.cmeth}) is translated once into flat, preallocated
    arrays — an int-coded opcode array plus parallel operand arrays —
    and executed by one tight tail-recursive loop over a program
    counter.  No per-instruction closures exist and recompiles rebuild
    nothing but the arrays.  Two profile-guided tiers sit on top:

    {b Superinstructions.}  Hot adjacent instruction pairs/triples are
    fused into single dispatched opcodes.  Hot blocks come from the
    VM's own PEP edge profile (the driver feeds per-method hot masks in
    via {!set_hot_blocks}); the fusion table for each translation is a
    deterministic {!Fusion.witness} emitted per method generation,
    restricted to blocks {!Effects} marks fusable, and auditable with
    [Pep_check.validate_fusion].  Virtual cycles are charged per block,
    so fusion is observationally neutral by construction.

    {b Polymorphic inline caches.}  Every call site carries an inline
    cache keyed on the callee compiled form's generation stamp
    ({!Machine.cmeth.gen}) that climbs a mono → poly(4-way) →
    megamorphic tier ladder: misses promote (counters per site), a long
    stable run in the megamorphic tier demotes back to monomorphic.
    Steady-state calls never consult the method table and allocate
    nothing in bare (hook-free) execution.

    Semantics are bit-identical to the oracle: same virtual cycle
    counts, same yieldpoint firings, same hook event order, same
    results.  Hooks are consulted dynamically (absent hooks cost one
    predictable test), so {!set_hooks} invalidates nothing.  Block
    costs and layout penalties are read through the captured compiled
    form at execution time, so in-place mutation by
    {!Machine.set_speed}, [Layout.apply] and {!Machine.clear_edge_extra}
    affects even frames currently executing, exactly as in the oracle. *)

type t

(** Tier policy: which profile-guided tiers are active and the
    promotion/demotion thresholds of the PIC ladder. *)
type tiers = {
  fuse : bool;  (** compile superinstructions for profiled-hot blocks *)
  pic : bool;  (** enable the poly/mega tiers (off = v1-style mono IC) *)
  pic_mono_misses : int;  (** mono misses before promoting to poly *)
  pic_poly_misses : int;  (** poly misses before promoting to megamorphic *)
  pic_mega_stable : int;  (** stable megamorphic hits before demoting *)
}

val default_tiers : tiers

(** Short engine-tier label for bench/result names: ["v2-flat"], with
    ["-nofuse"] / ["-nopic"] suffixes for disabled tiers. *)
val tier_name : tiers -> string

(** [create ?telemetry ?tiers ?hooks machine] builds an engine over
    [machine].  Nothing is translated until first dispatch; methods are
    translated lazily, at most once per generation stamp.

    With [telemetry], the engine registers and maintains the
    [engine.translations], [engine.ic.hits] / [engine.ic.misses],
    [engine.fuse.blocks] / [engine.fuse.sites] and
    [engine.pic.promote_poly] / [engine.pic.promote_mega] /
    [engine.pic.demote] counters (host-side only: no simulated cycles,
    no allocation on the hot path).  Without it no counters exist and
    execution is identical to a pre-telemetry engine. *)
val create :
  ?telemetry:Telemetry.t -> ?tiers:tiers -> ?hooks:Interp.hooks -> Machine.t -> t

(** Replace the engine's hooks.  Hooks are consulted dynamically, so no
    translated code is invalidated.  Must not be called while the
    engine is executing. *)
val set_hooks : t -> Interp.hooks -> unit

val hooks : t -> Interp.hooks
val tiers : t -> tiers

(** [set_hot_blocks engine midx hot] installs the per-block hot mask
    the fusion planner uses for method [midx] (typically block
    frequencies derived from the VM's own PEP edge profile).  Drops the
    method's cached translation so the next dispatch re-plans fusion; a
    mask whose length does not match the current body is ignored by the
    planner (all-cold). *)
val set_hot_blocks : t -> int -> bool array -> unit

(** The fusion table the engine would compile for method [midx] right
    now (current generation stamp, current hot mask): pure planning, no
    translation side effects.  Feed this to [Pep_check.validate_fusion]. *)
val fusion_witness : t -> int -> Fusion.witness

(** Fusion entries actually compiled into the method's cached
    translation; [[]] if the method is not currently translated. *)
val fused_entries : t -> int -> Fusion.entry list

(** PIC tier of every call site in the method's cached translation, in
    bytecode order: ["mono"], ["poly"] or ["mega"].  [[]] if the method
    is not currently translated. *)
val ic_tiers : t -> string -> string list

(** [call engine name args] invokes method [name], like {!Interp.call}.
    @raise Interp.Runtime_error on call-stack overflow. *)
val call : t -> string -> int array -> int

(** Run the program's main method. *)
val run : t -> int
