(** Virtual-cycle cost model.

    All "time" in the reproduction is virtual cycles accumulated while
    interpreting bytecode.  The absolute values are arbitrary; what
    reproduces the paper's overhead ordering is the ratios:

    - a path-register update is a register add (cheap, ~1 cycle);
    - a path-table update ([count\[r\]++], a hash call) is tens of cycles —
      this gap is the observation PEP is built on (paper §3.2);
    - an edge taken/not-taken counter update is a load-inc-store;
    - the yieldpoint poll (flag test) is in the base system already;
    - taking a sample costs a handler invocation;
    - unoptimized (baseline-compiled) code runs several times slower than
      optimized code, which is why one-time baseline edge instrumentation
      is tolerable (paper §4.2). *)

type t = {
  block_dispatch : int;  (** per executed basic block *)
  arith : int;  (** simple stack/ALU instruction *)
  memory : int;  (** global/heap access *)
  call : int;  (** call/return linkage *)
  rand : int;  (** PRNG draw *)
  yieldpoint_poll : int;  (** flag test at every yieldpoint (base too) *)
  r_update : int;  (** r = c or r += c *)
  count_update : int;  (** path-table hash-call update (paper's perfect profiler) *)
  count_array : int;  (** array-indexed [count\[r\]++] (classic BLPP) *)
  edge_count : int;  (** taken/not-taken counter increment *)
  tick_handler : int;  (** yieldpoint-handler entry when the flag is set *)
  sample_handler : int;  (** storing one path sample *)
  stride_step : int;  (** skipping a sample opportunity while striding *)
  reconstruct_per_edge : int;  (** first-time path-to-edges expansion *)
  taken_branch_penalty : int;  (** layout: control transfer that is not the fallthrough *)
  mispredict_penalty : int;  (** layout: hot-direction speculation was wrong *)
  tick_period : int;  (** virtual cycles between timer interrupts *)
  baseline_slowdown : int;  (** cost multiplier for baseline-compiled code *)
  opt_speedup_percent : int array;
      (** per opt level 0..2: percent cost of baseline-normalized-1
          optimized code, e.g. [| 100; 90; 85 |] *)
  compile_cost_baseline : int;  (** per bytecode instruction *)
  compile_cost_opt : int array;  (** per bytecode instruction, per opt level *)
  pep_pass_cost : int;  (** extra compile cost per block for the PEP pass *)
}

val default : t

(** Base cost of one instruction under this model (no instrumentation). *)
val instr_cost : t -> Instr.t -> int
