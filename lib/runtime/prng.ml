type t = { mutable s : int64 }

let create ~seed =
  (* avoid the all-zero state xorshift cannot leave *)
  let s =
    if seed = 0 then 0x9E3779B97F4A7C15L else Int64.of_int seed
  in
  { s }

let next t =
  let open Int64 in
  let x = t.s in
  let x = logxor x (shift_left x 13) in
  let x = logxor x (shift_right_logical x 7) in
  let x = logxor x (shift_left x 17) in
  t.s <- x;
  to_int (shift_right_logical (mul x 0x2545F4914F6CDD1DL) 2)

let below t bound =
  assert (bound > 0);
  next t mod bound

let copy t = { s = t.s }
