(* Closure-threaded execution engine.

   Each basic block of a compiled form is translated once into a fused
   chain of OCaml closures over a small per-invocation environment; a
   block transfer is one fused virtual-cycle add followed by a direct
   tail call into the successor block's closure.  Call sites go through
   a monomorphic inline cache (callee compiled-form generation stamp +
   translated body) validated with one integer compare, so steady-state
   calls never consult the machine's method table; arguments are blitted
   straight from the caller's operand stack into the callee's frame, and
   frames are pooled per call depth, so bare (hook-free) execution
   allocates nothing in steady state.

   Two specializations are generated per method and selected at
   dispatch: a bare variant compiled for [Interp.no_hooks] with zero
   hook tests, and a hooked variant specialized against the engine's
   current hook record (each present hook becomes a direct closure call,
   each absent one disappears).

   The interpreter ([Interp]) is the semantic oracle: the threaded code
   performs exactly the oracle's virtual-cycle reads and writes, in the
   same order.  In particular block costs and layout penalties are read
   through the captured compiled form at execution time — not folded as
   constants — because [Machine.set_speed] and [Layout.apply] mutate the
   compiled form a frame may currently be executing, and the oracle
   observes those mutations mid-invocation. *)

type env = {
  mutable locals : int array;
  mutable stack : int array;
  mutable sp : int;
  mutable frame : Interp.frame;
}

(* A method body translated to threaded code.  [run] executes from the
   entry block (its enter-charge included) and returns the result. *)
type body = {
  bgen : int;  (* Machine.cmeth.gen this code was translated from *)
  bhgen : int;  (* engine hook generation; 0 for bare variants *)
  nlocals : int;
  stack_need : int;
  run : env -> int;
}

(* Engine-level telemetry counters.  Present only when the engine was
   created with a telemetry sink; closures capture the option at
   translation time, so counting is a single immutable-option test on
   the hot path and disappears entirely from serialized output when
   telemetry is off. *)
type tstats = {
  ic_hits : Metrics.counter;
  ic_misses : Metrics.counter;
  translations : Metrics.counter;
}

type t = {
  st : Machine.t;
  mutable hooks : Interp.hooks;
  mutable hooks_gen : int;
  mutable hooked_mode : bool;
  bare : body option array;
  hooked : body option array;
  mutable envs : env array;  (* frame pool, indexed by call depth *)
  stats : tstats option;
}

let dummy_frame = { Interp.fmeth = -1; fparent = -1; r = 0 }

let dummy_body =
  {
    bgen = min_int;
    bhgen = min_int;
    nlocals = 0;
    stack_need = 1;
    run = (fun _ -> assert false);
  }

let fresh_env () =
  { locals = Array.make 8 0; stack = Array.make 8 0; sp = 0; frame = dummy_frame }

let is_no_hooks = function
  | { Interp.on_entry = None; on_exit = None; on_edge = None; on_yieldpoint = None }
    ->
      true
  | _ -> false

let create ?telemetry ?(hooks = Interp.no_hooks) st =
  let n = Array.length st.Machine.methods in
  let stats =
    match telemetry with
    | None -> None
    | Some tel ->
        let m = Telemetry.metrics tel in
        Some
          {
            ic_hits = Metrics.counter m "engine.ic.hits";
            ic_misses = Metrics.counter m "engine.ic.misses";
            translations = Metrics.counter m "engine.translations";
          }
  in
  {
    st;
    hooks;
    hooks_gen = 1;
    hooked_mode = not (is_no_hooks hooks);
    bare = Array.make n None;
    hooked = Array.make n None;
    envs = Array.init 64 (fun _ -> fresh_env ());
    stats;
  }

let set_hooks eng hooks =
  eng.hooks <- hooks;
  eng.hooks_gen <- eng.hooks_gen + 1;
  eng.hooked_mode <- not (is_no_hooks hooks)

let hooks eng = eng.hooks

let env_at eng depth =
  let n = Array.length eng.envs in
  if depth >= n then begin
    let bigger = Array.init (2 * (depth + 1)) (fun _ -> fresh_env ()) in
    Array.blit eng.envs 0 bigger 0 n;
    eng.envs <- bigger
  end;
  eng.envs.(depth)

let overflow () = raise (Interp.Runtime_error "call stack overflow")

(* Size env's arrays for [body], zero the non-parameter locals, and
   reset the operand stack.  The caller blits the [argc] parameters. *)
let prep env body argc =
  if Array.length env.locals < body.nlocals then
    env.locals <- Array.make (max body.nlocals (2 * Array.length env.locals)) 0;
  if Array.length env.stack < body.stack_need then
    env.stack <- Array.make (max body.stack_need (2 * Array.length env.stack)) 0;
  if body.nlocals > argc then Array.fill env.locals argc (body.nlocals - argc) 0;
  env.sp <- 0

let rec get_body eng ~hooked midx =
  let cm = eng.st.Machine.methods.(midx) in
  let cache = if hooked then eng.hooked else eng.bare in
  match cache.(midx) with
  | Some b when b.bgen = cm.Machine.gen && (not hooked || b.bhgen = eng.hooks_gen)
    ->
      b
  | Some _ | None ->
      let b = translate eng ~hooked cm in
      cache.(midx) <- Some b;
      b

(* Translate one compiled form into threaded code.  [blocks] is filled
   in place so terminators can reference successors across loops. *)
and translate eng ~hooked (cm : Machine.cmeth) : body =
  (* Threaded code elides bounds checks the interpreter pays for: the
     bytecode verifier establishes stack discipline (sp stays within
     [max_stack], local indices within [nlocals], block ids within the
     method) and [prep] sizes the arrays, so stack/local accesses use
     unsafe reads; heap indices are wrapped into range before use.  The
     primitives are applied directly (not aliased) so non-flambda
     builds still compile them inline.  [Pep_check.justify_unsafe]
     re-derives these bounds independently (interval analysis against
     the same [max_stack]/[nlocals]/[n_globals] limits), so the elision
     is machine-checked under [Driver.options.deep_verify] and
     [pepsim check --deep] rather than only argued here. *)
  let st = eng.st in
  let hooks = eng.hooks in
  let stats = eng.stats in
  (match stats with Some s -> Metrics.incr s.translations | None -> ());
  let m = cm.Machine.meth in
  let poll = st.Machine.cost.Cost_model.yieldpoint_poll in
  let nblocks = Array.length m.Method.blocks in
  let blocks : (env -> int) array = Array.make nblocks (fun _ -> assert false) in
  (* control transfer into [dst], charging [row.(idx)] layout cycles on
     the way (pass [row = no_edge] for method entry); mirrors the
     oracle's [take_edge] + [enter_block] sequence exactly *)
  let no_edge = [| 0; 0 |] in
  let goto ~src ~row ~idx dst : env -> int =
    if not hooked then
      if cm.Machine.yieldpoint.(dst) then fun env ->
        let c =
          st.Machine.cycles + Array.unsafe_get row idx
          + Array.unsafe_get cm.Machine.block_cost dst
          + poll
        in
        st.Machine.cycles <- c;
        if c >= st.Machine.next_tick then st.Machine.yield_flag <- true;
        (Array.unsafe_get blocks dst) env
      else fun env ->
        st.Machine.cycles <-
          st.Machine.cycles + Array.unsafe_get row idx + Array.unsafe_get cm.Machine.block_cost dst;
        (Array.unsafe_get blocks dst) env
    else
      let edge : env -> unit =
        if row == no_edge then fun _ -> ()
        else
          match hooks.Interp.on_edge with
          | Some f ->
              fun env ->
                st.Machine.cycles <- st.Machine.cycles + row.(idx);
                f st env.frame ~src ~idx ~dst
          | None -> fun _ -> st.Machine.cycles <- st.Machine.cycles + row.(idx)
      in
      if cm.Machine.yieldpoint.(dst) then
        match hooks.Interp.on_yieldpoint with
        | Some g ->
            fun env ->
              edge env;
              let c = st.Machine.cycles + cm.Machine.block_cost.(dst) + poll in
              st.Machine.cycles <- c;
              if c >= st.Machine.next_tick then st.Machine.yield_flag <- true;
              g st env.frame dst;
              blocks.(dst) env
        | None ->
            fun env ->
              edge env;
              let c = st.Machine.cycles + cm.Machine.block_cost.(dst) + poll in
              st.Machine.cycles <- c;
              if c >= st.Machine.next_tick then st.Machine.yield_flag <- true;
              blocks.(dst) env
      else fun env ->
        edge env;
        st.Machine.cycles <- st.Machine.cycles + cm.Machine.block_cost.(dst);
        blocks.(dst) env
  in
  let compile_call ~cidx ~argc (next : env -> int) : env -> int =
    (* monomorphic inline cache: callee translated body keyed by the
       callee compiled form's generation stamp (and, for hooked code,
       the engine's hook generation — hook changes retranslate) *)
    let ic_gen = ref min_int and ic_body = ref dummy_body in
    if not hooked then fun env ->
      if st.Machine.depth >= Interp.max_depth then overflow ();
      let depth = st.Machine.depth + 1 in
      st.Machine.depth <- depth;
      let ccm = st.Machine.methods.(cidx) in
      let body =
        if ccm.Machine.gen = !ic_gen then begin
          (match stats with Some s -> Metrics.incr s.ic_hits | None -> ());
          !ic_body
        end
        else begin
          (match stats with Some s -> Metrics.incr s.ic_misses | None -> ());
          let b = get_body eng ~hooked:false cidx in
          ic_gen := ccm.Machine.gen;
          ic_body := b;
          b
        end
      in
      let sp = env.sp - argc in
      env.sp <- sp;
      let cenv = env_at eng depth in
      prep cenv body argc;
      Array.blit env.stack sp cenv.locals 0 argc;
      let v = body.run cenv in
      st.Machine.depth <- st.Machine.depth - 1;
      Array.unsafe_set env.stack sp v;
      env.sp <- sp + 1;
      next env
    else begin
      let do_entry =
        match hooks.Interp.on_entry with Some f -> f | None -> fun _ _ -> ()
      in
      let do_exit =
        match hooks.Interp.on_exit with Some f -> f | None -> fun _ _ -> ()
      in
      let ic_hgen = ref min_int in
      let parent = Machine.index st m.Method.name in
      fun env ->
        if st.Machine.depth >= Interp.max_depth then overflow ();
        let depth = st.Machine.depth + 1 in
        st.Machine.depth <- depth;
        let frame = { Interp.fmeth = cidx; fparent = parent; r = 0 } in
        (* on_entry runs before the inline cache is consulted: a lazy
           compiler hook may have just replaced the callee's body *)
        do_entry st frame;
        let ccm = st.Machine.methods.(cidx) in
        let body =
          if ccm.Machine.gen = !ic_gen && eng.hooks_gen = !ic_hgen then begin
            (match stats with Some s -> Metrics.incr s.ic_hits | None -> ());
            !ic_body
          end
          else begin
            (match stats with Some s -> Metrics.incr s.ic_misses | None -> ());
            let b = get_body eng ~hooked:true cidx in
            ic_gen := ccm.Machine.gen;
            ic_hgen := eng.hooks_gen;
            ic_body := b;
            b
          end
        in
        let sp = env.sp - argc in
        env.sp <- sp;
        let cenv = env_at eng depth in
        prep cenv body argc;
        Array.blit env.stack sp cenv.locals 0 argc;
        cenv.frame <- frame;
        let v = body.run cenv in
        do_exit st frame;
        st.Machine.depth <- st.Machine.depth - 1;
        Array.unsafe_set env.stack sp v;
        env.sp <- sp + 1;
        next env
    end
  in
  let heap = st.Machine.heap in
  let heap_n = Array.length heap in
  let globals = st.Machine.globals in
  let compile_instr ~targets i (ins : Instr.t) (next : env -> int) : env -> int
      =
    match ins with
    | Instr.Const k ->
        fun env ->
          let sp = env.sp in
          Array.unsafe_set env.stack sp k;
          env.sp <- sp + 1;
          next env
    | Load l ->
        fun env ->
          let sp = env.sp in
          Array.unsafe_set env.stack sp (Array.unsafe_get env.locals l);
          env.sp <- sp + 1;
          next env
    | Store l ->
        fun env ->
          let sp = env.sp - 1 in
          env.sp <- sp;
          Array.unsafe_set env.locals l (Array.unsafe_get env.stack sp);
          next env
    | Inc (l, k) ->
        fun env ->
          Array.unsafe_set env.locals l (Array.unsafe_get env.locals l + k);
          next env
    | Binop op ->
        let f : int -> int -> int =
          match op with
          | Instr.Add -> ( + )
          | Sub -> ( - )
          | Mul -> ( * )
          | Div -> fun a b -> if b = 0 then 0 else a / b
          | Rem -> fun a b -> if b = 0 then 0 else a mod b
          | And -> ( land )
          | Or -> ( lor )
          | Xor -> ( lxor )
          | Shl -> fun a b -> a lsl (b land 63)
          | Shr -> fun a b -> a asr (b land 63)
        in
        fun env ->
          let sp = env.sp - 1 in
          env.sp <- sp;
          let s = env.stack in
          Array.unsafe_set s (sp - 1) (f (Array.unsafe_get s (sp - 1)) (Array.unsafe_get s sp));
          next env
    | Cmp c ->
        let f : int -> int -> bool =
          match c with
          | Instr.Eq -> ( = )
          | Ne -> ( <> )
          | Lt -> ( < )
          | Le -> ( <= )
          | Gt -> ( > )
          | Ge -> ( >= )
        in
        fun env ->
          let sp = env.sp - 1 in
          env.sp <- sp;
          let s = env.stack in
          Array.unsafe_set s (sp - 1) (if f (Array.unsafe_get s (sp - 1)) (Array.unsafe_get s sp) then 1 else 0);
          next env
    | Neg ->
        fun env ->
          let sp = env.sp - 1 in
          Array.unsafe_set env.stack sp (-Array.unsafe_get env.stack sp);
          next env
    | Not ->
        fun env ->
          let sp = env.sp - 1 in
          Array.unsafe_set env.stack sp (if Array.unsafe_get env.stack sp = 0 then 1 else 0);
          next env
    | Dup ->
        fun env ->
          let sp = env.sp in
          Array.unsafe_set env.stack sp (Array.unsafe_get env.stack (sp - 1));
          env.sp <- sp + 1;
          next env
    | Pop ->
        fun env ->
          env.sp <- env.sp - 1;
          next env
    | GLoad g ->
        fun env ->
          let sp = env.sp in
          Array.unsafe_set env.stack sp globals.(g);
          env.sp <- sp + 1;
          next env
    | GStore g ->
        fun env ->
          let sp = env.sp - 1 in
          env.sp <- sp;
          globals.(g) <- Array.unsafe_get env.stack sp;
          next env
    | AGet ->
        fun env ->
          let sp = env.sp - 1 in
          let i = Array.unsafe_get env.stack sp mod heap_n in
          let i = if i < 0 then i + heap_n else i in
          Array.unsafe_set env.stack sp (Array.unsafe_get heap i);
          next env
    | ASet ->
        fun env ->
          let sp = env.sp - 2 in
          env.sp <- sp;
          let i = Array.unsafe_get env.stack sp mod heap_n in
          let i = if i < 0 then i + heap_n else i in
          Array.unsafe_set heap i (Array.unsafe_get env.stack (sp + 1));
          next env
    | Call (_, argc) -> compile_call ~cidx:targets.(i) ~argc next
    | Rand n ->
        let prng = st.Machine.prng in
        fun env ->
          let sp = env.sp in
          Array.unsafe_set env.stack sp (Prng.below prng n);
          env.sp <- sp + 1;
          next env
  in
  let compile_block b =
    let blk = m.Method.blocks.(b) in
    let term : env -> int =
      match blk.Method.term with
      | Method.Ret ->
          fun env ->
            let sp = env.sp - 1 in
            env.sp <- sp;
            Array.unsafe_get env.stack sp
      | Method.Jmp d ->
          let row = cm.Machine.edge_extra.(b) in
          goto ~src:b ~row ~idx:0 d
      | Method.Br { on_true; on_false; _ } ->
          let row = cm.Machine.edge_extra.(b) in
          let kt = goto ~src:b ~row ~idx:0 on_true in
          let kf = goto ~src:b ~row ~idx:1 on_false in
          fun env ->
            let sp = env.sp - 1 in
            env.sp <- sp;
            if Array.unsafe_get env.stack sp <> 0 then kt env else kf env
    in
    let targets = cm.Machine.call_target.(b) in
    let code = ref term in
    for i = Array.length blk.Method.body - 1 downto 0 do
      code := compile_instr ~targets i blk.Method.body.(i) !code
    done;
    !code
  in
  for b = 0 to nblocks - 1 do
    blocks.(b) <- compile_block b
  done;
  {
    bgen = cm.Machine.gen;
    bhgen = (if hooked then eng.hooks_gen else 0);
    nlocals = m.Method.nlocals;
    stack_need = cm.Machine.max_stack + 1;
    run = goto ~src:(-1) ~row:no_edge ~idx:0 m.Method.entry;
  }

(* Root invocation (the engine's equivalent of [Interp.call]): args come
   in a real array, and the hook prologue/epilogue is matched here once
   per invocation rather than specialized. *)
let invoke eng midx (args : int array) =
  let st = eng.st in
  if st.Machine.depth >= Interp.max_depth then overflow ();
  let depth = st.Machine.depth + 1 in
  st.Machine.depth <- depth;
  let argc = Array.length args in
  if eng.hooked_mode then begin
    let frame = { Interp.fmeth = midx; fparent = -1; r = 0 } in
    (match eng.hooks.Interp.on_entry with Some f -> f st frame | None -> ());
    let body = get_body eng ~hooked:true midx in
    let env = env_at eng depth in
    prep env body argc;
    Array.blit args 0 env.locals 0 argc;
    env.frame <- frame;
    let r = body.run env in
    (match eng.hooks.Interp.on_exit with Some f -> f st frame | None -> ());
    st.Machine.depth <- st.Machine.depth - 1;
    r
  end
  else begin
    let body = get_body eng ~hooked:false midx in
    let env = env_at eng depth in
    prep env body argc;
    Array.blit args 0 env.locals 0 argc;
    let r = body.run env in
    st.Machine.depth <- st.Machine.depth - 1;
    r
  end

let call eng name args = invoke eng (Machine.index eng.st name) args
let run eng = call eng eng.st.Machine.program.Program.main [||]
