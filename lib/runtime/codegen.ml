(* Flat-code execution engine (engine v2).

   Each compiled form is translated once into flat preallocated arrays:
   an int-coded opcode array [fcode] and parallel operand arrays [fa] /
   [fb] (plus captured layout-penalty rows [frows] and call-site inline
   caches [fics]).  Execution is one tail-recursive loop over a program
   counter; a block transfer is a fused virtual-cycle add followed by a
   jump to the successor's first slot.  Superinstructions (profile-hot
   adjacent pairs/triples planned by {!Fusion}) collapse several slots
   into one dispatch; call sites climb a mono -> poly(4) -> megamorphic
   inline-cache ladder keyed on {!Machine.cmeth.gen}.

   The interpreter ([Interp]) is the semantic oracle: the flat code
   performs exactly the oracle's virtual-cycle reads and writes, in the
   same order.  Block costs and layout penalties are read through the
   captured compiled form at execution time — not folded as constants —
   because [Machine.set_speed] and [Layout.apply] mutate the compiled
   form a frame may currently be executing, and the oracle observes
   those mutations mid-invocation.  Fusion can only merge work within
   one block, and cycles are charged per block, so fused code charges,
   observes and produces exactly what unfused code does. *)

(* Opcodes.  All constructors are nullary, so the code array is an
   immediate-int array and dispatch compiles to a jump table.  [ARM]
   slots are never dispatched: they carry the second/third transfer arm
   of a conditional (target pc in [fa], packed edge word in [fb], layout
   row in [frows]). *)
type op =
  | CONST
  | LOAD
  | STORE
  | INC
  | ADD
  | SUB
  | MUL
  | DIV
  | REM
  | AND
  | OR
  | XOR
  | SHL
  | SHR
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | NEG
  | NOT
  | DUP
  | POP
  | GLOAD
  | GSTORE
  | AGET
  | ASET
  | RAND
  | CALL
  | RET
  | JMP
  | BR
  | ARM
  (* superinstructions: Load a; Load b; Binop *)
  | LL_ADD
  | LL_SUB
  | LL_MUL
  | LL_AND
  | LL_OR
  | LL_XOR
  (* Load a; Const k; Binop *)
  | LK_ADD
  | LK_SUB
  | LK_MUL
  | LK_AND
  | LK_OR
  | LK_XOR
  (* Const k; Store l / Load a; Store l / Load a; Ret *)
  | KSTORE
  | LSTORE
  | LRET
  (* Cmp c; Br — true arm in this slot, false arm in the next *)
  | CMPBR_EQ
  | CMPBR_NE
  | CMPBR_LT
  | CMPBR_LE
  | CMPBR_GT
  | CMPBR_GE
  (* Load a; Load b; Cmp c; Br — arms in the two following slots *)
  | LL_CMPBR_EQ
  | LL_CMPBR_NE
  | LL_CMPBR_LT
  | LL_CMPBR_LE
  | LL_CMPBR_GT
  | LL_CMPBR_GE
  (* Load a; Const k; Cmp c; Br *)
  | LK_CMPBR_EQ
  | LK_CMPBR_NE
  | LK_CMPBR_LT
  | LK_CMPBR_LE
  | LK_CMPBR_GT
  | LK_CMPBR_GE
  (* Const k; Cmp c; Br — stack top vs k, arms in the two following slots *)
  | K_CMPBR_EQ
  | K_CMPBR_NE
  | K_CMPBR_LT
  | K_CMPBR_LE
  | K_CMPBR_GT
  | K_CMPBR_GE
  (* Load a; Jmp / Store l; Jmp / Inc (l, k); Jmp — arm in the next slot *)
  | LJMP
  | STJMP
  | INCJMP

type env = {
  mutable locals : int array;
  mutable stack : int array;
  mutable frame : Interp.frame;
}

(* A method body translated to flat code.  Transfer slots pack the edge
   descriptor into one word in [fb]: bit 0 = destination has a
   yieldpoint, bit 1 = successor index (0 taken / 1 not-taken), bits
   2..21 = source block, bits 22.. = destination block; [fa] holds the
   destination's first slot and [frows] the source's captured
   [edge_extra] row (mutated in place by [Layout.apply], so reads see
   the current penalties, as the oracle does).  [fcost] bakes the
   destination block's cost per transfer slot: [Machine.set_speed] is
   the only mutator of [block_cost] and always bumps [gen], which
   invalidates this translation at the next body fetch — so baked
   costs are exact in bare mode, where no hook can recompile
   mid-run.  Hooked paths read [block_cost] through [fcm] instead. *)
type flat = {
  bgen : int;  (* Machine.cmeth.gen this code was translated from *)
  self : int;  (* dense method index, the fparent of callee frames *)
  fcm : Machine.cmeth;
  nlocals : int;
  stack_need : int;
  fneed : int;  (* max nlocals stack_need: one capacity check per call *)
  entry_pc : int;
  entry_block : int;
  entry_yp : bool;
  entry_cost : int;  (* entry block cost baked at translation *)
  (* Two-stage baked entry: compilers emit an empty entry block whose
     only job is [Jmp] to the real first block, so bare calls would pay
     a dispatch just to run that transfer.  When the entry block is
     empty and ends in [Jmp d], [entry2_pc] starts execution at [d]
     directly and the call site charges the elided transfer itself:
     [entry_row] is the entry block's captured [edge_extra] row and
     [entry2_cost] the destination's baked cost, polled per
     [entry2_yp].  Otherwise the stage is neutral ([no_row]/0/false and
     [entry2_pc = entry_pc]), so the call site needs no extra branch. *)
  entry2_pc : int;
  entry_row : int array;
  entry2_cost : int;
  entry2_yp : bool;
  fcode : op array;
  fa : int array;
  fb : int array;
  fcost : int array;  (* per transfer slot: destination block cost *)
  frows : int array array;
  fics : ic array;
  fwitness : Fusion.witness;  (* the fusion table compiled in *)
}

(* Call-site inline cache: a ladder of tiers keyed on the callee
   compiled form's generation stamp.  tier 0 = monomorphic (entry 0
   only), tier 1 = polymorphic (4 entries, most recent first), tier 2 =
   megamorphic (per-method shared cache via [get_body]; entry 2 tracks
   the last seen generation for demotion while entry 0 holds a
   never-matching stamp, so the call-site fast path is one compare
   regardless of tier).  Generation stamps are globally unique, so a
   matching stamp proves the cached translation is current. *)
and ic = {
  cidx : int;  (* callee method index *)
  iargc : int;
  mutable tier : int;
  mutable g0 : int;
  mutable g1 : int;
  mutable g2 : int;
  mutable g3 : int;
  mutable b0 : flat;
  mutable b1 : flat;
  mutable b2 : flat;
  mutable b3 : flat;
  mutable miss_streak : int;  (* misses at the current tier *)
  mutable stable : int;  (* consecutive same-generation megamorphic hits *)
}

type tiers = {
  fuse : bool;
  pic : bool;
  pic_mono_misses : int;
  pic_poly_misses : int;
  pic_mega_stable : int;
}

let default_tiers =
  {
    fuse = true;
    pic = true;
    pic_mono_misses = 4;
    pic_poly_misses = 4;
    pic_mega_stable = 64;
  }

let tier_name t =
  "v2-flat"
  ^ (if t.fuse then "" else "-nofuse")
  ^ if t.pic then "" else "-nopic"

(* Engine-level telemetry counters; host-side only, absent entirely
   when the engine was created without a sink. *)
type tstats = {
  ic_hits : Metrics.counter;
  ic_misses : Metrics.counter;
  translations : Metrics.counter;
  fuse_blocks : Metrics.counter;
  fuse_sites : Metrics.counter;
  pic_promote_poly : Metrics.counter;
  pic_promote_mega : Metrics.counter;
  pic_demote : Metrics.counter;
}

type t = {
  st : Machine.t;
  poll : int;
  heap : int array;
  heap_n : int;
  globals : int array;
  prng : Prng.t;
  tiers : tiers;
  mutable hooks : Interp.hooks;
  mutable hooked_mode : bool;
  bodies : flat option array;
  hot : bool array option array;  (* fusion hot masks, per method *)
  invalid : flat;  (* never-matching cache filler for fresh ICs *)
  mutable envs : env array;  (* frame pool, indexed by call depth *)
  stats : tstats option;
}

let dummy_frame = { Interp.fmeth = -1; fparent = -1; r = 0 }
let no_row = [| 0; 0 |]

let invalid_flat (st : Machine.t) =
  {
    bgen = min_int;
    self = -1;
    fcm = st.Machine.methods.(0);
    nlocals = 0;
    stack_need = 1;
    fneed = 1;
    entry_pc = 0;
    entry_block = 0;
    entry_yp = false;
    entry_cost = 0;
    entry2_pc = 0;
    entry_row = no_row;
    entry2_cost = 0;
    entry2_yp = false;
    fcode = [||];
    fa = [||];
    fb = [||];
    fcost = [||];
    frows = [||];
    fics = [||];
    fwitness = Fusion.empty_witness;
  }

let fresh_env () =
  { locals = Array.make 8 0; stack = Array.make 8 0; frame = dummy_frame }

let is_no_hooks = function
  | { Interp.on_entry = None; on_exit = None; on_edge = None; on_yieldpoint = None }
    ->
      true
  | _ -> false

let create ?telemetry ?(tiers = default_tiers) ?(hooks = Interp.no_hooks) st =
  let n = Array.length st.Machine.methods in
  let stats =
    match telemetry with
    | None -> None
    | Some tel ->
        let m = Telemetry.metrics tel in
        Some
          {
            ic_hits = Metrics.counter m "engine.ic.hits";
            ic_misses = Metrics.counter m "engine.ic.misses";
            translations = Metrics.counter m "engine.translations";
            fuse_blocks = Metrics.counter m "engine.fuse.blocks";
            fuse_sites = Metrics.counter m "engine.fuse.sites";
            pic_promote_poly = Metrics.counter m "engine.pic.promote_poly";
            pic_promote_mega = Metrics.counter m "engine.pic.promote_mega";
            pic_demote = Metrics.counter m "engine.pic.demote";
          }
  in
  {
    st;
    poll = st.Machine.cost.Cost_model.yieldpoint_poll;
    heap = st.Machine.heap;
    heap_n = Array.length st.Machine.heap;
    globals = st.Machine.globals;
    prng = st.Machine.prng;
    tiers;
    hooks;
    hooked_mode = not (is_no_hooks hooks);
    bodies = Array.make n None;
    hot = Array.make n None;
    invalid = invalid_flat st;
    envs = Array.init 64 (fun _ -> fresh_env ());
    stats;
  }

let set_hooks eng hooks =
  (* hooks are consulted dynamically on dispatch, so nothing cached
     needs invalidation *)
  eng.hooks <- hooks;
  eng.hooked_mode <- not (is_no_hooks hooks)

let hooks eng = eng.hooks
let tiers eng = eng.tiers

let set_hot_blocks eng midx hot =
  eng.hot.(midx) <- Some (Array.copy hot);
  (* force a re-plan: the generation stamp is unchanged, but the fusion
     table depends on the mask *)
  eng.bodies.(midx) <- None

let hot_mask eng midx =
  if not eng.tiers.fuse then [||]
  else match eng.hot.(midx) with Some h -> h | None -> [||]

let fusion_witness eng midx =
  let cm = eng.st.Machine.methods.(midx) in
  Fusion.plan ~gen:cm.Machine.gen ~hot:(hot_mask eng midx) cm.Machine.meth

let fused_entries eng midx =
  match eng.bodies.(midx) with
  | Some b -> b.fwitness.Fusion.fentries
  | None -> []

let env_at eng depth =
  let n = Array.length eng.envs in
  if depth >= n then begin
    let bigger = Array.init (2 * (depth + 1)) (fun _ -> fresh_env ()) in
    Array.blit eng.envs 0 bigger 0 n;
    eng.envs <- bigger
  end;
  eng.envs.(depth)

let overflow () = raise (Interp.Runtime_error "call stack overflow")

(* Size env's arrays for [bd], zero the non-parameter locals, and let
   the caller blit the [argc] parameters.  [Array.fill] is a C call;
   bodies here have a handful of locals, so a manual store loop is
   cheaper than crossing the FFI. *)
let grow env need =
  let n = max need (2 * Array.length env.locals) in
  env.locals <- Array.make n 0;
  env.stack <- Array.make n 0

(* Size env's arrays for [bd] (one capacity check: the pool keeps both
   arrays the same length, compared against the precomputed [fneed]),
   zero the non-parameter locals, and let the caller write the [argc]
   parameters.  [Array.fill] is a C call; bodies here have a handful of
   locals, so a manual store loop is cheaper than crossing the FFI. *)
let prep env bd argc =
  if Array.length env.locals < bd.fneed then grow env bd.fneed;
  let locals = env.locals in
  for i = argc to bd.nlocals - 1 do
    Array.unsafe_set locals i 0
  done

let op_of_binop = function
  | Instr.Add -> ADD
  | Sub -> SUB
  | Mul -> MUL
  | Div -> DIV
  | Rem -> REM
  | And -> AND
  | Or -> OR
  | Xor -> XOR
  | Shl -> SHL
  | Shr -> SHR

let op_of_cmp = function
  | Instr.Eq -> EQ
  | Ne -> NE
  | Lt -> LT
  | Le -> LE
  | Gt -> GT
  | Ge -> GE

let ll_of_binop = function
  | Instr.Add -> LL_ADD
  | Sub -> LL_SUB
  | Mul -> LL_MUL
  | And -> LL_AND
  | Or -> LL_OR
  | Xor -> LL_XOR
  | Div | Rem | Shl | Shr -> assert false

let lk_of_binop = function
  | Instr.Add -> LK_ADD
  | Sub -> LK_SUB
  | Mul -> LK_MUL
  | And -> LK_AND
  | Or -> LK_OR
  | Xor -> LK_XOR
  | Div | Rem | Shl | Shr -> assert false

let cmpbr_of_cmp = function
  | Instr.Eq -> CMPBR_EQ
  | Ne -> CMPBR_NE
  | Lt -> CMPBR_LT
  | Le -> CMPBR_LE
  | Gt -> CMPBR_GT
  | Ge -> CMPBR_GE

let ll_cmpbr_of_cmp = function
  | Instr.Eq -> LL_CMPBR_EQ
  | Ne -> LL_CMPBR_NE
  | Lt -> LL_CMPBR_LT
  | Le -> LL_CMPBR_LE
  | Gt -> LL_CMPBR_GT
  | Ge -> LL_CMPBR_GE

let lk_cmpbr_of_cmp = function
  | Instr.Eq -> LK_CMPBR_EQ
  | Ne -> LK_CMPBR_NE
  | Lt -> LK_CMPBR_LT
  | Le -> LK_CMPBR_LE
  | Gt -> LK_CMPBR_GT
  | Ge -> LK_CMPBR_GE

let k_cmpbr_of_cmp = function
  | Instr.Eq -> K_CMPBR_EQ
  | Ne -> K_CMPBR_NE
  | Lt -> K_CMPBR_LT
  | Le -> K_CMPBR_LE
  | Gt -> K_CMPBR_GT
  | Ge -> K_CMPBR_GE

let local_at body i =
  match body.(i) with Instr.Load l -> l | _ -> assert false

let const_at body i =
  match body.(i) with Instr.Const k -> k | _ -> assert false

let store_at body i =
  match body.(i) with Instr.Store l -> l | _ -> assert false

let inc_at body i =
  match body.(i) with Instr.Inc (l, k) -> (l, k) | _ -> assert false

let count_hit eng =
  match eng.stats with Some s -> Metrics.incr s.ic_hits | None -> ()

let count_miss eng =
  match eng.stats with Some s -> Metrics.incr s.ic_misses | None -> ()

let rec get_body eng midx =
  let cm = Array.unsafe_get eng.st.Machine.methods midx in
  match Array.unsafe_get eng.bodies midx with
  | Some b when b.bgen = cm.Machine.gen -> b
  | Some _ | None ->
      let b = translate eng cm midx in
      eng.bodies.(midx) <- Some b;
      b

(* Translate one compiled form into flat code.

   Flat code elides bounds checks the interpreter pays for: the
   bytecode verifier establishes stack discipline (sp stays within
   [max_stack], local/global indices within bounds, block ids within
   the method) and [prep] sizes the arrays, so stack/local/global
   accesses use unsafe reads; heap indices are wrapped into range
   before use.  [Pep_check.justify_unsafe] re-derives these bounds
   independently, so the elision is machine-checked under
   [Driver.options.deep_verify] and [pepsim check --deep].  Fused
   superinstructions never push deeper than the sequence they replace,
   so the same [max_stack] bound covers them. *)
and translate eng (cm : Machine.cmeth) midx : flat =
  let m = cm.Machine.meth in
  let nblocks = Array.length m.Method.blocks in
  let witness = Fusion.plan ~gen:cm.Machine.gen ~hot:(hot_mask eng midx) m in
  (match eng.stats with
  | Some s ->
      Metrics.incr s.translations;
      let n = List.length witness.Fusion.fentries in
      if n > 0 then begin
        Metrics.incr ~by:n s.fuse_sites;
        let blocks =
          List.sort_uniq compare
            (List.map (fun e -> e.Fusion.fblock) witness.Fusion.fentries)
        in
        Metrics.incr ~by:(List.length blocks) s.fuse_blocks
      end
  | None -> ());
  let by_block = Array.make nblocks [] in
  List.iter
    (fun (e : Fusion.entry) ->
      by_block.(e.Fusion.fblock) <- e :: by_block.(e.Fusion.fblock))
    witness.Fusion.fentries;
  Array.iteri (fun i l -> by_block.(i) <- List.rev l) by_block;
  (* worst case: one slot per body instruction plus two terminator arms *)
  let bound =
    Array.fold_left
      (fun acc (blk : Method.block) -> acc + Array.length blk.Method.body + 2)
      0 m.Method.blocks
  in
  let code = Array.make bound RET in
  let opa = Array.make bound 0 in
  let opb = Array.make bound 0 in
  let rows = Array.make bound no_row in
  let block_pc = Array.make nblocks 0 in
  let tslots = ref [] in
  let ic_acc = ref [] in
  let n_ics = ref 0 in
  let pc = ref 0 in
  let push op ~ax ~bx =
    code.(!pc) <- op;
    opa.(!pc) <- ax;
    opb.(!pc) <- bx;
    incr pc
  in
  (* a transfer slot: [fa] patched to the destination's first slot once
     every block's position is known *)
  let push_transfer op ~src ~idx dst =
    let yp = if cm.Machine.yieldpoint.(dst) then 1 else 0 in
    code.(!pc) <- op;
    opb.(!pc) <- yp lor (idx lsl 1) lor (src lsl 2) lor (dst lsl 22);
    rows.(!pc) <- cm.Machine.edge_extra.(src);
    tslots := !pc :: !tslots;
    incr pc
  in
  let push_term b = function
    | Method.Ret -> push RET ~ax:0 ~bx:0
    | Method.Jmp d -> push_transfer JMP ~src:b ~idx:0 d
    | Method.Br { on_true; on_false; _ } ->
        push_transfer BR ~src:b ~idx:0 on_true;
        push_transfer ARM ~src:b ~idx:1 on_false
  in
  let push_instr targets i (ins : Instr.t) =
    match ins with
    | Instr.Const k -> push CONST ~ax:k ~bx:0
    | Load l -> push LOAD ~ax:l ~bx:0
    | Store l -> push STORE ~ax:l ~bx:0
    | Inc (l, k) -> push INC ~ax:l ~bx:k
    | Binop op -> push (op_of_binop op) ~ax:0 ~bx:0
    | Cmp c -> push (op_of_cmp c) ~ax:0 ~bx:0
    | Neg -> push NEG ~ax:0 ~bx:0
    | Not -> push NOT ~ax:0 ~bx:0
    | Dup -> push DUP ~ax:0 ~bx:0
    | Pop -> push POP ~ax:0 ~bx:0
    | GLoad g -> push GLOAD ~ax:g ~bx:0
    | GStore g -> push GSTORE ~ax:g ~bx:0
    | AGet -> push AGET ~ax:0 ~bx:0
    | ASet -> push ASET ~ax:0 ~bx:0
    | Call (_, argc) ->
        let inv = eng.invalid in
        let ic =
          {
            cidx = targets.(i);
            iargc = argc;
            tier = 0;
            g0 = min_int;
            g1 = min_int;
            g2 = min_int;
            g3 = min_int;
            b0 = inv;
            b1 = inv;
            b2 = inv;
            b3 = inv;
            miss_streak = 0;
            stable = 0;
          }
        in
        ic_acc := ic :: !ic_acc;
        push CALL ~ax:!n_ics ~bx:0;
        incr n_ics
    | Rand n -> push RAND ~ax:n ~bx:0
  in
  let push_super b (blk : Method.block) (e : Fusion.entry) =
    let body = blk.Method.body in
    let i = e.Fusion.fstart in
    let arms () =
      match blk.Method.term with
      | Method.Br { on_true; on_false; _ } -> (on_true, on_false)
      | Method.Ret | Method.Jmp _ -> assert false
    in
    match e.Fusion.fpattern with
    | Fusion.LL op ->
        push (ll_of_binop op) ~ax:(local_at body i) ~bx:(local_at body (i + 1))
    | Fusion.LK op ->
        push (lk_of_binop op) ~ax:(local_at body i) ~bx:(const_at body (i + 1))
    | Fusion.KStore ->
        push KSTORE ~ax:(const_at body i) ~bx:(store_at body (i + 1))
    | Fusion.LStore ->
        push LSTORE ~ax:(local_at body i) ~bx:(store_at body (i + 1))
    | Fusion.LRet -> push LRET ~ax:(local_at body i) ~bx:0
    | Fusion.CmpBr c ->
        let on_true, on_false = arms () in
        push_transfer (cmpbr_of_cmp c) ~src:b ~idx:0 on_true;
        push_transfer ARM ~src:b ~idx:1 on_false
    | Fusion.LLCmpBr c ->
        let on_true, on_false = arms () in
        push (ll_cmpbr_of_cmp c) ~ax:(local_at body i) ~bx:(local_at body (i + 1));
        push_transfer ARM ~src:b ~idx:0 on_true;
        push_transfer ARM ~src:b ~idx:1 on_false
    | Fusion.LKCmpBr c ->
        let on_true, on_false = arms () in
        push (lk_cmpbr_of_cmp c) ~ax:(local_at body i) ~bx:(const_at body (i + 1));
        push_transfer ARM ~src:b ~idx:0 on_true;
        push_transfer ARM ~src:b ~idx:1 on_false
    | Fusion.KCmpBr c ->
        let on_true, on_false = arms () in
        push (k_cmpbr_of_cmp c) ~ax:(const_at body i) ~bx:0;
        push_transfer ARM ~src:b ~idx:0 on_true;
        push_transfer ARM ~src:b ~idx:1 on_false
    | Fusion.LJmp ->
        let dst =
          match blk.Method.term with Method.Jmp d -> d | _ -> assert false
        in
        push LJMP ~ax:(local_at body i) ~bx:0;
        push_transfer ARM ~src:b ~idx:0 dst
    | Fusion.StJmp ->
        let dst =
          match blk.Method.term with Method.Jmp d -> d | _ -> assert false
        in
        push STJMP ~ax:(store_at body i) ~bx:0;
        push_transfer ARM ~src:b ~idx:0 dst
    | Fusion.IncJmp ->
        let dst =
          match blk.Method.term with Method.Jmp d -> d | _ -> assert false
        in
        let l, k = inc_at body i in
        push INCJMP ~ax:l ~bx:k;
        push_transfer ARM ~src:b ~idx:0 dst
  in
  for b = 0 to nblocks - 1 do
    let blk = m.Method.blocks.(b) in
    block_pc.(b) <- !pc;
    let body = blk.Method.body in
    let n = Array.length body in
    let targets = cm.Machine.call_target.(b) in
    let entries = ref by_block.(b) in
    let term_fused = ref false in
    let i = ref 0 in
    while !i < n do
      match !entries with
      | (e : Fusion.entry) :: rest when e.Fusion.fstart = !i ->
          entries := rest;
          push_super b blk e;
          if e.Fusion.fterm then term_fused := true;
          i := !i + e.Fusion.flen
      | _ ->
          push_instr targets !i body.(!i);
          incr i
    done;
    if not !term_fused then push_term b blk.Method.term
  done;
  let len = !pc in
  let code = Array.sub code 0 len in
  let opa = Array.sub opa 0 len in
  let opb = Array.sub opb 0 len in
  let rows = Array.sub rows 0 len in
  let cost = Array.make len 0 in
  List.iter
    (fun s ->
      let dst = opb.(s) lsr 22 in
      opa.(s) <- block_pc.(dst);
      cost.(s) <- cm.Machine.block_cost.(dst))
    !tslots;
  let e2_pc, e_row, e2_cost, e2_yp =
    let eb = m.Method.entry in
    match m.Method.blocks.(eb).Method.term with
    | Method.Jmp d when Array.length m.Method.blocks.(eb).Method.body = 0 ->
        ( block_pc.(d),
          cm.Machine.edge_extra.(eb),
          cm.Machine.block_cost.(d),
          cm.Machine.yieldpoint.(d) )
    | _ -> (block_pc.(eb), no_row, 0, false)
  in
  {
    bgen = cm.Machine.gen;
    self = midx;
    fcm = cm;
    nlocals = m.Method.nlocals;
    stack_need = cm.Machine.max_stack + 1;
    fneed = max m.Method.nlocals (cm.Machine.max_stack + 1);
    entry_pc = block_pc.(m.Method.entry);
    entry_block = m.Method.entry;
    entry_yp = cm.Machine.yieldpoint.(m.Method.entry);
    entry_cost = cm.Machine.block_cost.(m.Method.entry);
    entry2_pc = e2_pc;
    entry_row = e_row;
    entry2_cost = e2_cost;
    entry2_yp = e2_yp;
    fcode = code;
    fa = opa;
    fb = opb;
    fcost = cost;
    frows = rows;
    fics = Array.of_list (List.rev !ic_acc);
    fwitness = witness;
  }

(* Inline-cache lookup off the fast path (any non-monomorphic-hit
   case).  Generation stamps are globally unique and monotonic, so a
   matching stamp in any slot proves the cached flat code is current. *)
and lookup_ic eng ic (ccm : Machine.cmeth) =
  let gen = ccm.Machine.gen in
  match ic.tier with
  | 0 ->
      (* monomorphic; the hit case is inlined at the call site *)
      count_miss eng;
      let bd = get_body eng ic.cidx in
      if eng.tiers.pic then begin
        ic.miss_streak <- ic.miss_streak + 1;
        if ic.miss_streak >= eng.tiers.pic_mono_misses then begin
          ic.g1 <- ic.g0;
          ic.b1 <- ic.b0;
          ic.tier <- 1;
          ic.miss_streak <- 0;
          match eng.stats with
          | Some s -> Metrics.incr s.pic_promote_poly
          | None -> ()
        end
      end;
      ic.g0 <- gen;
      ic.b0 <- bd;
      bd
  | 1 ->
      if ic.g0 = gen then begin
        count_hit eng;
        ic.b0
      end
      else if ic.g1 = gen then begin
        count_hit eng;
        ic.b1
      end
      else if ic.g2 = gen then begin
        count_hit eng;
        ic.b2
      end
      else if ic.g3 = gen then begin
        count_hit eng;
        ic.b3
      end
      else begin
        count_miss eng;
        let bd = get_body eng ic.cidx in
        ic.g3 <- ic.g2;
        ic.b3 <- ic.b2;
        ic.g2 <- ic.g1;
        ic.b2 <- ic.b1;
        ic.g1 <- ic.g0;
        ic.b1 <- ic.b0;
        ic.g0 <- gen;
        ic.b0 <- bd;
        ic.miss_streak <- ic.miss_streak + 1;
        if ic.miss_streak >= eng.tiers.pic_poly_misses then begin
          ic.tier <- 2;
          ic.miss_streak <- 0;
          (* the call-site fast path is a single stamp compare on slot
             0, so the megamorphic tier parks a never-matching stamp
             there and tracks the last seen generation in slot 2 *)
          ic.g0 <- min_int;
          ic.g2 <- gen;
          ic.b2 <- bd;
          match eng.stats with
          | Some s -> Metrics.incr s.pic_promote_mega
          | None -> ()
        end;
        bd
      end
  | _ ->
      (* megamorphic: always consult the per-method cache; a long
         stable run earns demotion back to monomorphic *)
      let bd = get_body eng ic.cidx in
      if ic.g2 = gen then begin
        count_hit eng;
        ic.stable <- ic.stable + 1;
        if ic.stable >= eng.tiers.pic_mega_stable then begin
          ic.tier <- 0;
          ic.miss_streak <- 0;
          ic.stable <- 0;
          ic.g0 <- gen;
          ic.b0 <- bd;
          match eng.stats with
          | Some s -> Metrics.incr s.pic_demote
          | None -> ()
        end
      end
      else begin
        count_miss eng;
        ic.g2 <- gen;
        ic.b2 <- bd;
        ic.stable <- 0
      end;
      bd

(* Enter a translated body: charge the entry block like the oracle's
   [enter_block] (cost, then poll and tick flag if the entry carries a
   yieldpoint, then the yieldpoint hook), and start the dispatch loop. *)
and run_flat eng bd env =
  let st = eng.st in
  let c =
    st.Machine.cycles
    + Array.unsafe_get bd.fcm.Machine.block_cost bd.entry_block
  in
  if bd.entry_yp then begin
    let c = c + eng.poll in
    st.Machine.cycles <- c;
    if c >= st.Machine.next_tick then st.Machine.yield_flag <- true;
    match eng.hooks.Interp.on_yieldpoint with
    | Some g -> g st env.frame bd.entry_block
    | None -> ()
  end
  else st.Machine.cycles <- c;
  exec eng bd env.stack env.locals env.frame st.Machine.cycles
    st.Machine.depth bd.entry_pc 0

(* Take the transfer stored in [slot]: charge the edge's layout
   penalty and the destination block's cost (mirroring the oracle's
   [take_edge] + [enter_block] sequence, including hook order), then
   continue at the destination's first slot.

   [cyc] is the live cycle counter, threaded through [exec] as a
   parameter so bare-mode dispatch never round-trips it through
   [st.Machine.cycles]; it is flushed at returns, at calls, and before
   any hook runs (hooks observe and may mutate [st.Machine.cycles], so
   hooked paths store first and reload after). *)
and transfer eng fl stack locals frame cyc depth slot sp =
  let w = Array.unsafe_get fl.fb slot in
  let row = Array.unsafe_get fl.frows slot in
  if not eng.hooked_mode then
    (* bare mode: no observer anywhere, so the edge charge and the
       block charge merge into one add on the register-resident
       counter and no hook is ever consulted; the block cost is the
       baked [fcost] (gen-validated, see [flat]) *)
    let c =
      cyc
      + Array.unsafe_get row ((w lsr 1) land 1)
      + Array.unsafe_get fl.fcost slot
    in
    if w land 1 = 0 then
      exec eng fl stack locals frame c depth (Array.unsafe_get fl.fa slot) sp
    else begin
      let st = eng.st in
      let c = c + eng.poll in
      if c >= st.Machine.next_tick then st.Machine.yield_flag <- true;
      exec eng fl stack locals frame c depth (Array.unsafe_get fl.fa slot) sp
    end
  else begin
    let st = eng.st in
    let dst = w lsr 22 in
    (match eng.hooks.Interp.on_edge with
    | None ->
        (* no observer between the edge charge and the block charge, so
           both merge into one add *)
        let c =
          cyc
          + Array.unsafe_get row ((w lsr 1) land 1)
          + Array.unsafe_get fl.fcm.Machine.block_cost dst
        in
        if w land 1 = 0 then st.Machine.cycles <- c
        else begin
          let c = c + eng.poll in
          st.Machine.cycles <- c;
          if c >= st.Machine.next_tick then st.Machine.yield_flag <- true;
          match eng.hooks.Interp.on_yieldpoint with
          | Some g -> g st frame dst
          | None -> ()
        end
    | Some f ->
        let idx = (w lsr 1) land 1 in
        st.Machine.cycles <- cyc + row.(idx);
        f st frame ~src:((w lsr 2) land 0xFFFFF) ~idx ~dst;
        let c = st.Machine.cycles + fl.fcm.Machine.block_cost.(dst) in
        if w land 1 = 0 then st.Machine.cycles <- c
        else begin
          let c = c + eng.poll in
          st.Machine.cycles <- c;
          if c >= st.Machine.next_tick then st.Machine.yield_flag <- true;
          match eng.hooks.Interp.on_yieldpoint with
          | Some g -> g st frame dst
          | None -> ()
        end);
    exec eng fl stack locals frame st.Machine.cycles depth
      (Array.unsafe_get fl.fa slot)
      sp
  end

(* The dispatch loop.  [sp] points at the next free stack slot, and
   [cyc] is the live cycle counter; both live in parameters
   (registers), not fields.  [cyc] is authoritative: it is flushed to
   [st.Machine.cycles] at returns and calls and whenever a hook could
   observe it, and reloaded after anything that may have charged or
   mutated cycles (a callee, a hook). *)
and exec eng fl stack locals frame cyc depth pc sp : int =
  match Array.unsafe_get fl.fcode pc with
  | CONST ->
      Array.unsafe_set stack sp (Array.unsafe_get fl.fa pc);
      exec eng fl stack locals frame cyc depth (pc + 1) (sp + 1)
  | LOAD ->
      Array.unsafe_set stack sp
        (Array.unsafe_get locals (Array.unsafe_get fl.fa pc));
      exec eng fl stack locals frame cyc depth (pc + 1) (sp + 1)
  | STORE ->
      let sp = sp - 1 in
      Array.unsafe_set locals (Array.unsafe_get fl.fa pc)
        (Array.unsafe_get stack sp);
      exec eng fl stack locals frame cyc depth (pc + 1) sp
  | INC ->
      let l = Array.unsafe_get fl.fa pc in
      Array.unsafe_set locals l
        (Array.unsafe_get locals l + Array.unsafe_get fl.fb pc);
      exec eng fl stack locals frame cyc depth (pc + 1) sp
  | ADD ->
      let sp = sp - 1 in
      Array.unsafe_set stack (sp - 1)
        (Array.unsafe_get stack (sp - 1) + Array.unsafe_get stack sp);
      exec eng fl stack locals frame cyc depth (pc + 1) sp
  | SUB ->
      let sp = sp - 1 in
      Array.unsafe_set stack (sp - 1)
        (Array.unsafe_get stack (sp - 1) - Array.unsafe_get stack sp);
      exec eng fl stack locals frame cyc depth (pc + 1) sp
  | MUL ->
      let sp = sp - 1 in
      Array.unsafe_set stack (sp - 1)
        (Array.unsafe_get stack (sp - 1) * Array.unsafe_get stack sp);
      exec eng fl stack locals frame cyc depth (pc + 1) sp
  | DIV ->
      let sp = sp - 1 in
      let b = Array.unsafe_get stack sp in
      Array.unsafe_set stack (sp - 1)
        (if b = 0 then 0 else Array.unsafe_get stack (sp - 1) / b);
      exec eng fl stack locals frame cyc depth (pc + 1) sp
  | REM ->
      let sp = sp - 1 in
      let b = Array.unsafe_get stack sp in
      Array.unsafe_set stack (sp - 1)
        (if b = 0 then 0 else Array.unsafe_get stack (sp - 1) mod b);
      exec eng fl stack locals frame cyc depth (pc + 1) sp
  | AND ->
      let sp = sp - 1 in
      Array.unsafe_set stack (sp - 1)
        (Array.unsafe_get stack (sp - 1) land Array.unsafe_get stack sp);
      exec eng fl stack locals frame cyc depth (pc + 1) sp
  | OR ->
      let sp = sp - 1 in
      Array.unsafe_set stack (sp - 1)
        (Array.unsafe_get stack (sp - 1) lor Array.unsafe_get stack sp);
      exec eng fl stack locals frame cyc depth (pc + 1) sp
  | XOR ->
      let sp = sp - 1 in
      Array.unsafe_set stack (sp - 1)
        (Array.unsafe_get stack (sp - 1) lxor Array.unsafe_get stack sp);
      exec eng fl stack locals frame cyc depth (pc + 1) sp
  | SHL ->
      let sp = sp - 1 in
      Array.unsafe_set stack (sp - 1)
        (Array.unsafe_get stack (sp - 1) lsl (Array.unsafe_get stack sp land 63));
      exec eng fl stack locals frame cyc depth (pc + 1) sp
  | SHR ->
      let sp = sp - 1 in
      Array.unsafe_set stack (sp - 1)
        (Array.unsafe_get stack (sp - 1) asr (Array.unsafe_get stack sp land 63));
      exec eng fl stack locals frame cyc depth (pc + 1) sp
  | EQ ->
      let sp = sp - 1 in
      Array.unsafe_set stack (sp - 1)
        (if Array.unsafe_get stack (sp - 1) = Array.unsafe_get stack sp then 1
         else 0);
      exec eng fl stack locals frame cyc depth (pc + 1) sp
  | NE ->
      let sp = sp - 1 in
      Array.unsafe_set stack (sp - 1)
        (if Array.unsafe_get stack (sp - 1) <> Array.unsafe_get stack sp then 1
         else 0);
      exec eng fl stack locals frame cyc depth (pc + 1) sp
  | LT ->
      let sp = sp - 1 in
      Array.unsafe_set stack (sp - 1)
        (if Array.unsafe_get stack (sp - 1) < Array.unsafe_get stack sp then 1
         else 0);
      exec eng fl stack locals frame cyc depth (pc + 1) sp
  | LE ->
      let sp = sp - 1 in
      Array.unsafe_set stack (sp - 1)
        (if Array.unsafe_get stack (sp - 1) <= Array.unsafe_get stack sp then 1
         else 0);
      exec eng fl stack locals frame cyc depth (pc + 1) sp
  | GT ->
      let sp = sp - 1 in
      Array.unsafe_set stack (sp - 1)
        (if Array.unsafe_get stack (sp - 1) > Array.unsafe_get stack sp then 1
         else 0);
      exec eng fl stack locals frame cyc depth (pc + 1) sp
  | GE ->
      let sp = sp - 1 in
      Array.unsafe_set stack (sp - 1)
        (if Array.unsafe_get stack (sp - 1) >= Array.unsafe_get stack sp then 1
         else 0);
      exec eng fl stack locals frame cyc depth (pc + 1) sp
  | NEG ->
      Array.unsafe_set stack (sp - 1) (-Array.unsafe_get stack (sp - 1));
      exec eng fl stack locals frame cyc depth (pc + 1) sp
  | NOT ->
      Array.unsafe_set stack (sp - 1)
        (if Array.unsafe_get stack (sp - 1) = 0 then 1 else 0);
      exec eng fl stack locals frame cyc depth (pc + 1) sp
  | DUP ->
      Array.unsafe_set stack sp (Array.unsafe_get stack (sp - 1));
      exec eng fl stack locals frame cyc depth (pc + 1) (sp + 1)
  | POP -> exec eng fl stack locals frame cyc depth (pc + 1) (sp - 1)
  | GLOAD ->
      Array.unsafe_set stack sp
        (Array.unsafe_get eng.globals (Array.unsafe_get fl.fa pc));
      exec eng fl stack locals frame cyc depth (pc + 1) (sp + 1)
  | GSTORE ->
      let sp = sp - 1 in
      Array.unsafe_set eng.globals (Array.unsafe_get fl.fa pc)
        (Array.unsafe_get stack sp);
      exec eng fl stack locals frame cyc depth (pc + 1) sp
  | AGET ->
      let i = Array.unsafe_get stack (sp - 1) mod eng.heap_n in
      let i = if i < 0 then i + eng.heap_n else i in
      Array.unsafe_set stack (sp - 1) (Array.unsafe_get eng.heap i);
      exec eng fl stack locals frame cyc depth (pc + 1) sp
  | ASET ->
      let sp = sp - 2 in
      let i = Array.unsafe_get stack sp mod eng.heap_n in
      let i = if i < 0 then i + eng.heap_n else i in
      Array.unsafe_set eng.heap i (Array.unsafe_get stack (sp + 1));
      exec eng fl stack locals frame cyc depth (pc + 1) sp
  | RAND ->
      Array.unsafe_set stack sp
        (Prng.below eng.prng (Array.unsafe_get fl.fa pc));
      exec eng fl stack locals frame cyc depth (pc + 1) (sp + 1)
  | CALL ->
      let st = eng.st in
      (* [depth] lives in a register; bare mode never writes
         [st.Machine.depth] mid-run (it is 1 for the whole invocation,
         as [invoke] left it, and nothing bare can observe it), so a
         call's depth bookkeeping costs no memory traffic.  The error
         path and hooked mode restore the oracle-visible field. *)
      if depth >= Interp.max_depth then begin
        st.Machine.cycles <- cyc;
        st.Machine.depth <- depth;
        overflow ()
      end;
      let cdepth = depth + 1 in
      let ic = Array.unsafe_get fl.fics (Array.unsafe_get fl.fa pc) in
      let argc = ic.iargc in
      let sp = sp - argc in
      if not eng.hooked_mode then begin
        let ccm = Array.unsafe_get st.Machine.methods ic.cidx in
        let bd =
          (* slot 0 carries a never-matching stamp in the megamorphic
             tier, so one compare covers the whole ladder; the stats
             match is [prep]/[count_hit] hand-inlined — without flambda
             nothing here inlines on its own *)
          if ic.g0 = ccm.Machine.gen then begin
            (match eng.stats with Some s -> Metrics.incr s.ic_hits | None -> ());
            ic.b0
          end
          else lookup_ic eng ic ccm
        in
        let envs = eng.envs in
        let cenv =
          if cdepth < Array.length envs then Array.unsafe_get envs cdepth
          else env_at eng cdepth
        in
        if Array.length cenv.locals < bd.fneed then grow cenv bd.fneed;
        let clocals = cenv.locals in
        for i = argc to bd.nlocals - 1 do
          Array.unsafe_set clocals i 0
        done;
        if argc = 1 then Array.unsafe_set clocals 0 (Array.unsafe_get stack sp)
        else if argc = 2 then begin
          Array.unsafe_set clocals 0 (Array.unsafe_get stack sp);
          Array.unsafe_set clocals 1 (Array.unsafe_get stack (sp + 1))
        end
        else
          for i = 0 to argc - 1 do
            Array.unsafe_set clocals i (Array.unsafe_get stack (sp + i))
          done;
        (* [run_flat]'s entry sequence, inlined minus the hook consult
           (bare mode has none): charge the entry block, poll if it
           carries a yieldpoint, then the baked second stage — the
           elided entry [Jmp]'s edge row and destination cost (a neutral
           no-op when the entry block was not elidable).  The charges
           stay in a register; the callee's return flushes them. *)
        let c = cyc + bd.entry_cost in
        let c =
          if bd.entry_yp then begin
            let c = c + eng.poll in
            if c >= st.Machine.next_tick then st.Machine.yield_flag <- true;
            c
          end
          else c
        in
        let c = c + Array.unsafe_get bd.entry_row 0 + bd.entry2_cost in
        let c =
          if bd.entry2_yp then begin
            let c = c + eng.poll in
            if c >= st.Machine.next_tick then st.Machine.yield_flag <- true;
            c
          end
          else c
        in
        let v =
          (* [frame] is only ever read by hook consults, so bare mode
             threads the caller's (already in a register) rather than
             loading [cenv.frame] *)
          exec eng bd cenv.stack clocals frame c cdepth bd.entry2_pc 0
        in
        Array.unsafe_set stack sp v;
        exec eng fl stack locals frame st.Machine.cycles depth (pc + 1) (sp + 1)
      end
      else begin
        st.Machine.cycles <- cyc;
        st.Machine.depth <- cdepth;
        let cframe = { Interp.fmeth = ic.cidx; fparent = fl.self; r = 0 } in
        (* on_entry runs before the inline cache is consulted: a lazy
           compiler hook may have just replaced the callee's body *)
        (match eng.hooks.Interp.on_entry with
        | Some f -> f st cframe
        | None -> ());
        let ccm = Array.unsafe_get st.Machine.methods ic.cidx in
        let bd =
          if ic.g0 = ccm.Machine.gen then begin
            count_hit eng;
            ic.b0
          end
          else lookup_ic eng ic ccm
        in
        let cenv = env_at eng cdepth in
        prep cenv bd argc;
        let clocals = cenv.locals in
        for i = 0 to argc - 1 do
          Array.unsafe_set clocals i (Array.unsafe_get stack (sp + i))
        done;
        cenv.frame <- cframe;
        let v = run_flat eng bd cenv in
        (match eng.hooks.Interp.on_exit with
        | Some f -> f st cframe
        | None -> ());
        st.Machine.depth <- depth;
        Array.unsafe_set stack sp v;
        exec eng fl stack locals frame st.Machine.cycles depth (pc + 1) (sp + 1)
      end
  | RET ->
      eng.st.Machine.cycles <- cyc;
      Array.unsafe_get stack (sp - 1)
  | JMP -> transfer eng fl stack locals frame cyc depth pc sp
  | BR ->
      let sp = sp - 1 in
      if Array.unsafe_get stack sp <> 0 then
        transfer eng fl stack locals frame cyc depth pc sp
      else transfer eng fl stack locals frame cyc depth (pc + 1) sp
  | ARM -> assert false
  | LL_ADD ->
      Array.unsafe_set stack sp
        (Array.unsafe_get locals (Array.unsafe_get fl.fa pc)
        + Array.unsafe_get locals (Array.unsafe_get fl.fb pc));
      exec eng fl stack locals frame cyc depth (pc + 1) (sp + 1)
  | LL_SUB ->
      Array.unsafe_set stack sp
        (Array.unsafe_get locals (Array.unsafe_get fl.fa pc)
        - Array.unsafe_get locals (Array.unsafe_get fl.fb pc));
      exec eng fl stack locals frame cyc depth (pc + 1) (sp + 1)
  | LL_MUL ->
      Array.unsafe_set stack sp
        (Array.unsafe_get locals (Array.unsafe_get fl.fa pc)
        * Array.unsafe_get locals (Array.unsafe_get fl.fb pc));
      exec eng fl stack locals frame cyc depth (pc + 1) (sp + 1)
  | LL_AND ->
      Array.unsafe_set stack sp
        (Array.unsafe_get locals (Array.unsafe_get fl.fa pc)
        land Array.unsafe_get locals (Array.unsafe_get fl.fb pc));
      exec eng fl stack locals frame cyc depth (pc + 1) (sp + 1)
  | LL_OR ->
      Array.unsafe_set stack sp
        (Array.unsafe_get locals (Array.unsafe_get fl.fa pc)
        lor Array.unsafe_get locals (Array.unsafe_get fl.fb pc));
      exec eng fl stack locals frame cyc depth (pc + 1) (sp + 1)
  | LL_XOR ->
      Array.unsafe_set stack sp
        (Array.unsafe_get locals (Array.unsafe_get fl.fa pc)
        lxor Array.unsafe_get locals (Array.unsafe_get fl.fb pc));
      exec eng fl stack locals frame cyc depth (pc + 1) (sp + 1)
  | LK_ADD ->
      Array.unsafe_set stack sp
        (Array.unsafe_get locals (Array.unsafe_get fl.fa pc)
        + Array.unsafe_get fl.fb pc);
      exec eng fl stack locals frame cyc depth (pc + 1) (sp + 1)
  | LK_SUB ->
      Array.unsafe_set stack sp
        (Array.unsafe_get locals (Array.unsafe_get fl.fa pc)
        - Array.unsafe_get fl.fb pc);
      exec eng fl stack locals frame cyc depth (pc + 1) (sp + 1)
  | LK_MUL ->
      Array.unsafe_set stack sp
        (Array.unsafe_get locals (Array.unsafe_get fl.fa pc)
        * Array.unsafe_get fl.fb pc);
      exec eng fl stack locals frame cyc depth (pc + 1) (sp + 1)
  | LK_AND ->
      Array.unsafe_set stack sp
        (Array.unsafe_get locals (Array.unsafe_get fl.fa pc)
        land Array.unsafe_get fl.fb pc);
      exec eng fl stack locals frame cyc depth (pc + 1) (sp + 1)
  | LK_OR ->
      Array.unsafe_set stack sp
        (Array.unsafe_get locals (Array.unsafe_get fl.fa pc)
        lor Array.unsafe_get fl.fb pc);
      exec eng fl stack locals frame cyc depth (pc + 1) (sp + 1)
  | LK_XOR ->
      Array.unsafe_set stack sp
        (Array.unsafe_get locals (Array.unsafe_get fl.fa pc)
        lxor Array.unsafe_get fl.fb pc);
      exec eng fl stack locals frame cyc depth (pc + 1) (sp + 1)
  | KSTORE ->
      Array.unsafe_set locals (Array.unsafe_get fl.fb pc)
        (Array.unsafe_get fl.fa pc);
      exec eng fl stack locals frame cyc depth (pc + 1) sp
  | LSTORE ->
      Array.unsafe_set locals (Array.unsafe_get fl.fb pc)
        (Array.unsafe_get locals (Array.unsafe_get fl.fa pc));
      exec eng fl stack locals frame cyc depth (pc + 1) sp
  | LRET ->
      eng.st.Machine.cycles <- cyc;
      Array.unsafe_get locals (Array.unsafe_get fl.fa pc)
  | CMPBR_EQ ->
      let sp = sp - 2 in
      if Array.unsafe_get stack sp = Array.unsafe_get stack (sp + 1) then
        transfer eng fl stack locals frame cyc depth pc sp
      else transfer eng fl stack locals frame cyc depth (pc + 1) sp
  | CMPBR_NE ->
      let sp = sp - 2 in
      if Array.unsafe_get stack sp <> Array.unsafe_get stack (sp + 1) then
        transfer eng fl stack locals frame cyc depth pc sp
      else transfer eng fl stack locals frame cyc depth (pc + 1) sp
  | CMPBR_LT ->
      let sp = sp - 2 in
      if Array.unsafe_get stack sp < Array.unsafe_get stack (sp + 1) then
        transfer eng fl stack locals frame cyc depth pc sp
      else transfer eng fl stack locals frame cyc depth (pc + 1) sp
  | CMPBR_LE ->
      let sp = sp - 2 in
      if Array.unsafe_get stack sp <= Array.unsafe_get stack (sp + 1) then
        transfer eng fl stack locals frame cyc depth pc sp
      else transfer eng fl stack locals frame cyc depth (pc + 1) sp
  | CMPBR_GT ->
      let sp = sp - 2 in
      if Array.unsafe_get stack sp > Array.unsafe_get stack (sp + 1) then
        transfer eng fl stack locals frame cyc depth pc sp
      else transfer eng fl stack locals frame cyc depth (pc + 1) sp
  | CMPBR_GE ->
      let sp = sp - 2 in
      if Array.unsafe_get stack sp >= Array.unsafe_get stack (sp + 1) then
        transfer eng fl stack locals frame cyc depth pc sp
      else transfer eng fl stack locals frame cyc depth (pc + 1) sp
  | LL_CMPBR_EQ ->
      if
        Array.unsafe_get locals (Array.unsafe_get fl.fa pc)
        = Array.unsafe_get locals (Array.unsafe_get fl.fb pc)
      then transfer eng fl stack locals frame cyc depth (pc + 1) sp
      else transfer eng fl stack locals frame cyc depth (pc + 2) sp
  | LL_CMPBR_NE ->
      if
        Array.unsafe_get locals (Array.unsafe_get fl.fa pc)
        <> Array.unsafe_get locals (Array.unsafe_get fl.fb pc)
      then transfer eng fl stack locals frame cyc depth (pc + 1) sp
      else transfer eng fl stack locals frame cyc depth (pc + 2) sp
  | LL_CMPBR_LT ->
      if
        Array.unsafe_get locals (Array.unsafe_get fl.fa pc)
        < Array.unsafe_get locals (Array.unsafe_get fl.fb pc)
      then transfer eng fl stack locals frame cyc depth (pc + 1) sp
      else transfer eng fl stack locals frame cyc depth (pc + 2) sp
  | LL_CMPBR_LE ->
      if
        Array.unsafe_get locals (Array.unsafe_get fl.fa pc)
        <= Array.unsafe_get locals (Array.unsafe_get fl.fb pc)
      then transfer eng fl stack locals frame cyc depth (pc + 1) sp
      else transfer eng fl stack locals frame cyc depth (pc + 2) sp
  | LL_CMPBR_GT ->
      if
        Array.unsafe_get locals (Array.unsafe_get fl.fa pc)
        > Array.unsafe_get locals (Array.unsafe_get fl.fb pc)
      then transfer eng fl stack locals frame cyc depth (pc + 1) sp
      else transfer eng fl stack locals frame cyc depth (pc + 2) sp
  | LL_CMPBR_GE ->
      if
        Array.unsafe_get locals (Array.unsafe_get fl.fa pc)
        >= Array.unsafe_get locals (Array.unsafe_get fl.fb pc)
      then transfer eng fl stack locals frame cyc depth (pc + 1) sp
      else transfer eng fl stack locals frame cyc depth (pc + 2) sp
  | LK_CMPBR_EQ ->
      if
        Array.unsafe_get locals (Array.unsafe_get fl.fa pc)
        = Array.unsafe_get fl.fb pc
      then transfer eng fl stack locals frame cyc depth (pc + 1) sp
      else transfer eng fl stack locals frame cyc depth (pc + 2) sp
  | LK_CMPBR_NE ->
      if
        Array.unsafe_get locals (Array.unsafe_get fl.fa pc)
        <> Array.unsafe_get fl.fb pc
      then transfer eng fl stack locals frame cyc depth (pc + 1) sp
      else transfer eng fl stack locals frame cyc depth (pc + 2) sp
  | LK_CMPBR_LT ->
      if
        Array.unsafe_get locals (Array.unsafe_get fl.fa pc)
        < Array.unsafe_get fl.fb pc
      then transfer eng fl stack locals frame cyc depth (pc + 1) sp
      else transfer eng fl stack locals frame cyc depth (pc + 2) sp
  | LK_CMPBR_LE ->
      if
        Array.unsafe_get locals (Array.unsafe_get fl.fa pc)
        <= Array.unsafe_get fl.fb pc
      then transfer eng fl stack locals frame cyc depth (pc + 1) sp
      else transfer eng fl stack locals frame cyc depth (pc + 2) sp
  | LK_CMPBR_GT ->
      if
        Array.unsafe_get locals (Array.unsafe_get fl.fa pc)
        > Array.unsafe_get fl.fb pc
      then transfer eng fl stack locals frame cyc depth (pc + 1) sp
      else transfer eng fl stack locals frame cyc depth (pc + 2) sp
  | LK_CMPBR_GE ->
      if
        Array.unsafe_get locals (Array.unsafe_get fl.fa pc)
        >= Array.unsafe_get fl.fb pc
      then transfer eng fl stack locals frame cyc depth (pc + 1) sp
      else transfer eng fl stack locals frame cyc depth (pc + 2) sp
  | K_CMPBR_EQ ->
      let sp = sp - 1 in
      if Array.unsafe_get stack sp = Array.unsafe_get fl.fa pc then
        transfer eng fl stack locals frame cyc depth (pc + 1) sp
      else transfer eng fl stack locals frame cyc depth (pc + 2) sp
  | K_CMPBR_NE ->
      let sp = sp - 1 in
      if Array.unsafe_get stack sp <> Array.unsafe_get fl.fa pc then
        transfer eng fl stack locals frame cyc depth (pc + 1) sp
      else transfer eng fl stack locals frame cyc depth (pc + 2) sp
  | K_CMPBR_LT ->
      let sp = sp - 1 in
      if Array.unsafe_get stack sp < Array.unsafe_get fl.fa pc then
        transfer eng fl stack locals frame cyc depth (pc + 1) sp
      else transfer eng fl stack locals frame cyc depth (pc + 2) sp
  | K_CMPBR_LE ->
      let sp = sp - 1 in
      if Array.unsafe_get stack sp <= Array.unsafe_get fl.fa pc then
        transfer eng fl stack locals frame cyc depth (pc + 1) sp
      else transfer eng fl stack locals frame cyc depth (pc + 2) sp
  | K_CMPBR_GT ->
      let sp = sp - 1 in
      if Array.unsafe_get stack sp > Array.unsafe_get fl.fa pc then
        transfer eng fl stack locals frame cyc depth (pc + 1) sp
      else transfer eng fl stack locals frame cyc depth (pc + 2) sp
  | K_CMPBR_GE ->
      let sp = sp - 1 in
      if Array.unsafe_get stack sp >= Array.unsafe_get fl.fa pc then
        transfer eng fl stack locals frame cyc depth (pc + 1) sp
      else transfer eng fl stack locals frame cyc depth (pc + 2) sp
  | LJMP ->
      Array.unsafe_set stack sp
        (Array.unsafe_get locals (Array.unsafe_get fl.fa pc));
      transfer eng fl stack locals frame cyc depth (pc + 1) (sp + 1)
  | STJMP ->
      let sp = sp - 1 in
      Array.unsafe_set locals (Array.unsafe_get fl.fa pc)
        (Array.unsafe_get stack sp);
      transfer eng fl stack locals frame cyc depth (pc + 1) sp
  | INCJMP ->
      let l = Array.unsafe_get fl.fa pc in
      Array.unsafe_set locals l
        (Array.unsafe_get locals l + Array.unsafe_get fl.fb pc);
      transfer eng fl stack locals frame cyc depth (pc + 1) sp

let ic_tiers eng name =
  let midx = Machine.index eng.st name in
  match eng.bodies.(midx) with
  | None -> []
  | Some b ->
      Array.to_list
        (Array.map
           (fun ic ->
             match ic.tier with 0 -> "mono" | 1 -> "poly" | _ -> "mega")
           b.fics)

(* Root invocation (the engine's equivalent of [Interp.call]): args come
   in a real array, and the hook prologue/epilogue runs here once per
   invocation. *)
let invoke eng midx (args : int array) =
  let st = eng.st in
  if st.Machine.depth >= Interp.max_depth then overflow ();
  let depth = st.Machine.depth + 1 in
  st.Machine.depth <- depth;
  let argc = Array.length args in
  if eng.hooked_mode then begin
    let frame = { Interp.fmeth = midx; fparent = -1; r = 0 } in
    (match eng.hooks.Interp.on_entry with Some f -> f st frame | None -> ());
    let bd = get_body eng midx in
    let env = env_at eng depth in
    prep env bd argc;
    Array.blit args 0 env.locals 0 argc;
    env.frame <- frame;
    let r = run_flat eng bd env in
    (match eng.hooks.Interp.on_exit with Some f -> f st frame | None -> ());
    st.Machine.depth <- st.Machine.depth - 1;
    r
  end
  else begin
    let bd = get_body eng midx in
    let env = env_at eng depth in
    prep env bd argc;
    Array.blit args 0 env.locals 0 argc;
    let r = run_flat eng bd env in
    st.Machine.depth <- st.Machine.depth - 1;
    r
  end

let call eng name args = invoke eng (Machine.index eng.st name) args
let run eng = call eng eng.st.Machine.program.Program.main [||]
