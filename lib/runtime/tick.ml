let hooks ?on_tick () =
  let on_yieldpoint (st : Machine.t) (frame : Interp.frame) _blk =
    if st.yield_flag then begin
      Machine.add_cycles st st.cost.Cost_model.tick_handler;
      st.tick_pending <- true;
      (match on_tick with Some f -> f st frame | None -> ());
      Machine.rearm_timer st
    end
  in
  {
    Interp.on_entry = None;
    on_exit = None;
    on_edge = None;
    on_yieldpoint = Some on_yieldpoint;
  }

type method_samples = int array

let sampling_hooks st =
  let samples = Array.make (Array.length st.Machine.methods) 0 in
  let on_tick _st (frame : Interp.frame) =
    samples.(frame.fmeth) <- samples.(frame.fmeth) + 1
  in
  (hooks ~on_tick (), samples)
