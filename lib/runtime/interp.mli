(** Bytecode interpreter — the reference execution oracle.

    {!Codegen} is the production engine (closure-threaded code, inline
    caches); this interpreter stays deliberately simple and is the
    semantic oracle the threaded engine is differentially tested
    against: both must produce identical cycle counts, checksums, hook
    event sequences and profiles on every workload.

    Executes a program over a {!Machine.t}, accumulating virtual cycles
    (per-block base cost, yieldpoint polls, layout [edge_extra]) and
    invoking the caller's hooks.  The interpreter itself is policy-free:
    all profiling, sampling and instrumentation-cost accounting live in
    hook implementations supplied by the profiling and VM layers.

    Hook order on a control transfer [src -> dst]: charge [edge_extra],
    call [on_edge]; then on entering [dst]: charge block cost, and if
    [dst] is a yieldpoint, charge the poll, update the timer flag, and
    call [on_yieldpoint].  [on_entry] runs with the fresh frame
    before the method's compiled form is even fetched — a lazy-compiler
    hook may install or replace the body and this invocation executes the
    fresh code; [on_exit] runs after the exit block's [Ret], while the
    frame is still live. *)

(** Per-invocation frame view exposed to hooks: the method index, the
    calling method's index (-1 for the root invocation), and the
    Ball-Larus path register. *)
type frame = { fmeth : int; fparent : int; mutable r : int }

type hooks = {
  on_entry : (Machine.t -> frame -> unit) option;
  on_exit : (Machine.t -> frame -> unit) option;
  on_edge : (Machine.t -> frame -> src:int -> idx:int -> dst:int -> unit) option;
      (** [idx] is the successor index: 0 for jump/taken, 1 for not-taken *)
  on_yieldpoint : (Machine.t -> frame -> Cfg.block_id -> unit) option;
}

val no_hooks : hooks

(** [compose a b] runs [a]'s callback before [b]'s at every hook point. *)
val compose : hooks -> hooks -> hooks

exception Runtime_error of string

(** Call-stack depth at which {!Runtime_error} is raised; shared with
    every alternative execution engine over the same machine. *)
val max_depth : int

(** [call hooks machine name args] invokes method [name].
    @raise Runtime_error on call-stack overflow (depth > 100_000). *)
val call : hooks -> Machine.t -> string -> int array -> int

(** Run the program's main method. *)
val run : hooks -> Machine.t -> int
