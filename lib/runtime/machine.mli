(** Machine state: a loaded program plus the mutable execution context the
    interpreter and the VM layers share.

    Each method has a compiled form ({!cmeth}) holding its CFG, loop
    analysis, yieldpoint placement and per-block virtual-cycle costs.  The
    VM layers mutate the compiled form when they "recompile" a method:
    {!set_speed} models moving between baseline and optimizing-compiler
    code quality, and [edge_extra] carries code-layout penalties assigned
    by the optimizer. *)

type cmeth = {
  meth : Method.t;
  cfg : Cfg.t;
  loops : Loops.t;
  max_stack : int;
  raw_block_cost : int array;  (** per block, at 100% speed *)
  call_target : int array array;
      (** per block, per body position: the dense method index of the
          call's callee, resolved once at compile time; -1 for non-call
          instructions.  Linked programs ({!Program.create}) guarantee
          every callee resolves. *)
  mutable gen : int;
      (** compiled-form generation stamp, unique across all compiled
          forms of a machine's lifetime.  Bumped by {!recompile}
          (a fresh form) and {!set_speed} (code-quality change), so
          execution engines can validate cached generated code and
          call-site inline caches with one integer compare. *)
  mutable speed_percent : int;
      (** cost multiplier in percent: 100 = optimized, larger = slower *)
  mutable block_cost : int array;  (** [raw * speed_percent / 100] *)
  mutable yieldpoint : bool array;
  mutable edge_extra : int array array;
      (** per block, per successor index (0 = taken/jump, 1 = not-taken):
          extra cycles charged when the edge is traversed *)
}

type t = {
  program : Program.t;
  cost : Cost_model.t;
  globals : int array;
  heap : int array;
  prng : Prng.t;
  mutable cycles : int;
  mutable yield_flag : bool;
  mutable next_tick : int;
  mutable tick_pending : bool;
      (** one-shot token a tick driver raises for downstream samplers *)
  mutable depth : int;  (** live call depth *)
  methods : cmeth array;
  method_index : (string, int) Hashtbl.t;
}

(** [create ?cost ?tick_offset ~seed program] loads [program].  Methods
    start at 100% speed with yieldpoints on entry, exit and loop headers
    (none for uninterruptible methods).  The first timer tick fires at
    [tick_offset] (default one period) virtual cycles. *)
val create :
  ?cost:Cost_model.t -> ?tick_offset:int -> seed:int -> Program.t -> t

val cmeth : t -> int -> cmeth

(** Dense index of a method name.
    @raise Not_found for unknown names. *)
val index : t -> string -> int

(** Change a method's code quality; recomputes its block costs and bumps
    the compiled form's generation stamp. *)
val set_speed : t -> int -> percent:int -> unit

(** [recompile t i ?no_yieldpoint meth] installs a new body for method
    [i] (e.g. after inlining): a fresh compiled form at 100% speed with
    default yieldpoints, minus the blocks flagged in [no_yieldpoint]
    (per new-method block id — loop headers copied from uninterruptible
    inlinees carry no yieldpoint, paper §4.3).  Frames already executing
    the old body keep running it, like activations of replaced code in a
    real VM; new invocations use the new body. *)
val recompile : t -> int -> ?no_yieldpoint:bool array -> Method.t -> unit

(** Zero all layout penalties of a method. *)
val clear_edge_extra : t -> int -> unit

val add_cycles : t -> int -> unit

(** Rearm the timer: clear the flag and schedule the next tick one period
    after the current cycle count. *)
val rearm_timer : t -> unit
