type cmeth = {
  meth : Method.t;
  cfg : Cfg.t;
  loops : Loops.t;
  max_stack : int;
  raw_block_cost : int array;
  call_target : int array array;
  mutable gen : int;
  mutable speed_percent : int;
  mutable block_cost : int array;
  mutable yieldpoint : bool array;
  mutable edge_extra : int array array;
}

type t = {
  program : Program.t;
  cost : Cost_model.t;
  globals : int array;
  heap : int array;
  prng : Prng.t;
  mutable cycles : int;
  mutable yield_flag : bool;
  mutable next_tick : int;
  mutable tick_pending : bool;
  mutable depth : int;
  methods : cmeth array;
  method_index : (string, int) Hashtbl.t;
}

let max_stack_of program (m : Method.t) =
  let depths = Verify.block_depths program m in
  let worst = ref 0 in
  Array.iteri
    (fun b (blk : Method.block) ->
      let d = ref depths.(b) in
      worst := max !worst !d;
      Array.iter
        (fun ins ->
          let pops, pushes = Instr.stack_effect ins in
          d := !d - pops + pushes;
          worst := max !worst !d)
        blk.body)
    m.blocks;
  !worst

let default_yieldpoints (m : Method.t) cfg loops =
  let n = Cfg.n_blocks cfg in
  if m.uninterruptible then Array.make n false
  else begin
    let yp = Array.make n false in
    yp.(Cfg.entry cfg) <- true;
    yp.(Cfg.exit_ cfg) <- true;
    List.iter (fun h -> yp.(h) <- true) (Loops.headers loops);
    yp
  end

(* Compiled-form generation stamps.  A stamp is assigned whenever a
   compiled form is (re)built or its code quality changes, so execution
   engines can cache per-method generated code (and call-site inline
   caches) and validate it with a single integer compare. *)
(* Atomic so parallel domains running independent machines never hand
   out duplicate stamps: a stamp's value never leaks into any
   measurement, only its uniqueness matters (a duplicate could falsely
   validate a stale inline cache). *)
let gen_counter = Atomic.make 0
let next_gen () = Atomic.fetch_and_add gen_counter 1 + 1

let compile_method cost program (m : Method.t) =
  let cfg = To_cfg.cfg m in
  let loops = Loops.compute cfg in
  let raw_block_cost =
    Array.map
      (fun (blk : Method.block) ->
        Array.fold_left
          (fun acc ins -> acc + Cost_model.instr_cost cost ins)
          cost.Cost_model.block_dispatch blk.body)
      m.blocks
  in
  (* call sites resolved once per compiled form: -1 marks non-call slots *)
  let call_target =
    Array.map
      (fun (blk : Method.block) ->
        Array.map
          (function
            | Instr.Call (callee, _) -> Program.index program callee
            | _ -> -1)
          blk.body)
      m.blocks
  in
  let n = Array.length m.blocks in
  {
    meth = m;
    cfg;
    loops;
    max_stack = max_stack_of program m;
    raw_block_cost;
    call_target;
    gen = next_gen ();
    speed_percent = 100;
    block_cost = Array.copy raw_block_cost;
    yieldpoint = default_yieldpoints m cfg loops;
    edge_extra = Array.init n (fun _ -> Array.make 2 0);
  }

let create ?(cost = Cost_model.default) ?tick_offset ~seed program =
  let methods =
    Array.map (compile_method cost program) program.Program.methods
  in
  let first_tick =
    match tick_offset with Some t -> t | None -> cost.Cost_model.tick_period
  in
  let method_index = Hashtbl.create 32 in
  Array.iteri
    (fun i (m : Method.t) -> Hashtbl.replace method_index m.name i)
    program.Program.methods;
  {
    program;
    cost;
    globals = Array.make (max 1 program.Program.n_globals) 0;
    heap = Array.make program.Program.heap_size 0;
    prng = Prng.create ~seed;
    cycles = 0;
    yield_flag = false;
    next_tick = first_tick;
    tick_pending = false;
    depth = 0;
    methods;
    method_index;
  }

let index t name =
  match Hashtbl.find_opt t.method_index name with
  | Some i -> i
  | None -> raise Not_found

let cmeth t i = t.methods.(i)

let recompile t i ?(no_yieldpoint = [||]) meth =
  let cm = compile_method t.cost t.program meth in
  Array.iteri
    (fun b suppress -> if suppress then cm.yieldpoint.(b) <- false)
    no_yieldpoint;
  t.methods.(i) <- cm

let set_speed t i ~percent =
  let cm = t.methods.(i) in
  cm.speed_percent <- percent;
  cm.block_cost <-
    Array.map (fun c -> max 1 (c * percent / 100)) cm.raw_block_cost;
  cm.gen <- next_gen ()

let clear_edge_extra t i =
  let cm = t.methods.(i) in
  Array.iter (fun a -> Array.fill a 0 (Array.length a) 0) cm.edge_extra

let add_cycles t c = t.cycles <- t.cycles + c

let rearm_timer t =
  t.yield_flag <- false;
  t.next_tick <- t.cycles + t.cost.Cost_model.tick_period
