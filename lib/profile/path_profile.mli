(** Path profiles: per-method frequency tables keyed by Ball-Larus path
    number.

    Each entry memoizes, once known, the path's constituent CFG edges and
    its length in branches ([b_p] of the branch-flow metric, paper §6.3).
    PEP's sampler fills the memo the first time a path is sampled and
    reuses it afterwards (paper §4.3). *)

type entry = {
  path_id : int;
  mutable count : int;
  mutable edges : Cfg.edge list option;  (** memoized expansion *)
  mutable n_branches : int;
      (** branch edges on the path; -1 until the expansion is memoized *)
}

(** Per-method path profile. *)
type t

val create : unit -> t
val incr : t -> int -> unit
val add : t -> int -> int -> unit
val find : t -> int -> entry option

(** Entry, created with count 0 if absent — ignoring any capacity bound
    (ground-truth profilers are never bounded).  Bounded writers use
    {!entry_opt}. *)
val entry : t -> int -> entry

(** Like {!entry}, but respects the table's {!capacity}: [None] means
    the update was dropped and counted in {!overflow}. *)
val entry_opt : t -> int -> entry option

(** {2 Bounded tables (degrade-don't-crash, paper §3.2)}

    A capacity bounds the {e distinct paths} stored, modelling the
    fixed-size profile tables of a production VM.  {!add}/{!incr}/
    {!parse_line} on a full table drop updates that would create a new
    entry (counted in {!overflow}); updates to present entries always
    land.  Default: unbounded. *)

val set_capacity : t -> int option -> unit
val capacity : t -> int option

(** Updates dropped because the table was full; {!clear} resets it. *)
val overflow : t -> int

val entries : t -> entry list

(** Total path executions recorded. *)
val total : t -> int

val n_distinct : t -> int
val is_empty : t -> bool
val clear : t -> unit
val iter : (entry -> unit) -> t -> unit

(** Per-program profile, one slot per method. *)
type table = t array

val create_table : n_methods:int -> table
val table_total : table -> int

(** Total dropped updates across the table. *)
val table_overflow : table -> int

(** One line per path: ["<method-index> <path-id> <count>"] (memoized
    expansions are not serialized; they are re-derivable from the
    P-DAG).  [of_lines] is the inverse.
    @raise Failure on malformed input. *)
val to_lines : table -> string list

val of_lines : n_methods:int -> string list -> table

(** Parse one serialized line into an existing table (blank lines are
    ignored).  The structured-error twin of {!of_lines}, for callers
    that need per-line diagnostics instead of exceptions. *)
val parse_line : table -> string -> (unit, string) result

val pp : t Fmt.t
