type counter = { mutable taken : int; mutable not_taken : int }

(* [capacity], when set, bounds the number of distinct branches counted
   (the fixed-size table of paper §3.2): an update that would create a
   counter past the bound is dropped and counted in [overflow].  Updates
   to already-present branches always land. *)
type t = {
  tbl : (Cfg.branch_id, counter) Hashtbl.t;
  mutable capacity : int option;
  mutable overflow : int;
}

let create () : t = { tbl = Hashtbl.create 16; capacity = None; overflow = 0 }

let set_capacity t capacity = t.capacity <- capacity
let capacity t = t.capacity
let overflow t = t.overflow

let counter_for t branch =
  match Hashtbl.find_opt t.tbl branch with
  | Some c -> Some c
  | None -> (
      match t.capacity with
      | Some cap when Hashtbl.length t.tbl >= cap ->
          t.overflow <- t.overflow + 1;
          None
      | Some _ | None ->
          let c = { taken = 0; not_taken = 0 } in
          Hashtbl.replace t.tbl branch c;
          Some c)

let add t branch ~taken n =
  match counter_for t branch with
  | Some c ->
      if taken then c.taken <- c.taken + n else c.not_taken <- c.not_taken + n
  | None -> ()

let incr t branch ~taken = add t branch ~taken 1
let counter t branch = Hashtbl.find_opt t.tbl branch

let freq t branch =
  match Hashtbl.find_opt t.tbl branch with
  | Some c -> c.taken + c.not_taken
  | None -> 0

let bias t branch =
  match Hashtbl.find_opt t.tbl branch with
  | Some c when c.taken + c.not_taken > 0 ->
      Some (float_of_int c.taken /. float_of_int (c.taken + c.not_taken))
  | Some _ | None -> None

let branch_ids t =
  List.sort compare (Hashtbl.fold (fun b _ acc -> b :: acc) t.tbl [])

let entries t =
  List.filter_map
    (fun b ->
      match Hashtbl.find_opt t.tbl b with
      | Some c -> Some (b, (c.taken, c.not_taken))
      | None -> None)
    (branch_ids t)

let total t = Hashtbl.fold (fun _ c acc -> acc + c.taken + c.not_taken) t.tbl 0
let is_empty t = total t = 0

let copy t =
  let dst = { (create ()) with capacity = t.capacity; overflow = t.overflow } in
  Hashtbl.iter
    (fun b (c : counter) ->
      Hashtbl.replace dst.tbl b { taken = c.taken; not_taken = c.not_taken })
    t.tbl;
  dst

let clear t =
  Hashtbl.reset t.tbl;
  t.overflow <- 0

let flip t =
  let dst = create () in
  Hashtbl.iter
    (fun b (c : counter) ->
      Hashtbl.replace dst.tbl b { taken = c.not_taken; not_taken = c.taken })
    t.tbl;
  dst

type table = t array

let create_table ~n_methods = Array.init n_methods (fun _ -> create ())
let copy_table tbl = Array.map copy tbl
let flip_table tbl = Array.map flip tbl
let table_total tbl = Array.fold_left (fun acc t -> acc + total t) 0 tbl
let table_overflow tbl = Array.fold_left (fun acc t -> acc + overflow t) 0 tbl

let to_lines tbl =
  let lines = ref [] in
  Array.iteri
    (fun mi t ->
      List.iter
        (fun b ->
          match Hashtbl.find_opt t.tbl b with
          | Some c ->
              lines := Fmt.str "%d %d %d %d" mi b c.taken c.not_taken :: !lines
          | None -> ())
        (branch_ids t))
    tbl;
  List.rev !lines

let parse_line tbl line =
  if String.trim line = "" then Ok ()
  else
    let n_methods = Array.length tbl in
    match String.split_on_char ' ' (String.trim line) with
    | [ mi; b; tk; nt ] -> (
        match
          ( int_of_string_opt mi,
            int_of_string_opt b,
            int_of_string_opt tk,
            int_of_string_opt nt )
        with
        | Some mi, Some b, Some tk, Some nt
          when mi >= 0 && mi < n_methods && tk >= 0 && nt >= 0 ->
            add tbl.(mi) b ~taken:true tk;
            add tbl.(mi) b ~taken:false nt;
            Ok ()
        | _ ->
            Error
              "expected a method index in range and non-negative counters")
    | _ -> Error "expected \"<method> <branch> <taken> <not-taken>\""

let of_lines ~n_methods lines =
  let tbl = create_table ~n_methods in
  List.iter
    (fun line ->
      match parse_line tbl line with
      | Ok () -> ()
      | Error _ -> failwith ("Edge_profile.of_lines: bad line: " ^ line))
    lines;
  tbl

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun b ->
      match Hashtbl.find_opt t.tbl b with
      | Some c -> Fmt.pf ppf "br%d: taken=%d not-taken=%d@," b c.taken c.not_taken
      | None -> ())
    (branch_ids t);
  Fmt.pf ppf "@]"
