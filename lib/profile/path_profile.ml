type entry = {
  path_id : int;
  mutable count : int;
  mutable edges : Cfg.edge list option;
  mutable n_branches : int;
}

(* [capacity], when set, bounds the number of distinct paths the table
   stores (the fixed-size table of paper §3.2): an update that would
   create an entry past the bound is dropped and counted in [overflow].
   Updates to already-present paths always land. *)
type t = {
  tbl : (int, entry) Hashtbl.t;
  mutable capacity : int option;
  mutable overflow : int;
}

let create () : t = { tbl = Hashtbl.create 32; capacity = None; overflow = 0 }

let set_capacity t capacity = t.capacity <- capacity
let capacity t = t.capacity
let overflow t = t.overflow

let entry_opt t path_id =
  match Hashtbl.find_opt t.tbl path_id with
  | Some e -> Some e
  | None -> (
      match t.capacity with
      | Some cap when Hashtbl.length t.tbl >= cap ->
          t.overflow <- t.overflow + 1;
          None
      | Some _ | None ->
          let e = { path_id; count = 0; edges = None; n_branches = -1 } in
          Hashtbl.replace t.tbl path_id e;
          Some e)

let entry t path_id =
  match Hashtbl.find_opt t.tbl path_id with
  | Some e -> e
  | None ->
      let e = { path_id; count = 0; edges = None; n_branches = -1 } in
      Hashtbl.replace t.tbl path_id e;
      e

let add t path_id n =
  match entry_opt t path_id with
  | Some e -> e.count <- e.count + n
  | None -> ()

let incr t path_id = add t path_id 1
let find t path_id = Hashtbl.find_opt t.tbl path_id

let entries t =
  List.sort
    (fun a b -> compare a.path_id b.path_id)
    (Hashtbl.fold (fun _ e acc -> e :: acc) t.tbl [])

let total t = Hashtbl.fold (fun _ e acc -> acc + e.count) t.tbl 0
let n_distinct t = Hashtbl.length t.tbl
let is_empty t = Hashtbl.length t.tbl = 0

let clear t =
  Hashtbl.reset t.tbl;
  t.overflow <- 0

let iter f t = Hashtbl.iter (fun _ e -> f e) t.tbl

type table = t array

let create_table ~n_methods = Array.init n_methods (fun _ -> create ())
let table_total tbl = Array.fold_left (fun acc t -> acc + total t) 0 tbl
let table_overflow tbl = Array.fold_left (fun acc t -> acc + overflow t) 0 tbl

let to_lines tbl =
  let lines = ref [] in
  Array.iteri
    (fun mi t ->
      List.iter
        (fun e ->
          if e.count > 0 then
            lines := Fmt.str "%d %d %d" mi e.path_id e.count :: !lines)
        (entries t))
    tbl;
  List.rev !lines

let parse_line tbl line =
  let bad () =
    Error "expected \"<method-index> <path-id> <count>\" with count > 0"
  in
  if String.trim line = "" then Ok ()
  else
    match String.split_on_char ' ' (String.trim line) with
    | [ mi; pid; count ] -> (
        match
          (int_of_string_opt mi, int_of_string_opt pid, int_of_string_opt count)
        with
        | Some mi, Some pid, Some count
          when mi >= 0 && mi < Array.length tbl && pid >= 0 && count > 0 ->
            add tbl.(mi) pid count;
            Ok ()
        | _ -> bad ())
    | _ -> bad ()

let of_lines ~n_methods lines =
  let tbl = create_table ~n_methods in
  List.iter
    (fun line ->
      match parse_line tbl line with
      | Ok () -> ()
      | Error _ -> failwith ("Path_profile.of_lines: bad line: " ^ line))
    lines;
  tbl

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun e -> Fmt.pf ppf "path %d: count=%d branches=%d@," e.path_id e.count e.n_branches)
    (entries t);
  Fmt.pf ppf "@]"
