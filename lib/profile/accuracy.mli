(** Profile accuracy metrics from the paper's evaluation.

    - {!wall_path_accuracy} (paper §6.3): Wall weight-matching with the
      branch-flow metric.  A path's flow is its frequency times its length
      in branches; actual hot paths are those above a flow threshold
      (default 0.125% of total flow); accuracy is the fraction of actual
      hot-path flow found among the top-[|H_actual|] estimated paths.

    - {!relative_overlap} (paper §6.4): per-branch taken-bias agreement,
      weighted by actual branch frequency.  Branches the estimate never
      saw count with a neutral 0.5 bias.

    - {!absolute_overlap} (paper §6.4 "absolute overlap"): agreement of
      normalized edge frequencies across the whole program,
      [sum (min w_actual w_estimated)] over (branch, arm) pairs. *)

(** [wall_path_accuracy ~n_branches ~actual ~estimated] where
    [n_branches ~meth ~path_id] resolves a path's length in branches
    (use the profiler's P-DAG reconstruction).  Returns a value in
    [0, 1]; 1.0 when there are no hot paths. *)
val wall_path_accuracy :
  ?threshold:float ->
  n_branches:(meth:int -> path_id:int -> int) ->
  actual:Path_profile.table ->
  estimated:Path_profile.table ->
  unit ->
  float

val relative_overlap :
  actual:Edge_profile.table -> estimated:Edge_profile.table -> float

val absolute_overlap :
  actual:Edge_profile.table -> estimated:Edge_profile.table -> float
