(* A path is identified program-wide by (method index, path id). *)

(* Entries are visited in sorted path-id order so the float sums
   downstream accumulate in a fixed order: a profile table rebuilt from
   its serialized form (different hash insertion order) must yield
   bit-identical accuracy figures. *)
let flows ~n_branches (table : Path_profile.table) =
  let acc = ref [] in
  Array.iteri
    (fun mi prof ->
      List.iter
        (fun (e : Path_profile.entry) ->
          if e.Path_profile.count > 0 then begin
            let nb =
              if e.n_branches >= 0 then e.n_branches
              else n_branches ~meth:mi ~path_id:e.path_id
            in
            let flow = float_of_int e.count *. float_of_int nb in
            acc := ((mi, e.path_id), flow) :: !acc
          end)
        (Path_profile.entries prof))
    table;
  !acc

(* Deterministic hot-first order: flow descending, then path identity. *)
let by_flow_desc ((ka, fa) : (int * int) * float) ((kb, fb) : (int * int) * float) =
  match compare fb fa with 0 -> compare ka kb | c -> c

let wall_path_accuracy ?(threshold = 0.00125) ~n_branches ~actual ~estimated ()
    =
  let actual_flows = flows ~n_branches actual in
  let total = List.fold_left (fun acc (_, f) -> acc +. f) 0. actual_flows in
  let hot_actual =
    List.filter (fun (_, f) -> f > threshold *. total) actual_flows
  in
  if hot_actual = [] || total <= 0. then 1.0
  else begin
    let est_sorted = List.sort by_flow_desc (flows ~n_branches estimated) in
    let n_hot = List.length hot_actual in
    let est_hot = List.filteri (fun i _ -> i < n_hot) est_sorted in
    let est_set = Hashtbl.create (2 * n_hot) in
    List.iter (fun (k, _) -> Hashtbl.replace est_set k ()) est_hot;
    let matched, hot_flow =
      List.fold_left
        (fun (m, h) (k, f) ->
          ((if Hashtbl.mem est_set k then m +. f else m), h +. f))
        (0., 0.) hot_actual
    in
    matched /. hot_flow
  end

let relative_overlap ~(actual : Edge_profile.table)
    ~(estimated : Edge_profile.table) =
  let weighted = ref 0. and weight = ref 0. in
  Array.iteri
    (fun mi prof ->
      List.iter
        (fun b ->
          let freq = Edge_profile.freq prof b in
          if freq > 0 then begin
            match Edge_profile.bias prof b with
            | None -> ()
            | Some bias_a ->
                let bias_e =
                  Option.value ~default:0.5
                    (Edge_profile.bias estimated.(mi) b)
                in
                let acc_b = 1. -. Float.abs (bias_a -. bias_e) in
                weighted := !weighted +. (float_of_int freq *. acc_b);
                weight := !weight +. float_of_int freq
          end)
        (Edge_profile.branch_ids prof))
    actual;
  if !weight <= 0. then 1.0 else !weighted /. !weight

let normalized_weights (table : Edge_profile.table) =
  let total = float_of_int (Edge_profile.table_total table) in
  let weights = Hashtbl.create 256 in
  if total > 0. then
    Array.iteri
      (fun mi prof ->
        List.iter
          (fun b ->
            match Edge_profile.counter prof b with
            | None -> ()
            | Some c ->
                if c.Edge_profile.taken > 0 then
                  Hashtbl.replace weights (mi, b, true)
                    (float_of_int c.taken /. total);
                if c.not_taken > 0 then
                  Hashtbl.replace weights (mi, b, false)
                    (float_of_int c.not_taken /. total))
          (Edge_profile.branch_ids prof))
      table;
  weights

let absolute_overlap ~(actual : Edge_profile.table)
    ~(estimated : Edge_profile.table) =
  if Edge_profile.table_total actual = 0 then 1.0
  else begin
    let wa = normalized_weights actual and we = normalized_weights estimated in
    Hashtbl.fold
      (fun key w acc ->
        match Hashtbl.find_opt we key with
        | Some w' -> acc +. Float.min w w'
        | None -> acc)
      wa 0.
  end
