(** Edge profiles: taken/not-taken counters per bytecode branch.

    This is the profile shape Jikes RVM's baseline compiler collects and
    its optimizing compiler consumes (paper §4.2): one pair of counters
    per bytecode-level conditional branch.  A per-program profile is a
    {!table} indexed by dense method index. *)

type counter = { mutable taken : int; mutable not_taken : int }

(** Per-method edge profile. *)
type t

val create : unit -> t
val incr : t -> Cfg.branch_id -> taken:bool -> unit
val add : t -> Cfg.branch_id -> taken:bool -> int -> unit
val counter : t -> Cfg.branch_id -> counter option

(** {2 Bounded tables (degrade-don't-crash, paper §3.2)}

    A capacity bounds the {e distinct branches} counted, modelling the
    fixed-size profile tables of a production VM.  {!add}/{!incr}/
    {!parse_line} on a full table drop updates that would create a new
    counter (counted in {!overflow}); updates to present counters
    always land.  Default: unbounded.  {!copy} preserves capacity and
    overflow; {!clear} resets the overflow count. *)

val set_capacity : t -> int option -> unit
val capacity : t -> int option

(** Updates dropped because the table was full. *)
val overflow : t -> int

(** Executions of the branch (taken + not-taken); 0 when never seen. *)
val freq : t -> Cfg.branch_id -> int

(** Fraction of executions that took the branch; [None] when never seen. *)
val bias : t -> Cfg.branch_id -> float option

val branch_ids : t -> Cfg.branch_id list

(** [(branch, (taken, not_taken))] for every branch seen, sorted by
    branch id — the deterministic bulk accessor the fleet collector
    diffs consecutive snapshots with. *)
val entries : t -> (Cfg.branch_id * (int * int)) list

val total : t -> int
val is_empty : t -> bool
val copy : t -> t
val clear : t -> unit

(** Swap every taken/not-taken pair (the "flipped" profile of paper §6.5). *)
val flip : t -> t

(** Per-program profile, one slot per method. *)
type table = t array

val create_table : n_methods:int -> table
val copy_table : table -> table
val flip_table : table -> table
val table_total : table -> int

(** Total dropped updates across the table. *)
val table_overflow : table -> int

(** One line per branch: ["<method-index> <branch> <taken> <not-taken>"].
    [of_lines] is its inverse.
    @raise Failure on malformed input. *)
val to_lines : table -> string list

val of_lines : n_methods:int -> string list -> table

(** Parse one serialized line into [tbl] (blank lines are ignored);
    [Error reason] leaves [tbl] unchanged.  Lets callers that track
    their own line numbers (e.g. [Advice.of_lines]) report structured
    errors instead of the [Failure] that {!of_lines} raises. *)
val parse_line : table -> string -> (unit, string) result

val pp : t Fmt.t
