(* Versioned codecs for persisted run payloads.

   The store frames every entry through a [codec] record: v2 is the
   compact binary format (varint-packed profile rows, raw MD5 trailer),
   v1 the legacy line-oriented text format kept readable so caches
   written before the binary store migrate transparently.  Both embed
   the composite identity key and an MD5 digest over the body, so a
   damaged entry fails the digest check, a stale one fails the key
   comparison, and a future-versioned one is reported as such — always
   a structured [Dcg.parse_error], never a silent miss or a crash. *)

type payload = {
  iter1 : int;
  iter2 : int;
  compile : int;
  checksum : int;
  n_samples : int;
  pep_paths : string list;
  pep_edges : string list;
  ppaths : string list;
  pedges : string list;
}

let err ?(line = 0) ?(text = "") file reason =
  { Dcg.file = Some file; line; text = String.trim text; reason }

(* --------------------------- binary wire --------------------------- *)

module Bin = struct
  type writer = Buffer.t

  let writer () = Buffer.create 512
  let byte w b = Buffer.add_char w (Char.chr (b land 0xff))
  let raw w s = Buffer.add_string w s

  (* zigzag so small magnitudes of either sign stay short, then
     unsigned LEB128 over the 63-bit pattern ([lsr] is logical, so the
     loop terminates for negative intermediates too) *)
  let int w n =
    let rec put u =
      if u land lnot 0x7f = 0 then byte w u
      else begin
        byte w (u land 0x7f lor 0x80);
        put (u lsr 7)
      end
    in
    put ((n lsl 1) lxor (n asr (Sys.int_size - 1)))

  let str w s =
    int w (String.length s);
    Buffer.add_string w s

  let contents_with_digest w =
    let body = Buffer.contents w in
    body ^ Digest.string body

  exception Malformed of string

  type reader = { s : string; limit : int; mutable p : int }

  let reader ?(pos = 0) ?limit s =
    let limit = match limit with Some l -> l | None -> String.length s in
    if pos < 0 || limit > String.length s || pos > limit then
      raise (Malformed "reader bounds out of range");
    { s; limit; p = pos }

  let rbyte r =
    if r.p >= r.limit then raise (Malformed "unexpected end of input");
    let b = Char.code r.s.[r.p] in
    r.p <- r.p + 1;
    b

  let rint r =
    let rec go shift acc =
      if shift > 56 then raise (Malformed "varint too long");
      let b = rbyte r in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    let u = go 0 0 in
    (u lsr 1) lxor ~-(u land 1)

  let rstr r =
    let len = rint r in
    if len < 0 || len > r.limit - r.p then
      raise (Malformed "string length out of range");
    let s = String.sub r.s r.p len in
    r.p <- r.p + len;
    s

  let pos r = r.p
  let at_end r = r.p = r.limit

  let check_digest s =
    let n = String.length s in
    n >= 16
    && String.equal (Digest.string (String.sub s 0 (n - 16))) (String.sub s (n - 16) 16)
end

type codec = {
  version : int;
  name : string;
  encode : key:string -> payload -> string;
  decode :
    file:string -> key:string -> string -> (payload, Dcg.parse_error) result;
}

exception Fail of Dcg.parse_error

let check_key ~file ~expected stored =
  (* legacy entries carried the store version inside the key itself *)
  let stored =
    match String.index_opt stored '|' with
    | Some i
      when String.length stored > 6
           && String.sub stored 0 7 = "store-v"
           && int_of_string_opt (String.sub stored 7 (i - 7)) <> None ->
        String.sub stored (i + 1) (String.length stored - i - 1)
    | _ -> stored
  in
  if stored <> expected then
    raise
      (Fail
         (err ~line:2 file
            (Fmt.str
               "stale cache entry: key mismatch (expected %S, found %S) — \
                program, cost model or format changed since it was written"
               expected stored)))

(* ------------------------- v1: legacy text ------------------------- *)

let text_magic = "pepsim-run-cache"

let digest_lines lines =
  Digest.to_hex (Digest.string (String.concat "\n" lines))

let v1_encode ~key p =
  let section name lines = Fmt.str "%s %d" name (List.length lines) :: lines in
  let body =
    (text_magic ^ " v2")
    :: ("key store-v2|" ^ key)
    :: Fmt.str "meas %d %d %d %d" p.iter1 p.iter2 p.compile p.checksum
    :: Fmt.str "nsamples %d" p.n_samples
    :: List.concat
         [
           section "pep.paths" p.pep_paths;
           section "pep.edges" p.pep_edges;
           section "ppaths" p.ppaths;
           section "pedges" p.pedges;
         ]
  in
  String.concat "\n" (body @ [ "digest " ^ digest_lines body ]) ^ "\n"

let v1_decode ~file ~key contents =
  try
    let lines = String.split_on_char '\n' contents in
    (* a well-formed file ends with "...\n": drop the final empty slot *)
    let lines =
      match List.rev lines with "" :: rev -> List.rev rev | _ -> lines
    in
    let arr = Array.of_list lines in
    let n = Array.length arr in
    let fail ?line ?text reason = raise (Fail (err ?line ?text file reason)) in
    if n < 2 then fail "truncated cache entry";
    (match String.split_on_char ' ' arr.(0) with
    | [ m; v ] when m = text_magic ->
        if v <> "v1" && v <> "v2" then
          fail ~line:1 ~text:arr.(0)
            (Fmt.str "unsupported cache version %s (want v2)" v)
    | _ -> fail ~line:1 ~text:arr.(0) "not a pepsim run-cache file");
    (match String.index_opt arr.(n - 1) ' ' with
    | Some 6 when String.sub arr.(n - 1) 0 6 = "digest" ->
        let stored = String.sub arr.(n - 1) 7 (String.length arr.(n - 1) - 7) in
        let body = Array.to_list (Array.sub arr 0 (n - 1)) in
        if digest_lines body <> stored then
          fail ~line:n ~text:arr.(n - 1)
            "corrupt cache entry (content digest mismatch)"
    | _ ->
        fail ~line:n ~text:arr.(n - 1)
          "truncated cache entry (missing digest trailer)");
    (* cursor over the verified body *)
    let pos = ref 1 in
    let next what =
      if !pos >= n - 1 then
        fail ~line:n (Fmt.str "truncated cache entry (missing %s)" what);
      let l = arr.(!pos) in
      incr pos;
      l
    in
    let field name l =
      let prefix = name ^ " " in
      if String.starts_with ~prefix l then
        String.sub l (String.length prefix)
          (String.length l - String.length prefix)
      else fail ~line:!pos ~text:l (Fmt.str "expected a %S line" name)
    in
    let int_field name l =
      match int_of_string_opt (field name l) with
      | Some v -> v
      | None -> fail ~line:!pos ~text:l (Fmt.str "bad %s value" name)
    in
    check_key ~file ~expected:key (field "key" (next "key"));
    let meas_line = next "meas" in
    let iter1, iter2, compile, checksum =
      match
        List.map int_of_string_opt
          (String.split_on_char ' ' (field "meas" meas_line))
      with
      | [ Some a; Some b; Some c; Some d ] -> (a, b, c, d)
      | _ -> fail ~line:!pos ~text:meas_line "bad meas line"
    in
    let n_samples = int_field "nsamples" (next "nsamples") in
    let section name =
      let k = int_field name (next name) in
      if k < 0 then fail (Fmt.str "negative %s section length" name);
      List.init k (fun _ -> next (name ^ " line"))
    in
    let pep_paths = section "pep.paths" in
    let pep_edges = section "pep.edges" in
    let ppaths = section "ppaths" in
    let pedges = section "pedges" in
    if !pos <> n - 1 then
      fail ~line:(!pos + 1) ~text:arr.(!pos) "trailing garbage in cache entry";
    Ok
      {
        iter1;
        iter2;
        compile;
        checksum;
        n_samples;
        pep_paths;
        pep_edges;
        ppaths;
        pedges;
      }
  with Fail e -> Error e

let v1_text = { version = 1; name = "text"; encode = v1_encode; decode = v1_decode }

(* ------------------------ v2: compact binary ----------------------- *)

let bin_magic = "PEPRUN"
let bin_version = 2

(* A profile line whose fields are all integers in canonical rendering
   is stored as a varint row; anything else (and any line whose
   re-rendering would differ, e.g. "007" or double spaces) falls back to
   a raw string so encode∘decode is the identity on arbitrary input. *)
let pack_line l =
  match String.split_on_char ' ' l with
  | [] -> None
  | toks -> (
      match
        List.map
          (fun t -> match int_of_string_opt t with
            | Some v when t <> "" && string_of_int v = t -> Some v
            | _ -> None)
          toks
      with
      | ints when List.for_all Option.is_some ints ->
          Some (List.map Option.get ints)
      | _ -> None)

let v2_encode ~key p =
  let w = Bin.writer () in
  Buffer.add_string w bin_magic;
  Bin.byte w bin_version;
  Bin.str w key;
  Bin.int w p.iter1;
  Bin.int w p.iter2;
  Bin.int w p.compile;
  Bin.int w p.checksum;
  Bin.int w p.n_samples;
  let section lines =
    let packed =
      let rows = List.map pack_line lines in
      if List.for_all Option.is_some rows then
        Some (List.map Option.get rows)
      else None
    in
    match packed with
    | Some rows ->
        Bin.byte w 0;
        Bin.int w (List.length rows);
        List.iter
          (fun row ->
            Bin.int w (List.length row);
            List.iter (Bin.int w) row)
          rows
    | None ->
        Bin.byte w 1;
        Bin.int w (List.length lines);
        List.iter (Bin.str w) lines
  in
  section p.pep_paths;
  section p.pep_edges;
  section p.ppaths;
  section p.pedges;
  Bin.contents_with_digest w

let v2_decode ~file ~key contents =
  let fail reason = raise (Fail (err file reason)) in
  try
    let n = String.length contents in
    if n < String.length bin_magic + 1 then fail "truncated cache entry";
    if String.sub contents 0 (String.length bin_magic) <> bin_magic then
      fail "not a pepsim run-cache file";
    let v = Char.code contents.[String.length bin_magic] in
    if v <> bin_version then
      fail (Fmt.str "unsupported cache version v%d (want v%d)" v bin_version);
    (* digest first: any flipped or missing byte is rejected before the
       body is interpreted at all *)
    if n < String.length bin_magic + 1 + 16 then
      fail "truncated cache entry (missing digest trailer)";
    if not (Bin.check_digest contents) then
      fail "corrupt cache entry (content digest mismatch)";
    let r =
      Bin.reader ~pos:(String.length bin_magic + 1) ~limit:(n - 16) contents
    in
    check_key ~file ~expected:key (Bin.rstr r);
    let iter1 = Bin.rint r in
    let iter2 = Bin.rint r in
    let compile = Bin.rint r in
    let checksum = Bin.rint r in
    let n_samples = Bin.rint r in
    let section name =
      let tag = Bin.rbyte r in
      let k = Bin.rint r in
      if k < 0 then fail (Fmt.str "negative %s section length" name);
      match tag with
      | 0 ->
          List.init k (fun _ ->
              let arity = Bin.rint r in
              if arity < 0 then fail (Fmt.str "bad %s row arity" name);
              String.concat " "
                (List.init arity (fun _ -> string_of_int (Bin.rint r))))
      | 1 -> List.init k (fun _ -> Bin.rstr r)
      | t -> fail (Fmt.str "unknown %s section tag %d" name t)
    in
    let pep_paths = section "pep.paths" in
    let pep_edges = section "pep.edges" in
    let ppaths = section "ppaths" in
    let pedges = section "pedges" in
    if not (Bin.at_end r) then fail "trailing garbage in cache entry";
    Ok
      {
        iter1;
        iter2;
        compile;
        checksum;
        n_samples;
        pep_paths;
        pep_edges;
        ppaths;
        pedges;
      }
  with
  | Fail e -> Error e
  | Bin.Malformed m -> Error (err file ("truncated cache entry (" ^ m ^ ")"))

let v2_binary =
  { version = 2; name = "binary"; encode = v2_encode; decode = v2_decode }

let current = v2_binary

let sniff contents =
  if String.starts_with ~prefix:text_magic contents then `Codec v1_text
  else if
    String.starts_with ~prefix:bin_magic contents
    && String.length contents > String.length bin_magic
  then begin
    let v = Char.code contents.[String.length bin_magic] in
    if v = bin_version then `Codec v2_binary else `Unknown_version v
  end
  else `Not_a_store_file
