type stats = {
  memory_hits : int;
  disk_hits : int;
  executed : int;
  store_errors : int;
  migrated : int;
}

type t = {
  env : Exp_harness.env;
  base_config : Exp_harness.config;
  runs : (string, Exp_harness.run) Hashtbl.t;
  mutable perfect_edge_table : Edge_profile.table option;
  cache_dir : string option;
  identity : string;
      (* store version + workload + size + seed + program and cost-model
         digests: everything a persisted run's validity depends on *)
  mutable memory_hits : int;
  mutable disk_hits : int;
  mutable executed : int;
  mutable store_errors : int;
  mutable migrated : int;
  mutable diags : Dcg.parse_error list;  (* oldest first *)
  m_hit : Metrics.counter option;
  m_miss : Metrics.counter option;
}

let create ?(config = Exp_harness.default) ?cache_dir env =
  (* surface an unusable cache directory once, at open; the cache still
     works (every run recomputes) with the failure on record *)
  let open_diags =
    match cache_dir with
    | None -> []
    | Some dir -> (
        match Exp_store.prepare_dir dir with Ok () -> [] | Error e -> [ e ])
  in
  let digest v = Digest.to_hex (Digest.string (Marshal.to_string v [])) in
  (* the codec version is no longer part of the identity: the codec is
     sniffed per file, so a v1 text entry with a matching key migrates
     instead of reading as stale (v1 readers stripped their historical
     "store-v<N>|" key prefix symmetrically — see Exp_codec.check_key) *)
  let identity =
    Fmt.str "workload=%s|size=%d|seed=%d|prog=%s|cost=%s"
      env.Exp_harness.workload.Workload.name env.Exp_harness.size
      env.Exp_harness.seed
      (digest env.Exp_harness.program)
      (digest Cost_model.default)
  in
  let counter name =
    Option.map
      (fun tel -> Metrics.counter (Telemetry.metrics tel) name)
      config.Exp_harness.telemetry
  in
  {
    env;
    base_config = config;
    runs = Hashtbl.create 16;
    perfect_edge_table = None;
    cache_dir;
    identity;
    memory_hits = 0;
    disk_hits = 0;
    executed = 0;
    store_errors = List.length open_diags;
    migrated = 0;
    diags = open_diags;
    m_hit = counter "exp.cache_hit";
    m_miss = counter "exp.cache_miss";
  }

let env t = t.env
let config t = t.base_config
let cache_dir t = t.cache_dir

let stats t =
  {
    memory_hits = t.memory_hits;
    disk_hits = t.disk_hits;
    executed = t.executed;
    store_errors = t.store_errors;
    migrated = t.migrated;
  }

let diagnostics t = t.diags
let mincr = function Some c -> Metrics.incr c | None -> ()

(* A [From_pep] optimizing compilation consults the live sampler state
   at each method's compile time, which a rebuild (precompile, no
   execution) cannot reproduce — so those runs are never persisted.
   Neither are runs under an execution-perturbing fault plan: a rebuild
   precompiles in method-index order, re-ordering the fault-decision
   stream relative to the live run's lazy compilation. *)
let persistable (config : Exp_harness.config) =
  (not (Fault_plan.perturbs_execution config.Exp_harness.faults))
  &&
  match config.Exp_harness.opt_profile with
  | Driver.From_pep -> false
  | Driver.From_baseline | Driver.Fixed _ -> true

(* Measurements are bit-identical with and without a telemetry sink (a
   tested invariant), so the persisted identity strips it: traced and
   untraced sweeps share disk entries. *)
let file_and_key t config =
  match t.cache_dir with
  | Some dir when persistable config ->
      let ckey =
        Exp_harness.config_key { config with Exp_harness.telemetry = None }
      in
      let file_key =
        Fmt.str "%s|%d|%d|%s" t.env.Exp_harness.workload.Workload.name
          t.env.Exp_harness.size t.env.Exp_harness.seed ckey
      in
      Some (Exp_store.filename ~dir file_key, t.identity ^ "|cfg=" ^ ckey)
  | Some _ | None -> None

let store_file t config = Option.map fst (file_and_key t config)
let store_slot = file_and_key

let payload_of_run (r : Exp_harness.run) =
  {
    Exp_store.iter1 = r.Exp_harness.meas.iter1;
    iter2 = r.Exp_harness.meas.iter2;
    compile = r.Exp_harness.meas.compile;
    checksum = r.Exp_harness.meas.checksum;
    n_samples =
      (match r.Exp_harness.pep with Some p -> Pep.n_samples p | None -> 0);
    pep_paths =
      (match r.Exp_harness.pep with
      | Some p -> Path_profile.to_lines p.Pep.paths
      | None -> []);
    pep_edges =
      (match r.Exp_harness.pep with
      | Some p -> Edge_profile.to_lines p.Pep.edges
      | None -> []);
    ppaths =
      (match r.Exp_harness.ppaths with
      | Some p -> Path_profile.to_lines p.Profiler.table
      | None -> []);
    pedges =
      (match r.Exp_harness.pedges with
      | Some p -> Edge_profile.to_lines p.Profiler.etable
      | None -> []);
  }

type outcome = {
  o_run : Exp_harness.run;
  o_from_disk : bool;
  o_migrated : bool;
  o_diags : Dcg.parse_error list;
}

(* The worker half of a run: everything except touching the memo table
   and counters.  Reads only immutable cache state (env, identity,
   cache_dir), so concurrent [compute]s on one cache from several
   domains are safe; the only side effect is an atomic store write. *)
let compute t config =
  let faults = Exp_harness.injector_of config in
  let slot = file_and_key t config in
  let execute diags =
    let r = Exp_harness.replay ?faults t.env config in
    let diags =
      match slot with
      | None -> diags
      | Some (file, key) -> (
          match Exp_store.save ~file ~key (payload_of_run r) with
          | Ok () -> diags
          | Error e -> diags @ [ e ])
    in
    { o_run = r; o_from_disk = false; o_migrated = false; o_diags = diags }
  in
  match slot with
  | None -> execute []
  | Some (file, key) -> (
      match Exp_store.load_versioned ~file ~key with
      | Ok None -> execute []
      | Ok (Some (payload, codec_version)) -> (
          match faults with
          | Some inj when Fault_injector.fire_corrupt inj ~what:"store" ->
              (* the plan says this load observed a corrupted entry:
                 quarantine it and recompute, exactly as a real digest
                 mismatch would *)
              Fault_injector.note_quarantine inj ~what:"store"
                ~reason:"fault plan corrupted this cache entry";
              execute
                [
                  {
                    Dcg.file = Some file;
                    line = 0;
                    text = "";
                    reason = "cache entry quarantined by fault plan; recomputed";
                  };
                ]
          | Some _ | None ->
          match Exp_harness.rebuild ?faults t.env config payload with
          | Ok r ->
              (* a valid entry written by an older codec is re-encoded
                 in place with the current one (atomic rename, so a
                 concurrent reader sees either version, both valid) *)
              let migrated, diags =
                if codec_version = Exp_store.version then (false, [])
                else
                  match Exp_store.save ~file ~key payload with
                  | Ok () -> (true, [])
                  | Error e -> (false, [ e ])
              in
              { o_run = r; o_from_disk = true; o_migrated = migrated; o_diags = diags }
          | Error reason ->
              (* shape passed the digest but not the configuration:
                 recompute and overwrite, reporting why *)
              execute
                [
                  {
                    Dcg.file = Some file;
                    line = 0;
                    text = "";
                    reason = "cache entry rejected: " ^ reason;
                  };
                ])
      | Error e -> execute [ e ])

(* The main-domain half: memoize and account.  Callers that shard
   [compute]s across domains must install results in a deterministic
   order (the pool installs in sorted-key order). *)
let install t config o =
  Hashtbl.replace t.runs (Exp_harness.config_key config) o.o_run;
  if o.o_from_disk then begin
    t.disk_hits <- t.disk_hits + 1;
    mincr t.m_hit
  end
  else begin
    t.executed <- t.executed + 1;
    mincr t.m_miss
  end;
  if o.o_migrated then t.migrated <- t.migrated + 1;
  t.store_errors <- t.store_errors + List.length o.o_diags;
  t.diags <- t.diags @ o.o_diags;
  o.o_run

let find_run t config =
  Hashtbl.find_opt t.runs (Exp_harness.config_key config)

(* Memoize by the configuration itself: Exp_harness.config_key covers
   every field (fixed opt-profile tables by digest), so two different
   configurations can never alias to the same cached run. *)
let run t config =
  match find_run t config with
  | Some r ->
      t.memory_hits <- t.memory_hits + 1;
      mincr t.m_hit;
      r
  | None -> install t config (compute t config)

let with_profiling t profiling = { t.base_config with Exp_harness.profiling }
let base t = run t (with_profiling t Exp_harness.Base)

let pep t ~samples ~stride =
  run t
    (with_profiling t
       (Exp_harness.Pep_profiled
          {
            sampling = Sampling.pep ~samples ~stride;
            zero = `Hottest;
            numbering = `Smart;
          }))

let instr_only t =
  run t
    (with_profiling t
       (Exp_harness.Pep_profiled
          { sampling = Sampling.never; zero = `Hottest; numbering = `Smart }))

let perfect_path t = run t (with_profiling t Exp_harness.Perfect_path)

let perfect_edges_of_paths t =
  match t.perfect_edge_table with
  | Some table -> table
  | None ->
      let p = Option.get (perfect_path t).Exp_harness.ppaths in
      let table =
        Profiler.edges_of_paths
          ~n_methods:(Program.n_methods t.env.program)
          p.Profiler.plans p.Profiler.table
      in
      t.perfect_edge_table <- Some table;
      table

let all_runs t =
  List.sort compare (Hashtbl.fold (fun key r acc -> (key, r) :: acc) t.runs [])
