type t = {
  env : Exp_harness.env;
  runs : (string, Exp_harness.run) Hashtbl.t;
  mutable perfect_edge_table : Edge_profile.table option;
}

let create env = { env; runs = Hashtbl.create 16; perfect_edge_table = None }
let env t = t.env

let run t ?opt_profile ?inline ?unroll ~key profiling =
  match Hashtbl.find_opt t.runs key with
  | Some r -> r
  | None ->
      let r = Exp_harness.replay ?opt_profile ?inline ?unroll t.env profiling in
      Hashtbl.replace t.runs key r;
      r

let base t = run t ~key:"base" Exp_harness.Base

let pep t ~samples ~stride =
  run t
    ~key:(Fmt.str "pep-%d-%d" samples stride)
    (Exp_harness.Pep_profiled
       {
         sampling = Sampling.pep ~samples ~stride;
         zero = `Hottest;
         numbering = `Smart;
       })

let instr_only t =
  run t ~key:"instr-only"
    (Exp_harness.Pep_profiled
       { sampling = Sampling.never; zero = `Hottest; numbering = `Smart })

let perfect_path t = run t ~key:"perfect-path" Exp_harness.Perfect_path

let perfect_edges_of_paths t =
  match t.perfect_edge_table with
  | Some table -> table
  | None ->
      let p = Option.get (perfect_path t).Exp_harness.ppaths in
      let table =
        Profiler.edges_of_paths
          ~n_methods:(Program.n_methods t.env.program)
          p.Profiler.plans p.Profiler.table
      in
      t.perfect_edge_table <- Some table;
      table

let all_runs t =
  List.sort compare (Hashtbl.fold (fun key r acc -> (key, r) :: acc) t.runs [])
