type t = {
  env : Exp_harness.env;
  base_config : Exp_harness.config;
  runs : (string, Exp_harness.run) Hashtbl.t;
  mutable perfect_edge_table : Edge_profile.table option;
}

let create ?(config = Exp_harness.default) env =
  { env; base_config = config; runs = Hashtbl.create 16; perfect_edge_table = None }

let env t = t.env
let config t = t.base_config

(* Memoize by the configuration itself: Exp_harness.config_key covers
   every field (fixed opt-profile tables by digest), so two different
   configurations can never alias to the same cached run. *)
let run t config =
  let key = Exp_harness.config_key config in
  match Hashtbl.find_opt t.runs key with
  | Some r -> r
  | None ->
      let r = Exp_harness.replay t.env config in
      Hashtbl.replace t.runs key r;
      r

let with_profiling t profiling = { t.base_config with Exp_harness.profiling }
let base t = run t (with_profiling t Exp_harness.Base)

let pep t ~samples ~stride =
  run t
    (with_profiling t
       (Exp_harness.Pep_profiled
          {
            sampling = Sampling.pep ~samples ~stride;
            zero = `Hottest;
            numbering = `Smart;
          }))

let instr_only t =
  run t
    (with_profiling t
       (Exp_harness.Pep_profiled
          { sampling = Sampling.never; zero = `Hottest; numbering = `Smart }))

let perfect_path t = run t (with_profiling t Exp_harness.Perfect_path)

let perfect_edges_of_paths t =
  match t.perfect_edge_table with
  | Some table -> table
  | None ->
      let p = Option.get (perfect_path t).Exp_harness.ppaths in
      let table =
        Profiler.edges_of_paths
          ~n_methods:(Program.n_methods t.env.program)
          p.Profiler.plans p.Profiler.table
      in
      t.perfect_edge_table <- Some table;
      table

let all_runs t =
  List.sort compare (Hashtbl.fold (fun key r acc -> (key, r) :: acc) t.runs [])
