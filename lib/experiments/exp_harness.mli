(** Experiment harness: prepares benchmarks and executes the paper's two
    methodologies (paper §5).

    An {!env} fixes a workload, its compiled program and the advice file
    produced by a preparatory adaptive run.  {!replay} then performs
    deterministic replay-compilation runs under a chosen profiling
    configuration: two iterations of the application, the first carrying
    compilation (paper Fig. 7), the second execution only (Fig. 6).
    Because time is virtual and the workload PRNG is seeded, the
    application's dynamic behaviour — and its checksum — is identical
    across profiling configurations; only the profiling work differs. *)

type env = {
  workload : Workload.t;
  program : Program.t;
  advice : Advice.t;
  size : int;
  seed : int;
}

type measurement = {
  iter1 : int;  (** first-iteration cycles, compilation included *)
  iter2 : int;  (** second-iteration cycles, application only *)
  compile : int;  (** cycles spent compiling *)
  checksum : int;
}

type profiling =
  | Base  (** no profiling beyond the always-present tick driver *)
  | Pep_profiled of {
      sampling : Sampling.config;
      zero : [ `Hottest | `Coldest ];
      numbering : [ `Smart | `Ball_larus ];
    }
  | Perfect_path  (** §5.1 instrumentation-based path profiling *)
  | Perfect_edge  (** §5.1 instrumentation-based edge profiling *)
  | Classic_blpp  (** §2.2 Ball-Larus with counts on back edges *)
  | Instr_back_edge
      (** r-maintenance only under back-edge truncation — the §3.2
          path-ending ablation *)

(** The paper's standard configuration: [PEP(64,17)], hottest-arm-zero
    smart numbering. *)
val pep_default : profiling

(** One run configuration — the single record every harness entry point
    takes (update {!default} with the fields you care about).  Distinct
    configurations never alias: {!config_key} derives a deterministic
    identifying string from every field, which is also what
    [Exp_cache] memoizes by. *)
type config = {
  profiling : profiling;
  opt_profile : Driver.opt_profile_source;
      (** what drives the optimizing compiler (default: the advice's
          one-time profile) *)
  inline : bool;  (** enable the optimizer's inliner *)
  unroll : bool;  (** enable the optimizer's loop unroller *)
  deep : bool;
      (** run the driver with {!Driver.options.deep_verify}: dataflow
          lints and unsafe-op justification on every compiled body, on
          top of the always-on translation validation.  Part of
          {!config_key} (["+deep"]); [pepsim check --deep] flips it on *)
  engine : Driver.engine;
      (** [`Threaded] by default — pass [`Oracle] to run the reference
          interpreter, as the differential tests do for both *)
  tiers : Codegen.tiers;
      (** engine-v2 tier policy ({!Codegen.default_tiers} by default):
          superinstruction fusion and the PIC ladder.  Part of
          {!config_key} via {!Codegen.tier_name} (["+v2-flat"] etc.);
          tiers change host-side speed only, never measurements *)
  telemetry : Telemetry.t option;
      (** host-side metrics/trace sink, threaded through the driver,
          engine and PEP; measurements are bit-identical with or
          without it *)
  faults : Fault_plan.t;
      (** deterministic fault plan ({!Fault_plan.empty} by default).  A
          non-empty plan builds one fresh {!Fault_injector} per run and
          threads it through the driver and PEP; the run degrades per
          the plan's policies but never crashes, and its checksum is
          unchanged (faults perturb profiling and compilation, never
          application semantics).  The plan is part of {!config_key};
          [Exp_cache] never persists faulted runs. *)
}

(** [Base] profiling, one-time opt profile, no transforms, threaded
    engine, no telemetry. *)
val default : config

(** Deterministic human-readable key identifying a configuration, e.g.
    ["PEP(64,17)-hot-smart+opt=pep+oracle"] or
    ["base+v2-flat"].  Fixed opt-profile tables are digested into the
    key, so e.g. a continuous and a flipped table cannot alias. *)
val config_key : config -> string

(** Compile the workload and produce advice from a two-iteration adaptive
    warmup run.  Only [config.engine] and [config.telemetry] matter
    here; the advice must be identical under either engine. *)
val make_env : ?size:int -> ?config:config -> seed:int -> Workload.t -> env

(** Envs for the whole suite; [scale] multiplies every workload's default
    size (use a small scale in tests). *)
val suite_envs : ?scale:float -> ?config:config -> seed:int -> unit -> env list

type run = {
  meas : measurement;
  pep : Pep.t option;
  ppaths : Profiler.path_profiler option;
  pedges : Profiler.edge_profiler option;
  driver : Driver.t;
  faults : Fault_injector.t option;
      (** the run's injector when [config.faults] was non-empty; read
          {!Fault_injector.counts} for its degradation accounting *)
  checks : Pep_check.diagnostic list;
      (** {!Driver.checks} plus a {!Pep_check} lint of every profile the
          run collected (PEP's sampled edge and path profiles, the
          perfect profilers' tables, the one-time baseline profile); any
          [Error] means a profile is internally inconsistent *)
}

(** Lint PEP's collected profiles (pass field ["profile@pep"]): the
    sampled edge profile shape-checked per method, each path profile
    checked against the numbering of the plan that produced its ids and
    bounded by the sampler's taken-sample count.  [expected_samples]
    overrides the sampler's live count as that bound — for runs rebuilt
    from disk, whose fresh sampler has taken nothing. *)
val lint_pep : ?expected_samples:int -> Machine.t -> Pep.t -> Pep_check.diagnostic list

(** The full lint a {!replay} stores in [run.checks]; exposed for runs
    built directly against a {!Driver.t}. *)
val lint_run : ?expected_samples:int -> run -> Pep_check.diagnostic list

(** One fresh {!Fault_injector} for [config.faults] ([None] when the
    plan is empty), wired to [config.telemetry].  {!replay}/{!rebuild}
    call it when no injector is passed; callers that fire host-side
    faults of their own (e.g. [Exp_cache]'s store corruption) build the
    injector here and pass it down so all accounting lands in one
    place. *)
val injector_of : config -> Fault_injector.t option

(** One replay experiment under [config] (two deterministic iterations;
    see the module comment).  With a non-empty fault plan, corrupt
    advice/DCG inputs are quarantined and recomputed from the warmup
    before the driver is built. *)
val replay : ?faults:Fault_injector.t -> env -> config -> run

(** Rebuild the {!run} that [replay env config] would produce, from a
    persisted payload, without executing the application: the driver is
    {!Driver.precompile}d (replay compilation is independent of
    execution order, so compiled bodies, plans and transforms are
    identical to a live run's), the profile tables restored from their
    serialized lines, and [checks] re-linted from scratch — raw counts
    are the only thing taken from disk.  [Error reason] means the
    payload does not fit the configuration; callers fall back to
    executing.  Not supported (by construction never persisted) for
    [From_pep] opt-profiles, whose compilation consults live sampler
    state. *)
val rebuild :
  ?faults:Fault_injector.t -> env -> config -> Exp_store.payload -> (run, string) result

(** Replay with body transformations (default config: inlining only),
    PEP(64,17), and a perfect path profiler over the same transformed
    code (built after {!Driver.precompile}); the two profiles share
    numbering and are directly comparable.  [config.profiling] is
    ignored — the methodology fixes PEP(64,17). *)
val replay_transformed_with_truth :
  ?config:config -> env -> Driver.t * Pep.t * Profiler.path_profiler

(** Smart numbering keyed to the advice's one-time profile — the
    numbering every replay configuration shares, so path ids from
    different runs are comparable. *)
val advice_number : env -> int -> Dag.t -> Numbering.t

(** Null out plans of methods the advice leaves at baseline, so a custom
    profiler covers the same method set PEP does. *)
val mask_plans : env -> Profile_hooks.plans -> unit

(** Total cycles (two iterations, compilation included) of one adaptive
    trial; [trial] perturbs the timer phase, modelling the paper's
    run-to-run variation.  A [Pep_profiled] config has PEP collect
    profiles and drive optimization (paper Fig. 11); any other
    [config.profiling] runs the plain adaptive system.
    [config.inline]/[unroll]/[opt_profile] are fixed by the methodology
    and ignored. *)
val adaptive_total : ?config:config -> trial:int -> env -> int

(** @raise Failure if the runs' checksums disagree (a profiling
    configuration perturbed application behaviour — a harness bug). *)
val check_consistent : run list -> unit
