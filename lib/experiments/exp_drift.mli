(** Accuracy over time: windowed PEP accuracy against ground truth
    under drifting traffic.

    The paper evaluates accuracy once, at end of run — which cannot
    distinguish a {e continuous} profiler from a one-shot one.  This
    module drives a single replay instance through [windows] collection
    windows (one application iteration each, fleet-style compressed
    timer), advancing the workload's phase global per a traffic
    [schedule] between windows, and scores every window twice:

    - {e fresh} accuracy — this window's PEP path/edge delta against
      this window's ground-truth delta (both collected concurrently:
      a masked perfect path profiler rides the same driver, edge truth
      is derived from it per paper §6.4);
    - {e stale} accuracy — the {e previous} window's PEP delta against
      this window's truth, i.e. what a consumer acting on the latest
      published profile would experience.

    At a phase shift the stale score collapses (the published profile
    describes paths that no longer run) and then recovers within a
    window once PEP has re-sampled the new regime; [recovered] reports
    whether that recovery reached [threshold] after every shift, which
    is what the regression suite pins.  Everything is deterministic:
    same spec, seed and schedule give a byte-identical series. *)

type point = {
  window : int;
  phase : int;  (** phase in effect while this window ran *)
  samples : int;  (** PEP samples taken this window *)
  path_acc : float;  (** fresh: Wall path accuracy, this window *)
  edge_acc : float;  (** fresh: relative edge overlap, this window *)
  stale_path_acc : float;  (** previous window's profile vs this truth *)
  stale_edge_acc : float;
}

type series = {
  workload : string;
  windows : int;
  threshold : float;
  schedule : int list;  (** phase per window *)
  shifts : int list;  (** windows whose phase differs from their predecessor *)
  points : point list;
  recovered : bool;
      (** after every shift there is a later window, before the next
          shift, whose stale path {e and} edge accuracy are both at or
          above [threshold] *)
}

(** The stated recovery threshold (0.80). *)
val default_threshold : float

(** Run the windowed series.  [schedule] gives the phase for each
    window (see {!Wgen.schedule}); its length fixes the window count.
    [tick_shrink] compresses the sampling timer like the fleet
    collector (default 8); [size]/[seed] default to the workload's
    default size and 42. *)
val run :
  ?samples:int ->
  ?stride:int ->
  ?tick_shrink:int ->
  ?threshold:float ->
  ?size:int ->
  ?seed:int ->
  schedule:int list ->
  Workload.t ->
  series

(** [run] over a generated spec with its canonical {!Wgen.schedule}.
    [windows] defaults to [max 6 (2 * phases)] so every shift is
    followed by at least one same-phase recovery window. *)
val run_spec :
  ?windows:int ->
  ?samples:int ->
  ?stride:int ->
  ?tick_shrink:int ->
  ?threshold:float ->
  ?size:int ->
  ?seed:int ->
  Wgen.spec ->
  series

val to_json : series -> string

(** The series as a printable figure: one row per window, fresh and
    stale scores as columns. *)
val figure : series -> Exp_figures.figure
