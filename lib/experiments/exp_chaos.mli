(** Chaos sweep: every workload under curated fault plans, under both
    engines, with the graceful-degradation invariants checked on each
    run.

    A chaos run is an ordinary {!Exp_harness.replay} under a PEP
    configuration carrying a non-empty {!Fault_plan}.  For each
    (workload, plan, engine) the sweep asserts:

    - the run completes — degradations never escalate to crashes;
    - the application checksum equals the healthy run's (faults perturb
      profiling and compilation, never program semantics);
    - {!Fault_injector.accounted}: every injected fault is matched by a
      recorded [degrade.*] response;
    - the profile tables' own overflow counts agree with the injector's
      [degrade.path_overflow]/[degrade.edge_overflow];
    - plans that do not {!Fault_plan.perturbs_execution} ([noop],
      [corrupt]-only) leave every measurement bit-identical to the
      healthy run;
    - the run's lint diagnostics carry no errors;
    - accuracy loss against the healthy run's PEP edge profile
      (1 - {!Accuracy.absolute_overlap}) stays within the plan's
      declared bound;
    - both engines produce identical measurements and identical fault
      accounting (the decision streams are engine-independent). *)

type case = {
  label : string;
  plan : Fault_plan.t;
  max_loss : float;
      (** inclusive bound on [1 - absolute_overlap] vs the healthy
          run's PEP edge profile.  Destructive plans (e.g.
          [compile-fail=1], which keeps every method at baseline so PEP
          never instruments anything) legitimately reach 1.0; the bound
          documents the expected blast radius per plan rather than one
          global number. *)
}

(** The standing plans the chaos CI job sweeps: [noop], tight and roomy
    table bounds, flaky and dead optimizing compilers, an overrunning
    sample handler, fully corrupt inputs, and a kitchen-sink mix. *)
val curated : case list

(** A fleet-level plan ({!Fault_plan.perturbs_fleet} sites) swept by
    {!Fleet_chaos} in the fleet library.  [converges] declares whether
    the faulted store must heal to the healthy store's exact bytes:
    true for every recoverable plan, false only for plans designed to
    lose data (which must account every loss in the degraded log
    instead). *)
type fleet_case = { flabel : string; fplan : Fault_plan.t; converges : bool }

val fleet_case : string -> string -> bool -> fleet_case

(** The standing fleet plans: [noop], seeded crash/torn-write/
    straggler/segment-corruption plans, the data-losing [doomed]
    (certain crash, zero restarts) and a [fleet-sink] mix. *)
val fleet_curated : fleet_case list

type report = {
  workload : string;
  label : string;
  engine : Driver.engine;
  meas : Exp_harness.measurement;
  counts : Fault_injector.counts;
  loss : float;
  max_loss : float;
  violations : string list;  (** empty means every invariant held *)
}

(** Replay [case] on [env] and check the single-run invariants against
    [healthy] (the same env/engine replayed under the empty plan). *)
val run_case :
  engine:Driver.engine ->
  healthy:Exp_harness.run ->
  Exp_harness.env ->
  case ->
  report

(** The full sweep: every env x case x both engines (healthy baselines
    computed once per env), sharded across [jobs] worker domains with
    deterministic report order.  Cross-engine agreement violations are
    attached to the [`Threaded] report of the pair. *)
val sweep :
  ?jobs:int -> ?cases:case list -> Exp_harness.env list -> report list

val passed : report list -> bool

(** One line per report (two columns of fault/degrade accounting), plus
    one indented line per violation. *)
val pp_report : report Fmt.t
