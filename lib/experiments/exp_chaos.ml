type case = { label : string; plan : Fault_plan.t; max_loss : float }

let case label spec max_loss =
  { label; plan = Fault_plan.parse_exn spec; max_loss }

(* Per-plan loss bounds document the expected blast radius:
   [compile-fail=1] pins every method at baseline, so PEP (installed at
   opt-compile time) never collects anything and the loss is total by
   design; [noop] and [corrupt]-only plans must lose nothing at all. *)
let curated =
  [
    case "noop" "noop" 0.0;
    case "tables-tight" "seed=7,path-cap=2,edge-cap=2" 1.0;
    case "tables-roomy" "seed=7,path-cap=64,edge-cap=64" 0.75;
    case "opt-flaky" "seed=3,compile-fail=0.3,compile-retries=4,compile-backoff=20000" 1.0;
    case "opt-dead" "seed=1,compile-fail=1" 1.0;
    case "sampler-flaky" "seed=5,sample-overrun=0.5" 1.0;
    case "rotten-inputs" "seed=9,corrupt=1" 0.0;
    case "kitchen-sink"
      "seed=13,path-cap=8,edge-cap=8,compile-fail=0.2,sample-overrun=0.2,corrupt=0.5"
      1.0;
  ]

(* Fleet-level plans live here beside the execution plans so one place
   documents the whole curated chaos surface, but the sweep that runs
   them is Fleet_chaos (the collector sits above this library). *)
type fleet_case = {
  flabel : string;
  fplan : Fault_plan.t;
  converges : bool;
      (* must the faulted store heal to the healthy store's bytes? *)
}

let fleet_case flabel spec converges =
  { flabel; fplan = Fault_plan.parse_exn spec; converges }

(* [doomed] is the one plan allowed to lose data: crash at every window
   with zero restarts loses every instance, so its windows land in the
   degraded log instead of the store.  Everything else must converge —
   crashes replay, torn writes heal on reopen, flips are quarantined
   and re-collected, stragglers only delay. *)
let fleet_curated =
  [
    fleet_case "noop" "noop" true;
    fleet_case "crashy" "seed=11,crash=0.3,crash-restarts=10" true;
    fleet_case "torn-writes" "seed=23,torn-write=0.5,seg-retries=3" true;
    fleet_case "stragglers" "seed=31,straggler=0.6,straggler-timeout=3" true;
    fleet_case "rotten-segments" "seed=47,seg-corrupt=0.4,seg-retries=3" true;
    fleet_case "doomed" "seed=3,crash=1,crash-restarts=0" false;
    fleet_case "fleet-sink"
      "seed=13,crash=0.2,crash-restarts=10,torn-write=0.3,straggler=0.3,\
       straggler-timeout=2,seg-corrupt=0.2,seg-retries=4"
      true;
  ]

type report = {
  workload : string;
  label : string;
  engine : Driver.engine;
  meas : Exp_harness.measurement;
  counts : Fault_injector.counts;
  loss : float;
  max_loss : float;
  violations : string list;
}

let zero_counts =
  {
    Fault_injector.compile_fail = 0;
    sample_overrun = 0;
    store_corrupt = 0;
    backoffs = 0;
    gaveups = 0;
    samples_dropped = 0;
    path_overflow = 0;
    edge_overflow = 0;
    quarantined = 0;
    instance_crash = 0;
    torn_write = 0;
    straggler = 0;
    seg_corrupt = 0;
    restarts = 0;
    lost_instances = 0;
    writes_recovered = 0;
    catchups = 0;
    seg_quarantined = 0;
  }

let zero_meas =
  { Exp_harness.iter1 = 0; iter2 = 0; compile = 0; checksum = 0 }

let config_for engine plan =
  {
    Exp_harness.default with
    Exp_harness.profiling = Exp_harness.pep_default;
    engine;
    faults = plan;
  }

let engine_name = function `Oracle -> "oracle" | `Threaded -> "threaded"

let loss_vs (healthy : Exp_harness.run) (faulted : Exp_harness.run) =
  match (healthy.Exp_harness.pep, faulted.Exp_harness.pep) with
  | Some h, Some f ->
      1.
      -. Accuracy.absolute_overlap ~actual:h.Pep.edges ~estimated:f.Pep.edges
  | _ -> 0.

let run_case ~engine ~healthy env (c : case) =
  let workload = env.Exp_harness.workload.Workload.name in
  let base =
    {
      workload;
      label = c.label;
      engine;
      meas = zero_meas;
      counts = zero_counts;
      loss = 0.;
      max_loss = c.max_loss;
      violations = [];
    }
  in
  match Exp_harness.replay env (config_for engine c.plan) with
  | exception exn ->
      (* the one thing a degradation policy must never do *)
      { base with violations = [ "crashed: " ^ Printexc.to_string exn ] }
  | r ->
      let violations = ref [] in
      let note fmt = Fmt.kstr (fun s -> violations := !violations @ [ s ]) fmt in
      let counts =
        match r.Exp_harness.faults with
        | Some inj -> Fault_injector.counts inj
        | None -> zero_counts
      in
      let hm = healthy.Exp_harness.meas and fm = r.Exp_harness.meas in
      if fm.Exp_harness.checksum <> hm.Exp_harness.checksum then
        note "checksum changed under faults: %d -> %d" hm.Exp_harness.checksum
          fm.Exp_harness.checksum;
      (match Fault_injector.accounted counts with
      | Ok () -> ()
      | Error m -> note "unaccounted degradation: %s" m);
      (match r.Exp_harness.pep with
      | Some p ->
          let po = Path_profile.table_overflow p.Pep.paths in
          let eo = Edge_profile.table_overflow p.Pep.edges in
          if po <> counts.Fault_injector.path_overflow then
            note "path-table overflow %d but degrade.path_overflow %d" po
              counts.Fault_injector.path_overflow;
          if eo <> counts.Fault_injector.edge_overflow then
            note "edge-table overflow %d but degrade.edge_overflow %d" eo
              counts.Fault_injector.edge_overflow
      | None -> ());
      if not (Fault_plan.perturbs_execution c.plan) then
        if
          fm.Exp_harness.iter1 <> hm.Exp_harness.iter1
          || fm.Exp_harness.iter2 <> hm.Exp_harness.iter2
          || fm.Exp_harness.compile <> hm.Exp_harness.compile
        then
          note
            "non-perturbing plan drifted: iter1 %d->%d iter2 %d->%d compile \
             %d->%d"
            hm.Exp_harness.iter1 fm.Exp_harness.iter1 hm.Exp_harness.iter2
            fm.Exp_harness.iter2 hm.Exp_harness.compile fm.Exp_harness.compile;
      if Pep_check.has_errors r.Exp_harness.checks then
        note "lint errors: %a" Pep_check.pp_report
          (Pep_check.errors r.Exp_harness.checks);
      let loss = loss_vs healthy r in
      if loss > c.max_loss +. 1e-9 then
        note "accuracy loss %.4f exceeds the plan's bound %.4f" loss c.max_loss;
      { base with meas = fm; counts; loss; violations = !violations }

(* Engines must agree on everything a fault can influence: the decision
   streams are ordinal-indexed, so identical event orders (a tested
   engine invariant) imply identical faults. *)
let cross_check (ro : report) (rt : report) =
  let v = ref rt.violations in
  let note fmt = Fmt.kstr (fun s -> v := !v @ [ s ]) fmt in
  if ro.violations = [] && rt.violations = [] then begin
    if ro.meas <> rt.meas then
      note "engines diverged under faults: oracle (%d,%d,%d) threaded (%d,%d,%d)"
        ro.meas.Exp_harness.iter1 ro.meas.Exp_harness.iter2
        ro.meas.Exp_harness.compile rt.meas.Exp_harness.iter1
        rt.meas.Exp_harness.iter2 rt.meas.Exp_harness.compile;
    if ro.counts <> rt.counts then
      note "engines disagree on fault accounting (%s)" rt.label
  end;
  { rt with violations = !v }

let sweep ?jobs ?(cases = curated) envs =
  List.concat
    (Exp_pool.map ?jobs
       (fun _tel env ->
         let healthy engine =
           Exp_harness.replay env (config_for engine Fault_plan.empty)
         in
         let ho = healthy `Oracle and ht = healthy `Threaded in
         List.concat_map
           (fun c ->
             let ro = run_case ~engine:`Oracle ~healthy:ho env c in
             let rt = run_case ~engine:`Threaded ~healthy:ht env c in
             [ ro; cross_check ro rt ])
           cases)
       envs)

let passed reports = List.for_all (fun r -> r.violations = []) reports

let pp_report ppf r =
  Fmt.pf ppf "@[<v>%-10s %-13s %-8s %s loss=%.3f  fail/over/corrupt=%d/%d/%d \
              backoff/gaveup/dropped/overflow/quar=%d/%d/%d/%d/%d"
    r.workload r.label (engine_name r.engine)
    (if r.violations = [] then "ok  " else "FAIL")
    r.loss r.counts.Fault_injector.compile_fail
    r.counts.Fault_injector.sample_overrun r.counts.Fault_injector.store_corrupt
    r.counts.Fault_injector.backoffs r.counts.Fault_injector.gaveups
    r.counts.Fault_injector.samples_dropped
    (r.counts.Fault_injector.path_overflow
   + r.counts.Fault_injector.edge_overflow)
    r.counts.Fault_injector.quarantined;
  List.iter (fun v -> Fmt.pf ppf "@,    !! %s" v) r.violations;
  Fmt.pf ppf "@]"
