let table ~header rows =
  let all = header :: rows in
  let n_cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make n_cols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun c cell -> widths.(c) <- max widths.(c) (String.length cell))
        row)
    all;
  let print_row row =
    List.iteri
      (fun c cell ->
        if c > 0 then print_string "  ";
        let pad = widths.(c) - String.length cell in
        (* left-align the first column, right-align numbers *)
        if c = 0 then print_string (cell ^ String.make pad ' ')
        else print_string (String.make pad ' ' ^ cell))
      row;
    print_newline ()
  in
  print_row header;
  print_row
    (List.init (List.length header) (fun c ->
         String.make widths.(c) '-'));
  List.iter print_row rows

let section title =
  Printf.printf "\n=== %s ===\n" title

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.
  | xs ->
      exp
        (List.fold_left (fun acc x -> acc +. log (Float.max x 1e-12)) 0. xs
        /. float_of_int (List.length xs))

let median = function
  | [] -> 0.
  | xs ->
      let sorted = List.sort compare xs in
      let n = List.length sorted in
      let nth = List.nth sorted in
      if n mod 2 = 1 then nth (n / 2)
      else (nth ((n / 2) - 1) +. nth (n / 2)) /. 2.

let pct x = Printf.sprintf "%+.2f%%" x
let overhead ~base x = 100. *. ((float_of_int x /. float_of_int base) -. 1.)
