type env = {
  workload : Workload.t;
  program : Program.t;
  advice : Advice.t;
  size : int;
  seed : int;
}

type measurement = { iter1 : int; iter2 : int; compile : int; checksum : int }

type profiling =
  | Base
  | Pep_profiled of {
      sampling : Sampling.config;
      zero : [ `Hottest | `Coldest ];
      numbering : [ `Smart | `Ball_larus ];
    }
  | Perfect_path
  | Perfect_edge
  | Classic_blpp
  | Instr_back_edge

let pep_default =
  Pep_profiled
    {
      sampling = Sampling.pep ~samples:64 ~stride:17;
      zero = `Hottest;
      numbering = `Smart;
    }

type config = {
  profiling : profiling;
  opt_profile : Driver.opt_profile_source;
  inline : bool;
  unroll : bool;
  deep : bool;
  engine : Driver.engine;
  tiers : Codegen.tiers;
  telemetry : Telemetry.t option;
  faults : Fault_plan.t;
}

let default =
  {
    profiling = Base;
    opt_profile = Driver.From_baseline;
    inline = false;
    unroll = false;
    deep = false;
    engine = `Threaded;
    tiers = Codegen.default_tiers;
    telemetry = None;
    faults = Fault_plan.empty;
  }

(* One fresh injector per run: decision-stream ordinals and degradation
   counts are per-run state, never shared across runs. *)
let injector_of config =
  if Fault_plan.is_empty config.faults then None
  else Some (Fault_injector.create ?telemetry:config.telemetry config.faults)

let profiling_key = function
  | Base -> "base"
  | Pep_profiled { sampling; zero; numbering } ->
      Fmt.str "%s-%s-%s" (Sampling.name sampling)
        (match zero with `Hottest -> "hot" | `Coldest -> "cold")
        (match numbering with `Smart -> "smart" | `Ball_larus -> "bl")
  | Perfect_path -> "perfect-path"
  | Perfect_edge -> "perfect-edge"
  | Classic_blpp -> "classic-blpp"
  | Instr_back_edge -> "instr-back-edge"

let config_key c =
  let buf = Buffer.create 32 in
  Buffer.add_string buf (profiling_key c.profiling);
  (match c.opt_profile with
  | Driver.From_baseline -> ()
  | Driver.From_pep -> Buffer.add_string buf "+opt=pep"
  | Driver.Fixed table ->
      (* distinct fixed tables (e.g. continuous vs flipped) must not
         alias, so the table's content is part of the key *)
      let digest =
        Digest.to_hex
          (Digest.string (String.concat "\n" (Edge_profile.to_lines table)))
      in
      Buffer.add_string buf ("+opt=fixed:" ^ String.sub digest 0 8));
  if c.inline then Buffer.add_string buf "+inline";
  if c.unroll then Buffer.add_string buf "+unroll";
  if c.deep then Buffer.add_string buf "+deep";
  (match c.engine with
  | `Oracle -> Buffer.add_string buf "+oracle"
  | `Threaded -> Buffer.add_string buf ("+" ^ Codegen.tier_name c.tiers));
  (match c.telemetry with
  | Some _ -> Buffer.add_string buf "+tel"
  | None -> ());
  if not (Fault_plan.is_empty c.faults) then
    Buffer.add_string buf ("+faults=" ^ Fault_plan.key c.faults);
  Buffer.contents buf

let begin_run config name =
  match config.telemetry with
  | None -> ()
  | Some tel -> Telemetry.begin_run tel ~name

let make_env ?size ?(config = default) ~seed workload =
  let size = Option.value ~default:workload.Workload.default_size size in
  let program = Workload.program ~size workload in
  Verify.program program;
  let st = Machine.create ~seed program in
  begin_run config (Fmt.str "warmup %s" workload.Workload.name);
  let driver =
    Driver.create
      {
        Driver.default_options with
        engine = config.engine;
        tiers = config.tiers;
        telemetry = config.telemetry;
      }
      st
  in
  ignore (Driver.run driver);
  ignore (Driver.run driver);
  { workload; program; advice = Driver.advice driver; size; seed }

let suite_envs ?(scale = 1.0) ?config ~seed () =
  List.map
    (fun (w : Workload.t) ->
      let size =
        max 1 (int_of_float (float_of_int w.default_size *. scale))
      in
      make_env ~size ?config ~seed w)
    Suite.all

type run = {
  meas : measurement;
  pep : Pep.t option;
  ppaths : Profiler.path_profiler option;
  pedges : Profiler.edge_profiler option;
  driver : Driver.t;
  faults : Fault_injector.t option;
  checks : Pep_check.diagnostic list;
}

(* Lint every profile PEP collected: the sampled edge profile (flow holds
   only approximately, so [exact:false]) and each method's path profile
   against the numbering of the plan that produced its ids.
   [expected_samples] overrides the sampler's live taken-count as the
   path-total bound — a run rebuilt from disk has a fresh sampler, so
   the count persisted alongside the profile is the bound to check. *)
let lint_pep ?expected_samples st (p : Pep.t) =
  let acc = ref [] in
  let add ds = acc := !acc @ Pep_check.with_pass "profile@pep" ds in
  let expected_total =
    match expected_samples with Some n -> n | None -> Pep.n_samples p
  in
  Array.iteri
    (fun midx ep ->
      if not (Edge_profile.is_empty ep) then
        add
          (Pep_check.lint_edge_profile ~exact:false
             (Machine.cmeth st midx).Machine.cfg ep))
    p.Pep.edges;
  Array.iteri
    (fun midx pp ->
      match p.Pep.plans.(midx) with
      | Some plan when not (Path_profile.is_empty pp) ->
          add
            (Pep_check.lint_path_profile ~expected_total
               plan.Instrument.numbering pp)
      | Some _ | None -> ())
    p.Pep.paths;
  !acc

let lint_run ?expected_samples (r : run) =
  let st = Driver.machine r.driver in
  let acc = ref (Driver.checks r.driver) in
  let add ds = acc := !acc @ ds in
  (match r.pep with
  | Some p -> add (lint_pep ?expected_samples st p)
  | None -> ());
  (match r.ppaths with
  | Some (p : Profiler.path_profiler) ->
      Array.iteri
        (fun midx pp ->
          match p.Profiler.plans.(midx) with
          | Some plan when not (Path_profile.is_empty pp) ->
              add
                (Pep_check.with_pass "profile@path"
                   (Pep_check.lint_path_profile plan.Instrument.numbering pp))
          | Some _ | None -> ())
        p.Profiler.table
  | None -> ());
  (* a transformed body shares branch ids across duplicated blocks and the
     profiler's block mapping predates the transform, so whole-run flow
     conservation is only claimed for untransformed code *)
  let exact =
    Driver.inlined_sites r.driver = 0 && Driver.unrolled_loops r.driver = 0
  in
  (match r.pedges with
  | Some (p : Profiler.edge_profiler) ->
      Array.iteri
        (fun midx ep ->
          if not (Edge_profile.is_empty ep) then
            add
              (Pep_check.with_pass "profile@edge"
                 (Pep_check.lint_edge_profile ~exact
                    (Machine.cmeth st midx).Machine.cfg ep)))
        p.Profiler.etable
  | None -> ());
  (* the one-time baseline profile stops counting at recompilation, so
     only its shape is linted *)
  Array.iteri
    (fun midx ep ->
      if not (Edge_profile.is_empty ep) then
        add
          (Pep_check.with_pass "profile@baseline"
             (Pep_check.lint_edge_profile ~exact:false
                (Machine.cmeth st midx).Machine.cfg ep)))
    (Driver.baseline_profile r.driver);
  !acc

let advice_number env midx dag = Pep.smart_number env.advice.Advice.profile midx dag

(* Restrict a profiler's plans to the methods the advice opt-compiles, so
   every configuration profiles the same method set PEP does. *)
let mask_plans env (plans : Profile_hooks.plans) =
  Array.iteri
    (fun m level -> if level < 0 then plans.(m) <- None)
    env.advice.Advice.levels

(* A [corrupt] fault models a damaged input detected at load time: the
   input is quarantined and recomputed from scratch.  Advice (and its
   DCG) is recomputed by re-running the deterministic warmup, so the
   substitute is identical to the quarantined original — measurements
   are unaffected; only host time and the [degrade.input_quarantined]
   accounting change.  The run-cache analogue lives in [Exp_cache]. *)
let quarantine_inputs env config faults =
  match faults with
  | None -> env
  | Some inj ->
      let bad_advice = Fault_injector.fire_corrupt inj ~what:"advice" in
      let bad_dcg = Fault_injector.fire_corrupt inj ~what:"dcg" in
      if not (bad_advice || bad_dcg) then env
      else begin
        let fresh =
          (make_env ~size:env.size
             ~config:{ default with engine = config.engine }
             ~seed:env.seed env.workload)
            .advice
        in
        if bad_advice then
          Fault_injector.note_quarantine inj ~what:"advice"
            ~reason:"corrupt advice quarantined; recomputed from warmup";
        if bad_dcg then
          Fault_injector.note_quarantine inj ~what:"dcg"
            ~reason:"corrupt DCG quarantined; recomputed from warmup";
        if bad_advice then { env with advice = fresh }
        else
          { env with advice = { env.advice with Advice.dcg = fresh.Advice.dcg } }
      end

(* Build the machine, profilers, hooks and driver for [config] —
   everything a replay does before the first application iteration.
   Shared between [replay] (which then executes) and [rebuild] (which
   precompiles and restores persisted profiles instead of executing);
   both must construct the state identically or cached runs would not
   be bit-identical to executed ones. *)
let setup_replay ~faults env config =
  let st = Machine.create ~seed:env.seed env.program in
  let pep_opts, extra =
    match config.profiling with
    | Base -> (None, None)
    | Pep_profiled { sampling; zero; numbering } ->
        (Some { Driver.sampling; zero; numbering }, None)
    | Perfect_path ->
        let p = Profiler.perfect_path ~number:(advice_number env) st in
        mask_plans env p.Profiler.plans;
        (None, Some (`Path p))
    | Perfect_edge ->
        let p = Profiler.perfect_edge st in
        (None, Some (`Edge p))
    | Classic_blpp ->
        let p = Profiler.classic_blpp ~number:(advice_number env) st in
        mask_plans env p.Profiler.plans;
        (None, Some (`Path p))
    | Instr_back_edge ->
        let plans =
          Profile_hooks.make_plans ~mode:Dag.Back_edge
            ~number:(advice_number env) st
        in
        mask_plans env plans;
        let hooks =
          Profile_hooks.path_hooks ~plans ~count_cost:`None
            ~on_path_end:(fun _ _ ~path_id:_ -> ())
            ()
        in
        (None, Some (`Hooks hooks))
  in
  let extra_hooks =
    match extra with
    | None -> None
    | Some (`Path (p : Profiler.path_profiler)) -> Some p.hooks
    | Some (`Edge (p : Profiler.edge_profiler)) -> Some p.ehooks
    | Some (`Hooks h) -> Some h
  in
  let opts =
    {
      Driver.mode = Replay env.advice;
      opt_profile = config.opt_profile;
      pep = pep_opts;
      inline = config.inline;
      unroll = config.unroll;
      verify = true;
      deep_verify = config.deep;
      engine = config.engine;
      tiers = config.tiers;
      telemetry = config.telemetry;
      faults;
    }
  in
  let driver = Driver.create ?extra_hooks opts st in
  (extra, driver)

let run_of_driver ~meas ~extra ~faults driver =
  {
    meas;
    pep = Driver.pep driver;
    faults;
    ppaths =
      (match extra with
      | Some (`Path p) -> Some p
      | Some (`Edge _) | Some (`Hooks _) | None -> None);
    pedges =
      (match extra with
      | Some (`Edge p) -> Some p
      | Some (`Path _) | Some (`Hooks _) | None -> None);
    driver;
    checks = [];
  }

let replay ?faults env config =
  let faults =
    match faults with Some _ as f -> f | None -> injector_of config
  in
  begin_run config
    (Fmt.str "%s %s" env.workload.Workload.name (config_key config));
  let env = quarantine_inputs env config faults in
  let extra, driver = setup_replay ~faults env config in
  let iter1, c1 = Driver.run driver in
  let iter2, c2 = Driver.run driver in
  (* the two iterations see different PRNG draws, so combine both results
     into the cross-configuration checksum *)
  let meas =
    {
      iter1;
      iter2;
      compile = Driver.compile_cycles driver;
      checksum = c1 lxor (c2 * 1_000_003);
    }
  in
  let r = run_of_driver ~meas ~extra ~faults driver in
  { r with checks = lint_run r }

(* Rebuild a replay run from a persisted payload without executing the
   application.  Replay compilation is execution-order-independent (the
   advice fixes the opt profile and the call graph), so [precompile]
   yields the same compiled bodies, plans and transform counts as the
   lazy compilation of a live run; the profile tables are then restored
   from their serialized lines and re-linted from scratch — nothing
   recorded on disk is trusted beyond the raw counts.  [Error reason]
   means the payload does not fit the configuration (wrong sections,
   unparseable lines): callers fall back to executing. *)
let rebuild ?faults env config (p : Exp_store.payload) =
  let faults =
    match faults with Some _ as f -> f | None -> injector_of config
  in
  begin_run config
    (Fmt.str "cached %s %s" env.workload.Workload.name (config_key config));
  let env = quarantine_inputs env config faults in
  let extra, driver = setup_replay ~faults env config in
  Driver.precompile driver;
  let exception Bad of string in
  let fill what parse lines =
    List.iter
      (fun line ->
        match parse line with
        | Ok () -> ()
        | Error reason ->
            raise (Bad (Fmt.str "%s: %s (line %S)" what reason line)))
      lines
  in
  let want what = function
    | [] -> ()
    | _ :: _ ->
        raise
          (Bad (Fmt.str "payload has a %s section this configuration never collects" what))
  in
  match
    (match Driver.pep driver with
    | Some pp ->
        fill "pep.paths" (Path_profile.parse_line pp.Pep.paths) p.Exp_store.pep_paths;
        fill "pep.edges" (Edge_profile.parse_line pp.Pep.edges) p.Exp_store.pep_edges
    | None ->
        want "pep.paths" p.Exp_store.pep_paths;
        want "pep.edges" p.Exp_store.pep_edges);
    (match extra with
    | Some (`Path pr) ->
        fill "ppaths" (Path_profile.parse_line pr.Profiler.table) p.Exp_store.ppaths
    | _ -> want "ppaths" p.Exp_store.ppaths);
    (match extra with
    | Some (`Edge pr) ->
        fill "pedges" (Edge_profile.parse_line pr.Profiler.etable) p.Exp_store.pedges
    | _ -> want "pedges" p.Exp_store.pedges)
  with
  | () ->
      let meas =
        {
          iter1 = p.Exp_store.iter1;
          iter2 = p.Exp_store.iter2;
          compile = p.Exp_store.compile;
          checksum = p.Exp_store.checksum;
        }
      in
      let r = run_of_driver ~meas ~extra ~faults driver in
      Ok { r with checks = lint_run ~expected_samples:p.Exp_store.n_samples r }
  | exception Bad reason -> Error reason

(* Replay with body transformations enabled, PEP(64,17) and a perfect
   path profiler observing the same (transformed) code: the profiler must
   be built after the driver has compiled the methods, or it would
   instrument the original bodies. *)
let replay_transformed_with_truth ?(config = { default with inline = true })
    env =
  let st = Machine.create ~seed:env.seed env.program in
  begin_run config
    (Fmt.str "truth %s %s" env.workload.Workload.name (config_key config));
  let opts =
    {
      Driver.mode = Replay env.advice;
      opt_profile = config.opt_profile;
      pep =
        (* the profiling field is ignored: this methodology fixes
           PEP(64,17) so the truth profiler and PEP stay comparable *)
        Some
          {
            Driver.sampling = Sampling.pep ~samples:64 ~stride:17;
            zero = `Hottest;
            numbering = `Smart;
          };
      inline = config.inline;
      unroll = config.unroll;
      verify = true;
      deep_verify = config.deep;
      engine = config.engine;
      tiers = config.tiers;
      telemetry = config.telemetry;
      faults = injector_of config;
    }
  in
  let driver = Driver.create opts st in
  Driver.precompile driver;
  let truth = Profiler.perfect_path ~number:(advice_number env) st in
  mask_plans env truth.Profiler.plans;
  Driver.add_hooks driver truth.Profiler.hooks;
  ignore (Driver.run driver);
  ignore (Driver.run driver);
  (driver, Option.get (Driver.pep driver), truth)

let adaptive_total ?(config = default) ~trial env =
  (* The adaptive system needs enough timer ticks for promotion decisions
     to stabilize (the paper's runs see ~550); compress the tick period so
     the tick:execution ratio stays comparable at simulation scale. *)
  let cost =
    {
      Cost_model.default with
      Cost_model.tick_period = Cost_model.default.Cost_model.tick_period / 4;
    }
  in
  let period = cost.Cost_model.tick_period in
  (* pseudo-uniform, distinct timer phases across trials *)
  let tick_offset = 1 + (trial * 10007 * 977) mod period in
  let st = Machine.create ~cost ~tick_offset ~seed:env.seed env.program in
  begin_run config
    (Fmt.str "adaptive %s trial%d" env.workload.Workload.name trial);
  let opts =
    (* [Pep_profiled] turns on PEP and lets it drive optimization (paper
       Fig. 11); any other profiling value runs the plain adaptive
       system.  [inline]/[unroll]/[opt_profile] are fixed by the
       methodology and ignored here. *)
    match config.profiling with
    | Pep_profiled { sampling; zero; numbering } ->
        {
          Driver.mode = Adaptive { thresholds = Driver.default_thresholds };
          opt_profile = Driver.From_pep;
          pep = Some { Driver.sampling; zero; numbering };
          inline = false;
          unroll = false;
          verify = true;
          deep_verify = config.deep;
          engine = config.engine;
          tiers = config.tiers;
          telemetry = config.telemetry;
          faults = injector_of config;
        }
    | Base | Perfect_path | Perfect_edge | Classic_blpp | Instr_back_edge ->
        {
          Driver.default_options with
          engine = config.engine;
          tiers = config.tiers;
          telemetry = config.telemetry;
          faults = injector_of config;
        }
  in
  let driver = Driver.create opts st in
  let a, _ = Driver.run driver in
  let b, _ = Driver.run driver in
  a + b

let check_consistent = function
  | [] -> ()
  | first :: rest ->
      List.iter
        (fun r ->
          if r.meas.checksum <> first.meas.checksum then
            failwith "profiling configuration changed application behaviour")
        rest
