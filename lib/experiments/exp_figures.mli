(** The paper's evaluation, one function per table/figure.

    Each function runs (via the shared {!Exp_cache}) whatever
    configurations it needs and returns a {!figure}: per-benchmark rows
    of values plus the summary statistics the paper quotes.  DESIGN.md's
    per-experiment index and EXPERIMENTS.md's paper-vs-measured record
    are keyed by the same ids. *)

type figure = {
  id : string;
  title : string;
  unit_ : string;  (** what the values mean, e.g. "% overhead" *)
  header : string list;  (** value-column labels *)
  rows : (string * float list) list;  (** benchmark name, values *)
  summary : (string * float) list;
  paper : string;  (** the paper's corresponding numbers, for comparison *)
}

val print : figure -> unit

val fig6 : Exp_cache.t list -> figure
val fig7 : Exp_cache.t list -> figure
val fig8 : Exp_cache.t list -> figure
val fig9 : Exp_cache.t list -> figure
val fig10 : Exp_cache.t list -> figure
val fig11 : ?trials:int -> Exp_cache.t list -> figure
val tab_absolute : Exp_cache.t list -> figure
val tab_perfect : Exp_cache.t list -> figure
val tab_blpp : Exp_cache.t list -> figure
val tab_smart : Exp_cache.t list -> figure
val tab_ag : Exp_cache.t list -> figure
val tab_header : Exp_cache.t list -> figure
val tab_onetime : Exp_cache.t list -> figure

(** §6.4's alternate ground truth: PEP's edge profile compared against
    direct edge instrumentation (which also sees code PEP cannot sample). *)
val tab_edgetruth : Exp_cache.t list -> figure

(** Extension: the optimizer's inliner on, measuring its performance
    effect and PEP's accuracy over inlined code (shared branch counters,
    suppressed yieldpoints in inlined uninterruptible loops). *)
val tab_inline : Exp_cache.t list -> figure

(** Extension: loop unrolling on, measuring its performance effect and
    PEP's accuracy over duplicated loop bodies. *)
val tab_unroll : Exp_cache.t list -> figure

(** Comparator (ref [7]): hot paths predicted from a perfect edge
    profile under branch independence vs PEP's sampled paths. *)
val tab_showdown : Exp_cache.t list -> figure

(** Comparator (§2.4, ref [28]): a hardware hot-path table of varying
    size, zero runtime cost, accuracy limited by capacity. *)
val tab_hardware : Exp_cache.t list -> figure

(** Comparator (§2.1, ref [30]): path instrumentation active only during
    initial execution, then dropped. *)
val tab_onetime_paths : Exp_cache.t list -> figure

(** All experiment ids, in report order. *)
val ids : string list

(** @raise Not_found for unknown ids. *)
val by_id : string -> Exp_cache.t list -> figure

(** The cacheable configurations figure [id] consults, enumerated so a
    job pool ({!Exp_pool}) can compute them up front.  Work that is not
    cache-mediated (fig11's adaptive trials, combined truth replays,
    direct comparator drivers) still runs when the figure is built.
    Unknown ids yield []. *)
val prefetch_configs : Exp_cache.t -> string -> Exp_harness.config list

(** Second-stage configurations derivable only from first-stage results
    (fig10's Fixed-table replays, built from the perfect path profile).
    Call after the {!prefetch_configs} runs are installed. *)
val derived_configs : Exp_cache.t -> string -> Exp_harness.config list
