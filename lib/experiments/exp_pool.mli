(** Domain-based job pool for experiment sweeps.

    Shards independent (workload × configuration) runs across [jobs]
    worker domains and merges results deterministically — ordered by
    cache position and configuration key, never by completion time — so
    a parallel sweep produces bit-identical figures to the serial run.
    Telemetry from parallel jobs goes to a private sink per worker
    (each opening a ["worker N"] trace thread), folded into the main
    sink in worker order after the join.

    [jobs <= 1] never spawns a domain and behaves exactly like the
    serial code paths it replaces. *)

(** [map ~jobs ~telemetry f xs] applies [f sink x] to every element,
    sharding round-robin across workers; results come back in input
    order and the first exception (in input order) is re-raised.  [f]
    receives the worker's private sink ([telemetry] itself when
    serial); it must not touch shared mutable state when [jobs > 1]. *)
val map :
  ?jobs:int ->
  ?telemetry:Telemetry.t ->
  (Telemetry.t option -> 'a -> 'b) ->
  'a list ->
  'b list

(** One run to ensure: a configuration on a benchmark's cache. *)
type task = { cache : Exp_cache.t; config : Exp_harness.config }

(** Deduplicate [tasks] (by cache and configuration key), drop those
    already memoized, execute the rest — {!Exp_cache.compute} on the
    workers, {!Exp_cache.install} on the main domain in sorted order —
    so later figure builds recall every run from memory.  Pass as
    [telemetry] the sink the task configurations carry, if any: workers
    substitute private sinks for it (carried sinks are stripped in
    workers if [telemetry] is omitted — a sink is never shared across
    domains). *)
val run_tasks : ?jobs:int -> ?telemetry:Telemetry.t -> task list -> unit

(** {!Exp_harness.suite_envs} with the warmup runs (the expensive part
    of preparation) sharded across workers. *)
val suite_envs :
  ?scale:float ->
  ?jobs:int ->
  ?config:Exp_harness.config ->
  seed:int ->
  unit ->
  Exp_harness.env list

(** Run every cacheable configuration the given figure ids need, on
    every cache: first the {!Exp_figures.prefetch_configs} sets, then
    the {!Exp_figures.derived_configs} second stage.  After this,
    building those figures recalls runs from memory (or re-executes
    only their non-cacheable parts). *)
val prefetch :
  ?jobs:int -> ?telemetry:Telemetry.t -> Exp_cache.t list -> string list -> unit
