(* On-disk storage for experiment run payloads.

   One file per (workload, size, seed, configuration) run, named by the
   MD5 of that identity so a cache directory can be shared across
   sweeps.  The bytes inside are framed by a versioned [Exp_codec]
   codec: writes use the current compact binary codec, loads sniff the
   file's magic and dispatch — legacy line-oriented text entries (v1)
   stay readable and are transparently re-encoded by [Exp_cache].

   The composite key embeds digests of the compiled program and the
   cost model (see Exp_cache), so a stale entry — same file name,
   different program — fails the key comparison; a damaged entry fails
   the digest or shape checks; an entry written by a future codec is
   reported as an unsupported version.  Either way the caller gets a
   structured [Dcg.parse_error] and recomputes; a load never crashes
   and never returns a partially-filled payload. *)

type payload = Exp_codec.payload = {
  iter1 : int;
  iter2 : int;
  compile : int;
  checksum : int;
  n_samples : int;
  pep_paths : string list;
  pep_edges : string list;
  ppaths : string list;
  pedges : string list;
}

let version = Exp_codec.current.Exp_codec.version

let filename ~dir file_key =
  Filename.concat dir (Digest.to_hex (Digest.string file_key) ^ ".run")

let digest_lines = Exp_codec.digest_lines

let err ?(line = 0) ?(text = "") file reason =
  { Dcg.file = Some file; line; text = String.trim text; reason }

let rec ensure_dir dir =
  if Sys.file_exists dir then
    if Sys.is_directory dir then Ok ()
    else Error (err dir "cache path exists but is not a directory")
  else begin
    let parent = Filename.dirname dir in
    match if parent = dir then Ok () else ensure_dir parent with
    | Error _ as e -> e
    | Ok () -> (
        match Sys.mkdir dir 0o755 with
        | () -> Ok ()
        | exception Sys_error m ->
            (* tolerate a concurrent worker creating it first; anything
               else (permissions, parent replaced by a file) surfaces *)
            if Sys.file_exists dir && Sys.is_directory dir then Ok ()
            else Error (err dir ("cannot create cache directory: " ^ m)))
  end

(* A crash between [Filename.temp_file] and the rename in [write_file]
   leaves a stray [*.tmp] behind; it is never read (loads go by exact
   final name) but would accumulate, so sweep on store open. *)
let sweep_tmp dir =
  match Sys.readdir dir with
  | entries ->
      Array.iter
        (fun f ->
          if
            (String.starts_with ~prefix:"run-" f
            || String.starts_with ~prefix:"fleet-" f)
            && Filename.check_suffix f ".tmp"
          then
            try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        entries
  | exception Sys_error _ -> ()

let prepare_dir dir =
  match ensure_dir dir with
  | Error _ as e -> e
  | Ok () ->
      sweep_tmp dir;
      (* probe writability now, so an unusable --cache-dir surfaces as
         one structured diagnostic at open instead of a silent
         recompute-every-run *)
      let probe = Filename.concat dir ".pepsim-writable" in
      (match Out_channel.with_open_bin probe (fun _ -> ()) with
      | () ->
          (try Sys.remove probe with Sys_error _ -> ());
          Ok ()
      | exception Sys_error m ->
          Error (err dir ("cache directory is not writable: " ^ m)))

(* --------------------------- raw file I/O -------------------------- *)

let read_file file =
  try
    Ok
      (In_channel.with_open_bin file (fun ic ->
           In_channel.input_all ic))
  with Sys_error m -> Error (err file ("unreadable: " ^ m))

(* Atomic byte-level write (temp file in the target directory, then
   rename), shared by the run cache and the fleet segment store. *)
let write_file ?(tmp_prefix = "run-") ~file contents =
  try
    let dir = Filename.dirname file in
    match ensure_dir dir with
    | Error _ as e -> e
    | Ok () -> (
        let tmp = Filename.temp_file ~temp_dir:dir tmp_prefix ".tmp" in
        try
          Out_channel.with_open_bin tmp (fun oc ->
              Out_channel.output_string oc contents);
          Sys.rename tmp file;
          Ok ()
        with Sys_error m ->
          (try Sys.remove tmp with Sys_error _ -> ());
          Error (err file ("write failed: " ^ m)))
  with Sys_error m -> Error (err file ("write failed: " ^ m))

(* ---------------------------- save / load -------------------------- *)

let save ~file ~key p =
  let flat =
    List.for_all
      (fun l -> not (String.contains l '\n' || String.contains l '\r'))
      (key :: (p.pep_paths @ p.pep_edges @ p.ppaths @ p.pedges))
  in
  if not flat then
    Error (err file "refusing to save: payload line contains a newline")
  else
    write_file ~file (Exp_codec.current.Exp_codec.encode ~key p)

(* [load_versioned] also reports which codec decoded the entry, so
   [Exp_cache] can transparently re-encode legacy entries in place. *)
let load_versioned ~file ~key =
  if not (Sys.file_exists file) then Ok None
  else
    match read_file file with
    | Error _ as e -> e
    | Ok contents -> (
        match Exp_codec.sniff contents with
        | `Codec c -> (
            match c.Exp_codec.decode ~file ~key contents with
            | Ok p -> Ok (Some (p, c.Exp_codec.version))
            | Error _ as e -> e)
        | `Unknown_version v ->
            Error
              (err file
                 (Fmt.str "unsupported cache version v%d (want v%d)" v version))
        | `Not_a_store_file ->
            Error
              (err file
                 ~text:
                   (String.sub contents 0 (min 32 (String.length contents)))
                 "not a pepsim run-cache file"))

let load ~file ~key =
  match load_versioned ~file ~key with
  | Ok None -> Ok None
  | Ok (Some (p, _)) -> Ok (Some p)
  | Error _ as e -> e
