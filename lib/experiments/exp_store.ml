(* On-disk storage for experiment run payloads.

   One file per (workload, size, seed, configuration) run, named by the
   MD5 of that identity so a cache directory can be shared across
   sweeps.  The file is a line-oriented text record:

     pepsim-run-cache v<version>
     key <composite key>
     meas <iter1> <iter2> <compile> <checksum>
     nsamples <n>
     pep.paths <k>   followed by k serialized Path_profile lines
     pep.edges <k>   followed by k serialized Edge_profile lines
     ppaths <k>      (perfect/classic path profiler table)
     pedges <k>      (perfect edge profiler table)
     digest <md5 hex of every preceding line>

   The composite key embeds digests of the compiled program and the
   cost model (see Exp_cache), so a stale entry — same file name,
   different program — fails the key comparison; a damaged entry fails
   the digest or shape checks.  Either way the caller gets a structured
   [Dcg.parse_error] and recomputes; a load never crashes and never
   returns a partially-filled payload. *)

let version = 2
let magic = "pepsim-run-cache"

type payload = {
  iter1 : int;
  iter2 : int;
  compile : int;
  checksum : int;
  n_samples : int;
  pep_paths : string list;
  pep_edges : string list;
  ppaths : string list;
  pedges : string list;
}

let filename ~dir file_key =
  Filename.concat dir (Digest.to_hex (Digest.string file_key) ^ ".run")

let digest_lines lines =
  Digest.to_hex (Digest.string (String.concat "\n" lines))

let err ?(line = 0) ?(text = "") file reason =
  { Dcg.file = Some file; line; text = String.trim text; reason }

let rec ensure_dir dir =
  if Sys.file_exists dir then
    if Sys.is_directory dir then Ok ()
    else Error (err dir "cache path exists but is not a directory")
  else begin
    let parent = Filename.dirname dir in
    match if parent = dir then Ok () else ensure_dir parent with
    | Error _ as e -> e
    | Ok () -> (
        match Sys.mkdir dir 0o755 with
        | () -> Ok ()
        | exception Sys_error m ->
            (* tolerate a concurrent worker creating it first; anything
               else (permissions, parent replaced by a file) surfaces *)
            if Sys.file_exists dir && Sys.is_directory dir then Ok ()
            else Error (err dir ("cannot create cache directory: " ^ m)))
  end

(* A crash between [Filename.temp_file] and the rename in [save] leaves
   a stray [run-*.tmp] behind; it is never read (loads go by exact
   [.run] name) but would accumulate, so sweep on cache open. *)
let sweep_tmp dir =
  match Sys.readdir dir with
  | entries ->
      Array.iter
        (fun f ->
          if
            String.starts_with ~prefix:"run-" f
            && Filename.check_suffix f ".tmp"
          then
            try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        entries
  | exception Sys_error _ -> ()

let prepare_dir dir =
  match ensure_dir dir with
  | Error _ as e -> e
  | Ok () ->
      sweep_tmp dir;
      (* probe writability now, so an unusable --cache-dir surfaces as
         one structured diagnostic at open instead of a silent
         recompute-every-run *)
      let probe = Filename.concat dir ".pepsim-writable" in
      (match Out_channel.with_open_bin probe (fun _ -> ()) with
      | () ->
          (try Sys.remove probe with Sys_error _ -> ());
          Ok ()
      | exception Sys_error m ->
          Error (err dir ("cache directory is not writable: " ^ m)))

(* ------------------------------ save ------------------------------ *)

let to_lines ~key p =
  let section name lines = Fmt.str "%s %d" name (List.length lines) :: lines in
  let body =
    (magic ^ " v" ^ string_of_int version)
    :: ("key " ^ key)
    :: Fmt.str "meas %d %d %d %d" p.iter1 p.iter2 p.compile p.checksum
    :: Fmt.str "nsamples %d" p.n_samples
    :: List.concat
         [
           section "pep.paths" p.pep_paths;
           section "pep.edges" p.pep_edges;
           section "ppaths" p.ppaths;
           section "pedges" p.pedges;
         ]
  in
  body @ [ "digest " ^ digest_lines body ]

let save ~file ~key p =
  let flat =
    List.for_all
      (fun l -> not (String.contains l '\n' || String.contains l '\r'))
      (key :: (p.pep_paths @ p.pep_edges @ p.ppaths @ p.pedges))
  in
  if not flat then
    Error (err file "refusing to save: payload line contains a newline")
  else
    try
      let dir = Filename.dirname file in
      match ensure_dir dir with
      | Error _ as e -> e
      | Ok () ->
      let tmp = Filename.temp_file ~temp_dir:dir "run-" ".tmp" in
      let finish ok =
        if not ok then (try Sys.remove tmp with Sys_error _ -> ())
      in
      (try
         let oc = open_out tmp in
         List.iter
           (fun l ->
             output_string oc l;
             output_char oc '\n')
           (to_lines ~key p);
         close_out oc;
         Sys.rename tmp file;
         Ok ()
       with Sys_error m ->
         finish false;
         Error (err file ("write failed: " ^ m)))
    with Sys_error m -> Error (err file ("write failed: " ^ m))

(* ------------------------------ load ------------------------------ *)

exception Fail of Dcg.parse_error

let read_lines file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let acc = ref [] in
      (try
         while true do
           acc := input_line ic :: !acc
         done
       with End_of_file -> ());
      List.rev !acc)

let load ~file ~key =
  if not (Sys.file_exists file) then Ok None
  else
    try
      let lines = try read_lines file with Sys_error m ->
        raise (Fail (err file ("unreadable: " ^ m)))
      in
      let arr = Array.of_list lines in
      let n = Array.length arr in
      let fail ?line ?text reason = raise (Fail (err ?line ?text file reason)) in
      (* shape: magic/version first, self-consistent digest last *)
      if n < 2 then fail "truncated cache entry";
      (match String.split_on_char ' ' arr.(0) with
      | [ m; v ] when m = magic ->
          if v <> "v" ^ string_of_int version then
            fail ~line:1 ~text:arr.(0)
              (Fmt.str "unsupported cache version %s (want v%d)" v version)
      | _ -> fail ~line:1 ~text:arr.(0) "not a pepsim run-cache file");
      (match String.index_opt arr.(n - 1) ' ' with
      | Some 6 when String.sub arr.(n - 1) 0 6 = "digest" ->
          let stored = String.sub arr.(n - 1) 7 (String.length arr.(n - 1) - 7) in
          let body = Array.to_list (Array.sub arr 0 (n - 1)) in
          if digest_lines body <> stored then
            fail ~line:n ~text:arr.(n - 1)
              "corrupt cache entry (content digest mismatch)"
      | _ ->
          fail ~line:n ~text:arr.(n - 1)
            "truncated cache entry (missing digest trailer)");
      (* cursor over the verified body *)
      let pos = ref 1 in
      let next what =
        if !pos >= n - 1 then
          fail ~line:n (Fmt.str "truncated cache entry (missing %s)" what);
        let l = arr.(!pos) in
        incr pos;
        l
      in
      let field name l =
        let prefix = name ^ " " in
        if String.starts_with ~prefix l then
          String.sub l (String.length prefix) (String.length l - String.length prefix)
        else fail ~line:!pos ~text:l (Fmt.str "expected a %S line" name)
      in
      let int_field name l =
        match int_of_string_opt (field name l) with
        | Some v -> v
        | None -> fail ~line:!pos ~text:l (Fmt.str "bad %s value" name)
      in
      let stored_key = field "key" (next "key") in
      if stored_key <> key then
        fail ~line:2
          (Fmt.str
             "stale cache entry: key mismatch (expected %S, found %S) — \
              program, cost model or format changed since it was written"
             key stored_key);
      let meas_line = next "meas" in
      let iter1, iter2, compile, checksum =
        match
          List.map int_of_string_opt
            (String.split_on_char ' ' (field "meas" meas_line))
        with
        | [ Some a; Some b; Some c; Some d ] -> (a, b, c, d)
        | _ -> fail ~line:!pos ~text:meas_line "bad meas line"
      in
      let n_samples = int_field "nsamples" (next "nsamples") in
      let section name =
        let k = int_field name (next name) in
        if k < 0 then fail (Fmt.str "negative %s section length" name);
        List.init k (fun _ -> next (name ^ " line"))
      in
      let pep_paths = section "pep.paths" in
      let pep_edges = section "pep.edges" in
      let ppaths = section "ppaths" in
      let pedges = section "pedges" in
      if !pos <> n - 1 then
        fail ~line:(!pos + 1) ~text:arr.(!pos) "trailing garbage in cache entry";
      Ok
        (Some
           {
             iter1;
             iter2;
             compile;
             checksum;
             n_samples;
             pep_paths;
             pep_edges;
             ppaths;
             pedges;
           })
    with
    | Fail e -> Error e
    | Sys_error m -> Error (err file ("unreadable: " ^ m))
