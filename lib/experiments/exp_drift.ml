(* Accuracy over time under drifting traffic.  See exp_drift.mli. *)

type point = {
  window : int;
  phase : int;
  samples : int;
  path_acc : float;
  edge_acc : float;
  stale_path_acc : float;
  stale_edge_acc : float;
}

type series = {
  workload : string;
  windows : int;
  threshold : float;
  schedule : int list;
  shifts : int list;
  points : point list;
  recovered : bool;
}

let default_threshold = 0.80

let compressed_cost tick_shrink =
  {
    Cost_model.default with
    Cost_model.tick_period =
      max 1 (Cost_model.default.Cost_model.tick_period / max 1 tick_shrink);
  }

(* Per-window deltas over the cumulative tables, fleet-collector style:
   replay never re-instruments, so cumulative counts are monotone and
   the delta is exact. *)
type cursor = { tbl : (int * int, int) Hashtbl.t }

let delta cursor rows =
  List.filter_map
    (fun (a, b, c) ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt cursor.tbl (a, b)) in
      Hashtbl.replace cursor.tbl (a, b) c;
      if c - prev > 0 then Some (a, b, c - prev) else None)
    rows

let cumulative_paths (tables : Path_profile.table) =
  let rows = ref [] in
  Array.iteri
    (fun mi prof ->
      Path_profile.iter
        (fun (e : Path_profile.entry) ->
          if e.Path_profile.count > 0 then
            rows := (mi, e.Path_profile.path_id, e.Path_profile.count) :: !rows)
        prof)
    tables;
  List.sort compare !rows

let path_table ~n_methods rows =
  let t = Path_profile.create_table ~n_methods in
  List.iter (fun (mi, pid, c) -> Path_profile.add t.(mi) pid c) rows;
  t

let shifts_of schedule =
  let sched = Array.of_list schedule in
  List.filter
    (fun w -> w > 0 && sched.(w) <> sched.(w - 1))
    (List.init (Array.length sched) (fun w -> w))

(* [recovered]: after every shift, some later window before the next
   shift clears the threshold on both stale scores. *)
let recovered_of ~threshold ~windows ~shifts points =
  let arr = Array.of_list points in
  List.for_all
    (fun s ->
      let next =
        match List.find_opt (fun s' -> s' > s) shifts with
        | Some s' -> s'
        | None -> windows
      in
      let rec probe w =
        w < next
        && ((arr.(w).stale_path_acc >= threshold
             && arr.(w).stale_edge_acc >= threshold)
           || probe (w + 1))
      in
      probe (s + 1))
    shifts

let run ?(samples = 64) ?(stride = 17) ?(tick_shrink = 8)
    ?(threshold = default_threshold) ?size ?(seed = 42) ~schedule
    (w : Workload.t) =
  let size = Option.value ~default:w.Workload.default_size size in
  let cost = compressed_cost tick_shrink in
  let program = Workload.program ~size w in
  Verify.program program;
  (* phase-0 adaptive warmup: the advice every window replays against *)
  let wst = Machine.create ~cost ~seed program in
  let wdriver =
    Driver.create
      {
        Driver.default_options with
        Driver.mode = Driver.Adaptive { thresholds = Driver.default_thresholds };
      }
      wst
  in
  ignore (Driver.run wdriver);
  ignore (Driver.run wdriver);
  let advice = Driver.advice wdriver in
  let env = { Exp_harness.workload = w; program; advice; size; seed } in
  (* the collection instance: replay + PEP, with a masked perfect path
     profiler riding the same driver as concurrent ground truth *)
  let st = Machine.create ~cost ~seed:(seed + 1) program in
  let driver =
    Driver.create
      {
        Driver.default_options with
        Driver.mode = Driver.Replay advice;
        pep =
          Some
            {
              Driver.sampling = Sampling.pep ~samples ~stride;
              zero = `Hottest;
              numbering = `Smart;
            };
        verify = false;
      }
      st
  in
  let pep = Option.get (Driver.pep driver) in
  Driver.precompile driver;
  let truth = Profiler.perfect_path ~number:(Exp_harness.advice_number env) st in
  Exp_harness.mask_plans env truth.Profiler.plans;
  Driver.add_hooks driver truth.Profiler.hooks;
  let n_methods = Array.length st.Machine.methods in
  let edges_of paths = Profiler.edges_of_paths ~n_methods truth.Profiler.plans paths in
  let c_pep = { tbl = Hashtbl.create 256 }
  and c_truth = { tbl = Hashtbl.create 256 } in
  let c_samples = ref 0 in
  let prev_pep = ref None in
  let points =
    List.mapi
      (fun window phase ->
        if Array.length st.Machine.globals > Phased.phase_global then
          st.Machine.globals.(Phased.phase_global) <- phase;
        ignore (Driver.run driver);
        let pep_d =
          path_table ~n_methods (delta c_pep (cumulative_paths pep.Pep.paths))
        in
        let truth_d =
          path_table ~n_methods
            (delta c_truth (cumulative_paths truth.Profiler.table))
        in
        let total = Pep.n_samples pep in
        let samples = max 0 (total - !c_samples) in
        c_samples := total;
        let n_branches =
          Profiler.n_branches_resolver truth.Profiler.plans truth_d
        in
        let acc estimated =
          ( Accuracy.wall_path_accuracy ~n_branches ~actual:truth_d ~estimated (),
            Accuracy.relative_overlap ~actual:(edges_of truth_d)
              ~estimated:(edges_of estimated) )
        in
        let path_acc, edge_acc = acc pep_d in
        let stale_path_acc, stale_edge_acc =
          match !prev_pep with None -> (path_acc, edge_acc) | Some p -> acc p
        in
        prev_pep := Some pep_d;
        { window; phase; samples; path_acc; edge_acc; stale_path_acc; stale_edge_acc })
      schedule
  in
  let windows = List.length schedule in
  let shifts = shifts_of schedule in
  {
    workload = w.Workload.name;
    windows;
    threshold;
    schedule;
    shifts;
    points;
    recovered = recovered_of ~threshold ~windows ~shifts points;
  }

let run_spec ?windows ?samples ?stride ?tick_shrink ?threshold ?size ?seed spec
    =
  (* two windows per phase minimum, so every shift has a recovery
     window before the next one *)
  let windows =
    match windows with Some w -> w | None -> max 6 (2 * spec.Wgen.phases)
  in
  run ?samples ?stride ?tick_shrink ?threshold ?size ?seed
    ~schedule:(Wgen.schedule spec ~windows)
    (Wgen.workload spec)

(* ------------------------------- export ---------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json s =
  let ints l = String.concat "," (List.map string_of_int l) in
  let point p =
    Fmt.str
      "{\"window\":%d,\"phase\":%d,\"samples\":%d,\"path_acc\":%.6f,\"edge_acc\":%.6f,\"stale_path_acc\":%.6f,\"stale_edge_acc\":%.6f}"
      p.window p.phase p.samples p.path_acc p.edge_acc p.stale_path_acc
      p.stale_edge_acc
  in
  Fmt.str
    "{\"workload\":\"%s\",\"windows\":%d,\"threshold\":%.2f,\"schedule\":[%s],\"shifts\":[%s],\"recovered\":%b,\"points\":[%s]}"
    (json_escape s.workload) s.windows s.threshold (ints s.schedule)
    (ints s.shifts) s.recovered
    (String.concat "," (List.map point s.points))

let figure s =
  {
    Exp_figures.id = "accuracy-over-time";
    title = Fmt.str "Windowed accuracy under drift: %s" s.workload;
    unit_ = "accuracy [0,1]; stale = previous window's profile vs this truth";
    header = [ "phase"; "samples"; "path"; "edge"; "stale-path"; "stale-edge" ];
    rows =
      List.map
        (fun p ->
          ( Fmt.str "w%d%s" p.window
              (if List.mem p.window s.shifts then "*" else ""),
            [
              float_of_int p.phase;
              float_of_int p.samples;
              p.path_acc;
              p.edge_acc;
              p.stale_path_acc;
              p.stale_edge_acc;
            ] ))
        s.points;
    summary =
      [
        ("shifts", float_of_int (List.length s.shifts));
        ("threshold", s.threshold);
        ("recovered", if s.recovered then 1.0 else 0.0);
      ];
    paper =
      "no counterpart: the paper measures accuracy only at end of run (§6)";
  }
