(** On-disk storage for experiment run payloads.

    One versioned text file per (workload, size, seed, configuration)
    run, digest-protected and keyed by a composite identity that embeds
    digests of the compiled program and cost model (built by
    {!Exp_cache}).  Loading validates version, content digest, identity
    key and record shape before returning anything; every failure is a
    structured {!Dcg.parse_error} so callers recompute with a
    diagnostic instead of trusting or crashing on a bad entry. *)

(** Bumped whenever the file layout or the meaning of a persisted field
    changes; older entries are reported stale and recomputed. *)
val version : int

(** Everything needed to rebuild an {!Exp_harness.run} without
    executing the application: the measurement, the sample count, and
    the collected profile tables in their [to_lines] serialization. *)
type payload = {
  iter1 : int;
  iter2 : int;
  compile : int;
  checksum : int;
  n_samples : int;
  pep_paths : string list;
  pep_edges : string list;
  ppaths : string list;
  pedges : string list;
}

(** [filename ~dir file_key] is the store path for a run identity:
    [dir/<md5 hex of file_key>.run]. *)
val filename : dir:string -> string -> string

(** MD5 hex over the lines joined with ["\n"] — the integrity trailer
    (exposed so tests can forge entries with valid digests). *)
val digest_lines : string list -> string

(** Create [dir] (and parents) if missing.  [Error] carries a
    structured diagnostic: permission denied, or a path component that
    exists but is not a directory.  Concurrent creation by another
    worker is tolerated. *)
val ensure_dir : string -> (unit, Dcg.parse_error) result

(** {!ensure_dir}, plus: sweep stray [run-*.tmp] files left by a crash
    between temp-write and rename (they are never read, only
    accumulate), and probe that the directory is actually writable so
    an unusable [--cache-dir] surfaces as one diagnostic at open
    instead of a silent recompute on every run.  Call when opening a
    cache directory. *)
val prepare_dir : string -> (unit, Dcg.parse_error) result

(** Atomically (write-then-rename) persist a payload under [key].
    Creates missing directories; all I/O failures are structured
    errors, never exceptions. *)
val save : file:string -> key:string -> payload -> (unit, Dcg.parse_error) result

(** [Ok None] when no entry exists; [Error _] for stale (key or
    version mismatch), corrupt (digest mismatch), truncated or
    unreadable entries. *)
val load :
  file:string -> key:string -> (payload option, Dcg.parse_error) result
