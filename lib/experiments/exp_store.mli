(** On-disk storage for experiment run payloads.

    One file per (workload, size, seed, configuration) run, keyed by a
    composite identity that embeds digests of the compiled program and
    cost model (built by {!Exp_cache}).  The bytes inside are framed by
    a versioned {!Exp_codec} codec: writes use the current compact
    binary codec, loads sniff the magic and dispatch, so legacy text
    entries stay readable.  Loading validates version, content digest,
    identity key and record shape before returning anything; every
    failure is a structured {!Dcg.parse_error} so callers recompute
    with a diagnostic instead of trusting or crashing on a bad entry. *)

(** The current codec's version ({!Exp_codec.current}); entries written
    by a future codec are reported stale and recomputed. *)
val version : int

(** Re-export of {!Exp_codec.payload}: everything needed to rebuild an
    {!Exp_harness.run} without executing the application. *)
type payload = Exp_codec.payload = {
  iter1 : int;
  iter2 : int;
  compile : int;
  checksum : int;
  n_samples : int;
  pep_paths : string list;
  pep_edges : string list;
  ppaths : string list;
  pedges : string list;
}

(** [filename ~dir file_key] is the store path for a run identity:
    [dir/<md5 hex of file_key>.run]. *)
val filename : dir:string -> string -> string

(** MD5 hex over the lines joined with ["\n"] — the legacy text
    format's integrity trailer (re-exported from {!Exp_codec} for
    tests that forge v1 entries). *)
val digest_lines : string list -> string

(** Create [dir] (and parents) if missing.  [Error] carries a
    structured diagnostic: permission denied, or a path component that
    exists but is not a directory.  Concurrent creation by another
    worker is tolerated. *)
val ensure_dir : string -> (unit, Dcg.parse_error) result

(** {!ensure_dir}, plus: sweep stray [run-*.tmp]/[fleet-*.tmp] files
    left by a crash between temp-write and rename (they are never read,
    only accumulate), and probe that the directory is actually writable
    so an unusable store directory surfaces as one diagnostic at open
    instead of a silent recompute on every run.  Call when opening a
    store directory. *)
val prepare_dir : string -> (unit, Dcg.parse_error) result

(** Read a whole file as bytes; [Error] is a structured diagnostic. *)
val read_file : string -> (string, Dcg.parse_error) result

(** Atomically (temp file in the target directory, then rename) write
    [contents] to [file], creating missing directories.  Shared by the
    run cache and the fleet segment store ([tmp_prefix] defaults to
    ["run-"]; {!prepare_dir} sweeps both prefixes). *)
val write_file :
  ?tmp_prefix:string -> file:string -> string -> (unit, Dcg.parse_error) result

(** Persist a payload under [key] with the current codec.  All I/O
    failures are structured errors, never exceptions. *)
val save : file:string -> key:string -> payload -> (unit, Dcg.parse_error) result

(** [Ok None] when no entry exists; [Error _] for stale (key or
    version mismatch), corrupt (digest mismatch), truncated or
    unreadable entries — whichever codec wrote them. *)
val load :
  file:string -> key:string -> (payload option, Dcg.parse_error) result

(** Like {!load}, but also reports the codec version that decoded the
    entry, so callers can migrate legacy entries in place. *)
val load_versioned :
  file:string -> key:string -> ((payload * int) option, Dcg.parse_error) result
