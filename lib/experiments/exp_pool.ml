(* Domain-based job pool for experiment sweeps.

   Determinism is the whole contract: a sweep sharded over N workers
   must produce bit-identical figures to the serial run.  Three rules
   get us there:

   - every job is independent — a replay touches only its own machine,
     and Exp_cache.compute touches no shared mutable cache state (the
     one shared global, the compiled-form stamp counter, is atomic and
     its values never reach a measurement);
   - results are merged on the main domain in a deterministic order
     (sorted by cache position and configuration key, never by
     completion time);
   - telemetry goes to a private sink per worker, merged into the main
     sink in worker order after the join, with jobs assigned to workers
     round-robin over the sorted order so the assignment is static. *)

let worker_name w = Fmt.str "worker %d" w

let map ?(jobs = 1) ?telemetry f xs =
  let n = List.length xs in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then List.map (fun x -> f telemetry x) xs
  else begin
    let xs = Array.of_list xs in
    let tracing =
      match telemetry with
      | Some tel -> Option.is_some (Telemetry.trace tel)
      | None -> false
    in
    let sinks =
      Array.init jobs (fun _ ->
          Option.map (fun _ -> Telemetry.create ~tracing ()) telemetry)
    in
    (* slot i is written by exactly one worker and read after the join *)
    let results = Array.make n None in
    let worker w () =
      (match sinks.(w) with
      | Some sink -> Telemetry.begin_run sink ~name:(worker_name w)
      | None -> ());
      let i = ref w in
      while !i < n do
        results.(!i) <- Some (try Ok (f sinks.(w) xs.(!i)) with e -> Error e);
        i := !i + jobs
      done
    in
    let domains = Array.init jobs (fun w -> Domain.spawn (worker w)) in
    Array.iter Domain.join domains;
    (match telemetry with
    | Some main ->
        Array.iter
          (function
            | Some sink -> Telemetry.merge ~into:main sink
            | None -> ())
          sinks
    | None -> ());
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)
         results)
  end

(* Swap a configuration's sink for the calling worker's private one.  A
   config without a sink stays without one — and if the pool was given
   no telemetry, carried sinks are stripped rather than shared across
   domains. *)
let reconfig sink config =
  match config.Exp_harness.telemetry with
  | None -> config
  | Some _ -> { config with Exp_harness.telemetry = sink }

type task = { cache : Exp_cache.t; config : Exp_harness.config }

let run_tasks ?(jobs = 1) ?telemetry tasks =
  let distinct =
    List.rev
      (List.fold_left
         (fun acc t -> if List.memq t.cache acc then acc else t.cache :: acc)
         [] tasks)
  in
  let ordinal c =
    let rec go i = function
      | [] -> assert false
      | c' :: tl -> if c' == c then i else go (i + 1) tl
    in
    go 0 distinct
  in
  let seen = Hashtbl.create 32 in
  let pending =
    List.sort
      (fun (ka, _) (kb, _) -> compare ka kb)
      (List.filter_map
         (fun t ->
           let k = (ordinal t.cache, Exp_harness.config_key t.config) in
           if Hashtbl.mem seen k || Option.is_some (Exp_cache.find_run t.cache t.config)
           then None
           else begin
             Hashtbl.replace seen k ();
             Some (k, t)
           end)
         tasks)
  in
  let pending = List.map snd pending in
  if jobs <= 1 || List.length pending <= 1 then
    (* straight through the cache: identical to what the figures would
       do on demand, main sink and all *)
    List.iter (fun t -> ignore (Exp_cache.run t.cache t.config)) pending
  else begin
    let outcomes =
      map ~jobs ?telemetry
        (fun sink t -> Exp_cache.compute t.cache (reconfig sink t.config))
        pending
    in
    List.iter2
      (fun t o -> ignore (Exp_cache.install t.cache t.config o))
      pending outcomes
  end

let suite_envs ?(scale = 1.0) ?(jobs = 1) ?config ~seed () =
  let telemetry = Option.bind config (fun c -> c.Exp_harness.telemetry) in
  let sized =
    List.map
      (fun (w : Workload.t) ->
        (w, max 1 (int_of_float (float_of_int w.default_size *. scale))))
      Suite.all
  in
  map ~jobs ?telemetry
    (fun sink (w, size) ->
      let config = Option.map (reconfig sink) config in
      Exp_harness.make_env ~size ?config ~seed w)
    sized

let prefetch ?jobs ?telemetry caches ids =
  let stage select =
    run_tasks ?jobs ?telemetry
      (List.concat_map
         (fun cache ->
           List.concat_map
             (fun id ->
               List.map (fun config -> { cache; config }) (select cache id))
             ids)
         caches)
  in
  stage Exp_figures.prefetch_configs;
  (* fig10's Fixed-table configs derive from stage-1 results, so the
     task list itself can only be built once those are installed *)
  stage Exp_figures.derived_configs
