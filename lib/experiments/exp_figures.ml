type figure = {
  id : string;
  title : string;
  unit_ : string;
  header : string list;
  rows : (string * float list) list;
  summary : (string * float) list;
  paper : string;
}

let print fig =
  Exp_report.section (Fmt.str "%s: %s [%s]" fig.id fig.title fig.unit_);
  Exp_report.table
    ~header:("benchmark" :: fig.header)
    (List.map
       (fun (name, values) ->
         name :: List.map (fun v -> Fmt.str "%.2f" v) values)
       fig.rows);
  List.iter (fun (label, v) -> Printf.printf "%-28s %8.2f\n" label v) fig.summary;
  Printf.printf "paper: %s\n" fig.paper

let bench_name c = (Exp_cache.env c).Exp_harness.workload.Workload.name

(* Derive a run configuration from the cache's base configuration (which
   may carry a telemetry sink) by overriding the profiling axis. *)
let cfg_with c profiling = { (Exp_cache.config c) with Exp_harness.profiling }

let col_summary label values =
  [
    (label ^ " mean", Exp_report.mean values);
    (label ^ " max", List.fold_left Float.max neg_infinity values);
  ]

let pep_configs = [ (1, 1); (64, 17); (256, 17); (1024, 17) ]

(* ------------------------------------------------------------------ *)

let fig6 caches =
  let rows =
    List.map
      (fun c ->
        let base = (Exp_cache.base c).Exp_harness.meas.iter2 in
        let ov (r : Exp_harness.run) =
          Exp_report.overhead ~base r.meas.iter2
        in
        let runs =
          Exp_cache.instr_only c
          :: List.map (fun (s, t) -> Exp_cache.pep c ~samples:s ~stride:t) pep_configs
        in
        Exp_harness.check_consistent (Exp_cache.base c :: runs);
        (bench_name c, List.map ov runs))
      caches
  in
  let nth_col i = List.map (fun (_, vs) -> List.nth vs i) rows in
  {
    id = "fig6";
    title = "PEP execution overhead (2nd replay iteration)";
    unit_ = "% overhead vs base";
    header =
      "instr-only"
      :: List.map (fun (s, t) -> Fmt.str "PEP(%d,%d)" s t) pep_configs;
    rows;
    summary =
      col_summary "instr-only" (nth_col 0)
      @ col_summary "PEP(64,17)" (nth_col 2)
      @ col_summary "PEP(1024,17)" (nth_col 4);
    paper =
      "instr alone 1.1% avg / 5.4% max; PEP(64,17) 1.2% avg / 4.3% max; \
       denser configs +0.8-2.3%";
  }

let fig7 caches =
  let rows =
    List.map
      (fun c ->
        let base = (Exp_cache.base c).Exp_harness.meas.iter1 in
        let pep = (Exp_cache.pep c ~samples:64 ~stride:17).Exp_harness.meas in
        (bench_name c, [ Exp_report.overhead ~base pep.iter1 ]))
      caches
  in
  let col = List.map (fun (_, vs) -> List.hd vs) rows in
  {
    id = "fig7";
    title = "PEP compilation+execution overhead (1st replay iteration)";
    unit_ = "% overhead vs base";
    header = [ "PEP(64,17)" ];
    rows;
    summary = col_summary "PEP(64,17)" col;
    paper = "1.6% avg, 4.6% max (higher than execution-only overhead)";
  }

let path_accuracy c (pep_run : Exp_harness.run) =
  let perfect = Option.get (Exp_cache.perfect_path c).Exp_harness.ppaths in
  let pep = Option.get pep_run.Exp_harness.pep in
  let n_branches =
    Profiler.n_branches_resolver perfect.Profiler.plans perfect.Profiler.table
  in
  100.
  *. Accuracy.wall_path_accuracy ~n_branches ~actual:perfect.Profiler.table
       ~estimated:pep.Pep.paths ()

let fig8 caches =
  let rows =
    List.map
      (fun c ->
        ( bench_name c,
          List.map
            (fun (s, t) -> path_accuracy c (Exp_cache.pep c ~samples:s ~stride:t))
            pep_configs ))
      caches
  in
  let nth_col i = List.map (fun (_, vs) -> List.nth vs i) rows in
  {
    id = "fig8";
    title = "Hot-path profile accuracy (Wall weight matching, branch flow)";
    unit_ = "% accuracy";
    header = List.map (fun (s, t) -> Fmt.str "PEP(%d,%d)" s t) pep_configs;
    rows;
    summary =
      [
        ("PEP(1,1) mean", Exp_report.mean (nth_col 0));
        ("PEP(64,17) mean", Exp_report.mean (nth_col 1));
        ("PEP(1024,17) mean", Exp_report.mean (nth_col 3));
      ];
    paper = "timer-based 53%; PEP(64,17) 94%; small gains beyond";
  }

let edge_accuracy metric c (pep_run : Exp_harness.run) =
  let actual = Exp_cache.perfect_edges_of_paths c in
  let pep = Option.get pep_run.Exp_harness.pep in
  100. *. metric ~actual ~estimated:pep.Pep.edges

let fig9 caches =
  let rows =
    List.map
      (fun c ->
        ( bench_name c,
          List.map
            (fun (s, t) ->
              edge_accuracy Accuracy.relative_overlap c
                (Exp_cache.pep c ~samples:s ~stride:t))
            pep_configs ))
      caches
  in
  let nth_col i = List.map (fun (_, vs) -> List.nth vs i) rows in
  {
    id = "fig9";
    title = "Edge profile accuracy (relative overlap vs path-derived truth)";
    unit_ = "% accuracy";
    header = List.map (fun (s, t) -> Fmt.str "PEP(%d,%d)" s t) pep_configs;
    rows;
    summary =
      [
        ("PEP(1,1) mean", Exp_report.mean (nth_col 0));
        ("PEP(64,17) mean", Exp_report.mean (nth_col 1));
        ("PEP(1024,17) mean", Exp_report.mean (nth_col 3));
      ];
    paper = "PEP(64,17) 96%; more samples slightly better";
  }

let tab_absolute caches =
  let configs = [ (64, 17); (256, 17); (1024, 17) ] in
  let rows =
    List.map
      (fun c ->
        ( bench_name c,
          List.map
            (fun (s, t) ->
              edge_accuracy Accuracy.absolute_overlap c
                (Exp_cache.pep c ~samples:s ~stride:t))
            configs ))
      caches
  in
  let nth_col i = List.map (fun (_, vs) -> List.nth vs i) rows in
  {
    id = "tab-absolute";
    title = "Edge profile absolute overlap (§6.4)";
    unit_ = "% overlap";
    header = List.map (fun (s, t) -> Fmt.str "PEP(%d,%d)" s t) configs;
    rows;
    summary =
      [
        ("PEP(64,17) mean", Exp_report.mean (nth_col 0));
        ("PEP(256,17) mean", Exp_report.mean (nth_col 1));
        ("PEP(1024,17) mean", Exp_report.mean (nth_col 2));
      ];
    paper = "83% (64,17), 87% (256,17), 88% (1024,17)";
  }

let tab_perfect caches =
  let rows =
    List.map
      (fun c ->
        let base = (Exp_cache.base c).Exp_harness.meas.iter2 in
        let path =
          (Exp_cache.run c (cfg_with c Exp_harness.Perfect_path))
            .Exp_harness.meas
            .iter2
        in
        let edge =
          (Exp_cache.run c (cfg_with c Exp_harness.Perfect_edge))
            .Exp_harness.meas
            .iter2
        in
        ( bench_name c,
          [ Exp_report.overhead ~base path; Exp_report.overhead ~base edge ] ))
      caches
  in
  let nth_col i = List.map (fun (_, vs) -> List.nth vs i) rows in
  {
    id = "tab-perfect";
    title = "Perfect-profile collector overhead (§5.1)";
    unit_ = "% overhead vs base";
    header = [ "instr path"; "instr edge" ];
    rows;
    summary = col_summary "instr path" (nth_col 0) @ col_summary "instr edge" (nth_col 1);
    paper = "instr path 92% avg (8-407%); instr edge 10% avg (0-34%)";
  }

let tab_blpp caches =
  let rows =
    List.map
      (fun c ->
        let base = (Exp_cache.base c).Exp_harness.meas.iter2 in
        let blpp =
          (Exp_cache.run c (cfg_with c Exp_harness.Classic_blpp))
            .Exp_harness.meas
            .iter2
        in
        let edge =
          (Exp_cache.run c (cfg_with c Exp_harness.Perfect_edge))
            .Exp_harness.meas
            .iter2
        in
        ( bench_name c,
          [ Exp_report.overhead ~base blpp; Exp_report.overhead ~base edge ] ))
      caches
  in
  let nth_col i = List.map (fun (_, vs) -> List.nth vs i) rows in
  {
    id = "tab-blpp";
    title = "Classic Ball-Larus instrumentation overhead (§2.2 context)";
    unit_ = "% overhead vs base";
    header = [ "BLPP paths"; "BL edges" ];
    rows;
    summary =
      col_summary "BLPP paths" (nth_col 0) @ col_summary "BL edges" (nth_col 1);
    paper = "Ball-Larus path 31% avg, edge 16% avg (SPEC95)";
  }

let tab_smart caches =
  let cfg zero numbering =
    Exp_harness.Pep_profiled { sampling = Sampling.never; zero; numbering }
  in
  let rows =
    List.map
      (fun c ->
        let base = (Exp_cache.base c).Exp_harness.meas.iter2 in
        let hot = (Exp_cache.instr_only c).Exp_harness.meas.iter2 in
        let cold =
          (Exp_cache.run c (cfg_with c (cfg `Coldest `Smart)))
            .Exp_harness.meas
            .iter2
        in
        let bl =
          (Exp_cache.run c (cfg_with c (cfg `Hottest `Ball_larus)))
            .Exp_harness.meas
            .iter2
        in
        ( bench_name c,
          [
            Exp_report.overhead ~base hot;
            Exp_report.overhead ~base cold;
            Exp_report.overhead ~base bl;
          ] ))
      caches
  in
  let nth_col i = List.map (fun (_, vs) -> List.nth vs i) rows in
  {
    id = "tab-smart";
    title = "Smart path numbering ablation (§3.4): where the zero arm goes";
    unit_ = "% overhead vs base (instrumentation only)";
    header = [ "zero=hottest"; "zero=coldest"; "ball-larus" ];
    rows;
    summary =
      [
        ("zero=hottest mean", Exp_report.mean (nth_col 0));
        ("zero=coldest mean", Exp_report.mean (nth_col 1));
        ("ball-larus mean", Exp_report.mean (nth_col 2));
      ];
    paper = "hot-edge placement raises instr overhead 1.1% -> 2.5%";
  }

let tab_ag caches =
  let rows =
    List.map
      (fun c ->
        let base = (Exp_cache.base c).Exp_harness.meas.iter2 in
        let pep = Exp_cache.pep c ~samples:64 ~stride:17 in
        let ag =
          Exp_cache.run c
            (cfg_with c
               (Exp_harness.Pep_profiled
                  {
                    sampling = Sampling.arnold_grove ~samples:64 ~stride:17;
                    zero = `Hottest;
                    numbering = `Smart;
                  }))
        in
        ( bench_name c,
          [
            Exp_report.overhead ~base pep.Exp_harness.meas.iter2;
            Exp_report.overhead ~base ag.Exp_harness.meas.iter2;
            path_accuracy c pep;
            path_accuracy c ag;
          ] ))
      caches
  in
  let nth_col i = List.map (fun (_, vs) -> List.nth vs i) rows in
  {
    id = "tab-ag";
    title = "Simplified vs full Arnold-Grove striding (§4.4)";
    unit_ = "% overhead / % accuracy";
    header = [ "ov PEP(64,17)"; "ov AG(64,17)"; "acc PEP"; "acc AG" ];
    rows;
    summary =
      [
        ("overhead PEP mean", Exp_report.mean (nth_col 0));
        ("overhead AG mean", Exp_report.mean (nth_col 1));
        ("accuracy PEP mean", Exp_report.mean (nth_col 2));
        ("accuracy AG mean", Exp_report.mean (nth_col 3));
      ];
    paper =
      "striding after the first sample is not a good overhead-accuracy \
       trade-off for PEP";
  }

let tab_header caches =
  let rows =
    List.map
      (fun c ->
        let env = Exp_cache.env c in
        let base = (Exp_cache.base c).Exp_harness.meas.iter2 in
        let header_mode = (Exp_cache.instr_only c).Exp_harness.meas.iter2 in
        let back_mode =
          (Exp_cache.run c (cfg_with c Exp_harness.Instr_back_edge))
            .Exp_harness.meas
            .iter2
        in
        (* static path-count comparison over the advised-opt methods *)
        let count mode =
          let st = Machine.create ~seed:env.seed env.program in
          let plans =
            Profile_hooks.make_plans ~mode
              ~number:(Exp_harness.advice_number env)
              st
          in
          Array.iteri
            (fun m level -> if level < 0 then plans.(m) <- None)
            env.advice.Advice.levels;
          Array.fold_left
            (fun acc plan ->
              match plan with
              | Some (p : Instrument.t) ->
                  acc + Numbering.n_paths p.numbering
              | None -> acc)
            0 plans
        in
        ( bench_name c,
          [
            Exp_report.overhead ~base header_mode;
            Exp_report.overhead ~base back_mode;
            float_of_int (count Dag.Loop_header);
            float_of_int (count Dag.Back_edge);
          ] ))
      caches
  in
  let nth_col i = List.map (fun (_, vs) -> List.nth vs i) rows in
  {
    id = "tab-header";
    title = "Path-ending ablation (§3.2): loop headers vs back edges";
    unit_ = "% overhead (r-maintenance) / static path counts";
    header = [ "ov header"; "ov back-edge"; "paths hdr"; "paths back" ];
    rows;
    summary =
      [
        ("header-mode ov mean", Exp_report.mean (nth_col 0));
        ("back-edge ov mean", Exp_report.mean (nth_col 1));
      ];
    paper = "difference believed minor (affects first path through a loop)";
  }

let tab_onetime caches =
  let rows =
    List.map
      (fun c ->
        let env = Exp_cache.env c in
        let actual = Exp_cache.perfect_edges_of_paths c in
        let acc =
          100.
          *. Accuracy.relative_overlap ~actual
               ~estimated:env.advice.Advice.profile
        in
        (bench_name c, [ acc ]))
      caches
  in
  let col = List.map (fun (_, vs) -> List.hd vs) rows in
  {
    id = "tab-onetime";
    title = "One-time (baseline) edge profile accuracy (§6.5)";
    unit_ = "% relative overlap vs perfect continuous";
    header = [ "one-time" ];
    rows;
    summary =
      [
        ("one-time mean", Exp_report.mean col);
        ("one-time min", List.fold_left Float.min infinity col);
      ];
    paper = "97% avg, 86% worst";
  }

let fig10 caches =
  let rows =
    List.map
      (fun c ->
        let table = Exp_cache.perfect_edges_of_paths c in
        let onetime = (Exp_cache.base c).Exp_harness.meas.iter2 in
        let with_table t =
          {
            (cfg_with c Exp_harness.Base) with
            Exp_harness.opt_profile = Driver.Fixed t;
          }
        in
        let continuous =
          (Exp_cache.run c (with_table table)).Exp_harness.meas.iter2
        in
        let flipped =
          (Exp_cache.run c (with_table (Edge_profile.flip_table table)))
            .Exp_harness.meas
            .iter2
        in
        ( bench_name c,
          [
            Exp_report.overhead ~base:onetime continuous;
            Exp_report.overhead ~base:onetime flipped;
          ] ))
      caches
  in
  let nth_col i = List.map (fun (_, vs) -> List.nth vs i) rows in
  {
    id = "fig10";
    title = "Driving optimization: continuous and flipped vs one-time profile";
    unit_ = "% vs one-time (negative = faster)";
    header = [ "continuous"; "flipped" ];
    rows;
    summary =
      [
        ("continuous mean", Exp_report.mean (nth_col 0));
        ("flipped mean", Exp_report.mean (nth_col 1));
      ];
    paper = "continuous ~0.9% faster on average; flipped significantly slower";
  }

let fig11 ?(trials = 15) caches =
  let rows =
    List.map
      (fun c ->
        let env = Exp_cache.env c in
        let totals profiling =
          List.init trials (fun trial ->
              float_of_int
                (Exp_harness.adaptive_total ~config:(cfg_with c profiling)
                   ~trial env))
        in
        let base = Exp_report.median (totals Exp_harness.Base) in
        let pep = Exp_report.median (totals Exp_harness.pep_default) in
        (bench_name c, [ 100. *. ((pep /. base) -. 1.) ]))
      caches
  in
  let col = List.map (fun (_, vs) -> List.hd vs) rows in
  {
    id = "fig11";
    title =
      "Adaptive methodology: PEP(64,17) collecting profiles and driving \
       optimization";
    unit_ = "% overhead vs base adaptive (median of trials)";
    header = [ "PEP(64,17)" ];
    rows;
    summary = col_summary "PEP(64,17)" col;
    paper = "1.3% avg, 3.2% max: costs outweigh benefits on predictable programs";
  }

let tab_inline caches =
  let rows =
    List.map
      (fun c ->
        let env = Exp_cache.env c in
        let base = Exp_cache.base c in
        (* clean run measuring inlined execution, no profiling *)
        let inline_run =
          Exp_cache.run c
            { (cfg_with c Exp_harness.Base) with Exp_harness.inline = true }
        in
        (* combined run: PEP and a perfect profiler over the inlined code *)
        let driver, pep, truth =
          Exp_harness.replay_transformed_with_truth
            ~config:{ (Exp_cache.config c) with Exp_harness.inline = true }
            env
        in
        let n_branches =
          Profiler.n_branches_resolver truth.Profiler.plans truth.Profiler.table
        in
        let acc =
          100.
          *. Accuracy.wall_path_accuracy ~n_branches ~actual:truth.Profiler.table
               ~estimated:pep.Pep.paths ()
        in
        ( bench_name c,
          [
            Exp_report.overhead ~base:base.Exp_harness.meas.iter2
              inline_run.Exp_harness.meas.iter2;
            Exp_report.overhead ~base:base.Exp_harness.meas.iter1
              inline_run.Exp_harness.meas.iter1;
            acc;
            float_of_int (Driver.inlined_sites driver);
          ] ))
      caches
  in
  let nth_col i = List.map (fun (_, vs) -> List.nth vs i) rows in
  {
    id = "tab-inline";
    title = "Inlining extension (§4.3): profiling across inlined code";
    unit_ = "% exec delta / % iter1 delta / % PEP accuracy / call sites";
    header = [ "exec"; "iter1"; "acc PEP"; "sites" ];
    rows;
    summary =
      [
        ("exec delta mean", Exp_report.mean (nth_col 0));
        ("iter1 delta mean", Exp_report.mean (nth_col 1));
        ("accuracy mean", Exp_report.mean (nth_col 2));
      ];
    paper =
      "inlined branches share the callee's bytecode counters; inlined \
       uninterruptible loops lose their header sample points";
  }

let tab_edgetruth caches =
  let rows =
    List.map
      (fun c ->
        let pep_run = Exp_cache.pep c ~samples:64 ~stride:17 in
        let pep = Option.get pep_run.Exp_harness.pep in
        let vs_paths =
          100.
          *. Accuracy.relative_overlap
               ~actual:(Exp_cache.perfect_edges_of_paths c)
               ~estimated:pep.Pep.edges
        in
        let edge_run =
          Exp_cache.run c (cfg_with c Exp_harness.Perfect_edge)
        in
        let etable = (Option.get edge_run.Exp_harness.pedges).Profiler.etable in
        let vs_edges =
          100. *. Accuracy.relative_overlap ~actual:etable ~estimated:pep.Pep.edges
        in
        (bench_name c, [ vs_paths; vs_edges ]))
      caches
  in
  let nth_col i = List.map (fun (_, vs) -> List.nth vs i) rows in
  {
    id = "tab-edgetruth";
    title =
      "Edge-accuracy ground truth (§6.4): path-derived vs direct edge \
       instrumentation";
    unit_ = "% relative overlap, PEP(64,17)";
    header = [ "vs path-derived"; "vs instr-edge" ];
    rows;
    summary =
      [
        ("vs path-derived mean", Exp_report.mean (nth_col 0));
        ("vs instr-edge mean", Exp_report.mean (nth_col 1));
      ];
    paper =
      "comparing against instrumentation-based edge profiling costs ~2% \
       (96% -> 94%): code without yieldpoints is invisible to PEP";
  }

(* Wall accuracy of an arbitrary estimated table against the cached
   perfect path profile. *)
let accuracy_vs_perfect c estimated =
  let perfect = Option.get (Exp_cache.perfect_path c).Exp_harness.ppaths in
  let n_branches =
    Profiler.n_branches_resolver perfect.Profiler.plans perfect.Profiler.table
  in
  100.
  *. Accuracy.wall_path_accuracy ~n_branches ~actual:perfect.Profiler.table
       ~estimated ()

let tab_showdown caches =
  let rows =
    List.map
      (fun c ->
        let perfect = Option.get (Exp_cache.perfect_path c).Exp_harness.ppaths in
        let estimated =
          Path_estimate.table ~k:512 ~plans:perfect.Profiler.plans
            (Exp_cache.perfect_edges_of_paths c)
        in
        let from_edges = accuracy_vs_perfect c estimated in
        let pep_run = Exp_cache.pep c ~samples:64 ~stride:17 in
        let pep_acc =
          accuracy_vs_perfect c (Option.get pep_run.Exp_harness.pep).Pep.paths
        in
        (bench_name c, [ from_edges; pep_acc ]))
      caches
  in
  let nth_col i = List.map (fun (_, vs) -> List.nth vs i) rows in
  {
    id = "tab-showdown";
    title =
      "Edge profiling vs path profiling (ref [7]): hot paths predicted \
       from a perfect edge profile vs sampled by PEP";
    unit_ = "% Wall accuracy vs perfect paths";
    header = [ "from edges"; "PEP(64,17)" ];
    rows;
    summary =
      [
        ("from edges mean", Exp_report.mean (nth_col 0));
        ("PEP(64,17) mean", Exp_report.mean (nth_col 1));
      ];
    paper =
      "edge profiles miss correlated branches; real path profiles are \
       what path-based optimization needs";
  }

let hw_sizes = [ 256; 2048; 16384 ]

let tab_hardware caches =
  let rows =
    List.map
      (fun c ->
        let env = Exp_cache.env c in
        let accs =
          List.map
            (fun table_size ->
              let st = Machine.create ~seed:env.seed env.program in
              let hw =
                Hw_profiler.create ~table_size
                  ~number:(Exp_harness.advice_number env)
                  st
              in
              Exp_harness.mask_plans env (Hw_profiler.plans hw);
              let opts =
                {
                  Driver.mode = Replay env.advice;
                  opt_profile = Driver.From_baseline;
                  pep = None;
                  inline = false;
                  unroll = false;
                  verify = true;
                  deep_verify = false;
                  engine = (Exp_cache.config c).Exp_harness.engine;
                  tiers = (Exp_cache.config c).Exp_harness.tiers;
                  telemetry = (Exp_cache.config c).Exp_harness.telemetry;
                  faults = None;
                }
              in
              let d = Driver.create ~extra_hooks:(Hw_profiler.hooks hw) opts st in
              ignore (Driver.run d);
              ignore (Driver.run d);
              accuracy_vs_perfect c (Hw_profiler.to_path_profile hw))
            hw_sizes
        in
        (bench_name c, accs))
      caches
  in
  let nth_col i = List.map (fun (_, vs) -> List.nth vs i) rows in
  {
    id = "tab-hardware";
    title = "Hardware path profiler comparator (§2.4, ref [28])";
    unit_ = "% Wall accuracy vs perfect paths, by hot-path-table size";
    header = List.map (fun s -> Fmt.str "%d slots" s) hw_sizes;
    rows;
    summary =
      List.mapi
        (fun i s -> (Fmt.str "%d slots mean" s, Exp_report.mean (nth_col i)))
        hw_sizes;
    paper = "above 90% accuracy with a sufficiently large hardware table";
  }

let tab_onetime_paths caches =
  let rows =
    List.map
      (fun c ->
        let env = Exp_cache.env c in
        let base = Exp_cache.base c in
        (* structural-path-profiling style: instrument only the start of
           execution, then drop the instrumentation *)
        let cutoff = base.Exp_harness.meas.iter2 * 15 / 100 in
        let st = Machine.create ~seed:env.seed env.program in
        let plans =
          Profile_hooks.make_plans ~mode:Dag.Loop_header
            ~number:(Exp_harness.advice_number env)
            st
        in
        Exp_harness.mask_plans env plans;
        let table =
          Path_profile.create_table ~n_methods:(Program.n_methods env.program)
        in
        let on_path_end (st : Machine.t) (frame : Interp.frame) ~path_id =
          if st.cycles < cutoff then
            Path_profile.incr table.(frame.Interp.fmeth) path_id
        in
        let hooks =
          Profile_hooks.path_hooks ~plans ~count_cost:`Hash ~on_path_end ()
        in
        let opts =
          {
            Driver.mode = Replay env.advice;
            opt_profile = Driver.From_baseline;
            pep = None;
            inline = false;
            unroll = false;
            verify = true;
            deep_verify = false;
            engine = (Exp_cache.config c).Exp_harness.engine;
            tiers = (Exp_cache.config c).Exp_harness.tiers;
            telemetry = (Exp_cache.config c).Exp_harness.telemetry;
            faults = None;
          }
        in
        let d = Driver.create ~extra_hooks:hooks opts st in
        ignore (Driver.run d);
        ignore (Driver.run d);
        let onetime = accuracy_vs_perfect c table in
        let pep_run = Exp_cache.pep c ~samples:64 ~stride:17 in
        let pep_acc =
          accuracy_vs_perfect c (Option.get pep_run.Exp_harness.pep).Pep.paths
        in
        (bench_name c, [ onetime; pep_acc ]))
      caches
  in
  let nth_col i = List.map (fun (_, vs) -> List.nth vs i) rows in
  {
    id = "tab-onetime-paths";
    title =
      "One-time path profiling (§2.1, structural path profiling) vs \
       continuous PEP";
    unit_ = "% Wall accuracy vs perfect paths";
    header = [ "one-time"; "PEP(64,17)" ];
    rows;
    summary =
      [
        ("one-time mean", Exp_report.mean (nth_col 0));
        ("PEP(64,17) mean", Exp_report.mean (nth_col 1));
      ];
    paper =
      "a one-time profile may not capture whole-program behaviour; \
       phased programs punish it";
  }

let tab_unroll caches =
  let rows =
    List.map
      (fun c ->
        let env = Exp_cache.env c in
        let base = Exp_cache.base c in
        let unrolled_run =
          Exp_cache.run c
            { (cfg_with c Exp_harness.Base) with Exp_harness.unroll = true }
        in
        let driver, pep, truth =
          Exp_harness.replay_transformed_with_truth
            ~config:
              {
                (Exp_cache.config c) with
                Exp_harness.inline = false;
                unroll = true;
              }
            env
        in
        let n_branches =
          Profiler.n_branches_resolver truth.Profiler.plans truth.Profiler.table
        in
        let acc =
          100.
          *. Accuracy.wall_path_accuracy ~n_branches ~actual:truth.Profiler.table
               ~estimated:pep.Pep.paths ()
        in
        ( bench_name c,
          [
            Exp_report.overhead ~base:base.Exp_harness.meas.iter2
              unrolled_run.Exp_harness.meas.iter2;
            acc;
            float_of_int (Driver.unrolled_loops driver);
          ] ))
      caches
  in
  let nth_col i = List.map (fun (_, vs) -> List.nth vs i) rows in
  {
    id = "tab-unroll";
    title = "Loop unrolling extension (§4.3): duplicated branches, longer paths";
    unit_ = "% exec delta / % PEP accuracy / loops unrolled";
    header = [ "exec"; "acc PEP"; "loops" ];
    rows;
    summary =
      [
        ("exec delta mean", Exp_report.mean (nth_col 0));
        ("accuracy mean", Exp_report.mean (nth_col 1));
      ];
    paper =
      "unrolled branch copies share one bytecode counter pair; paths through an unrolled pair are twice as long";
  }

let registry : (string * (Exp_cache.t list -> figure)) list =
  [
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("tab-absolute", tab_absolute);
    ("fig10", fig10);
    ("fig11", fun caches -> fig11 caches);
    ("tab-perfect", tab_perfect);
    ("tab-blpp", tab_blpp);
    ("tab-smart", tab_smart);
    ("tab-ag", tab_ag);
    ("tab-header", tab_header);
    ("tab-onetime", tab_onetime);
    ("tab-edgetruth", tab_edgetruth);
    ("tab-inline", tab_inline);
    ("tab-unroll", tab_unroll);
    ("tab-showdown", tab_showdown);
    ("tab-hardware", tab_hardware);
    ("tab-onetime-paths", tab_onetime_paths);
  ]

let ids = List.map fst registry
let by_id id = List.assoc id registry

(* The cacheable configurations a figure consults, enumerated so a job
   pool can compute them up front.  Work that is not cache-mediated —
   fig11's adaptive trials, the combined truth replays of
   tab-inline/tab-unroll, the direct drivers of tab-hardware /
   tab-header / tab-onetime-paths — is not representable here and still
   runs when the figure is built. *)
let prefetch_configs c id =
  let cw p = cfg_with c p in
  let pep (s, t) =
    cw
      (Exp_harness.Pep_profiled
         {
           sampling = Sampling.pep ~samples:s ~stride:t;
           zero = `Hottest;
           numbering = `Smart;
         })
  in
  let never zero numbering =
    cw (Exp_harness.Pep_profiled { sampling = Sampling.never; zero; numbering })
  in
  let instr = never `Hottest `Smart in
  let base = cw Exp_harness.Base in
  let perfect_path = cw Exp_harness.Perfect_path in
  let perfect_edge = cw Exp_harness.Perfect_edge in
  match id with
  | "fig6" -> base :: instr :: List.map pep pep_configs
  | "fig7" -> [ base; pep (64, 17) ]
  | "fig8" | "fig9" -> perfect_path :: List.map pep pep_configs
  | "tab-absolute" ->
      perfect_path :: List.map pep [ (64, 17); (256, 17); (1024, 17) ]
  | "fig10" -> [ base; perfect_path ]
  | "fig11" -> []
  | "tab-perfect" -> [ base; perfect_path; perfect_edge ]
  | "tab-blpp" -> [ base; cw Exp_harness.Classic_blpp; perfect_edge ]
  | "tab-smart" ->
      [ base; instr; never `Coldest `Smart; never `Hottest `Ball_larus ]
  | "tab-ag" ->
      [
        base;
        pep (64, 17);
        cw
          (Exp_harness.Pep_profiled
             {
               sampling = Sampling.arnold_grove ~samples:64 ~stride:17;
               zero = `Hottest;
               numbering = `Smart;
             });
        perfect_path;
      ]
  | "tab-header" -> [ base; instr; cw Exp_harness.Instr_back_edge ]
  | "tab-onetime" -> [ perfect_path ]
  | "tab-edgetruth" -> [ pep (64, 17); perfect_path; perfect_edge ]
  | "tab-inline" -> [ base; { base with Exp_harness.inline = true } ]
  | "tab-unroll" -> [ base; { base with Exp_harness.unroll = true } ]
  | "tab-showdown" -> [ perfect_path; pep (64, 17) ]
  | "tab-hardware" -> [ perfect_path ]
  | "tab-onetime-paths" -> [ base; perfect_path; pep (64, 17) ]
  | _ -> []

(* Second-stage configurations derivable only from first-stage results:
   fig10 replays under Fixed opt-profile tables built from the perfect
   path profile.  Call after the prefetched runs are installed (the
   table is computed serially if they are not). *)
let derived_configs c id =
  match id with
  | "fig10" ->
      let table = Exp_cache.perfect_edges_of_paths c in
      let with_table t =
        {
          (cfg_with c Exp_harness.Base) with
          Exp_harness.opt_profile = Driver.Fixed t;
        }
      in
      [ with_table table; with_table (Edge_profile.flip_table table) ]
  | _ -> []
