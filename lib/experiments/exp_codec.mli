(** Versioned codecs for persisted run payloads.

    {!Exp_store} frames every on-disk entry through a [codec]: v2 is the
    current compact binary format, v1 the legacy line-oriented text
    format, kept readable so caches written before the binary store
    migrate transparently.  Both protect their content with an MD5
    digest and embed the composite identity key, so a damaged entry
    fails the digest check and a stale one fails the key comparison —
    always as a structured {!Dcg.parse_error}, never a silent miss.

    The {!Bin} submodule exposes the binary primitives (zigzag varints,
    length-prefixed strings, digest trailer) so other stores — the
    fleet's profile segments ({!Fleet_store}) — share one wire
    vocabulary. *)

(** Everything needed to rebuild an [Exp_harness.run] without executing
    the application: the measurement, the sample count, and the
    collected profile tables in their [to_lines] serialization. *)
type payload = {
  iter1 : int;
  iter2 : int;
  compile : int;
  checksum : int;
  n_samples : int;
  pep_paths : string list;
  pep_edges : string list;
  ppaths : string list;
  pedges : string list;
}

(** Low-level binary wire format: unsigned LEB128 varints over
    zigzag-mapped ints (small magnitudes stay short, negatives legal),
    length-prefixed strings, and an MD5 trailer over everything that
    precedes it.  Readers are bounds-checked: malformed input raises
    {!Bin.Malformed}, which the codecs turn into a structured error. *)
module Bin : sig
  type writer

  val writer : unit -> writer
  val byte : writer -> int -> unit

  (** Append bytes verbatim, no length prefix (file magics). *)
  val raw : writer -> string -> unit

  val int : writer -> int -> unit
  val str : writer -> string -> unit

  (** The accumulated bytes plus a 16-byte raw MD5 digest of them. *)
  val contents_with_digest : writer -> string

  exception Malformed of string

  type reader

  (** [reader ~pos s] reads [s] from [pos] up to [limit] (default: end
      of [s]). *)
  val reader : ?pos:int -> ?limit:int -> string -> reader

  val rbyte : reader -> int
  val rint : reader -> int
  val rstr : reader -> string
  val pos : reader -> int
  val at_end : reader -> bool

  (** Verify the 16-byte digest trailer of [s] over [s[0..len-17]];
      [false] when too short or mismatched. *)
  val check_digest : string -> bool
end

(** MD5 hex over the lines joined with ["\n"] — the legacy text
    format's integrity trailer (exposed so tests can forge v1 entries
    with valid digests). *)
val digest_lines : string list -> string

type codec = {
  version : int;
  name : string;
  encode : key:string -> payload -> string;
      (** full file bytes for a payload under its identity key *)
  decode :
    file:string -> key:string -> string -> (payload, Dcg.parse_error) result;
      (** decode full file bytes, verifying digest, shape and key;
          [file] only labels diagnostics *)
}

(** The legacy line-oriented text format ([pepsim-run-cache v1]/[v2]
    files).  Decoding tolerates the historical ["store-v<N>|"] key
    prefix; encoding writes it, so forged legacy entries in tests are
    byte-faithful. *)
val v1_text : codec

(** The compact binary format: profile lines whose fields are all
    integers are packed as varint rows; anything else falls back to
    length-prefixed strings, so [encode]∘[decode] is the identity on
    arbitrary payloads. *)
val v2_binary : codec

(** The codec {!Exp_store.save} writes with (currently {!v2_binary}). *)
val current : codec

(** Identify which codec wrote [contents] (by magic, then version). *)
val sniff :
  string -> [ `Codec of codec | `Unknown_version of int | `Not_a_store_file ]
