(** Memoized experiment runs.

    Several figures share configurations (the PEP(64,17) replay run feeds
    Fig. 6 overhead, Fig. 8 path accuracy and Fig. 9 edge accuracy); the
    cache executes each distinct configuration once per benchmark. *)

type t

val create : Exp_harness.env -> t
val env : t -> Exp_harness.env

(** Run (or recall) a configuration.  [key] identifies the configuration
    — callers must use distinct keys for distinct
    [profiling]/[opt_profile] combinations. *)
val run :
  t ->
  ?opt_profile:Driver.opt_profile_source ->
  ?inline:bool ->
  ?unroll:bool ->
  key:string ->
  Exp_harness.profiling ->
  Exp_harness.run

(** The shared convenience runs. *)

val base : t -> Exp_harness.run
val pep : t -> samples:int -> stride:int -> Exp_harness.run
val instr_only : t -> Exp_harness.run
val perfect_path : t -> Exp_harness.run

(** Ground-truth edge profile derived from the perfect path profile
    (computed once). *)
val perfect_edges_of_paths : t -> Edge_profile.table

(** Every run executed so far with its configuration key, sorted by key —
    e.g. to sweep their {!Exp_harness.run.checks} after an experiment. *)
val all_runs : t -> (string * Exp_harness.run) list
