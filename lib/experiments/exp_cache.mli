(** Memoized experiment runs.

    Several figures share configurations (the PEP(64,17) replay run feeds
    Fig. 6 overhead, Fig. 8 path accuracy and Fig. 9 edge accuracy); the
    cache executes each distinct configuration once per benchmark,
    memoizing by {!Exp_harness.config_key} — every configuration field
    is part of the key, so distinct configurations never alias. *)

type t

(** [config] is the base configuration the convenience runs below (and
    {!config}-derived callers) build on — e.g. pass one carrying a
    telemetry sink to have every figure's runs traced. *)
val create : ?config:Exp_harness.config -> Exp_harness.env -> t

val env : t -> Exp_harness.env

(** The base configuration given to {!create} (default
    {!Exp_harness.default}); derive per-run configurations from it with
    record update. *)
val config : t -> Exp_harness.config

(** Run (or recall) a configuration. *)
val run : t -> Exp_harness.config -> Exp_harness.run

(** The shared convenience runs, derived from the base configuration. *)

val base : t -> Exp_harness.run
val pep : t -> samples:int -> stride:int -> Exp_harness.run
val instr_only : t -> Exp_harness.run
val perfect_path : t -> Exp_harness.run

(** Ground-truth edge profile derived from the perfect path profile
    (computed once). *)
val perfect_edges_of_paths : t -> Edge_profile.table

(** Every run executed so far with its configuration key, sorted by key —
    e.g. to sweep their {!Exp_harness.run.checks} after an experiment. *)
val all_runs : t -> (string * Exp_harness.run) list
