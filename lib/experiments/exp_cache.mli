(** Memoized experiment runs, with an optional persistent on-disk layer.

    Several figures share configurations (the PEP(64,17) replay run feeds
    Fig. 6 overhead, Fig. 8 path accuracy and Fig. 9 edge accuracy); the
    cache executes each distinct configuration once per benchmark,
    memoizing by {!Exp_harness.config_key} — every configuration field
    is part of the key, so distinct configurations never alias.

    With [cache_dir], completed runs are additionally persisted through
    {!Exp_store} under a composite identity (store version, workload,
    size, seed, digests of the compiled program and cost model, and the
    configuration key), and recalled on later sweeps by
    {!Exp_harness.rebuild} — zero application execution.  Stale or
    damaged entries surface as {!diagnostics} and are silently
    recomputed and overwritten, never trusted or crashed on.  An
    unusable [cache_dir] (unwritable, or a path component that is not a
    directory) is reported the same way, once, at {!create} — runs
    still execute, they just are not persisted.

    Fault plans: a configuration whose plan
    {!Fault_plan.perturbs_execution} is never persisted (a rebuild's
    precompile order would re-order the live run's fault-decision
    stream); a [corrupt=P] plan additionally makes loads of persisted
    entries observe deliberate corruption with probability [P] — the
    entry is quarantined with a diagnostic and the run recomputed,
    exercising exactly the real digest-mismatch path. *)

type t

(** [config] is the base configuration the convenience runs below (and
    {!config}-derived callers) build on — e.g. pass one carrying a
    telemetry sink to have every figure's runs traced.  [cache_dir]
    (default: none, memory only) enables the persistent layer; it is
    prepared with {!Exp_store.prepare_dir}, any failure becoming the
    cache's first diagnostic. *)
val create : ?config:Exp_harness.config -> ?cache_dir:string -> Exp_harness.env -> t

val env : t -> Exp_harness.env

(** The base configuration given to {!create} (default
    {!Exp_harness.default}); derive per-run configurations from it with
    record update. *)
val config : t -> Exp_harness.config

(** The directory given to {!create}, if any. *)
val cache_dir : t -> string option

(** Run (or recall) a configuration. *)
val run : t -> Exp_harness.config -> Exp_harness.run

(** The memoized run, if this configuration has one (never computes;
    does not count as a hit). *)
val find_run : t -> Exp_harness.config -> Exp_harness.run option

(** {2 Split compute/install — the job-pool protocol}

    [run t c] is [install t c (compute t c)] plus memo lookup.  A pool
    shards the [compute]s (worker domains: execute or load from disk —
    touches no shared mutable state) and then [install]s every outcome
    from the main domain in deterministic key order. *)

type outcome

val compute : t -> Exp_harness.config -> outcome
val install : t -> Exp_harness.config -> outcome -> Exp_harness.run

(** {2 Accounting} *)

type stats = {
  memory_hits : int;  (** recalled from the in-process memo table *)
  disk_hits : int;  (** rebuilt from a persisted entry, no execution *)
  executed : int;  (** actually simulated *)
  store_errors : int;  (** stale/corrupt/unwritable entries (see {!diagnostics}) *)
  migrated : int;  (** legacy-codec entries re-encoded with the current codec *)
}

val stats : t -> stats

(** Structured reports for every store entry that had to be recomputed
    (stale key, corrupt content, unreadable file) or could not be
    written; oldest first.  Same shape as [Advice.of_lines] errors. *)
val diagnostics : t -> Dcg.parse_error list

(** Where [config] would be persisted ([None] if no [cache_dir], or the
    configuration is not persistable — [From_pep] opt-profiles consult
    live sampler state, and execution-perturbing fault plans re-order
    the decision stream under rebuild; both are always re-executed). *)
val store_file : t -> Exp_harness.config -> string option

(** Like {!store_file}, but also the composite identity key the entry
    is (or would be) persisted under — e.g. to forge or inspect entries
    in tests and migration tooling. *)
val store_slot : t -> Exp_harness.config -> (string * string) option

(** {2 The shared convenience runs, derived from the base configuration} *)

val base : t -> Exp_harness.run
val pep : t -> samples:int -> stride:int -> Exp_harness.run
val instr_only : t -> Exp_harness.run
val perfect_path : t -> Exp_harness.run

(** Ground-truth edge profile derived from the perfect path profile
    (computed once). *)
val perfect_edges_of_paths : t -> Edge_profile.table

(** Every run executed so far with its configuration key, sorted by key —
    e.g. to sweep their {!Exp_harness.run.checks} after an experiment. *)
val all_runs : t -> (string * Exp_harness.run) list
