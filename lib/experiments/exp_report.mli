(** Formatting helpers for experiment output: aligned text tables and the
    summary statistics the paper reports. *)

(** Print a table with a header row, aligning columns. *)
val table : header:string list -> string list list -> unit

val section : string -> unit

(** Arithmetic mean; 0 on empty input. *)
val mean : float list -> float

val geomean : float list -> float
val median : float list -> float

(** ["+1.23%"] style overhead formatting. *)
val pct : float -> string

(** Overhead of [x] relative to [base], in percent. *)
val overhead : base:int -> int -> float
