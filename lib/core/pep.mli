(** PEP — continuous hybrid path and edge profiling (the paper's
    contribution).

    PEP runs the cheap half of Ball-Larus instrumentation all the time:
    the path register is maintained on every executed edge and reset at
    every path start, but nothing is ever stored.  At a path-end
    yieldpoint (loop header or method exit) the yieldpoint handler
    receives the completed path number; when a sampling burst is active
    ({!Sampling}), the handler increments the path's frequency, expands
    the path to its CFG edges (memoized after the first sample, paper
    §4.3), and bumps the taken/not-taken counter of every branch on the
    path — yielding both a path profile and an edge profile.

    Instrumentation placement is profile-guided (paper §3.4): with
    {!smart_number} the smart path numbering assigns 0 to each block's
    hottest outgoing edge, so hot arms carry no [r += v] at all. *)

type t = {
  hooks : Interp.hooks;
      (** compose after a {!Tick} driver, which supplies the tick token *)
  paths : Path_profile.table;
  edges : Edge_profile.table;
  plans : Profile_hooks.plans;
  sampler : Sampling.t;
}

(** [create ?eager ?number ~sampling machine].  [number] picks the
    per-method path numbering (default Ball-Larus); use {!smart_number}
    to enable profile-guided placement.  [eager:false] starts with no
    method instrumented — an adaptive VM installs plans into [plans] as
    it opt-compiles methods (clearing the method's slot in [paths] when
    it re-instruments, since path ids change with the numbering).

    With [telemetry], the profiler maintains the [pep.samples.taken] /
    [pep.samples.dropped] / [pep.samples.skipped] /
    [pep.path.promotions] / [pep.table_overflow] counters and the
    [pep.path.branches] histogram, and emits a ["sample"]-category
    trace instant per taken/dropped sample.  All recording is
    host-side: simulated cycle charges are identical with or without a
    sink.

    With [faults], the profiler degrades instead of growing without
    bound: the plan's [path-cap]/[edge-cap] bound the profile tables
    (drops counted in [pep.table_overflow] and the injector's
    [degrade.path_overflow]/[degrade.edge_overflow]), and a
    [sample-overrun] fault discards the sample after the handler's
    cycles are charged ([degrade.sample_dropped]) — the path register
    was already reset by the instrumentation steps, so the next path
    records normally.  An empty or [noop] plan changes nothing. *)
val create :
  ?telemetry:Telemetry.t ->
  ?faults:Fault_injector.t ->
  ?eager:bool ->
  ?number:(int -> Dag.t -> Numbering.t) ->
  sampling:Sampling.config ->
  Machine.t ->
  t

(** Smart path numbering driven by an existing edge profile: a DAG
    edge's frequency is its branch arm's counter (0 for jumps, dummies,
    and never-seen branches).  [zero] selects the ablation axis:
    [`Hottest] (default, PPP's choice) leaves hot arms uninstrumented;
    [`Coldest] deliberately instruments hot arms (paper §3.4 reports
    this costs about 1.4% extra). *)
val smart_number :
  ?zero:[ `Hottest | `Coldest ] ->
  Edge_profile.table ->
  int ->
  Dag.t ->
  Numbering.t

(** As {!smart_number}, for a single method's profile. *)
val smart_number_profile :
  ?zero:[ `Hottest | `Coldest ] -> Edge_profile.t -> Dag.t -> Numbering.t

(** Samples taken so far. *)
val n_samples : t -> int

(** Paths this configuration can profile / total methods (methods with
    too many paths or no yieldpoints are skipped). *)
val n_instrumented : t -> int * int
