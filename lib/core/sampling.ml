type config = { samples : int; stride : int; full_ag : bool }

let pep ~samples ~stride =
  assert (samples >= 1 && stride >= 1);
  { samples; stride; full_ag = false }

let timer_based = pep ~samples:1 ~stride:1
let never = { samples = 0; stride = 1; full_ag = false }

let arnold_grove ~samples ~stride =
  assert (samples >= 1 && stride >= 1);
  { samples; stride; full_ag = true }

let name c =
  if c.samples = 0 then "instr-only"
  else Fmt.str "%s(%d,%d)" (if c.full_ag then "AG" else "PEP") c.samples c.stride

type t = {
  config : config;
  mutable rotation : int;  (* next initial skip amount, in [0, stride) *)
  mutable samples_left : int;  (* 0 = inactive *)
  mutable skip_left : int;
  mutable pending : bool;  (* a tick arrived mid-burst *)
  mutable taken : int;
  mutable skipped : int;
  mutable bursts : int;
}

let create config =
  {
    config;
    rotation = 0;
    samples_left = 0;
    skip_left = 0;
    pending = false;
    taken = 0;
    skipped = 0;
    bursts = 0;
  }

let start_burst t =
  t.samples_left <- t.config.samples;
  t.skip_left <- t.rotation;
  t.rotation <- (t.rotation + 1) mod t.config.stride;
  t.bursts <- t.bursts + 1

let activate t =
  if t.config.samples = 0 then ()
  else if t.samples_left > 0 then t.pending <- true
  else start_burst t

let active t = t.samples_left > 0

let step t =
  assert (t.samples_left > 0);
  if t.skip_left > 0 then begin
    t.skip_left <- t.skip_left - 1;
    t.skipped <- t.skipped + 1;
    `Skip
  end
  else begin
    t.samples_left <- t.samples_left - 1;
    t.taken <- t.taken + 1;
    if t.samples_left > 0 then begin
      if t.config.full_ag then t.skip_left <- t.config.stride - 1
    end
    else if t.pending then begin
      t.pending <- false;
      start_burst t
    end;
    `Take
  end

let stats t = (t.taken, t.skipped, t.bursts)
