(** Sampling strategies (paper §4.4, Figure 5).

    [PEP(SAMPLES, STRIDE)] is simplified Arnold-Grove sampling: after a
    timer tick the sampler strides over 0..STRIDE-1 sample opportunities
    (the skip amount rotates across ticks to defeat timer bias), then
    takes SAMPLES consecutive samples.  [PEP(1,1)] degenerates to plain
    timer-based sampling.  Full Arnold-Grove — striding between {e every}
    sample — is provided as the ablation the paper argues against.

    A sample opportunity is a path-end yieldpoint.  The burst is driven
    by internal state, so it keeps running after the tick driver rearms
    the timer, matching Arnold-Grove's set-rather-than-reset flag. *)

type config = {
  samples : int;  (** samples taken per timer tick *)
  stride : int;  (** maximum stride (1 = never skip) *)
  full_ag : bool;  (** stride between every sample, not just the first *)
}

(** [PEP(samples, stride)] with simplified striding. *)
val pep : samples:int -> stride:int -> config

(** Plain timer-based sampling, [PEP(1,1)]. *)
val timer_based : config

(** Never sample: measures PEP's always-on instrumentation alone. *)
val never : config

(** Full Arnold-Grove: [AG(samples, stride)]. *)
val arnold_grove : samples:int -> stride:int -> config

(** ["PEP(64,17)"], ["AG(64,17)"]. *)
val name : config -> string

type t

val create : config -> t

(** Begin a burst (a timer tick was observed).  If a burst is already
    running, the request is remembered and a fresh burst starts when the
    current one drains. *)
val activate : t -> unit

(** Is the sampler currently consuming sample opportunities? *)
val active : t -> bool

(** Consume one sample opportunity.  [`Skip] while striding, [`Take]
    when the opportunity is sampled.  Calling when inactive is a bug. *)
val step : t -> [ `Skip | `Take ]

(** Opportunities sampled / skipped / bursts started so far. *)
val stats : t -> int * int * int
