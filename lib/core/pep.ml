type t = {
  hooks : Interp.hooks;
  paths : Path_profile.table;
  edges : Edge_profile.table;
  plans : Profile_hooks.plans;
  sampler : Sampling.t;
}

let smart_number_profile ?(zero = `Hottest) (profile : Edge_profile.t) dag =
  let freq (e : Dag.edge) =
    match e.origin with
    | Dag.Real { attr = Cfg.Taken br; _ } -> (
        match Edge_profile.counter profile br with
        | Some c -> c.Edge_profile.taken
        | None -> 0)
    | Dag.Real { attr = Cfg.Not_taken br; _ } -> (
        match Edge_profile.counter profile br with
        | Some c -> c.Edge_profile.not_taken
        | None -> 0)
    | Dag.Real { attr = Cfg.Seq; _ } | Dag.From_entry _ | Dag.To_exit _ -> 0
  in
  Numbering.smart ~zero ~freq dag

let smart_number ?zero (profile : Edge_profile.table) midx dag =
  smart_number_profile ?zero profile.(midx) dag

let branch_count edges =
  List.length
    (List.filter
       (fun (ce : Cfg.edge) ->
         match ce.attr with
         | Cfg.Taken _ | Cfg.Not_taken _ -> true
         | Cfg.Seq -> false)
       edges)

(* PEP-level telemetry.  Counters and instants are recorded host-side
   only; everything simulated-cycle-visible in the hooks below is
   unconditional and identical whether or not a sink is attached. *)
type tstats = {
  taken : Metrics.counter;
  dropped : Metrics.counter;
  skipped : Metrics.counter;
  promotions : Metrics.counter;
  overflowed : Metrics.counter;
  branches : Metrics.histogram;
  tel : Telemetry.t;
}

let create ?telemetry ?faults ?(eager = true)
    ?(number = fun _ dag -> Numbering.ball_larus dag) ~sampling st =
  let stats =
    match telemetry with
    | None -> None
    | Some tel ->
        let m = Telemetry.metrics tel in
        Some
          {
            taken = Metrics.counter m "pep.samples.taken";
            dropped = Metrics.counter m "pep.samples.dropped";
            skipped = Metrics.counter m "pep.samples.skipped";
            promotions = Metrics.counter m "pep.path.promotions";
            overflowed = Metrics.counter m "pep.table_overflow";
            branches = Metrics.histogram m "pep.path.branches";
            tel;
          }
  in
  let sample_instant (st : Machine.t) name meth path_id =
    match stats with
    | None -> ()
    | Some s ->
        Telemetry.instant s.tel ~ts:st.Machine.cycles ~cat:"sample" ~name
          ~args:
            [
              ("method", st.Machine.methods.(meth).Machine.meth.Method.name);
              ("path", string_of_int path_id);
            ]
          ()
  in
  let n_methods = Array.length st.Machine.methods in
  let plans =
    if eager then Profile_hooks.make_plans ~mode:Dag.Loop_header ~number st
    else Array.make n_methods None
  in
  let paths = Path_profile.create_table ~n_methods in
  let edges = Edge_profile.create_table ~n_methods in
  (match faults with
  | None -> ()
  | Some inj ->
      let plan = Fault_injector.plan inj in
      Array.iter
        (fun t -> Path_profile.set_capacity t plan.Fault_plan.path_capacity)
        paths;
      Array.iter
        (fun t -> Edge_profile.set_capacity t plan.Fault_plan.edge_capacity)
        edges);
  let meth_name (st : Machine.t) meth =
    st.Machine.methods.(meth).Machine.meth.Method.name
  in
  let note_overflow (st : Machine.t) kind meth =
    (match stats with Some s -> Metrics.incr s.overflowed | None -> ());
    match faults with
    | None -> ()
    | Some inj ->
        Fault_injector.note_table_overflow inj ~ts:st.Machine.cycles ~kind
          ~meth:(meth_name st meth)
  in
  let sampler = Sampling.create sampling in
  let update_edges (st : Machine.t) meth path_edges =
    let before = Edge_profile.overflow edges.(meth) in
    List.iter
      (fun (ce : Cfg.edge) ->
        match ce.attr with
        | Cfg.Taken br -> Edge_profile.incr edges.(meth) br ~taken:true
        | Cfg.Not_taken br -> Edge_profile.incr edges.(meth) br ~taken:false
        | Cfg.Seq -> ())
      path_edges;
    for _ = before + 1 to Edge_profile.overflow edges.(meth) do
      note_overflow st `Edge meth
    done
  in
  let take_sample (st : Machine.t) meth path_id =
    Machine.add_cycles st st.cost.Cost_model.sample_handler;
    let plan = Option.get plans.(meth) in
    let overrun =
      match faults with
      | None -> false
      | Some inj ->
          Fault_injector.fire_sample_overrun inj ~ts:st.Machine.cycles
            ~meth:(meth_name st meth)
    in
    if overrun then begin
      (* The handler blew its budget: the sample is discarded, but the
         path register was already reset by the instrumentation steps,
         so profiling continues cleanly at the next path start. *)
      (match stats with Some s -> Metrics.incr s.dropped | None -> ());
      sample_instant st "overrun" meth path_id;
      Option.iter
        (fun inj ->
          Fault_injector.note_sample_dropped inj ~ts:st.Machine.cycles
            ~meth:(meth_name st meth))
        faults
    end
    else if
      (* A frame compiled before this method's plan was (re)installed can
         deliver a stale register value once; drop such samples. *)
      path_id >= 0 && path_id < Numbering.n_paths plan.Instrument.numbering
    then begin
      match Path_profile.entry_opt paths.(meth) path_id with
      | None ->
          (* Fixed-size table is full: drop the sample, keep running. *)
          (match stats with Some s -> Metrics.incr s.dropped | None -> ());
          sample_instant st "overflow" meth path_id;
          note_overflow st `Path meth
      | Some entry -> (
          (match stats with Some s -> Metrics.incr s.taken | None -> ());
          sample_instant st "sample" meth path_id;
          entry.count <- entry.count + 1;
          match entry.edges with
          | Some path_edges -> update_edges st meth path_edges
          | None ->
              (* first sample of this path: reconstruct it from the P-DAG *)
              let path_edges =
                Reconstruct.cfg_edges plan.Instrument.numbering path_id
              in
              Machine.add_cycles st
                (st.cost.Cost_model.reconstruct_per_edge
                * (List.length path_edges + 1));
              entry.edges <- Some path_edges;
              entry.n_branches <- branch_count path_edges;
              (match stats with
              | Some s ->
                  Metrics.incr s.promotions;
                  Metrics.observe s.branches entry.n_branches
              | None -> ());
              update_edges st meth path_edges)
    end
    else begin
      (match stats with Some s -> Metrics.incr s.dropped | None -> ());
      sample_instant st "drop" meth path_id
    end
  in
  let on_path_end (st : Machine.t) (frame : Interp.frame) ~path_id =
    if st.tick_pending then begin
      st.tick_pending <- false;
      Sampling.activate sampler
    end;
    if Sampling.active sampler then
      match Sampling.step sampler with
      | `Skip ->
          (match stats with Some s -> Metrics.incr s.skipped | None -> ());
          Machine.add_cycles st st.cost.Cost_model.stride_step
      | `Take -> take_sample st frame.fmeth path_id
  in
  let hooks = Profile_hooks.path_hooks ~plans ~count_cost:`None ~on_path_end () in
  { hooks; paths; edges; plans; sampler }

let n_samples t =
  let taken, _, _ = Sampling.stats t.sampler in
  taken

let n_instrumented t =
  ( Array.fold_left
      (fun acc p -> match p with Some _ -> acc + 1 | None -> acc)
      0 t.plans,
    Array.length t.plans )
