type inline_site = {
  callee : string;
  argc : int;
  base : int;
  copy_ids : int array;
  ret_block : int;
}

type inline_witness = {
  first_piece : int array;
  sites : ((int * int) * inline_site) list;
  branch_map : ((string * Cfg.branch_id) * Cfg.branch_id) list;
}

let identity_inline (m : Method.t) =
  {
    first_piece = Array.init (Array.length m.Method.blocks) Fun.id;
    sites = [];
    branch_map = [];
  }

type unroll_witness = { src_of : int array }

let identity_unroll (m : Method.t) =
  { src_of = Array.init (Array.length m.Method.blocks) Fun.id }

type counterexample = {
  cblock : int option;
  cinstr : int option;
  reason : string;
}

let pp_counterexample ppf c =
  (match (c.cblock, c.cinstr) with
  | Some b, Some i -> Fmt.pf ppf "B%d:%d: " b i
  | Some b, None -> Fmt.pf ppf "B%d: " b
  | None, _ -> ());
  Fmt.string ppf c.reason

(* Stop checking a source block at its first mismatch: everything after
   a broken simulation point would only cascade. *)
exception Break

let shift_local base (ins : Instr.t) =
  match ins with
  | Instr.Load l -> Instr.Load (base + l)
  | Instr.Store l -> Instr.Store (base + l)
  | Instr.Inc (l, k) -> Instr.Inc (base + l, k)
  | Instr.Const _ | Instr.Binop _ | Instr.Cmp _ | Instr.Neg | Instr.Not
  | Instr.Dup | Instr.Pop | Instr.GLoad _ | Instr.GStore _ | Instr.AGet
  | Instr.ASet | Instr.Call _ | Instr.Rand _ ->
      ins

let check_inline (p : Program.t) ~(source : Method.t) ~witness
    (transformed : Method.t) =
  let cex = ref [] in
  let bad ?block ?instr fmt =
    Fmt.kstr
      (fun reason ->
        cex := { cblock = block; cinstr = instr; reason } :: !cex)
      fmt
  in
  let n_s = Array.length source.Method.blocks in
  let n_t = Array.length transformed.Method.blocks in
  if Array.length witness.first_piece <> n_s then begin
    bad "witness maps %d source blocks, method has %d"
      (Array.length witness.first_piece)
      n_s;
    List.rev !cex
  end
  else begin
    if transformed.Method.nparams <> source.Method.nparams then
      bad "nparams changed: %d -> %d" source.Method.nparams
        transformed.Method.nparams;
    if transformed.Method.nlocals < source.Method.nlocals then
      bad "nlocals shrank: %d -> %d" source.Method.nlocals
        transformed.Method.nlocals;
    (* every transformed block must play exactly one role in the
       simulation; leftovers or double bookings break the argument *)
    let claimed = Array.make n_t None in
    let claim id role =
      if id < 0 || id >= n_t then bad "witness block id %d out of range (%s)" id role
      else
        match claimed.(id) with
        | None -> claimed.(id) <- Some role
        | Some prior -> bad ~block:id "block claimed as both %s and %s" prior role
    in
    Array.iteri (fun b id -> claim id (Fmt.str "piece of source B%d" b)) witness.first_piece;
    let sites = Hashtbl.create 8 in
    List.iter
      (fun ((b, i), site) ->
        Hashtbl.replace sites (b, i) site;
        Array.iteri
          (fun cb id ->
            claim id (Fmt.str "copy of %s B%d at B%d:%d" site.callee cb b i))
          site.copy_ids;
        claim site.ret_block (Fmt.str "continuation of the call at B%d:%d" b i))
      witness.sites;
    Array.iteri
      (fun id role ->
        if role = None then
          bad ~block:id "transformed block plays no role in the witness")
      claimed;
    (* fresh branch ids: injective, and disjoint from the caller's *)
    let branch = Hashtbl.create 8 in
    let seen_fresh = Hashtbl.create 8 in
    let caller_branches = Method.branch_ids source in
    List.iter
      (fun ((callee, orig), fresh) ->
        Hashtbl.replace branch (callee, orig) fresh;
        if Hashtbl.mem seen_fresh fresh then
          bad "fresh branch id %d assigned twice" fresh;
        Hashtbl.replace seen_fresh fresh ();
        if List.mem fresh caller_branches then
          bad "fresh branch id %d collides with a caller branch" fresh)
      witness.branch_map;
    if transformed.Method.entry <> witness.first_piece.(source.Method.entry) then
      bad "entry is B%d, expected the first piece B%d of source B%d"
        transformed.Method.entry
        witness.first_piece.(source.Method.entry)
        source.Method.entry;
    (* one inlinee copy region per site *)
    let check_copies (b, i) site (callee : Method.t) =
      if Array.length site.copy_ids <> Array.length callee.Method.blocks then begin
        bad "site B%d:%d copies %d blocks, callee %s has %d" b i
          (Array.length site.copy_ids) site.callee
          (Array.length callee.Method.blocks);
        raise Break
      end;
      Array.iteri
        (fun cb (cblk : Method.block) ->
          let id = site.copy_ids.(cb) in
          if id < 0 || id >= n_t then raise Break;
          let tblk = transformed.Method.blocks.(id) in
          let want = Array.map (shift_local site.base) cblk.Method.body in
          if Array.length tblk.Method.body <> Array.length want then
            bad ~block:id "copy of %s B%d has %d instructions, expected %d"
              site.callee cb
              (Array.length tblk.Method.body)
              (Array.length want)
          else
            Array.iteri
              (fun k w ->
                if tblk.Method.body.(k) <> w then
                  bad ~block:id ~instr:k
                    "copy of %s B%d diverges: %a, expected %a" site.callee cb
                    Instr.pp
                    tblk.Method.body.(k)
                    Instr.pp w)
              want;
          let expect_term (want : Method.term) =
            if tblk.Method.term <> want then
              bad ~block:id "copy of %s B%d ends in the wrong terminator"
                site.callee cb
          in
          match cblk.Method.term with
          | Method.Ret -> expect_term (Method.Jmp site.ret_block)
          | Method.Jmp d -> expect_term (Method.Jmp site.copy_ids.(d))
          | Method.Br { branch = br; on_true; on_false } -> (
              match Hashtbl.find_opt branch (site.callee, br) with
              | None ->
                  bad ~block:id
                    "no fresh branch id for %s branch %d in the witness"
                    site.callee br
              | Some fresh ->
                  expect_term
                    (Method.Br
                       {
                         branch = fresh;
                         on_true = site.copy_ids.(on_true);
                         on_false = site.copy_ids.(on_false);
                       })))
        callee.Method.blocks
    in
    (* walk each source block through its piece chain *)
    let walk b (sblk : Method.block) =
      let cur = ref witness.first_piece.(b) in
      let pos = ref 0 in
      let cur_body () = transformed.Method.blocks.(!cur).Method.body in
      let expect_instr ?(what = "instruction") (want : Instr.t) =
        let body = cur_body () in
        if !pos >= Array.length body then begin
          bad ~block:!cur "piece ends early: expected %s %a" what Instr.pp want;
          raise Break
        end;
        if body.(!pos) <> want then begin
          bad ~block:!cur ~instr:!pos "found %a, expected %s %a" Instr.pp
            body.(!pos) what Instr.pp want;
          raise Break
        end;
        incr pos
      in
      Array.iteri
        (fun i (ins : Instr.t) ->
          match Hashtbl.find_opt sites (b, i) with
          | None -> expect_instr ins
          | Some site ->
              let argc =
                match ins with
                | Instr.Call (name, argc) when name = site.callee -> argc
                | _ ->
                    bad ~block:!cur
                      "witness marks B%d:%d as an inlined call to %s, source \
                       has %a"
                      b i site.callee Instr.pp ins;
                    raise Break
              in
              if argc <> site.argc then begin
                bad "site B%d:%d records argc %d, call pops %d" b i site.argc
                  argc;
                raise Break
              end;
              let callee =
                match Program.find p site.callee with
                | callee -> callee
                | exception Not_found ->
                    bad "inlined callee %s not in the program" site.callee;
                    raise Break
              in
              if site.base < source.Method.nlocals
                 || site.base + callee.Method.nlocals
                    > transformed.Method.nlocals
              then
                bad "site B%d:%d local base %d overlaps the caller frame" b i
                  site.base;
              (* calling convention: args stored last-on-top first, then
                 the callee's remaining locals zeroed *)
              for j = argc - 1 downto 0 do
                expect_instr ~what:"argument store"
                  (Instr.Store (site.base + j))
              done;
              for j = argc to callee.Method.nlocals - 1 do
                expect_instr ~what:"zero-init" (Instr.Const 0);
                expect_instr ~what:"zero-init" (Instr.Store (site.base + j))
              done;
              if !pos <> Array.length (cur_body ()) then begin
                bad ~block:!cur ~instr:!pos
                  "piece continues past the inlined call at B%d:%d" b i;
                raise Break
              end;
              (match transformed.Method.blocks.(!cur).Method.term with
              | Method.Jmp d when d = site.copy_ids.(callee.Method.entry) -> ()
              | _ ->
                  bad ~block:!cur
                    "piece must jump to the callee entry copy B%d"
                    site.copy_ids.(callee.Method.entry));
              check_copies (b, i) site callee;
              cur := site.ret_block;
              pos := 0)
        sblk.Method.body;
      if !pos <> Array.length (cur_body ()) then begin
        bad ~block:!cur ~instr:!pos "piece has %d extra instruction(s)"
          (Array.length (cur_body ()) - !pos);
        raise Break
      end;
      let retarget : Method.term -> Method.term = function
        | Method.Ret -> Method.Ret
        | Method.Jmp d -> Method.Jmp witness.first_piece.(d)
        | Method.Br { branch = br; on_true; on_false } ->
            Method.Br
              {
                branch = br;
                on_true = witness.first_piece.(on_true);
                on_false = witness.first_piece.(on_false);
              }
      in
      let want = retarget sblk.Method.term in
      if transformed.Method.blocks.(!cur).Method.term <> want then
        bad ~block:!cur
          "chain for source B%d ends in the wrong terminator" b
    in
    Array.iteri
      (fun b sblk -> try walk b sblk with Break -> ())
      source.Method.blocks;
    List.rev !cex
  end

let check_unroll ~(source : Method.t) ~witness (transformed : Method.t) =
  let cex = ref [] in
  let bad ?block ?instr fmt =
    Fmt.kstr
      (fun reason ->
        cex := { cblock = block; cinstr = instr; reason } :: !cex)
      fmt
  in
  let n_s = Array.length source.Method.blocks in
  let n_t = Array.length transformed.Method.blocks in
  let sigma = witness.src_of in
  if Array.length sigma <> n_t then begin
    bad "witness maps %d blocks, transformed method has %d"
      (Array.length sigma) n_t;
    List.rev !cex
  end
  else begin
    if transformed.Method.nparams <> source.Method.nparams then
      bad "nparams changed: %d -> %d" source.Method.nparams
        transformed.Method.nparams;
    if transformed.Method.nlocals <> source.Method.nlocals then
      bad "nlocals changed: %d -> %d" source.Method.nlocals
        transformed.Method.nlocals;
    let ok_range t =
      let s = sigma.(t) in
      if s < 0 || s >= n_s then begin
        bad ~block:t "witness maps B%d to out-of-range source B%d" t s;
        false
      end
      else true
    in
    if
      Array.length sigma > transformed.Method.entry
      && ok_range transformed.Method.entry
      && sigma.(transformed.Method.entry) <> source.Method.entry
    then
      bad ~block:transformed.Method.entry
        "entry simulates source B%d, expected the source entry B%d"
        sigma.(transformed.Method.entry)
        source.Method.entry;
    for t = 0 to n_t - 1 do
      if ok_range t then begin
        let s = sigma.(t) in
        let tblk = transformed.Method.blocks.(t) in
        let sblk = source.Method.blocks.(s) in
        (if tblk.Method.body != sblk.Method.body then begin
           if Array.length tblk.Method.body <> Array.length sblk.Method.body
           then
             bad ~block:t "body has %d instructions, source B%d has %d"
               (Array.length tblk.Method.body)
               s
               (Array.length sblk.Method.body)
           else
             Array.iteri
               (fun i ins ->
                 if tblk.Method.body.(i) <> ins then
                   bad ~block:t ~instr:i
                     "body diverges from source B%d: %a, expected %a" s
                     Instr.pp
                     tblk.Method.body.(i)
                     Instr.pp ins)
               sblk.Method.body
         end);
        match (tblk.Method.term, sblk.Method.term) with
        | Method.Ret, Method.Ret -> ()
        | Method.Jmp a, Method.Jmp b ->
            if a < 0 || a >= n_t then
              bad ~block:t "jump target B%d out of range" a
            else if sigma.(a) <> b then
              bad ~block:t
                "jump target B%d simulates source B%d, source jumps to B%d" a
                sigma.(a) b
        | ( Method.Br { branch = br_t; on_true = t1; on_false = t0 },
            Method.Br { branch = br_s; on_true = s1; on_false = s0 } ) ->
            if br_t <> br_s then
              bad ~block:t "branch id %d, source B%d has %d" br_t s br_s;
            List.iter
              (fun (arm, ta, sa) ->
                if ta < 0 || ta >= n_t then
                  bad ~block:t "%s target B%d out of range" arm ta
                else if sigma.(ta) <> sa then
                  bad ~block:t
                    "%s target B%d simulates source B%d, source goes to B%d"
                    arm ta sigma.(ta) sa)
              [ ("taken", t1, s1); ("not-taken", t0, s0) ]
        | (Method.Ret | Method.Jmp _ | Method.Br _), _ ->
            bad ~block:t "terminator kind differs from source B%d" s
      end
    done;
    List.rev !cex
  end

let check_layout cfg ~pos ~predict_taken ~edge_extra ~taken_penalty
    ~mispredict_penalty =
  let cex = ref [] in
  let bad ?block ?instr fmt =
    Fmt.kstr
      (fun reason ->
        cex := { cblock = block; cinstr = instr; reason } :: !cex)
      fmt
  in
  let n = Cfg.n_blocks cfg in
  if Array.length pos <> n then
    bad "position map covers %d blocks, CFG has %d (stale layout?)"
      (Array.length pos) n
  else if Array.length predict_taken <> n then
    bad "prediction vector covers %d blocks, CFG has %d"
      (Array.length predict_taken)
      n
  else begin
    let seen = Array.make n false in
    Array.iteri
      (fun b p ->
        if p < 0 || p >= n then
          bad ~block:b "position %d out of range (stale layout?)" p
        else if seen.(p) then
          bad ~block:b "position %d assigned twice (stale layout?)" p
        else seen.(p) <- true)
      pos;
    if not (Array.for_all Fun.id seen) then
      bad "position map is not a permutation of the blocks";
    Cfg.iter_edges
      (fun (e : Cfg.edge) ->
        let expected =
          (if pos.(e.dst) <> pos.(e.src) + 1 then taken_penalty else 0)
          +
          match e.attr with
          | Cfg.Taken _ when not predict_taken.(e.src) -> mispredict_penalty
          | Cfg.Not_taken _ when predict_taken.(e.src) -> mispredict_penalty
          | Cfg.Taken _ | Cfg.Not_taken _ | Cfg.Seq -> 0
        in
        let got = edge_extra e.src (Instrument.succ_index e.attr) in
        if got <> expected then
          bad ~block:e.src
            "edge B%d->B%d carries extra cost %d, layout formula gives %d"
            e.src e.dst got expected)
      cfg
  end;
  List.rev !cex
