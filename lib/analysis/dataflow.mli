(** Generic dataflow / abstract-interpretation framework over {!Cfg}.

    A client supplies a join-semilattice of abstract facts ({!DOMAIN})
    and a per-block transfer function; {!Solver.solve} runs a
    deterministic worklist to the least fixpoint.  Forward problems
    propagate along edges from the entry; backward problems against
    edges from the exit.  Domains of unbounded height (e.g. intervals)
    terminate via the optional widening hook, which clients typically
    apply at loop headers only.

    Unreachable blocks are never seeded and keep {!DOMAIN.bottom}, which
    must therefore mean "no execution reaches this point". *)

(** A join-semilattice.  [join] must be associative, commutative and
    idempotent with [bottom] as its unit; [equal] decides the induced
    partial order's equality (the solver iterates until no fact
    changes). *)
module type DOMAIN = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
  val pp : t Fmt.t
end

type direction = Forward | Backward

module Solver (D : DOMAIN) : sig
  type solution = {
    inb : D.t array;
        (** fact at block entry: the join over incoming edges (forward)
            or the result of the block transfer (backward) *)
    outb : D.t array;
        (** fact at block exit: the result of the block transfer
            (forward) or the join over outgoing edges (backward) *)
    transfers : int;  (** block-transfer applications until fixpoint *)
  }

  (** [solve ~direction ~init ~transfer cfg] computes the least fixpoint.
      [init] is the boundary fact (at the entry for [Forward], the exit
      for [Backward]).  [edge_refine] filters the fact flowing across a
      specific edge (defaults to the identity).  [widen ~old joined],
      when given, replaces the plain join result at every block on each
      re-visit after the first — return [joined] to keep the exact
      value, or an extrapolation to force convergence; clients that only
      need widening at loop headers dispatch on the block id.

      Iteration order is reverse postorder for forward problems and
      postorder for backward ones, so reducible graphs converge in a
      handful of sweeps.

      @raise Failure if the fixpoint does not stabilise within a
      generous bound (a non-monotone transfer or a widening that never
      converges — a client bug, never an input property). *)
  val solve :
    direction:direction ->
    init:D.t ->
    transfer:(Cfg.block_id -> D.t -> D.t) ->
    ?edge_refine:(Cfg.edge -> D.t -> D.t) ->
    ?widen:(Cfg.block_id -> old:D.t -> D.t -> D.t) ->
    Cfg.t ->
    solution
end
