(** Forward constant / interval analysis over a method body.

    The abstract state is one integer interval per local and per operand
    stack slot; the analysis is a {!Dataflow} forward problem with
    widening at loop headers, so it terminates on every CFG.  Soundness:
    every value the interpreter can produce at a program point lies in
    the computed interval (the fuzz suite cross-checks this by folding
    provably-constant loads and comparing {!Interp} results).

    Two consumers matter beyond linting: {!justify} independently
    re-derives the operand-stack discipline that lets
    [lib/runtime/codegen.ml] use unchecked array accesses for the stack
    and locals, and {!check_fold} validates claimed constant folds
    (rejecting any whose constant the analysis cannot confirm). *)

type itv = { lo : int; hi : int }
(** Closed interval; [min_int] / [max_int] act as the infinities. *)

val top : itv
val const : int -> itv
val pp_itv : itv Fmt.t

(** [mem v itv] — membership, the soundness predicate. *)
val mem : int -> itv -> bool

type state = {
  stack : itv list;  (** top of stack first *)
  locals : itv array;
}

type analysis = {
  entry : state option array;
      (** abstract state at each block's entry; [None] = unreachable *)
  exits : state option array;
  max_depth : int;
      (** maximum abstract operand-stack depth at any point of any
          reachable block, mid-instruction pushes included *)
}

(** Requires a body that passed {!Pep_check.verify_method}: join demands
    agreeing stack depths and the transfer demands no underflow.
    @raise Failure (or [Cfg.Malformed]) on unverified bodies. *)
val analyze : Method.t -> analysis

type finding =
  | Const_branch of { block : int; always_taken : bool }
      (** the branch condition is provably zero / non-zero *)
  | Heap_wrap of { block : int; index : int; itv : itv }
      (** an [AGet]/[ASet] index may fall outside [[0, heap_size)] and
          rely on the runtime's modulo wrap *)
  | Div_by_zero of { block : int; index : int }
      (** a [Div]/[Rem] divisor may be zero (defined as 0) *)

val findings : heap_size:int -> Method.t -> analysis -> finding list

type violation = { block : int; index : int; reason : string }

(** Independent justification of the unchecked array operations codegen
    emits: at every reachable instruction the abstract stack depth
    covers the pops, never exceeds [max_stack] after the pushes, and
    every local / global index is within [the method's nlocals] /
    [n_globals].  An empty list is a proof (relative to the analysis)
    that the unchecked accesses stay in bounds. *)
val justify :
  n_globals:int -> max_stack:int -> Method.t -> analysis -> violation list

(** Provably-constant loads: [(block, index, k)] means the [Load] at
    that position always pushes [k] and can be replaced by [Const k]. *)
val folds : Method.t -> analysis -> (int * int * int) list

(** Validate one claimed fold: the instruction must be a [Load] whose
    interval at that point is exactly [[k, k]]. *)
val check_fold :
  Method.t -> analysis -> block:int -> index:int -> const:int ->
  (unit, string) result

(** Interval of the method's return value, when the exit is reachable. *)
val result_interval : Method.t -> analysis -> itv option
