type severity = Error | Warning | Info

type location =
  | Program_loc
  | Method_loc of string
  | Block_loc of string * int
  | Instr_loc of string * int * int
  | Edge_loc of string * int * int
  | Node_loc of string * int
  | Branch_loc of string * Cfg.branch_id
  | Path_loc of string * int

type diagnostic = {
  severity : severity;
  pass : string;
  loc : location;
  message : string;
}

let pp_severity ppf s =
  Fmt.string ppf
    (match s with Error -> "error" | Warning -> "warning" | Info -> "info")

let pp_location ppf = function
  | Program_loc -> Fmt.string ppf "program"
  | Method_loc m -> Fmt.string ppf m
  | Block_loc (m, b) -> Fmt.pf ppf "%s:B%d" m b
  | Instr_loc (m, b, i) -> Fmt.pf ppf "%s:B%d:%d" m b i
  | Edge_loc (m, s, d) -> Fmt.pf ppf "%s:B%d->B%d" m s d
  | Node_loc (m, n) -> Fmt.pf ppf "%s:n%d" m n
  | Branch_loc (m, br) -> Fmt.pf ppf "%s:branch %d" m br
  | Path_loc (m, p) -> Fmt.pf ppf "%s:path %d" m p

let pp_diagnostic ppf d =
  Fmt.pf ppf "%a[%s] %a: %s" pp_severity d.severity d.pass pp_location d.loc
    d.message

let errors ds = List.filter (fun d -> d.severity = Error) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds
let with_pass pass ds = List.map (fun d -> { d with pass }) ds

let pp_report ppf ds =
  let n_err = List.length (errors ds) in
  let n_warn = List.length (List.filter (fun d -> d.severity = Warning) ds) in
  List.iter (fun d -> Fmt.pf ppf "%a@." pp_diagnostic d) ds;
  Fmt.pf ppf "%d error(s), %d warning(s)" n_err n_warn

(* Diagnostics accumulate newest-first; every pass returns them
   oldest-first. *)
type ctx = { pass : string; mutable acc : diagnostic list }

let report ctx severity loc fmt =
  Fmt.kstr
    (fun message ->
      ctx.acc <- { severity; pass = ctx.pass; loc; message } :: ctx.acc)
    fmt

let new_ctx pass = { pass; acc = [] }
let finish ctx = List.rev ctx.acc

let find_method_opt (p : Program.t) name =
  Array.find_opt (fun (m : Method.t) -> m.Method.name = name) p.Program.methods

let verify_method (p : Program.t) (m : Method.t) =
  let ctx = new_ctx "bytecode" in
  let name = m.Method.name in
  let n = Array.length m.Method.blocks in
  if n = 0 then begin
    report ctx Error (Method_loc name) "method has no blocks";
    finish ctx
  end
  else begin
    let in_range b = b >= 0 && b < n in
    if m.Method.nparams < 0 || m.Method.nparams > m.Method.nlocals then
      report ctx Error (Method_loc name) "nparams %d outside nlocals %d"
        m.Method.nparams m.Method.nlocals;
    if not (in_range m.Method.entry) then
      report ctx Error (Method_loc name) "entry block %d out of range"
        m.Method.entry;
    if not (in_range m.Method.exit_) then
      report ctx Error (Method_loc name) "exit block %d out of range"
        m.Method.exit_;
    if in_range m.Method.exit_ then begin
      match m.Method.blocks.(m.Method.exit_).Method.term with
      | Method.Ret -> ()
      | Method.Jmp _ | Method.Br _ ->
          report ctx Error
            (Block_loc (name, m.Method.exit_))
            "exit block does not end in ret"
    end;
    (* {!To_cfg} relies on the entry block never being a branch target *)
    Array.iteri
      (fun bid (blk : Method.block) ->
        let targets =
          match blk.Method.term with
          | Method.Ret -> []
          | Method.Jmp d -> [ d ]
          | Method.Br { on_true; on_false; _ } -> [ on_true; on_false ]
        in
        if List.mem m.Method.entry targets then
          report ctx Warning
            (Block_loc (name, bid))
            "entry block B%d is a branch target" m.Method.entry)
      m.Method.blocks;
    let check_instr bid depth i (ins : Instr.t) =
      let pops, pushes = Instr.stack_effect ins in
      if depth < pops then
        report ctx Error
          (Instr_loc (name, bid, i))
          "stack underflow at %a (depth %d, pops %d)" Instr.pp ins depth pops;
      (match ins with
      | Instr.Load l | Instr.Store l | Instr.Inc (l, _) ->
          if l < 0 || l >= m.Method.nlocals then
            report ctx Error
              (Instr_loc (name, bid, i))
              "local %d out of range (nlocals %d)" l m.Method.nlocals
      | Instr.GLoad g | Instr.GStore g ->
          if g < 0 || g >= p.Program.n_globals then
            report ctx Error
              (Instr_loc (name, bid, i))
              "global %d out of range (n_globals %d)" g p.Program.n_globals
      | Instr.Rand k ->
          if k <= 0 then
            report ctx Error
              (Instr_loc (name, bid, i))
              "rand bound %d is not positive" k
      | Instr.Call (callee, argc) -> (
          if argc < 0 then
            report ctx Error (Instr_loc (name, bid, i)) "negative arity %d" argc;
          match find_method_opt p callee with
          | None ->
              report ctx Error
                (Instr_loc (name, bid, i))
                "call to unknown method %s" callee
          | Some target ->
              if target.Method.nparams <> argc then
                report ctx Error
                  (Instr_loc (name, bid, i))
                  "call %s/%d but %s takes %d parameter(s)" callee argc callee
                  target.Method.nparams)
      | Instr.Const _ | Instr.Binop _ | Instr.Cmp _ | Instr.Neg | Instr.Not
      | Instr.Dup | Instr.Pop | Instr.AGet | Instr.ASet ->
          ());
      max depth pops - pops + pushes
    in
    let depths = Array.make n (-1) in
    let worklist = Queue.create () in
    let set_depth ~from b d =
      if not (in_range b) then
        report ctx Error (Block_loc (name, from)) "jump target %d out of range" b
      else if depths.(b) = -1 then begin
        depths.(b) <- d;
        Queue.add b worklist
      end
      else if depths.(b) <> d then
        report ctx Error
          (Block_loc (name, b))
          "block entered with inconsistent stack depths %d and %d" depths.(b) d
    in
    if in_range m.Method.entry then begin
      depths.(m.Method.entry) <- 0;
      Queue.add m.Method.entry worklist
    end;
    while not (Queue.is_empty worklist) do
      let bid = Queue.pop worklist in
      let blk = m.Method.blocks.(bid) in
      let depth = ref depths.(bid) in
      Array.iteri
        (fun i ins -> depth := check_instr bid !depth i ins)
        blk.Method.body;
      let depth = !depth in
      match blk.Method.term with
      | Method.Ret ->
          if bid <> m.Method.exit_ then
            report ctx Error (Block_loc (name, bid)) "ret outside the exit block";
          if depth <> 1 then
            report ctx Error
              (Block_loc (name, bid))
              "exit reached with stack depth %d (want 1)" depth
      | Method.Jmp d -> set_depth ~from:bid d depth
      | Method.Br { on_true; on_false; _ } ->
          if depth < 1 then
            report ctx Error
              (Block_loc (name, bid))
              "branch with no condition on the stack";
          if on_true = on_false then
            report ctx Error
              (Block_loc (name, bid))
              "both branch arms target block %d" on_true;
          let d = max 0 (depth - 1) in
          set_depth ~from:bid on_true d;
          if on_true <> on_false then set_depth ~from:bid on_false d
    done;
    Array.iteri
      (fun b d ->
        if d = -1 then report ctx Error (Block_loc (name, b)) "block unreachable")
      depths;
    finish ctx
  end

let verify_program (p : Program.t) =
  let ctx = new_ctx "bytecode" in
  if p.Program.heap_size <= 0 then
    report ctx Error Program_loc "heap size %d is not positive"
      p.Program.heap_size;
  if p.Program.n_globals < 0 then
    report ctx Error Program_loc "negative global area size %d"
      p.Program.n_globals;
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun (m : Method.t) ->
      if Hashtbl.mem seen m.Method.name then
        report ctx Error (Method_loc m.Method.name) "duplicate method name";
      Hashtbl.replace seen m.Method.name ())
    p.Program.methods;
  (match find_method_opt p p.Program.main with
  | None -> report ctx Error Program_loc "main method %s missing" p.Program.main
  | Some m ->
      if m.Method.nparams <> 0 then
        report ctx Error
          (Method_loc m.Method.name)
          "main takes %d parameter(s) (want 0)" m.Method.nparams);
  finish ctx
  @ List.concat_map
      (fun m -> verify_method p m)
      (Array.to_list p.Program.methods)

(* --- pass 2: CFG / DAG invariants ---------------------------------- *)

let check_cfg cfg =
  let ctx = new_ctx "cfg" in
  let name = Cfg.name cfg in
  let n = Cfg.n_blocks cfg in
  let in_range b = b >= 0 && b < n in
  if not (in_range (Cfg.entry cfg)) then
    report ctx Error (Method_loc name) "entry block %d out of range"
      (Cfg.entry cfg);
  if not (in_range (Cfg.exit_ cfg)) then
    report ctx Error (Method_loc name) "exit block %d out of range"
      (Cfg.exit_ cfg);
  if has_errors ctx.acc then finish ctx
  else begin
    (* terminators and the successor lists they imply *)
    Cfg.iter_blocks
      (fun b ->
        let expect_targets =
          match Cfg.terminator cfg b with
          | Cfg.Return ->
              if b <> Cfg.exit_ cfg then
                report ctx Error (Block_loc (name, b))
                  "return outside the exit block";
              []
          | Cfg.Jump d -> [ (d, Cfg.Seq) ]
          | Cfg.Branch { branch; taken; not_taken } ->
              if taken = not_taken then
                report ctx Error (Block_loc (name, b))
                  "branch arms coincide on block %d" taken;
              [ (taken, Cfg.Taken branch); (not_taken, Cfg.Not_taken branch) ]
        in
        List.iter
          (fun (d, _) ->
            if not (in_range d) then
              report ctx Error (Block_loc (name, b))
                "successor %d out of range" d)
          expect_targets;
        let succs = Cfg.successors cfg b in
        let expected =
          List.filter_map
            (fun (dst, attr) ->
              if in_range dst then Some { Cfg.src = b; dst; attr } else None)
            expect_targets
        in
        if
          List.length succs <> List.length expected
          || not (List.for_all2 Cfg.equal_edge succs expected)
        then
          report ctx Error (Block_loc (name, b))
            "successor edges disagree with the terminator")
      cfg;
    (match Cfg.terminator cfg (Cfg.exit_ cfg) with
    | Cfg.Return -> ()
    | Cfg.Jump _ | Cfg.Branch _ ->
        report ctx Error
          (Block_loc (name, Cfg.exit_ cfg))
          "exit block does not end in return");
    (* edge list, predecessor lists, and the one-edge-per-pair rule *)
    let all = Cfg.edges cfg in
    if List.length all <> Cfg.n_edges cfg then
      report ctx Error (Method_loc name) "n_edges %d but %d edges listed"
        (Cfg.n_edges cfg) (List.length all);
    let pairs = Hashtbl.create 32 in
    List.iter
      (fun (e : Cfg.edge) ->
        if Hashtbl.mem pairs (e.src, e.dst) then
          report ctx Error
            (Edge_loc (name, e.src, e.dst))
            "duplicate edge between one block pair";
        Hashtbl.replace pairs (e.src, e.dst) ();
        if
          not
            (List.exists (Cfg.equal_edge e) (Cfg.successors cfg e.src)
            && List.exists (Cfg.equal_edge e) (Cfg.predecessors cfg e.dst))
        then
          report ctx Error
            (Edge_loc (name, e.src, e.dst))
            "edge missing from successor or predecessor list")
      all;
    let n_pred_edges =
      let acc = ref 0 in
      Cfg.iter_blocks
        (fun b -> acc := !acc + List.length (Cfg.predecessors cfg b))
        cfg;
      !acc
    in
    if n_pred_edges <> List.length all then
      report ctx Error (Method_loc name)
        "predecessor lists hold %d edges, edge list %d" n_pred_edges
        (List.length all);
    (* reachability and co-reachability *)
    let fwd = Array.make n false and bwd = Array.make n false in
    let rec down b =
      if not fwd.(b) then begin
        fwd.(b) <- true;
        List.iter (fun (e : Cfg.edge) -> down e.dst) (Cfg.successors cfg b)
      end
    in
    let rec up b =
      if not bwd.(b) then begin
        bwd.(b) <- true;
        List.iter (fun (e : Cfg.edge) -> up e.src) (Cfg.predecessors cfg b)
      end
    in
    down (Cfg.entry cfg);
    up (Cfg.exit_ cfg);
    Cfg.iter_blocks
      (fun b ->
        if not fwd.(b) then
          report ctx Error (Block_loc (name, b)) "block unreachable from entry";
        if not bwd.(b) then
          report ctx Error (Block_loc (name, b)) "block cannot reach the exit")
      cfg;
    (* loop analysis consistency *)
    let dom = Dominator.compute cfg in
    let loops = Loops.compute cfg in
    let back = Loops.back_edges loops in
    let irr = Loops.irreducible_edges loops in
    let is_real (e : Cfg.edge) =
      List.exists (Cfg.equal_edge e) (Cfg.successors cfg e.src)
    in
    List.iter
      (fun (e : Cfg.edge) ->
        if not (is_real e) then
          report ctx Error
            (Edge_loc (name, e.src, e.dst))
            "reported back edge is not a CFG edge";
        if not (Dominator.dominates dom e.dst e.src) then
          report ctx Error
            (Edge_loc (name, e.src, e.dst))
            "back edge target does not dominate its source")
      back;
    List.iter
      (fun (e : Cfg.edge) ->
        if not (is_real e) then
          report ctx Error
            (Edge_loc (name, e.src, e.dst))
            "reported irreducible edge is not a CFG edge";
        if Dominator.dominates dom e.dst e.src then
          report ctx Error
            (Edge_loc (name, e.src, e.dst))
            "irreducible edge is actually a back edge")
      irr;
    (* completeness: every dominator-certified back edge is reported *)
    List.iter
      (fun (e : Cfg.edge) ->
        if
          Dominator.dominates dom e.dst e.src
          && not (List.exists (Cfg.equal_edge e) back)
        then
          report ctx Error
            (Edge_loc (name, e.src, e.dst))
            "back edge missing from the loop analysis")
      all;
    let headers = List.sort_uniq compare (List.map (fun (e : Cfg.edge) -> e.dst) back) in
    if headers <> Loops.headers loops then
      report ctx Error (Method_loc name)
        "loop headers disagree with back-edge targets";
    Cfg.iter_blocks
      (fun b ->
        if Loops.is_header loops b <> List.mem b headers then
          report ctx Error (Block_loc (name, b)) "is_header disagrees with headers")
      cfg;
    if Loops.is_reducible loops <> (irr = []) then
      report ctx Error (Method_loc name)
        "reducibility flag disagrees with irreducible edge list";
    finish ctx
  end

let check_dag dag =
  let ctx = new_ctx "dag" in
  let cfg = Dag.cfg dag in
  let name = Cfg.name cfg in
  let n = Dag.n_nodes dag in
  let topo = Dag.topo dag in
  (* the topological order visits each node once, entry first, exit last,
     and every edge goes forward: together, acyclicity *)
  if Array.length topo <> n then
    report ctx Error (Method_loc name) "topo order has %d of %d nodes"
      (Array.length topo) n;
  let pos = Array.make n (-1) in
  Array.iteri
    (fun i v ->
      if v < 0 || v >= n then
        report ctx Error (Method_loc name) "topo order holds bogus node %d" v
      else begin
        if pos.(v) <> -1 then
          report ctx Error (Node_loc (name, v)) "node repeated in topo order";
        pos.(v) <- i
      end)
    topo;
  if has_errors ctx.acc then finish ctx
  else begin
    if n > 0 && topo.(0) <> Dag.entry_node dag then
      report ctx Error (Method_loc name) "topo order does not start at entry";
    if n > 0 && topo.(n - 1) <> Dag.exit_node dag then
      report ctx Error (Method_loc name) "topo order does not end at exit";
    Dag.iter_edges
      (fun (e : Dag.edge) ->
        if pos.(e.esrc) >= pos.(e.edst) then
          report ctx Error
            (Node_loc (name, e.esrc))
            "edge n%d->n%d goes backward in topo order: the graph has a cycle"
            e.esrc e.edst)
      dag;
    if Dag.in_edges dag (Dag.entry_node dag) <> [] then
      report ctx Error
        (Node_loc (name, Dag.entry_node dag))
        "entry node has incoming edges";
    if Dag.out_edges dag (Dag.exit_node dag) <> [] then
      report ctx Error
        (Node_loc (name, Dag.exit_node dag))
        "exit node has outgoing edges";
    (* adjacency lists and the edge array agree *)
    let edge_ids_of l = List.sort compare (List.map (fun (e : Dag.edge) -> e.idx) l) in
    let seen_out = Array.make n [] and seen_in = Array.make n [] in
    for i = 0 to Dag.n_edges dag - 1 do
      let e = Dag.edge dag i in
      if e.idx <> i then
        report ctx Error (Node_loc (name, e.esrc)) "edge %d stored under index %d"
          e.idx i;
      seen_out.(e.esrc) <- e :: seen_out.(e.esrc);
      seen_in.(e.edst) <- e :: seen_in.(e.edst)
    done;
    for v = 0 to n - 1 do
      if edge_ids_of (Dag.out_edges dag v) <> edge_ids_of seen_out.(v) then
        report ctx Error (Node_loc (name, v)) "out-edge list disagrees with edges";
      if edge_ids_of (Dag.in_edges dag v) <> edge_ids_of seen_in.(v) then
        report ctx Error (Node_loc (name, v)) "in-edge list disagrees with edges"
    done;
    (* every node on an entry-to-exit path *)
    let fwd = Array.make n false and bwd = Array.make n false in
    let rec down v =
      if not fwd.(v) then begin
        fwd.(v) <- true;
        List.iter (fun (e : Dag.edge) -> down e.edst) (Dag.out_edges dag v)
      end
    in
    let rec up v =
      if not bwd.(v) then begin
        bwd.(v) <- true;
        List.iter (fun (e : Dag.edge) -> up e.esrc) (Dag.in_edges dag v)
      end
    in
    down (Dag.entry_node dag);
    up (Dag.exit_node dag);
    for v = 0 to n - 1 do
      if not (fwd.(v) && bwd.(v)) then
        report ctx Error (Node_loc (name, v)) "node off every entry-to-exit path"
    done;
    (* real edges = CFG edges minus the cut truncations *)
    let truncs = Dag.truncations dag in
    let cut =
      List.filter_map
        (function Dag.Cut_edge e -> Some e | Dag.Split_header _ -> None)
        truncs
    in
    let split_headers =
      List.filter_map
        (function Dag.Split_header h -> Some h | Dag.Cut_edge _ -> None)
        truncs
    in
    let mem_edge e l = List.exists (Cfg.equal_edge e) l in
    let real_origins = ref [] in
    Dag.iter_edges
      (fun (e : Dag.edge) ->
        match e.origin with
        | Dag.Real ce ->
            if mem_edge ce !real_origins then
              report ctx Error
                (Edge_loc (name, ce.src, ce.dst))
                "CFG edge appears twice in the DAG";
            real_origins := ce :: !real_origins;
            if mem_edge ce cut then
              report ctx Error
                (Edge_loc (name, ce.src, ce.dst))
                "cut edge still present in the DAG";
            if e.esrc <> Dag.out_node dag ce.src || e.edst <> Dag.in_node dag ce.dst
            then
              report ctx Error
                (Edge_loc (name, ce.src, ce.dst))
                "real edge endpoints disagree with in/out nodes"
        | Dag.From_entry b ->
            if e.esrc <> Dag.entry_node dag then
              report ctx Error (Node_loc (name, e.esrc))
                "From_entry dummy does not start at the entry node";
            if Dag.node_block dag e.edst <> b then
              report ctx Error (Node_loc (name, e.edst))
                "From_entry dummy labelled with block %d targets another block" b
        | Dag.To_exit b ->
            if e.edst <> Dag.exit_node dag then
              report ctx Error (Node_loc (name, e.edst))
                "To_exit dummy does not end at the exit node";
            if Dag.node_block dag e.esrc <> b then
              report ctx Error (Node_loc (name, e.esrc))
                "To_exit dummy labelled with block %d leaves another block" b)
      dag;
    Cfg.iter_edges
      (fun ce ->
        if not (mem_edge ce cut) && not (mem_edge ce !real_origins) then
          report ctx Error
            (Edge_loc (name, ce.Cfg.src, ce.Cfg.dst))
            "CFG edge neither cut nor present in the DAG")
      cfg;
    (* dummy sharing: one From_entry per target node, one To_exit per source *)
    let from_entry = Hashtbl.create 8 and to_exit = Hashtbl.create 8 in
    Dag.iter_edges
      (fun (e : Dag.edge) ->
        match e.origin with
        | Dag.From_entry _ ->
            if Hashtbl.mem from_entry e.edst then
              report ctx Error (Node_loc (name, e.edst))
                "duplicate From_entry dummy to one node";
            Hashtbl.replace from_entry e.edst ()
        | Dag.To_exit _ ->
            if Hashtbl.mem to_exit e.esrc then
              report ctx Error (Node_loc (name, e.esrc))
                "duplicate To_exit dummy from one node";
            Hashtbl.replace to_exit e.esrc ()
        | Dag.Real _ -> ())
      dag;
    (* every truncation resolves to its dummy pair *)
    List.iter
      (fun trunc ->
        match Dag.dummy_edges dag trunc with
        | to_e, from_e ->
            (match to_e.Dag.origin with
            | Dag.To_exit _ -> ()
            | Dag.Real _ | Dag.From_entry _ ->
                report ctx Error (Method_loc name)
                  "truncation's end-path edge is not a To_exit dummy");
            (match from_e.Dag.origin with
            | Dag.From_entry _ -> ()
            | Dag.Real _ | Dag.To_exit _ ->
                report ctx Error (Method_loc name)
                  "truncation's start-path edge is not a From_entry dummy")
        | exception Not_found ->
            report ctx Error (Method_loc name)
              "truncation has no dummy edge pair")
      truncs;
    (* mode consistency with the loop analysis *)
    let loops = Dag.loops dag in
    let back = Loops.back_edges loops in
    let irr = Loops.irreducible_edges loops in
    List.iter
      (fun (e : Cfg.edge) ->
        if not (mem_edge e (back @ irr)) then
          report ctx Error
            (Edge_loc (name, e.src, e.dst))
            "cut edge is neither a back edge nor irreducible")
      cut;
    List.iter
      (fun (e : Cfg.edge) ->
        if not (mem_edge e cut) then
          report ctx Error
            (Edge_loc (name, e.src, e.dst))
            "irreducible edge survived truncation")
      irr;
    (match Dag.mode dag with
    | Dag.Back_edge ->
        if split_headers <> [] then
          report ctx Error (Method_loc name) "split header in back-edge mode";
        if n <> Cfg.n_blocks cfg then
          report ctx Error (Method_loc name)
            "back-edge mode changed the node count (%d blocks, %d nodes)"
            (Cfg.n_blocks cfg) n;
        List.iter
          (fun (e : Cfg.edge) ->
            if not (mem_edge e cut) then
              report ctx Error
                (Edge_loc (name, e.src, e.dst))
                "back edge survived back-edge truncation")
          back
    | Dag.Loop_header ->
        List.iter
          (fun h ->
            if not (Loops.is_header loops h) then
              report ctx Error (Block_loc (name, h))
                "split block is not a loop header";
            if Dag.in_node dag h = Dag.out_node dag h then
              report ctx Error (Block_loc (name, h))
                "split header kept a single node";
            if
              Dag.node_block dag (Dag.in_node dag h) <> h
              || Dag.node_block dag (Dag.out_node dag h) <> h
            then
              report ctx Error (Block_loc (name, h))
                "split header nodes map back to another block")
          split_headers;
        List.iter
          (fun h ->
            if not (List.mem h split_headers) then begin
              (* unsampleable header: all its back edges must have been cut *)
              List.iter
                (fun (e : Cfg.edge) ->
                  if e.dst = h && not (mem_edge e cut) then
                    report ctx Error
                      (Edge_loc (name, e.src, e.dst))
                      "back edge into unsplit header neither cut nor split")
                back
            end)
          (Loops.headers loops));
    Cfg.iter_blocks
      (fun b ->
        if
          (not (List.mem b split_headers))
          && Dag.in_node dag b <> Dag.out_node dag b
        then
          report ctx Error (Block_loc (name, b))
            "unsplit block has distinct in/out nodes";
        if Dag.node_block dag (Dag.in_node dag b) <> b then
          report ctx Error (Block_loc (name, b))
            "in-node maps back to another block")
      cfg;
    finish ctx
  end

(* --- pass 3: numbering auditor ------------------------------------- *)

let recompute_num_paths dag =
  let np = Array.make (Dag.n_nodes dag) 0 in
  let topo = Dag.topo dag in
  let exit_node = Dag.exit_node dag in
  for i = Array.length topo - 1 downto 0 do
    let v = topo.(i) in
    if v = exit_node then np.(v) <- 1
    else
      List.iter
        (fun (e : Dag.edge) -> np.(v) <- np.(v) + np.(e.edst))
        (Dag.out_edges dag v)
  done;
  np

let audit_values_ctx ctx dag ~value ~np =
  let name = Cfg.name (Dag.cfg dag) in
  let exit_node = Dag.exit_node dag in
  Dag.iter_edges
    (fun (e : Dag.edge) ->
      if value e < 0 then
        report ctx Error (Node_loc (name, e.esrc))
          "negative edge value %d on n%d->n%d" (value e) e.esrc e.edst)
    dag;
  (* each node's out-edge intervals must partition [0, num_paths_from v):
     the interval property Reconstruct's greedy walk requires, and —
     inductively from the exit — a bijection of path sums onto
     [0, n_paths) *)
  Array.iter
    (fun v ->
      if v <> exit_node then begin
        let intervals =
          List.map
            (fun (e : Dag.edge) -> (value e, value e + np.(e.edst)))
            (Dag.out_edges dag v)
        in
        let sorted = List.sort compare intervals in
        let rec covers at = function
          | [] -> at = np.(v)
          | (lo, hi) :: rest -> lo = at && covers hi rest
        in
        if not (covers 0 sorted) then
          report ctx Error (Node_loc (name, v))
            "out-edge value intervals do not partition [0, %d)" np.(v)
      end)
    (Dag.topo dag);
  if np.(Dag.entry_node dag) < 1 then
    report ctx Error (Method_loc name) "no entry-to-exit path in the DAG"

let audit_values dag ~value =
  let ctx = new_ctx "numbering" in
  audit_values_ctx ctx dag ~value ~np:(recompute_num_paths dag);
  finish ctx

let default_enumerate_limit = 1024

let audit_numbering ?(enumerate_limit = default_enumerate_limit) numbering =
  let ctx = new_ctx "numbering" in
  let dag = Numbering.dag numbering in
  let name = Cfg.name (Dag.cfg dag) in
  let np = recompute_num_paths dag in
  (* the numbering's DP results must match an independent recomputation *)
  for v = 0 to Dag.n_nodes dag - 1 do
    if Numbering.num_paths_from numbering v <> np.(v) then
      report ctx Error (Node_loc (name, v))
        "num_paths_from %d disagrees with recomputation %d"
        (Numbering.num_paths_from numbering v)
        np.(v)
  done;
  audit_values_ctx ctx dag ~value:(Numbering.value numbering) ~np;
  if Numbering.n_paths numbering <> np.(Dag.entry_node dag) then
    report ctx Error (Method_loc name)
      "n_paths %d disagrees with recomputed %d"
      (Numbering.n_paths numbering)
      np.(Dag.entry_node dag);
  (* explicit bijection witness for small path spaces: every id
     reconstructs to a path whose values sum back to the id *)
  if (not (has_errors ctx.acc)) && Numbering.n_paths numbering <= enumerate_limit
  then
    for id = 0 to Numbering.n_paths numbering - 1 do
      match Reconstruct.dag_path numbering id with
      | path ->
          let back = Reconstruct.id_of_dag_path numbering path in
          if back <> id then
            report ctx Error (Path_loc (name, id))
              "path reconstructs to a sum of %d" back
      | exception Invalid_argument msg ->
          report ctx Error (Path_loc (name, id)) "irreconstructible: %s" msg
    done;
  finish ctx

let audit_zero_arms ~zero ~freq numbering =
  let ctx = new_ctx "numbering" in
  let dag = Numbering.dag numbering in
  let name = Cfg.name (Dag.cfg dag) in
  let exit_node = Dag.exit_node dag in
  Array.iter
    (fun v ->
      if v <> exit_node then begin
        let out = Dag.out_edges dag v in
        if List.length out >= 2 then begin
          match List.filter (fun e -> Numbering.value numbering e = 0) out with
          | [ zero_edge ] ->
              let freqs = List.map freq out in
              let extremal =
                match zero with
                | `Hottest -> List.fold_left max min_int freqs
                | `Coldest -> List.fold_left min max_int freqs
              in
              if freq zero_edge <> extremal then
                report ctx Error (Node_loc (name, v))
                  "value 0 on an arm with frequency %d; the %s arm has %d"
                  (freq zero_edge)
                  (match zero with `Hottest -> "hottest" | `Coldest -> "coldest")
                  extremal
          | zs ->
              report ctx Error (Node_loc (name, v))
                "%d zero-valued arms (want exactly 1)" (List.length zs)
        end
      end)
    (Dag.topo dag);
  finish ctx

(* --- pass 4: profile lint ------------------------------------------ *)

(* The flow system's variables: the invocation count, one frequency per
   block, one count per CFG edge.  Equations are of the shape
   [lhs = sum of terms]; propagation solves a variable when all but one
   participant is known and checks the equation once fully known. *)
let lint_edge_profile ?(exact = true) cfg profile =
  let ctx = new_ctx "profile" in
  let name = Cfg.name cfg in
  let cfg_branches = Cfg.branch_ids cfg in
  List.iter
    (fun br ->
      (match Edge_profile.counter profile br with
      | Some c ->
          if c.Edge_profile.taken < 0 || c.Edge_profile.not_taken < 0 then
            report ctx Error (Branch_loc (name, br))
              "negative counter (taken %d, not-taken %d)" c.Edge_profile.taken
              c.Edge_profile.not_taken
      | None -> ());
      if not (List.mem br cfg_branches) then
        report ctx Error (Branch_loc (name, br))
          "profiled branch id not present in the CFG")
    (Edge_profile.branch_ids profile);
  if not exact then finish ctx
  else begin
    (* per-block attribution requires unique branch ids *)
    let blocks_of_branch = Hashtbl.create 16 in
    Cfg.iter_blocks
      (fun b ->
        match Cfg.terminator cfg b with
        | Cfg.Branch { branch; _ } ->
            Hashtbl.replace blocks_of_branch branch
              (b :: (try Hashtbl.find blocks_of_branch branch with Not_found -> []))
        | Cfg.Return | Cfg.Jump _ -> ())
      cfg;
    let shared =
      Hashtbl.fold
        (fun br bs acc -> if List.length bs > 1 then br :: acc else acc)
        blocks_of_branch []
    in
    if shared <> [] then begin
      report ctx Info (Method_loc name)
        "%d branch id(s) shared across blocks (inlined or unrolled body); \
         flow conservation not attributable per block"
        (List.length shared);
      finish ctx
    end
    else begin
      let n = Cfg.n_blocks cfg in
      let all_edges = Cfg.edges cfg in
      let edge_var = Hashtbl.create 32 in
      List.iteri
        (fun i (e : Cfg.edge) -> Hashtbl.replace edge_var (e.src, e.dst) (1 + n + i))
        all_edges;
      (* var 0 = invocation count, 1..n = block frequencies, then edges *)
      let nvars = 1 + n + List.length all_edges in
      let value = Array.make nvars None in
      let conflict = ref false in
      let set loc v k =
        match value.(v) with
        | None -> value.(v) <- Some k; true
        | Some k' ->
            if k <> k' && not !conflict then begin
              conflict := true;
              report ctx Error loc
                "flow conservation violated (%d versus %d)" k' k
            end;
            false
      in
      let var_of_edge (e : Cfg.edge) = Hashtbl.find edge_var (e.src, e.dst) in
      (* constants: branch counters pin their block's out-edges and
         frequency *)
      Cfg.iter_blocks
        (fun b ->
          match Cfg.terminator cfg b with
          | Cfg.Branch { branch; taken; not_taken } ->
              let t, nt =
                match Edge_profile.counter profile branch with
                | Some c -> (c.Edge_profile.taken, c.Edge_profile.not_taken)
                | None -> (0, 0)
              in
              ignore
                (set (Branch_loc (name, branch))
                   (Hashtbl.find edge_var (b, taken))
                   t);
              ignore
                (set (Branch_loc (name, branch))
                   (Hashtbl.find edge_var (b, not_taken))
                   nt);
              ignore (set (Block_loc (name, b)) (1 + b) (t + nt))
          | Cfg.Return | Cfg.Jump _ -> ())
        cfg;
      (* equations: freq(b) = in-flow (+ invocations at the entry), and
         freq(b) = out-flow (invocations at the exit; the single
         successor edge for jumps) *)
      let equations = ref [] in
      Cfg.iter_blocks
        (fun b ->
          let in_terms =
            List.map var_of_edge (Cfg.predecessors cfg b)
            @ (if b = Cfg.entry cfg then [ 0 ] else [])
          in
          equations := (Block_loc (name, b), 1 + b, in_terms) :: !equations;
          match Cfg.terminator cfg b with
          | Cfg.Jump d ->
              equations :=
                ( Edge_loc (name, b, d),
                  1 + b,
                  [ Hashtbl.find edge_var (b, d) ] )
                :: !equations
          | Cfg.Return ->
              equations := (Block_loc (name, b), 1 + b, [ 0 ]) :: !equations
          | Cfg.Branch _ -> ())
        cfg;
      let eqs = Array.of_list !equations in
      let done_ = Array.make (Array.length eqs) false in
      let changed = ref true in
      while !changed do
        changed := false;
        Array.iteri
          (fun i (loc, lhs, terms) ->
            if not done_.(i) then begin
              let unknowns = List.filter (fun v -> value.(v) = None) terms in
              let known_sum =
                List.fold_left
                  (fun acc v ->
                    match value.(v) with Some k -> acc + k | None -> acc)
                  0 terms
              in
              match (value.(lhs), unknowns) with
              | Some total, [] ->
                  done_.(i) <- true;
                  changed := true;
                  if total <> known_sum then
                    report ctx Error loc
                      "flow conservation violated: in-flow and out-flow sum \
                       to %d, block frequency is %d"
                      known_sum total
              | Some total, [ v ] ->
                  let k = total - known_sum in
                  if k < 0 then begin
                    done_.(i) <- true;
                    report ctx Error loc
                      "flow conservation violated: residual flow %d is negative"
                      k
                  end
                  else if set loc v k then changed := true;
                  if value.(v) <> None then done_.(i) <- true
              | None, [] ->
                  if set loc lhs known_sum then changed := true;
                  done_.(i) <- true
              | _ -> ()
            end)
          eqs
      done;
      (match value.(0) with
      | Some inv when inv < 0 ->
          report ctx Error (Method_loc name)
            "negative invocation count %d implied by the profile" inv
      | Some _ | None -> ());
      finish ctx
    end
  end

let branch_count edges =
  List.length
    (List.filter
       (fun (ce : Cfg.edge) ->
         match ce.attr with
         | Cfg.Taken _ | Cfg.Not_taken _ -> true
         | Cfg.Seq -> false)
       edges)

let lint_path_profile ?expected_total numbering profile =
  let ctx = new_ctx "profile" in
  let name = Cfg.name (Dag.cfg (Numbering.dag numbering)) in
  let n_paths = Numbering.n_paths numbering in
  Path_profile.iter
    (fun (e : Path_profile.entry) ->
      if e.count < 0 then
        report ctx Error (Path_loc (name, e.path_id)) "negative count %d" e.count;
      if e.path_id < 0 || e.path_id >= n_paths then
        report ctx Error (Path_loc (name, e.path_id))
          "path id outside [0, %d)" n_paths
      else begin
        let expected = Reconstruct.cfg_edges numbering e.path_id in
        (match e.edges with
        | Some memo ->
            if
              List.length memo <> List.length expected
              || not
                   (List.for_all2
                      (fun a b -> Cfg.compare_edge a b = 0)
                      memo expected)
            then
              report ctx Error (Path_loc (name, e.path_id))
                "memoized expansion disagrees with P-DAG reconstruction"
        | None -> ());
        if e.n_branches >= 0 && e.n_branches <> branch_count expected then
          report ctx Error (Path_loc (name, e.path_id))
            "memoized branch length %d; the path has %d branch(es)" e.n_branches
            (branch_count expected)
      end)
    profile;
  (match expected_total with
  | Some expected ->
      let total = Path_profile.total profile in
      if total > expected then
        report ctx Error (Method_loc name)
          "%d path executions recorded from only %d samples" total expected
  | None -> ());
  finish ctx

(* --- whole-program driver ------------------------------------------ *)

let check_program_static (p : Program.t) =
  let acc = ref (verify_program p) in
  let add ds = acc := !acc @ ds in
  Program.iter_methods
    (fun _ (m : Method.t) ->
      match To_cfg.cfg m with
      | exception Cfg.Malformed msg ->
          add
            [
              {
                severity = Error;
                pass = "cfg";
                loc = Method_loc m.Method.name;
                message = Fmt.str "CFG construction failed: %s" msg;
              };
            ]
      | cfg ->
          add (check_cfg cfg);
          List.iter
            (fun mode ->
              match Dag.build mode cfg with
              | exception Dag.Unsupported msg ->
                  add
                    [
                      {
                        severity = Warning;
                        pass = "dag";
                        loc = Method_loc m.Method.name;
                        message =
                          Fmt.str "unprofilable: truncation unsupported (%s)"
                            msg;
                      };
                    ]
              | dag -> (
                  add (check_dag dag);
                  match Numbering.ball_larus dag with
                  | exception Numbering.Too_many_paths { n_paths; limit; _ } ->
                      add
                        [
                          {
                            severity = Warning;
                            pass = "numbering";
                            loc = Method_loc m.Method.name;
                            message =
                              Fmt.str
                                "unprofilable: %d paths exceed the limit %d"
                                n_paths limit;
                          };
                        ]
                  | numbering -> add (audit_numbering numbering)))
            [ Dag.Back_edge; Dag.Loop_header ])
    p;
  !acc

(* --- pass 5: dataflow lints ---------------------------------------- *)

let lint_liveness (m : Method.t) =
  let ctx = new_ctx "liveness" in
  let name = m.Method.name in
  (match Liveness.dead_stores m with
  | ds ->
      List.iter
        (fun (d : Liveness.dead_store) ->
          report ctx Warning
            (Instr_loc (name, d.Liveness.block, d.Liveness.index))
            "dead %s of local %d: no path reads it afterwards"
            (match d.Liveness.kind with `Store -> "store" | `Inc -> "increment")
            d.Liveness.local)
        ds
  | exception Cfg.Malformed msg ->
      report ctx Error (Method_loc name) "no CFG to analyze: %s" msg);
  finish ctx

let lint_intervals (p : Program.t) (m : Method.t) =
  let ctx = new_ctx "interval" in
  let name = m.Method.name in
  (match Intervals.analyze m with
  | a ->
      List.iter
        (fun (f : Intervals.finding) ->
          match f with
          | Intervals.Const_branch { block; always_taken } ->
              report ctx Info
                (Block_loc (name, block))
                "branch condition is provably %s"
                (if always_taken then "non-zero (always taken)"
                 else "zero (never taken)")
          | Intervals.Heap_wrap { block; index; itv } ->
              report ctx Info
                (Instr_loc (name, block, index))
                "heap index %a may leave [0, %d) and wrap" Intervals.pp_itv itv
                p.Program.heap_size
          | Intervals.Div_by_zero { block; index } ->
              report ctx Info
                (Instr_loc (name, block, index))
                "divisor may be zero (defined as 0)")
        (Intervals.findings ~heap_size:p.Program.heap_size m a)
  | exception Cfg.Malformed msg ->
      report ctx Error (Method_loc name) "no CFG to analyze: %s" msg
  | exception Failure msg -> report ctx Error (Method_loc name) "%s" msg);
  finish ctx

(* The same bound {!Machine} compiles into each method: block-entry
   depths from {!Verify.block_depths}, then the running maximum through
   every body. *)
let default_max_stack (p : Program.t) (m : Method.t) =
  let depths = Verify.block_depths p m in
  let worst = ref 0 in
  Array.iteri
    (fun b (blk : Method.block) ->
      let d = ref depths.(b) in
      worst := max !worst !d;
      Array.iter
        (fun ins ->
          let pops, pushes = Instr.stack_effect ins in
          d := !d - pops + pushes;
          worst := max !worst !d)
        blk.Method.body)
    m.Method.blocks;
  !worst

let justify_unsafe (p : Program.t) ?max_stack (m : Method.t) =
  let ctx = new_ctx "interval" in
  let name = m.Method.name in
  (match
     let max_stack =
       match max_stack with Some s -> s | None -> default_max_stack p m
     in
     (Intervals.analyze m, max_stack)
   with
  | a, max_stack ->
      List.iter
        (fun (v : Intervals.violation) ->
          report ctx Error
            (Instr_loc (name, v.Intervals.block, v.Intervals.index))
            "unsafe-op justification failed: %s" v.Intervals.reason)
        (Intervals.justify ~n_globals:p.Program.n_globals ~max_stack m a)
  | exception Cfg.Malformed msg ->
      report ctx Error (Method_loc name) "no CFG to analyze: %s" msg
  | exception Verify.Error msg ->
      report ctx Error (Method_loc name) "no stack bound to justify: %s" msg
  | exception Failure msg -> report ctx Error (Method_loc name) "%s" msg);
  finish ctx

let lint_effects (p : Program.t) =
  let ctx = new_ctx "effects" in
  let s = Effects.summarize p in
  Program.iter_methods
    (fun midx (m : Method.t) ->
      let e = Effects.method_effect s midx in
      let n_fusable = List.length (Effects.fusable_blocks s midx) in
      report ctx Info
        (Method_loc m.Method.name)
        "effect %a; %d of %d block(s) fusable" Effects.pp e n_fusable
        (Array.length m.Method.blocks))
    p;
  finish ctx

(* --- pass 6: translation validation -------------------------------- *)

let report_cex ctx name (c : Transval.counterexample) =
  let loc =
    match (c.Transval.cblock, c.Transval.cinstr) with
    | Some b, Some i -> Instr_loc (name, b, i)
    | Some b, None -> Block_loc (name, b)
    | None, _ -> Method_loc name
  in
  report ctx Error loc "simulation breaks: %s" c.Transval.reason

let validate_inline p ~source ~witness transformed =
  let ctx = new_ctx "transval" in
  List.iter
    (report_cex ctx transformed.Method.name)
    (Transval.check_inline p ~source ~witness transformed);
  finish ctx

let validate_unroll ~source ~witness transformed =
  let ctx = new_ctx "transval" in
  List.iter
    (report_cex ctx transformed.Method.name)
    (Transval.check_unroll ~source ~witness transformed);
  finish ctx

let validate_layout cfg ~pos ~predict_taken ~edge_extra ~taken_penalty
    ~mispredict_penalty =
  let ctx = new_ctx "transval" in
  List.iter
    (report_cex ctx (Cfg.name cfg))
    (Transval.check_layout cfg ~pos ~predict_taken ~edge_extra ~taken_penalty
       ~mispredict_penalty);
  finish ctx

(* --- fusion-table validation ---------------------------------------- *)

(* Net stack effect of a fused sequence, re-derived from the bytecode it
   replaces: the constituent instructions' stack effects plus the pop of
   a folded terminator ([Br] and [Ret] consume one value, [Jmp] none). *)
let sequence_stack_delta (blk : Method.block) (e : Fusion.entry) =
  let d = ref 0 in
  for i = e.Fusion.fstart to e.Fusion.fstart + e.Fusion.flen - 1 do
    let pops, pushes = Instr.stack_effect blk.Method.body.(i) in
    d := !d - pops + pushes
  done;
  (if e.Fusion.fterm then
     match blk.Method.term with
     | Method.Br _ | Method.Ret -> decr d
     | Method.Jmp _ -> ());
  !d

(* Validate a fusion table against the body it claims to fuse.  Every
   invariant the engine's compiler relies on is re-derived here from
   first principles rather than trusted from the planner: entries in
   bounds, ordered and disjoint; only hot blocks; only blocks whose
   effect summary ({!Effects.block_summary} — an independent derivation
   of the no-call precondition) admits fusion; each entry's pattern,
   length and terminator flag re-derivable from the bytecode by
   {!Fusion.match_at}; stack neutrality of the replacement; and the
   whole table reproducible by a deterministic re-plan. *)
let validate_fusion ~(witness : Fusion.witness) (m : Method.t) =
  let ctx = new_ctx "fusion" in
  let name = m.Method.name in
  let nblocks = Array.length m.Method.blocks in
  if Array.length witness.Fusion.fhot <> nblocks then begin
    if witness.Fusion.fentries <> [] then
      report ctx Error (Method_loc name)
        "fusion table has %d entries but its hot mask covers %d of %d blocks \
         (stale mask must plan all-cold)"
        (List.length witness.Fusion.fentries)
        (Array.length witness.Fusion.fhot)
        nblocks
  end
  else begin
    let last = ref (-1, -1) in
    List.iter
      (fun (e : Fusion.entry) ->
        let b = e.Fusion.fblock in
        if b < 0 || b >= nblocks then
          report ctx Error (Method_loc name) "fusion entry in missing block %d" b
        else begin
          let blk = m.Method.blocks.(b) in
          let n = Array.length blk.Method.body in
          let loc = Block_loc (name, b) in
          if (b, e.Fusion.fstart) <= !last then
            report ctx Error loc
              "fusion entries out of order or overlapping at (%d, %d)" b
              e.Fusion.fstart;
          last := (b, e.Fusion.fstart + e.Fusion.flen - 1);
          if e.Fusion.flen < 1 || e.Fusion.flen > 3 then
            report ctx Error loc "fused length %d outside pairs/triples"
              e.Fusion.flen;
          if e.Fusion.fstart < 0 || e.Fusion.fstart + e.Fusion.flen > n then
            report ctx Error loc "fused range [%d, %d) outside body of %d"
              e.Fusion.fstart
              (e.Fusion.fstart + e.Fusion.flen)
              n
          else begin
            if not witness.Fusion.fhot.(b) then
              report ctx Error loc "fused block is not marked hot";
            if not (Effects.fusable (Effects.block_summary blk)) then
              report ctx Error loc
                "block effect %a forbids fusion (contains a call)" Effects.pp
                (Effects.block_summary blk);
            if e.Fusion.fterm && e.Fusion.fstart + e.Fusion.flen <> n then
              report ctx Error loc
                "terminator-folding entry does not end the block";
            (match Fusion.match_at blk e.Fusion.fstart with
            | Some (p, len, term)
              when p = e.Fusion.fpattern && len = e.Fusion.flen
                   && term = e.Fusion.fterm ->
                ()
            | Some (p, len, term) ->
                report ctx Error
                  (Instr_loc (name, b, e.Fusion.fstart))
                  "pattern mismatch: table says %s/%d%s, bytecode derives %s/%d%s"
                  (Fusion.pattern_name e.Fusion.fpattern)
                  e.Fusion.flen
                  (if e.Fusion.fterm then "+term" else "")
                  (Fusion.pattern_name p) len
                  (if term then "+term" else "")
            | None ->
                report ctx Error
                  (Instr_loc (name, b, e.Fusion.fstart))
                  "no catalog pattern matches at the claimed position");
            let derived = sequence_stack_delta blk e in
            if Fusion.stack_delta e.Fusion.fpattern <> derived then
              report ctx Error loc
                "stack effect mismatch: superinstruction %s nets %d, the \
                 sequence it replaces nets %d"
                (Fusion.pattern_name e.Fusion.fpattern)
                (Fusion.stack_delta e.Fusion.fpattern)
                derived
          end
        end)
      witness.Fusion.fentries;
    (* determinism audit: the planner, given the witness's own inputs,
       must reproduce the table exactly *)
    let replanned =
      Fusion.plan ~gen:witness.Fusion.fgen ~hot:witness.Fusion.fhot m
    in
    if replanned.Fusion.fentries <> witness.Fusion.fentries then
      report ctx Error (Method_loc name)
        "fusion table is not the deterministic plan for its inputs (%d vs %d \
         entries)"
        (List.length witness.Fusion.fentries)
        (List.length replanned.Fusion.fentries);
    report ctx Info (Method_loc name) "fusion table valid: %d superinstruction(s)"
      (List.length witness.Fusion.fentries)
  end;
  finish ctx

(* --- whole-program deep driver ------------------------------------- *)

let check_program_deep (p : Program.t) =
  let acc = ref (check_program_static p) in
  let add ds = acc := !acc @ ds in
  Program.iter_methods
    (fun _ (m : Method.t) ->
      (* the dataflow clients assume verified bodies *)
      if not (has_errors (verify_method p m)) then begin
        add (lint_liveness m);
        add (lint_intervals p m);
        add (justify_unsafe p m);
        (* audit the fusion planner's worst case: every block hot *)
        let hot = Array.make (Array.length m.Method.blocks) true in
        add (validate_fusion ~witness:(Fusion.plan ~gen:0 ~hot m) m)
      end)
    p;
  add (lint_effects p);
  !acc
