type t = {
  reads_global : bool;
  writes_global : bool;
  reads_heap : bool;
  writes_heap : bool;
  draws_rand : bool;
  calls : bool;
}

let pure =
  {
    reads_global = false;
    writes_global = false;
    reads_heap = false;
    writes_heap = false;
    draws_rand = false;
    calls = false;
  }

let union a b =
  {
    reads_global = a.reads_global || b.reads_global;
    writes_global = a.writes_global || b.writes_global;
    reads_heap = a.reads_heap || b.reads_heap;
    writes_heap = a.writes_heap || b.writes_heap;
    draws_rand = a.draws_rand || b.draws_rand;
    calls = a.calls || b.calls;
  }

let equal (a : t) (b : t) = a = b

let pp ppf e =
  let flags =
    List.filter_map
      (fun (set, name) -> if set then Some name else None)
      [
        (e.reads_global, "g-read");
        (e.writes_global, "g-write");
        (e.reads_heap, "h-read");
        (e.writes_heap, "h-write");
        (e.draws_rand, "rand");
        (e.calls, "call");
      ]
  in
  if flags = [] then Fmt.string ppf "pure"
  else Fmt.(list ~sep:(any "+") string) ppf flags

let observable e = e.writes_global || e.writes_heap || e.draws_rand
let fusable e = not e.calls

let instr_effect (ins : Instr.t) =
  match ins with
  | Instr.GLoad _ -> { pure with reads_global = true }
  | Instr.GStore _ -> { pure with writes_global = true }
  | Instr.AGet -> { pure with reads_heap = true }
  | Instr.ASet -> { pure with writes_heap = true }
  | Instr.Rand _ -> { pure with draws_rand = true }
  | Instr.Call _ -> { pure with calls = true }
  | Instr.Const _ | Instr.Load _ | Instr.Store _ | Instr.Inc _
  | Instr.Binop _ | Instr.Cmp _ | Instr.Neg | Instr.Not | Instr.Dup
  | Instr.Pop ->
      pure

let block_summary (blk : Method.block) =
  Array.fold_left
    (fun acc ins -> union acc (instr_effect ins))
    pure blk.Method.body

type summary = { blocks : t array array; methods : t array }

let summarize (p : Program.t) =
  let n = Program.n_methods p in
  let blocks =
    Array.init n (fun midx ->
        let m = Program.method_of_index p midx in
        Array.map
          (fun (blk : Method.block) ->
            Array.fold_left
              (fun acc ins -> union acc (instr_effect ins))
              pure blk.Method.body)
          m.Method.blocks)
  in
  (* direct callees per method, as indices *)
  let callees =
    Array.init n (fun midx ->
        let m = Program.method_of_index p midx in
        let acc = Hashtbl.create 4 in
        Array.iter
          (fun (blk : Method.block) ->
            Array.iter
              (fun (ins : Instr.t) ->
                match ins with
                | Instr.Call (name, _) -> (
                    match Program.index p name with
                    | idx -> Hashtbl.replace acc idx ()
                    | exception Not_found -> ())
                | _ -> ())
              blk.Method.body)
          m.Method.blocks;
        Hashtbl.fold (fun k () l -> k :: l) acc [])
  in
  let methods =
    Array.init n (fun midx -> Array.fold_left union pure blocks.(midx))
  in
  (* close over the call graph; the boolean lattice converges in at most
     n rounds, recursion included *)
  let changed = ref true in
  while !changed do
    changed := false;
    for midx = 0 to n - 1 do
      let joined =
        List.fold_left
          (fun acc c -> union acc methods.(c))
          methods.(midx) callees.(midx)
      in
      if not (equal joined methods.(midx)) then begin
        methods.(midx) <- joined;
        changed := true
      end
    done
  done;
  { blocks; methods }

let block_effect s midx b = s.blocks.(midx).(b)
let method_effect s midx = s.methods.(midx)

let fusable_blocks s midx =
  let acc = ref [] in
  Array.iteri
    (fun b e -> if fusable e then acc := b :: !acc)
    s.blocks.(midx);
  List.rev !acc
