module S = Set.Make (Int)

type t = { live_in : S.t array; live_out : S.t array }

module D = struct
  type t = S.t

  let bottom = S.empty
  let equal = S.equal
  let join = S.union
  let pp ppf s = Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma int) (S.elements s)
end

module Solve = Dataflow.Solver (D)

(* Backward transfer of one instruction: kill the write, then gen the
   read.  [Inc] both reads and writes its local, so it gens. *)
let instr_transfer (ins : Instr.t) live =
  match ins with
  | Instr.Load l -> S.add l live
  | Instr.Store l -> S.remove l live
  | Instr.Inc (l, _) -> S.add l live
  | Instr.Const _ | Instr.Binop _ | Instr.Cmp _ | Instr.Neg | Instr.Not
  | Instr.Dup | Instr.Pop | Instr.GLoad _ | Instr.GStore _ | Instr.AGet
  | Instr.ASet | Instr.Call _ | Instr.Rand _ ->
      live

let block_transfer (m : Method.t) b live =
  let body = m.Method.blocks.(b).Method.body in
  let live = ref live in
  for i = Array.length body - 1 downto 0 do
    live := instr_transfer body.(i) !live
  done;
  !live

let analyze (m : Method.t) =
  let cfg = To_cfg.cfg m in
  let sol =
    Solve.solve ~direction:Dataflow.Backward ~init:S.empty
      ~transfer:(block_transfer m) cfg
  in
  { live_in = sol.Solve.inb; live_out = sol.Solve.outb }

type dead_store = {
  block : int;
  index : int;
  local : int;
  kind : [ `Store | `Inc ];
}

let dead_stores (m : Method.t) =
  let { live_out; _ } = analyze m in
  let acc = ref [] in
  Array.iteri
    (fun b (blk : Method.block) ->
      let live = ref live_out.(b) in
      for i = Array.length blk.Method.body - 1 downto 0 do
        (match blk.Method.body.(i) with
        | Instr.Store l when not (S.mem l !live) ->
            acc := { block = b; index = i; local = l; kind = `Store } :: !acc
        | Instr.Inc (l, _) when not (S.mem l !live) ->
            acc := { block = b; index = i; local = l; kind = `Inc } :: !acc
        | _ -> ());
        live := instr_transfer blk.Method.body.(i) !live
      done)
    m.Method.blocks;
  List.sort compare !acc
