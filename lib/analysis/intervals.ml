type itv = { lo : int; hi : int }

let top = { lo = min_int; hi = max_int }
let const k = { lo = k; hi = k }
let mem v i = i.lo <= v && v <= i.hi

let pp_itv ppf i =
  let bound ppf v =
    if v = min_int then Fmt.string ppf "-inf"
    else if v = max_int then Fmt.string ppf "+inf"
    else Fmt.int ppf v
  in
  Fmt.pf ppf "[%a,%a]" bound i.lo bound i.hi

(* Bound arithmetic: anything beyond +-2^60 saturates to the infinities,
   which keeps every operation far from native overflow. *)
let big = 1 lsl 60
let is_fin v = v > -big && v < big
let clamp v = if v >= big then max_int else if v <= -big then min_int else v
let badd a b = if not (is_fin a) then a else if not (is_fin b) then b else clamp (a + b)
let bneg v = if v = min_int then max_int else if v = max_int then min_int else clamp (-v)

let join_itv a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }
let equal_itv a b = a.lo = b.lo && a.hi = b.hi

let widen_itv ~old next =
  {
    lo = (if next.lo < old.lo then min_int else old.lo);
    hi = (if next.hi > old.hi then max_int else old.hi);
  }

let add_itv a b = { lo = badd a.lo b.lo; hi = badd a.hi b.hi }
let neg_itv a = { lo = bneg a.hi; hi = bneg a.lo }
let sub_itv a b = add_itv a (neg_itv b)

let small v = is_fin v && abs v < 1 lsl 30

let mul_itv a b =
  if small a.lo && small a.hi && small b.lo && small b.hi then begin
    let p1 = a.lo * b.lo and p2 = a.lo * b.hi in
    let p3 = a.hi * b.lo and p4 = a.hi * b.hi in
    {
      lo = clamp (min (min p1 p2) (min p3 p4));
      hi = clamp (max (max p1 p2) (max p3 p4));
    }
  end
  else top

(* Division truncates toward zero and defines x/0 = 0 (see
   {!Instr.eval_binop}). *)
let div_itv a b =
  if not (is_fin a.lo && is_fin a.hi && is_fin b.lo && is_fin b.hi) then top
  else if b.lo > 0 || b.hi < 0 then begin
    (* same-sign divisor: extremes at endpoint combinations *)
    let p1 = a.lo / b.lo and p2 = a.lo / b.hi in
    let p3 = a.hi / b.lo and p4 = a.hi / b.hi in
    {
      lo = min (min p1 p2) (min p3 p4);
      hi = max (max p1 p2) (max p3 p4);
    }
  end
  else begin
    (* divisor may be zero (result 0) or +-1 (result +-a) *)
    let m = max (abs a.lo) (abs a.hi) in
    { lo = -m; hi = m }
  end

let rem_itv a b =
  if not (is_fin b.lo && is_fin b.hi) then top
  else begin
    (* |a rem b| < max |b|, sign follows the dividend; rem by 0 is 0 *)
    let m = max 1 (max (abs b.lo) (abs b.hi)) - 1 in
    {
      lo = (if a.lo >= 0 then 0 else -m);
      hi = (if a.hi <= 0 then 0 else m);
    }
  end

let nonneg a = a.lo >= 0

let and_itv a b =
  if nonneg a && nonneg b then { lo = 0; hi = min a.hi b.hi } else top

(* a lor b <= a + b and a lxor b <= a + b for non-negative operands *)
let or_itv a b =
  if nonneg a && nonneg b then { lo = 0; hi = badd a.hi b.hi } else top

let shl_itv a b =
  if nonneg a && a.hi < 1 lsl 30 && b.lo = b.hi && b.lo >= 0 && b.lo <= 30 then
    { lo = a.lo lsl b.lo; hi = a.hi lsl b.lo }
  else top

let shr_itv a b =
  if is_fin a.lo && is_fin a.hi && b.lo = b.hi && b.lo >= 0 && b.lo <= 62 then
    { lo = a.lo asr b.lo; hi = a.hi asr b.lo }
  else
    (* any masked count: x asr k lies in hull(x, [-1, 0]) *)
    join_itv a { lo = -1; hi = 0 }

let binop_itv (op : Instr.binop) a b =
  match op with
  | Instr.Add -> add_itv a b
  | Instr.Sub -> sub_itv a b
  | Instr.Mul -> mul_itv a b
  | Instr.Div -> div_itv a b
  | Instr.Rem -> rem_itv a b
  | Instr.And -> and_itv a b
  | Instr.Or | Instr.Xor -> or_itv a b
  | Instr.Shl -> shl_itv a b
  | Instr.Shr -> shr_itv a b

(* Three-valued comparison: Some true / Some false when provable. *)
let cmp_itv (op : Instr.cmp) a b =
  let lt x y = if x.hi < y.lo then Some true else if x.lo >= y.hi then Some false else None in
  let le x y = if x.hi <= y.lo then Some true else if x.lo > y.hi then Some false else None in
  match op with
  | Instr.Lt -> lt a b
  | Instr.Le -> le a b
  | Instr.Gt -> lt b a
  | Instr.Ge -> le b a
  | Instr.Eq ->
      if a.lo = a.hi && b.lo = b.hi && a.lo = b.lo then Some true
      else if a.hi < b.lo || b.hi < a.lo then Some false
      else None
  | Instr.Ne -> (
      match
        if a.lo = a.hi && b.lo = b.hi && a.lo = b.lo then Some true
        else if a.hi < b.lo || b.hi < a.lo then Some false
        else None
      with
      | Some v -> Some (not v)
      | None -> None)

let of_cmp = function Some true -> const 1 | Some false -> const 0 | None -> { lo = 0; hi = 1 }

type state = { stack : itv list; locals : itv array }

let equal_state a b =
  List.length a.stack = List.length b.stack
  && List.for_all2 equal_itv a.stack b.stack
  && Array.length a.locals = Array.length b.locals
  && Array.for_all2 equal_itv a.locals b.locals

let map2_state f a b =
  if List.length a.stack <> List.length b.stack then
    failwith "Intervals: operand-stack depth mismatch at a join (unverified body?)";
  {
    stack = List.map2 f a.stack b.stack;
    locals = Array.map2 f a.locals b.locals;
  }

module D = struct
  type t = state option

  let bottom = None
  let equal a b =
    match (a, b) with
    | None, None -> true
    | Some a, Some b -> equal_state a b
    | None, Some _ | Some _, None -> false

  let join a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (map2_state join_itv a b)

  let pp ppf = function
    | None -> Fmt.string ppf "unreachable"
    | Some s ->
        Fmt.pf ppf "stack=[%a] locals=[%a]"
          Fmt.(list ~sep:semi pp_itv) s.stack
          Fmt.(array ~sep:semi pp_itv) s.locals
end

module Solve = Dataflow.Solver (D)

exception Underflow of int

let transfer_instr (ins : Instr.t) (s : state) =
  let pop = function
    | v :: rest -> (v, rest)
    | [] -> raise (Underflow 0)
  in
  match ins with
  | Instr.Const k -> { s with stack = const k :: s.stack }
  | Instr.Load l -> { s with stack = s.locals.(l) :: s.stack }
  | Instr.Store l ->
      let v, rest = pop s.stack in
      let locals = Array.copy s.locals in
      locals.(l) <- v;
      { stack = rest; locals }
  | Instr.Inc (l, k) ->
      let locals = Array.copy s.locals in
      locals.(l) <- add_itv locals.(l) (const k);
      { s with locals }
  | Instr.Binop op ->
      let b, rest = pop s.stack in
      let a, rest = pop rest in
      { s with stack = binop_itv op a b :: rest }
  | Instr.Cmp op ->
      let b, rest = pop s.stack in
      let a, rest = pop rest in
      { s with stack = of_cmp (cmp_itv op a b) :: rest }
  | Instr.Neg ->
      let v, rest = pop s.stack in
      { s with stack = neg_itv v :: rest }
  | Instr.Not ->
      let v, rest = pop s.stack in
      let r =
        if not (mem 0 v) then const 0
        else if v.lo = 0 && v.hi = 0 then const 1
        else { lo = 0; hi = 1 }
      in
      { s with stack = r :: rest }
  | Instr.Dup ->
      let v, rest = pop s.stack in
      { s with stack = v :: v :: rest }
  | Instr.Pop ->
      let _, rest = pop s.stack in
      { s with stack = rest }
  | Instr.GLoad _ -> { s with stack = top :: s.stack }
  | Instr.GStore _ ->
      let _, rest = pop s.stack in
      { s with stack = rest }
  | Instr.AGet ->
      let _, rest = pop s.stack in
      { s with stack = top :: rest }
  | Instr.ASet ->
      let _, rest = pop s.stack in
      let _, rest = pop rest in
      { s with stack = rest }
  | Instr.Call (_, argc) ->
      let rest = ref s.stack in
      for _ = 1 to argc do
        let _, r = pop !rest in
        rest := r
      done;
      { s with stack = top :: !rest }
  | Instr.Rand k -> { s with stack = { lo = 0; hi = k - 1 } :: s.stack }

let block_transfer (m : Method.t) b st =
  match st with
  | None -> None
  | Some s ->
      Some
        (Array.fold_left
           (fun s ins -> transfer_instr ins s)
           s m.Method.blocks.(b).Method.body)

type analysis = {
  entry : state option array;
  exits : state option array;
  max_depth : int;
}

let analyze (m : Method.t) =
  let cfg = To_cfg.cfg m in
  let headers =
    let hs = Hashtbl.create 8 in
    List.iter
      (fun (e : Cfg.edge) -> Hashtbl.replace hs e.dst ())
      (Order.retreating_edges cfg);
    hs
  in
  let widen b ~old next =
    if not (Hashtbl.mem headers b) then next
    else
      match (old, next) with
      | None, x | x, None -> x
      | Some o, Some n -> Some (map2_state (fun a b -> widen_itv ~old:a b) o n)
  in
  let init =
    Some
      {
        stack = [];
        locals =
          Array.init m.Method.nlocals (fun l ->
              if l < m.Method.nparams then top else const 0);
      }
  in
  (* [Br] consumes its condition: branch-edge successors see the stack
     one shallower (mirrors {!Verify.block_depths}). *)
  let edge_refine (e : Cfg.edge) st =
    match (e.attr, st) with
    | (Cfg.Taken _ | Cfg.Not_taken _), Some ({ stack = _ :: rest; _ } as s) ->
        Some { s with stack = rest }
    | _, st -> st
  in
  let sol =
    Solve.solve ~direction:Dataflow.Forward ~init
      ~transfer:(block_transfer m) ~edge_refine ~widen cfg
  in
  (* max depth over every reachable point, mid-block included *)
  let max_depth = ref 0 in
  Array.iteri
    (fun b st ->
      match st with
      | None -> ()
      | Some s ->
          let depth = ref (List.length s.stack) in
          max_depth := max !max_depth !depth;
          Array.iter
            (fun ins ->
              let pops, pushes = Instr.stack_effect ins in
              depth := !depth - pops + pushes;
              max_depth := max !max_depth !depth)
            m.Method.blocks.(b).Method.body)
    sol.Solve.inb;
  { entry = sol.Solve.inb; exits = sol.Solve.outb; max_depth = !max_depth }

(* Replay a reachable block instruction by instruction, handing [f] the
   state just before each instruction. *)
let replay (m : Method.t) analysis b ~f =
  match analysis.entry.(b) with
  | None -> ()
  | Some s ->
      ignore
        (Array.fold_left
           (fun (i, s) ins ->
             f i s ins;
             (i + 1, transfer_instr ins s))
           (0, s) m.Method.blocks.(b).Method.body
          : int * state)

type finding =
  | Const_branch of { block : int; always_taken : bool }
  | Heap_wrap of { block : int; index : int; itv : itv }
  | Div_by_zero of { block : int; index : int }

let findings ~heap_size (m : Method.t) analysis =
  let acc = ref [] in
  Array.iteri
    (fun b (blk : Method.block) ->
      replay m analysis b ~f:(fun i s ins ->
          match (ins, s.stack) with
          | Instr.AGet, idx :: _ | Instr.ASet, _ :: idx :: _ ->
              if not (idx.lo >= 0 && idx.hi < heap_size) then
                acc := Heap_wrap { block = b; index = i; itv = idx } :: !acc
          | Instr.Binop (Instr.Div | Instr.Rem), divisor :: _ ->
              if mem 0 divisor then
                acc := Div_by_zero { block = b; index = i } :: !acc
          | _ -> ());
      match (blk.Method.term, analysis.exits.(b)) with
      | Method.Br _, Some { stack = cond :: _; _ } ->
          if not (mem 0 cond) then
            acc := Const_branch { block = b; always_taken = true } :: !acc
          else if cond.lo = 0 && cond.hi = 0 then
            acc := Const_branch { block = b; always_taken = false } :: !acc
      | _ -> ())
    m.Method.blocks;
  List.rev !acc

type violation = { block : int; index : int; reason : string }

let justify ~n_globals ~max_stack (m : Method.t) analysis =
  let acc = ref [] in
  let bad b i fmt =
    Fmt.kstr (fun reason -> acc := { block = b; index = i; reason } :: !acc) fmt
  in
  Array.iteri
    (fun b (blk : Method.block) ->
      replay m analysis b ~f:(fun i s ins ->
          let depth = List.length s.stack in
          let pops, pushes = Instr.stack_effect ins in
          if depth < pops then
            bad b i "stack underflow: depth %d, %a pops %d" depth Instr.pp ins
              pops;
          if depth - pops + pushes > max_stack then
            bad b i "stack depth %d exceeds the compiled bound %d"
              (depth - pops + pushes) max_stack;
          match ins with
          | Instr.Load l | Instr.Store l | Instr.Inc (l, _) ->
              if l < 0 || l >= m.Method.nlocals then
                bad b i "local %d outside nlocals %d" l m.Method.nlocals
          | Instr.GLoad g | Instr.GStore g ->
              if g < 0 || g >= n_globals then
                bad b i "global %d outside n_globals %d" g n_globals
          | _ -> ());
      (* the terminator's condition read is an unchecked access too *)
      match (blk.Method.term, analysis.exits.(b)) with
      | Method.Br _, Some { stack = []; _ } ->
          bad b (Array.length blk.Method.body)
            "branch condition read from an empty stack"
      | _ -> ())
    m.Method.blocks;
  List.rev !acc

let folds (m : Method.t) analysis =
  let acc = ref [] in
  Array.iteri
    (fun b (_ : Method.block) ->
      replay m analysis b ~f:(fun i s ins ->
          match ins with
          | Instr.Load l ->
              let v = s.locals.(l) in
              if v.lo = v.hi then acc := (b, i, v.lo) :: !acc
          | _ -> ()))
    m.Method.blocks;
  List.rev !acc

let check_fold (m : Method.t) analysis ~block ~index ~const:k =
  if block < 0 || block >= Array.length m.Method.blocks then
    Error (Fmt.str "block B%d out of range" block)
  else begin
    let body = m.Method.blocks.(block).Method.body in
    if index < 0 || index >= Array.length body then
      Error (Fmt.str "instruction %d out of range in B%d" index block)
    else begin
      let verdict = ref (Error (Fmt.str "B%d:%d is unreachable" block index)) in
      replay m analysis block ~f:(fun i s ins ->
          if i = index then
            match ins with
            | Instr.Load l ->
                let v = s.locals.(l) in
                if v.lo = k && v.hi = k then verdict := Ok ()
                else
                  verdict :=
                    Error
                      (Fmt.str
                         "claimed constant %d but local %d is %a at B%d:%d" k l
                         pp_itv v block index)
            | _ ->
                verdict :=
                  Error
                    (Fmt.str "B%d:%d is %a, not a Load" block index Instr.pp ins));
      !verdict
    end
  end

let result_interval (m : Method.t) analysis =
  match analysis.exits.(m.Method.exit_) with
  | Some { stack = v :: _; _ } -> Some v
  | Some { stack = []; _ } | None -> None
