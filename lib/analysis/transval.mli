(** Translation validation of the optimizer's body transforms.

    Each transform ({!Inline}, {!Unroll}, {!Layout}) emits a {e witness}
    describing the simulation relation between its output and its input;
    the checkers here verify, block by block, that the output really is
    the input modulo that relation.  A validated witness is a proof of
    semantic preservation:

    - {b unroll} — [src_of] maps every transformed block to a source
      block with a structurally identical body and a terminator whose
      targets agree under the map (same branch ids, so profiles
      accumulate into the same counters).  Matched blocks execute
      identical instruction sequences from equal states, so the two
      methods bisimulate — results, effects and PRNG draws coincide.
    - {b inline} — a stuttering simulation: each source block maps to a
      chain of pieces in the output, where an inlined [Call] expands
      into argument stores, zero-initialisation of the callee's
      remaining locals, a jump into a copy of the callee body (locals
      shifted by the site's base, branches renamed injectively, [Ret]
      rewired to the continuation piece), matching the interpreter's
      calling convention exactly.
    - {b layout} — the position map is a permutation of the blocks and
      every edge's extra cost equals the straightening/misprediction
      penalty formula for that permutation; a stale map (computed
      against a different CFG) fails the permutation or formula check.

    Checkers return structured counterexamples — the first place the
    simulation breaks, in transformed-output coordinates — which
    {!Pep_check} renders as located diagnostics. *)

type inline_site = {
  callee : string;
  argc : int;
  base : int;  (** first local of the callee's shifted frame *)
  copy_ids : int array;  (** callee block -> transformed block id *)
  ret_block : int;  (** continuation piece the copies' [Ret] jumps to *)
}

type inline_witness = {
  first_piece : int array;  (** source block -> its first transformed piece *)
  sites : ((int * int) * inline_site) list;
      (** (source block, source instruction index) of each inlined call *)
  branch_map : ((string * Cfg.branch_id) * Cfg.branch_id) list;
      (** (callee, callee branch) -> fresh branch id in the output *)
}

(** The identity witness for a caller the inliner left untouched. *)
val identity_inline : Method.t -> inline_witness

type unroll_witness = {
  src_of : int array;  (** transformed block -> simulated source block *)
}

val identity_unroll : Method.t -> unroll_witness

type counterexample = {
  cblock : int option;  (** transformed block where the simulation breaks *)
  cinstr : int option;
  reason : string;
}

val pp_counterexample : counterexample Fmt.t

(** Empty result = [transformed] simulates [source] under [witness].
    [program] resolves inlined callees by name. *)
val check_inline :
  Program.t ->
  source:Method.t ->
  witness:inline_witness ->
  Method.t ->
  counterexample list

val check_unroll :
  source:Method.t -> witness:unroll_witness -> Method.t -> counterexample list

(** [check_layout cfg ~pos ~predict_taken ~edge_extra ~taken_penalty
    ~mispredict_penalty] re-derives every edge's extra cost from the
    position map and prediction vector and compares with what
    [edge_extra src (succ index)] reports. *)
val check_layout :
  Cfg.t ->
  pos:int array ->
  predict_taken:bool array ->
  edge_extra:(int -> int -> int) ->
  taken_penalty:int ->
  mispredict_penalty:int ->
  counterexample list
