(** Static verification of bytecode, CFGs, path numberings and profiles.

    PEP's correctness rests on invariants the rest of the system assumes
    but never checks mechanically: every method body must respect the
    operand-stack discipline the interpreter relies on, CFG/DAG
    truncation must leave the derived graph acyclic and consistent with
    the loop analysis, Ball-Larus edge values must put the DAG's
    entry-to-exit paths in bijection with [0, n_paths), and collected
    edge profiles must conserve flow at every block.  Each pass here
    re-derives one of those invariants from first principles and reports
    violations as structured {!diagnostic}s instead of booleans or
    exceptions, so callers (the VM driver, the experiment harness, the
    [pepsim check] subcommand) can locate a miscompile at the pass that
    introduced it.

    Unlike {!Verify}, which raises on the first violation and guards
    parsed input, these passes keep going and are meant to audit {e every}
    stage of the pipeline — including optimizer-transformed bodies that
    never went through {!Program.create}'s link checks. *)

type severity = Error | Warning | Info

(** Where a diagnostic points.  Method names key all locations; block,
    instruction, edge and node ids follow the conventions of the layer
    the pass inspects. *)
type location =
  | Program_loc
  | Method_loc of string
  | Block_loc of string * int  (** method, block id *)
  | Instr_loc of string * int * int  (** method, block id, instruction index *)
  | Edge_loc of string * int * int  (** method, source block, destination block *)
  | Node_loc of string * int  (** method, DAG node *)
  | Branch_loc of string * Cfg.branch_id
  | Path_loc of string * int  (** method, Ball-Larus path id *)

type diagnostic = {
  severity : severity;
  pass : string;  (** which pass produced it: ["bytecode"], ["cfg"], ["dag"], ["numbering"], ["profile"], or a caller-supplied relabel *)
  loc : location;
  message : string;
}

val pp_severity : severity Fmt.t
val pp_location : location Fmt.t
val pp_diagnostic : diagnostic Fmt.t

(** One diagnostic per line, then an error/warning count line. *)
val pp_report : diagnostic list Fmt.t

val errors : diagnostic list -> diagnostic list
val has_errors : diagnostic list -> bool

(** Relabel the [pass] field, e.g. [with_pass "bytecode@inline"] to record
    which optimization stage the verified body came from. *)
val with_pass : string -> diagnostic list -> diagnostic list

(** {1 Pass 1 — bytecode verifier}

    Abstract interpretation over {!Instr.stack_effect}: a forward
    dataflow computes the operand-stack depth at entry to every block and
    demands agreement at join points, no underflow at any instruction, a
    condition value available at every [Br], and depth 1 at the exit
    block's [Ret].  Structural checks ride along: jump targets in range,
    local / global indices in bounds, [Rand] bounds positive, every
    [Call] resolving in [program]'s method table with matching arity, the
    exit block holding the only [Ret], and every block reachable.
    [program] supplies the linking context ([n_globals], the method
    table); [meth] itself need not be a member — the VM driver verifies
    inlined and unrolled bodies that exist only inside the machine. *)

val verify_method : Program.t -> Method.t -> diagnostic list

val verify_program : Program.t -> diagnostic list

(** {1 Pass 2 — CFG / DAG invariant checker} *)

(** Re-derives well-formedness from the accessor surface: a single
    [Return] terminator located at the exit block, distinct branch arms,
    at most one edge per ordered block pair, successor / predecessor /
    edge-list consistency, every block reachable from the entry and
    co-reachable from the exit, and loop-analysis agreement (every
    reported back edge's target dominates its source, headers are exactly
    the deduplicated back-edge targets, irreducibility is reported iff
    non-back retreating edges exist). *)
val check_cfg : Cfg.t -> diagnostic list

(** Checks the truncation result against its CFG and mode: acyclicity
    (every edge goes forward in the topological order, which visits each
    node exactly once, entry first and exit last), the entry node has no
    incoming and the exit node no outgoing edges, every node lies on an
    entry-to-exit path, the [Real] edges are exactly the CFG's edges
    minus the [Cut_edge] truncations, dummy edges are shared (at most one
    [From_entry] per target and one [To_exit] per source) and anchored at
    the entry / exit nodes, every truncation resolves to its dummy pair,
    and mode consistency — [Back_edge] mode cuts every back and
    irreducible edge and splits no header; [Loop_header] mode gives each
    split header distinct in/out nodes and accounts for every back edge
    either via its split header or a cut. *)
val check_dag : Dag.t -> diagnostic list

(** {1 Pass 3 — numbering auditor} *)

(** Audits edge values against an independent DP over the DAG: recomputed
    path counts must match {!Numbering.num_paths_from} at every node,
    every edge value is non-negative, and each node's out-edge intervals
    [value e, value e + num_paths_from (dst e)) exactly partition
    [0, num_paths_from v) — the interval property {!Reconstruct} depends
    on, and (by induction over the DP) a proof that path sums form a
    bijection onto [0, n_paths).  When [n_paths <= enumerate_limit]
    (default 1024) the bijection is additionally witnessed explicitly:
    every id is reconstructed via {!Reconstruct.dag_path} and its edge
    values summed back with {!Reconstruct.id_of_dag_path}. *)
val audit_numbering : ?enumerate_limit:int -> Numbering.t -> diagnostic list

(** Core of {!audit_numbering} over an arbitrary value assignment — lets
    tests audit deliberately corrupted values without forging an abstract
    {!Numbering.t} (the explicit-enumeration stage is skipped, as
    reconstruction is only defined for the real numbering). *)
val audit_values : Dag.t -> value:(Dag.edge -> int) -> diagnostic list

(** [audit_zero_arms ~zero ~freq numbering] checks smart numbering's
    placement promise: at every node with at least two out-edges, the
    unique out-edge carrying value 0 has the extremal [freq] among the
    node's arms — maximal under [`Hottest], minimal under [`Coldest]. *)
val audit_zero_arms :
  zero:[ `Hottest | `Coldest ] ->
  freq:(Dag.edge -> int) ->
  Numbering.t ->
  diagnostic list

(** {1 Pass 4 — profile lint} *)

(** Kirchhoff flow conservation for a per-method edge profile: every
    counter non-negative and keyed by a branch id the CFG contains; and,
    when [exact] (default — set it false for sampled profiles, which
    conserve flow only approximately), the counters embed into a
    consistent whole-method flow.  The lint propagates the linear system
    "block frequency = in-flow = out-flow" (branch blocks' out-flow is
    [taken + not_taken]; jump blocks forward their frequency; the entry's
    surplus is the invocation count, which must be non-negative and match
    the exit block's frequency) to a fixpoint and reports every violated
    equation.  Methods in which several blocks share one branch id
    (inlined or unrolled bodies) cannot be attributed per block; the flow
    stage is skipped with an [Info] diagnostic. *)
val lint_edge_profile : ?exact:bool -> Cfg.t -> Edge_profile.t -> diagnostic list

(** Path-profile lint against the numbering that produced the ids: every
    id within [0, n_paths), counts non-negative, memoized expansions
    equal to the reconstruction from the P-DAG (edge list and branch
    count), and — when [expected_total] is given, e.g. the sampler's
    taken-sample count — no more recorded path executions than samples
    taken. *)
val lint_path_profile :
  ?expected_total:int -> Numbering.t -> Path_profile.t -> diagnostic list

(** {1 Whole-program driver}

    Passes 1–3 over every method of a program: bytecode verification,
    CFG checks, and — for both truncation modes — DAG checks and a
    numbering audit.  Methods whose path count exceeds the numbering
    limit, or that loop-header truncation cannot handle, are reported as
    unprofilable ([Warning]) exactly as the VM treats them.  [Error]-free
    output means the program is safe for the whole profiling pipeline. *)
val check_program_static : Program.t -> diagnostic list

(** {1 Pass 5 — dataflow lints}

    Clients of the {!Dataflow} framework, reported as passes
    ["liveness"], ["interval"] and ["effects"].  All three assume bodies
    that pass {!verify_method}; on an unverifiable body they report a
    single [Error] and stop. *)

(** Dead stores and increments ({!Liveness.dead_stores}), as [Warning]s:
    legal code, but each one is wasted work the optimizer may remove. *)
val lint_liveness : Method.t -> diagnostic list

(** Interval findings ({!Intervals.findings}) as [Info]: provably
    constant branch conditions, heap indices that may wrap, divisors
    that may be zero. *)
val lint_intervals : Program.t -> Method.t -> diagnostic list

(** Independent justification of the unchecked array operations the
    threaded engine emits (see [lib/runtime/codegen.ml]): re-derives by
    abstract interpretation that the operand stack never underflows nor
    exceeds [max_stack] (default: the same bound {!Machine} compiles)
    and that every local/global index is in bounds.  Any [Error] here
    means the unchecked accesses are NOT justified. *)
val justify_unsafe :
  Program.t -> ?max_stack:int -> Method.t -> diagnostic list

(** Per-method transitive effect summaries ({!Effects.summarize}) as
    [Info] — the superinstruction-fusion precondition, surfaced so
    [pepsim check --deep] documents what the fusion planner may assume. *)
val lint_effects : Program.t -> diagnostic list

(** {1 Pass 6 — translation validation}

    Wraps {!Transval}: checks a transform's output against its source
    via the witness the transform emitted, reporting every point where
    the simulation relation breaks as an [Error] (pass ["transval"])
    located in the transformed body.  An empty report is a proof of
    semantic preservation — see {!Transval} for the argument. *)

val validate_inline :
  Program.t ->
  source:Method.t ->
  witness:Transval.inline_witness ->
  Method.t ->
  diagnostic list

val validate_unroll :
  source:Method.t ->
  witness:Transval.unroll_witness ->
  Method.t ->
  diagnostic list

val validate_layout :
  Cfg.t ->
  pos:int array ->
  predict_taken:bool array ->
  edge_extra:(int -> int -> int) ->
  taken_penalty:int ->
  mispredict_penalty:int ->
  diagnostic list

(** {1 Pass 7 — superinstruction fusion validation}

    Validates an engine-v2 fusion table ({!Fusion.witness}) against the
    body it claims to fuse, re-deriving every invariant the flat-code
    compiler relies on instead of trusting the planner: entries in
    bounds, ordered and disjoint; only hot blocks; only blocks whose
    independently-derived {!Effects.block_summary} admits fusion; each
    entry's pattern / length / terminator flag reproducible by
    {!Fusion.match_at}; stack neutrality of each replacement; and the
    whole table equal to a deterministic re-plan from the witness's own
    inputs.  Errors report under pass ["fusion"]; a valid table gets one
    [Info] line with its entry count. *)
val validate_fusion :
  witness:Fusion.witness -> Method.t -> diagnostic list

(** {1 Whole-program deep driver}

    {!check_program_static} plus, for every method whose body verifies,
    the pass-5 dataflow lints and the unsafe-op justification, an
    all-hot fusion-plan audit ({!validate_fusion} on the worst-case
    plan), and the whole-program effect summary.  This is what
    [pepsim check --deep] runs before the transform-validation replay
    sweep. *)
val check_program_deep : Program.t -> diagnostic list
