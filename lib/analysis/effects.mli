(** Per-block and per-method effect / purity summaries.

    An effect set over-approximates what executing a piece of code can
    observe or change beyond its own frame: global scalar reads/writes,
    heap reads/writes, PRNG draws, and calls.  Block summaries are
    syntactic; method summaries close the call graph to a fixpoint, so
    [writes_global (method_summary s m) = false] is a proof that running
    method [m] (including everything it transitively calls) leaves every
    global scalar untouched — the property the fuzz suite checks against
    {!Interp} runs.

    The block-level summary is the safety precondition for
    profile-selected superinstruction fusion (ROADMAP: Engine v2): a
    fused sequence must not contain a call (it needs its own frame), and
    motion across a yieldpoint additionally requires the moved suffix to
    be {!observable}-free, or a sampler could observe a state the
    unfused code never exposes. *)

type t = {
  reads_global : bool;
  writes_global : bool;
  reads_heap : bool;
  writes_heap : bool;
  draws_rand : bool;
  calls : bool;
}

val pure : t
(** The empty effect: touches nothing beyond locals and the stack. *)

val union : t -> t -> t
val equal : t -> t -> bool
val pp : t Fmt.t

(** [observable e] — can code with effect [e] be noticed by the rest of
    the system without running to the method's return?  True on any
    global/heap write or PRNG draw. *)
val observable : t -> bool

(** [fusable e] — may a block with effect [e] be folded into a single
    superinstruction?  Requires no call; everything else folds. *)
val fusable : t -> bool

(** Syntactic effect of one block in isolation — no program context, so
    it works on optimizer-transformed bodies that exist only inside the
    machine.  Agrees with {!block_effect} on program members. *)
val block_summary : Method.block -> t

type summary

val summarize : Program.t -> summary

(** Syntactic effect of one block of one method (calls not resolved). *)
val block_effect : summary -> int -> int -> t

(** Transitive effect of invoking the method: its blocks' effects joined
    with every transitively-called method's.  [calls] is true iff the
    method can make any call at all. *)
val method_effect : summary -> int -> t

(** Blocks of a method that satisfy {!fusable}. *)
val fusable_blocks : summary -> int -> int list
