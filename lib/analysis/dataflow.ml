module type DOMAIN = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
  val pp : t Fmt.t
end

type direction = Forward | Backward

module Solver (D : DOMAIN) = struct
  type solution = { inb : D.t array; outb : D.t array; transfers : int }

  let solve ~direction ~init ~transfer ?edge_refine ?widen cfg =
    let n = Cfg.n_blocks cfg in
    let refine = match edge_refine with Some f -> f | None -> fun _ d -> d in
    let inb = Array.make n D.bottom and outb = Array.make n D.bottom in
    (* Iteration order: reverse postorder forward, postorder backward —
       both visit a block after (most of) the blocks feeding it. *)
    let order =
      match direction with
      | Forward -> Order.reverse_postorder cfg
      | Backward ->
          let rpo = Order.reverse_postorder cfg in
          let k = Array.length rpo in
          Array.init k (fun i -> rpo.(k - 1 - i))
    in
    let rank = Array.make n max_int in
    Array.iteri (fun i b -> rank.(b) <- i) order;
    let boundary =
      match direction with Forward -> Cfg.entry cfg | Backward -> Cfg.exit_ cfg
    in
    (* The joined input fact for [b]: boundary fact at the boundary
       block, plus every incoming (forward) / outgoing (backward) edge's
       refined neighbour fact. *)
    let joined b =
      let base = if b = boundary then init else D.bottom in
      match direction with
      | Forward ->
          List.fold_left
            (fun acc (e : Cfg.edge) -> D.join acc (refine e outb.(e.src)))
            base (Cfg.predecessors cfg b)
      | Backward ->
          List.fold_left
            (fun acc (e : Cfg.edge) -> D.join acc (refine e inb.(e.dst)))
            base (Cfg.successors cfg b)
    in
    let in_queue = Array.make n false in
    let visited = Array.make n false in
    (* Deterministic worklist: a binary heap keyed by iteration rank
       would be overkill at these sizes — a sorted re-scan per round
       keeps the code obvious and the order exact. *)
    let pending = ref [] in
    let enqueue b =
      if rank.(b) < max_int && not in_queue.(b) then begin
        in_queue.(b) <- true;
        pending := b :: !pending
      end
    in
    Array.iter enqueue order;
    let transfers = ref 0 in
    let budget = (n + 1) * 1000 in
    let step b =
      in_queue.(b) <- false;
      let j = joined b in
      let j =
        match widen with
        | Some w when visited.(b) ->
            let old =
              match direction with Forward -> inb.(b) | Backward -> outb.(b)
            in
            w b ~old (D.join old j)
        | Some _ | None -> j
      in
      let old_in, old_out =
        match direction with
        | Forward -> (inb.(b), outb.(b))
        | Backward -> (outb.(b), inb.(b))
      in
      if visited.(b) && D.equal j old_in then ()
      else begin
        visited.(b) <- true;
        incr transfers;
        if !transfers > budget then
          failwith
            (Fmt.str "Dataflow.solve: no fixpoint after %d transfers on %s"
               budget (Cfg.name cfg));
        let out = transfer b j in
        (match direction with
        | Forward ->
            inb.(b) <- j;
            outb.(b) <- out
        | Backward ->
            outb.(b) <- j;
            inb.(b) <- out);
        if not (D.equal out old_out) then
          match direction with
          | Forward ->
              List.iter
                (fun (e : Cfg.edge) -> enqueue e.dst)
                (Cfg.successors cfg b)
          | Backward ->
              List.iter
                (fun (e : Cfg.edge) -> enqueue e.src)
                (Cfg.predecessors cfg b)
      end
    in
    while !pending <> [] do
      let batch =
        List.sort (fun a b -> compare rank.(a) rank.(b)) !pending
      in
      pending := [];
      List.iter step batch
    done;
    { inb; outb; transfers = !transfers }
end
