(** Backward live-locals analysis over a method body, plus the
    dead-store lint built on it.

    A local is {e live} at a program point if some path from that point
    reads it ([Load] or the read half of [Inc]) before writing it
    ([Store] or [Inc]).  The analysis is a {!Dataflow} backward problem
    over the method's CFG with set union as the join; soundness means
    every local the interpreter actually reads after a point is in the
    computed live set at that point (the fuzz suite cross-checks this by
    deleting provably dead stores and comparing {!Interp} results). *)

module S : Set.S with type elt = int

type t = {
  live_in : S.t array;  (** locals live at each block's entry *)
  live_out : S.t array;  (** locals live at each block's exit *)
}

(** @raise Cfg.Malformed if the body has no CFG (callers run
    {!Pep_check.verify_method} first). *)
val analyze : Method.t -> t

type dead_store = {
  block : int;
  index : int;  (** instruction index within the block *)
  local : int;
  kind : [ `Store | `Inc ];
}

(** Stores and increments whose written value no execution can observe:
    the target local is dead immediately after the instruction.  A dead
    [Store] can be replaced by [Pop], a dead [Inc] deleted, without
    changing program behaviour. *)
val dead_stores : Method.t -> dead_store list
