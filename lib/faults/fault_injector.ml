type counts = {
  compile_fail : int;
  sample_overrun : int;
  store_corrupt : int;
  backoffs : int;
  gaveups : int;
  samples_dropped : int;
  path_overflow : int;
  edge_overflow : int;
  quarantined : int;
}

(* Mirrored metric: a plain int always (for invariant read-back), a
   registry counter when a sink is attached. *)
type cell = { mutable n : int; metric : Metrics.counter option }

let cell metrics name =
  { n = 0; metric = Option.map (fun m -> Metrics.counter m name) metrics }

let bump c =
  c.n <- c.n + 1;
  match c.metric with Some m -> Metrics.incr m | None -> ()

type t = {
  plan : Fault_plan.t;
  tel : Telemetry.t option;
  (* per-site decision-stream ordinals; corrupt streams are per input
     kind so e.g. "advice" and "store" decisions stay independent *)
  mutable n_compile : int;
  mutable n_sample : int;
  n_corrupt : (string, int ref) Hashtbl.t;
  c_compile_fail : cell;
  c_sample_overrun : cell;
  c_store_corrupt : cell;
  c_backoff : cell;
  c_gaveup : cell;
  c_sample_dropped : cell;
  c_path_overflow : cell;
  c_edge_overflow : cell;
  c_quarantined : cell;
}

let create ?telemetry plan =
  let metrics = Option.map Telemetry.metrics telemetry in
  {
    plan;
    tel = telemetry;
    n_compile = 0;
    n_sample = 0;
    n_corrupt = Hashtbl.create 4;
    c_compile_fail = cell metrics "fault.compile_fail";
    c_sample_overrun = cell metrics "fault.sample_overrun";
    c_store_corrupt = cell metrics "fault.store_corrupt";
    c_backoff = cell metrics "degrade.compile_backoff";
    c_gaveup = cell metrics "degrade.compile_gaveup";
    c_sample_dropped = cell metrics "degrade.sample_dropped";
    c_path_overflow = cell metrics "degrade.path_overflow";
    c_edge_overflow = cell metrics "degrade.edge_overflow";
    c_quarantined = cell metrics "degrade.input_quarantined";
  }

let plan t = t.plan

(* SplitMix64 over (seed, site salt, ordinal): the same triple always
   yields the same decision, independent of everything else in the
   process. *)
let mix seed salt n =
  let z =
    Int64.add
      (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
      (Int64.add
         (Int64.mul (Int64.of_int salt) 0xBF58476D1CE4E5B9L)
         (Int64.mul (Int64.of_int (n + 1)) 0x94D049BB133111EBL))
  in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let unit_float h =
  (* top 53 bits -> [0,1) *)
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0

let fires t ~salt ~p n =
  if p <= 0. then false
  else if p >= 1. then true
  else unit_float (mix t.plan.Fault_plan.seed salt n) < p

let instant t ~ts ~cat ~name args =
  match t.tel with
  | None -> ()
  | Some tel -> Telemetry.instant tel ~ts ~cat ~name ~args ()

let fire_compile_fail t ~ts ~meth =
  let n = t.n_compile in
  t.n_compile <- n + 1;
  let hit = fires t ~salt:1 ~p:t.plan.Fault_plan.compile_fail n in
  if hit then begin
    bump t.c_compile_fail;
    instant t ~ts ~cat:"fault" ~name:"compile_fail" [ ("method", meth) ]
  end;
  hit

let fire_sample_overrun t ~ts ~meth =
  let n = t.n_sample in
  t.n_sample <- n + 1;
  let hit = fires t ~salt:2 ~p:t.plan.Fault_plan.sample_overrun n in
  if hit then begin
    bump t.c_sample_overrun;
    instant t ~ts ~cat:"fault" ~name:"sample_overrun" [ ("method", meth) ]
  end;
  hit

(* FNV-1a, so the per-kind salt does not depend on [Hashtbl.hash]'s
   implementation details. *)
let str_hash s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    s;
  !h

let fire_corrupt t ~what =
  let counter =
    match Hashtbl.find_opt t.n_corrupt what with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.replace t.n_corrupt what r;
        r
  in
  let n = !counter in
  incr counter;
  let hit = fires t ~salt:(3 + (8 * str_hash what)) ~p:t.plan.Fault_plan.corrupt n in
  if hit then begin
    bump t.c_store_corrupt;
    instant t ~ts:0 ~cat:"fault" ~name:"store_corrupt" [ ("what", what) ]
  end;
  hit

let note_backoff t ~ts ~meth ~until ~attempt =
  bump t.c_backoff;
  instant t ~ts ~cat:"degrade" ~name:"compile_backoff"
    [
      ("method", meth);
      ("until", string_of_int until);
      ("attempt", string_of_int attempt);
    ]

let note_gaveup t ~ts ~meth =
  bump t.c_gaveup;
  instant t ~ts ~cat:"degrade" ~name:"compile_gaveup" [ ("method", meth) ]

let note_sample_dropped t ~ts ~meth =
  bump t.c_sample_dropped;
  instant t ~ts ~cat:"degrade" ~name:"sample_dropped" [ ("method", meth) ]

let note_table_overflow t ~ts ~kind ~meth =
  let c, name =
    match kind with
    | `Path -> (t.c_path_overflow, "path_overflow")
    | `Edge -> (t.c_edge_overflow, "edge_overflow")
  in
  bump c;
  instant t ~ts ~cat:"degrade" ~name [ ("method", meth) ]

let note_quarantine t ~what ~reason =
  bump t.c_quarantined;
  instant t ~ts:0 ~cat:"degrade" ~name:"input_quarantined"
    [ ("what", what); ("reason", reason) ]

let counts t =
  {
    compile_fail = t.c_compile_fail.n;
    sample_overrun = t.c_sample_overrun.n;
    store_corrupt = t.c_store_corrupt.n;
    backoffs = t.c_backoff.n;
    gaveups = t.c_gaveup.n;
    samples_dropped = t.c_sample_dropped.n;
    path_overflow = t.c_path_overflow.n;
    edge_overflow = t.c_edge_overflow.n;
    quarantined = t.c_quarantined.n;
  }

let accounted c =
  if c.compile_fail <> c.backoffs + c.gaveups then
    Error
      (Fmt.str
         "fault.compile_fail=%d but degrade.compile_backoff=%d + \
          degrade.compile_gaveup=%d"
         c.compile_fail c.backoffs c.gaveups)
  else if c.sample_overrun <> c.samples_dropped then
    Error
      (Fmt.str "fault.sample_overrun=%d but degrade.sample_dropped=%d"
         c.sample_overrun c.samples_dropped)
  else if c.store_corrupt <> c.quarantined then
    Error
      (Fmt.str "fault.store_corrupt=%d but degrade.input_quarantined=%d"
         c.store_corrupt c.quarantined)
  else Ok ()
