type counts = {
  compile_fail : int;
  sample_overrun : int;
  store_corrupt : int;
  backoffs : int;
  gaveups : int;
  samples_dropped : int;
  path_overflow : int;
  edge_overflow : int;
  quarantined : int;
  instance_crash : int;
  torn_write : int;
  straggler : int;
  seg_corrupt : int;
  restarts : int;
  lost_instances : int;
  writes_recovered : int;
  catchups : int;
  seg_quarantined : int;
}

(* Mirrored metric: a plain int always (for invariant read-back), a
   registry counter when a sink is attached. *)
type cell = { mutable n : int; metric : Metrics.counter option }

let cell metrics name =
  { n = 0; metric = Option.map (fun m -> Metrics.counter m name) metrics }

let bump c =
  c.n <- c.n + 1;
  match c.metric with Some m -> Metrics.incr m | None -> ()

let bump_by c k =
  if k <> 0 then begin
    c.n <- c.n + k;
    match c.metric with Some m -> Metrics.incr ~by:k m | None -> ()
  end

type t = {
  plan : Fault_plan.t;
  tel : Telemetry.t option;
  (* per-site decision-stream ordinals; corrupt streams are per input
     kind so e.g. "advice" and "store" decisions stay independent *)
  mutable n_compile : int;
  mutable n_sample : int;
  n_corrupt : (string, int ref) Hashtbl.t;
  (* fleet decision streams, keyed per (site, instance-or-file) so a
     decision depends only on the plan and on how often that particular
     key was consulted — never on domain scheduling or write order *)
  n_keyed : (int * string, int ref) Hashtbl.t;
  c_compile_fail : cell;
  c_sample_overrun : cell;
  c_store_corrupt : cell;
  c_backoff : cell;
  c_gaveup : cell;
  c_sample_dropped : cell;
  c_path_overflow : cell;
  c_edge_overflow : cell;
  c_quarantined : cell;
  c_instance_crash : cell;
  c_torn_write : cell;
  c_straggler : cell;
  c_seg_corrupt : cell;
  c_restart : cell;
  c_instance_lost : cell;
  c_write_recovered : cell;
  c_catchup : cell;
  c_seg_quarantined : cell;
}

let create ?telemetry plan =
  let metrics = Option.map Telemetry.metrics telemetry in
  {
    plan;
    tel = telemetry;
    n_compile = 0;
    n_sample = 0;
    n_corrupt = Hashtbl.create 4;
    n_keyed = Hashtbl.create 16;
    c_compile_fail = cell metrics "fault.compile_fail";
    c_sample_overrun = cell metrics "fault.sample_overrun";
    c_store_corrupt = cell metrics "fault.store_corrupt";
    c_backoff = cell metrics "degrade.compile_backoff";
    c_gaveup = cell metrics "degrade.compile_gaveup";
    c_sample_dropped = cell metrics "degrade.sample_dropped";
    c_path_overflow = cell metrics "degrade.path_overflow";
    c_edge_overflow = cell metrics "degrade.edge_overflow";
    c_quarantined = cell metrics "degrade.input_quarantined";
    c_instance_crash = cell metrics "fault.instance_crash";
    c_torn_write = cell metrics "fault.torn_write";
    c_straggler = cell metrics "fault.straggler";
    c_seg_corrupt = cell metrics "fault.seg_corrupt";
    c_restart = cell metrics "degrade.instance_restart";
    c_instance_lost = cell metrics "degrade.instance_lost";
    c_write_recovered = cell metrics "degrade.write_recovered";
    c_catchup = cell metrics "degrade.window_catchup";
    c_seg_quarantined = cell metrics "degrade.seg_quarantined";
  }

let plan t = t.plan

(* SplitMix64 over (seed, site salt, ordinal): the same triple always
   yields the same decision, independent of everything else in the
   process. *)
let mix seed salt n =
  let z =
    Int64.add
      (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
      (Int64.add
         (Int64.mul (Int64.of_int salt) 0xBF58476D1CE4E5B9L)
         (Int64.mul (Int64.of_int (n + 1)) 0x94D049BB133111EBL))
  in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let unit_float h =
  (* top 53 bits -> [0,1) *)
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0

let fires t ~salt ~p n =
  if p <= 0. then false
  else if p >= 1. then true
  else unit_float (mix t.plan.Fault_plan.seed salt n) < p

let instant t ~ts ~cat ~name args =
  match t.tel with
  | None -> ()
  | Some tel -> Telemetry.instant tel ~ts ~cat ~name ~args ()

let fire_compile_fail t ~ts ~meth =
  let n = t.n_compile in
  t.n_compile <- n + 1;
  let hit = fires t ~salt:1 ~p:t.plan.Fault_plan.compile_fail n in
  if hit then begin
    bump t.c_compile_fail;
    instant t ~ts ~cat:"fault" ~name:"compile_fail" [ ("method", meth) ]
  end;
  hit

let fire_sample_overrun t ~ts ~meth =
  let n = t.n_sample in
  t.n_sample <- n + 1;
  let hit = fires t ~salt:2 ~p:t.plan.Fault_plan.sample_overrun n in
  if hit then begin
    bump t.c_sample_overrun;
    instant t ~ts ~cat:"fault" ~name:"sample_overrun" [ ("method", meth) ]
  end;
  hit

(* FNV-1a, so the per-kind salt does not depend on [Hashtbl.hash]'s
   implementation details. *)
let str_hash s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    s;
  !h

let fire_corrupt t ~what =
  let counter =
    match Hashtbl.find_opt t.n_corrupt what with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.replace t.n_corrupt what r;
        r
  in
  let n = !counter in
  incr counter;
  let hit = fires t ~salt:(3 + (8 * str_hash what)) ~p:t.plan.Fault_plan.corrupt n in
  if hit then begin
    bump t.c_store_corrupt;
    instant t ~ts:0 ~cat:"fault" ~name:"store_corrupt" [ ("what", what) ]
  end;
  hit

(* One consult of a keyed fleet stream.  The site [base]s are distinct
   mod 8 from every other salt family (1 = compile, 2 = sample,
   3 + 8h = corrupt), so streams never collide.  On a hit the low hash
   bits come back as a deterministic draw — byte offset for torn and
   corrupt writes, delay for stragglers — so the *shape* of the damage
   is as reproducible as the decision itself. *)
let keyed_fire t ~base ~key ~p =
  let counter =
    match Hashtbl.find_opt t.n_keyed (base, key) with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.replace t.n_keyed (base, key) r;
        r
  in
  let n = !counter in
  incr counter;
  if p <= 0. then None
  else
    let h = mix t.plan.Fault_plan.seed (base + (8 * str_hash key)) n in
    if p >= 1. || unit_float h < p then
      Some (Int64.to_int (Int64.logand h 0x3FFFFFFFL))
    else None

let fire_instance_crash t ~instance ~window =
  match keyed_fire t ~base:4 ~key:instance ~p:t.plan.Fault_plan.crash with
  | Some _ ->
      bump t.c_instance_crash;
      instant t ~ts:0 ~cat:"fault" ~name:"instance_crash"
        [ ("instance", instance); ("window", string_of_int window) ];
      true
  | None -> false

let fire_torn_write t ~file =
  match keyed_fire t ~base:5 ~key:file ~p:t.plan.Fault_plan.torn_write with
  | Some draw ->
      bump t.c_torn_write;
      instant t ~ts:0 ~cat:"fault" ~name:"torn_write" [ ("file", file) ];
      Some draw
  | None -> None

let fire_straggler t ~instance ~window =
  match keyed_fire t ~base:6 ~key:instance ~p:t.plan.Fault_plan.straggler with
  | Some draw ->
      bump t.c_straggler;
      instant t ~ts:0 ~cat:"fault" ~name:"straggler"
        [ ("instance", instance); ("window", string_of_int window) ];
      let timeout = max 1 t.plan.Fault_plan.straggler_timeout in
      Some (1 + (draw mod timeout))
  | None -> None

let fire_segment_corrupt t ~file =
  match keyed_fire t ~base:7 ~key:file ~p:t.plan.Fault_plan.seg_corrupt with
  | Some draw ->
      bump t.c_seg_corrupt;
      instant t ~ts:0 ~cat:"fault" ~name:"seg_corrupt" [ ("file", file) ];
      Some draw
  | None -> None

let note_instance_restart t ~instance ~attempt =
  bump t.c_restart;
  instant t ~ts:0 ~cat:"degrade" ~name:"instance_restart"
    [ ("instance", instance); ("attempt", string_of_int attempt) ]

let note_instance_lost t ~instance =
  bump t.c_instance_lost;
  instant t ~ts:0 ~cat:"degrade" ~name:"instance_lost"
    [ ("instance", instance) ]

let note_write_recovered t ~file =
  bump t.c_write_recovered;
  instant t ~ts:0 ~cat:"degrade" ~name:"write_recovered" [ ("file", file) ]

let note_window_catchup t ~instance ~window =
  bump t.c_catchup;
  instant t ~ts:0 ~cat:"degrade" ~name:"window_catchup"
    [ ("instance", instance); ("window", string_of_int window) ]

let note_segment_quarantined t ~file ~reason =
  bump t.c_seg_quarantined;
  instant t ~ts:0 ~cat:"degrade" ~name:"seg_quarantined"
    [ ("file", file); ("reason", reason) ]

let note_backoff t ~ts ~meth ~until ~attempt =
  bump t.c_backoff;
  instant t ~ts ~cat:"degrade" ~name:"compile_backoff"
    [
      ("method", meth);
      ("until", string_of_int until);
      ("attempt", string_of_int attempt);
    ]

let note_gaveup t ~ts ~meth =
  bump t.c_gaveup;
  instant t ~ts ~cat:"degrade" ~name:"compile_gaveup" [ ("method", meth) ]

let note_sample_dropped t ~ts ~meth =
  bump t.c_sample_dropped;
  instant t ~ts ~cat:"degrade" ~name:"sample_dropped" [ ("method", meth) ]

let note_table_overflow t ~ts ~kind ~meth =
  let c, name =
    match kind with
    | `Path -> (t.c_path_overflow, "path_overflow")
    | `Edge -> (t.c_edge_overflow, "edge_overflow")
  in
  bump c;
  instant t ~ts ~cat:"degrade" ~name [ ("method", meth) ]

let note_quarantine t ~what ~reason =
  bump t.c_quarantined;
  instant t ~ts:0 ~cat:"degrade" ~name:"input_quarantined"
    [ ("what", what); ("reason", reason) ]

let counts t =
  {
    compile_fail = t.c_compile_fail.n;
    sample_overrun = t.c_sample_overrun.n;
    store_corrupt = t.c_store_corrupt.n;
    backoffs = t.c_backoff.n;
    gaveups = t.c_gaveup.n;
    samples_dropped = t.c_sample_dropped.n;
    path_overflow = t.c_path_overflow.n;
    edge_overflow = t.c_edge_overflow.n;
    quarantined = t.c_quarantined.n;
    instance_crash = t.c_instance_crash.n;
    torn_write = t.c_torn_write.n;
    straggler = t.c_straggler.n;
    seg_corrupt = t.c_seg_corrupt.n;
    restarts = t.c_restart.n;
    lost_instances = t.c_instance_lost.n;
    writes_recovered = t.c_write_recovered.n;
    catchups = t.c_catchup.n;
    seg_quarantined = t.c_seg_quarantined.n;
  }

(* Fold a worker injector's read-back into this (main-domain) injector.
   Workers each run their own injector over disjoint keyed streams, so
   summing counts is exact; the merge order only affects nothing. *)
let absorb t (c : counts) =
  bump_by t.c_compile_fail c.compile_fail;
  bump_by t.c_sample_overrun c.sample_overrun;
  bump_by t.c_store_corrupt c.store_corrupt;
  bump_by t.c_backoff c.backoffs;
  bump_by t.c_gaveup c.gaveups;
  bump_by t.c_sample_dropped c.samples_dropped;
  bump_by t.c_path_overflow c.path_overflow;
  bump_by t.c_edge_overflow c.edge_overflow;
  bump_by t.c_quarantined c.quarantined;
  bump_by t.c_instance_crash c.instance_crash;
  bump_by t.c_torn_write c.torn_write;
  bump_by t.c_straggler c.straggler;
  bump_by t.c_seg_corrupt c.seg_corrupt;
  bump_by t.c_restart c.restarts;
  bump_by t.c_instance_lost c.lost_instances;
  bump_by t.c_write_recovered c.writes_recovered;
  bump_by t.c_catchup c.catchups;
  bump_by t.c_seg_quarantined c.seg_quarantined

let accounted c =
  if c.compile_fail <> c.backoffs + c.gaveups then
    Error
      (Fmt.str
         "fault.compile_fail=%d but degrade.compile_backoff=%d + \
          degrade.compile_gaveup=%d"
         c.compile_fail c.backoffs c.gaveups)
  else if c.sample_overrun <> c.samples_dropped then
    Error
      (Fmt.str "fault.sample_overrun=%d but degrade.sample_dropped=%d"
         c.sample_overrun c.samples_dropped)
  else if c.store_corrupt <> c.quarantined then
    Error
      (Fmt.str "fault.store_corrupt=%d but degrade.input_quarantined=%d"
         c.store_corrupt c.quarantined)
  else if c.instance_crash <> c.restarts + c.lost_instances then
    Error
      (Fmt.str
         "fault.instance_crash=%d but degrade.instance_restart=%d + \
          degrade.instance_lost=%d"
         c.instance_crash c.restarts c.lost_instances)
  else if c.torn_write <> c.writes_recovered then
    Error
      (Fmt.str "fault.torn_write=%d but degrade.write_recovered=%d"
         c.torn_write c.writes_recovered)
  else if c.straggler <> c.catchups then
    Error
      (Fmt.str "fault.straggler=%d but degrade.window_catchup=%d" c.straggler
         c.catchups)
  else if c.seg_corrupt <> c.seg_quarantined then
    Error
      (Fmt.str "fault.seg_corrupt=%d but degrade.seg_quarantined=%d"
         c.seg_corrupt c.seg_quarantined)
  else Ok ()
