(** Runtime half of a {!Fault_plan}: deterministic decision streams plus
    the [fault.*] / [degrade.*] accounting every degradation must pass
    through.

    Each injection site draws from its own counter-indexed stream — a
    SplitMix64 hash of (plan seed, site salt, event ordinal) — so
    decisions depend only on the plan and on how many times the site was
    consulted, never on wall-clock time, allocation addresses or domain
    scheduling.  Two runs with the same plan and the same event order
    fault identically; the empty stream (probability 0) never hashes at
    all.

    Faults ([fault.*]) are the injected events; degradations
    ([degrade.*]) are the system's graceful responses.  The chaos sweep
    holds them to an accounting identity: every fault must be matched by
    a recorded degradation (e.g. [fault.compile_fail =
    degrade.compile_backoff + degrade.compile_gaveup]).  All recording
    is host-side: with a telemetry sink attached the counters and trace
    instants appear, without one only the internal {!counts} are kept —
    simulated cycles are identical either way. *)

type t

val create : ?telemetry:Telemetry.t -> Fault_plan.t -> t
val plan : t -> Fault_plan.t

(** {1 Decision streams}

    Each consult consumes one slot of the site's stream.  A [true]
    return has already been counted as the corresponding [fault.*]
    event (with a trace instant at [ts] when tracing). *)

val fire_compile_fail : t -> ts:int -> meth:string -> bool
val fire_sample_overrun : t -> ts:int -> meth:string -> bool

(** Host-side (no virtual timestamp): did this load of input kind
    [what] ("advice", "dcg", "store") observe a corrupted record?  Each
    kind draws from its own stream.  The caller must quarantine and
    recompute on [true] — {!accounted} holds [fault.store_corrupt] to
    [degrade.input_quarantined]. *)
val fire_corrupt : t -> what:string -> bool

(** {1 Fleet decision streams}

    Fleet sites are keyed per instance or per segment file: each key
    owns a private counter-indexed stream, so decisions are independent
    of domain scheduling and store write order — the property that
    keeps jobs-N byte-identity alive under injection.  All are
    host-side (no virtual timestamp): fleet faults never touch the
    simulated machines. *)

(** Does this instance crash while collecting [window]?  The ordinal
    stream persists across restart attempts, so a restarted instance
    re-draws (and may crash at a different window). *)
val fire_instance_crash : t -> instance:string -> window:int -> bool

(** Is this segment write torn (partial bytes on disk, no journal
    commit)?  [Some draw] carries the deterministic cut-offset seed. *)
val fire_torn_write : t -> file:string -> int option

(** Does this finished window miss its write deadline?  [Some delay]
    is the number of windows (1..straggler-timeout) it arrives late. *)
val fire_straggler : t -> instance:string -> window:int -> int option

(** Is this completed segment write silently corrupted (byte flip that
    only the digest check can see)?  [Some draw] seeds the flip
    position. *)
val fire_segment_corrupt : t -> file:string -> int option

(** {1 Fleet degradation accounting} *)

(** A crashed instance was restarted from scratch (seeded, attempt-th
    try); the replayed windows are byte-identical by construction. *)
val note_instance_restart : t -> instance:string -> attempt:int -> unit

(** The restart cap is exhausted: windows collected before the final
    crash survive, the rest of the instance's data is lost. *)
val note_instance_lost : t -> instance:string -> unit

(** A torn write was detected (journal intent without commit) and the
    partial file discarded; the segment will be re-collected. *)
val note_write_recovered : t -> file:string -> unit

(** A straggler's window arrived after its deadline and was folded into
    the store out of order (catch-up write). *)
val note_window_catchup : t -> instance:string -> window:int -> unit

(** A corrupt segment failed its digest, was quarantined
    ([*.quarantined]) and queued for bounded re-collection. *)
val note_segment_quarantined : t -> file:string -> reason:string -> unit

(** {1 Degradation accounting} *)

(** A failed optimizing compile was re-queued: the method retries no
    earlier than virtual cycle [until] (exponential in [attempt]). *)
val note_backoff : t -> ts:int -> meth:string -> until:int -> attempt:int -> unit

(** The retry cap is exhausted: the method is pinned at baseline. *)
val note_gaveup : t -> ts:int -> meth:string -> unit

(** A sample was dropped (handler budget overrun); the path register
    was still reset by the instrumentation. *)
val note_sample_dropped : t -> ts:int -> meth:string -> unit

(** A bounded profile table dropped an update (capacity reached). *)
val note_table_overflow : t -> ts:int -> kind:[ `Path | `Edge ] -> meth:string -> unit

(** A corrupt/truncated input (advice, DCG, store entry) was quarantined
    with a structured diagnostic and the work recomputed. *)
val note_quarantine : t -> what:string -> reason:string -> unit

(** {1 Read-back for invariant checks} *)

type counts = {
  compile_fail : int;
  sample_overrun : int;
  store_corrupt : int;
  backoffs : int;
  gaveups : int;
  samples_dropped : int;
  path_overflow : int;
  edge_overflow : int;
  quarantined : int;
  instance_crash : int;
  torn_write : int;
  straggler : int;
  seg_corrupt : int;
  restarts : int;
  lost_instances : int;
  writes_recovered : int;
  catchups : int;
  seg_quarantined : int;
}

val counts : t -> counts

(** Fold a worker injector's {!counts} into this injector's cells (and
    its metrics, when a sink is attached).  Fleet workers run private
    injectors over disjoint keyed streams; the main domain absorbs
    their read-backs so the run-level accounting identity covers every
    injection regardless of sharding. *)
val absorb : t -> counts -> unit

(** [fault.compile_fail = degrade.compile_backoff + degrade.compile_gaveup],
    [fault.sample_overrun = degrade.sample_dropped],
    [fault.store_corrupt = degrade.input_quarantined],
    [fault.instance_crash = degrade.instance_restart + degrade.instance_lost],
    [fault.torn_write = degrade.write_recovered],
    [fault.straggler = degrade.window_catchup] and
    [fault.seg_corrupt = degrade.seg_quarantined]: every injected
    fault is matched by a recorded graceful response.  [Error] describes
    the first violated identity. *)
val accounted : counts -> (unit, string) result
