(** Runtime half of a {!Fault_plan}: deterministic decision streams plus
    the [fault.*] / [degrade.*] accounting every degradation must pass
    through.

    Each injection site draws from its own counter-indexed stream — a
    SplitMix64 hash of (plan seed, site salt, event ordinal) — so
    decisions depend only on the plan and on how many times the site was
    consulted, never on wall-clock time, allocation addresses or domain
    scheduling.  Two runs with the same plan and the same event order
    fault identically; the empty stream (probability 0) never hashes at
    all.

    Faults ([fault.*]) are the injected events; degradations
    ([degrade.*]) are the system's graceful responses.  The chaos sweep
    holds them to an accounting identity: every fault must be matched by
    a recorded degradation (e.g. [fault.compile_fail =
    degrade.compile_backoff + degrade.compile_gaveup]).  All recording
    is host-side: with a telemetry sink attached the counters and trace
    instants appear, without one only the internal {!counts} are kept —
    simulated cycles are identical either way. *)

type t

val create : ?telemetry:Telemetry.t -> Fault_plan.t -> t
val plan : t -> Fault_plan.t

(** {1 Decision streams}

    Each consult consumes one slot of the site's stream.  A [true]
    return has already been counted as the corresponding [fault.*]
    event (with a trace instant at [ts] when tracing). *)

val fire_compile_fail : t -> ts:int -> meth:string -> bool
val fire_sample_overrun : t -> ts:int -> meth:string -> bool

(** Host-side (no virtual timestamp): did this load of input kind
    [what] ("advice", "dcg", "store") observe a corrupted record?  Each
    kind draws from its own stream.  The caller must quarantine and
    recompute on [true] — {!accounted} holds [fault.store_corrupt] to
    [degrade.input_quarantined]. *)
val fire_corrupt : t -> what:string -> bool

(** {1 Degradation accounting} *)

(** A failed optimizing compile was re-queued: the method retries no
    earlier than virtual cycle [until] (exponential in [attempt]). *)
val note_backoff : t -> ts:int -> meth:string -> until:int -> attempt:int -> unit

(** The retry cap is exhausted: the method is pinned at baseline. *)
val note_gaveup : t -> ts:int -> meth:string -> unit

(** A sample was dropped (handler budget overrun); the path register
    was still reset by the instrumentation. *)
val note_sample_dropped : t -> ts:int -> meth:string -> unit

(** A bounded profile table dropped an update (capacity reached). *)
val note_table_overflow : t -> ts:int -> kind:[ `Path | `Edge ] -> meth:string -> unit

(** A corrupt/truncated input (advice, DCG, store entry) was quarantined
    with a structured diagnostic and the work recomputed. *)
val note_quarantine : t -> what:string -> reason:string -> unit

(** {1 Read-back for invariant checks} *)

type counts = {
  compile_fail : int;
  sample_overrun : int;
  store_corrupt : int;
  backoffs : int;
  gaveups : int;
  samples_dropped : int;
  path_overflow : int;
  edge_overflow : int;
  quarantined : int;
}

val counts : t -> counts

(** [fault.compile_fail = degrade.compile_backoff + degrade.compile_gaveup],
    [fault.sample_overrun = degrade.sample_dropped] and
    [fault.store_corrupt = degrade.input_quarantined]: every injected
    fault is matched by a recorded graceful response.  [Error] describes
    the first violated identity. *)
val accounted : counts -> (unit, string) result
