(** Deterministic fault plans (the degrade-don't-crash axis).

    PEP is explicitly a graceful-degradation design: methods whose CFGs
    exceed the path limit fall back to edge profiling, fixed-size
    profile tables drop updates on overflow, and samples that cannot be
    stored are lost (paper §3.2, §4.3).  A fault plan makes the rest of
    that story injectable and provable: it is a {e pure description} of
    which faults fire, parsed from a [--faults] spec, with every
    decision derived from the plan's seed and a per-site event counter —
    never from wall-clock time or I/O — so a faulted run is exactly as
    reproducible as a healthy one.

    The spec is a comma-separated list of clauses:

    {v
    seed=N               decision-stream seed (default 0)
    noop                 mark the plan active without injecting anything
    path-cap=N           per-method path-table capacity (distinct paths)
    edge-cap=N           per-method edge-table capacity (distinct branches)
    compile-fail=P       probability in [0,1] that an optimizing compile fails
    compile-retries=N    failed-compile retry cap (default 3)
    compile-backoff=N    base virtual-cycle backoff before a retry (default 50000)
    sample-overrun=P     probability the sample handler overruns its budget
    corrupt=P            probability a persisted run-cache entry is written corrupted
    crash=P              probability a fleet instance crashes in a given window
    crash-restarts=N     seeded-restart cap before an instance is declared lost (default 4)
    torn-write=P         probability a segment write is torn (partial bytes, no commit)
    straggler=P          probability a finished window misses its write deadline
    straggler-timeout=N  windows of delay before a straggler is force-collected (default 2)
    seg-corrupt=P        probability a completed segment write is silently corrupted
    seg-retries=N        re-collection rounds (injection live) before a forced clean write (default 3)
    v}

    A spec starting with [@] names a file holding clauses (one per line
    or comma-separated; [#] comments allowed).  The empty spec is
    {!empty}: no injection machinery is created at all, and the run is
    bit-identical to a build without the fault subsystem.  The [noop]
    plan creates the full machinery but never fires — the cheap way to
    prove the threading itself costs no simulated cycles. *)

type t = {
  seed : int;
  noop : bool;  (** active but inert (see above) *)
  path_capacity : int option;
  edge_capacity : int option;
  compile_fail : float;
  compile_retries : int;
  compile_backoff : int;
  sample_overrun : float;
  corrupt : float;
  crash : float;
  crash_restarts : int;
  torn_write : float;
  straggler : float;
  straggler_timeout : int;
  seg_corrupt : float;
  seg_retries : int;
}

val empty : t

(** No clause beyond [seed] is set: no injector is built, the run takes
    the exact pre-fault code paths. *)
val is_empty : t -> bool

(** The plan can change what the simulated machine does (table bounds,
    compile failures, sample overruns) — as opposed to plans that only
    perturb host-side input handling ([corrupt], [noop]).  Runs under a
    perturbing plan are never persisted to the run cache: a rebuild
    precompiles in method-index order, which would re-order the
    fault-decision stream relative to the live run's lazy compilation. *)
val perturbs_execution : t -> bool

(** The plan injects fleet-collector faults (instance crashes, torn or
    corrupt segment writes, stragglers).  These are host-side only: the
    simulated machines stay byte-deterministic, so a converging fleet
    plan must heal back to the exact healthy store. *)
val perturbs_fleet : t -> bool

(** Parse a spec string ([@file] indirection included).
    [Error reason] pinpoints the offending clause. *)
val parse : string -> (t, string) result

(** {!parse}, raising [Invalid_argument] — for trusted callers
    (curated chaos plans). *)
val parse_exn : string -> t

(** Canonical compact rendering: [parse (key t)] round-trips, distinct
    plans have distinct keys, and the key is stable for use inside
    {!Exp_harness.config_key}-style cache identities. *)
val key : t -> string

val pp : t Fmt.t
