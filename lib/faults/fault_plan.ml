type t = {
  seed : int;
  noop : bool;
  path_capacity : int option;
  edge_capacity : int option;
  compile_fail : float;
  compile_retries : int;
  compile_backoff : int;
  sample_overrun : float;
  corrupt : float;
  crash : float;
  crash_restarts : int;
  torn_write : float;
  straggler : float;
  straggler_timeout : int;
  seg_corrupt : float;
  seg_retries : int;
}

let empty =
  {
    seed = 0;
    noop = false;
    path_capacity = None;
    edge_capacity = None;
    compile_fail = 0.;
    compile_retries = 3;
    compile_backoff = 50_000;
    sample_overrun = 0.;
    corrupt = 0.;
    crash = 0.;
    crash_restarts = 4;
    torn_write = 0.;
    straggler = 0.;
    straggler_timeout = 2;
    seg_corrupt = 0.;
    seg_retries = 3;
  }

let perturbs_execution t =
  t.path_capacity <> None
  || t.edge_capacity <> None
  || t.compile_fail > 0.
  || t.sample_overrun > 0.

(* Fleet faults live entirely on the host side of the collector: an
   instance restart replays the same pure simulation, a torn or corrupt
   write damages bytes after the snapshot was taken, and a straggler
   only reorders when a finished window reaches the store.  None of
   them touch the simulated machine, so [perturbs_execution] stays
   false for a pure fleet plan. *)
let perturbs_fleet t =
  t.crash > 0. || t.torn_write > 0. || t.straggler > 0. || t.seg_corrupt > 0.

let is_empty t =
  (not t.noop)
  && t.path_capacity = None
  && t.edge_capacity = None
  && t.compile_fail = 0.
  && t.sample_overrun = 0.
  && t.corrupt = 0.
  && t.crash = 0.
  && t.torn_write = 0.
  && t.straggler = 0.
  && t.seg_corrupt = 0.

(* Probabilities print with enough digits to round-trip exactly for the
   precisions specs use; %.12g keeps 0.1 as "0.1". *)
let pp_prob ppf p = Fmt.pf ppf "%.12g" p

let key t =
  if is_empty t then ""
  else begin
    let buf = Buffer.create 48 in
    let add fmt = Fmt.kstr (fun s ->
        if Buffer.length buf > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf s) fmt
    in
    if t.seed <> 0 then add "seed=%d" t.seed;
    if t.noop then add "noop";
    (match t.path_capacity with Some n -> add "path-cap=%d" n | None -> ());
    (match t.edge_capacity with Some n -> add "edge-cap=%d" n | None -> ());
    if t.compile_fail > 0. then begin
      add "compile-fail=%a" pp_prob t.compile_fail;
      if t.compile_retries <> empty.compile_retries then
        add "compile-retries=%d" t.compile_retries;
      if t.compile_backoff <> empty.compile_backoff then
        add "compile-backoff=%d" t.compile_backoff
    end;
    if t.sample_overrun > 0. then add "sample-overrun=%a" pp_prob t.sample_overrun;
    if t.corrupt > 0. then add "corrupt=%a" pp_prob t.corrupt;
    if t.crash > 0. then begin
      add "crash=%a" pp_prob t.crash;
      if t.crash_restarts <> empty.crash_restarts then
        add "crash-restarts=%d" t.crash_restarts
    end;
    if t.torn_write > 0. then add "torn-write=%a" pp_prob t.torn_write;
    if t.straggler > 0. then begin
      add "straggler=%a" pp_prob t.straggler;
      if t.straggler_timeout <> empty.straggler_timeout then
        add "straggler-timeout=%d" t.straggler_timeout
    end;
    if t.seg_corrupt > 0. then begin
      add "seg-corrupt=%a" pp_prob t.seg_corrupt;
      if t.seg_retries <> empty.seg_retries then
        add "seg-retries=%d" t.seg_retries
    end;
    Buffer.contents buf
  end

let pp ppf t =
  if is_empty t then Fmt.string ppf "(no faults)" else Fmt.string ppf (key t)

let clause_err clause reason =
  Error (Fmt.str "bad fault clause %S: %s" clause reason)

let parse_clauses clauses =
  let int_of clause v ~min =
    match int_of_string_opt v with
    | Some n when n >= min -> Ok n
    | Some _ | None ->
        clause_err clause (Fmt.str "expected an integer >= %d" min)
  in
  let prob_of clause v =
    match float_of_string_opt v with
    | Some p when p >= 0. && p <= 1. -> Ok p
    | Some _ | None -> clause_err clause "expected a probability in [0,1]"
  in
  let rec go t = function
    | [] -> Ok t
    | clause :: rest -> (
        let bind r k = match r with Ok v -> k v | Error _ as e -> e in
        let continue t = go t rest in
        match String.index_opt clause '=' with
        | None -> (
            match clause with
            | "noop" -> continue { t with noop = true }
            | _ -> clause_err clause "unknown fault (no '=' value)")
        | Some i -> (
            let name = String.sub clause 0 i in
            let v = String.sub clause (i + 1) (String.length clause - i - 1) in
            match name with
            | "seed" ->
                bind (int_of clause v ~min:0) (fun n ->
                    continue { t with seed = n })
            | "path-cap" ->
                bind (int_of clause v ~min:0) (fun n ->
                    continue { t with path_capacity = Some n })
            | "edge-cap" ->
                bind (int_of clause v ~min:0) (fun n ->
                    continue { t with edge_capacity = Some n })
            | "compile-fail" ->
                bind (prob_of clause v) (fun p ->
                    continue { t with compile_fail = p })
            | "compile-retries" ->
                bind (int_of clause v ~min:0) (fun n ->
                    continue { t with compile_retries = n })
            | "compile-backoff" ->
                bind (int_of clause v ~min:1) (fun n ->
                    continue { t with compile_backoff = n })
            | "sample-overrun" ->
                bind (prob_of clause v) (fun p ->
                    continue { t with sample_overrun = p })
            | "corrupt" ->
                bind (prob_of clause v) (fun p -> continue { t with corrupt = p })
            | "crash" ->
                bind (prob_of clause v) (fun p -> continue { t with crash = p })
            | "crash-restarts" ->
                bind (int_of clause v ~min:0) (fun n ->
                    continue { t with crash_restarts = n })
            | "torn-write" ->
                bind (prob_of clause v) (fun p ->
                    continue { t with torn_write = p })
            | "straggler" ->
                bind (prob_of clause v) (fun p ->
                    continue { t with straggler = p })
            | "straggler-timeout" ->
                bind (int_of clause v ~min:1) (fun n ->
                    continue { t with straggler_timeout = n })
            | "seg-corrupt" ->
                bind (prob_of clause v) (fun p ->
                    continue { t with seg_corrupt = p })
            | "seg-retries" ->
                bind (int_of clause v ~min:0) (fun n ->
                    continue { t with seg_retries = n })
            | _ -> clause_err clause "unknown fault"))
  in
  go empty clauses

let split_spec spec =
  (* commas and newlines both separate clauses; '#' comments to end of line *)
  let uncommented =
    String.concat "\n"
      (List.map
         (fun line ->
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line)
         (String.split_on_char '\n' spec))
  in
  List.filter
    (fun c -> c <> "")
    (List.map String.trim
       (List.concat_map (String.split_on_char ',')
          (String.split_on_char '\n' uncommented)))

let parse spec =
  let spec = String.trim spec in
  if String.length spec > 0 && spec.[0] = '@' then begin
    let file = String.sub spec 1 (String.length spec - 1) in
    match In_channel.with_open_text file In_channel.input_all with
    | contents -> parse_clauses (split_spec contents)
    | exception Sys_error m -> Error ("unreadable fault-plan file: " ^ m)
  end
  else parse_clauses (split_spec spec)

let parse_exn spec =
  match parse spec with
  | Ok t -> t
  | Error reason -> invalid_arg ("Fault_plan.parse_exn: " ^ reason)
