(** Static block-frequency estimation from an edge profile.

    Propagates relative execution frequency from the entry through the
    CFG, splitting at conditional branches according to the profile's
    taken bias (0.5 for branches the profile never saw).  Loops are
    handled by bounded fixed-point iteration, so a hot loop's blocks end
    up with weight roughly proportional to their trip count.  The
    optimizer uses these weights to seed Pettis-Hansen chain formation
    for jump edges, whose frequency an arm-counter profile does not
    record directly. *)

(** Relative frequency per block; entry has frequency 1 before loop
    feedback.  All values are finite and non-negative. *)
val block_freqs : ?iterations:int -> Cfg.t -> Edge_profile.t -> float array

(** Frequency of one edge under the same estimate: source frequency
    times the arm probability (1 for jumps). *)
val edge_freq : float array -> Edge_profile.t -> Cfg.edge -> float
