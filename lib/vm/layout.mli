(** Profile-guided code layout and branch-direction speculation — the
    edge-profile consumers of the paper's §4.2 (Pettis-Hansen code
    reordering plus bias-sensitive optimization).

    The model charges, per traversed edge:
    - [taken_branch_penalty] when the destination is not the next block
      in the chosen layout (a taken branch / unconditional jump), and
    - [mispredict_penalty] when a conditional branch goes against the
      direction the compiler speculated on.

    Both decisions are driven by the edge profile given at compile time,
    so a representative profile removes the penalties from hot edges and
    a flipped profile concentrates them there (paper §6.5). *)

type t

(** Pettis-Hansen bottom-up chaining on profile-estimated edge weights;
    speculation follows each branch's profiled majority direction
    (not-taken when unknown). *)
val compute : Cfg.t -> Edge_profile.t -> t

(** Unoptimized layout: blocks in id order, every branch speculated
    not-taken. *)
val natural : Cfg.t -> t

(** Position of each block in the layout. *)
val positions : t -> int array

(** Per-block speculated branch direction ([true] = predicted taken). *)
val predicted : t -> bool array

(** Install the layout's penalties into the method's [edge_extra]. *)
val apply : Machine.t -> int -> t -> unit
