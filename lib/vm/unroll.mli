(** Loop unrolling — with inlining, the paper's other §4.3 source of
    several IR branches mapping to one bytecode-level branch.

    The transformation peels the body chain of simple innermost loops:
    a loop whose single back edge [tail -> header] is unrolled by
    duplicating the loop's blocks once and chaining the copy between the
    original tail and the header.  Every duplicated branch keeps its
    original bytecode branch id, so both copies accumulate in the same
    taken/not-taken counters.  All loop exits are kept intact in both
    copies, so semantics are preserved for any trip count; the benefit
    modelled is one less header re-dispatch (and, under profile-guided
    layout, straighter hot code) per two iterations.

    Only loops satisfying all of the following are unrolled:
    - exactly one back edge, whose source the header dominates;
    - the loop body (excluding the header) is at most [max_body_blocks];
    - the header has a yieldpoint-eligible position (the loop is not
      inside an uninterruptible method — those are never recompiled).

    The duplicated header copy is {e not} a loop header afterwards and
    gets no yieldpoint; PEP's paths through an unrolled iteration pair
    are genuinely longer, as they would be in a real system. *)

type result = {
  meth : Method.t;
  no_yieldpoint : bool array;
      (** per block of [meth]: the input's suppression flags, extended to
          the duplicated blocks *)
  unrolled : int;  (** loops unrolled *)
  witness : Transval.unroll_witness;
      (** block map for {!Transval.check_unroll}; the identity witness
          when no loop was unrolled *)
}

(** [no_yieldpoint] marks blocks whose loop headers must keep their shape
    (inlined uninterruptible code); such loops are never unrolled and the
    flags carry through to the result. *)
val expand :
  ?max_body_blocks:int -> ?no_yieldpoint:bool array -> Method.t -> result
