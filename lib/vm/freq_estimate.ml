let arm_prob profile (e : Cfg.edge) =
  match e.attr with
  | Cfg.Seq -> 1.0
  | Cfg.Taken br | Cfg.Not_taken br -> (
      let bias = Option.value ~default:0.5 (Edge_profile.bias profile br) in
      match e.attr with
      | Cfg.Taken _ -> bias
      | Cfg.Not_taken _ -> 1.0 -. bias
      | Cfg.Seq -> assert false)

let cap = 1e12

let block_freqs ?(iterations = 12) cfg profile =
  let n = Cfg.n_blocks cfg in
  let freq = Array.make n 0.0 in
  freq.(Cfg.entry cfg) <- 1.0;
  let order = Order.reverse_postorder cfg in
  for _ = 1 to iterations do
    Array.iter
      (fun b ->
        if b <> Cfg.entry cfg then begin
          let f =
            List.fold_left
              (fun acc (e : Cfg.edge) ->
                acc +. (freq.(e.src) *. arm_prob profile e))
              0.0 (Cfg.predecessors cfg b)
          in
          freq.(b) <- Float.min cap f
        end)
      order
  done;
  freq

let edge_freq freqs profile (e : Cfg.edge) = freqs.(e.src) *. arm_prob profile e
