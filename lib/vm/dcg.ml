type t = (int * int, int ref) Hashtbl.t

let create () : t = Hashtbl.create 32

let record t ~caller ~callee =
  match Hashtbl.find_opt t (caller, callee) with
  | Some r -> incr r
  | None -> Hashtbl.replace t (caller, callee) (ref 1)

let weight t ~caller ~callee =
  match Hashtbl.find_opt t (caller, callee) with Some r -> !r | None -> 0

let callee_weight t ~callee =
  Hashtbl.fold
    (fun (_, ce) r acc -> if ce = callee then acc + !r else acc)
    t 0

let edges t =
  let l = Hashtbl.fold (fun (cr, ce) r acc -> (cr, ce, !r) :: acc) t [] in
  List.sort
    (fun (cra, cea, wa) (crb, ceb, wb) ->
      match compare wb wa with 0 -> compare (cra, cea) (crb, ceb) | c -> c)
    l

let total t = Hashtbl.fold (fun _ r acc -> acc + !r) t 0

let copy t =
  let dst = create () in
  Hashtbl.iter (fun k r -> Hashtbl.replace dst k (ref !r)) t;
  dst

let to_lines t =
  List.map (fun (cr, ce, w) -> Fmt.str "%d %d %d" cr ce w) (edges t)

type parse_error = {
  file : string option;
  line : int;  (* 1-based position in the input *)
  text : string;
  reason : string;
}

let pp_parse_error ppf e =
  Fmt.pf ppf "%s:%d: %s (in %S)"
    (Option.value e.file ~default:"<input>")
    e.line e.reason e.text

let parse_line t line =
  if String.trim line = "" then Ok ()
  else
    match String.split_on_char ' ' (String.trim line) with
    | [ cr; ce; w ] -> (
        match
          (int_of_string_opt cr, int_of_string_opt ce, int_of_string_opt w)
        with
        | Some cr, Some ce, Some w when w > 0 ->
            Hashtbl.replace t (cr, ce) (ref w);
            Ok ()
        | _ -> Error "expected three integers with a positive weight")
    | _ -> Error "expected \"<caller> <callee> <weight>\""

let of_lines ?file lines =
  let t = create () in
  let rec go n = function
    | [] -> Ok t
    | raw :: rest -> (
        match parse_line t raw with
        | Ok () -> go (n + 1) rest
        | Error reason -> Error { file; line = n; text = String.trim raw; reason })
  in
  go 1 lines
