(* Continuous-profile exporter: renders PEP's sampled path and edge
   profiles, and the tick-sampled dynamic call graph, as folded stacks
   (the flamegraph/pyroscope input format).

   The sampled profiles are flat — PEP attributes a sample to the
   method executing the path, not to a call stack — so calling context
   is approximated the way a DCG-driven flame view would: each method
   is hung under its hot chain, the walk from the method to a root
   that at every step follows the heaviest sampled caller edge. *)

let root_frame = "<root>"
let max_chain = 32

let method_name st midx = st.Machine.methods.(midx).Machine.meth.Method.name

(* [callee -> heaviest caller] from the sampled call graph; ties were
   already broken deterministically by [Dcg.edges]'s ordering. *)
let best_callers dcg =
  let best = Hashtbl.create 32 in
  List.iter
    (fun (caller, callee, w) ->
      match Hashtbl.find_opt best callee with
      | Some (_, w0) when w0 >= w -> ()
      | _ -> Hashtbl.replace best callee (caller, w))
    (List.rev (Dcg.edges dcg));
  best

(* Hot chain of [midx], root frame first.  A visited guard cuts cycles
   (the DCG is sampled, so mutual recursion shows up as a cycle). *)
let hot_chain st best midx =
  let rec up acc visited midx n =
    if n >= max_chain then root_frame :: acc
    else
      match Hashtbl.find_opt best midx with
      | Some (caller, _) when caller >= 0 && not (List.mem caller visited) ->
          up (method_name st caller :: acc) (caller :: visited) caller (n + 1)
      | Some _ | None -> root_frame :: acc
  in
  up [ method_name st midx ] [ midx ] midx 0

let paths st dcg (pep : Pep.t) =
  let best = best_callers dcg in
  let f = Folded.create () in
  Array.iteri
    (fun midx prof ->
      let chain = lazy (hot_chain st best midx) in
      Path_profile.iter
        (fun (e : Path_profile.entry) ->
          let frame =
            if e.n_branches >= 0 then
              Fmt.str "path#%d (%d br)" e.path_id e.n_branches
            else Fmt.str "path#%d" e.path_id
          in
          Folded.add f ~stack:(Lazy.force chain @ [ frame ]) e.count)
        prof)
    pep.Pep.paths;
  f

let edges st dcg (pep : Pep.t) =
  let best = best_callers dcg in
  let f = Folded.create () in
  Array.iteri
    (fun midx prof ->
      let chain = lazy (hot_chain st best midx) in
      List.iter
        (fun br ->
          match Edge_profile.counter prof br with
          | None -> ()
          | Some c ->
              let stack arm =
                Lazy.force chain @ [ Fmt.str "br#%d:%s" br arm ]
              in
              Folded.add f ~stack:(stack "taken") c.Edge_profile.taken;
              Folded.add f ~stack:(stack "not-taken") c.Edge_profile.not_taken)
        (Edge_profile.branch_ids prof))
    pep.Pep.edges;
  f

let dcg st dcg =
  let best = best_callers dcg in
  let f = Folded.create () in
  List.iter
    (fun (caller, callee, w) ->
      let prefix =
        if caller < 0 then [ root_frame ] else hot_chain st best caller
      in
      Folded.add f ~stack:(prefix @ [ method_name st callee ]) w)
    (Dcg.edges dcg);
  f

type kind = [ `Paths | `Edges | `Dcg ]

let kind_name = function `Paths -> "paths" | `Edges -> "edges" | `Dcg -> "dcg"

let of_driver d kind =
  let st = Driver.machine d in
  let g = Driver.dcg d in
  match kind with
  | `Dcg -> Some (dcg st g)
  | `Paths -> Option.map (paths st g) (Driver.pep d)
  | `Edges -> Option.map (edges st g) (Driver.pep d)
