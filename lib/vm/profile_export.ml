(* Continuous-profile exporter: renders PEP's sampled path and edge
   profiles, and the tick-sampled dynamic call graph, as folded stacks
   (the flamegraph/pyroscope input format).

   The sampled profiles are flat — PEP attributes a sample to the
   method executing the path, not to a call stack — so calling context
   is approximated the way a DCG-driven flame view would: each method
   is hung under its hot chain, the walk from the method to a root
   that at every step follows the heaviest sampled caller edge.

   The core exporters work from raw profile tables and a method-naming
   function, so they serve both a live machine ([of_driver]) and the
   fleet store's persisted segments (which carry their own name
   tables — no program rebuild needed to answer a query). *)

let root_frame = "<root>"
let max_chain = 32

let method_name st midx = st.Machine.methods.(midx).Machine.meth.Method.name

(* [callee -> heaviest caller] from the sampled call graph; ties were
   already broken deterministically by [Dcg.edges]'s ordering. *)
let best_callers dcg =
  let best = Hashtbl.create 32 in
  List.iter
    (fun (caller, callee, w) ->
      match Hashtbl.find_opt best callee with
      | Some (_, w0) when w0 >= w -> ()
      | _ -> Hashtbl.replace best callee (caller, w))
    (List.rev (Dcg.edges dcg));
  best

(* Hot chain of [midx], root frame first.  A visited guard cuts cycles
   (the DCG is sampled, so mutual recursion shows up as a cycle). *)
let hot_chain ~name best midx =
  let rec up acc visited midx n =
    if n >= max_chain then root_frame :: acc
    else
      match Hashtbl.find_opt best midx with
      | Some (caller, _) when caller >= 0 && not (List.mem caller visited) ->
          up (name caller :: acc) (caller :: visited) caller (n + 1)
      | Some _ | None -> root_frame :: acc
  in
  up [ name midx ] [ midx ] midx 0

let paths_of ~name dcg (table : Path_profile.table) =
  let best = best_callers dcg in
  let f = Folded.create () in
  Array.iteri
    (fun midx prof ->
      let chain = lazy (hot_chain ~name best midx) in
      Path_profile.iter
        (fun (e : Path_profile.entry) ->
          let frame =
            if e.n_branches >= 0 then
              Fmt.str "path#%d (%d br)" e.path_id e.n_branches
            else Fmt.str "path#%d" e.path_id
          in
          Folded.add f ~stack:(Lazy.force chain @ [ frame ]) e.count)
        prof)
    table;
  f

let edges_of ~name dcg (table : Edge_profile.table) =
  let best = best_callers dcg in
  let f = Folded.create () in
  Array.iteri
    (fun midx prof ->
      let chain = lazy (hot_chain ~name best midx) in
      List.iter
        (fun (br, (taken, not_taken)) ->
          let stack arm = Lazy.force chain @ [ Fmt.str "br#%d:%s" br arm ] in
          Folded.add f ~stack:(stack "taken") taken;
          Folded.add f ~stack:(stack "not-taken") not_taken)
        (Edge_profile.entries prof))
    table;
  f

let dcg_of ~name dcg =
  let best = best_callers dcg in
  let f = Folded.create () in
  List.iter
    (fun (caller, callee, w) ->
      let prefix =
        if caller < 0 then [ root_frame ] else hot_chain ~name best caller
      in
      Folded.add f ~stack:(prefix @ [ name callee ]) w)
    (Dcg.edges dcg);
  f

let paths st dcg (pep : Pep.t) =
  paths_of ~name:(method_name st) dcg pep.Pep.paths

let edges st dcg (pep : Pep.t) =
  edges_of ~name:(method_name st) dcg pep.Pep.edges

let dcg st g = dcg_of ~name:(method_name st) g

type kind = [ `Paths | `Edges | `Dcg ]

let kind_name = function `Paths -> "paths" | `Edges -> "edges" | `Dcg -> "dcg"

let of_driver d kind =
  let st = Driver.machine d in
  let g = Driver.dcg d in
  match kind with
  | `Dcg -> Some (dcg st g)
  | `Paths -> Option.map (paths st g) (Driver.pep d)
  | `Edges -> Option.map (edges st g) (Driver.pep d)
