type t = { cfg : Cfg.t; pos : int array; predict_taken : bool array }

let predictions cfg profile =
  Array.init (Cfg.n_blocks cfg) (fun b ->
      match Cfg.terminator cfg b with
      | Cfg.Branch { branch; _ } ->
          (match Edge_profile.bias profile branch with
          | Some bias -> bias > 0.5
          | None -> false)
      | Cfg.Return | Cfg.Jump _ -> false)

(* Pettis-Hansen bottom-up positioning: repeatedly fuse the heaviest edge
   whose source is still a chain tail and destination a chain head. *)
let compute cfg profile =
  let n = Cfg.n_blocks cfg in
  let freqs = Freq_estimate.block_freqs cfg profile in
  let weighted =
    List.map (fun e -> (Freq_estimate.edge_freq freqs profile e, e)) (Cfg.edges cfg)
  in
  let sorted =
    List.sort
      (fun (wa, ea) (wb, eb) ->
        match compare wb wa with 0 -> Cfg.compare_edge ea eb | c -> c)
      weighted
  in
  let next = Array.make n (-1) and prev = Array.make n (-1) in
  let rec head_of b = if prev.(b) = -1 then b else head_of prev.(b) in
  List.iter
    (fun (_, (e : Cfg.edge)) ->
      if
        e.src <> e.dst
        && next.(e.src) = -1
        && prev.(e.dst) = -1
        && head_of e.src <> head_of e.dst
      then begin
        next.(e.src) <- e.dst;
        prev.(e.dst) <- e.src
      end)
    sorted;
  let chain_blocks h =
    let rec go acc b = if b = -1 then List.rev acc else go (b :: acc) next.(b) in
    go [] h
  in
  let heads = ref [] in
  for b = n - 1 downto 0 do
    if prev.(b) = -1 then heads := b :: !heads
  done;
  let weight h =
    List.fold_left (fun acc b -> acc +. freqs.(b)) 0.0 (chain_blocks h)
  in
  let entry_head = head_of (Cfg.entry cfg) in
  let rest = List.filter (fun h -> h <> entry_head) !heads in
  let rest =
    List.sort
      (fun a b ->
        match compare (weight b) (weight a) with 0 -> compare a b | c -> c)
      rest
  in
  let pos = Array.make n 0 in
  let counter = ref 0 in
  List.iter
    (fun h ->
      List.iter
        (fun b ->
          pos.(b) <- !counter;
          incr counter)
        (chain_blocks h))
    (entry_head :: rest);
  { cfg; pos; predict_taken = predictions cfg profile }

let natural cfg =
  {
    cfg;
    pos = Array.init (Cfg.n_blocks cfg) Fun.id;
    predict_taken = Array.make (Cfg.n_blocks cfg) false;
  }

let positions t = Array.copy t.pos
let predicted t = Array.copy t.predict_taken

let apply st meth t =
  let cm = Machine.cmeth st meth in
  let cost = st.Machine.cost in
  Cfg.iter_blocks
    (fun b ->
      List.iter
        (fun (e : Cfg.edge) ->
          let idx = Instrument.succ_index e.attr in
          let extra = ref 0 in
          if t.pos.(e.dst) <> t.pos.(b) + 1 then
            extra := !extra + cost.Cost_model.taken_branch_penalty;
          (match e.attr with
          | Cfg.Taken _ ->
              if not t.predict_taken.(b) then
                extra := !extra + cost.Cost_model.mispredict_penalty
          | Cfg.Not_taken _ ->
              if t.predict_taken.(b) then
                extra := !extra + cost.Cost_model.mispredict_penalty
          | Cfg.Seq -> ());
          cm.Machine.edge_extra.(b).(idx) <- !extra)
        (Cfg.successors t.cfg b))
    t.cfg
