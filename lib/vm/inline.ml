type result = {
  meth : Method.t;
  no_yieldpoint : bool array;
  inlined : (string * int) list;
  witness : Transval.inline_witness;
}

let small_enough ~limit (m : Method.t) = Method.size m <= limit

(* During construction, caller terminators still reference original caller
   block ids; they are retargeted once every piece has its final id. *)
type pending_term = Lit of Method.term | Orig of Method.term

type blk = {
  mutable body_rev : Instr.t list;
  mutable term : pending_term option;
  no_yp : bool;
}

let expand program (caller : Method.t) ~should_inline =
  let blocks : (int, blk) Hashtbl.t = Hashtbl.create 64 in
  let n_new = ref 0 in
  let new_block ~no_yp =
    let id = !n_new in
    incr n_new;
    Hashtbl.replace blocks id { body_rev = []; term = None; no_yp };
    id
  in
  let blk id = Hashtbl.find blocks id in
  let emit id ins = (blk id).body_rev <- ins :: (blk id).body_rev in
  let set_term id t = (blk id).term <- Some t in
  (* locals: one fresh region per distinct callee, shared by its copies
     (copies never execute concurrently within a frame) *)
  let next_local = ref caller.nlocals in
  let local_base : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let base_for (callee : Method.t) =
    match Hashtbl.find_opt local_base callee.name with
    | Some b -> b
    | None ->
        let b = !next_local in
        next_local := b + callee.nlocals;
        Hashtbl.replace local_base callee.name b;
        b
  in
  (* branches: one fresh id per (callee, original branch), shared by all
     copies, so duplicated branches keep accumulating in one counter pair *)
  let next_branch =
    ref (1 + List.fold_left max (-1) (Method.branch_ids caller))
  in
  let branch_map : (string * Cfg.branch_id, Cfg.branch_id) Hashtbl.t =
    Hashtbl.create 16
  in
  let branch_for callee_name b =
    match Hashtbl.find_opt branch_map (callee_name, b) with
    | Some fresh -> fresh
    | None ->
        let fresh = !next_branch in
        incr next_branch;
        Hashtbl.replace branch_map (callee_name, b) fresh;
        fresh
  in
  let inlined_counts : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let sites = ref [] in
  let splice ~site piece (callee : Method.t) argc =
    let base = base_for callee in
    for j = argc - 1 downto 0 do
      emit piece (Instr.Store (base + j))
    done;
    (* a real invocation gets fresh zeroed locals; the shared inlined
       slots must be re-zeroed at every site *)
    for j = argc to callee.nlocals - 1 do
      emit piece (Instr.Const 0);
      emit piece (Instr.Store (base + j))
    done;
    let no_yp = callee.uninterruptible in
    let copy_ids =
      Array.init (Array.length callee.blocks) (fun _ -> new_block ~no_yp)
    in
    let ret_piece = new_block ~no_yp:false in
    set_term piece (Lit (Jmp copy_ids.(callee.entry)));
    Array.iteri
      (fun cb (cblk : Method.block) ->
        let id = copy_ids.(cb) in
        Array.iter
          (fun (ins : Instr.t) ->
            emit id
              (match ins with
              | Load l -> Load (base + l)
              | Store l -> Store (base + l)
              | Inc (l, k) -> Inc (base + l, k)
              | Const _ | Binop _ | Cmp _ | Neg | Not | Dup | Pop | GLoad _
              | GStore _ | AGet | ASet | Call _ | Rand _ ->
                  ins))
          cblk.body;
        set_term id
          (match cblk.term with
          | Method.Ret -> Lit (Jmp ret_piece)
          | Method.Jmp d -> Lit (Jmp copy_ids.(d))
          | Method.Br { branch; on_true; on_false } ->
              Lit
                (Br
                   {
                     branch = branch_for callee.name branch;
                     on_true = copy_ids.(on_true);
                     on_false = copy_ids.(on_false);
                   })))
      callee.blocks;
    Hashtbl.replace inlined_counts callee.name
      (1 + Option.value ~default:0 (Hashtbl.find_opt inlined_counts callee.name));
    sites :=
      ( site,
        {
          Transval.callee = callee.name;
          argc;
          base;
          copy_ids;
          ret_block = ret_piece;
        } )
      :: !sites;
    ret_piece
  in
  let first_piece = Array.make (Array.length caller.blocks) (-1) in
  Array.iteri
    (fun b (cblk : Method.block) ->
      let piece = ref (new_block ~no_yp:false) in
      first_piece.(b) <- !piece;
      Array.iteri
        (fun i (ins : Instr.t) ->
          match ins with
          | Instr.Call (cname, argc) when cname <> caller.name -> (
              match Program.find program cname with
              | callee when should_inline callee ->
                  piece := splice ~site:(b, i) !piece callee argc
              | _ -> emit !piece ins
              | exception Not_found -> emit !piece ins)
          | _ -> emit !piece ins)
        cblk.body;
      set_term !piece (Orig cblk.term))
    caller.blocks;
  if Hashtbl.length inlined_counts = 0 then
    {
      meth = caller;
      no_yieldpoint = Array.make (Array.length caller.blocks) false;
      inlined = [];
      witness = Transval.identity_inline caller;
    }
  else begin
    let retarget : Method.term -> Method.term = function
      | Method.Ret -> Method.Ret
      | Method.Jmp d -> Method.Jmp first_piece.(d)
      | Method.Br { branch; on_true; on_false } ->
          Method.Br
            {
              branch;
              on_true = first_piece.(on_true);
              on_false = first_piece.(on_false);
            }
    in
    let no_yieldpoint = Array.make !n_new false in
    let final =
      Array.init !n_new (fun id ->
          let b = blk id in
          no_yieldpoint.(id) <- b.no_yp;
          let term =
            match b.term with
            | Some (Lit t) -> t
            | Some (Orig t) -> retarget t
            | None -> assert false
          in
          { Method.body = Array.of_list (List.rev b.body_rev); term })
    in
    let meth =
      {
        caller with
        Method.nlocals = !next_local;
        blocks = final;
        entry = first_piece.(caller.entry);
        exit_ = first_piece.(caller.exit_);
      }
    in
    {
      meth;
      no_yieldpoint;
      inlined =
        List.sort compare
          (Hashtbl.fold (fun name n acc -> (name, n) :: acc) inlined_counts []);
      witness =
        {
          Transval.first_piece;
          sites = List.sort compare !sites;
          branch_map =
            List.sort compare
              (Hashtbl.fold (fun k v acc -> (k, v) :: acc) branch_map []);
        };
    }
  end
