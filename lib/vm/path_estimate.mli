(** Estimating hot paths from an edge profile alone — the question of
    Ball, Mataga and Sagiv's "Edge Profiling versus Path Profiling: The
    Showdown" (paper ref [7]).

    An edge profile fixes each branch's bias but says nothing about
    correlation between branches; the best an optimizer can do is assume
    independence and rank paths by the product of arm probabilities along
    them (weighted by how often paths start where they start).  Comparing
    the hot-path set so predicted against a true path profile shows where
    real path profiling — and hence PEP — earns its keep: programs whose
    branch outcomes correlate (interpreter dispatch, parsers). *)

(** [top_paths ~k numbering profile] returns up to [k]
    [(path_id, weight)] pairs in decreasing estimated weight, by
    best-first search over the numbered DAG.  Weights are relative (their
    scale is meaningless; their order is the prediction). *)
val top_paths : k:int -> Numbering.t -> Edge_profile.t -> (int * float) list

(** Per-program estimated path profile with scaled integer counts,
    suitable for {!Accuracy.wall_path_accuracy}'s [estimated] side.
    Methods without a plan are left empty. *)
val table :
  k:int ->
  plans:Profile_hooks.plans ->
  Edge_profile.table ->
  Path_profile.table
