type t = { levels : int array; profile : Edge_profile.table; dcg : Dcg.t }

let n_opt t =
  Array.fold_left (fun acc l -> if l >= 0 then acc + 1 else acc) 0 t.levels

let to_lines t =
  let level_lines =
    Array.to_list (Array.mapi (fun i l -> Fmt.str "level %d %d" i l) t.levels)
  in
  let profile_lines =
    List.map (fun l -> "edge " ^ l) (Edge_profile.to_lines t.profile)
  in
  let dcg_lines = List.map (fun l -> "dcg " ^ l) (Dcg.to_lines t.dcg) in
  level_lines @ profile_lines @ dcg_lines

let of_lines ?file ~n_methods lines =
  let levels = Array.make n_methods (-1) in
  let profile = Edge_profile.create_table ~n_methods in
  let dcg = Dcg.create () in
  (* Parse line by line (rather than batching the "edge"/"dcg" payloads
     into the sub-parsers) so an error points at its line in the file. *)
  let rec go n = function
    | [] -> Ok { levels; profile; dcg }
    | raw :: rest -> (
        let line = String.trim raw in
        let parsed =
          if line = "" then Ok ()
          else
            match String.split_on_char ' ' line with
            | "level" :: mi :: l :: [] -> (
                match (int_of_string_opt mi, int_of_string_opt l) with
                | Some mi, Some l when mi >= 0 && mi < n_methods ->
                    levels.(mi) <- l;
                    Ok ()
                | _ -> Error "expected a method index in range and a level")
            | "edge" :: rest ->
                Edge_profile.parse_line profile (String.concat " " rest)
            | "dcg" :: rest -> Dcg.parse_line dcg (String.concat " " rest)
            | _ -> Error "expected \"level\", \"edge\" or \"dcg\""
        in
        match parsed with
        | Ok () -> go (n + 1) rest
        | Error reason -> Error { Dcg.file; line = n; text = line; reason })
  in
  go 1 lines
