type t = { levels : int array; profile : Edge_profile.table; dcg : Dcg.t }

let n_opt t =
  Array.fold_left (fun acc l -> if l >= 0 then acc + 1 else acc) 0 t.levels

let to_lines t =
  let level_lines =
    Array.to_list (Array.mapi (fun i l -> Fmt.str "level %d %d" i l) t.levels)
  in
  let profile_lines =
    List.map (fun l -> "edge " ^ l) (Edge_profile.to_lines t.profile)
  in
  let dcg_lines = List.map (fun l -> "dcg " ^ l) (Dcg.to_lines t.dcg) in
  level_lines @ profile_lines @ dcg_lines

let of_lines ~n_methods lines =
  let levels = Array.make n_methods (-1) in
  let edge_lines = ref [] in
  let dcg_lines = ref [] in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line <> "" then
        match String.split_on_char ' ' line with
        | "level" :: mi :: l :: [] -> (
            match (int_of_string_opt mi, int_of_string_opt l) with
            | Some mi, Some l when mi >= 0 && mi < n_methods -> levels.(mi) <- l
            | _ -> failwith ("Advice.of_lines: bad line: " ^ line))
        | "edge" :: rest -> edge_lines := String.concat " " rest :: !edge_lines
        | "dcg" :: rest -> dcg_lines := String.concat " " rest :: !dcg_lines
        | _ -> failwith ("Advice.of_lines: bad line: " ^ line))
    lines;
  let profile = Edge_profile.of_lines ~n_methods (List.rev !edge_lines) in
  let dcg = Dcg.of_lines (List.rev !dcg_lines) in
  { levels; profile; dcg }
