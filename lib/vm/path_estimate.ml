(* Simple array-backed max-heap on (weight, node, path-id-so-far). *)
module Heap = struct
  type elt = { w : float; node : Dag.node; id : int }
  type t = { mutable a : elt array; mutable n : int }

  let dummy = { w = 0.; node = 0; id = 0 }
  let create () = { a = Array.make 256 dummy; n = 0 }

  let push h e =
    if h.n = Array.length h.a then begin
      let bigger = Array.make (2 * h.n) dummy in
      Array.blit h.a 0 bigger 0 h.n;
      h.a <- bigger
    end;
    let i = ref h.n in
    h.n <- h.n + 1;
    h.a.(!i) <- e;
    while !i > 0 && h.a.((!i - 1) / 2).w < h.a.(!i).w do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.n = 0 then None
    else begin
      let top = h.a.(0) in
      h.n <- h.n - 1;
      h.a.(0) <- h.a.(h.n);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let largest = ref !i in
        if l < h.n && h.a.(l).w > h.a.(!largest).w then largest := l;
        if r < h.n && h.a.(r).w > h.a.(!largest).w then largest := r;
        if !largest = !i then continue := false
        else begin
          let tmp = h.a.(!largest) in
          h.a.(!largest) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !largest
        end
      done;
      Some top
    end
end

let epsilon = 1e-6
let max_expansions = 200_000

(* Raw weight of a DAG edge under the block-frequency estimate: how much
   flow the edge profile suggests passes along it. *)
let edge_weight freqs profile (e : Dag.edge) =
  match e.origin with
  | Dag.Real ce -> Float.max epsilon (Freq_estimate.edge_freq freqs profile ce)
  | Dag.From_entry v ->
      (* paths restart at v as often as v executes (minus its first entry) *)
      Float.max epsilon freqs.(v)
  | Dag.To_exit w -> Float.max epsilon (0.1 *. freqs.(w))

let top_paths ~k numbering profile =
  let dag = Numbering.dag numbering in
  let cfg = Dag.cfg dag in
  let freqs = Freq_estimate.block_freqs cfg profile in
  (* per-node transition probabilities *)
  let prob =
    let n_edges = Dag.n_edges dag in
    let p = Array.make n_edges 0. in
    for node = 0 to Dag.n_nodes dag - 1 do
      let out = Dag.out_edges dag node in
      let total =
        List.fold_left (fun acc e -> acc +. edge_weight freqs profile e) 0. out
      in
      if total > 0. then
        List.iter
          (fun (e : Dag.edge) ->
            p.(e.idx) <- edge_weight freqs profile e /. total)
          out
    done;
    p
  in
  let exit_node = Dag.exit_node dag in
  let heap = Heap.create () in
  Heap.push heap { Heap.w = 1.0; node = Dag.entry_node dag; id = 0 };
  let found = ref [] and n_found = ref 0 and expansions = ref 0 in
  let continue = ref true in
  while !continue && !n_found < k && !expansions < max_expansions do
    match Heap.pop heap with
    | None -> continue := false
    | Some { w; node; id } ->
        incr expansions;
        if node = exit_node then begin
          found := (id, w) :: !found;
          incr n_found
        end
        else
          List.iter
            (fun (e : Dag.edge) ->
              let w' = w *. prob.(e.idx) in
              if w' > 0. then
                Heap.push heap
                  {
                    Heap.w = w';
                    node = e.edst;
                    id = id + Numbering.value numbering e;
                  })
            (Dag.out_edges dag node)
  done;
  (* best-first pops exit states in decreasing weight order already *)
  List.rev !found

let table ~k ~(plans : Profile_hooks.plans) (profile : Edge_profile.table) =
  let n_methods = Array.length plans in
  let out = Path_profile.create_table ~n_methods in
  Array.iteri
    (fun m plan ->
      match plan with
      | None -> ()
      | Some (p : Instrument.t) ->
          let paths = top_paths ~k p.numbering profile.(m) in
          let wmax =
            List.fold_left (fun acc (_, w) -> Float.max acc w) epsilon paths
          in
          List.iter
            (fun (id, w) ->
              Path_profile.add out.(m) id
                (1 + int_of_float (1e9 *. w /. wmax)))
            paths)
    plans;
  out
