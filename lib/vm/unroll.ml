type result = {
  meth : Method.t;
  no_yieldpoint : bool array;
  unrolled : int;
  witness : Transval.unroll_witness;
}

let retarget f : Method.term -> Method.term = function
  | Method.Ret -> Method.Ret
  | Method.Jmp d -> Method.Jmp (f d)
  | Method.Br { branch; on_true; on_false } ->
      Method.Br { branch; on_true = f on_true; on_false = f on_false }

let expand ?(max_body_blocks = 12) ?no_yieldpoint (m : Method.t) =
  let no_yp =
    match no_yieldpoint with
    | Some a -> Array.copy a
    | None -> Array.make (Array.length m.blocks) false
  in
  let unchanged =
    {
      meth = m;
      no_yieldpoint = no_yp;
      unrolled = 0;
      witness = Transval.identity_unroll m;
    }
  in
  match To_cfg.cfg m with
  | exception Cfg.Malformed _ -> unchanged
  | cfg ->
      let loops = Loops.compute cfg in
      let headers = Loops.headers loops in
      (* candidate loops: single back edge, small, innermost *)
      let candidates =
        List.filter_map
          (fun h ->
            match
              List.filter
                (fun (e : Cfg.edge) -> e.dst = h)
                (Loops.back_edges loops)
            with
            | [ back ] ->
                let body = Loops.natural_loop loops back in
                let innermost =
                  List.for_all (fun b -> b = h || not (Loops.is_header loops b)) body
                in
                (* loops from uninterruptible inlinees keep their shape *)
                if innermost && (not no_yp.(h))
                   && List.length body <= max_body_blocks
                then Some (h, back, body)
                else None
            | _ -> None)
          headers
      in
      (* keep a disjoint subset, processed in header order *)
      let taken = Hashtbl.create 8 in
      let chosen =
        List.filter
          (fun (_, _, body) ->
            if List.exists (Hashtbl.mem taken) body then false
            else begin
              List.iter (fun b -> Hashtbl.replace taken b ()) body;
              true
            end)
          candidates
      in
      if chosen = [] then unchanged
      else begin
        let blocks = ref (Array.to_list m.blocks) in
        let flags = ref (Array.to_list no_yp) in
        let srcs =
          ref (List.init (Array.length m.blocks) (fun b -> b))
        in
        let n = ref (Array.length m.blocks) in
        List.iter
          (fun (header, (back : Cfg.edge), body) ->
            let copy_of = Hashtbl.create 8 in
            List.iteri
              (fun i b -> Hashtbl.replace copy_of b (!n + i))
              body;
            (* copies: in-loop targets map to copies, except the copied
               back edge, which returns to the original header *)
            let map_copy_target v =
              match Hashtbl.find_opt copy_of v with
              | Some c -> c
              | None -> v
            in
            let copies =
              List.map
                (fun b ->
                  let orig = m.blocks.(b) in
                  let term =
                    if b = back.src then
                      (* copy's back edge -> original header *)
                      retarget
                        (fun v -> if v = header then header else map_copy_target v)
                        orig.term
                    else retarget map_copy_target orig.term
                  in
                  { Method.body = orig.body; term })
                body
            in
            (* original tail's back edge now enters the copied header *)
            let tail = back.src in
            let tail_block = List.nth !blocks tail in
            let new_tail_term =
              retarget
                (fun v ->
                  if v = header then Hashtbl.find copy_of header else v)
                tail_block.Method.term
            in
            blocks :=
              List.mapi
                (fun i (blk : Method.block) ->
                  if i = tail then { blk with term = new_tail_term } else blk)
                !blocks
              @ copies;
            flags := !flags @ List.map (fun b -> no_yp.(b)) body;
            srcs := !srcs @ body;
            n := !n + List.length body)
          chosen;
        let meth = { m with Method.blocks = Array.of_list !blocks } in
        {
          meth;
          no_yieldpoint = Array.of_list !flags;
          unrolled = List.length chosen;
          witness = { Transval.src_of = Array.of_list !srcs };
        }
      end
