(** Method inlining — the optimizing-compiler transformation behind two
    of the paper's §4.3 observations:

    - several IR branches may map to the same bytecode-level branch:
      every copy of an inlined callee shares one set of fresh branch ids
      (per callee), so their executions accumulate in the same
      taken/not-taken counters, exactly like Jikes RVM's bytecode-branch
      mapping;
    - inlining an uninterruptible method that contains a loop produces a
      loop header without a yieldpoint: the result marks such blocks in
      [no_yieldpoint], and path profiling then loses paths ending there.

    Mechanics: each inlinable call site receives its own copy of the
    callee's blocks (correct under the stack-depth discipline); the
    callee's locals are remapped to a fresh region shared by all copies
    of that callee; its [Ret] becomes a jump back to the split caller
    block with the return value on the stack.  One level only — calls
    remaining inside an inlined body stay calls. *)

type result = {
  meth : Method.t;
  no_yieldpoint : bool array;
      (** per block of [meth]: copied from an uninterruptible callee *)
  inlined : (string * int) list;  (** callee name, call sites expanded *)
  witness : Transval.inline_witness;
      (** simulation relation for {!Transval.check_inline}; the identity
          witness when nothing was inlined *)
}

(** [expand program meth ~should_inline] inlines every call site in
    [meth] whose callee satisfies [should_inline] (self-calls are never
    inlined).  Returns [meth] unchanged (shared, not copied) when nothing
    was inlined. *)
val expand :
  Program.t -> Method.t -> should_inline:(Method.t -> bool) -> result

(** Default size-based policy: callee's instruction count at most
    [limit]. *)
val small_enough : limit:int -> Method.t -> bool
