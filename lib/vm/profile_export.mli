(** Continuous-profile exporter.

    Renders PEP's sampled path and edge profiles, and the tick-sampled
    dynamic call graph, as {!Folded} stacks — the text/JSON input
    format of flamegraph.pl, speedscope and pyroscope ([pepsim top]).

    PEP samples are flat (a sample names the method executing the
    path, not a call stack), so calling context is approximated by
    hanging each method under its {e hot chain}: the walk toward a
    root that follows, at every step, the heaviest sampled caller edge
    in the DCG, with a visited guard against sampled recursion. *)

type kind = [ `Paths | `Edges | `Dcg ]

val kind_name : kind -> string

(** {2 Table-level exporters}

    Work from raw profile tables and a [name] function over dense
    method indexes, so callers that persisted profiles with their own
    name table (the fleet segment store) can export without rebuilding
    a program or machine. *)

(** One stack per recorded path, leaf frame ["path#<id> (<n> br)"]
    (branch count omitted when the entry carries none). *)
val paths_of : name:(int -> string) -> Dcg.t -> Path_profile.table -> Folded.t

(** Per-branch-arm counts, leaf frame ["br#<id>:taken" / ":not-taken"]. *)
val edges_of : name:(int -> string) -> Dcg.t -> Edge_profile.table -> Folded.t

(** DCG edge weights: each sampled caller→callee edge under the
    caller's hot chain. *)
val dcg_of : name:(int -> string) -> Dcg.t -> Folded.t

(** {2 Machine-level exporters (live runs)} *)

(** Per-path sample counts: one stack per sampled path, leaf frame
    ["path#<id> (<n> br)"]. *)
val paths : Machine.t -> Dcg.t -> Pep.t -> Folded.t

(** Per-branch-arm sample counts: leaf frame ["br#<id>:taken" /
    ":not-taken"]. *)
val edges : Machine.t -> Dcg.t -> Pep.t -> Folded.t

(** DCG edge weights: each sampled caller→callee edge under the
    caller's hot chain. *)
val dcg : Machine.t -> Dcg.t -> Folded.t

(** Export from a finished driver run; [None] when [kind] needs PEP
    but the driver ran without it. *)
val of_driver : Driver.t -> kind -> Folded.t option
