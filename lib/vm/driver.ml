type opt_profile_source =
  | From_baseline
  | Fixed of Edge_profile.table
  | From_pep

type pep_opts = {
  sampling : Sampling.config;
  zero : [ `Hottest | `Coldest ];
  numbering : [ `Smart | `Ball_larus ];
}

type mode = Adaptive of { thresholds : int array } | Replay of Advice.t
type engine = [ `Oracle | `Threaded ]

type options = {
  mode : mode;
  opt_profile : opt_profile_source;
  pep : pep_opts option;
  inline : bool;  (* inline small/hot callees *)
  unroll : bool;  (* unroll small innermost loops at opt levels >= 1 *)
  verify : bool;  (* re-verify bytecode after every optimization pass *)
  deep_verify : bool;  (* also run the dataflow lints on every compiled body *)
  engine : engine;  (* flat threaded code by default; interp oracle *)
  tiers : Codegen.tiers;  (* engine-v2 tier policy: fusion + PIC ladder *)
  telemetry : Telemetry.t option;  (* host-side metrics/trace sink *)
  faults : Fault_injector.t option;  (* deterministic fault injection *)
}

let default_thresholds = [| 3; 12; 40 |]

let default_options =
  {
    mode = Adaptive { thresholds = default_thresholds };
    opt_profile = From_baseline;
    pep = None;
    inline = false;
    unroll = false;
    verify = true;
    deep_verify = false;
    engine = `Threaded;
    tiers = Codegen.default_tiers;
    telemetry = None;
    faults = None;
  }

(* Trivial inlining takes any tiny callee; profile-guided inlining takes
   mid-size callees the sampled call graph has seen at this caller. *)
let trivial_inline_size = 25
let guided_inline_size = 60

type compile_state = Uncompiled | Baseline | Opt of int

(* Driver-level telemetry.  All recording here is host-side — nothing
   below touches simulated cycles — so a run with a sink attached
   charges exactly the cycles of a run without one. *)
type tstats = {
  tel : Telemetry.t;
  polls : Metrics.counter;
  ticks : Metrics.counter;
  compile_baseline_n : Metrics.counter;
  compile_opt_n : Metrics.counter array;  (* per opt level *)
  recompile_n : Metrics.counter array;  (* per opt level *)
  compile_units : Metrics.histogram;
  compile_cycles_g : Metrics.gauge;
  check_errors : Metrics.counter;
  check_warnings : Metrics.counter;
  plan_unprofilable : Metrics.counter;
  transval_ok : Metrics.counter;
  transval_rejected : Metrics.counter;
  deep_methods : Metrics.counter;
}

type t = {
  st : Machine.t;
  opts : options;
  states : compile_state array;
  baseline_profile : Edge_profile.table;
  baseline_active : bool array;
  samples : int array;
  dcg : Dcg.t;
  pep_state : Pep.t option;
  (* compile-fail degradation state: consecutive failed opt-compile
     attempts per method, and the virtual cycle before which the driver
     must not retry (max_int once it has given up) *)
  fault_attempts : int array;
  fault_retry_at : int array;
  mutable compile_cycles : int;
  mutable recompilations : int;
  mutable inlined_sites : int;
  mutable unrolled_loops : int;
  mutable checks : Pep_check.diagnostic list;  (* newest first *)
  mutable hooks : Interp.hooks;
  eng : Codegen.t;
  tstats : tstats option;
  mutable iterations : int;  (* completed [run] calls, for trace labels *)
}

let record_checks d ds =
  (match d.tstats with
  | None -> ()
  | Some s ->
      List.iter
        (fun (diag : Pep_check.diagnostic) ->
          match diag.Pep_check.severity with
          | Pep_check.Error -> Metrics.incr s.check_errors
          | Pep_check.Warning -> Metrics.incr s.check_warnings
          | Pep_check.Info -> ())
        ds);
  d.checks <- List.rev_append ds d.checks

(* Re-verify a method body right after an optimization pass produced it,
   so a miscompile is caught at the pass that introduced it. *)
let verify_body d ~stage (meth : Method.t) =
  if d.opts.verify then
    record_checks d
      (Pep_check.with_pass ("bytecode@" ^ stage)
         (Pep_check.verify_method d.st.Machine.program meth))

(* Translation validation: check a transform's output against its input
   via the witness it emitted.  Gated on [verify] like [verify_body] —
   the dataflow passes below are the [deep_verify] extra. *)
let record_transval d ~stage ds =
  let ds = Pep_check.with_pass ("transval@" ^ stage) ds in
  (match d.tstats with
  | None -> ()
  | Some s ->
      if Pep_check.has_errors ds then Metrics.incr s.transval_rejected
      else Metrics.incr s.transval_ok);
  record_checks d ds

let validate_inline_body d ~source ~witness meth =
  if d.opts.verify then
    record_transval d ~stage:"inline"
      (Pep_check.validate_inline d.st.Machine.program ~source ~witness meth)

let validate_unroll_body d ~source ~witness meth =
  if d.opts.verify then
    record_transval d ~stage:"unroll"
      (Pep_check.validate_unroll ~source ~witness meth)

(* Deep verification of the body the machine actually compiled: dataflow
   lints plus an independent justification of the unchecked array
   operations the threaded engine emits, against the exact [max_stack]
   bound the compiled method carries. *)
let deep_verify_body d midx (cm : Machine.cmeth) =
  if d.opts.deep_verify then begin
    let p = d.st.Machine.program in
    let meth = cm.Machine.meth in
    (match d.tstats with
    | None -> ()
    | Some s -> Metrics.incr s.deep_methods);
    record_checks d (Pep_check.lint_liveness meth);
    record_checks d (Pep_check.lint_intervals p meth);
    record_checks d
      (Pep_check.justify_unsafe p ~max_stack:cm.Machine.max_stack meth);
    (* the fusion table the engine would compile for this body right
       now, validated against an independent effect/pattern derivation *)
    record_checks d
      (Pep_check.validate_fusion ~witness:(Codegen.fusion_witness d.eng midx)
         meth)
  end

let charge_compile d cycles =
  d.compile_cycles <- d.compile_cycles + cycles;
  Machine.add_cycles d.st cycles

(* Compile-cost unit: bytecode instructions plus one per block for the
   terminator. *)
let method_units (m : Method.t) = Method.size m + Array.length m.blocks

let compile_baseline d midx =
  let cm = Machine.cmeth d.st midx in
  let cost = d.st.Machine.cost in
  if cm.meth.Method.uninterruptible then begin
    (* uninterruptible methods model VM-internal code: precompiled at full
       speed, never instrumented, never recompiled *)
    Machine.set_speed d.st midx ~percent:100;
    Machine.clear_edge_extra d.st midx;
    d.baseline_active.(midx) <- false
  end
  else begin
    let ts = d.st.Machine.cycles in
    let units = method_units cm.meth in
    charge_compile d (units * cost.Cost_model.compile_cost_baseline);
    Machine.set_speed d.st midx
      ~percent:(100 * cost.Cost_model.baseline_slowdown);
    Machine.clear_edge_extra d.st midx;
    d.baseline_active.(midx) <- true;
    match d.tstats with
    | None -> ()
    | Some s ->
        Metrics.incr s.compile_baseline_n;
        Metrics.observe s.compile_units units;
        Metrics.set s.compile_cycles_g d.compile_cycles;
        let mname = cm.meth.Method.name in
        Telemetry.span s.tel ~ts ~dur:(d.st.Machine.cycles - ts) ~cat:"compile"
          ~name:("baseline " ^ mname)
          ~args:[ ("method", mname); ("units", string_of_int units) ]
          ();
        Telemetry.instant s.tel ~ts:d.st.Machine.cycles ~cat:"phase"
          ~name:"set_speed"
          ~args:
            [
              ("method", mname);
              ( "percent",
                string_of_int (100 * cost.Cost_model.baseline_slowdown) );
            ]
          ()
  end;
  d.states.(midx) <- Baseline

let opt_profile_for d midx : Edge_profile.t =
  match d.opts.opt_profile with
  | From_baseline -> (
      (* in replay mode the one-time profile comes with the advice, since
         replayed methods skip the baseline-profiling phase *)
      match d.opts.mode with
      | Replay advice -> advice.Advice.profile.(midx)
      | Adaptive _ -> d.baseline_profile.(midx))
  | Fixed table -> table.(midx)
  | From_pep -> (
      match d.pep_state with
      | Some p when not (Edge_profile.is_empty p.Pep.edges.(midx)) ->
          p.Pep.edges.(midx)
      | Some _ | None -> d.baseline_profile.(midx))

let dcg_for d =
  match d.opts.mode with Replay advice -> advice.Advice.dcg | Adaptive _ -> d.dcg

(* Body transformations applied by the optimizing compiler.  Always
   expanded from the pristine bytecode: recompiling an already-transformed
   body would compound copies at every promotion. *)
let apply_transforms d midx ~level =
  let top_level = Array.length d.st.Machine.cost.Cost_model.compile_cost_opt - 1 in
  if d.opts.inline || (d.opts.unroll && level >= 1) then begin
    let pristine = Program.method_of_index d.st.Machine.program midx in
    let meth, no_yieldpoint, inlined_sites =
      if d.opts.inline then begin
        let dcg = dcg_for d in
        (* trivial inlining at every opt level; profile-guided
           (call-graph driven) inlining of larger callees at the top *)
        let should_inline (callee : Method.t) =
          Method.size callee <= trivial_inline_size
          || level >= top_level
             && Method.size callee <= guided_inline_size
             && Dcg.weight dcg ~caller:midx
                  ~callee:(Machine.index d.st callee.Method.name)
                >= 2
        in
        let r = Inline.expand d.st.Machine.program pristine ~should_inline in
        let meth = r.Inline.meth in
        verify_body d ~stage:"inline" meth;
        validate_inline_body d ~source:pristine ~witness:r.Inline.witness meth;
        ( meth,
          r.Inline.no_yieldpoint,
          List.fold_left (fun acc (_, n) -> acc + n) 0 r.Inline.inlined )
      end
      else (pristine, Array.make (Array.length pristine.Method.blocks) false, 0)
    in
    let meth, no_yieldpoint, unrolled =
      if d.opts.unroll && level >= 1 then begin
        let r = Unroll.expand ~no_yieldpoint meth in
        verify_body d ~stage:"unroll" r.Unroll.meth;
        validate_unroll_body d ~source:meth ~witness:r.Unroll.witness
          r.Unroll.meth;
        (r.Unroll.meth, r.Unroll.no_yieldpoint, r.Unroll.unrolled)
      end
      else (meth, no_yieldpoint, 0)
    in
    if inlined_sites > 0 || unrolled > 0 then begin
      d.inlined_sites <- d.inlined_sites + inlined_sites;
      d.unrolled_loops <- d.unrolled_loops + unrolled;
      Machine.recompile d.st midx ~no_yieldpoint meth
    end
  end

let do_compile_opt d midx ~level =
  let ts = d.st.Machine.cycles in
  apply_transforms d midx ~level;
  let cm = Machine.cmeth d.st midx in
  let cost = d.st.Machine.cost in
  let pep_pass_units =
    match d.opts.pep with
    | Some _ -> Array.length cm.meth.Method.blocks * cost.Cost_model.pep_pass_cost
    | None -> 0
  in
  charge_compile d
    ((method_units cm.meth * cost.Cost_model.compile_cost_opt.(level))
    + pep_pass_units);
  Machine.set_speed d.st midx ~percent:cost.Cost_model.opt_speedup_percent.(level);
  d.baseline_active.(midx) <- false;
  let profile = opt_profile_for d midx in
  let lay = Layout.compute cm.cfg profile in
  Layout.apply d.st midx lay;
  verify_body d ~stage:"layout" (Machine.cmeth d.st midx).Machine.meth;
  (if d.opts.verify then
     let cm = Machine.cmeth d.st midx in
     record_transval d ~stage:"layout"
       (Pep_check.validate_layout cm.Machine.cfg ~pos:(Layout.positions lay)
          ~predict_taken:(Layout.predicted lay)
          ~edge_extra:(fun b idx -> cm.Machine.edge_extra.(b).(idx))
          ~taken_penalty:cost.Cost_model.taken_branch_penalty
          ~mispredict_penalty:cost.Cost_model.mispredict_penalty));
  (* feed the engine's superinstruction planner its hot mask: blocks
     the profile saw at all, with a 2%-of-hottest floor to drop noise,
     under the same profile the layout pass just used.  Fusion is free
     at runtime (strictly fewer dispatches, observationally neutral),
     so the mask only bounds translation effort: never-executed blocks
     and profile noise stay unfused, but moderately-warm paths — e.g.
     the arms of a switch, each a small fraction of its header — do
     fuse.  Methods reaching opt levels are hot by promotion, so this
     picks the executed paths within them. *)
  (if d.opts.tiers.Codegen.fuse then begin
     let freqs = Freq_estimate.block_freqs cm.cfg profile in
     let top = Array.fold_left Float.max 0.0 freqs in
     let hot = Array.map (fun f -> f > 0.0 && f >= 0.02 *. top) freqs in
     Codegen.set_hot_blocks d.eng midx hot
   end);
  deep_verify_body d midx (Machine.cmeth d.st midx);
  (match (d.pep_state, d.opts.pep) with
  | Some p, Some popts ->
      let number _ dag =
        match popts.numbering with
        | `Smart -> Pep.smart_number_profile ~zero:popts.zero profile dag
        | `Ball_larus -> Numbering.ball_larus dag
      in
      let mname = cm.Machine.meth.Method.name in
      let unprofilable fmt =
        Fmt.kstr
          (fun message ->
            (match d.tstats with
            | None -> ()
            | Some s ->
                Metrics.incr s.plan_unprofilable;
                Telemetry.instant s.tel ~ts:d.st.Machine.cycles ~cat:"plan"
                  ~name:"unprofilable"
                  ~args:[ ("method", mname); ("reason", message) ]
                  ());
            record_checks d
              [
                {
                  Pep_check.severity = Pep_check.Warning;
                  pass = "plan";
                  loc = Pep_check.Method_loc mname;
                  message;
                };
              ])
          fmt
      in
      (match Profile_hooks.plan_outcome ~mode:Dag.Loop_header ~number d.st midx with
      | Profile_hooks.Planned plan -> p.Pep.plans.(midx) <- Some plan
      | Profile_hooks.Uninterruptible -> p.Pep.plans.(midx) <- None
      | Profile_hooks.Too_many_paths { n_paths; limit } ->
          p.Pep.plans.(midx) <- None;
          unprofilable "unprofilable: %d paths exceed the limit %d" n_paths
            limit
      | Profile_hooks.Truncation_unsupported msg ->
          p.Pep.plans.(midx) <- None;
          unprofilable "unprofilable: truncation unsupported (%s)" msg);
      (* path ids change with the numbering; drop stale entries *)
      Path_profile.clear p.Pep.paths.(midx)
  | _ -> ());
  let is_recompile =
    match d.states.(midx) with
    | Opt _ -> true
    | Uncompiled | Baseline -> false
  in
  if is_recompile then d.recompilations <- d.recompilations + 1;
  d.states.(midx) <- Opt level;
  match d.tstats with
  | None -> ()
  | Some s ->
      let units = method_units cm.meth in
      Metrics.incr s.compile_opt_n.(level);
      if is_recompile then Metrics.incr s.recompile_n.(level);
      Metrics.observe s.compile_units units;
      Metrics.set s.compile_cycles_g d.compile_cycles;
      let mname = cm.meth.Method.name in
      Telemetry.span s.tel ~ts ~dur:(d.st.Machine.cycles - ts) ~cat:"compile"
        ~name:(Fmt.str "%s%d %s" (if is_recompile then "recompile" else "opt") level mname)
        ~args:
          [
            ("method", mname);
            ("level", string_of_int level);
            ("units", string_of_int units);
          ]
        ();
      Telemetry.instant s.tel ~ts:d.st.Machine.cycles ~cat:"phase"
        ~name:"set_speed"
        ~args:
          [
            ("method", mname);
            ( "percent",
              string_of_int cost.Cost_model.opt_speedup_percent.(level) );
          ]
        ()

(* Optimizing compilation through the fault gate.  A [compile-fail]
   fault burns the compile budget but leaves the method at its current
   tier; the driver re-queues it with virtual-cycle exponential backoff
   (retry_at = now + backoff * 2^(attempt-1)) and gives up for good
   after [compile-retries] consecutive failures.  A successful compile
   resets the attempt count. *)
let fail_compile d inj midx ~level =
  let cm = Machine.cmeth d.st midx in
  let cost = d.st.Machine.cost in
  (* the aborted compile still burned its budget *)
  charge_compile d
    (method_units cm.Machine.meth * cost.Cost_model.compile_cost_opt.(level));
  let attempt = d.fault_attempts.(midx) + 1 in
  d.fault_attempts.(midx) <- attempt;
  let plan = Fault_injector.plan inj in
  let mname = cm.Machine.meth.Method.name in
  if attempt > plan.Fault_plan.compile_retries then begin
    d.fault_retry_at.(midx) <- max_int;
    Fault_injector.note_gaveup inj ~ts:d.st.Machine.cycles ~meth:mname
  end
  else begin
    let backoff = plan.Fault_plan.compile_backoff * (1 lsl (attempt - 1)) in
    let until = d.st.Machine.cycles + backoff in
    d.fault_retry_at.(midx) <- until;
    Fault_injector.note_backoff inj ~ts:d.st.Machine.cycles ~meth:mname ~until
      ~attempt
  end

let compile_opt d midx ~level =
  match d.opts.faults with
  | Some inj
    when Fault_injector.fire_compile_fail inj ~ts:d.st.Machine.cycles
           ~meth:(Machine.cmeth d.st midx).Machine.meth.Method.name ->
      fail_compile d inj midx ~level
  | Some _ | None ->
      do_compile_opt d midx ~level;
      d.fault_attempts.(midx) <- 0;
      d.fault_retry_at.(midx) <- 0

let ensure_compiled d midx =
  match d.states.(midx) with
  | Baseline | Opt _ -> ()
  | Uncompiled -> (
      match d.opts.mode with
      | Adaptive _ -> compile_baseline d midx
      | Replay advice ->
          let level = advice.Advice.levels.(midx) in
          if level < 0 then compile_baseline d midx
          else begin
            compile_baseline d midx;
            compile_opt d midx ~level
          end)

let consider_promotion d midx =
  match d.opts.mode with
  | Replay _ -> ()
  | Adaptive { thresholds } ->
      let next_level =
        match d.states.(midx) with
        | Uncompiled | Baseline -> 0
        | Opt l -> l + 1
      in
      if
        next_level < Array.length thresholds
        && d.samples.(midx) >= thresholds.(next_level)
        && d.st.Machine.cycles >= d.fault_retry_at.(midx)
        && not (Machine.cmeth d.st midx).meth.Method.uninterruptible
      then compile_opt d midx ~level:next_level

(* Replay mode has no promotion path, so a method whose advised compile
   failed is retried from the tick hook once its backoff expires. *)
let maybe_retry_replay d advice midx =
  if
    d.fault_attempts.(midx) > 0
    && d.fault_retry_at.(midx) <> max_int
    && d.st.Machine.cycles >= d.fault_retry_at.(midx)
  then begin
    match d.states.(midx) with
    | Baseline when advice.Advice.levels.(midx) >= 0 ->
        compile_opt d midx ~level:advice.Advice.levels.(midx)
    | Uncompiled | Baseline | Opt _ -> ()
  end

let create ?extra_hooks opts st =
  let n_methods = Array.length st.Machine.methods in
  let n_levels = Array.length st.Machine.cost.Cost_model.compile_cost_opt in
  let tstats =
    match opts.telemetry with
    | None -> None
    | Some tel ->
        let m = Telemetry.metrics tel in
        Some
          {
            tel;
            polls = Metrics.counter m "vm.yieldpoint.polls";
            ticks = Metrics.counter m "vm.ticks";
            compile_baseline_n = Metrics.counter m "vm.compile.baseline";
            compile_opt_n =
              Array.init n_levels (fun l ->
                  Metrics.counter m (Fmt.str "vm.compile.opt.l%d" l));
            recompile_n =
              Array.init n_levels (fun l ->
                  Metrics.counter m (Fmt.str "vm.recompile.l%d" l));
            compile_units =
              Metrics.histogram
                ~bounds:[| 8; 16; 32; 64; 128; 256; 512; 1024; 2048 |]
                m "vm.compile.units";
            compile_cycles_g = Metrics.gauge m "vm.compile.cycles";
            check_errors = Metrics.counter m "vm.check.errors";
            check_warnings = Metrics.counter m "vm.check.warnings";
            plan_unprofilable = Metrics.counter m "vm.plan.unprofilable";
            transval_ok = Metrics.counter m "vm.check.transval.validated";
            transval_rejected = Metrics.counter m "vm.check.transval.rejected";
            deep_methods = Metrics.counter m "vm.check.deep.methods";
          }
  in
  let pep_state =
    match opts.pep with
    | Some popts ->
        Some
          (Pep.create ?telemetry:opts.telemetry ?faults:opts.faults
             ~eager:false ~sampling:popts.sampling st)
    | None -> None
  in
  let d =
    {
      st;
      opts;
      states = Array.make n_methods Uncompiled;
      baseline_profile = Edge_profile.create_table ~n_methods;
      baseline_active = Array.make n_methods false;
      samples = Array.make n_methods 0;
      dcg = Dcg.create ();
      pep_state;
      fault_attempts = Array.make n_methods 0;
      fault_retry_at = Array.make n_methods 0;
      compile_cycles = 0;
      recompilations = 0;
      inlined_sites = 0;
      unrolled_loops = 0;
      checks = [];
      hooks = Interp.no_hooks;
      eng = Codegen.create ?telemetry:opts.telemetry ~tiers:opts.tiers st;
      tstats;
      iterations = 0;
    }
  in
  let tick_hooks =
    Tick.hooks
      ~on_tick:(fun _st (frame : Interp.frame) ->
        (match d.tstats with Some s -> Metrics.incr s.ticks | None -> ());
        d.samples.(frame.fmeth) <- d.samples.(frame.fmeth) + 1;
        Dcg.record d.dcg ~caller:frame.fparent ~callee:frame.fmeth;
        (match d.opts.mode with
        | Replay advice when Option.is_some d.opts.faults ->
            maybe_retry_replay d advice frame.fmeth
        | Replay _ | Adaptive _ -> ());
        consider_promotion d frame.fmeth)
      ()
  in
  let lazy_compile =
    {
      Interp.no_hooks with
      on_entry = Some (fun _st (frame : Interp.frame) -> ensure_compiled d frame.fmeth);
    }
  in
  let branch_of =
    Array.map
      (fun (cm : Machine.cmeth) ->
        Array.init (Cfg.n_blocks cm.cfg) (fun b ->
            match Cfg.terminator cm.cfg b with
            | Cfg.Branch { branch; _ } -> branch
            | Cfg.Return | Cfg.Jump _ -> -1))
      st.Machine.methods
  in
  let baseline_edge =
    {
      Interp.no_hooks with
      on_edge =
        Some
          (fun st (frame : Interp.frame) ~src ~idx ~dst:_ ->
            if d.baseline_active.(frame.fmeth) then begin
              let br = branch_of.(frame.fmeth).(src) in
              if br >= 0 then begin
                Edge_profile.incr d.baseline_profile.(frame.fmeth) br
                  ~taken:(idx = 0);
                Machine.add_cycles st st.Machine.cost.Cost_model.edge_count
              end
            end);
    }
  in
  let hooks = Interp.compose tick_hooks lazy_compile in
  let hooks = Interp.compose hooks baseline_edge in
  let hooks =
    match pep_state with
    | Some p -> Interp.compose hooks p.Pep.hooks
    | None -> hooks
  in
  let hooks =
    match extra_hooks with
    | Some h -> Interp.compose hooks h
    | None -> hooks
  in
  (* The yieldpoint-poll counter rides along as one more hook.  The
     driver always runs hooked (tick + lazy compile at minimum), so
     composing it never flips the engine's bare/hooked selection. *)
  let hooks =
    match d.tstats with
    | Some s ->
        Interp.compose hooks
          {
            Interp.no_hooks with
            on_yieldpoint = Some (fun _st _frame _blk -> Metrics.incr s.polls);
          }
    | None -> hooks
  in
  d.hooks <- hooks;
  Codegen.set_hooks d.eng hooks;
  d

let run d =
  let before = d.st.Machine.cycles in
  let result =
    match d.opts.engine with
    | `Threaded -> Codegen.run d.eng
    | `Oracle -> Interp.run d.hooks d.st
  in
  let dur = d.st.Machine.cycles - before in
  (match d.tstats with
  | None -> ()
  | Some s ->
      d.iterations <- d.iterations + 1;
      Telemetry.span s.tel ~ts:before ~dur ~cat:"run" ~name:"iteration"
        ~args:[ ("i", string_of_int d.iterations) ]
        ());
  (dur, result)

let machine d = d.st
let pep d = d.pep_state
let compile_cycles d = d.compile_cycles
let recompilations d = d.recompilations
let baseline_profile d = d.baseline_profile

let advice d =
  let levels =
    Array.map
      (function Uncompiled | Baseline -> -1 | Opt l -> l)
      d.states
  in
  {
    Advice.levels;
    profile = Edge_profile.copy_table d.baseline_profile;
    dcg = Dcg.copy d.dcg;
  }

let method_samples d = Array.copy d.samples
let dcg d = d.dcg
let inlined_sites d = d.inlined_sites
let unrolled_loops d = d.unrolled_loops
let checks d = List.rev d.checks
let add_hooks d h =
  d.hooks <- Interp.compose d.hooks h;
  Codegen.set_hooks d.eng d.hooks

let precompile d =
  Program.iter_methods (fun midx _ -> ensure_compiled d midx) d.st.Machine.program
