(** Replay-compilation advice files (paper §5).

    An advice file records, from a previous well-performing adaptive run,
    (1) the final optimization level of every method and (2) the edge
    profile produced by baseline-compiled code.  Replay compilation
    applies the advice deterministically: each method is compiled to its
    advised level at first invocation, eliminating the timer-dependent
    variation of the adaptive system.  (The paper's advice also carries
    the dynamic call graph, which only feeds inlining decisions Jikes
    makes; our optimizer has no inliner-equivalent decision to replay,
    so it is omitted — see DESIGN.md.) *)

type t = {
  levels : int array;  (** per method: -1 = leave at baseline, else 0..2 *)
  profile : Edge_profile.table;  (** one-time baseline edge profile *)
  dcg : Dcg.t;  (** sampled dynamic call graph *)
}

val n_opt : t -> int

(** Textual round-trip, for writing advice next to benchmark results. *)
val to_lines : t -> string list

(** Parse a serialized advice file.  A malformed line yields a
    {!Dcg.parse_error} naming the file (when given), the 1-based line
    number, the offending text and the reason. *)
val of_lines :
  ?file:string -> n_methods:int -> string list -> (t, Dcg.parse_error) result
