(** The adaptive virtual machine (paper §4.1-§4.3, §5).

    The driver models Jikes RVM's two-compiler adaptive system over the
    simulated machine:

    - Methods are compiled lazily.  The {e baseline} compiler runs at
      first invocation: cheap to compile, slow code, and it carries the
      one-time edge instrumentation of paper §4.2.
    - Timer ticks sample the executing method ({!Tick}); when a method's
      samples cross a threshold it is recompiled by the {e optimizing}
      compiler at the next level (0..2): expensive to compile, faster
      code, profile-guided layout and speculation ({!Layout}), no edge
      instrumentation — and, when configured, PEP instrumentation with
      smart path numbering driven by the same edge profile the optimizer
      used (paper §4.3).
    - {e Replay} mode applies an {!Advice} deterministically: each method
      is compiled to its advised level at first invocation.

    Run the application once per "iteration" with {!run}; replay
    methodology measures the first iteration for compile+execution
    overhead (paper Fig. 7) and the second for execution alone
    (Fig. 6). *)

type opt_profile_source =
  | From_baseline  (** the one-time profile collected by baseline code *)
  | Fixed of Edge_profile.table  (** e.g. a perfect or flipped profile *)
  | From_pep
      (** PEP's continuous profile when it has data for the method,
          falling back to the one-time profile (paper §6.5, Fig. 11) *)

type pep_opts = {
  sampling : Sampling.config;
  zero : [ `Hottest | `Coldest ];  (** smart-numbering ablation axis *)
  numbering : [ `Smart | `Ball_larus ];
}

type mode =
  | Adaptive of { thresholds : int array }
      (** samples needed to reach opt level 0, 1, 2 *)
  | Replay of Advice.t

(** Which execution engine carries the application's instructions.
    [`Threaded] is {!Codegen}'s flat threaded code (the default);
    [`Oracle] is the {!Interp} reference interpreter.  Both are
    bit-identical in cycle counts, checksums and collected profiles —
    the differential test suite holds them to that. *)
type engine = [ `Oracle | `Threaded ]

type options = {
  mode : mode;
  opt_profile : opt_profile_source;
  pep : pep_opts option;
  inline : bool;
      (** inline tiny callees at every opt level, and mid-size callees
          the sampled call graph has seen at the caller at the top
          level; inlined uninterruptible loops lose their header
          yieldpoints (paper §4.3) *)
  unroll : bool;
      (** unroll small innermost loops at opt levels >= 1; duplicated
          branches share their bytecode branch ids *)
  verify : bool;
      (** run {!Pep_check.verify_method} on every body an optimization
          pass produces (after inlining, after unrolling, and after
          layout), plus translation validation of each transform against
          the witness it emitted ({!Pep_check.validate_inline} /
          [validate_unroll] / [validate_layout], pass fields
          ["transval@inline"] etc.), recording the diagnostics — see
          {!checks}.  On by default; verification is host-side and
          charges no simulated cycles. *)
  deep_verify : bool;
      (** additionally run the dataflow lints (liveness, intervals) and
          the unsafe-array-op justification on every body the optimizing
          compiler installs — including adaptive mid-flight recompiles
          and fault-injected retries.  Off by default: the lints cost
          real host time per compile.  Also validates the engine's
          current fusion table for every optimized body
          ({!Pep_check.validate_fusion}, pass ["fusion"]). *)
  engine : engine;
  tiers : Codegen.tiers;
      (** engine-v2 tier policy: profile-guided superinstruction fusion
          and the PIC promotion/demotion ladder.  When [fuse] is on the
          driver derives a per-method hot-block mask from the same edge
          profile the layout pass uses (blocks at least half as frequent
          as the hottest) and feeds it to the engine at every optimizing
          compile.  Tier choices never affect simulated semantics — only
          host-side speed. *)
  telemetry : Telemetry.t option;
      (** host-side metrics/trace sink.  When present the driver
          registers the [vm.*] metrics (yieldpoint polls, ticks,
          compiles and recompiles per level, compile units/cycles,
          verifier diagnostics, unprofilable plans), the engine its
          [engine.*] counters, and PEP its [pep.*] counters; with
          tracing on, compile/recompile and iteration spans plus
          sample / plan-failure / set_speed instants are recorded
          against virtual time.  All of it is host-side only:
          simulated cycles, checksums and profiles are bit-identical
          with the sink attached or absent. *)
  faults : Fault_injector.t option;
      (** deterministic fault injection ({!Fault_plan}).  When present:
          the PEP profile tables are bounded by the plan's
          [path-cap]/[edge-cap] (overflow drops counted, never crashes);
          a [compile-fail] fault makes an optimizing compile burn its
          budget and leave the method at its current tier, re-queued
          with virtual-cycle exponential backoff
          ([retry_at = now + compile-backoff * 2^(attempt-1)]) until
          [compile-retries] consecutive failures make the driver give
          up on the method for good — in adaptive mode the retry rides
          the promotion check, in replay mode the tick hook; a
          [sample-overrun] fault drops the PEP sample after its handler
          cycles are charged.  Every decision is a pure function of
          (plan seed, fault site, event ordinal) — deterministic and
          engine-independent.  An injector with an empty or [noop]
          plan changes nothing: cycles, checksums and profiles are
          bit-identical to a run with [faults = None]. *)
}

val default_thresholds : int array

(** Adaptive mode with default thresholds, one-time profile, no PEP,
    threaded engine, no telemetry. *)
val default_options : options

type t

(** [create ?extra_hooks options machine].  [extra_hooks] (e.g. a perfect
    profiler's) are composed after the driver's own. *)
val create : ?extra_hooks:Interp.hooks -> options -> Machine.t -> t

(** Execute one iteration of the application (its main method); returns
    the virtual cycles consumed by this iteration (including any
    compilation it triggered) and main's result, a workload checksum
    that must not depend on the profiling configuration. *)
val run : t -> int * int

val machine : t -> Machine.t
val pep : t -> Pep.t option

(** Cycles spent compiling so far. *)
val compile_cycles : t -> int

(** Methods recompiled by the optimizing compiler so far. *)
val recompilations : t -> int

(** The one-time edge profile collected by baseline-compiled code. *)
val baseline_profile : t -> Edge_profile.table

(** Advice capturing this run's final compilation decisions; meaningful
    after at least one {!run} in adaptive mode. *)
val advice : t -> Advice.t

(** Per-method timer samples (method sampling of paper §4.1). *)
val method_samples : t -> int array

(** The dynamic call graph sampled at timer ticks (paper §4.1). *)
val dcg : t -> Dcg.t

(** Force-compile every method now (per advice in replay mode, baseline
    in adaptive mode), charging compilation as usual.  Lets callers
    build profiling hooks against post-compilation method bodies — e.g.
    a perfect profiler over inlined code. *)
val precompile : t -> unit

(** Diagnostics accumulated so far, oldest first: bytecode
    re-verification after each optimization pass (pass fields
    ["bytecode@inline"], ["bytecode@unroll"], ["bytecode@layout"], when
    [options.verify] is on), translation validation of each transform
    (["transval@inline"], ["transval@unroll"], ["transval@layout"]),
    the [deep_verify] dataflow lints (["liveness"], ["interval"]) and
    PEP planning failures (pass ["plan"], [Warning] marking the method
    unprofilable — a path count over the numbering limit or an
    unsupported truncation; always recorded).  Any [Error] here means an
    optimization pass miscompiled a method. *)
val checks : t -> Pep_check.diagnostic list

(** Call sites expanded by the inliner so far. *)
val inlined_sites : t -> int

(** Loops unrolled so far. *)
val unrolled_loops : t -> int

(** Compose more hooks after the driver's own (for hooks that must be
    built after {!precompile}). *)
val add_hooks : t -> Interp.hooks -> unit
