(** Sampled dynamic call graph (paper §4.1: Jikes RVM's yieldpoint
    handler "examines the stack ... and updates the dynamic call graph").

    On each timer tick the adaptive system records the (caller, callee)
    pair of the executing frame; the resulting weighted call graph drives
    inlining decisions and travels in the advice file, like Jikes RVM's
    dynamic call graph does. *)

type t

val create : unit -> t

(** [record t ~caller ~callee] adds one sample; [caller] is -1 when the
    callee is the root invocation. *)
val record : t -> caller:int -> callee:int -> unit

val weight : t -> caller:int -> callee:int -> int

(** Total samples accumulated for calls from [caller] to [callee]...
    summed over all callers. *)
val callee_weight : t -> callee:int -> int

(** All sampled edges as [(caller, callee, weight)], sorted by weight
    descending (ties by ids). *)
val edges : t -> (int * int * int) list

val total : t -> int
val copy : t -> t

(** One line per edge: ["<caller> <callee> <weight>"]. *)
val to_lines : t -> string list

(** Where and why parsing a serialized profile failed.  Shared with
    {!Advice.of_lines}, whose line numbers refer to the advice file. *)
type parse_error = {
  file : string option;  (** source file, when parsing one *)
  line : int;  (** 1-based position in the input *)
  text : string;  (** the offending line, trimmed *)
  reason : string;
}

val pp_parse_error : parse_error Fmt.t

(** Parse one ["<caller> <callee> <weight>"] line into [t] (blank lines
    are ignored); [Error reason] leaves [t] unchanged. *)
val parse_line : t -> string -> (unit, string) result

val of_lines : ?file:string -> string list -> (t, parse_error) result
