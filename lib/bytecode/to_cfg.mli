(** Control-flow graph of a bytecode method.

    Block ids coincide with the method's block indices, and CFG branch ids
    are the method's bytecode branch ids, so profiles keyed by
    {!Cfg.branch_id} are directly comparable across compilations of the
    same method (paper §4.3). *)

(** @raise Cfg.Malformed if the method breaks CFG well-formedness (e.g. a
    loop that never reaches the exit). *)
val cfg : Method.t -> Cfg.t
