exception Error of string

type token =
  | INT of int
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

let keywords =
  [
    "program"; "globals"; "heap"; "main"; "method"; "uninterruptible"; "if";
    "else"; "while"; "do"; "for"; "switch"; "case"; "default"; "break";
    "continue"; "return"; "rand"; "g"; "h";
  ]

type lexer = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  mutable tok : token;
  mutable tok_line : int;
  mutable tok_col : int;
}

let fail lx fmt =
  Fmt.kstr (fun msg -> raise (Error (Fmt.str "%d:%d: %s" lx.tok_line lx.tok_col msg))) fmt

let peek_char lx = if lx.pos >= String.length lx.src then '\000' else lx.src.[lx.pos]
let peek2_char lx =
  if lx.pos + 1 >= String.length lx.src then '\000' else lx.src.[lx.pos + 1]

let advance_char lx =
  if peek_char lx = '\n' then begin
    lx.line <- lx.line + 1;
    lx.col <- 1
  end
  else lx.col <- lx.col + 1;
  lx.pos <- lx.pos + 1

let rec skip_ws lx =
  match peek_char lx with
  | ' ' | '\t' | '\r' | '\n' ->
      advance_char lx;
      skip_ws lx
  | '/' when peek2_char lx = '/' ->
      while peek_char lx <> '\n' && peek_char lx <> '\000' do
        advance_char lx
      done;
      skip_ws lx
  | '/' when peek2_char lx = '*' ->
      advance_char lx;
      advance_char lx;
      let rec close () =
        match peek_char lx with
        | '\000' -> fail lx "unterminated block comment"
        | '*' when peek2_char lx = '/' ->
            advance_char lx;
            advance_char lx
        | _ ->
            advance_char lx;
            close ()
      in
      close ();
      skip_ws lx
  | _ -> ()

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '$'

let is_digit c = c >= '0' && c <= '9'

let scan lx =
  skip_ws lx;
  lx.tok_line <- lx.line;
  lx.tok_col <- lx.col;
  let c = peek_char lx in
  if c = '\000' then lx.tok <- EOF
  else if is_digit c then begin
    let start = lx.pos in
    while is_digit (peek_char lx) do
      advance_char lx
    done;
    lx.tok <- INT (int_of_string (String.sub lx.src start (lx.pos - start)))
  end
  else if is_ident_char c && not (is_digit c) then begin
    let start = lx.pos in
    while is_ident_char (peek_char lx) do
      advance_char lx
    done;
    let word = String.sub lx.src start (lx.pos - start) in
    lx.tok <- (if List.mem word keywords then KW word else IDENT word)
  end
  else begin
    let two = Fmt.str "%c%c" c (peek2_char lx) in
    let punct2 = [ "=="; "!="; "<="; ">="; "<<"; ">>" ] in
    if List.mem two punct2 then begin
      advance_char lx;
      advance_char lx;
      lx.tok <- PUNCT two
    end
    else
      match c with
      | '(' | ')' | '{' | '}' | '[' | ']' | ';' | ',' | ':' | '=' | '+' | '-'
      | '*' | '/' | '%' | '&' | '|' | '^' | '<' | '>' | '!' ->
          advance_char lx;
          lx.tok <- PUNCT (String.make 1 c)
      | _ -> fail lx "unexpected character %C" c
  end

let make_lexer src =
  let lx =
    { src; pos = 0; line = 1; col = 1; tok = EOF; tok_line = 1; tok_col = 1 }
  in
  scan lx;
  lx

let describe = function
  | INT k -> Fmt.str "integer %d" k
  | IDENT s -> Fmt.str "identifier %s" s
  | KW s -> Fmt.str "keyword %s" s
  | PUNCT s -> Fmt.str "%S" s
  | EOF -> "end of input"

let eat_punct lx p =
  match lx.tok with
  | PUNCT q when q = p -> scan lx
  | t -> fail lx "expected %S, found %s" p (describe t)

let eat_kw lx k =
  match lx.tok with
  | KW q when q = k -> scan lx
  | t -> fail lx "expected %s, found %s" k (describe t)

let eat_ident lx =
  match lx.tok with
  | IDENT s ->
      scan lx;
      s
  | t -> fail lx "expected identifier, found %s" (describe t)

let eat_int lx =
  match lx.tok with
  | INT k ->
      scan lx;
      k
  | t -> fail lx "expected integer, found %s" (describe t)

(* --- expressions, precedence-climbing (levels shared with Pretty) --- *)

let binop_of = function
  | "|" -> Some Instr.Or
  | "^" -> Some Instr.Xor
  | "&" -> Some Instr.And
  | "<<" -> Some Instr.Shl
  | ">>" -> Some Instr.Shr
  | "+" -> Some Instr.Add
  | "-" -> Some Instr.Sub
  | "*" -> Some Instr.Mul
  | "/" -> Some Instr.Div
  | "%" -> Some Instr.Rem
  | _ -> None

let cmp_of = function
  | "==" -> Some Instr.Eq
  | "!=" -> Some Instr.Ne
  | "<" -> Some Instr.Lt
  | "<=" -> Some Instr.Le
  | ">" -> Some Instr.Gt
  | ">=" -> Some Instr.Ge
  | _ -> None

let level_of_punct p =
  match p with
  | "|" | "^" -> Some 1
  | "&" -> Some 2
  | "==" | "!=" | "<" | "<=" | ">" | ">=" -> Some 3
  | "<<" | ">>" -> Some 4
  | "+" | "-" -> Some 5
  | "*" | "/" | "%" -> Some 6
  | _ -> None

let rec parse_expr lx level : Ast.expr =
  if level >= 7 then parse_unary lx
  else
    let lhs = ref (parse_expr lx (level + 1)) in
    let continue = ref true in
    while !continue do
      match lx.tok with
      | PUNCT p when level_of_punct p = Some level ->
          scan lx;
          let rhs = parse_expr lx (level + 1) in
          lhs :=
            (match (binop_of p, cmp_of p) with
            | Some op, _ -> Ast.Bin (op, !lhs, rhs)
            | None, Some c -> Ast.Rel (c, !lhs, rhs)
            | None, None -> assert false)
      | _ -> continue := false
    done;
    !lhs

and parse_unary lx : Ast.expr =
  match lx.tok with
  | PUNCT "!" ->
      scan lx;
      Ast.Not (parse_unary lx)
  | PUNCT "-" ->
      scan lx;
      Ast.Neg (parse_unary lx)
  | _ -> parse_primary lx

and parse_primary lx : Ast.expr =
  match lx.tok with
  | INT k ->
      scan lx;
      Ast.Int k
  | PUNCT "(" ->
      scan lx;
      let e = parse_expr lx 1 in
      eat_punct lx ")";
      e
  | KW "g" ->
      scan lx;
      eat_punct lx "[";
      let ix = eat_int lx in
      eat_punct lx "]";
      Ast.Global ix
  | KW "h" ->
      scan lx;
      eat_punct lx "[";
      let e = parse_expr lx 1 in
      eat_punct lx "]";
      Ast.Heap e
  | KW "rand" ->
      scan lx;
      eat_punct lx "(";
      let n = eat_int lx in
      eat_punct lx ")";
      Ast.Rand n
  | IDENT name -> (
      scan lx;
      match lx.tok with
      | PUNCT "(" ->
          scan lx;
          let args = parse_args lx in
          Ast.Call (name, args)
      | _ -> Ast.Var name)
  | t -> fail lx "expected expression, found %s" (describe t)

and parse_args lx =
  match lx.tok with
  | PUNCT ")" ->
      scan lx;
      []
  | _ ->
      let rec more acc =
        let acc = parse_expr lx 1 :: acc in
        match lx.tok with
        | PUNCT "," ->
            scan lx;
            more acc
        | _ ->
            eat_punct lx ")";
            List.rev acc
      in
      more []

(* --- statements --- *)

let rec parse_stmt lx : Ast.stmt =
  match lx.tok with
  | KW "if" ->
      scan lx;
      eat_punct lx "(";
      let c = parse_expr lx 1 in
      eat_punct lx ")";
      let thens = parse_body lx in
      let elses =
        match lx.tok with
        | KW "else" ->
            scan lx;
            parse_body lx
        | _ -> []
      in
      Ast.If (c, thens, elses)
  | KW "while" ->
      scan lx;
      eat_punct lx "(";
      let c = parse_expr lx 1 in
      eat_punct lx ")";
      Ast.While (c, parse_body lx)
  | KW "do" ->
      scan lx;
      let body = parse_body lx in
      eat_kw lx "while";
      eat_punct lx "(";
      let c = parse_expr lx 1 in
      eat_punct lx ")";
      eat_punct lx ";";
      Ast.Do_while (body, c)
  | KW "for" ->
      scan lx;
      eat_punct lx "(";
      let name = eat_ident lx in
      eat_punct lx "=";
      let lo = parse_expr lx 1 in
      eat_punct lx ";";
      let name2 = eat_ident lx in
      if name2 <> name then
        fail lx "for-loop condition must test %s, found %s" name name2;
      eat_punct lx "<";
      let hi = parse_expr lx 1 in
      eat_punct lx ")";
      Ast.For (name, lo, hi, parse_body lx)
  | KW "switch" ->
      scan lx;
      eat_punct lx "(";
      let e = parse_expr lx 1 in
      eat_punct lx ")";
      eat_punct lx "{";
      let cases = ref [] in
      while lx.tok = KW "case" do
        scan lx;
        let k = eat_int lx in
        eat_punct lx ":";
        cases := (k, parse_body lx) :: !cases
      done;
      eat_kw lx "default";
      eat_punct lx ":";
      let default = parse_body lx in
      eat_punct lx "}";
      Ast.Switch (e, List.rev !cases, default)
  | KW "break" ->
      scan lx;
      eat_punct lx ";";
      Ast.Break
  | KW "continue" ->
      scan lx;
      eat_punct lx ";";
      Ast.Continue
  | KW "return" ->
      scan lx;
      let e = parse_expr lx 1 in
      eat_punct lx ";";
      Ast.Return e
  | KW "g" ->
      scan lx;
      eat_punct lx "[";
      let ix = eat_int lx in
      eat_punct lx "]";
      eat_punct lx "=";
      let e = parse_expr lx 1 in
      eat_punct lx ";";
      Ast.Set_global (ix, e)
  | KW "h" ->
      scan lx;
      eat_punct lx "[";
      let idx = parse_expr lx 1 in
      eat_punct lx "]";
      eat_punct lx "=";
      let e = parse_expr lx 1 in
      eat_punct lx ";";
      Ast.Set_heap (idx, e)
  | IDENT name -> (
      scan lx;
      match lx.tok with
      | PUNCT "=" ->
          scan lx;
          let e = parse_expr lx 1 in
          eat_punct lx ";";
          Ast.Set (name, e)
      | PUNCT "(" ->
          scan lx;
          let args = parse_args lx in
          eat_punct lx ";";
          Ast.Expr (Ast.Call (name, args))
      | t -> fail lx "expected '=' or '(' after %s, found %s" name (describe t))
  | t -> fail lx "expected statement, found %s" (describe t)

and parse_body lx : Ast.stmt list =
  eat_punct lx "{";
  let rec go acc =
    match lx.tok with
    | PUNCT "}" ->
        scan lx;
        List.rev acc
    | _ -> go (parse_stmt lx :: acc)
  in
  go []

let parse_mdef lx : Ast.mdef =
  let uninterruptible =
    match lx.tok with
    | KW "uninterruptible" ->
        scan lx;
        true
    | _ -> false
  in
  eat_kw lx "method";
  let name =
    match lx.tok with
    | IDENT s ->
        scan lx;
        s
    | KW "main" ->
        scan lx;
        "main"
    | t -> fail lx "expected method name, found %s" (describe t)
  in
  eat_punct lx "(";
  let params =
    match lx.tok with
    | PUNCT ")" ->
        scan lx;
        []
    | _ ->
        let rec more acc =
          let acc = eat_ident lx :: acc in
          match lx.tok with
          | PUNCT "," ->
              scan lx;
              more acc
          | _ ->
              eat_punct lx ")";
              List.rev acc
        in
        more []
  in
  let body = parse_body lx in
  { Ast.mname = name; params; muninterruptible = uninterruptible; body }

let parse_program lx : Ast.pdef =
  eat_kw lx "program";
  let pname = eat_ident lx in
  eat_punct lx "{";
  let globals = ref 16 and heap = ref 4096 and pmain = ref "main" in
  let rec directives () =
    match lx.tok with
    | KW "globals" ->
        scan lx;
        globals := eat_int lx;
        eat_punct lx ";";
        directives ()
    | KW "heap" ->
        scan lx;
        heap := eat_int lx;
        eat_punct lx ";";
        directives ()
    | KW "main" ->
        scan lx;
        pmain := eat_ident lx;
        eat_punct lx ";";
        directives ()
    | _ -> ()
  in
  directives ();
  let rec methods acc =
    match lx.tok with
    | PUNCT "}" ->
        scan lx;
        List.rev acc
    | _ -> methods (parse_mdef lx :: acc)
  in
  let methods = methods [] in
  (match lx.tok with
  | EOF -> ()
  | t -> fail lx "trailing input: %s" (describe t));
  {
    Ast.pname;
    globals = !globals;
    heap = !heap;
    pmain = !pmain;
    methods;
  }

let program src = parse_program (make_lexer src)

let expr src =
  let lx = make_lexer src in
  let e = parse_expr lx 1 in
  (match lx.tok with
  | EOF -> ()
  | t -> fail lx "trailing input: %s" (describe t));
  e
