type t = {
  name : string;
  n_globals : int;
  heap_size : int;
  methods : Method.t array;
  main : string;
}

exception Link_error of string

let link_error fmt = Fmt.kstr (fun s -> raise (Link_error s)) fmt

let create ~name ~n_globals ~heap_size ~main methods =
  if heap_size <= 0 then link_error "%s: heap_size must be positive" name;
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (m : Method.t) ->
      if Hashtbl.mem tbl m.name then link_error "%s: duplicate method %s" name m.name;
      Hashtbl.replace tbl m.name m)
    methods;
  (match Hashtbl.find_opt tbl main with
  | None -> link_error "%s: main method %s not defined" name main
  | Some m ->
      if m.nparams <> 0 then
        link_error "%s: main method %s must take no parameters" name main);
  List.iter
    (fun (m : Method.t) ->
      Array.iter
        (fun (b : Method.block) ->
          Array.iter
            (function
              | Instr.Call (callee, argc) -> (
                  match Hashtbl.find_opt tbl callee with
                  | None ->
                      link_error "%s: %s calls undefined method %s" name m.name
                        callee
                  | Some c ->
                      if c.nparams <> argc then
                        link_error "%s: %s calls %s with %d args (wants %d)"
                          name m.name callee argc c.nparams)
              | _ -> ())
            b.body)
        m.blocks)
    methods;
  { name; n_globals; heap_size; methods = Array.of_list methods; main }

let find t name =
  match Array.find_opt (fun (m : Method.t) -> m.name = name) t.methods with
  | Some m -> m
  | None -> raise Not_found

let index t name =
  let rec go i =
    if i >= Array.length t.methods then raise Not_found
    else if t.methods.(i).Method.name = name then i
    else go (i + 1)
  in
  go 0

let method_of_index t i = t.methods.(i)
let n_methods t = Array.length t.methods
let iter_methods f t = Array.iteri f t.methods

let pp ppf t =
  Fmt.pf ppf "@[<v>program %s globals=%d heap=%d main=%s@,@," t.name t.n_globals
    t.heap_size t.main;
  Array.iter (fun m -> Fmt.pf ppf "%a@," Method.pp m) t.methods;
  Fmt.pf ppf "@]"
