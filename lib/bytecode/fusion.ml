type pattern =
  | LL of Instr.binop
  | LK of Instr.binop
  | KStore
  | LStore
  | LRet
  | CmpBr of Instr.cmp
  | LLCmpBr of Instr.cmp
  | LKCmpBr of Instr.cmp
  | KCmpBr of Instr.cmp
  | LJmp
  | StJmp
  | IncJmp

type entry = {
  fblock : int;
  fstart : int;
  flen : int;
  fterm : bool;
  fpattern : pattern;
}

type witness = { fgen : int; fhot : bool array; fentries : entry list }

let empty_witness = { fgen = min_int; fhot = [||]; fentries = [] }

(* Only total operators are fused: Div/Rem carry a zero guard and
   Shl/Shr a shift mask, and specializing those buys nothing the
   generic slot does not already pay. *)
let supported_binop = function
  | Instr.Add | Sub | Mul | And | Or | Xor -> true
  | Div | Rem | Shl | Shr -> false

let block_fusable (blk : Method.block) =
  Array.for_all
    (function Instr.Call _ -> false | _ -> true)
    blk.Method.body

(* Longest match first.  Patterns that fold the terminator require the
   matched sequence to end the block body. *)
let match_at (blk : Method.block) i =
  let body = blk.Method.body in
  let n = Array.length body in
  let br = match blk.Method.term with Method.Br _ -> true | _ -> false in
  let ret = match blk.Method.term with Method.Ret -> true | _ -> false in
  let jmp = match blk.Method.term with Method.Jmp _ -> true | _ -> false in
  let triple_end = i + 3 = n in
  let pair_end = i + 2 = n in
  let pair a b =
    match (a, b) with
    | Instr.Const _, Instr.Cmp c when pair_end && br -> Some (KCmpBr c, 2, true)
    | Instr.Const _, Instr.Store _ -> Some (KStore, 2, false)
    | Instr.Load _, Instr.Store _ -> Some (LStore, 2, false)
    | _ -> None
  in
  if i + 3 <= n then
    match (body.(i), body.(i + 1), body.(i + 2)) with
    | Instr.Load _, Instr.Load _, Instr.Cmp c when triple_end && br ->
        Some (LLCmpBr c, 3, true)
    | Instr.Load _, Instr.Const _, Instr.Cmp c when triple_end && br ->
        Some (LKCmpBr c, 3, true)
    | Instr.Load _, Instr.Load _, Instr.Binop op when supported_binop op ->
        Some (LL op, 3, false)
    | Instr.Load _, Instr.Const _, Instr.Binop op when supported_binop op ->
        Some (LK op, 3, false)
    | _ -> pair body.(i) body.(i + 1)
  else if i + 2 <= n then pair body.(i) body.(i + 1)
  else if i + 1 = n then
    match body.(i) with
    | Instr.Cmp c when br -> Some (CmpBr c, 1, true)
    | Instr.Load _ when ret -> Some (LRet, 1, true)
    | Instr.Load _ when jmp -> Some (LJmp, 1, true)
    | Instr.Store _ when jmp -> Some (StJmp, 1, true)
    | Instr.Inc _ when jmp -> Some (IncJmp, 1, true)
    | _ -> None
  else None

let plan ~gen ~hot (m : Method.t) =
  let nblocks = Array.length m.Method.blocks in
  let hot = if Array.length hot = nblocks then hot else Array.make nblocks false in
  let entries = ref [] in
  Array.iteri
    (fun b blk ->
      if hot.(b) && block_fusable blk then begin
        let n = Array.length blk.Method.body in
        let i = ref 0 in
        while !i < n do
          match match_at blk !i with
          | Some (p, len, term) ->
              entries :=
                { fblock = b; fstart = !i; flen = len; fterm = term; fpattern = p }
                :: !entries;
              i := !i + len
          | None -> incr i
        done
      end)
    m.Method.blocks;
  { fgen = gen; fhot = Array.copy hot; fentries = List.rev !entries }

let stack_delta = function
  | LL _ | LK _ -> 1
  | KStore | LStore -> 0
  | LRet -> 0 (* the push and the folded Ret's pop cancel *)
  | CmpBr _ -> -2 (* consumes both operands and the folded condition *)
  | LLCmpBr _ | LKCmpBr _ -> 0
  | KCmpBr _ -> -1 (* pushes the constant, pops both plus the condition *)
  | LJmp -> 1 (* the folded Jmp pops nothing *)
  | StJmp -> -1
  | IncJmp -> 0

let pattern_name = function
  | LL op -> Fmt.str "ll-%a" Instr.pp_binop op
  | LK op -> Fmt.str "lk-%a" Instr.pp_binop op
  | KStore -> "kstore"
  | LStore -> "lstore"
  | LRet -> "lret"
  | CmpBr c -> Fmt.str "cmpbr-%a" Instr.pp_cmp c
  | LLCmpBr c -> Fmt.str "llcmpbr-%a" Instr.pp_cmp c
  | LKCmpBr c -> Fmt.str "lkcmpbr-%a" Instr.pp_cmp c
  | KCmpBr c -> Fmt.str "kcmpbr-%a" Instr.pp_cmp c
  | LJmp -> "ljmp"
  | StJmp -> "stjmp"
  | IncJmp -> "incjmp" 

let pp_entry ppf e =
  Fmt.pf ppf "b%d[%d..%d%s] %s" e.fblock e.fstart
    (e.fstart + e.flen - 1)
    (if e.fterm then "+term" else "")
    (pattern_name e.fpattern)
