(** Textual form of {!Ast} programs, the inverse of {!Parse}.

    [Parse.program (to_string p)] yields an AST equal to [p] (modulo
    redundant parentheses, which the printer never emits), provided the
    program stays within the concrete syntax: expression statements
    ([Ast.Expr]) must be calls — the grammar has no statement form for a
    bare arithmetic expression — and negative integer literals print as
    [(0 - k)], which parses back as a subtraction rather than a literal
    (the two evaluate identically). *)

val pp_expr : Ast.expr Fmt.t
val pp_stmt : Ast.stmt Fmt.t
val pp_mdef : Ast.mdef Fmt.t
val pp_pdef : Ast.pdef Fmt.t
val to_string : Ast.pdef -> string
