(* Precedence levels, shared contract with Parse:
   1 bor/bxor | 2 band | 3 comparisons | 4 shifts | 5 add/sub | 6 mul/div/rem
   7 unary | 8 primary *)

let binop_level : Instr.binop -> int = function
  | Or | Xor -> 1
  | And -> 2
  | Shl | Shr -> 4
  | Add | Sub -> 5
  | Mul | Div | Rem -> 6

let binop_symbol : Instr.binop -> string = function
  | Or -> "|"
  | Xor -> "^"
  | And -> "&"
  | Shl -> "<<"
  | Shr -> ">>"
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"

let cmp_symbol : Instr.cmp -> string = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp_prec level ppf (e : Ast.expr) =
  match e with
  | Int k ->
      if k < 0 then Fmt.pf ppf "(0 - %d)" (-k) else Fmt.int ppf k
  | Var n -> Fmt.string ppf n
  | Global ix -> Fmt.pf ppf "g[%d]" ix
  | Heap idx -> Fmt.pf ppf "h[%a]" (pp_prec 0) idx
  | Bin (op, a, b) ->
      let l = binop_level op in
      let body ppf () =
        Fmt.pf ppf "%a %s %a" (pp_prec l) a (binop_symbol op) (pp_prec (l + 1)) b
      in
      if l < level then Fmt.pf ppf "(%a)" body () else body ppf ()
  | Rel (c, a, b) ->
      let l = 3 in
      let body ppf () =
        Fmt.pf ppf "%a %s %a" (pp_prec (l + 1)) a (cmp_symbol c)
          (pp_prec (l + 1)) b
      in
      if l < level then Fmt.pf ppf "(%a)" body () else body ppf ()
  | Not e -> Fmt.pf ppf "!%a" (pp_prec 7) e
  | Neg e -> Fmt.pf ppf "-%a" (pp_prec 7) e
  | Call (name, args) ->
      Fmt.pf ppf "%s(%a)" name (Fmt.list ~sep:Fmt.comma (pp_prec 0)) args
  | Rand n -> Fmt.pf ppf "rand(%d)" n

let pp_expr = pp_prec 0

let rec pp_stmt ppf (s : Ast.stmt) =
  match s with
  | Set (n, e) -> Fmt.pf ppf "@[<h>%s = %a;@]" n pp_expr e
  | Set_global (ix, e) -> Fmt.pf ppf "@[<h>g[%d] = %a;@]" ix pp_expr e
  | Set_heap (idx, value) ->
      Fmt.pf ppf "@[<h>h[%a] = %a;@]" pp_expr idx pp_expr value
  | If (c, thens, []) ->
      Fmt.pf ppf "@[<v>if (%a) %a@]" pp_expr c pp_body thens
  | If (c, thens, elses) ->
      Fmt.pf ppf "@[<v>if (%a) %a else %a@]" pp_expr c pp_body thens pp_body
        elses
  | While (c, body) -> Fmt.pf ppf "@[<v>while (%a) %a@]" pp_expr c pp_body body
  | Do_while (body, c) ->
      Fmt.pf ppf "@[<v>do %a while (%a);@]" pp_body body pp_expr c
  | For (n, lo, hi, body) ->
      Fmt.pf ppf "@[<v>for (%s = %a; %s < %a) %a@]" n pp_expr lo n pp_expr hi
        pp_body body
  | Switch (e, cases, default) ->
      Fmt.pf ppf "@[<v>switch (%a) {@;<1 2>@[<v>" pp_expr e;
      List.iter
        (fun (k, body) -> Fmt.pf ppf "case %d: %a@ " k pp_body body)
        cases;
      Fmt.pf ppf "default: %a@]@ }@]" pp_body default
  | Break -> Fmt.string ppf "break;"
  | Continue -> Fmt.string ppf "continue;"
  | Expr e -> Fmt.pf ppf "@[<h>%a;@]" pp_expr e
  | Return e -> Fmt.pf ppf "@[<h>return %a;@]" pp_expr e

and pp_body ppf = function
  | [] -> Fmt.string ppf "{ }"
  | body ->
      Fmt.pf ppf "{@;<1 2>@[<v>%a@]@ }" (Fmt.list ~sep:Fmt.cut pp_stmt) body

let pp_mdef ppf (m : Ast.mdef) =
  Fmt.pf ppf "@[<v>%smethod %s(%a) %a@]"
    (if m.muninterruptible then "uninterruptible " else "")
    m.mname
    (Fmt.list ~sep:Fmt.comma Fmt.string)
    m.params pp_body m.body

let pp_pdef ppf (p : Ast.pdef) =
  Fmt.pf ppf "@[<v>program %s {@;<1 2>@[<v>globals %d;@ heap %d;@ " p.pname
    p.globals p.heap;
  if p.pmain <> "main" then Fmt.pf ppf "main %s;@ " p.pmain;
  Fmt.pf ppf "%a@]@ }@]@."
    (Fmt.list ~sep:(fun ppf () -> Fmt.pf ppf "@ @ ") pp_mdef)
    p.methods

let to_string p = Fmt.str "%a" pp_pdef p
