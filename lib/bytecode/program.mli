(** Whole programs: a set of methods plus global state sizes. *)

type t = {
  name : string;
  n_globals : int;  (** size of the global scalar area *)
  heap_size : int;  (** size of the global heap array; must be > 0 *)
  methods : Method.t array;
  main : string;  (** entry method; takes no parameters *)
}

exception Link_error of string

(** [create ~name ~n_globals ~heap_size ~main methods] checks that method
    names are unique, [main] exists with zero parameters, and every [Call]
    resolves with the right arity.
    @raise Link_error otherwise. *)
val create :
  name:string ->
  n_globals:int ->
  heap_size:int ->
  main:string ->
  Method.t list ->
  t

val find : t -> string -> Method.t

(** Dense method index used by runtime tables. *)
val index : t -> string -> int

val method_of_index : t -> int -> Method.t
val n_methods : t -> int
val iter_methods : (int -> Method.t -> unit) -> t -> unit
val pp : t Fmt.t
