exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

let check_instr (p : Program.t) (m : Method.t) depth ins =
  let pops, pushes = Instr.stack_effect ins in
  if depth < pops then
    error "%s: stack underflow at %a (depth %d)" m.name Instr.pp ins depth;
  (match ins with
  | Instr.Load l | Instr.Store l | Instr.Inc (l, _) ->
      if l < 0 || l >= m.nlocals then
        error "%s: local %d out of range (nlocals %d)" m.name l m.nlocals
  | Instr.GLoad g | Instr.GStore g ->
      if g < 0 || g >= p.n_globals then
        error "%s: global %d out of range (n_globals %d)" m.name g p.n_globals
  | Instr.Rand n -> if n <= 0 then error "%s: rand bound %d" m.name n
  | Instr.Const _ | Instr.Binop _ | Instr.Cmp _ | Instr.Neg | Instr.Not
  | Instr.Dup | Instr.Pop | Instr.AGet | Instr.ASet | Instr.Call _ ->
      ());
  depth - pops + pushes

let block_depths (p : Program.t) (m : Method.t) =
  let n = Array.length m.blocks in
  let check_block_id b =
    if b < 0 || b >= n then error "%s: block id %d out of range" m.name b
  in
  check_block_id m.entry;
  check_block_id m.exit_;
  let depths = Array.make n (-1) in
  let worklist = Queue.create () in
  let set_depth b d =
    check_block_id b;
    if depths.(b) = -1 then begin
      depths.(b) <- d;
      Queue.add b worklist
    end
    else if depths.(b) <> d then
      error "%s: block %d entered with inconsistent stack depths %d and %d"
        m.name b depths.(b) d
  in
  set_depth m.entry 0;
  while not (Queue.is_empty worklist) do
    let bid = Queue.pop worklist in
    let blk = m.blocks.(bid) in
    let depth = Array.fold_left (check_instr p m) depths.(bid) blk.body in
    match blk.term with
    | Method.Ret ->
        if bid <> m.exit_ then error "%s: ret outside exit block %d" m.name bid;
        if depth <> 1 then
          error "%s: exit block reached with stack depth %d (want 1)" m.name depth
    | Method.Jmp d -> set_depth d depth
    | Method.Br { on_true; on_false; _ } ->
        if depth < 1 then error "%s: branch in block %d with empty stack" m.name bid;
        if on_true = on_false then
          error "%s: block %d branches to %d on both arms" m.name bid on_true;
        set_depth on_true (depth - 1);
        set_depth on_false (depth - 1)
  done;
  Array.iteri
    (fun b d -> if d = -1 then error "%s: block %d unreachable" m.name b)
    depths;
  depths

let program p =
  Program.iter_methods (fun _ m -> ignore (block_depths p m)) p;
  (* CFG construction enforces the single-exit / reaches-exit shape. *)
  Program.iter_methods
    (fun _ m ->
      try ignore (To_cfg.cfg m)
      with Cfg.Malformed msg -> error "cfg: %s" msg)
    p
