(** Bytecode verifier.

    Checks, per method: block and local indices in range, globals in range
    for the program, a consistent operand-stack depth at every block entry
    (computed by forward dataflow; join points must agree), depth 1 at the
    exit block ([Ret] pops the return value), condition available for every
    [Br], and no stack underflow anywhere.  {!Compile} output always
    verifies; the verifier guards hand-written and parsed bytecode. *)

exception Error of string

(** Stack depth at entry to each block of a verified method. *)
val block_depths : Program.t -> Method.t -> int array

(** @raise Error on the first violated invariant. *)
val program : Program.t -> unit
