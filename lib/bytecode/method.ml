type term =
  | Ret
  | Jmp of int
  | Br of { branch : Cfg.branch_id; on_true : int; on_false : int }

type block = { body : Instr.t array; term : term }

type t = {
  name : string;
  nparams : int;
  nlocals : int;
  blocks : block array;
  entry : int;
  exit_ : int;
  uninterruptible : bool;
}

let branch_ids t =
  let ids =
    Array.fold_left
      (fun acc b ->
        match b.term with Br { branch; _ } -> branch :: acc | Ret | Jmp _ -> acc)
      [] t.blocks
  in
  List.sort_uniq compare ids

let n_branches t = List.length (branch_ids t)
let size t = Array.fold_left (fun n b -> n + Array.length b.body) 0 t.blocks

let pp_term ppf = function
  | Ret -> Fmt.string ppf "ret"
  | Jmp b -> Fmt.pf ppf "jmp B%d" b
  | Br { branch; on_true; on_false } ->
      Fmt.pf ppf "br%d B%d B%d" branch on_true on_false

let pp ppf t =
  Fmt.pf ppf "@[<v>method %s params=%d locals=%d%s@," t.name t.nparams t.nlocals
    (if t.uninterruptible then " uninterruptible" else "");
  Array.iteri
    (fun i b ->
      Fmt.pf ppf "  B%d:%s%s@," i
        (if i = t.entry then " (entry)" else "")
        (if i = t.exit_ then " (exit)" else "");
      Array.iter (fun ins -> Fmt.pf ppf "    %a@," Instr.pp ins) b.body;
      Fmt.pf ppf "    %a@," pp_term b.term)
    t.blocks;
  Fmt.pf ppf "@]"
