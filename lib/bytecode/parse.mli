(** Parser for the textual program format produced by {!Pretty}.

    The grammar is C-like; see {!Pretty} for the shape.  [g], [h] and
    [rand] are reserved words ([g\[i\]] global scalar, [h\[e\]] heap cell,
    [rand(n)] PRNG draw) and cannot name variables or methods.  Line
    comments [//] and block comments [/* */] are supported. *)

exception Error of string
(** Carries a ["line:col: message"] description. *)

(** @raise Error on any lexical or syntax error. *)
val program : string -> Ast.pdef

(** Parse a single expression (testing convenience).
    @raise Error as {!program}. *)
val expr : string -> Ast.expr
