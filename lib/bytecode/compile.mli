(** Lowering from the structured {!Ast} to bytecode {!Method}s.

    The generated method always has a dedicated entry block (id 0, never a
    branch target) and a single exit block (id 1) holding the only [Ret] —
    the shape {!To_cfg} requires.  Falling off the end of a method body
    returns 0.  Each conditional construct receives a fresh bytecode branch
    id, in source order.  [Switch] is lowered to an if-chain on a scratch
    local (cases do not fall through).  Unreachable statements after
    [Return]/[Break]/[Continue] are dropped, and unreachable blocks are
    pruned. *)

exception Error of string

(** @raise Error on [Break]/[Continue] outside a loop, [Rand n] with
    [n <= 0], duplicate parameter names, or a method that provably cannot
    reach its exit (e.g. an infinite loop with no break). *)
val method_ : Ast.mdef -> Method.t

(** Compile and link a whole program.
    @raise Error as {!method_}.
    @raise Program.Link_error on unresolved or ill-arity calls. *)
val program :
  name:string ->
  ?n_globals:int ->
  ?heap_size:int ->
  main:string ->
  Ast.mdef list ->
  Program.t

(** [pdef d] compiles a whole program definition. *)
val pdef : Ast.pdef -> Program.t
