type expr =
  | Int of int
  | Var of string
  | Global of int
  | Heap of expr
  | Bin of Instr.binop * expr * expr
  | Rel of Instr.cmp * expr * expr
  | Not of expr
  | Neg of expr
  | Call of string * expr list
  | Rand of int

type stmt =
  | Set of string * expr
  | Set_global of int * expr
  | Set_heap of expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | For of string * expr * expr * stmt list
  | Switch of expr * (int * stmt list) list * stmt list
  | Break
  | Continue
  | Expr of expr
  | Return of expr

type mdef = {
  mname : string;
  params : string list;
  muninterruptible : bool;
  body : stmt list;
}

let i k = Int k
let v name = Var name
let g idx = Global idx
let h e = Heap e
let add a b = Bin (Instr.Add, a, b)
let sub a b = Bin (Instr.Sub, a, b)
let mul a b = Bin (Instr.Mul, a, b)
let div a b = Bin (Instr.Div, a, b)
let rem a b = Bin (Instr.Rem, a, b)
let band a b = Bin (Instr.And, a, b)
let bor a b = Bin (Instr.Or, a, b)
let bxor a b = Bin (Instr.Xor, a, b)
let shl a b = Bin (Instr.Shl, a, b)
let shr a b = Bin (Instr.Shr, a, b)
let eq a b = Rel (Instr.Eq, a, b)
let ne a b = Rel (Instr.Ne, a, b)
let lt a b = Rel (Instr.Lt, a, b)
let le a b = Rel (Instr.Le, a, b)
let gt a b = Rel (Instr.Gt, a, b)
let ge a b = Rel (Instr.Ge, a, b)
let not_ e = Not e
let neg e = Neg e
let call name args = Call (name, args)
let rnd n = Rand n
let set name e = Set (name, e)
let gset idx e = Set_global (idx, e)
let hset idx e = Set_heap (idx, e)
let if_ c t e = If (c, t, e)
let while_ c body = While (c, body)
let dowhile body c = Do_while (body, c)
let for_ name lo hi body = For (name, lo, hi, body)
let switch e cases default = Switch (e, cases, default)
let break_ = Break
let continue_ = Continue
let expr e = Expr e
let ret e = Return e

type pdef = {
  pname : string;
  globals : int;
  heap : int;
  pmain : string;
  methods : mdef list;
}

let mdef ?(uninterruptible = false) mname ~params body =
  { mname; params; muninterruptible = uninterruptible; body }

let pdef ?(globals = 16) ?(heap = 4096) ?(main = "main") pname methods =
  { pname; globals; heap; pmain = main; methods }
