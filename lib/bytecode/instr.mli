(** Bytecode instructions.

    The VM is an integer stack machine with per-frame locals, a global
    scalar area, and one global heap array.  Arithmetic is 63-bit OCaml
    [int] arithmetic; division and remainder by zero yield 0 so workloads
    never fault.  [Rand] draws from the VM's deterministic PRNG, which is
    how synthetic workloads obtain realistic (but reproducible) branch
    behaviour. *)

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr
type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Const of int  (** push constant *)
  | Load of int  (** push local *)
  | Store of int  (** pop into local *)
  | Inc of int * int  (** [Inc (l, k)]: local [l] += [k]; stack untouched *)
  | Binop of binop  (** pop b, pop a, push [a op b] *)
  | Cmp of cmp  (** pop b, pop a, push 1 if [a cmp b] else 0 *)
  | Neg
  | Not  (** pop v, push 1 if v = 0 else 0 *)
  | Dup  (** pop v, push v twice: net effect one deeper *)
  | Pop  (** discard the top of stack *)
  | GLoad of int  (** push global scalar *)
  | GStore of int  (** pop into global scalar *)
  | AGet  (** pop index, push heap[index mod heap size] *)
  | ASet  (** pop value, pop index, heap[index mod heap size] := value *)
  | Call of string * int
      (** [Call (callee, argc)]: pop [argc] arguments (last on top), push
          the callee's single result — net effect [argc - 1] shallower *)
  | Rand of int  (** push a deterministic pseudo-random value in [0, n) *)

(** Stack effect [(pops, pushes)] of an instruction, as the interpreter
    executes it.  Total over every constructor — [Call (_, argc)] is
    [(argc, 1)], [Dup] is [(1, 2)], [Pop] is [(1, 0)], [Inc] is [(0, 0)].
    The bytecode verifier's dataflow ({!Pep_check.verify_method}) is
    abstract interpretation over exactly this function, and a test
    cross-checks it against the interpreter on every opcode. *)
val stack_effect : t -> int * int

val eval_binop : binop -> int -> int -> int
val eval_cmp : cmp -> int -> int -> bool
val pp_binop : binop Fmt.t
val pp_cmp : cmp Fmt.t
val pp : t Fmt.t
