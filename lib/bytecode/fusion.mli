(** Profile-guided superinstruction planning.

    The execution engine fuses hot adjacent instruction pairs/triples
    into single dispatched superinstructions (ROADMAP: Engine v2).  The
    planner here is deliberately dumb and deterministic: given a method
    body and a per-block hot mask (derived from the VM's own PEP edge
    profile by the driver), it scans each hot block left to right,
    greedily matching the longest catalog pattern at each position, and
    emits a {!witness} — the exact fusion table the engine compiles.

    Fusion never crosses a block boundary and never touches a block
    containing a call (a call needs its own frame mid-sequence), so a
    superinstruction can only reorder work {e within} one block — and
    virtual cycles are charged per block, never per instruction, which
    is why fusion is observationally neutral: cycle counts, hook events
    and results are bit-identical to unfused code.  The witness exists
    so that neutrality does not rest on this argument alone:
    {!Pep_check.validate_fusion} re-derives every entry independently
    (effect summaries via {!Effects}, pattern shapes from the bytecode)
    and rejects tables this planner could never have produced. *)

type pattern =
  | LL of Instr.binop  (** [Load a; Load b; Binop op] — push [a op b] *)
  | LK of Instr.binop  (** [Load a; Const k; Binop op] — push [a op k] *)
  | KStore  (** [Const k; Store l] *)
  | LStore  (** [Load a; Store l] *)
  | LRet  (** [Load a; Ret] — folds the block terminator *)
  | CmpBr of Instr.cmp  (** [Cmp c; Br] — folds the block terminator *)
  | LLCmpBr of Instr.cmp  (** [Load a; Load b; Cmp c; Br] *)
  | LKCmpBr of Instr.cmp  (** [Load a; Const k; Cmp c; Br] *)
  | KCmpBr of Instr.cmp  (** [Const k; Cmp c; Br] — top of stack vs [k] *)
  | LJmp  (** [Load a; Jmp] — push then transfer *)
  | StJmp  (** [Store l; Jmp] — pop into a local then transfer *)
  | IncJmp  (** [Inc (l, k); Jmp] — the classic loop latch *)

(** One fused sequence: [flen] body instructions of block [fblock]
    starting at [fstart], plus the block terminator when [fterm]. *)
type entry = {
  fblock : int;
  fstart : int;
  flen : int;
  fterm : bool;
  fpattern : pattern;
}

(** A fusion table for one compiled form: the generation stamp it was
    planned against, the hot mask it was derived from, and the entries
    in ascending (block, start) order, non-overlapping. *)
type witness = { fgen : int; fhot : bool array; fentries : entry list }

val empty_witness : witness

(** Binops with a fused implementation in the engine (total operators
    only — [Div]/[Rem]/[Shl]/[Shr] keep their guarded generic form). *)
val supported_binop : Instr.binop -> bool

(** May this block be fused at all?  Syntactic: no call instruction.
    {!Effects.fusable} derives the same predicate from effect summaries;
    the validator cross-checks the two. *)
val block_fusable : Method.block -> bool

(** [match_at blk i] — the longest catalog pattern starting at body
    index [i] of [blk], as [(pattern, len, term)].  Deterministic; the
    validator re-runs it to audit planned tables. *)
val match_at : Method.block -> int -> (pattern * int * bool) option

(** [plan ~gen ~hot m] — greedy left-to-right plan over every block
    with [hot.(b)] set that {!block_fusable} admits.  [hot] shorter or
    longer than the block array is treated as all-cold (stale masks
    after a recompile must not fuse). *)
val plan : gen:int -> hot:bool array -> Method.t -> witness

(** Net operand-stack effect of a fused sequence (e.g. [LL _] pushes
    one; [LLCmpBr _] pushes nothing and consumes the branch condition
    internally). *)
val stack_delta : pattern -> int

val pattern_name : pattern -> string
val pp_entry : entry Fmt.t
