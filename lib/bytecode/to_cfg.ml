let cfg (m : Method.t) =
  let terms =
    Array.map
      (fun (b : Method.block) ->
        match b.term with
        | Method.Ret -> Cfg.Return
        | Method.Jmp d -> Cfg.Jump d
        | Method.Br { branch; on_true; on_false } ->
            Cfg.Branch { branch; taken = on_true; not_taken = on_false })
      m.blocks
  in
  Cfg.create ~name:m.name ~entry:m.entry ~exit_:m.exit_ terms
