(** Bytecode methods.

    A method body is an array of basic blocks, each ending in a terminator.
    Block ids are array indices.  Well-formed methods (as produced by
    {!Compile} and checked by {!Verify}) have a dedicated entry block that
    is never a branch target and a single exit block holding the only
    [Ret]; {!To_cfg} relies on this shape. *)

type term =
  | Ret  (** pop the return value; only in the exit block *)
  | Jmp of int
  | Br of { branch : Cfg.branch_id; on_true : int; on_false : int }
      (** pop the condition; nonzero takes [on_true] *)

type block = { body : Instr.t array; term : term }

type t = {
  name : string;
  nparams : int;
  nlocals : int;  (** total locals including parameters (slots 0..nparams-1) *)
  blocks : block array;
  entry : int;
  exit_ : int;
  uninterruptible : bool;
      (** no yieldpoints anywhere in the method (paper §4.3) *)
}

(** Number of conditional branches ([Br] terminators count one each;
    duplicated branches sharing a branch id count once). *)
val n_branches : t -> int

(** All branch ids, deduplicated, increasing. *)
val branch_ids : t -> Cfg.branch_id list

(** Static instruction count (bodies only). *)
val size : t -> int

val pp : t Fmt.t
