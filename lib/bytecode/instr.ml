type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr
type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Const of int
  | Load of int
  | Store of int
  | Inc of int * int
  | Binop of binop
  | Cmp of cmp
  | Neg
  | Not
  | Dup
  | Pop
  | GLoad of int
  | GStore of int
  | AGet
  | ASet
  | Call of string * int
  | Rand of int

let stack_effect = function
  | Const _ | Load _ | GLoad _ | Rand _ -> (0, 1)
  | Store _ | GStore _ | Pop -> (1, 0)
  | Inc _ -> (0, 0)
  | Binop _ | Cmp _ -> (2, 1)
  | Neg | Not | AGet -> (1, 1)
  | Dup -> (1, 2)
  | ASet -> (2, 0)
  | Call (_, argc) -> (argc, 1)

let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Rem -> if b = 0 then 0 else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 63)
  | Shr -> a asr (b land 63)

let eval_cmp c a b =
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

let pp_binop ppf op =
  Fmt.string ppf
    (match op with
    | Add -> "add"
    | Sub -> "sub"
    | Mul -> "mul"
    | Div -> "div"
    | Rem -> "rem"
    | And -> "and"
    | Or -> "or"
    | Xor -> "xor"
    | Shl -> "shl"
    | Shr -> "shr")

let pp_cmp ppf c =
  Fmt.string ppf
    (match c with
    | Eq -> "eq"
    | Ne -> "ne"
    | Lt -> "lt"
    | Le -> "le"
    | Gt -> "gt"
    | Ge -> "ge")

let pp ppf = function
  | Const k -> Fmt.pf ppf "const %d" k
  | Load l -> Fmt.pf ppf "load %d" l
  | Store l -> Fmt.pf ppf "store %d" l
  | Inc (l, k) -> Fmt.pf ppf "inc %d %d" l k
  | Binop op -> pp_binop ppf op
  | Cmp c -> Fmt.pf ppf "cmp.%a" pp_cmp c
  | Neg -> Fmt.string ppf "neg"
  | Not -> Fmt.string ppf "not"
  | Dup -> Fmt.string ppf "dup"
  | Pop -> Fmt.string ppf "pop"
  | GLoad g -> Fmt.pf ppf "gload %d" g
  | GStore g -> Fmt.pf ppf "gstore %d" g
  | AGet -> Fmt.string ppf "aget"
  | ASet -> Fmt.string ppf "aset"
  | Call (m, argc) -> Fmt.pf ppf "call %s/%d" m argc
  | Rand n -> Fmt.pf ppf "rand %d" n
